(** The service observability plane.

    One [Obs.t] rides along with each {!Service.t} and turns the
    request stream into bounded live aggregates — the batch-scoped
    telemetry layer exports once at exit, which is useless for a
    daemon.  Everything here is O(buckets + windows) state
    ({!Batlife_numerics.Streamstat}), never O(requests):

    - a request-id sequence ([r1], [r2], ...) — the trace context
      stamped on spans and Diag notes for the request's extent;
    - per-query-kind latency histograms and 1m/5m request/error rate
      windows;
    - the versioned stats snapshot (schema ["batlife.stats/1"]), the
      Prometheus text exposition and the health probe served as admin
      queries and by [batlife stats];
    - the JSONL access log (schema ["batlife.access/1"], one line per
      request) and the threshold-gated slow-query log (schema
      ["batlife.slow/1"], with a per-phase span breakdown), both
      appended through {!Batlife_numerics.Atomic_io}.

    Recording never influences query results: the plane only reads
    clocks and counters, so responses are bitwise identical with the
    plane on or off (asserted by the test suite). *)

open Batlife_numerics

type t

val create :
  ?access_log:string ->
  ?slow_log:string ->
  ?slow_threshold_s:float ->
  ?jobs:int ->
  unit ->
  t
(** [access_log] / [slow_log]: paths to append JSONL entries to
    (absent: no log).  [slow_threshold_s] (default [1.0]) gates the
    slow-query log.  [jobs] is reported in the snapshot's pool section
    (default {!Batlife_numerics.Pool.default_jobs}).  Raises
    [Diag.Error (Parse_error _)] when a log path cannot be opened. *)

val next_rid : t -> string
(** The next request id: ["r1"], ["r2"], ... — unique per service
    instance, atomic. *)

val batch_begin : t -> int -> unit
(** Called with the batch size when a batch starts being served;
    in-flight and queue-depth read back nonzero until
    {!batch_end} — an admin query inside the batch sees itself. *)

val batch_end : t -> unit

val note_batch : t -> latency_s:float -> unit
(** Record one completed batch's wall latency.  The rolling p90 of
    these feeds {!retry_hint_s}. *)

val note_queue_depth : t -> int -> unit
(** Record the pending-queue depth at an admission round: sets the
    live gauge and feeds the depth histogram behind
    {!queue_depth_p99}. *)

val retry_hint_s : t -> float
(** The [retry_after_s] backoff hint shed responses carry: the rolling
    p90 batch latency, floored at 10 ms (50 ms before the first batch
    completes). *)

val queue_depth_p99 : t -> float
(** p99 of the sampled pending-queue depth (0 before any sample). *)

(** Everything known about one answered request, for the logs and the
    aggregates.  [latency_s] is the wall time of the request's group
    evaluation (registration + shared flush + forcing).  [phases] is
    the {!Telemetry.rollup} of the spans captured during that
    evaluation — empty unless telemetry is enabled. *)
type observation = {
  rid : string;
  id : string;
  kind : string;
      (** ["cdf"], ["percentiles"], ..., ["admin"], ["protocol"],
          ["overloaded"] *)
  fingerprint : string option;
  cache : string option;
  ok : bool;
  code : int;  (** 0 when [ok] *)
  latency_s : float;
  batch : int;  (** batch size this request arrived in *)
  group : int;  (** fingerprint-group size (1 for admin/protocol) *)
  phases : Telemetry.rollup_row list;
}

val record : t -> observation -> unit
(** Feed the aggregates, append the access-log line, and append a
    slow-log entry when [latency_s] reaches the threshold. *)

val note_kernel : t -> Batlife_ctmc.Transient.stats -> unit
(** Record the support hull of the latest sweep (touched-nnz and
    friends come from the always-on telemetry counters; only the
    last-sweep support window needs to be tracked here). *)

(** {1 Scrape surfaces} *)

val stats_json :
  t -> cache_size:int -> cache_capacity:int -> Json.t
(** The ["batlife.stats/1"] snapshot: per-kind latency quantiles (with
    the documented {!Batlife_numerics.Streamstat.Hist.rel_error_bound}),
    request/error rates, cache counters, pool and kernel aggregates. *)

val prometheus : t -> cache_size:int -> cache_capacity:int -> string
(** Prometheus text exposition (version 0.0.4): [batlife_up],
    per-kind request totals and latency summaries, cache and kernel
    counters. *)

val health_json : t -> Json.t
(** [{"status":"ok","uptime_s":...}] — the process is accepting and
    answering queries if this comes back at all. *)

val uptime_s : t -> float
val slow_threshold_s : t -> float

val close : t -> unit
(** Flush ([fsync]) and close the log appenders, so the last access
    and slow-log lines survive the exit (idempotent enough for exit
    paths — drain, cancellation, EOF all call it). *)
