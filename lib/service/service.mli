(** The lifetime-query engine behind [batlife serve].

    A service owns one {!Cache} and answers {!Query.request}s:

    - {b Interning}: each request's model is resolved through the
      fingerprint cache, so repeat models skip Q* construction and
      kernel builds entirely (the cache-hit counters prove it).
    - {b Batching}: {!handle_batch} groups the requests of one batch
      by model fingerprint and answers each group from {e one}
      [Discretized.Session] flush — N queries against the same model
      cost one [multi_measure_sweep], exactly like the session API
      they ride on.
    - {b Fan-out}: independent groups (distinct models) are evaluated
      in parallel across the shared
      {!Batlife_numerics.Pool}; each group's [Diag]/[Telemetry]
      streams are captured on its domain and replayed in batch order,
      so logs and metrics are deterministic.
    - {b Deadlines}: a request's [deadline_s] becomes a wall-clock
      {!Batlife_numerics.Budget} for its group's flush (the tightest
      deadline in the group wins); exhaustion surfaces as a structured
      [budget_exhausted] (exit-code-7) error response, not a hung or
      killed server.

    Failures never escape a handler: every per-request problem —
    malformed model, solver breakdown, exhausted deadline — is mapped
    through {!Query.error_of_diag} into the response stream. *)

type t

val create :
  ?cache_capacity:int ->
  ?cache_max_bytes:int ->
  ?jobs:int ->
  ?obs:Obs.t ->
  unit ->
  t
(** [cache_capacity] (default 32) bounds the session cache's entry
    count and [cache_max_bytes] (default: unbounded) its resident
    bytes (enforced after each batch — see {!Cache.enforce_budget});
    [jobs] overrides the pool size for group fan-out (default: the
    process-wide {!Batlife_numerics.Pool.default_jobs}); [obs] is the
    observability plane to ride on (default: a fresh {!Obs.create}
    with no access/slow logs — the aggregates and admin queries work
    either way). *)

val handle : t -> Query.request -> Query.response
(** Answer one request ([{!handle_batch} t [r]]). *)

val handle_batch : ?drain:Drain.t -> t -> Query.request list -> Query.response list
(** Answer a batch; responses come back in request order.  Requests
    for the same model share one sweep, distinct models fan out across
    the pool.  Every request is assigned a request id ([r1], [r2],
    ...): its registration/forcing and its group's shared flush run
    under that id as [Diag]/[Telemetry] context, and the same id is
    written to the access log, so a single request is traceable
    end-to-end.  Admin queries ({!Query.Server_stats},
    {!Query.Prometheus}, {!Query.Health}) are answered inline {e
    after} the batch's model work, so a trailing stats query observes
    the queries it rode in with.  Every request bumps the
    ["service.admitted"] counter, and the cache's byte budget is
    enforced after the batch's model work.  [drain] exposes each
    group's budget to {!Drain} deadline cancellation (groups without a
    request deadline get a pure cancel-token budget), so a drain
    requested mid-batch can end overlong flushes as structured
    [Cancelled] responses. *)

val cache : t -> Cache.t
val obs : t -> Obs.t
