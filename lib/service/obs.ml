open Batlife_numerics

let schema_stats = "batlife.stats/1"
let schema_access = "batlife.access/1"
let schema_slow = "batlife.slow/1"

(* The fixed query-kind universe: one latency histogram each, created
   up front so the state bound is visible at construction time.
   "admin" covers the scrape queries themselves, "protocol" the
   malformed frames rejected before reaching the engine, "overloaded"
   the frames shed by admission control (latency 0 by construction —
   shedding happens before any work). *)
let kinds =
  [ "cdf"; "measures"; "percentiles"; "stats"; "admin"; "protocol";
    "overloaded" ]

type t = {
  started_ns : int64;
  started_wall : float;
  seq : int Atomic.t;
  in_flight : int Atomic.t;
  queue_depth : int Atomic.t;
  errors : int Atomic.t;
  hists : (string * Streamstat.Hist.t) list;
  (* Admission-control feeds: whole-batch wall latency (its rolling p90
     is the retry_after_s hint sheds carry) and the pending-queue depth
     sampled at each admission round (p99 goes into the snapshot and
     the service benchmark). *)
  batch_hist : Streamstat.Hist.t;
  depth_hist : Streamstat.Hist.t;
  req_1m : Streamstat.Window.t;
  req_5m : Streamstat.Window.t;
  err_1m : Streamstat.Window.t;
  err_5m : Streamstat.Window.t;
  (* Support hull of the most recent sweep; a mutex keeps the three
     fields mutually consistent (writes are per-flush, never hot). *)
  kernel_mutex : Mutex.t;
  mutable last_support : (int * int * float) option;
  access : Atomic_io.appender option;
  slow : Atomic_io.appender option;
  slow_threshold_s : float;
  jobs : int;
}

let create ?access_log ?slow_log ?(slow_threshold_s = 1.0) ?jobs () =
  {
    started_ns = Telemetry.now_ns ();
    started_wall = Unix.gettimeofday ();
    seq = Atomic.make 0;
    in_flight = Atomic.make 0;
    queue_depth = Atomic.make 0;
    errors = Atomic.make 0;
    hists = List.map (fun k -> (k, Streamstat.Hist.create ())) kinds;
    batch_hist = Streamstat.Hist.create ();
    depth_hist = Streamstat.Hist.create ();
    req_1m = Streamstat.Window.create ~span_s:60. ();
    req_5m = Streamstat.Window.create ~slots:30 ~span_s:300. ();
    err_1m = Streamstat.Window.create ~span_s:60. ();
    err_5m = Streamstat.Window.create ~slots:30 ~span_s:300. ();
    kernel_mutex = Mutex.create ();
    last_support = None;
    access = Option.map (fun path -> Atomic_io.appender ~path) access_log;
    slow = Option.map (fun path -> Atomic_io.appender ~path) slow_log;
    slow_threshold_s;
    jobs = (match jobs with Some j -> j | None -> Pool.default_jobs ());
  }

let next_rid t = Printf.sprintf "r%d" (Atomic.fetch_and_add t.seq 1 + 1)

let batch_begin t n =
  ignore (Atomic.fetch_and_add t.in_flight n);
  Atomic.set t.queue_depth n

let batch_end t =
  Atomic.set t.in_flight 0;
  Atomic.set t.queue_depth 0

let note_batch t ~latency_s = Streamstat.Hist.observe t.batch_hist latency_s

let note_queue_depth t depth =
  Atomic.set t.queue_depth depth;
  Streamstat.Hist.observe t.depth_hist (float_of_int depth)

(* The backoff hint shed responses carry.  Rolling p90 of whole-batch
   wall latency: the time by which the queue has very probably turned
   over at least once.  Floored (and defaulted, before the first batch
   completes) so a hint of exactly 0 never tells clients to hammer. *)
let retry_hint_s t =
  if Streamstat.Hist.count t.batch_hist = 0 then 0.05
  else Float.max 0.01 (Streamstat.Hist.quantile t.batch_hist 0.90)

let queue_depth_p99 t =
  if Streamstat.Hist.count t.depth_hist = 0 then 0.
  else Streamstat.Hist.quantile t.depth_hist 0.99

let uptime_s t =
  Int64.to_float (Int64.sub (Telemetry.now_ns ()) t.started_ns) /. 1e9

let slow_threshold_s t = t.slow_threshold_s

type observation = {
  rid : string;
  id : string;
  kind : string;
  fingerprint : string option;
  cache : string option;
  ok : bool;
  code : int;
  latency_s : float;
  batch : int;
  group : int;
  phases : Telemetry.rollup_row list;
}

let hist t kind =
  match List.assoc_opt kind t.hists with
  | Some h -> h
  | None -> List.assoc "admin" t.hists

let opt_str name = function
  | None -> []
  | Some v -> [ (name, Json.Str v) ]

let common_fields o =
  [
    ("ts", Json.of_float (Unix.gettimeofday ()));
    ("rid", Json.Str o.rid);
    ("id", Json.Str o.id);
    ("kind", Json.Str o.kind);
  ]
  @ opt_str "fingerprint" o.fingerprint
  @ opt_str "cache" o.cache

let access_line o =
  Json.encode
    (Json.Obj
       ([ ("schema", Json.Str schema_access) ]
       @ common_fields o
       @ [
           ("ok", Json.Bool o.ok);
           ("code", Json.of_int o.code);
           ("latency_s", Json.of_float o.latency_s);
           ("batch", Json.of_int o.batch);
           ("group", Json.of_int o.group);
         ]))

let ms_of_ns ns = Int64.to_float ns /. 1e6

let slow_line t o =
  let phase (r : Telemetry.rollup_row) =
    Json.Obj
      [
        ("name", Json.Str r.Telemetry.r_name);
        ("count", Json.of_int r.Telemetry.r_count);
        ("total_ms", Json.of_float (ms_of_ns r.Telemetry.r_total_ns));
        ("self_ms", Json.of_float (ms_of_ns r.Telemetry.r_self_ns));
        ("max_ms", Json.of_float (ms_of_ns r.Telemetry.r_max_ns));
      ]
  in
  Json.encode
    (Json.Obj
       ([ ("schema", Json.Str schema_slow) ]
       @ common_fields o
       @ [
           ("ok", Json.Bool o.ok);
           ("latency_s", Json.of_float o.latency_s);
           ("threshold_s", Json.of_float t.slow_threshold_s);
           ("phases", Json.Arr (List.map phase o.phases));
         ]))

let record t o =
  Streamstat.Hist.observe (hist t o.kind) o.latency_s;
  Streamstat.Window.add t.req_1m 1;
  Streamstat.Window.add t.req_5m 1;
  if not o.ok then begin
    ignore (Atomic.fetch_and_add t.errors 1);
    Streamstat.Window.add t.err_1m 1;
    Streamstat.Window.add t.err_5m 1
  end;
  (match t.access with
  | Some ap -> Atomic_io.append_line ap (access_line o)
  | None -> ());
  match t.slow with
  | Some ap when o.latency_s >= t.slow_threshold_s ->
      Atomic_io.append_line ap (slow_line t o)
  | _ -> ()

let note_kernel t (s : Batlife_ctmc.Transient.stats) =
  Mutex.lock t.kernel_mutex;
  t.last_support <-
    Some
      ( s.Batlife_ctmc.Transient.support_lo,
        s.Batlife_ctmc.Transient.support_hi,
        s.Batlife_ctmc.Transient.skipped_mass );
  Mutex.unlock t.kernel_mutex

(* ---- scrape surfaces -------------------------------------------- *)

let counter_value name = Telemetry.value (Telemetry.counter name)

let total_requests t =
  List.fold_left (fun acc (_, h) -> acc + Streamstat.Hist.count h) 0 t.hists

let quantile_or_zero h p =
  if Streamstat.Hist.count h = 0 then 0. else Streamstat.Hist.quantile h p

let finite_or_zero v = if Float.is_finite v then v else 0.

let stats_json t ~cache_size ~cache_capacity =
  let hits = counter_value "session.cache_hit"
  and misses = counter_value "session.cache_miss" in
  let hit_rate =
    if hits + misses = 0 then 0.
    else float_of_int hits /. float_of_int (hits + misses)
  in
  let latency =
    List.map
      (fun (kind, h) ->
        ( kind,
          Json.Obj
            [
              ("count", Json.of_int (Streamstat.Hist.count h));
              ("mean_s", Json.of_float (finite_or_zero (Streamstat.Hist.mean h)));
              ("p50_s", Json.of_float (quantile_or_zero h 0.50));
              ("p90_s", Json.of_float (quantile_or_zero h 0.90));
              ("p99_s", Json.of_float (quantile_or_zero h 0.99));
              ("max_s", Json.of_float (finite_or_zero (Streamstat.Hist.max_seen h)));
            ] ))
      t.hists
  in
  let bound =
    Streamstat.Hist.rel_error_bound (snd (List.hd t.hists))
  in
  let support_lo, support_hi, skipped_mass =
    Mutex.lock t.kernel_mutex;
    let v = t.last_support in
    Mutex.unlock t.kernel_mutex;
    match v with Some (lo, hi, m) -> (lo, hi, m) | None -> (0, 0, 0.)
  in
  Json.Obj
    [
      ("schema", Json.Str schema_stats);
      ("uptime_s", Json.of_float (uptime_s t));
      ( "requests",
        Json.Obj
          [
            ("total", Json.of_int (total_requests t));
            ("errors", Json.of_int (Atomic.get t.errors));
            ("in_flight", Json.of_int (Atomic.get t.in_flight));
            ("queue_depth", Json.of_int (Atomic.get t.queue_depth));
            ("queue_depth_p99", Json.of_float (queue_depth_p99 t));
            ("admitted", Json.of_int (counter_value "service.admitted"));
            ("shed", Json.of_int (counter_value "service.shed"));
            ("retry_hint_s", Json.of_float (retry_hint_s t));
            ("rate_1m", Json.of_float (Streamstat.Window.rate t.req_1m));
            ("rate_5m", Json.of_float (Streamstat.Window.rate t.req_5m));
            ("error_rate_1m", Json.of_float (Streamstat.Window.rate t.err_1m));
            ("error_rate_5m", Json.of_float (Streamstat.Window.rate t.err_5m));
          ] );
      ( "latency",
        Json.Obj (("rel_error_bound", Json.of_float bound) :: latency) );
      ( "cache",
        Json.Obj
          [
            ("size", Json.of_int cache_size);
            ("capacity", Json.of_int cache_capacity);
            ("hits", Json.of_int hits);
            ("misses", Json.of_int misses);
            ("evictions", Json.of_int (counter_value "session.cache_evictions"));
            ( "evictions_capacity",
              Json.of_int (counter_value "session.cache_evictions_capacity") );
            ( "evictions_bytes",
              Json.of_int (counter_value "session.cache_evictions_bytes") );
            ( "bytes",
              Json.of_int
                (int_of_float
                   (Telemetry.gauge_value
                      (Telemetry.gauge "session.cache_bytes"))) );
            ("hit_rate", Json.of_float hit_rate);
          ] );
      ("pool", Json.Obj [ ("jobs", Json.of_int t.jobs) ]);
      ( "kernel",
        Json.Obj
          [
            ("sweeps", Json.of_int (counter_value "transient.sweeps"));
            ("kernel_builds", Json.of_int (counter_value "transient.kernel_builds"));
            ("touched_nnz", Json.of_int (counter_value "transient.touched_nnz"));
            ("active_rows", Json.of_int (counter_value "transient.active_rows"));
            ("session_flushes", Json.of_int (counter_value "session.flushes"));
            ("last_support_lo", Json.of_int support_lo);
            ("last_support_hi", Json.of_int support_hi);
            ("last_skipped_mass", Json.of_float skipped_mass);
          ] );
    ]

let prometheus t ~cache_size ~cache_capacity =
  let buf = Buffer.create 2048 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  let float_v v =
    (* Prometheus wants plain decimal or Inf/NaN tokens. *)
    if Float.is_nan v then "NaN"
    else if v = Float.infinity then "+Inf"
    else if v = Float.neg_infinity then "-Inf"
    else Printf.sprintf "%.9g" v
  in
  line "# HELP batlife_up Whether the service is serving.";
  line "# TYPE batlife_up gauge";
  line "batlife_up 1";
  line "# HELP batlife_uptime_seconds Seconds since service start.";
  line "# TYPE batlife_uptime_seconds gauge";
  line "batlife_uptime_seconds %s" (float_v (uptime_s t));
  line "# HELP batlife_requests_total Requests answered, by query kind.";
  line "# TYPE batlife_requests_total counter";
  List.iter
    (fun (kind, h) ->
      line "batlife_requests_total{kind=%S} %d" kind (Streamstat.Hist.count h))
    t.hists;
  line "# HELP batlife_errors_total Requests answered with an error frame.";
  line "# TYPE batlife_errors_total counter";
  line "batlife_errors_total %d" (Atomic.get t.errors);
  line "# HELP batlife_in_flight_requests Requests in the batch being served.";
  line "# TYPE batlife_in_flight_requests gauge";
  line "batlife_in_flight_requests %d" (Atomic.get t.in_flight);
  line "# HELP batlife_admitted_total Frames accepted by admission control.";
  line "# TYPE batlife_admitted_total counter";
  line "batlife_admitted_total %d" (counter_value "service.admitted");
  line "# HELP batlife_shed_total Frames rejected with an overloaded error.";
  line "# TYPE batlife_shed_total counter";
  line "batlife_shed_total %d" (counter_value "service.shed");
  line "# HELP batlife_queue_depth Pending admitted frames awaiting a batch.";
  line "# TYPE batlife_queue_depth gauge";
  line "batlife_queue_depth %d" (Atomic.get t.queue_depth);
  line
    "# HELP batlife_request_duration_seconds Per-kind request latency \
     (streaming quantiles; relative error bound %s)."
    (float_v (Streamstat.Hist.rel_error_bound (snd (List.hd t.hists))));
  line "# TYPE batlife_request_duration_seconds summary";
  List.iter
    (fun (kind, h) ->
      if Streamstat.Hist.count h > 0 then
        List.iter
          (fun p ->
            line "batlife_request_duration_seconds{kind=%S,quantile=\"%g\"} %s"
              kind p
              (float_v (Streamstat.Hist.quantile h p)))
          [ 0.5; 0.9; 0.99 ];
      line "batlife_request_duration_seconds_sum{kind=%S} %s" kind
        (float_v (Streamstat.Hist.sum h));
      line "batlife_request_duration_seconds_count{kind=%S} %d" kind
        (Streamstat.Hist.count h))
    t.hists;
  line "# HELP batlife_cache_entries Sessions interned in the model cache.";
  line "# TYPE batlife_cache_entries gauge";
  line "batlife_cache_entries %d" cache_size;
  line "batlife_cache_capacity %d" cache_capacity;
  line "# TYPE batlife_cache_hits_total counter";
  line "batlife_cache_hits_total %d" (counter_value "session.cache_hit");
  line "batlife_cache_misses_total %d" (counter_value "session.cache_miss");
  line "batlife_cache_evictions_total %d"
    (counter_value "session.cache_evictions");
  line "batlife_cache_evictions_capacity_total %d"
    (counter_value "session.cache_evictions_capacity");
  line "batlife_cache_evictions_bytes_total %d"
    (counter_value "session.cache_evictions_bytes");
  line "# HELP batlife_cache_bytes Estimated resident bytes of cached sessions.";
  line "# TYPE batlife_cache_bytes gauge";
  line "batlife_cache_bytes %s"
    (float_v (Telemetry.gauge_value (Telemetry.gauge "session.cache_bytes")));
  line "# HELP batlife_pool_jobs Worker domains in the fan-out pool.";
  line "# TYPE batlife_pool_jobs gauge";
  line "batlife_pool_jobs %d" t.jobs;
  line "# HELP batlife_kernel_touched_nnz_total Nonzeros streamed by sweeps.";
  line "# TYPE batlife_kernel_touched_nnz_total counter";
  line "batlife_kernel_touched_nnz_total %d"
    (counter_value "transient.touched_nnz");
  line "batlife_kernel_sweeps_total %d" (counter_value "transient.sweeps");
  Buffer.contents buf

let health_json t =
  Json.Obj
    [
      ("status", Json.Str "ok");
      ("uptime_s", Json.of_float (uptime_s t));
    ]

let close t =
  Option.iter Atomic_io.close_appender t.access;
  Option.iter Atomic_io.close_appender t.slow
