(** Declarative model descriptions for the query service.

    A [Model_spec.t] is everything a remote client may say about the
    system whose lifetime it wants: the workload (one of the built-in
    families or an explicit named-state CTMC), the KiBaM battery
    parameters, the discretisation step and the solver accuracy.  It
    is the unit of interning for the service's session cache — two
    requests describe the same cached [Discretized.Session] exactly
    when their specs have the same {!fingerprint}.

    The JSON form is {b canonical}: {!to_json} emits fields in a fixed
    order with exact [%.17g] float literals, so the fingerprint (a
    CRC-64 of that rendering) is a pure function of the spec's
    mathematical content, not of how the client happened to format its
    frame. *)

open Batlife_core

type workload =
  | Simple  (** the three-state send/receive/sleep radio *)
  | Burst  (** the bursty variant with a high-drain burst mode *)
  | Onoff of { frequency : float; k : int; on_current : float }
      (** Erlang-[k] on/off switching at [frequency] cycles/time *)
  | Custom of {
      states : (string * float) list;  (** [(name, current)] *)
      transitions : (string * string * float) list;
          (** [(from, to, rate)] *)
      initial : string;
    }  (** an explicit named-state workload CTMC *)

type t = {
  workload : workload;
  capacity : float;
  c : float;  (** available-charge fraction of the KiBaM *)
  k : float;  (** KiBaM well-transfer rate *)
  delta : float;  (** charge-discretisation step *)
  accuracy : float option;  (** solver accuracy; [None] = default *)
}

val to_json : t -> Batlife_numerics.Json.t
(** Canonical rendering (fixed field order, [%.17g] floats). *)

val of_json : ?source:string -> Batlife_numerics.Json.t -> t
(** Raises [Diag.Error (Parse_error _)] on missing/ill-typed fields or
    an unknown workload kind.  Semantic violations (non-positive
    capacity, unknown state names, ...) are {e not} checked here; they
    surface as [Invalid_model] when the spec is built. *)

val fingerprint : t -> string
(** 16-hex-digit CRC-64 of the canonical JSON rendering — the session
    cache's interning key. *)

val build : t -> Discretized.t
(** Expand the spec into the discretized CTMC (this is the Q*
    construction the cache exists to amortise).  Raises
    [Diag.Error (Invalid_model _)] / [Invalid_argument] on semantic
    violations. *)

val opts : t -> Batlife_ctmc.Solver_opts.t
(** The solver options a session for this spec is created with:
    defaults, with [accuracy] applied when present. *)
