(** The versioned query API and its line-delimited JSON wire codec.

    One request or response per line, each a JSON object whose ["v"]
    field carries the protocol version string {!version}
    (["batlife.query/1"]).  Unknown versions, malformed JSON and
    ill-typed fields never raise across the wire boundary: the
    decoders map them to the structured {!error} type (the same
    taxonomy as [Diag] — [kind] names the error class, [code] is the
    class's stable CLI exit code), which the server sends back as an
    [ok = false] frame.

    {b Request frame.}
    {v
    {"v":"batlife.query/1","id":"q1","model":{...},
     "query":{"kind":"cdf","times":[100,200]},"deadline_s":2.5}
    v}

    [query.kind] is one of:
    - ["cdf"]: the lifetime CDF at [times];
    - ["measures"]: per-time measures at one [time] — any subset of
      ["expected_charge"], ["mode_marginal"], ["charge_marginal"] and
      [{"kind":"joint","mode":m,"min_charge":x}];
    - ["percentiles"]: lifetime percentiles [ps], read off a CDF swept
      over [points] times up to [horizon];
    - ["stats"]: model statistics (state count, nonzeros,
      uniformisation rate, fingerprint) — no sweep;
    - {b admin kinds} (no ["model"] member required):
      ["server_stats"] — the live observability snapshot (schema
      ["batlife.stats/1"]); ["prometheus"] — the Prometheus text
      exposition wrapped in a ["text"] result; ["health"] — the
      health/readiness probe.

    {b Response frame.}
    {v
    {"v":"batlife.query/1","id":"q1","ok":true,"cache":"hit",
     "result":{"kind":"curve","times":[...],"probabilities":[...]}}
    {"v":"batlife.query/1","id":"q2","ok":false,
     "error":{"kind":"invalid_model","code":3,"message":"..."}}
    {"v":"batlife.query/1","id":"q3","ok":false,
     "error":{"kind":"overloaded","code":9,"message":"...",
              "retry_after_s":0.25}}
    v}

    An ["overloaded"] error (code 9) means the frame was shed by
    admission control before any work happened; it is the only
    retryable class and the only one carrying a ["retry_after_s"]
    backoff hint. *)

val version : string
(** ["batlife.query/1"]. *)

type measure =
  | Expected_charge
  | Mode_marginal
  | Charge_marginal
  | Joint of { mode : int; min_charge : float }

type payload =
  | Cdf of { times : float array }
  | Measures of { time : float; measures : measure list }
  | Percentiles of { ps : float array; horizon : float; points : int }
  | Stats
  | Server_stats  (** admin: live service snapshot *)
  | Prometheus  (** admin: Prometheus text exposition *)
  | Health  (** admin: health/readiness probe *)

val payload_kind : payload -> string
(** The wire name of the payload's kind (["cdf"], ["server_stats"],
    ...). *)

val is_admin : payload -> bool
(** Admin payloads address the server itself and need no model. *)

type request = {
  id : string;
  model : Model_spec.t option;
      (** [None] only for admin payloads; the decoder rejects model
          queries without a ["model"] member *)
  payload : payload;
  deadline_s : float option;
      (** per-request wall-clock budget, seconds *)
}

type kernel_stats = {
  k_touched_nnz : int;
  k_active_rows : int;
  k_support_lo : int;
  k_support_hi : int;
  k_skipped_mass : float;
}
(** Adaptive-kernel work telemetry of the session's most recent sweep
    ([Batlife_ctmc.Transient.stats] fields of the same names): the
    nonzeros and rows the sweep actually streamed, its final support
    window, and the probability mass the pruner dropped. *)

type result =
  | Curve of { times : float array; probabilities : float array }
  | Per_time of { time : float; values : (string * float array) list }
      (** one entry per requested measure, in request order; scalar
          measures are singleton arrays *)
  | Quantiles of { ps : float array; values : float array }
  | Model_stats of {
      states : int;
      nnz : int;
      unif_rate : float;
      fingerprint : string;
      kernel : kernel_stats option;
          (** [None] until the cached session has swept at least once
              (the ["kernel"] member is simply absent on the wire) *)
    }
  | Service_stats of { stats : Batlife_numerics.Json.t }
      (** the ["batlife.stats/1"] snapshot, verbatim *)
  | Text of { format : string; text : string }
      (** non-JSON scrape output carried as a string; [format] is
          ["prometheus"] for the exposition text *)
  | Health_report of { status : string; uptime_s : float }

type error = {
  kind : string;
  code : int;
  message : string;
  retry_after_s : float option;
      (** present only on retryable errors (today: ["overloaded"]) — a
          backoff hint in seconds, derived from the rolling p90 batch
          latency *)
}

type response = {
  r_id : string;
  cache : string option;  (** ["hit"] / ["miss"] for model queries *)
  result : (result, error) Result.t;
}

val error_of_diag : Batlife_numerics.Diag.error -> error
(** [kind] is the lower-snake-case class name, [code] its
    {!Batlife_numerics.Diag.exit_code}. *)

val protocol_error : string -> error
(** A malformed-frame error: [kind = "protocol"], [code = 4] (the
    parse-error exit code). *)

val overloaded_code : int
(** [9] — the stable exit code of the ["overloaded"] error class. *)

val overloaded_error : retry_after_s:float -> string -> error
(** A load-shed rejection: [kind = "overloaded"], [code =
    overloaded_code], retryable after [retry_after_s] seconds.  Sent
    when the admission queue is full; the request was {e not}
    processed. *)

(** {1 Codec}

    Encoders emit one line (trailing newline included).  [of_line]
    decoders return [Error] — never raise — on malformed input. *)

val request_to_line : request -> string
val request_of_line : ?source:string -> string -> (request, error) Result.t
val response_to_line : response -> string
val response_of_line : ?source:string -> string -> (response, error) Result.t
