open Batlife_numerics
open Batlife_battery
open Batlife_workload
open Batlife_core

type workload =
  | Simple
  | Burst
  | Onoff of { frequency : float; k : int; on_current : float }
  | Custom of {
      states : (string * float) list;
      transitions : (string * string * float) list;
      initial : string;
    }

type t = {
  workload : workload;
  capacity : float;
  c : float;
  k : float;
  delta : float;
  accuracy : float option;
}

(* Canonical rendering: field order is fixed and floats go through
   Json.of_float's %.17g, so the fingerprint never depends on client
   formatting. *)
let workload_to_json = function
  | Simple -> Json.Obj [ ("kind", Json.Str "simple") ]
  | Burst -> Json.Obj [ ("kind", Json.Str "burst") ]
  | Onoff { frequency; k; on_current } ->
      Json.Obj
        [
          ("kind", Json.Str "onoff");
          ("frequency", Json.of_float frequency);
          ("k", Json.of_int k);
          ("on_current", Json.of_float on_current);
        ]
  | Custom { states; transitions; initial } ->
      Json.Obj
        [
          ("kind", Json.Str "custom");
          ( "states",
            Json.Arr
              (List.map
                 (fun (name, current) ->
                   Json.Obj
                     [
                       ("name", Json.Str name);
                       ("current", Json.of_float current);
                     ])
                 states) );
          ( "transitions",
            Json.Arr
              (List.map
                 (fun (src, dst, rate) ->
                   Json.Obj
                     [
                       ("from", Json.Str src);
                       ("to", Json.Str dst);
                       ("rate", Json.of_float rate);
                     ])
                 transitions) );
          ("initial", Json.Str initial);
        ]

let to_json t =
  let battery =
    [
      ("capacity", Json.of_float t.capacity);
      ("c", Json.of_float t.c);
      ("k", Json.of_float t.k);
    ]
  in
  let accuracy =
    match t.accuracy with
    | None -> []
    | Some a -> [ ("accuracy", Json.of_float a) ]
  in
  Json.Obj
    ([
       ("workload", workload_to_json t.workload);
       ("battery", Json.Obj battery);
       ("delta", Json.of_float t.delta);
     ]
    @ accuracy)

let parse_error ?(source = "<model>") ?field fmt =
  Printf.ksprintf
    (fun message ->
      Diag.fail (Diag.Parse_error { source; line = 0; field; message }))
    fmt

let workload_of_json ?source j =
  match Json.to_string ?source ~field:"workload.kind" (Json.member ?source ~field:"kind" j) with
  | "simple" -> Simple
  | "burst" -> Burst
  | "onoff" ->
      Onoff
        {
          frequency =
            Json.to_finite_float ?source ~field:"workload.frequency"
              (Json.member ?source ~field:"frequency" j);
          k = Json.to_int ?source ~field:"workload.k" (Json.member ?source ~field:"k" j);
          on_current =
            Json.to_finite_float ?source ~field:"workload.on_current"
              (Json.member ?source ~field:"on_current" j);
        }
  | "custom" ->
      let states =
        Json.to_list ?source ~field:"workload.states"
          (Json.member ?source ~field:"states" j)
        |> List.map (fun s ->
               ( Json.to_string ?source ~field:"state.name"
                   (Json.member ?source ~field:"name" s),
                 Json.to_finite_float ?source ~field:"state.current"
                   (Json.member ?source ~field:"current" s) ))
      in
      let transitions =
        Json.to_list ?source ~field:"workload.transitions"
          (Json.member ?source ~field:"transitions" j)
        |> List.map (fun tr ->
               ( Json.to_string ?source ~field:"transition.from"
                   (Json.member ?source ~field:"from" tr),
                 Json.to_string ?source ~field:"transition.to"
                   (Json.member ?source ~field:"to" tr),
                 Json.to_finite_float ?source ~field:"transition.rate"
                   (Json.member ?source ~field:"rate" tr) ))
      in
      let initial =
        Json.to_string ?source ~field:"workload.initial"
          (Json.member ?source ~field:"initial" j)
      in
      Custom { states; transitions; initial }
  | other ->
      parse_error ?source ~field:"workload.kind"
        "unknown workload kind %S (expected simple, burst, onoff or custom)"
        other

let of_json ?source j =
  let workload = workload_of_json ?source (Json.member ?source ~field:"workload" j) in
  let battery = Json.member ?source ~field:"battery" j in
  let f field parent =
    Json.to_finite_float ?source ~field (Json.member ?source ~field parent)
  in
  {
    workload;
    capacity = f "capacity" battery;
    c = f "c" battery;
    k = f "k" battery;
    delta = f "delta" j;
    accuracy =
      (match Json.member_opt ~field:"accuracy" j with
      | None -> None
      | Some a -> Some (Json.to_finite_float ?source ~field:"accuracy" a));
  }

let fingerprint t = Printf.sprintf "%016Lx" (Crc64.digest (Json.encode (to_json t)))

let workload_model = function
  | Simple -> Simple.model ()
  | Burst -> Burst.model ()
  | Onoff { frequency; k; on_current } ->
      Onoff.model ~frequency ~k ~on_current ()
  | Custom { states; transitions; initial } ->
      Model.of_spec ~states ~transitions ~initial

let build t =
  let battery = Kibam.params ~capacity:t.capacity ~c:t.c ~k:t.k in
  let model = Kibamrm.create ~workload:(workload_model t.workload) ~battery in
  Discretized.build ~delta:t.delta model

let opts t =
  match t.accuracy with
  | None -> Batlife_ctmc.Solver_opts.default
  | Some accuracy -> Batlife_ctmc.Solver_opts.make ~accuracy ()
