(** The model-fingerprint session cache.

    Models are interned by {!Model_spec.fingerprint}: the first
    request for a spec pays the Q* construction ([Discretized.build])
    and the session creation (kernel build on first flush); every
    later request for the same fingerprint reuses the cached
    [Discretized.Session] — and with it the CSR matrix, the validated
    uniformisation rate, the Fox–Glynn windows of every time point
    ever queried, the sweep buffers and the parallel stepping kernel.
    A repeat query therefore performs {e zero} Q* constructions and
    {e zero} kernel builds, which the test suite asserts through the
    ["discretized.builds"] and kernel-build telemetry counters.

    Eviction is LRU with a fixed entry capacity.  Hits and misses bump
    the always-on ["session.cache_hit"] / ["session.cache_miss"]
    counters (evictions bump ["session.cache_evictions"]), so the
    cache's effectiveness is observable in [--metrics] output and in
    the service benchmark.

    Not domain-safe: all cache operations must stay on the server's
    accept/dispatch domain (worker domains only {e use} the session
    they are handed, and two concurrent groups never share one). *)

open Batlife_core

type entry = {
  spec : Model_spec.t;
  fingerprint : string;
  d : Discretized.t;
  session : Discretized.Session.session;
}

type t

val create : capacity:int -> t
(** Raises [Invalid_argument] on [capacity < 1]. *)

val find_or_build : t -> Model_spec.t -> entry * [ `Hit | `Miss ]
(** The interned entry for the spec's fingerprint, building (and
    possibly evicting the least-recently-used entry) on a miss.
    Build failures propagate as the usual structured exceptions and
    leave the cache unchanged. *)

val size : t -> int
val capacity : t -> int
val hits : t -> int
val misses : t -> int
val evictions : t -> int
(** Process-wide totals (the underlying telemetry counters are shared
    across caches, like all counters). *)
