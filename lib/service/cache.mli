(** The model-fingerprint session cache.

    Models are interned by {!Model_spec.fingerprint}: the first
    request for a spec pays the Q* construction ([Discretized.build])
    and the session creation (kernel build on first flush); every
    later request for the same fingerprint reuses the cached
    [Discretized.Session] — and with it the CSR matrix, the validated
    uniformisation rate, the Fox–Glynn windows of every time point
    ever queried, the sweep buffers and the parallel stepping kernel.
    A repeat query therefore performs {e zero} Q* constructions and
    {e zero} kernel builds, which the test suite asserts through the
    ["discretized.builds"] and kernel-build telemetry counters.

    Eviction is LRU along two independent bounds: a fixed entry
    capacity (checked at insertion) and an optional resident-byte
    budget (checked by {!enforce_budget} after each batch, against the
    {!Batlife_core.Discretized.Session.approx_bytes} estimates — 48
    large models are not 48 small ones).  Hits and misses bump the
    always-on ["session.cache_hit"] / ["session.cache_miss"] counters;
    evictions bump ["session.cache_evictions"] plus a per-reason
    counter (["session.cache_evictions_capacity"] /
    ["session.cache_evictions_bytes"]); the ["session.cache_size"] and
    ["session.cache_bytes"] gauges track the resident set — so the
    cache's effectiveness is observable in [--metrics] output, the
    stats snapshot and the service benchmark.

    Not domain-safe: all cache operations must stay on the server's
    accept/dispatch domain (worker domains only {e use} the session
    they are handed, and two concurrent groups never share one). *)

open Batlife_core

type entry = {
  spec : Model_spec.t;
  fingerprint : string;
  d : Discretized.t;
  session : Discretized.Session.session;
}

type t

val create : capacity:int -> ?max_bytes:int -> unit -> t
(** Raises [Invalid_argument] on [capacity < 1] or [max_bytes < 1].
    [max_bytes] (absent: unbounded) is the resident-byte budget
    enforced by {!enforce_budget}. *)

val find_or_build : t -> Model_spec.t -> entry * [ `Hit | `Miss ]
(** The interned entry for the spec's fingerprint, building (and
    possibly evicting the least-recently-used entry) on a miss.
    Build failures propagate as the usual structured exceptions and
    leave the cache unchanged. *)

val enforce_budget : t -> unit
(** Re-estimate every resident session's bytes (sessions grow as they
    warm up) and evict LRU entries until the total is within
    [max_bytes].  A single session larger than the whole budget is
    still admitted by {!find_or_build} — it is evicted here, {e after}
    serving its batch, and counted under
    ["session.cache_evictions_bytes"].  No-op without a budget beyond
    refreshing the gauges.  Call after each batch's model work. *)

val size : t -> int
val capacity : t -> int
val max_bytes : t -> int option

val resident_bytes : t -> int
(** Byte estimate of the resident set as of the last insertion or
    {!enforce_budget} pass. *)

val hits : t -> int
val misses : t -> int
val evictions : t -> int
(** Process-wide totals (the underlying telemetry counters are shared
    across caches, like all counters). *)
