(** Wire loops for the query service: line-delimited JSON over
    stdin/stdout or a Unix-domain socket, hardened against overload
    and misbehaving clients.

    {b Batching.}  The read loop batches {b greedily}: it blocks for
    the first request, then drains every further complete line already
    buffered or immediately readable (a zero-timeout [select]).  The
    first [max_batch] frames form the batch handed to
    {!Service.handle_batch}; up to [limits.queue] more wait as the
    connection's pending queue (served by the following batches before
    anything new is read).

    {b Admission control.}  Frames drained beyond the pending queue
    are {e shed}: answered immediately with a structured
    ["overloaded"] error (code 9, [retry_after_s] from
    {!Obs.retry_hint_s}) and never processed.  Sheds bump the
    ["service.shed"] counter and are recorded (kind ["overloaded"]) in
    the access log; admitted requests bump ["service.admitted"] inside
    the service.

    {b Connection guards.}  Per-connection limits bound what one
    client can cost: a frame longer than [max_frame_bytes] with no
    newline gets a structured error and the connection dropped; a
    blocking read waits at most [read_idle_s] and a response write at
    most [write_timeout_s] ([select] deadlines — a stalled or dead
    client can never wedge the serial accept loop); [max_strikes]
    malformed frames end the connection.

    {b Drain.}  With a {!Drain.t}, the loops stop accepting
    connections and reading frames as soon as a drain is requested,
    finish (or, past the drain deadline, cancel) admitted work, and
    return — see {!Drain}.

    {b Fault sites.}  The IO paths consult
    [server.{slow_read,disconnect,frame_flood,short_write}]
    ({!Batlife_numerics.Fi}), driven by [bench --serve-chaos-report].

    Malformed frames are answered in place with [ok = false]
    protocol/parse errors ({!Query.request_of_line}); the loop never
    dies on bad input, only on EOF, a guard trip, a drain, or (for the
    socket server) after [max_connections] clients. *)

(** Per-connection guard limits. *)
type limits = {
  max_frame_bytes : int;
      (** drop the connection when a frame exceeds this without a
          newline (memory bound per connection) *)
  read_idle_s : float;  (** blocking-read liveness deadline, seconds *)
  write_timeout_s : float;  (** response-write liveness deadline, seconds *)
  max_strikes : int;
      (** malformed frames tolerated before the connection is dropped *)
  queue : int;
      (** pending-queue capacity: admitted frames beyond the batch in
          hand; everything past it is shed *)
}

val default_limits : limits
(** [max_frame_bytes = 1 MiB; read_idle_s = 300; write_timeout_s = 30;
    max_strikes = 5; queue = 128]. *)

val serve_fd :
  ?limits:limits ->
  ?drain:Drain.t ->
  ?max_batch:int ->
  Service.t ->
  in_fd:Unix.file_descr ->
  out_fd:Unix.file_descr ->
  unit
(** Serve one connection: read request lines from [in_fd] until EOF, a
    guard trip, or a drain; write one response line per admitted
    request to [out_fd] (batch responses in request order; shed
    responses immediately).  [max_batch] (default 64) caps greedy
    batching.  Raises [Invalid_argument] on non-positive limits. *)

val serve_stdio :
  ?limits:limits -> ?drain:Drain.t -> ?max_batch:int -> Service.t -> unit
(** {!serve_fd} over stdin/stdout — the [batlife serve] default. *)

val serve_unix :
  ?limits:limits ->
  ?drain:Drain.t ->
  ?max_batch:int ->
  ?max_connections:int ->
  ?backlog:int ->
  Service.t ->
  path:string ->
  unit
(** Bind a Unix-domain socket at [path], then accept connections and
    serve each in turn — connections share the service, so the session
    cache persists across clients.  An existing socket file is removed
    only after a failed [connect] probe; if a live daemon answers the
    probe, raises a structured [Parse_error] rather than stealing the
    path.  [backlog] (default 64) is the [listen] backlog.
    [max_connections] stops after that many clients (tests); default:
    loop until drained.  The accept wait polls the drain flag every
    100 ms.  The socket file is removed on return (including
    exceptional return). *)
