(** Wire loops for the query service: line-delimited JSON over
    stdin/stdout or a Unix-domain socket.

    The read loop batches {b greedily}: it blocks for the first
    request, then drains every further complete line already buffered
    or immediately readable (a zero-timeout [select]) up to
    [max_batch], and hands the whole batch to
    {!Service.handle_batch}.  A client that pipes N queries at once
    therefore gets same-model queries answered from one sweep and
    distinct models fanned out in parallel — without any framing
    beyond newlines.

    Malformed frames are answered in place with [ok = false]
    protocol/parse errors ({!Query.request_of_line}); the loop never
    dies on bad input, only on EOF (or, for the socket server, after
    [max_connections] clients). *)

val serve_fd :
  ?max_batch:int ->
  Service.t ->
  in_fd:Unix.file_descr ->
  out_fd:Unix.file_descr ->
  unit
(** Serve one connection: read request lines from [in_fd] until EOF,
    write one response line per request to [out_fd] (batch responses
    in request order).  [max_batch] (default 64) caps greedy
    batching. *)

val serve_stdio : ?max_batch:int -> Service.t -> unit
(** {!serve_fd} over stdin/stdout — the [batlife serve] default. *)

val serve_unix :
  ?max_batch:int ->
  ?max_connections:int ->
  Service.t ->
  path:string ->
  unit
(** Bind a Unix-domain socket at [path] (replacing a stale socket
    file), then accept connections and {!serve_fd} each in turn —
    connections share the service, so the session cache persists
    across clients.  [max_connections] stops after that many clients
    (tests); default: loop forever.  The socket file is removed on
    return. *)
