(** Graceful-drain control for the serve loops.

    A drain is the third arm of the overload story (shed what you
    cannot admit, guard each connection, and — on SIGTERM or a second
    SIGINT — stop accepting, finish what was admitted, and leave):

    + {!request} flips an atomic flag and stamps a wall-clock deadline
      [now + drain_s]; it is safe from a signal handler.
    + The serve loops poll {!requested} between accepts and batches:
      once set, no new connection is accepted and no new frame is
      read, but already-admitted work still runs to completion.
    + A watchdog domain (spawned by {!create}) cancels every
      {!register}ed in-flight {!Batlife_numerics.Budget.t} once the
      deadline passes, so a batch that cannot finish inside [drain_s]
      ends as a structured [Cancelled] (exit-code-8) response instead
      of holding the process open.

    Within the deadline the drain is invisible to admitted requests:
    their responses are bitwise identical to an undisturbed run. *)

type t

val create : ?drain_s:float -> unit -> t
(** A fresh control with its watchdog domain running.  [drain_s]
    (default 5.0) is the allowance between {!request} and forced
    cancellation; raises [Invalid_argument] unless positive and
    finite.  Pair with {!stop}. *)

val drain_s : t -> float

val request : t -> unit
(** Request a drain: stamps the deadline and sets the flag.
    Idempotent (the first call wins the deadline); safe from a signal
    handler or another domain. *)

val requested : t -> bool

val register : t -> Batlife_numerics.Budget.t -> unit
(** Expose an in-flight budget to deadline cancellation; the caller
    must {!unregister} it when its batch group completes.  A budget
    registered after the deadline has already passed is cancelled
    immediately. *)

val unregister : t -> Batlife_numerics.Budget.t -> unit

val stop : t -> unit
(** Stop and join the watchdog domain (idempotent).  Call on every
    server exit path. *)
