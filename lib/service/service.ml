open Batlife_numerics
open Batlife_core

type t = { cache : Cache.t; jobs : int option }

let create ?(cache_capacity = 32) ?jobs () =
  { cache = Cache.create ~capacity:cache_capacity; jobs }

let cache t = t.cache

let invalid_argument_error msg =
  Query.error_of_diag
    (Diag.Invalid_model { what = "query"; violations = [ msg ] })

(* What one request registers on its group's session: a function of
   the swept results, forced only after the shared flush. *)
type pending_result = unit -> Query.result

let register_cdf session ~times : pending_result =
  let pending = Discretized.Session.empty_probability session ~times in
  fun () ->
    Query.Curve
      { times; probabilities = Discretized.Session.get pending }

let register_measures session ~time measures : pending_result =
  let open Discretized.Session in
  let parts =
    List.map
      (fun m ->
        match (m : Query.measure) with
        | Query.Expected_charge ->
            let p = expected_available_charge session ~time in
            fun () -> [ ("expected_charge", [| get p |]) ]
        | Query.Mode_marginal ->
            let p = mode_marginal session ~time in
            fun () -> [ ("mode_marginal", get p) ]
        | Query.Charge_marginal ->
            let p = available_charge_marginal session ~time in
            fun () ->
              let pairs = get p in
              [
                ("charge_levels", Array.map fst pairs);
                ("charge_marginal", Array.map snd pairs);
              ]
        | Query.Joint { mode; min_charge } ->
            let p = joint_probability session ~time ~mode ~min_charge in
            fun () -> [ ("joint", [| get p |]) ])
      measures
  in
  fun () ->
    Query.Per_time { time; values = List.concat_map (fun f -> f ()) parts }

let register_percentiles session ~ps ~horizon ~points : pending_result =
  let violations = ref [] in
  if points < 2 then
    violations :=
      Printf.sprintf "points = %d; need at least 2 CDF samples" points
      :: !violations;
  if not (Float.is_finite horizon) || horizon <= 0. then
    violations :=
      Printf.sprintf "horizon = %g; need a positive finite horizon" horizon
      :: !violations;
  Array.iter
    (fun p ->
      if not (p >= 0. && p <= 1.) then
        violations :=
          Printf.sprintf "percentile %g lies outside [0, 1]" p :: !violations)
    ps;
  if !violations <> [] then
    Diag.invalid_model ~what:"percentiles query" (List.rev !violations);
  let times =
    Array.init points (fun i ->
        horizon *. float_of_int (i + 1) /. float_of_int points)
  in
  let pending = Discretized.Session.empty_probability session ~times in
  fun () ->
    let probabilities = Array.copy (Discretized.Session.get pending) in
    Lifetime.sanitize times probabilities;
    let interp = Interp.create ~xs:times ~ys:probabilities in
    Query.Quantiles { ps; values = Array.map (Interp.inverse interp) ps }

let register (entry : Cache.entry) (r : Query.request) : pending_result =
  match r.Query.payload with
  | Query.Cdf { times } -> register_cdf entry.Cache.session ~times
  | Query.Measures { time; measures } ->
      register_measures entry.Cache.session ~time measures
  | Query.Percentiles { ps; horizon; points } ->
      register_percentiles entry.Cache.session ~ps ~horizon ~points
  | Query.Stats ->
      let states = Discretized.n_states entry.Cache.d
      and nnz = Discretized.nnz entry.Cache.d
      and unif_rate =
        Discretized.Session.uniformisation_rate entry.Cache.session
      in
      fun () ->
        (* Read inside the thunk, after the group's flush: a stats
           query batched with a CDF query reports the kernel telemetry
           of the sweep that just answered it. *)
        let kernel =
          match Discretized.Session.last_stats entry.Cache.session with
          | None -> None
          | Some (s : Batlife_ctmc.Transient.stats) ->
              Some
                {
                  Query.k_touched_nnz = s.Batlife_ctmc.Transient.touched_nnz;
                  k_active_rows = s.Batlife_ctmc.Transient.active_rows;
                  k_support_lo = s.Batlife_ctmc.Transient.support_lo;
                  k_support_hi = s.Batlife_ctmc.Transient.support_hi;
                  k_skipped_mass = s.Batlife_ctmc.Transient.skipped_mass;
                }
        in
        Query.Model_stats
          {
            states;
            nnz;
            unif_rate;
            fingerprint = entry.Cache.fingerprint;
            kernel;
          }

(* One fingerprint group: every member registers on the shared
   session, then ONE flush answers them all.  A member that fails at
   registration (bad mode index, bad percentile) gets its own error
   response and the rest of the group still sweeps; a flush failure
   (deadline, breakdown) is the answer for every swept member. *)
let run_group ~budget (entry : Cache.entry) ~cache_status members =
  let registered =
    List.map
      (fun (idx, (r : Query.request)) ->
        match register entry r with
        | force -> (idx, r, Ok force)
        | exception Diag.Error e -> (idx, r, Error (Query.error_of_diag e))
        | exception Invalid_argument msg ->
            (idx, r, Error (invalid_argument_error msg)))
      members
  in
  let flush =
    match
      Discretized.Session.run ?budget entry.Cache.session
    with
    | (_ : Batlife_ctmc.Transient.stats) -> Ok ()
    | exception Diag.Error e -> Error (Query.error_of_diag e)
  in
  List.map
    (fun (idx, (r : Query.request), reg) ->
      let result =
        match (reg, flush) with
        | Error e, _ -> Error e
        | Ok _, Error e -> Error e
        | Ok force, Ok () -> (
            match force () with
            | v -> Ok v
            | exception Diag.Error e -> Error (Query.error_of_diag e))
      in
      (idx, { Query.r_id = r.Query.id; cache = Some cache_status; result }))
    registered

let group_budget members =
  match
    List.filter_map (fun (_, r) -> r.Query.deadline_s) members
  with
  | [] -> None
  | deadlines ->
      let wall_s = List.fold_left Float.min Float.infinity deadlines in
      (* Budget.create rejects non-positive allowances; an absurd
         deadline is still a deadline, so clamp to "already expired
         at the first poll" rather than crash the group. *)
      Some (Budget.create ~wall_s:(Float.max wall_s 1e-9) ())

let handle_batch t requests =
  let indexed = List.mapi (fun i r -> (i, r)) requests in
  (* Group by fingerprint, preserving first-appearance order.  The
     cache is touched here, on the dispatch domain only. *)
  let order = ref [] and table = Hashtbl.create 8 in
  List.iter
    (fun (idx, (r : Query.request)) ->
      let key = Model_spec.fingerprint r.Query.model in
      (match Hashtbl.find_opt table key with
      | Some members -> members := (idx, r) :: !members
      | None ->
          Hashtbl.add table key (ref [ (idx, r) ]);
          order := key :: !order))
    indexed;
  let groups =
    List.rev_map
      (fun key ->
        let members = List.rev !(Hashtbl.find table key) in
        let _, first = List.hd members in
        match Cache.find_or_build t.cache first.Query.model with
        | entry, status ->
            let cache_status =
              match status with `Hit -> "hit" | `Miss -> "miss"
            in
            Ok (entry, cache_status, members)
        | exception Diag.Error e -> Error (Query.error_of_diag e, members)
        | exception Invalid_argument msg ->
            Error (invalid_argument_error msg, members))
      !order
    |> List.rev |> Array.of_list
  in
  (* Distinct models fan out across the pool; capture/replay keeps the
     merged Diag and Telemetry streams in batch order regardless of
     which domain evaluated which group. *)
  let pool =
    Pool.get ~jobs:(match t.jobs with Some j -> j | None -> Pool.default_jobs ())
  in
  let evaluated =
    Pool.map_array pool
      (fun group ->
        Diag.capture (fun () ->
            Telemetry.capture (fun () ->
                match group with
                | Ok (entry, cache_status, members) ->
                    let budget = group_budget members in
                    run_group ~budget entry ~cache_status members
                | Error (e, members) ->
                    List.map
                      (fun (idx, (r : Query.request)) ->
                        ( idx,
                          {
                            Query.r_id = r.Query.id;
                            cache = None;
                            result = Error e;
                          } ))
                      members)))
      groups
  in
  let responses =
    Array.to_list evaluated
    |> List.concat_map (fun ((rs, spans), events) ->
           Diag.replay events;
           Telemetry.replay spans;
           rs)
  in
  List.stable_sort (fun (a, _) (b, _) -> compare a b) responses
  |> List.map snd

let handle t r =
  match handle_batch t [ r ] with
  | [ response ] -> response
  | _ -> assert false
