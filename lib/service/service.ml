open Batlife_numerics
open Batlife_core

type t = { cache : Cache.t; jobs : int option; obs : Obs.t }

(* Every request that reaches the engine was, by definition, admitted;
   the shedding side of the pair ("service.shed") lives in Server,
   where frames are rejected before they get here. *)
let c_admitted = Telemetry.counter "service.admitted"

let create ?(cache_capacity = 32) ?cache_max_bytes ?jobs ?obs () =
  let obs = match obs with Some o -> o | None -> Obs.create ?jobs () in
  {
    cache = Cache.create ~capacity:cache_capacity ?max_bytes:cache_max_bytes ();
    jobs;
    obs;
  }

let cache t = t.cache
let obs t = t.obs

let invalid_argument_error msg =
  Query.error_of_diag
    (Diag.Invalid_model { what = "query"; violations = [ msg ] })

(* What one request registers on its group's session: a function of
   the swept results, forced only after the shared flush. *)
type pending_result = unit -> Query.result

let register_cdf session ~times : pending_result =
  let pending = Discretized.Session.empty_probability session ~times in
  fun () ->
    Query.Curve
      { times; probabilities = Discretized.Session.get pending }

let register_measures session ~time measures : pending_result =
  let open Discretized.Session in
  let parts =
    List.map
      (fun m ->
        match (m : Query.measure) with
        | Query.Expected_charge ->
            let p = expected_available_charge session ~time in
            fun () -> [ ("expected_charge", [| get p |]) ]
        | Query.Mode_marginal ->
            let p = mode_marginal session ~time in
            fun () -> [ ("mode_marginal", get p) ]
        | Query.Charge_marginal ->
            let p = available_charge_marginal session ~time in
            fun () ->
              let pairs = get p in
              [
                ("charge_levels", Array.map fst pairs);
                ("charge_marginal", Array.map snd pairs);
              ]
        | Query.Joint { mode; min_charge } ->
            let p = joint_probability session ~time ~mode ~min_charge in
            fun () -> [ ("joint", [| get p |]) ])
      measures
  in
  fun () ->
    Query.Per_time { time; values = List.concat_map (fun f -> f ()) parts }

let register_percentiles session ~ps ~horizon ~points : pending_result =
  let violations = ref [] in
  if points < 2 then
    violations :=
      Printf.sprintf "points = %d; need at least 2 CDF samples" points
      :: !violations;
  if not (Float.is_finite horizon) || horizon <= 0. then
    violations :=
      Printf.sprintf "horizon = %g; need a positive finite horizon" horizon
      :: !violations;
  Array.iter
    (fun p ->
      if not (p >= 0. && p <= 1.) then
        violations :=
          Printf.sprintf "percentile %g lies outside [0, 1]" p :: !violations)
    ps;
  if !violations <> [] then
    Diag.invalid_model ~what:"percentiles query" (List.rev !violations);
  let times =
    Array.init points (fun i ->
        horizon *. float_of_int (i + 1) /. float_of_int points)
  in
  let pending = Discretized.Session.empty_probability session ~times in
  fun () ->
    let probabilities = Array.copy (Discretized.Session.get pending) in
    Lifetime.sanitize times probabilities;
    let interp = Interp.create ~xs:times ~ys:probabilities in
    Query.Quantiles { ps; values = Array.map (Interp.inverse interp) ps }

let register (entry : Cache.entry) (r : Query.request) : pending_result =
  match r.Query.payload with
  | Query.Cdf { times } -> register_cdf entry.Cache.session ~times
  | Query.Measures { time; measures } ->
      register_measures entry.Cache.session ~time measures
  | Query.Percentiles { ps; horizon; points } ->
      register_percentiles entry.Cache.session ~ps ~horizon ~points
  | Query.Stats ->
      let states = Discretized.n_states entry.Cache.d
      and nnz = Discretized.nnz entry.Cache.d
      and unif_rate =
        Discretized.Session.uniformisation_rate entry.Cache.session
      in
      fun () ->
        (* Read inside the thunk, after the group's flush: a stats
           query batched with a CDF query reports the kernel telemetry
           of the sweep that just answered it. *)
        let kernel =
          match Discretized.Session.last_stats entry.Cache.session with
          | None -> None
          | Some (s : Batlife_ctmc.Transient.stats) ->
              Some
                {
                  Query.k_touched_nnz = s.Batlife_ctmc.Transient.touched_nnz;
                  k_active_rows = s.Batlife_ctmc.Transient.active_rows;
                  k_support_lo = s.Batlife_ctmc.Transient.support_lo;
                  k_support_hi = s.Batlife_ctmc.Transient.support_hi;
                  k_skipped_mass = s.Batlife_ctmc.Transient.skipped_mass;
                }
        in
        Query.Model_stats
          {
            states;
            nnz;
            unif_rate;
            fingerprint = entry.Cache.fingerprint;
            kernel;
          }
  | Query.Server_stats | Query.Prometheus | Query.Health ->
      (* Admin queries are split off before grouping. *)
      assert false

(* Run [f] under a request's trace context: spans and Diag notes it
   records carry the request id (the access log line carries the same
   id, which is how one slow request is reconstructed end-to-end). *)
let in_context rid f =
  Diag.with_context rid (fun () -> Telemetry.with_context rid f)

(* One fingerprint group: every member registers on the shared
   session, then ONE flush answers them all.  A member that fails at
   registration (bad mode index, bad percentile) gets its own error
   response and the rest of the group still sweeps; a flush failure
   (deadline, breakdown) is the answer for every swept member.
   Registration and forcing run under each member's own request id;
   the shared flush runs under the joined ids of the whole group. *)
let run_group ~budget (entry : Cache.entry) ~cache_status members =
  let registered =
    List.map
      (fun (idx, rid, (r : Query.request)) ->
        match in_context rid (fun () -> register entry r) with
        | force -> (idx, rid, r, Ok force)
        | exception Diag.Error e -> (idx, rid, r, Error (Query.error_of_diag e))
        | exception Invalid_argument msg ->
            (idx, rid, r, Error (invalid_argument_error msg)))
      members
  in
  let ctx = String.concat "+" (List.map (fun (_, rid, _) -> rid) members) in
  let flush =
    match
      Discretized.Session.run ?budget ~ctx entry.Cache.session
    with
    | (_ : Batlife_ctmc.Transient.stats) -> Ok ()
    | exception Diag.Error e -> Error (Query.error_of_diag e)
  in
  List.map
    (fun (idx, rid, (r : Query.request), reg) ->
      let result =
        match (reg, flush) with
        | Error e, _ -> Error e
        | Ok _, Error e -> Error e
        | Ok force, Ok () -> (
            match in_context rid force with
            | v -> Ok v
            | exception Diag.Error e -> Error (Query.error_of_diag e))
      in
      (idx, rid, r, { Query.r_id = r.Query.id; cache = Some cache_status; result }))
    registered

(* The group's budget and a release thunk.  Without a drain control
   this is the per-request deadline story alone.  With one, every
   group gets a budget (a pure cancel token when no deadline asked for
   one) registered for deadline cancellation: a SIGTERM arriving
   mid-flush can then end the sweep as a structured [Cancelled] once
   the drain allowance runs out. *)
let group_budget ?drain members =
  let deadline_budget =
    match
      List.filter_map (fun (_, _, r) -> r.Query.deadline_s) members
    with
    | [] -> None
    | deadlines ->
        let wall_s = List.fold_left Float.min Float.infinity deadlines in
        (* Budget.create rejects non-positive allowances; an absurd
           deadline is still a deadline, so clamp to "already expired
           at the first poll" rather than crash the group. *)
        Some (Budget.create ~wall_s:(Float.max wall_s 1e-9) ())
  in
  match drain with
  | None -> (deadline_budget, fun () -> ())
  | Some d ->
      let b =
        match deadline_budget with
        | Some b -> b
        | None -> Budget.create ()
      in
      Drain.register d b;
      (Some b, fun () -> Drain.unregister d b)

let answer_admin t (r : Query.request) =
  let cache_size = Cache.size t.cache
  and cache_capacity = Cache.capacity t.cache in
  match r.Query.payload with
  | Query.Server_stats ->
      Query.Service_stats
        { stats = Obs.stats_json t.obs ~cache_size ~cache_capacity }
  | Query.Prometheus ->
      Query.Text
        {
          format = "prometheus";
          text = Obs.prometheus t.obs ~cache_size ~cache_capacity;
        }
  | Query.Health ->
      Query.Health_report { status = "ok"; uptime_s = Obs.uptime_s t.obs }
  | Query.Cdf _ | Query.Measures _ | Query.Percentiles _ | Query.Stats ->
      assert false

let observation ~rid ~(r : Query.request) ~fingerprint
    ~(resp : Query.response) ~latency_s ~batch ~group ~phases :
    Obs.observation =
  let ok, code =
    match resp.Query.result with
    | Ok _ -> (true, 0)
    | Error e -> (false, e.Query.code)
  in
  {
    Obs.rid;
    id = r.Query.id;
    kind = Query.payload_kind r.Query.payload;
    fingerprint;
    cache = resp.Query.cache;
    ok;
    code;
    latency_s;
    batch;
    group;
    phases;
  }

let seconds_since t0 = Int64.to_float (Int64.sub (Telemetry.now_ns ()) t0) /. 1e9

let handle_batch ?drain t requests =
  let batch_n = List.length requests in
  List.iter (fun _ -> Telemetry.incr c_admitted) requests;
  Obs.batch_begin t.obs batch_n;
  let batch_t0 = Telemetry.now_ns () in
  Fun.protect
    ~finally:(fun () ->
      Obs.note_batch t.obs ~latency_s:(seconds_since batch_t0);
      Obs.batch_end t.obs)
  @@ fun () ->
  let indexed = List.mapi (fun i r -> (i, Obs.next_rid t.obs, r)) requests in
  (* A batch running under an already-requested drain is the
     "finish in-flight work" phase: leave a note carrying the batch's
     request ids so the drain is reconstructible from the Diag
     stream. *)
  (match drain with
  | Some d when Drain.requested d && batch_n > 0 ->
      let ctx = String.concat "+" (List.map (fun (_, rid, _) -> rid) indexed) in
      Diag.with_context ctx (fun () ->
          Diag.record ~origin:"serve"
            (Printf.sprintf "drain: finishing in-flight batch of %d" batch_n))
  | _ -> ());
  (* Split the batch: admin queries are answered inline on the
     dispatch domain (after the model work, so a stats query batched
     behind real queries reports them); model queries group by
     fingerprint, preserving first-appearance order.  The cache is
     touched here, on the dispatch domain only. *)
  let admin, model_q =
    List.partition
      (fun (_, _, (r : Query.request)) -> Query.is_admin r.Query.payload)
      indexed
  in
  let order = ref [] and table = Hashtbl.create 8 in
  let missing_model = ref [] in
  List.iter
    (fun ((_, _, (r : Query.request)) as item) ->
      match r.Query.model with
      | None -> missing_model := item :: !missing_model
      | Some model ->
          let key = Model_spec.fingerprint model in
          (match Hashtbl.find_opt table key with
          | Some members -> members := item :: !members
          | None ->
              Hashtbl.add table key (ref [ item ]);
              order := key :: !order))
    model_q;
  let groups =
    List.rev_map
      (fun key ->
        let members = List.rev !(Hashtbl.find table key) in
        let _, _, (first : Query.request) = List.hd members in
        let model = Option.get first.Query.model in
        (* Interning happens on the dispatch domain, before the group's
           fan-out: run it under the joined request ids so a cache-miss
           Q* build is attributed to the group that triggered it. *)
        let ctx = String.concat "+" (List.map (fun (_, rid, _) -> rid) members) in
        match in_context ctx (fun () -> Cache.find_or_build t.cache model) with
        | entry, status ->
            let cache_status =
              match status with `Hit -> "hit" | `Miss -> "miss"
            in
            (key, Ok (entry, cache_status), members)
        | exception Diag.Error e ->
            (key, Error (Query.error_of_diag e), members)
        | exception Invalid_argument msg ->
            (key, Error (invalid_argument_error msg), members))
      !order
    |> List.rev |> Array.of_list
  in
  (* Distinct models fan out across the pool; capture/replay keeps the
     merged Diag and Telemetry streams in batch order regardless of
     which domain evaluated which group. *)
  let pool =
    Pool.get ~jobs:(match t.jobs with Some j -> j | None -> Pool.default_jobs ())
  in
  let evaluated =
    Pool.map_array pool
      (fun (_, group, members) ->
        let t0 = Telemetry.now_ns () in
        let (rs, spans), events =
          Diag.capture (fun () ->
              Telemetry.capture (fun () ->
                  match group with
                  | Ok (entry, cache_status) ->
                      let budget, release = group_budget ?drain members in
                      Fun.protect ~finally:release (fun () ->
                          run_group ~budget entry ~cache_status members)
                  | Error e ->
                      List.map
                        (fun (idx, rid, (r : Query.request)) ->
                          ( idx,
                            rid,
                            r,
                            {
                              Query.r_id = r.Query.id;
                              cache = None;
                              result = Error e;
                            } ))
                        members))
        in
        (rs, spans, events, seconds_since t0))
      groups
  in
  (* Back on the dispatch domain: replay the captured streams in batch
     order, feed the observability plane (every member of a group is
     attributed the group's wall time — its query was answered by that
     evaluation), and log one access line per request. *)
  let responses = ref [] in
  Array.iteri
    (fun gi (rs, spans, events, latency_s) ->
      let key, group, members = groups.(gi) in
      Diag.replay events;
      Telemetry.replay spans;
      (match group with
      | Ok (entry, _) -> (
          match Discretized.Session.last_stats entry.Cache.session with
          | Some stats -> Obs.note_kernel t.obs stats
          | None -> ())
      | Error _ -> ());
      let phases = Telemetry.rollup spans in
      let gsize = List.length members in
      List.iter
        (fun (idx, rid, r, resp) ->
          Obs.record t.obs
            (observation ~rid ~r ~fingerprint:(Some key) ~resp ~latency_s
               ~batch:batch_n ~group:gsize ~phases);
          responses := (idx, resp) :: !responses)
        rs)
    evaluated;
  (* Byte-budget enforcement runs after the batch's model work (the
     sessions just grew by whatever kernels and windows the batch
     built) and before admin answers, so a trailing server_stats query
     reports the post-eviction resident set. *)
  Cache.enforce_budget t.cache;
  (* Model queries constructed without a model: API misuse, not wire
     input — the decoder already rejects such frames. *)
  List.iter
    (fun (idx, rid, (r : Query.request)) ->
      let resp =
        {
          Query.r_id = r.Query.id;
          cache = None;
          result =
            Error
              (Query.protocol_error
                 (Printf.sprintf "query kind %S requires a model"
                    (Query.payload_kind r.Query.payload)));
        }
      in
      Obs.record t.obs
        (observation ~rid ~r ~fingerprint:None ~resp ~latency_s:0.
           ~batch:batch_n ~group:1 ~phases:[]);
      responses := (idx, resp) :: !responses)
    !missing_model;
  List.iter
    (fun (idx, rid, (r : Query.request)) ->
      let t0 = Telemetry.now_ns () in
      let resp =
        { Query.r_id = r.Query.id; cache = None; result = Ok (answer_admin t r) }
      in
      let latency_s = seconds_since t0 in
      Obs.record t.obs
        (observation ~rid ~r ~fingerprint:None ~resp ~latency_s ~batch:batch_n
           ~group:1 ~phases:[]);
      responses := (idx, resp) :: !responses)
    admin;
  List.stable_sort (fun (a, _) (b, _) -> compare a b) !responses
  |> List.map snd

let handle t r =
  match handle_batch t [ r ] with
  | [ response ] -> response
  | _ -> assert false
