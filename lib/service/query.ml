open Batlife_numerics

let version = "batlife.query/1"

type measure =
  | Expected_charge
  | Mode_marginal
  | Charge_marginal
  | Joint of { mode : int; min_charge : float }

type payload =
  | Cdf of { times : float array }
  | Measures of { time : float; measures : measure list }
  | Percentiles of { ps : float array; horizon : float; points : int }
  | Stats
  | Server_stats
  | Prometheus
  | Health

let payload_kind = function
  | Cdf _ -> "cdf"
  | Measures _ -> "measures"
  | Percentiles _ -> "percentiles"
  | Stats -> "stats"
  | Server_stats -> "server_stats"
  | Prometheus -> "prometheus"
  | Health -> "health"

let is_admin = function
  | Server_stats | Prometheus | Health -> true
  | Cdf _ | Measures _ | Percentiles _ | Stats -> false

type request = {
  id : string;
  model : Model_spec.t option;
  payload : payload;
  deadline_s : float option;
}

type kernel_stats = {
  k_touched_nnz : int;
  k_active_rows : int;
  k_support_lo : int;
  k_support_hi : int;
  k_skipped_mass : float;
}

type result =
  | Curve of { times : float array; probabilities : float array }
  | Per_time of { time : float; values : (string * float array) list }
  | Quantiles of { ps : float array; values : float array }
  | Model_stats of {
      states : int;
      nnz : int;
      unif_rate : float;
      fingerprint : string;
      kernel : kernel_stats option;
    }
  | Service_stats of { stats : Json.t }
  | Text of { format : string; text : string }
  | Health_report of { status : string; uptime_s : float }

type error = {
  kind : string;
  code : int;
  message : string;
  retry_after_s : float option;
}

type response = {
  r_id : string;
  cache : string option;
  result : (result, error) Result.t;
}

let error_of_diag e =
  let kind =
    match e with
    | Diag.Invalid_model _ -> "invalid_model"
    | Diag.Parse_error _ -> "parse_error"
    | Diag.Nonconvergence _ -> "nonconvergence"
    | Diag.Numerical_breakdown _ -> "numerical_breakdown"
    | Diag.Budget_exhausted _ -> "budget_exhausted"
    | Diag.Cancelled _ -> "cancelled"
  in
  {
    kind;
    code = Diag.exit_code e;
    message = Diag.error_to_string e;
    retry_after_s = None;
  }

let protocol_error message =
  { kind = "protocol"; code = 4; message; retry_after_s = None }

let overloaded_code = 9

let overloaded_error ~retry_after_s message =
  {
    kind = "overloaded";
    code = overloaded_code;
    message;
    retry_after_s = Some retry_after_s;
  }

(* --- encoding ---------------------------------------------------- *)

let floats xs = Json.Arr (Array.to_list (Array.map Json.of_float xs))

let measure_to_json = function
  | Expected_charge -> Json.Str "expected_charge"
  | Mode_marginal -> Json.Str "mode_marginal"
  | Charge_marginal -> Json.Str "charge_marginal"
  | Joint { mode; min_charge } ->
      Json.Obj
        [
          ("kind", Json.Str "joint");
          ("mode", Json.of_int mode);
          ("min_charge", Json.of_float min_charge);
        ]

let payload_to_json = function
  | Cdf { times } ->
      Json.Obj [ ("kind", Json.Str "cdf"); ("times", floats times) ]
  | Measures { time; measures } ->
      Json.Obj
        [
          ("kind", Json.Str "measures");
          ("time", Json.of_float time);
          ("measures", Json.Arr (List.map measure_to_json measures));
        ]
  | Percentiles { ps; horizon; points } ->
      Json.Obj
        [
          ("kind", Json.Str "percentiles");
          ("ps", floats ps);
          ("horizon", Json.of_float horizon);
          ("points", Json.of_int points);
        ]
  | Stats -> Json.Obj [ ("kind", Json.Str "stats") ]
  | Server_stats -> Json.Obj [ ("kind", Json.Str "server_stats") ]
  | Prometheus -> Json.Obj [ ("kind", Json.Str "prometheus") ]
  | Health -> Json.Obj [ ("kind", Json.Str "health") ]

let request_to_line r =
  let model =
    match r.model with
    | None -> []
    | Some m -> [ ("model", Model_spec.to_json m) ]
  in
  let deadline =
    match r.deadline_s with
    | None -> []
    | Some s -> [ ("deadline_s", Json.of_float s) ]
  in
  Json.encode
    (Json.Obj
       ([ ("v", Json.Str version); ("id", Json.Str r.id) ]
       @ model
       @ [ ("query", payload_to_json r.payload) ]
       @ deadline))

let result_to_json = function
  | Curve { times; probabilities } ->
      Json.Obj
        [
          ("kind", Json.Str "curve");
          ("times", floats times);
          ("probabilities", floats probabilities);
        ]
  | Per_time { time; values } ->
      Json.Obj
        [
          ("kind", Json.Str "per_time");
          ("time", Json.of_float time);
          ( "values",
            Json.Obj (List.map (fun (name, v) -> (name, floats v)) values) );
        ]
  | Quantiles { ps; values } ->
      Json.Obj
        [
          ("kind", Json.Str "quantiles");
          ("ps", floats ps);
          ("values", floats values);
        ]
  | Model_stats { states; nnz; unif_rate; fingerprint; kernel } ->
      let kernel_member =
        match kernel with
        | None -> []
        | Some k ->
            [
              ( "kernel",
                Json.Obj
                  [
                    ("touched_nnz", Json.of_int k.k_touched_nnz);
                    ("active_rows", Json.of_int k.k_active_rows);
                    ("support_lo", Json.of_int k.k_support_lo);
                    ("support_hi", Json.of_int k.k_support_hi);
                    ("skipped_mass", Json.of_float k.k_skipped_mass);
                  ] );
            ]
      in
      Json.Obj
        ([
           ("kind", Json.Str "model_stats");
           ("states", Json.of_int states);
           ("nnz", Json.of_int nnz);
           ("unif_rate", Json.of_float unif_rate);
           ("fingerprint", Json.Str fingerprint);
         ]
        @ kernel_member)
  | Service_stats { stats } ->
      Json.Obj [ ("kind", Json.Str "server_stats"); ("stats", stats) ]
  | Text { format; text } ->
      Json.Obj
        [
          ("kind", Json.Str "text");
          ("format", Json.Str format);
          ("text", Json.Str text);
        ]
  | Health_report { status; uptime_s } ->
      Json.Obj
        [
          ("kind", Json.Str "health");
          ("status", Json.Str status);
          ("uptime_s", Json.of_float uptime_s);
        ]

let response_to_line r =
  let cache =
    match r.cache with None -> [] | Some c -> [ ("cache", Json.Str c) ]
  in
  let body =
    match r.result with
    | Ok result -> [ ("ok", Json.Bool true); ("result", result_to_json result) ]
    | Error e ->
        let retry =
          match e.retry_after_s with
          | None -> []
          | Some s -> [ ("retry_after_s", Json.of_float s) ]
        in
        [
          ("ok", Json.Bool false);
          ( "error",
            Json.Obj
              ([
                 ("kind", Json.Str e.kind);
                 ("code", Json.of_int e.code);
                 ("message", Json.Str e.message);
               ]
              @ retry) );
        ]
  in
  Json.encode
    (Json.Obj
       ([ ("v", Json.Str version); ("id", Json.Str r.r_id) ] @ cache @ body))

(* --- decoding ---------------------------------------------------- *)

let to_floats ?source ~field j =
  Json.to_list ?source ~field j
  |> List.map (Json.to_finite_float ?source ~field)
  |> Array.of_list

let measure_of_json ?source = function
  | Json.Str "expected_charge" -> Expected_charge
  | Json.Str "mode_marginal" -> Mode_marginal
  | Json.Str "charge_marginal" -> Charge_marginal
  | Json.Str other ->
      Diag.fail
        (Diag.Parse_error
           {
             source = Option.value source ~default:"<query>";
             line = 0;
             field = Some "measures";
             message = Printf.sprintf "unknown measure %S" other;
           })
  | j -> (
      match
        Json.to_string ?source ~field:"measure.kind"
          (Json.member ?source ~field:"kind" j)
      with
      | "joint" ->
          Joint
            {
              mode =
                Json.to_int ?source ~field:"measure.mode"
                  (Json.member ?source ~field:"mode" j);
              min_charge =
                Json.to_finite_float ?source ~field:"measure.min_charge"
                  (Json.member ?source ~field:"min_charge" j);
            }
      | other ->
          Diag.fail
            (Diag.Parse_error
               {
                 source = Option.value source ~default:"<query>";
                 line = 0;
                 field = Some "measure.kind";
                 message = Printf.sprintf "unknown measure kind %S" other;
               }))

let payload_of_json ?source j =
  match
    Json.to_string ?source ~field:"query.kind"
      (Json.member ?source ~field:"kind" j)
  with
  | "cdf" ->
      Cdf
        {
          times =
            to_floats ?source ~field:"query.times"
              (Json.member ?source ~field:"times" j);
        }
  | "measures" ->
      Measures
        {
          time =
            Json.to_finite_float ?source ~field:"query.time"
              (Json.member ?source ~field:"time" j);
          measures =
            Json.to_list ?source ~field:"query.measures"
              (Json.member ?source ~field:"measures" j)
            |> List.map (measure_of_json ?source);
        }
  | "percentiles" ->
      Percentiles
        {
          ps =
            to_floats ?source ~field:"query.ps"
              (Json.member ?source ~field:"ps" j);
          horizon =
            Json.to_finite_float ?source ~field:"query.horizon"
              (Json.member ?source ~field:"horizon" j);
          points =
            Json.to_int ?source ~field:"query.points"
              (Json.member ?source ~field:"points" j);
        }
  | "stats" -> Stats
  | "server_stats" -> Server_stats
  | "prometheus" -> Prometheus
  | "health" -> Health
  | other ->
      Diag.fail
        (Diag.Parse_error
           {
             source = Option.value source ~default:"<query>";
             line = 0;
             field = Some "query.kind";
             message =
               Printf.sprintf
                 "unknown query kind %S (expected cdf, measures, percentiles, \
                  stats, server_stats, prometheus or health)"
                 other;
           })

let check_version ?source j =
  let v = Json.to_string ?source ~field:"v" (Json.member ?source ~field:"v" j) in
  if v <> version then
    Diag.fail
      (Diag.Parse_error
         {
           source = Option.value source ~default:"<frame>";
           line = 0;
           field = Some "v";
           message =
             Printf.sprintf "unsupported protocol version %S (this server \
                             speaks %s)" v version;
         })

(* The wire boundary: every Diag failure inside a decoder becomes a
   structured error value, never an exception on the server loop. *)
let guard f =
  match f () with
  | v -> Ok v
  | exception Diag.Error e -> Error (error_of_diag e)

let request_of_line ?source line =
  guard (fun () ->
      let j = Json.decode ?source line in
      check_version ?source j;
      let payload =
        payload_of_json ?source (Json.member ?source ~field:"query" j)
      in
      let model =
        (* Admin queries address the server, not a model; everything
           else must carry one. *)
        match Json.member_opt ~field:"model" j with
        | Some m -> Some (Model_spec.of_json ?source m)
        | None when is_admin payload -> None
        | None ->
            Diag.fail
              (Diag.Parse_error
                 {
                   source = Option.value source ~default:"<frame>";
                   line = 0;
                   field = Some "model";
                   message =
                     Printf.sprintf "query kind %S requires a model"
                       (payload_kind payload);
                 })
      in
      {
        id = Json.to_string ?source ~field:"id" (Json.member ?source ~field:"id" j);
        model;
        payload;
        deadline_s =
          (match Json.member_opt ~field:"deadline_s" j with
          | None -> None
          | Some d ->
              Some (Json.to_finite_float ?source ~field:"deadline_s" d));
      })

let result_of_json ?source j =
  match
    Json.to_string ?source ~field:"result.kind"
      (Json.member ?source ~field:"kind" j)
  with
  | "curve" ->
      Curve
        {
          times =
            to_floats ?source ~field:"result.times"
              (Json.member ?source ~field:"times" j);
          probabilities =
            to_floats ?source ~field:"result.probabilities"
              (Json.member ?source ~field:"probabilities" j);
        }
  | "per_time" ->
      let values =
        match Json.member ?source ~field:"values" j with
        | Json.Obj fields ->
            List.map
              (fun (name, v) ->
                (name, to_floats ?source ~field:("values." ^ name) v))
              fields
        | _ ->
            Diag.fail
              (Diag.Parse_error
                 {
                   source = Option.value source ~default:"<frame>";
                   line = 0;
                   field = Some "values";
                   message = "expected an object of measure arrays";
                 })
      in
      Per_time
        {
          time =
            Json.to_finite_float ?source ~field:"result.time"
              (Json.member ?source ~field:"time" j);
          values;
        }
  | "quantiles" ->
      Quantiles
        {
          ps =
            to_floats ?source ~field:"result.ps"
              (Json.member ?source ~field:"ps" j);
          values =
            to_floats ?source ~field:"result.values"
              (Json.member ?source ~field:"values" j);
        }
  | "model_stats" ->
      let kernel =
        match Json.member_opt ~field:"kernel" j with
        | None -> None
        | Some k ->
            let kint field =
              Json.to_int ?source ~field:("result.kernel." ^ field)
                (Json.member ?source ~field k)
            in
            Some
              {
                k_touched_nnz = kint "touched_nnz";
                k_active_rows = kint "active_rows";
                k_support_lo = kint "support_lo";
                k_support_hi = kint "support_hi";
                k_skipped_mass =
                  Json.to_finite_float ?source
                    ~field:"result.kernel.skipped_mass"
                    (Json.member ?source ~field:"skipped_mass" k);
              }
      in
      Model_stats
        {
          states =
            Json.to_int ?source ~field:"result.states"
              (Json.member ?source ~field:"states" j);
          nnz =
            Json.to_int ?source ~field:"result.nnz"
              (Json.member ?source ~field:"nnz" j);
          unif_rate =
            Json.to_finite_float ?source ~field:"result.unif_rate"
              (Json.member ?source ~field:"unif_rate" j);
          fingerprint =
            Json.to_string ?source ~field:"result.fingerprint"
              (Json.member ?source ~field:"fingerprint" j);
          kernel;
        }
  | "server_stats" ->
      Service_stats { stats = Json.member ?source ~field:"stats" j }
  | "text" ->
      Text
        {
          format =
            Json.to_string ?source ~field:"result.format"
              (Json.member ?source ~field:"format" j);
          text =
            Json.to_string ?source ~field:"result.text"
              (Json.member ?source ~field:"text" j);
        }
  | "health" ->
      Health_report
        {
          status =
            Json.to_string ?source ~field:"result.status"
              (Json.member ?source ~field:"status" j);
          uptime_s =
            Json.to_finite_float ?source ~field:"result.uptime_s"
              (Json.member ?source ~field:"uptime_s" j);
        }
  | other ->
      Diag.fail
        (Diag.Parse_error
           {
             source = Option.value source ~default:"<frame>";
             line = 0;
             field = Some "result.kind";
             message = Printf.sprintf "unknown result kind %S" other;
           })

let response_of_line ?source line =
  guard (fun () ->
      let j = Json.decode ?source line in
      check_version ?source j;
      let r_id =
        Json.to_string ?source ~field:"id" (Json.member ?source ~field:"id" j)
      in
      let cache =
        match Json.member_opt ~field:"cache" j with
        | None -> None
        | Some c -> Some (Json.to_string ?source ~field:"cache" c)
      in
      let result =
        match Json.member ?source ~field:"ok" j with
        | Json.Bool true ->
            Ok (result_of_json ?source (Json.member ?source ~field:"result" j))
        | Json.Bool false ->
            let e = Json.member ?source ~field:"error" j in
            Error
              {
                kind =
                  Json.to_string ?source ~field:"error.kind"
                    (Json.member ?source ~field:"kind" e);
                code =
                  Json.to_int ?source ~field:"error.code"
                    (Json.member ?source ~field:"code" e);
                message =
                  Json.to_string ?source ~field:"error.message"
                    (Json.member ?source ~field:"message" e);
                retry_after_s =
                  (match Json.member_opt ~field:"retry_after_s" e with
                  | None -> None
                  | Some s ->
                      Some
                        (Json.to_finite_float ?source ~field:"error.retry_after_s"
                           s));
              }
        | _ ->
            Diag.fail
              (Diag.Parse_error
                 {
                   source = Option.value source ~default:"<frame>";
                   line = 0;
                   field = Some "ok";
                   message = "expected a boolean";
                 })
      in
      { r_id; cache; result })
