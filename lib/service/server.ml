open Batlife_numerics

let log_src = Logs.Src.create "batlife.serve" ~doc:"Lifetime-query server"

module Log = (val Logs.src_log log_src : Logs.LOG)

(* Server IO fault sites (see Fi): a client reading/writing slowly, a
   client vanishing mid-batch, a frame burst that must be shed, and a
   partial write back to the client.  Consulted on the hot paths at
   the one-atomic-load disabled cost. *)
let fi_slow_read = Fi.site "server.slow_read"
let fi_disconnect = Fi.site "server.disconnect"
let fi_frame_flood = Fi.site "server.frame_flood"
let fi_short_write = Fi.site "server.short_write"

let c_shed = Telemetry.counter "service.shed"

(* Per-connection guard limits.  Every limit answers a distinct way a
   single client could wedge or exhaust the daemon: a frame with no
   newline in sight (memory), a stalled sender or a dead reader
   (liveness of the serial accept loop), a stream of garbage
   (pointless work), and a burst beyond the pending queue (latency for
   everyone else). *)
type limits = {
  max_frame_bytes : int;
  read_idle_s : float;
  write_timeout_s : float;
  max_strikes : int;
  queue : int;
}

let default_limits =
  {
    max_frame_bytes = 1 lsl 20;
    read_idle_s = 300.;
    write_timeout_s = 30.;
    max_strikes = 5;
    queue = 128;
  }

let check_limits l =
  if l.max_frame_bytes < 1 then
    invalid_arg "Server: max_frame_bytes must be >= 1";
  if not (Float.is_finite l.read_idle_s && l.read_idle_s > 0.) then
    invalid_arg "Server: read_idle_s must be positive and finite";
  if not (Float.is_finite l.write_timeout_s && l.write_timeout_s > 0.) then
    invalid_arg "Server: write_timeout_s must be positive and finite";
  if l.max_strikes < 1 then invalid_arg "Server: max_strikes must be >= 1";
  if l.queue < 0 then invalid_arg "Server: queue must be >= 0"

(* Why a connection was ended early; [`Eof] is the normal end. *)
type drop_reason =
  [ `Eof
  | `Oversized_frame
  | `Idle_timeout
  | `Write_timeout
  | `Too_many_strikes
  | `Client_gone
  | `Draining ]

let drop_reason_to_string = function
  | `Eof -> "eof"
  | `Oversized_frame -> "oversized_frame"
  | `Idle_timeout -> "idle_timeout"
  | `Write_timeout -> "write_timeout"
  | `Too_many_strikes -> "too_many_strikes"
  | `Client_gone -> "client_gone"
  | `Draining -> "draining"

(* A buffered line reader over a raw fd.  [next_line ~block:false]
   only returns a line that is already buffered or immediately
   readable (zero-timeout select) — the greedy-batching probe.
   Blocking reads wait at most [read_idle_s] via a select deadline. *)
type reader = {
  fd : Unix.file_descr;
  buf : Buffer.t;
  chunk : Bytes.t;
  limits : limits;
  stop : unit -> bool;
      (** drain flag: blocking reads poll it and give up promptly *)
  mutable eof : bool;
  mutable dropped : drop_reason option;
}

let reader ~limits ~stop fd =
  {
    fd;
    buf = Buffer.create 4096;
    chunk = Bytes.create 65536;
    limits;
    stop;
    eof = false;
    dropped = None;
  }

let buffered_line r =
  let s = Buffer.contents r.buf in
  match String.index_opt s '\n' with
  | None -> None
  | Some i ->
      let line = String.sub s 0 i in
      Buffer.clear r.buf;
      Buffer.add_substring r.buf s (i + 1) (String.length s - i - 1);
      Some line

(* [block]: wait up to the connection's idle deadline for readability;
   otherwise a zero-timeout probe.  Returns whether any bytes landed.
   Sets [dropped] on idle timeout and [eof] on EOF / injected
   disconnect. *)
let refill ~block r =
  if r.eof || r.dropped <> None then false
  else begin
    if Fi.fires fi_slow_read then Unix.sleepf 0.05;
    if Fi.fires fi_disconnect then begin
      r.eof <- true;
      false
    end
    else
      let ready =
        if block then begin
          let deadline = Unix.gettimeofday () +. r.limits.read_idle_s in
          (* Wait in short slices so a drain request (or a signal) ends
             the wait within a tick, not at the idle deadline. *)
          let rec wait () =
            if r.stop () then begin
              r.dropped <- Some `Draining;
              false
            end
            else
              let left = deadline -. Unix.gettimeofday () in
              if left <= 0. then begin
                r.dropped <- Some `Idle_timeout;
                false
              end
              else
                match Unix.select [ r.fd ] [] [] (Float.min left 0.1) with
                | [ _ ], _, _ -> true
                | _ -> wait ()
                | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait ()
          in
          wait ()
        end
        else
          match Unix.select [ r.fd ] [] [] 0. with
          | [ _ ], _, _ -> true
          | _ -> false
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> false
      in
      ready
      &&
      match Unix.read r.fd r.chunk 0 (Bytes.length r.chunk) with
      | 0 ->
          r.eof <- true;
          false
      | n ->
          Buffer.add_subbytes r.buf r.chunk 0 n;
          true
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> not r.eof
      | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
          r.eof <- true;
          r.dropped <- Some `Client_gone;
          false
  end

let rec next_line ~block r =
  match buffered_line r with
  | Some line -> Some line
  | None ->
      if r.dropped <> None then None
      else if Buffer.length r.buf > r.limits.max_frame_bytes then begin
        (* No newline within the frame budget: a hostile or broken
           client streaming one endless line.  Refusing here bounds
           per-connection memory. *)
        r.dropped <- Some `Oversized_frame;
        None
      end
      else if r.eof then
        (* At EOF a trailing unterminated line still counts. *)
        if Buffer.length r.buf = 0 then None
        else begin
          let line = Buffer.contents r.buf in
          Buffer.clear r.buf;
          Some line
        end
      else if refill ~block r then next_line ~block r
      else if block && r.dropped = None && not r.eof then next_line ~block:true r
      else None

(* Write with a liveness deadline: a client that stops reading leaves
   the socket buffer full and [write] blocked forever — exactly the
   "one dead client wedges the accept loop" failure this guards
   against.  Returns [Error reason] instead of raising so the caller
   can drop the connection and keep serving. *)
let write_all ~limits fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let deadline = Unix.gettimeofday () +. limits.write_timeout_s in
  let rec go off =
    if off >= n then Ok ()
    else
      let left = deadline -. Unix.gettimeofday () in
      if left <= 0. then Error `Write_timeout
      else
        match Unix.select [] [ fd ] [] left with
        | _, [], _ -> Error `Write_timeout
        | _ -> (
            let len =
              (* A fired short-write site truncates this round's write
                 to one byte: the frame must still arrive intact
                 through the resume loop (self-verifying — the chaos
                 harness checks the client got well-formed frames). *)
              if Fi.fires fi_short_write then 1 else n - off
            in
            match Unix.write fd b off len with
            | written -> go (off + written)
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
            | exception
                Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
                Error `Client_gone)
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

(* Decode errors become protocol-error responses on the same line
   slot, so a batch with one bad frame still answers the good ones. *)
type parsed =
  | Request of Query.request
  | Bad of Query.response

let parse line =
  match Query.request_of_line ~source:"<request>" line with
  | Ok r -> Request r
  | Error e -> Bad { Query.r_id = ""; cache = None; result = Error e }

let id_of_parsed = function
  | Request r -> r.Query.id
  | Bad resp -> resp.Query.r_id

(* Record one frame the engine never saw (protocol rejections and
   sheds) so the access log and per-kind histograms still own a line
   for it. *)
let record_boundary obs ~kind ~id ~code ~batch =
  Obs.record obs
    {
      Obs.rid = Obs.next_rid obs;
      id;
      kind;
      fingerprint = None;
      cache = None;
      ok = false;
      code;
      latency_s = 0.;
      batch;
      group = 1;
      phases = [];
    }

let shed_response obs parsed =
  let retry_after_s = Obs.retry_hint_s obs in
  let e =
    Query.overloaded_error ~retry_after_s
      "admission queue full; request shed before processing"
  in
  { Query.r_id = id_of_parsed parsed; cache = None; result = Error e }

(* One connection.  The pending queue holds admitted frames beyond the
   batch in hand (bounded by [limits.queue]); everything drained
   beyond that is shed immediately with an overloaded frame.  Returns
   how the connection ended. *)
(* A client that closes before reading its responses turns the next
   [write] into SIGPIPE, which would kill the daemon before the EPIPE
   handler ever runs.  Ignore it process-wide so disconnects surface as
   the structured [`Client_gone] drop instead. *)
let ignore_sigpipe () =
  try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
  with Invalid_argument _ | Sys_error _ -> ()

let serve_connection ?(limits = default_limits) ?drain ?(max_batch = 64) service
    ~in_fd ~out_fd () =
  check_limits limits;
  ignore_sigpipe ();
  let draining () =
    match drain with Some d -> Drain.requested d | None -> false
  in
  let r = reader ~limits ~stop:draining in_fd in
  let obs = Service.obs service in
  let pending = Queue.create () in
  let strikes = ref 0 in
  let write_frame resp =
    match write_all ~limits out_fd (Query.response_to_line resp) with
    | Ok () -> Ok ()
    | Error reason ->
        r.dropped <- Some (reason :> drop_reason);
        Error reason
  in
  (* Greedy drain of everything immediately readable: fill the batch
     to [max_batch], park up to [limits.queue] frames as pending, shed
     (and answer right now) the rest. *)
  let top_up batch n =
    let shed_count = ref 0 in
    let rec go () =
      if draining () then ()
      else
      match next_line ~block:false r with
      | None -> ()
      | Some line ->
          let p = parse line in
          let flooded = Fi.fires fi_frame_flood in
          if (not flooded) && !n < max_batch then begin
            batch := p :: !batch;
            incr n;
            go ()
          end
          else if (not flooded) && Queue.length pending < limits.queue then begin
            Queue.add p pending;
            go ()
          end
          else begin
            Telemetry.incr c_shed;
            incr shed_count;
            record_boundary obs ~kind:"overloaded" ~id:(id_of_parsed p)
              ~code:Query.overloaded_code ~batch:!n;
            match write_frame (shed_response obs p) with
            | Ok () -> go ()
            | Error _ -> ()
          end
    in
    go ();
    Obs.note_queue_depth obs (Queue.length pending);
    !shed_count
  in
  let next_batch () =
    let batch = ref [] and n = ref 0 in
    while !n < max_batch && not (Queue.is_empty pending) do
      batch := Queue.pop pending :: !batch;
      incr n
    done;
    if !n > 0 then begin
      ignore (top_up batch n : int);
      Some (List.rev !batch)
    end
    else if draining () then None
    else
      match next_line ~block:true r with
      | None -> None
      | Some first ->
          batch := [ parse first ];
          n := 1;
          ignore (top_up batch n : int);
          Some (List.rev !batch)
  in
  let answer parsed =
    let requests =
      List.filter_map (function Request q -> Some q | Bad _ -> None) parsed
    in
    let answered = ref (Service.handle_batch ?drain service requests) in
    let batch_n = List.length parsed in
    (* Malformed frames never reach the engine, but the access log
       still owes them a line: count the strike and record the
       rejection at the server boundary. *)
    List.iter
      (function
        | Request _ -> ()
        | Bad resp ->
            incr strikes;
            let code =
              match resp.Query.result with
              | Error e -> e.Query.code
              | Ok _ -> 0
            in
            record_boundary obs ~kind:"protocol" ~id:resp.Query.r_id ~code
              ~batch:batch_n)
      parsed;
    let responses =
      List.map
        (function
          | Bad resp -> resp
          | Request _ -> (
              match !answered with
              | resp :: rest ->
                  answered := rest;
                  resp
              | [] -> assert false))
        parsed
    in
    let rec write_loop = function
      | [] -> Ok ()
      | resp :: rest -> (
          match write_frame resp with
          | Ok () -> write_loop rest
          | Error _ as e -> e)
    in
    write_loop responses
  in
  let rec loop () =
    if !strikes >= limits.max_strikes then `Too_many_strikes
    else
      match next_batch () with
      | None -> (
          match r.dropped with
          | Some reason -> reason
          | None -> if r.eof then `Eof else `Draining)
      | Some parsed -> (
          match answer parsed with
          | Ok () -> loop ()
          | Error reason -> (reason :> drop_reason))
  in
  let outcome = loop () in
  (* An oversized frame earns the client a structured goodbye; the
     other drops are liveness failures where writing would block. *)
  (match outcome with
  | `Oversized_frame ->
      let e =
        Query.protocol_error
          (Printf.sprintf "frame exceeds max_frame_bytes (%d)"
             limits.max_frame_bytes)
      in
      record_boundary obs ~kind:"protocol" ~id:"" ~code:e.Query.code ~batch:0;
      ignore
        (write_frame { Query.r_id = ""; cache = None; result = Error e }
          : (unit, _) result)
  | `Too_many_strikes ->
      let e =
        Query.protocol_error
          (Printf.sprintf "dropped after %d malformed frames" !strikes)
      in
      ignore
        (write_frame { Query.r_id = ""; cache = None; result = Error e }
          : (unit, _) result)
  | _ -> ());
  (match outcome with
  | `Eof | `Draining -> ()
  | reason ->
      Log.info (fun m -> m "connection dropped: %s"
        (drop_reason_to_string reason)));
  outcome

let serve_fd ?limits ?drain ?max_batch service ~in_fd ~out_fd =
  ignore
    (serve_connection ?limits ?drain ?max_batch service ~in_fd ~out_fd ()
      : drop_reason)

let serve_stdio ?limits ?drain ?max_batch service =
  serve_fd ?limits ?drain ?max_batch service ~in_fd:Unix.stdin
    ~out_fd:Unix.stdout

(* Stale-socket handling: a socket file is removed only after a failed
   [connect] probe.  A live daemon answers the probe, and this one
   refuses to bind rather than silently stealing the path from it. *)
let remove_stale_socket path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_SOCK; _ } -> (
      let probe = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      let live =
        match Unix.connect probe (Unix.ADDR_UNIX path) with
        | () -> true
        | exception Unix.Unix_error (_, _, _) -> false
      in
      (try Unix.close probe with Unix.Unix_error _ -> ());
      if live then
        Diag.fail
          (Diag.Parse_error
             {
               source = path;
               line = 0;
               field = None;
               message =
                 "socket is in use by a live daemon (connect probe \
                  succeeded); refusing to steal it";
             })
      else begin
        Log.info (fun m -> m "removing stale socket %s" path);
        Unix.unlink path
      end)
  | _ -> ()
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let serve_unix ?limits ?drain ?max_batch ?max_connections ?(backlog = 64)
    service ~path =
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (match remove_stale_socket path with
  | () -> ()
  | exception e ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      raise e);
  Fun.protect
    ~finally:(fun () ->
      Unix.close sock;
      try Unix.unlink path with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.bind sock (Unix.ADDR_UNIX path);
      Unix.listen sock backlog;
      Log.info (fun m -> m "listening on %s (backlog %d)" path backlog);
      let draining () =
        match drain with Some d -> Drain.requested d | None -> false
      in
      (* Accept through a short select so a drain request turns into
         "stop accepting" within a poll tick, not at the next client. *)
      let rec accept_next () =
        if draining () then None
        else
          match Unix.select [ sock ] [] [] 0.1 with
          | [ _ ], _, _ -> (
              match Unix.accept sock with
              | conn -> Some conn
              | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_next ())
          | _ -> accept_next ()
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_next ()
      in
      let rec accept_loop remaining =
        match remaining with
        | Some 0 -> ()
        | _ -> (
            match accept_next () with
            | None ->
                Diag.record ~origin:"serve"
                  "drain: stopped accepting connections"
            | Some (client, _) ->
                Fun.protect
                  ~finally:(fun () ->
                    try Unix.close client with Unix.Unix_error _ -> ())
                  (fun () ->
                    ignore
                      (serve_connection ?limits ?drain ?max_batch service
                         ~in_fd:client ~out_fd:client ()
                        : drop_reason));
                accept_loop (Option.map (fun n -> n - 1) remaining))
      in
      accept_loop max_connections)
