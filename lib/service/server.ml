let log_src = Logs.Src.create "batlife.serve" ~doc:"Lifetime-query server"

module Log = (val Logs.src_log log_src : Logs.LOG)

(* A buffered line reader over a raw fd.  [next_line ~block:false]
   only returns a line that is already buffered or immediately
   readable (zero-timeout select) — the greedy-batching probe. *)
type reader = {
  fd : Unix.file_descr;
  buf : Buffer.t;
  chunk : Bytes.t;
  mutable eof : bool;
}

let reader fd = { fd; buf = Buffer.create 4096; chunk = Bytes.create 65536; eof = false }

let buffered_line r =
  let s = Buffer.contents r.buf in
  match String.index_opt s '\n' with
  | None -> None
  | Some i ->
      let line = String.sub s 0 i in
      Buffer.clear r.buf;
      Buffer.add_substring r.buf s (i + 1) (String.length s - i - 1);
      Some line

let refill ~block r =
  if r.eof then false
  else
    let ready =
      block
      ||
      match Unix.select [ r.fd ] [] [] 0. with
      | [ _ ], _, _ -> true
      | _ -> false
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> false
    in
    ready
    &&
    match Unix.read r.fd r.chunk 0 (Bytes.length r.chunk) with
    | 0 ->
        r.eof <- true;
        false
    | n ->
        Buffer.add_subbytes r.buf r.chunk 0 n;
        true
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> not r.eof

let rec next_line ~block r =
  match buffered_line r with
  | Some line -> Some line
  | None ->
      (* At EOF a trailing unterminated line still counts. *)
      if r.eof then (
        if Buffer.length r.buf = 0 then None
        else
          let line = Buffer.contents r.buf in
          Buffer.clear r.buf;
          Some line)
      else if refill ~block r then next_line ~block r
      else if block then next_line ~block:true r
      else None

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off < n then
      match Unix.write fd b off (n - off) with
      | written -> go (off + written)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

(* Decode errors become protocol-error responses on the same line
   slot, so a batch with one bad frame still answers the good ones. *)
type parsed =
  | Request of Query.request
  | Bad of Query.response

let parse line =
  match Query.request_of_line ~source:"<request>" line with
  | Ok r -> Request r
  | Error e -> Bad { Query.r_id = ""; cache = None; result = Error e }

let serve_fd ?(max_batch = 64) service ~in_fd ~out_fd =
  let r = reader in_fd in
  let rec loop () =
    match next_line ~block:true r with
    | None -> ()
    | Some first ->
        let batch = ref [ parse first ] and n = ref 1 in
        let rec drain () =
          if !n < max_batch then
            match next_line ~block:false r with
            | Some line ->
                batch := parse line :: !batch;
                incr n;
                drain ()
            | None -> ()
        in
        drain ();
        let parsed = List.rev !batch in
        let requests =
          List.filter_map
            (function Request q -> Some q | Bad _ -> None)
            parsed
        in
        let answered = ref (Service.handle_batch service requests) in
        (* Malformed frames never reach the engine, but the access log
           still owes them a line: assign a request id at the server
           boundary and record the rejection. *)
        List.iter
          (function
            | Request _ -> ()
            | Bad resp ->
                let obs = Service.obs service in
                let code =
                  match resp.Query.result with
                  | Error e -> e.Query.code
                  | Ok _ -> 0
                in
                Obs.record obs
                  {
                    Obs.rid = Obs.next_rid obs;
                    id = resp.Query.r_id;
                    kind = "protocol";
                    fingerprint = None;
                    cache = None;
                    ok = false;
                    code;
                    latency_s = 0.;
                    batch = !n;
                    group = 1;
                    phases = [];
                  })
          parsed;
        let responses =
          List.map
            (function
              | Bad resp -> resp
              | Request _ -> (
                  match !answered with
                  | resp :: rest ->
                      answered := rest;
                      resp
                  | [] -> assert false))
            parsed
        in
        List.iter (fun resp -> write_all out_fd (Query.response_to_line resp)) responses;
        loop ()
  in
  loop ()

let serve_stdio ?max_batch service =
  serve_fd ?max_batch service ~in_fd:Unix.stdin ~out_fd:Unix.stdout

let serve_unix ?max_batch ?max_connections service ~path =
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (match Unix.lstat path with
  | { Unix.st_kind = Unix.S_SOCK; _ } -> Unix.unlink path
  | _ -> ()
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ());
  Fun.protect
    ~finally:(fun () ->
      Unix.close sock;
      try Unix.unlink path with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.bind sock (Unix.ADDR_UNIX path);
      Unix.listen sock 16;
      Log.info (fun m -> m "listening on %s" path);
      let rec accept_loop remaining =
        match remaining with
        | Some 0 -> ()
        | _ ->
            let client, _ =
              let rec accept () =
                match Unix.accept sock with
                | conn -> conn
                | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept ()
              in
              accept ()
            in
            Fun.protect
              ~finally:(fun () ->
                try Unix.close client with Unix.Unix_error _ -> ())
              (fun () -> serve_fd ?max_batch service ~in_fd:client ~out_fd:client);
            accept_loop (Option.map (fun n -> n - 1) remaining)
      in
      accept_loop max_connections)
