open Batlife_numerics

(* Graceful-drain control for the serve loops.

   [request] only flips an atomic (and stamps the wall-clock deadline),
   so it is safe from a signal handler.  Enforcement is cooperative:
   the serve loops poll [requested] between accepts and batches, and a
   watchdog domain cancels every registered in-flight [Budget.t] once
   the deadline passes — a batch that cannot finish inside [drain_s]
   dies as a structured [Cancelled] response, never a killed process. *)

type t = {
  drain_s : float;
  requested : bool Atomic.t;
  deadline : float Atomic.t;  (** absolute wall clock; [infinity] until requested *)
  budgets : Budget.t list Atomic.t;  (** budgets of in-flight batch groups *)
  stopped : bool Atomic.t;  (** stops the watchdog at server exit *)
  watchdog : unit Domain.t option ref;
}

let watchdog_poll_s = 0.02

let create ?(drain_s = 5.0) () =
  if not (Float.is_finite drain_s && drain_s > 0.) then
    invalid_arg "Drain.create: drain_s must be positive and finite";
  let t =
    {
      drain_s;
      requested = Atomic.make false;
      deadline = Atomic.make infinity;
      budgets = Atomic.make [];
      stopped = Atomic.make false;
      watchdog = ref None;
    }
  in
  t.watchdog :=
    Some
      (Domain.spawn (fun () ->
           while not (Atomic.get t.stopped) do
             Unix.sleepf watchdog_poll_s;
             if
               Atomic.get t.requested
               && Unix.gettimeofday () > Atomic.get t.deadline
             then List.iter Budget.cancel (Atomic.get t.budgets)
           done));
  t

let drain_s t = t.drain_s
let requested t = Atomic.get t.requested

let request t =
  if not (Atomic.get t.requested) then begin
    Atomic.set t.deadline (Unix.gettimeofday () +. t.drain_s);
    Atomic.set t.requested true
  end

let rec register t b =
  let cur = Atomic.get t.budgets in
  if not (Atomic.compare_and_set t.budgets cur (b :: cur)) then register t b;
  (* A budget registered after the deadline has already passed must not
     wait for the next watchdog tick to die. *)
  if Atomic.get t.requested && Unix.gettimeofday () > Atomic.get t.deadline
  then Budget.cancel b

let rec unregister t b =
  let cur = Atomic.get t.budgets in
  let next = List.filter (fun b' -> b' != b) cur in
  if not (Atomic.compare_and_set t.budgets cur next) then unregister t b

let stop t =
  Atomic.set t.stopped true;
  match !(t.watchdog) with
  | None -> ()
  | Some d ->
      t.watchdog := None;
      Domain.join d
