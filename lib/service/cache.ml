open Batlife_numerics
open Batlife_core

type entry = {
  spec : Model_spec.t;
  fingerprint : string;
  d : Discretized.t;
  session : Discretized.Session.session;
}

type slot = { entry : entry; mutable last_used : int }

type t = {
  capacity : int;
  table : (string, slot) Hashtbl.t;
  mutable clock : int;
}

let c_hits = Telemetry.counter "session.cache_hit"
let c_misses = Telemetry.counter "session.cache_miss"
let c_evictions = Telemetry.counter "session.cache_evictions"
let g_size = Telemetry.gauge "session.cache_size"

let create ~capacity =
  if capacity < 1 then invalid_arg "Cache.create: capacity must be >= 1";
  { capacity; table = Hashtbl.create 64; clock = 0 }

let tick t =
  t.clock <- t.clock + 1;
  t.clock

let evict_lru t =
  let victim =
    Hashtbl.fold
      (fun key slot acc ->
        match acc with
        | Some (_, best) when best.last_used <= slot.last_used -> acc
        | _ -> Some (key, slot))
      t.table None
  in
  match victim with
  | None -> ()
  | Some (key, _) ->
      Hashtbl.remove t.table key;
      Telemetry.incr c_evictions

let find_or_build t spec =
  let fingerprint = Model_spec.fingerprint spec in
  match Hashtbl.find_opt t.table fingerprint with
  | Some slot ->
      slot.last_used <- tick t;
      Telemetry.incr c_hits;
      (slot.entry, `Hit)
  | None ->
      Telemetry.incr c_misses;
      let d = Model_spec.build spec in
      let session =
        Discretized.Session.create ~opts:(Model_spec.opts spec) d
      in
      let entry = { spec; fingerprint; d; session } in
      if Hashtbl.length t.table >= t.capacity then evict_lru t;
      Hashtbl.replace t.table fingerprint { entry; last_used = tick t };
      Telemetry.set_gauge g_size (float_of_int (Hashtbl.length t.table));
      (entry, `Miss)

let size t = Hashtbl.length t.table
let capacity t = t.capacity
let hits _ = Telemetry.value c_hits
let misses _ = Telemetry.value c_misses
let evictions _ = Telemetry.value c_evictions
