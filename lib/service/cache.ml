open Batlife_numerics
open Batlife_core

type entry = {
  spec : Model_spec.t;
  fingerprint : string;
  d : Discretized.t;
  session : Discretized.Session.session;
}

type slot = { entry : entry; mutable last_used : int; mutable bytes : int }

type t = {
  capacity : int;
  max_bytes : int option;
  table : (string, slot) Hashtbl.t;
  mutable clock : int;
  mutable resident : int;  (** sum of the slots' byte estimates *)
}

let c_hits = Telemetry.counter "session.cache_hit"
let c_misses = Telemetry.counter "session.cache_miss"
let c_evictions = Telemetry.counter "session.cache_evictions"
let c_evict_capacity = Telemetry.counter "session.cache_evictions_capacity"
let c_evict_bytes = Telemetry.counter "session.cache_evictions_bytes"
let g_size = Telemetry.gauge "session.cache_size"
let g_bytes = Telemetry.gauge "session.cache_bytes"

let create ~capacity ?max_bytes () =
  if capacity < 1 then invalid_arg "Cache.create: capacity must be >= 1";
  (match max_bytes with
  | Some b when b < 1 -> invalid_arg "Cache.create: max_bytes must be >= 1"
  | _ -> ());
  { capacity; max_bytes; table = Hashtbl.create 64; clock = 0; resident = 0 }

let tick t =
  t.clock <- t.clock + 1;
  t.clock

let set_gauges t =
  Telemetry.set_gauge g_size (float_of_int (Hashtbl.length t.table));
  Telemetry.set_gauge g_bytes (float_of_int t.resident)

let evict_lru t ~reason =
  let victim =
    Hashtbl.fold
      (fun key slot acc ->
        match acc with
        | Some (_, best) when best.last_used <= slot.last_used -> acc
        | _ -> Some (key, slot))
      t.table None
  in
  match victim with
  | None -> ()
  | Some (key, slot) ->
      Hashtbl.remove t.table key;
      t.resident <- t.resident - slot.bytes;
      Telemetry.incr c_evictions;
      Telemetry.incr
        (match reason with
        | `Capacity -> c_evict_capacity
        | `Bytes -> c_evict_bytes)

let find_or_build t spec =
  let fingerprint = Model_spec.fingerprint spec in
  match Hashtbl.find_opt t.table fingerprint with
  | Some slot ->
      slot.last_used <- tick t;
      Telemetry.incr c_hits;
      (slot.entry, `Hit)
  | None ->
      Telemetry.incr c_misses;
      let d = Model_spec.build spec in
      let session =
        Discretized.Session.create ~opts:(Model_spec.opts spec) d
      in
      let entry = { spec; fingerprint; d; session } in
      if Hashtbl.length t.table >= t.capacity then evict_lru t ~reason:`Capacity;
      let bytes = Discretized.Session.approx_bytes session in
      Hashtbl.replace t.table fingerprint { entry; last_used = tick t; bytes };
      t.resident <- t.resident + bytes;
      set_gauges t;
      (entry, `Miss)

(* Sessions grow as they warm up (kernel build on the first flush, new
   Fox–Glynn windows per distinct time), so the budget is enforced
   against {e re-read} estimates after the batch's model work — not
   against the estimate at insertion time.  Eviction is LRU, which
   keeps the entry that just served the batch alive longest; an entry
   alone over the whole budget is therefore admitted, used, and only
   then evicted (counted under ["session.cache_evictions_bytes"]). *)
let enforce_budget t =
  (match t.max_bytes with
  | None -> ()
  | Some budget ->
      let resident = ref 0 in
      Hashtbl.iter
        (fun _ slot ->
          slot.bytes <- Discretized.Session.approx_bytes slot.entry.session;
          resident := !resident + slot.bytes)
        t.table;
      t.resident <- !resident;
      while t.resident > budget && Hashtbl.length t.table > 0 do
        evict_lru t ~reason:`Bytes
      done);
  set_gauges t

let size t = Hashtbl.length t.table
let capacity t = t.capacity
let max_bytes t = t.max_bytes
let resident_bytes t = t.resident
let hits _ = Telemetry.value c_hits
let misses _ = Telemetry.value c_misses
let evictions _ = Telemetry.value c_evictions
