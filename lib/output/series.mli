(** Named (x, y) series — the exchange format between the experiment
    harness and the writers/plotters. *)

type t = private { name : string; xs : float array; ys : float array }

val create : name:string -> xs:float array -> ys:float array -> t
(** Lengths must match. *)

val of_pairs : name:string -> (float * float) array -> t

val name : t -> string

val length : t -> int

val xs : t -> float array

val ys : t -> float array

val map_y : (float -> float) -> t -> t

val rename : string -> t -> t

val x_range : t -> float * float
(** [(min, max)] over the x values.  Raises
    [Batlife_numerics.Diag.Error (Invalid_model _)] on an empty
    series. *)

val y_range : t -> float * float
