let glyphs = [| '*'; '+'; 'o'; 'x'; '#'; '@'; '%'; '&' |]

let render ?(width = 72) ?(height = 20) ?(x_label = "x") ?(y_label = "y")
    series =
  if series = [] then
    Batlife_numerics.Diag.invalid_model ~what:"Ascii_plot.render"
      [ "no series to plot" ];
  let ranges_x = List.map Series.x_range series in
  let ranges_y = List.map Series.y_range series in
  let x_min = List.fold_left (fun a (lo, _) -> Float.min a lo) infinity ranges_x
  and x_max =
    List.fold_left (fun a (_, hi) -> Float.max a hi) neg_infinity ranges_x
  and y_min = List.fold_left (fun a (lo, _) -> Float.min a lo) infinity ranges_y
  and y_max =
    List.fold_left (fun a (_, hi) -> Float.max a hi) neg_infinity ranges_y
  in
  let x_span = if x_max > x_min then x_max -. x_min else 1.
  and y_span = if y_max > y_min then y_max -. y_min else 1. in
  let canvas = Array.make_matrix height width ' ' in
  let plot_series idx s =
    let glyph = glyphs.(idx mod Array.length glyphs) in
    let xs = Series.xs s and ys = Series.ys s in
    Array.iteri
      (fun i x ->
        let col =
          int_of_float ((x -. x_min) /. x_span *. float_of_int (width - 1))
        in
        let row =
          height - 1
          - int_of_float
              ((ys.(i) -. y_min) /. y_span *. float_of_int (height - 1))
        in
        if row >= 0 && row < height && col >= 0 && col < width then
          canvas.(row).(col) <- glyph)
      xs
  in
  List.iteri plot_series series;
  let buffer = Buffer.create 4096 in
  Buffer.add_string buffer
    (Printf.sprintf "%s in [%g, %g]  %s in [%g, %g]\n" x_label x_min x_max
       y_label y_min y_max);
  Array.iter
    (fun row ->
      Buffer.add_char buffer '|';
      Array.iter (Buffer.add_char buffer) row;
      Buffer.add_char buffer '\n')
    canvas;
  Buffer.add_char buffer '+';
  Buffer.add_string buffer (String.make width '-');
  Buffer.add_char buffer '\n';
  List.iteri
    (fun idx s ->
      Buffer.add_string buffer
        (Printf.sprintf "  %c %s\n"
           glyphs.(idx mod Array.length glyphs)
           (Series.name s)))
    series;
  Buffer.contents buffer

let print ?width ?height ?x_label ?y_label series =
  print_string (render ?width ?height ?x_label ?y_label series)
