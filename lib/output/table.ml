type align = Left | Right

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s

let render ?align ~header rows =
  let columns = List.length header in
  let normalize row =
    let len = List.length row in
    if len >= columns then row
    else row @ List.init (columns - len) (fun _ -> "")
  in
  let rows = List.map normalize rows in
  let aligns =
    match align with
    | Some a when List.length a = columns -> a
    | Some a ->
        Batlife_numerics.Diag.invalid_model ~what:"Table.render"
          [
            Printf.sprintf "align has %d entries but the header has %d columns"
              (List.length a) columns;
          ]
    | None -> List.init columns (fun i -> if i = 0 then Left else Right)
  in
  let widths = Array.make columns 0 in
  List.iter
    (fun row ->
      List.iteri
        (fun i cell -> widths.(i) <- max widths.(i) (String.length cell))
        row)
    (header :: rows);
  let render_row row =
    String.concat "  "
      (List.mapi (fun i cell -> pad (List.nth aligns i) widths.(i) cell) row)
  in
  let separator =
    String.concat "  "
      (List.init columns (fun i -> String.make widths.(i) '-'))
  in
  String.concat "\n"
    ((render_row header :: separator :: List.map render_row rows) @ [ "" ])

let print ?align ~header rows = print_string (render ?align ~header rows)

let float_cell ?(decimals = 1) x =
  if Float.is_nan x then "-" else Printf.sprintf "%.*f" decimals x
