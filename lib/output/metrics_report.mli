(** Human-readable rendering of a telemetry snapshot.

    The [--profile] CLI flag and the experiment runner print these
    tables; the machine-readable exports (metrics JSON, Chrome trace)
    live in {!Batlife_numerics.Telemetry} itself because they have no
    formatting dependencies. *)

val span_table : Batlife_numerics.Telemetry.rollup_row list -> string
(** Per-phase breakdown: one row per span name with call count, total,
    self and max wall time (milliseconds), sorted by total time.
    Empty string when there are no spans. *)

val render : Batlife_numerics.Telemetry.snapshot -> string
(** Full summary: span roll-up, then non-zero counters and gauges,
    then non-empty histograms (count / mean / max per row). *)

val print : ?oc:out_channel -> Batlife_numerics.Telemetry.snapshot -> unit
(** [print snap] writes [render snap] to [oc] (default [stderr], so
    profiles never corrupt machine-read stdout output). *)
