module Diag = Batlife_numerics.Diag

type t = { name : string; xs : float array; ys : float array }

let create ~name ~xs ~ys =
  if Array.length xs <> Array.length ys then
    Diag.invalid_model ~what:"Series.create"
      [
        Printf.sprintf "series %S has %d x values but %d y values" name
          (Array.length xs) (Array.length ys);
      ];
  { name; xs = Array.copy xs; ys = Array.copy ys }

let of_pairs ~name pairs =
  { name; xs = Array.map fst pairs; ys = Array.map snd pairs }

let name s = s.name

let length s = Array.length s.xs

let xs s = Array.copy s.xs

let ys s = Array.copy s.ys

let map_y f s = { s with ys = Array.map f s.ys }

let rename name s = { s with name }

let range values =
  if Array.length values = 0 then
    Diag.invalid_model ~what:"Series range" [ "series has no points" ];
  ( Array.fold_left Float.min values.(0) values,
    Array.fold_left Float.max values.(0) values )

let x_range s = range s.xs

let y_range s = range s.ys
