module Telemetry = Batlife_numerics.Telemetry

let ms ns = Int64.to_float ns /. 1e6

let span_table rows =
  match rows with
  | [] -> ""
  | rows ->
      Table.render
        ~align:[ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right ]
        ~header:[ "phase"; "calls"; "total ms"; "self ms"; "max ms" ]
        (List.map
           (fun (r : Telemetry.rollup_row) ->
             [
               r.Telemetry.r_name;
               string_of_int r.Telemetry.r_count;
               Table.float_cell ~decimals:3 (ms r.Telemetry.r_total_ns);
               Table.float_cell ~decimals:3 (ms r.Telemetry.r_self_ns);
               Table.float_cell ~decimals:3 (ms r.Telemetry.r_max_ns);
             ])
           rows)

let counter_table counters gauges =
  let counter_rows =
    List.filter_map
      (fun (name, v) ->
        if v = 0 then None else Some [ name; string_of_int v ])
      counters
  in
  let gauge_rows =
    List.filter_map
      (fun (name, v) ->
        if v = 0. then None else Some [ name; Printf.sprintf "%g" v ])
      gauges
  in
  match counter_rows @ gauge_rows with
  | [] -> ""
  | rows -> Table.render ~header:[ "counter/gauge"; "value" ] rows

let histogram_table histograms =
  let rows =
    List.filter_map
      (fun (h : Telemetry.histogram_snapshot) ->
        if h.Telemetry.hs_total = 0 then None
        else
          Some
            [
              h.Telemetry.hs_name;
              string_of_int h.Telemetry.hs_total;
              Printf.sprintf "%g"
                (h.Telemetry.hs_sum /. float_of_int h.Telemetry.hs_total);
              Printf.sprintf "%g" h.Telemetry.hs_max;
            ])
      histograms
  in
  match rows with
  | [] -> ""
  | rows ->
      Table.render ~header:[ "histogram"; "count"; "mean"; "max" ] rows

let render (snap : Telemetry.snapshot) =
  let sections =
    List.filter
      (fun s -> s <> "")
      [
        span_table (Telemetry.rollup snap.Telemetry.snap_spans);
        counter_table snap.Telemetry.snap_counters snap.Telemetry.snap_gauges;
        histogram_table snap.Telemetry.snap_histograms;
      ]
  in
  match sections with
  | [] -> "telemetry: nothing recorded (was the collector enabled?)\n"
  | sections -> String.concat "\n" sections

let print ?(oc = stderr) snap =
  output_string oc (render snap);
  flush oc
