(* All artefact files are written atomically (temp + rename): a crash
   or kill mid-write can never leave a truncated .csv/.dat/.gp where a
   complete one used to be. *)
let with_out path f = Batlife_numerics.Atomic_io.with_out ~path f

module FloatMap = Map.Make (Float)

let csv_escape field =
  if String.exists (fun ch -> ch = ',' || ch = '"' || ch = '\n') field then
    "\""
    ^ String.concat "\"\"" (String.split_on_char '"' field)
    ^ "\""
  else field

let write_csv ~path series =
  with_out path (fun oc ->
      output_string oc "x";
      List.iter
        (fun s -> Printf.fprintf oc ",%s" (csv_escape (Series.name s)))
        series;
      output_char oc '\n';
      (* Merge on the union of x values. *)
      let columns =
        List.map
          (fun s ->
            let m = ref FloatMap.empty in
            let xs = Series.xs s and ys = Series.ys s in
            Array.iteri (fun i x -> m := FloatMap.add x ys.(i) !m) xs;
            !m)
          series
      in
      let all_x =
        List.fold_left
          (fun acc m -> FloatMap.fold (fun x _ acc -> FloatMap.add x () acc) m acc)
          FloatMap.empty columns
      in
      FloatMap.iter
        (fun x () ->
          Printf.fprintf oc "%.12g" x;
          List.iter
            (fun m ->
              match FloatMap.find_opt x m with
              | Some y -> Printf.fprintf oc ",%.12g" y
              | None -> output_char oc ',')
            columns;
          output_char oc '\n')
        all_x)

let write_dat ~path series =
  with_out path (fun oc ->
      List.iter
        (fun s ->
          Printf.fprintf oc "# %s\n" (Series.name s);
          let xs = Series.xs s and ys = Series.ys s in
          Array.iteri
            (fun i x -> Printf.fprintf oc "%.12g %.12g\n" x ys.(i))
            xs;
          output_string oc "\n\n")
        series)

let write_gnuplot_script ~path ~data_file ~title ~xlabel ~ylabel series =
  with_out path (fun oc ->
      Printf.fprintf oc "set title %S\n" title;
      Printf.fprintf oc "set xlabel %S\n" xlabel;
      Printf.fprintf oc "set ylabel %S\n" ylabel;
      output_string oc "set key bottom right\nset grid\n";
      output_string oc "plot \\\n";
      List.iteri
        (fun i s ->
          Printf.fprintf oc "  %S index %d with lines title %S%s\n" data_file i
            (Series.name s)
            (if i = List.length series - 1 then "" else ", \\"))
        series)
