(** Run the full reproduction suite — every table and figure of the
    paper's evaluation section. *)

type options = {
  out_dir : string;  (** where .dat/.csv/.gp artefacts go *)
  runs : int;  (** Monte-Carlo replications (paper: 1000) *)
  full : bool;  (** include the expensive [Delta = 10, 5] two-well
                    refinements of Figs. 8/9 *)
  stochastic_runs : int;  (** replications for Table 1's stochastic
                              column *)
  opts : Batlife_ctmc.Solver_opts.t;
      (** numerical options threaded through every CTMC-backed
          experiment *)
  checkpoint : string option;
      (** batch completion map: {!run_all} atomically rewrites this
          {!Batlife_core.Checkpoint} file after each successful
          experiment and, on start, skips every id the file already
          lists — so a killed batch resumed with the same path redoes
          only unfinished work *)
}

val default_options : options

val run_all : ?options:options -> unit -> unit
(** Run every experiment.  A structured numerical failure in one
    experiment is reported on stderr and the batch continues with the
    rest (graceful degradation), so one bad configuration cannot sink
    an overnight reproduction run.  With [options.checkpoint] set,
    already-completed experiments (per the checkpoint file) are
    skipped and each fresh success is recorded atomically. *)

val run_many : ?options:options -> string list -> (unit, string) result
(** Run the given ids in order, stopping at the first failure.  Shares
    {!run_all}'s completion-map behaviour: with [options.checkpoint]
    set, already-completed ids are skipped and fresh successes are
    recorded, so an interrupted explicit-id batch resumes too. *)

val run_one : ?options:options -> string -> (unit, string) result
(** Run a single experiment by id: ["table1"], ["fig2"], ["fig7"],
    ["fig8"], ["fig9"], ["fig10"], ["fig11"].  [Error] names the valid
    ids on an unknown id, or renders the structured diagnostic if the
    experiment's numerics failed.  Fallback events recorded by the
    solvers (see {!Batlife_numerics.Diag}) are surfaced on stderr
    after the run. *)

val experiment_ids : string list
