open Batlife_workload
open Batlife_mrm
open Batlife_core
open Batlife_sim

let reference_curve times =
  (* C = 800, c = 1: lifetime = first passage of the consumed charge
     through 800 mAh; P(L <= t) = P(Y(t) >= 800) by Erlangization with
     stage doubling until pointwise 1e-4 stability. *)
  let workload = Simple.model () in
  let m =
    Mrm.create ~generator:workload.Model.generator
      ~rewards:(Array.init (Model.n_states workload) (Model.current workload))
      ~alpha:workload.Model.initial
  in
  let curve, stages =
    Erlangization.exceedance_auto m ~budget:Params.capacity_mah ~times
  in
  Printf.printf
    "%-26s Erlangization converged at %d stages\n" "C=800, c=1 (reference)"
    stages;
  curve

let compute ?opts ?(runs = 1000) () =
  let times = Params.phone_times () in
  let scenario name battery delta =
    let model = Params.simple_kibamrm battery in
    let curve = Lifetime.cdf ?opts ~delta ~times model in
    Printf.printf "%s\n" (Report.curve_summary ~name curve);
    Report.series_of_curve ~name curve
  in
  let simulate name battery =
    let model = Params.simple_kibamrm battery in
    let est = Montecarlo.lifetime_cdf ~runs model ~times in
    Printf.printf "%s\n" (Report.estimate_summary ~name est);
    Report.series_of_estimate ~name est
  in
  let small = Params.battery_phone_small () in
  let two_well = Params.battery_phone_two_well () in
  (* Evaluate sequentially so the progress lines print in order. *)
  let s1 = scenario "C=500, c=1, Delta=25" small 25. in
  let s2 = scenario "C=500, c=1, Delta=2" small 2. in
  let s3 = simulate "C=500, c=1, simulation" small in
  let s4 = scenario "C=800, c=0.625, Delta=25" two_well 25. in
  let s5 = scenario "C=800, c=0.625, Delta=2" two_well 2. in
  let s6 = simulate "C=800, c=0.625, simulation" two_well in
  let s7 =
    Batlife_output.Series.create ~name:"C=800, c=1, reference" ~xs:times
      ~ys:(reference_curve times)
  in
  [ s1; s2; s3; s4; s5; s6; s7 ]

let run ?opts ?(out_dir = Params.results_dir) ?runs () =
  Report.heading "Fig. 10: simple model lifetime CDF, three batteries";
  let series = compute ?opts ?runs () in
  Printf.printf
    "  (paper: ~99%% depletion after about 17 h for C=500/c=1, about 23 h\n\
    \   for the two-well battery, about 25 h for C=800/c=1; the two-well\n\
    \   curves sit nearer the rightmost curve.)\n";
  Report.save_figure ~dir:out_dir ~stem:"fig10"
    ~title:"Simple model, three battery settings" ~xlabel:"t (hours)" series
