open Batlife_mrm
open Batlife_workload
open Batlife_core
open Batlife_sim
module Diag = Batlife_numerics.Diag

let deltas = [ 100.; 50.; 25.; 5. ]

let exact_curve times =
  (* Rewards {0.96, 0}: Y(t) = 0.96 * W_on(t), so the lifetime
     distribution P(L <= t) = P(Y(t) >= C) is exactly
     1 - P(W_on(t) <= C / 0.96). *)
  let workload = Params.onoff_model ~frequency:1.0 () in
  let m =
    Mrm.create ~generator:workload.Model.generator
      ~rewards:(Array.init (Model.n_states workload) (Model.current workload))
      ~alpha:workload.Model.initial
  in
  let queries = Array.map (fun t -> (t, Params.capacity_as)) times in
  let below = Occupation.two_valued_cdf m ~queries in
  Array.map (fun p -> 1. -. p) below

let compute ?opts ?(runs = 1000) ?(with_exact = true) () =
  let model =
    Params.onoff_kibamrm ~frequency:1.0 (Params.battery_single_well ())
  in
  let times = Params.onoff_times () in
  (* One independent solve per delta: fan out across the pool; the
     summary lines print in delta order once every curve is in. *)
  let approx =
    Par.map_with_log_degrading ?opts ~origin:"Fig7"
      ~label:(fun delta -> Printf.sprintf "Delta=%g" delta)
      (fun delta ->
        let name = Printf.sprintf "Delta=%g" delta in
        let curve = Lifetime.cdf ?opts ~delta ~times model in
        (Report.curve_summary ~name curve, Report.series_of_curve ~name curve))
      deltas
  in
  let sim_series =
    match Montecarlo.lifetime_cdf ~runs model ~times with
    | sim ->
        Printf.printf "%s\n" (Report.estimate_summary ~name:"simulation" sim);
        [ Report.series_of_estimate ~name:"simulation" sim ]
    | exception Diag.Error ((Diag.Budget_exhausted _ | Diag.Cancelled _) as e)
      ->
        (* The uniformisation curves above made it; a figure without
           the simulation overlay is still a figure. *)
        Diag.record ~fallback:true ~origin:"Fig7"
          (Printf.sprintf "degraded: dropping the simulation overlay (%s)"
             (Diag.error_to_string e));
        []
  in
  let exact =
    if with_exact then
      [
        Batlife_output.Series.create ~name:"exact (occupation time)" ~xs:times
          ~ys:(exact_curve times);
      ]
    else []
  in
  approx @ sim_series @ exact

let run ?opts ?(out_dir = Params.results_dir) ?runs () =
  Report.heading
    "Fig. 7: on/off model lifetime CDF (C=7200 As, c=1, k=0)";
  let series = compute ?opts ?runs () in
  Printf.printf
    "  (paper: curves steepen towards the simulation as Delta shrinks;\n\
    \   lifetime nearly deterministic around 15000 s; 2882 states and\n\
    \   >36000 iterations at Delta=5 for t=17000 s.)\n";
  Report.save_figure ~dir:out_dir ~stem:"fig7"
    ~title:"On/off model, C=7200 As, c=1, k=0" ~xlabel:"t (seconds)" series
