open Batlife_core

let compute ?opts ?(full = false) () =
  let times = Params.onoff_times () in
  let scenario name battery delta =
    let model = Params.onoff_kibamrm ~frequency:1.0 battery in
    let curve = Lifetime.cdf ?opts ~delta ~times model in
    Printf.printf "%s\n" (Report.curve_summary ~name curve);
    Report.series_of_curve ~name curve
  in
  let delta_two_well = if full then 5. else 25. in
  [
    scenario "C=4500, c=1" (Params.battery_available_only ()) 5.;
    scenario
      (Printf.sprintf "C=7200, c=0.625 (Delta=%g)" delta_two_well)
      (Params.battery_two_well ()) delta_two_well;
    scenario "C=7200, c=1" (Params.battery_single_well ()) 5.;
  ]

let run ?opts ?(out_dir = Params.results_dir) ?full () =
  Report.heading "Fig. 9: on/off model with different initial capacities";
  let series = compute ?opts ?full () in
  Printf.printf
    "  (paper: the battery with only the available well (C=4500) dies\n\
    \   first, the full two-well battery second, and the ideal C=7200\n\
    \   single-well battery lasts longest.)\n";
  Report.save_figure ~dir:out_dir ~stem:"fig9"
    ~title:"On/off model, different initial capacities"
    ~xlabel:"t (seconds)" series
