(** Experiments beyond the paper's figures, exercising remarks the
    paper makes in passing.

    {b Erlang-K} (Section 6.1): "for better approximations to the
    deterministic on/off times, that is, for K > 1 ... the lifetime
    distribution obtained from simulation gets even closer to a
    deterministic one, the values computed by the approximation
    algorithm do not change visibly."  [erlang_k] quantifies exactly
    that: simulated q10–q90 spread shrinks with K while the
    approximation's spread stays put.

    {b Empty-state recovery} (Section 5.2): "the recovery transitions
    could easily be included."  [empty_recovery] compares the standard
    absorbing lifetime CDF with the non-absorbing variant, where the
    reported quantity is the probability of being empty {e at} time t
    (a device tolerating brown-outs). *)

val erlang_k :
  ?opts:Batlife_ctmc.Solver_opts.t ->
  ?out_dir:string ->
  ?runs:int ->
  unit ->
  unit

val empty_recovery :
  ?opts:Batlife_ctmc.Solver_opts.t -> ?out_dir:string -> unit -> unit

val richardson :
  ?opts:Batlife_ctmc.Solver_opts.t -> ?out_dir:string -> unit -> unit
(** Convergence ablation on the Fig. 7 scenario, where the exact
    distribution is computable: measures the error of each [Delta]
    curve against the exact occupation-time curve, estimates the
    empirical convergence order, and shows that Richardson
    extrapolation of the [(Delta, Delta/2)] pair beats the fine curve
    on its own — an accuracy upgrade the paper does not explore. *)

val frequency_sweep : ?out_dir:string -> unit -> unit
(** Lifetime vs square-wave frequency for the whole battery-model
    hierarchy (ideal, Peukert, KiBaM, modified KiBaM,
    Rakhmatov–Vrudhula), all calibrated against the same Table 1
    measurements — Section 2/3's "which model distinguishes load
    shapes" question as one parameter sweep. *)

val charge_profile :
  ?opts:Batlife_ctmc.Solver_opts.t -> ?out_dir:string -> unit -> unit
(** Snapshots of the available-charge distribution (the paper's joint
    distribution of Eq. (2), marginalised onto [y1]) at several times
    for the simple model, plus the exact expected lifetime from the
    first-passage system. *)

val sensitivity :
  ?opts:Batlife_ctmc.Solver_opts.t -> ?out_dir:string -> unit -> unit
(** Sensitivity of the lifetime quantiles to the two KiBaM constants:
    a sweep over [c] and [k] around the calibrated values, using the
    grid-free exact mean (Gauss–Seidel first-passage solve) — how much
    do the calibration uncertainties matter? *)
