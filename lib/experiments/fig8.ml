open Batlife_core
open Batlife_sim

let deltas ~full = if full then [ 100.; 50.; 25.; 10.; 5. ] else [ 100.; 50.; 25. ]

let compute ?opts ?(runs = 1000) ?(full = false) () =
  let model =
    Params.onoff_kibamrm ~frequency:1.0 (Params.battery_two_well ())
  in
  let times = Params.onoff_times () in
  (* One independent solve per delta: fan out across the pool; the
     summary lines print in delta order once every curve is in. *)
  let approx =
    Par.map_with_log ?opts
      (fun delta ->
        let name = Printf.sprintf "Delta=%g" delta in
        let curve = Lifetime.cdf ?opts ~delta ~times model in
        (Report.curve_summary ~name curve, Report.series_of_curve ~name curve))
      (deltas ~full)
  in
  let sim = Montecarlo.lifetime_cdf ~runs model ~times in
  Printf.printf "%s\n" (Report.estimate_summary ~name:"simulation" sim);
  approx @ [ Report.series_of_estimate ~name:"simulation" sim ]

let run ?opts ?(out_dir = Params.results_dir) ?runs ?full () =
  Report.heading
    "Fig. 8: on/off model lifetime CDF (C=7200 As, c=0.625, k=4.5e-5/s)";
  let series = compute ?opts ?runs ?full () in
  Printf.printf
    "  (paper: approximation visibly off the nearly deterministic\n\
    \   simulation (~12100 s) even at Delta=5 -- the phase-type spread\n\
    \   cannot capture a deterministic value; finer Delta infeasible.)\n";
  Report.save_figure ~dir:out_dir ~stem:"fig8"
    ~title:"On/off model, C=7200 As, c=0.625, k=4.5e-5/s"
    ~xlabel:"t (seconds)" series
