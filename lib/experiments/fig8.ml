open Batlife_core
open Batlife_sim
module Diag = Batlife_numerics.Diag

let deltas ~full = if full then [ 100.; 50.; 25.; 10.; 5. ] else [ 100.; 50.; 25. ]

let compute ?opts ?(runs = 1000) ?(full = false) () =
  let model =
    Params.onoff_kibamrm ~frequency:1.0 (Params.battery_two_well ())
  in
  let times = Params.onoff_times () in
  (* One independent solve per delta: fan out across the pool; the
     summary lines print in delta order once every curve is in.  Under
     deadline pressure the fine refinements are dropped with a fallback
     warning and the coarse curves survive. *)
  let approx =
    Par.map_with_log_degrading ?opts ~origin:"Fig8"
      ~label:(fun delta -> Printf.sprintf "Delta=%g" delta)
      (fun delta ->
        let name = Printf.sprintf "Delta=%g" delta in
        let curve = Lifetime.cdf ?opts ~delta ~times model in
        (Report.curve_summary ~name curve, Report.series_of_curve ~name curve))
      (deltas ~full)
  in
  let sim_series =
    match Montecarlo.lifetime_cdf ~runs model ~times with
    | sim ->
        Printf.printf "%s\n" (Report.estimate_summary ~name:"simulation" sim);
        [ Report.series_of_estimate ~name:"simulation" sim ]
    | exception Diag.Error ((Diag.Budget_exhausted _ | Diag.Cancelled _) as e)
      ->
        Diag.record ~fallback:true ~origin:"Fig8"
          (Printf.sprintf "degraded: dropping the simulation overlay (%s)"
             (Diag.error_to_string e));
        []
  in
  approx @ sim_series

let run ?opts ?(out_dir = Params.results_dir) ?runs ?full () =
  Report.heading
    "Fig. 8: on/off model lifetime CDF (C=7200 As, c=0.625, k=4.5e-5/s)";
  let series = compute ?opts ?runs ?full () in
  Printf.printf
    "  (paper: approximation visibly off the nearly deterministic\n\
    \   simulation (~12100 s) even at Delta=5 -- the phase-type spread\n\
    \   cannot capture a deterministic value; finer Delta infeasible.)\n";
  Report.save_figure ~dir:out_dir ~stem:"fig8"
    ~title:"On/off model, C=7200 As, c=0.625, k=4.5e-5/s"
    ~xlabel:"t (seconds)" series
