(** Fig. 9: on/off-model lifetime distributions for three
    initial-capacity scenarios — [(C=4500 As, c=1)],
    [(C=7200 As, c=0.625)] and [(C=7200 As, c=1)].

    The paper computes all three at [Delta = 5]; the two degenerate
    scenarios are cheap and use [Delta = 5] here too, while the
    two-well scenario defaults to [Delta = 25] (see Fig. 8) unless
    [~full:true]. *)

open Batlife_output

val compute :
  ?opts:Batlife_ctmc.Solver_opts.t -> ?full:bool -> unit -> Series.t list

val run :
  ?opts:Batlife_ctmc.Solver_opts.t ->
  ?out_dir:string ->
  ?full:bool ->
  unit ->
  unit
