(** Deterministic parallel fan-out over independent experiment units.

    The experiments' outer loops (one whole solve per refinement
    delta) are embarrassingly parallel; these combinators run them
    across the process-wide [Batlife_numerics.Pool] while keeping
    every observable output — result order, diagnostic events, printed
    summaries — identical to the sequential run.  A solve inside a
    task that itself parallelises (the uniformisation kernel) is safe:
    nested sections run inline on the task's domain.

    {b Resilience.}  A failing task is retried in place (on its own
    domain) with exponential backoff, up to [opts.max_retries] times;
    budget exhaustion and cancellation are never retried.  Each retry
    records a fallback {!Batlife_numerics.Diag} event in the task's
    capture buffer — the merged log stays deterministic — and bumps
    the ["par.retries"] Telemetry counter.  Because a retry re-runs
    the same pure solve, a run that needed retries returns results
    bitwise identical to a fault-free run.  The budget of [opts]
    ([Solver_opts.resolve_budget]) is polled before every task and
    between retry attempts. *)

val map :
  ?opts:Batlife_ctmc.Solver_opts.t ->
  ?backoff_s:float ->
  ('a -> 'b) ->
  'a list ->
  'b list
(** [map ?opts f xs] is [List.map f xs] computed across
    [Solver_opts.resolve_jobs opts] domains.  Results are returned in
    input order; each task's {!Batlife_numerics.Diag} events and
    {!Batlife_numerics.Telemetry} spans are captured on its domain and
    replayed in input order after all tasks finish.  [f] must not
    print (output would interleave) — have it return the text, or use
    {!map_with_log}.  If tasks raise (after exhausting
    [opts.max_retries] in-place retries with [backoff_s]-seconds
    exponential backoff, default 1 ms), the exception of the
    lowest-indexed failing task propagates. *)

val map_partial :
  ?opts:Batlife_ctmc.Solver_opts.t ->
  ?backoff_s:float ->
  ('a -> 'b) ->
  'a list ->
  ('b, Batlife_numerics.Diag.error) result list
(** Like {!map}, but budget exhaustion/cancellation of an individual
    task becomes [Error e] for that task instead of aborting the whole
    fan-out: completed results survive a mid-flight deadline, which is
    what lets the figure loops degrade gracefully (keep the coarse-∆
    curves, report the fine ones as skipped).  Tasks not yet started
    when the budget ran out return [Error] without running.  Non-budget
    failures propagate as in {!map} (after retries). *)

val map_with_log :
  ?opts:Batlife_ctmc.Solver_opts.t ->
  ?backoff_s:float ->
  ('a -> string * 'b) ->
  'a list ->
  'b list
(** [map_with_log ?opts f xs]: like {!map} for an [f] returning
    [(log_line, result)]; the log lines are printed on stdout in input
    order once all tasks finish, then the results are returned. *)

val map_with_log_degrading :
  ?opts:Batlife_ctmc.Solver_opts.t ->
  ?backoff_s:float ->
  origin:string ->
  label:('a -> string) ->
  ('a -> string * 'b) ->
  'a list ->
  'b list
(** {!map_with_log} over {!map_partial}: tasks lost to budget
    exhaustion or cancellation are dropped with a fallback
    {!Batlife_numerics.Diag} event naming [label x] under [origin],
    and the surviving results (in input order) are returned.  If
    {e every} task was lost, the first budget error propagates
    instead — graceful degradation must not degrade to nothing. *)
