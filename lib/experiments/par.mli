(** Deterministic parallel fan-out over independent experiment units.

    The experiments' outer loops (one whole solve per refinement
    delta) are embarrassingly parallel; these combinators run them
    across the process-wide [Batlife_numerics.Pool] while keeping
    every observable output — result order, diagnostic events, printed
    summaries — identical to the sequential run.  A solve inside a
    task that itself parallelises (the uniformisation kernel) is safe:
    nested sections run inline on the task's domain. *)

val map :
  ?opts:Batlife_ctmc.Solver_opts.t -> ('a -> 'b) -> 'a list -> 'b list
(** [map ?opts f xs] is [List.map f xs] computed across
    [Solver_opts.resolve_jobs opts] domains.  Results are returned in
    input order; each task's {!Batlife_numerics.Diag} events and
    {!Batlife_numerics.Telemetry} spans are captured on its domain and
    replayed in input order after all tasks finish.  [f] must not print (output would interleave) — have
    it return the text, or use {!map_with_log}.  If tasks raise, the
    exception of the lowest-indexed failing task propagates. *)

val map_with_log :
  ?opts:Batlife_ctmc.Solver_opts.t ->
  ('a -> string * 'b) ->
  'a list ->
  'b list
(** [map_with_log ?opts f xs]: like {!map} for an [f] returning
    [(log_line, result)]; the log lines are printed on stdout in input
    order once all tasks finish, then the results are returned. *)
