open Batlife_core
open Batlife_sim
open Batlife_output

let erlang_k ?opts ?(out_dir = Params.results_dir) ?(runs = 500) () =
  Report.heading
    "Extension: Erlang-K on/off sojourns (paper Sec. 6.1 remark)";
  let times = Params.onoff_times () in
  let battery = Params.battery_single_well () in
  let series =
    List.concat_map
      (fun k ->
        let model = Params.onoff_kibamrm ~k ~frequency:1.0 battery in
        let curve = Lifetime.cdf ?opts ~delta:50. ~times model in
        let est = Montecarlo.lifetime_cdf ~runs model ~times in
        let spread c p_lo p_hi =
          Lifetime.quantile c p_hi -. Lifetime.quantile c p_lo
        in
        (* Sample-based quantiles: the time grid (250 s) is far coarser
           than the simulated spread, so the ecdf-on-grid would
           saturate. *)
        let ecdf = Stats.Ecdf.create est.Montecarlo.samples in
        let sim_spread =
          Stats.Ecdf.quantile ecdf 0.9 -. Stats.Ecdf.quantile ecdf 0.1
        in
        Printf.printf
          "  K=%2d  approximation q10-q90 spread %7.0f s   simulation %7.0f s\n"
          k (spread curve 0.1 0.9) sim_spread;
        [
          Report.series_of_curve ~name:(Printf.sprintf "Delta=50, K=%d" k)
            curve;
          Report.series_of_estimate ~name:(Printf.sprintf "simulation, K=%d" k)
            est;
        ])
      [ 1; 4; 16 ]
  in
  Printf.printf
    "  (paper: simulation sharpens towards deterministic as K grows; the\n\
    \   approximation's curve does not change visibly.)\n";
  Report.save_figure ~dir:out_dir ~stem:"ext_erlang_k"
    ~title:"On/off model with Erlang-K sojourns" ~xlabel:"t (seconds)" series

let richardson ?opts ?(out_dir = Params.results_dir) () =
  Report.heading
    "Extension: Delta-refinement error and Richardson extrapolation";
  let times = Params.onoff_times () in
  let model =
    Params.onoff_kibamrm ~frequency:1.0 (Params.battery_single_well ())
  in
  (* Exact reference via the occupation-time algorithm. *)
  let workload = model.Kibamrm.workload in
  let m =
    Batlife_mrm.Mrm.create
      ~generator:workload.Batlife_workload.Model.generator
      ~rewards:
        (Array.init
           (Batlife_workload.Model.n_states workload)
           (Batlife_workload.Model.current workload))
      ~alpha:workload.Batlife_workload.Model.initial
  in
  let exact =
    Array.map (fun p -> 1. -. p)
      (Batlife_mrm.Occupation.two_valued_cdf m
         ~queries:(Array.map (fun t -> (t, Params.capacity_as)) times))
  in
  let error_of probabilities =
    let worst = ref 0. in
    Array.iteri
      (fun i p -> worst := Float.max !worst (Float.abs (p -. exact.(i))))
      probabilities;
    !worst
  in
  let deltas = [| 100.; 50.; 25.; 12.5 |] in
  let curves = Lifetime.convergence_study ?opts ~deltas ~times model in
  List.iter
    (fun (c : Lifetime.curve) ->
      Printf.printf "  Delta=%-6g max |F - F_exact| = %.4f\n"
        c.Lifetime.delta
        (error_of c.Lifetime.probabilities))
    curves;
  (match Analysis.empirical_order curves with
  | Some p -> Printf.printf "  empirical convergence order: %.2f\n" p
  | None -> ());
  (match curves with
  | coarse :: fine :: _ ->
      let extrapolated = Analysis.richardson ~coarse fine in
      Printf.printf
        "  Richardson(%g, %g): max error %.4f (fine alone: %.4f)\n"
        coarse.Lifetime.delta fine.Lifetime.delta
        (error_of extrapolated.Lifetime.probabilities)
        (error_of fine.Lifetime.probabilities);
      let series =
        [
          Report.series_of_curve ~name:"Delta=100" coarse;
          Report.series_of_curve ~name:"Delta=50" fine;
          Report.series_of_curve ~name:"Richardson(100,50)" extrapolated;
          Batlife_output.Series.create ~name:"exact" ~xs:times ~ys:exact;
        ]
      in
      Report.save_figure ~dir:out_dir ~stem:"ext_richardson"
        ~title:"Richardson extrapolation vs exact (on/off, c=1)"
        ~xlabel:"t (seconds)" series
  | _ -> ())

let frequency_sweep ?(out_dir = Params.results_dir) () =
  Report.heading
    "Extension: lifetime vs pulse frequency across the model hierarchy";
  let open Batlife_battery in
  let continuous_target = Units.minutes_to_seconds 90. in
  let kibam =
    Fit.k_for_lifetime ~capacity:Params.capacity_as ~c:Params.c_fraction
      ~load:Params.on_current_a ~target_lifetime:continuous_target
  in
  let modified =
    Fit.gamma_for_lifetime ~capacity:Params.capacity_as ~c:Params.c_fraction
      ~continuous_load:Params.on_current_a
      ~continuous_lifetime:continuous_target
      ~target_lifetime:(Units.minutes_to_seconds 193.)
      (Load_profile.square_wave ~frequency:1.0 ~on_load:Params.on_current_a)
  in
  let rakhmatov =
    Rakhmatov.fit_beta ~alpha:Params.capacity_as ~load:Params.on_current_a
      ~target_lifetime:continuous_target
  in
  let peukert =
    Peukert.fit
      (Params.on_current_a, continuous_target)
      (Params.on_current_a /. 2., Units.minutes_to_seconds 230.)
  in
  let frequencies = [ 10.; 1.; 0.1; 0.01; 0.001; 0.0001 ] in
  let minutes = function Some t -> Units.seconds_to_minutes t | None -> nan in
  let sweep name lifetime_of =
    let pairs =
      List.map
        (fun f ->
          let profile =
            Load_profile.square_wave ~frequency:f ~on_load:Params.on_current_a
          in
          (log10 f, minutes (lifetime_of profile)))
        frequencies
    in
    Batlife_output.Series.of_pairs ~name (Array.of_list pairs)
  in
  let series =
    [
      sweep "ideal" (fun p ->
          Some
            (Ideal.lifetime ~capacity:Params.capacity_as
               ~load:(Load_profile.average_load p)));
      sweep "Peukert" (fun p ->
          Some (Peukert.lifetime peukert ~load:(Load_profile.average_load p)));
      sweep "KiBaM" (Kibam.lifetime kibam);
      sweep "modified KiBaM" (Modified_kibam.lifetime modified);
      sweep "Rakhmatov-Vrudhula" (Rakhmatov.lifetime rakhmatov);
    ]
  in
  Batlife_output.Table.print
    ~header:
      ("f (Hz)"
      :: List.map (fun s -> Batlife_output.Series.name s) series)
    (List.mapi
       (fun i f ->
         Printf.sprintf "%g" f
         :: List.map
              (fun s ->
                Batlife_output.Table.float_cell
                  (Batlife_output.Series.ys s).(i))
              series)
       frequencies);
  print_string
    "  (ideal and Peukert are frequency blind; the kinetic/diffusion\n\
    \   models agree at high frequency and separate as bursts approach\n\
    \   the recovery time scale.)\n";
  Report.save_figure ~dir:out_dir ~stem:"ext_frequency_sweep"
    ~title:"Lifetime vs square-wave frequency (all battery models)"
    ~xlabel:"log10 frequency (Hz)" series

let charge_profile ?opts ?(out_dir = Params.results_dir) () =
  Report.heading
    "Extension: available-charge distribution over time (simple model)";
  let model = Params.simple_kibamrm (Params.battery_phone_two_well ()) in
  let d = Discretized.build ~delta:10. model in
  (* One session: every marginal and expected-charge query below is
     answered from a single shared sweep. *)
  let session = Discretized.Session.create ?opts d in
  let queries =
    List.map
      (fun time ->
        ( time,
          Discretized.Session.available_charge_marginal session ~time,
          Discretized.Session.expected_available_charge session ~time ))
      [ 2.; 6.; 12.; 18.; 24. ]
  in
  let series =
    List.map
      (fun (time, marginal_q, expected_q) ->
        let marginal = Discretized.Session.get marginal_q in
        let xs = Array.map fst marginal and ys = Array.map snd marginal in
        Printf.printf
          "  t=%5.1f h  P(empty)=%.3f  E[y1]=%6.1f mAh  P(y1 > 250)=%.3f\n"
          time ys.(0)
          (Discretized.Session.get expected_q)
          (Array.fold_left ( +. ) 0.
             (Array.mapi (fun i y -> if xs.(i) > 250. then y else 0.) ys));
        Batlife_output.Series.create
          ~name:(Printf.sprintf "t = %g h" time)
          ~xs ~ys)
      queries
  in
  Printf.printf "  exact mean lifetime (first-passage solve): %.2f h\n"
    (Discretized.expected_lifetime ?opts d);
  Report.save_figure ~dir:out_dir ~stem:"ext_charge_profile"
    ~title:"Available-charge distribution over time (simple model)"
    ~xlabel:"available charge (mAh)" series

let sensitivity ?opts ?(out_dir = Params.results_dir) () =
  Report.heading "Extension: sensitivity of the mean lifetime to c and k";
  let mean ~c ~k =
    let battery =
      Batlife_battery.Kibam.params ~capacity:Params.capacity_mah ~c ~k
    in
    Lifetime.mean_exact ?opts ~delta:10. (Params.simple_kibamrm battery)
  in
  let c_values = [ 0.4; 0.5; 0.625; 0.75; 0.9 ] in
  let k_values = [ 0.04; 0.08; 0.162; 0.32; 0.65 ] in
  Batlife_output.Table.print
    ~header:
      ("mean life (h): c \\ k"
      :: List.map (fun k -> Printf.sprintf "k=%g" k) k_values)
    (List.map
       (fun c ->
         Printf.sprintf "c=%g" c
         :: List.map
              (fun k -> Batlife_output.Table.float_cell ~decimals:2 (mean ~c ~k))
              k_values)
       c_values);
  let series =
    List.map
      (fun k ->
        Batlife_output.Series.of_pairs
          ~name:(Printf.sprintf "k = %g /h" k)
          (Array.of_list (List.map (fun c -> (c, mean ~c ~k)) c_values)))
      k_values
  in
  print_string
    "  (larger c or faster diffusion both help; at high k the mean\n\
    \   saturates at the full-capacity value, so calibration errors in\n\
    \   k matter most in the slow-diffusion regime.)\n";
  Report.save_figure ~dir:out_dir ~stem:"ext_sensitivity"
    ~title:"Mean lifetime vs c and k (simple model)"
    ~xlabel:"available-charge fraction c" series

let empty_recovery ?opts ?(out_dir = Params.results_dir) () =
  Report.heading
    "Extension: recovery from the empty state (paper Sec. 5.2 remark)";
  let times = Params.phone_times () in
  let model = Params.simple_kibamrm (Params.battery_phone_two_well ()) in
  let delta = 10. in
  let absorbing = Discretized.build ~delta model in
  let live = Discretized.build ~absorb_empty:false ~delta model in
  let by_t, _ = Discretized.empty_probability ?opts absorbing ~times in
  let at_t, _ = Discretized.empty_probability ?opts live ~times in
  let idx_20h = 39 in
  Printf.printf
    "  P(empty by 20 h) = %.3f (absorbing)  vs  P(empty at 20 h) = %.3f\n"
    by_t.(idx_20h) at_t.(idx_20h);
  (* With recovery allowed, the empty probability is never larger. *)
  Array.iteri
    (fun i p ->
      if p > by_t.(i) +. 1e-9 then
        Printf.printf "  WARNING: recovery variant above absorbing at %g h\n"
          times.(i))
    at_t;
  Report.save_figure ~dir:out_dir ~stem:"ext_empty_recovery"
    ~title:"Absorbing vs recovering empty state (simple model)"
    ~xlabel:"t (hours)"
    [
      Series.create ~name:"P(empty by t) -- absorbing" ~xs:times ~ys:by_t;
      Series.create ~name:"P(empty at t) -- with recovery" ~xs:times ~ys:at_t;
    ]
