open Batlife_numerics
open Batlife_ctmc

(* Deterministic parallel fan-out for the experiments.

   Independent figure curves (one per refinement delta) are whole
   solves with no shared state, so they map across the process pool.
   Two things must stay deterministic regardless of domain scheduling:

   - results: [Pool.map_array] already preserves input order;
   - diagnostics: each task runs under [Diag.capture] and
     [Telemetry.capture] on its own domain, and both buffers are
     replayed in input order afterwards, so the merged event stream
     and the merged span stream are exactly the sequential ones.

   Printing from inside [f] would interleave arbitrarily; tasks return
   their text and the caller prints after the map (see {!map_with_log}
   and the fig7/fig8 call sites).

   Per-task failures are retried with exponential backoff up to
   [opts.max_retries] times.  Budget exhaustion and cancellation are
   never retried — more attempts cannot help, and retrying them would
   turn a cooperative shutdown into a spin.  The retry Diag events are
   recorded inside the task's capture buffer, so the merged log is
   deterministic, and the "par.retries" Telemetry counter (an Atomic)
   tallies them process-wide. *)

let c_retries = Telemetry.counter "par.retries"

let never_retry = function
  | Diag.Error (Diag.Cancelled _ | Diag.Budget_exhausted _) -> true
  | _ -> false

let run_with_retries ~budget ~max_retries ~backoff_s f x =
  let rec attempt k =
    match f x with
    | y -> y
    | exception e when never_retry e -> raise e
    | exception e when k < max_retries ->
        Telemetry.incr c_retries;
        Diag.record ~fallback:true ~origin:"Par.map"
          (Printf.sprintf "task attempt %d/%d failed (%s); retrying" (k + 1)
             (max_retries + 1) (Printexc.to_string e));
        (* Cancellation requested while this task was failing wins over
           another attempt. *)
        Budget.check ~what:"Par.map retry" budget;
        Unix.sleepf (backoff_s *. (2. ** float_of_int k));
        attempt (k + 1)
  in
  attempt 0

let default_backoff = 1e-3

let map ?(opts = Solver_opts.default) ?(backoff_s = default_backoff) f xs =
  Solver_opts.request_telemetry opts;
  let pool = Pool.get ~jobs:(Solver_opts.resolve_jobs opts) in
  let budget = Solver_opts.resolve_budget opts in
  let max_retries = opts.Solver_opts.max_retries in
  Pool.map_array pool
    (fun x ->
      Diag.capture (fun () ->
          Telemetry.capture (fun () ->
              Budget.check ~what:"Par.map" budget;
              run_with_retries ~budget ~max_retries ~backoff_s f x)))
    (Array.of_list xs)
  |> Array.to_list
  |> List.map (fun ((y, spans), events) ->
         Diag.replay events;
         Telemetry.replay spans;
         y)

let map_partial ?(opts = Solver_opts.default) ?(backoff_s = default_backoff) f
    xs =
  Solver_opts.request_telemetry opts;
  let pool = Pool.get ~jobs:(Solver_opts.resolve_jobs opts) in
  let budget = Solver_opts.resolve_budget opts in
  let max_retries = opts.Solver_opts.max_retries in
  Pool.map_array pool
    (fun x ->
      Diag.capture (fun () ->
          Telemetry.capture (fun () ->
              match Budget.peek ~what:"Par.map_partial" budget with
              | Some e -> Error e
              | None -> (
                  match run_with_retries ~budget ~max_retries ~backoff_s f x with
                  | y -> Ok y
                  | exception
                      Diag.Error
                        ((Diag.Budget_exhausted _ | Diag.Cancelled _) as e) ->
                      Error e))))
    (Array.of_list xs)
  |> Array.to_list
  |> List.map (fun ((y, spans), events) ->
         Diag.replay events;
         Telemetry.replay spans;
         y)

let map_with_log ?opts ?backoff_s f xs =
  map ?opts ?backoff_s f xs
  |> List.map (fun (line, y) ->
         print_string line;
         print_newline ();
         y)

(* Graceful degradation for the figure loops: under deadline pressure
   keep whatever refinement levels completed (the coarse deltas, which
   are cheapest, run first in the input list) and turn each dropped one
   into a fallback Diag event.  Only when *nothing* completed does the
   budget error propagate — a figure with some curves is better than no
   figure, but an empty figure is a failure. *)
let map_with_log_degrading ?opts ?backoff_s ~origin ~label f xs =
  let results = map_partial ?opts ?backoff_s f xs in
  let first_error = ref None in
  let kept =
    List.filter_map
      (fun (x, r) ->
        match r with
        | Ok (line, y) ->
            print_string line;
            print_newline ();
            Some y
        | Error e ->
            (match !first_error with
            | None -> first_error := Some e
            | Some _ -> ());
            Diag.record ~fallback:true ~origin
              (Printf.sprintf "degraded: dropping %s (%s)" (label x)
                 (Diag.error_to_string e));
            None)
      (List.combine xs results)
  in
  match (kept, !first_error) with
  | [], Some e -> Diag.fail e
  | kept, _ -> kept
