open Batlife_numerics
open Batlife_ctmc

(* Deterministic parallel fan-out for the experiments.

   Independent figure curves (one per refinement delta) are whole
   solves with no shared state, so they map across the process pool.
   Two things must stay deterministic regardless of domain scheduling:

   - results: [Pool.map_array] already preserves input order;
   - diagnostics: each task runs under [Diag.capture] and
     [Telemetry.capture] on its own domain, and both buffers are
     replayed in input order afterwards, so the merged event stream
     and the merged span stream are exactly the sequential ones.

   Printing from inside [f] would interleave arbitrarily; tasks return
   their text and the caller prints after the map (see {!map_with_log}
   and the fig7/fig8 call sites). *)

let map ?(opts = Solver_opts.default) f xs =
  Solver_opts.request_telemetry opts;
  let pool = Pool.get ~jobs:(Solver_opts.resolve_jobs opts) in
  Pool.map_array pool
    (fun x -> Diag.capture (fun () -> Telemetry.capture (fun () -> f x)))
    (Array.of_list xs)
  |> Array.to_list
  |> List.map (fun ((y, spans), events) ->
         Diag.replay events;
         Telemetry.replay spans;
         y)

let map_with_log ?opts f xs =
  map ?opts f xs
  |> List.map (fun (line, y) ->
         print_string line;
         print_newline ();
         y)
