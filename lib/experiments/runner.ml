type options = {
  out_dir : string;
  runs : int;
  full : bool;
  stochastic_runs : int;
  opts : Batlife_ctmc.Solver_opts.t;
  checkpoint : string option;
}

let default_options =
  { out_dir = Params.results_dir; runs = 1000; full = false;
    stochastic_runs = 100; opts = Batlife_ctmc.Solver_opts.default;
    checkpoint = None }

let experiments =
  [
    ( "table1",
      fun o -> Table1.run ~out_dir:o.out_dir ~stochastic_runs:o.stochastic_runs
          () );
    ("fig2", fun o -> Fig2.run ~out_dir:o.out_dir ());
    ("fig7", fun o -> Fig7.run ~opts:o.opts ~out_dir:o.out_dir ~runs:o.runs ());
    ( "fig8",
      fun o ->
        Fig8.run ~opts:o.opts ~out_dir:o.out_dir ~runs:o.runs ~full:o.full () );
    ("fig9", fun o -> Fig9.run ~opts:o.opts ~out_dir:o.out_dir ~full:o.full ());
    ( "fig10",
      fun o -> Fig10.run ~opts:o.opts ~out_dir:o.out_dir ~runs:o.runs () );
    ( "fig11",
      fun o -> Fig11.run ~opts:o.opts ~out_dir:o.out_dir ~runs:o.runs () );
    ( "ext_erlang_k",
      fun o ->
        Extensions.erlang_k ~opts:o.opts ~out_dir:o.out_dir ~runs:o.runs () );
    ( "ext_empty_recovery",
      fun o -> Extensions.empty_recovery ~opts:o.opts ~out_dir:o.out_dir () );
    ( "ext_frequency_sweep",
      fun o -> Extensions.frequency_sweep ~out_dir:o.out_dir () );
    ( "ext_richardson",
      fun o -> Extensions.richardson ~opts:o.opts ~out_dir:o.out_dir () );
    ( "ext_charge_profile",
      fun o -> Extensions.charge_profile ~opts:o.opts ~out_dir:o.out_dir () );
    ( "ext_sensitivity",
      fun o -> Extensions.sensitivity ~opts:o.opts ~out_dir:o.out_dir () );
  ]

let experiment_ids = List.map fst experiments

module Diag = Batlife_numerics.Diag
module Telemetry = Batlife_numerics.Telemetry

(* Print any fallback events the numerical layers recorded while [id]
   ran, then clear the sink so the next experiment starts fresh. *)
let surface_diagnostics id =
  List.iter
    (fun (e : Diag.event) ->
      if e.Diag.fallback then
        Printf.eprintf "experiment %s: note: %s: %s\n%!" id e.Diag.origin
          e.Diag.detail)
    (Diag.events ());
  Diag.clear_events ()

(* With telemetry on, each experiment runs under its own root span and
   prints a per-phase breakdown of the spans recorded while it ran.
   The capture collects only this experiment's spans (worker-domain
   spans are replayed into it by Par.map / convergence_study, in input
   order); replaying them afterwards keeps them available to the
   whole-process exporters (--metrics-out / --trace-out). *)
let with_experiment_span id f options =
  if not (Telemetry.enabled ()) then f options
  else begin
    let result, spans =
      Telemetry.capture (fun () ->
          Telemetry.with_span ("experiment." ^ id) (fun () -> f options))
    in
    Telemetry.replay spans;
    let breakdown = Batlife_output.Metrics_report.span_table (Telemetry.rollup spans) in
    if breakdown <> "" then
      Printf.eprintf "experiment %s: phase breakdown\n%s%!" id breakdown;
    result
  end

let run_one ?(options = default_options) id =
  Batlife_ctmc.Solver_opts.request_telemetry options.opts;
  match List.assoc_opt id experiments with
  | Some f -> (
      match with_experiment_span id f options with
      | () ->
          surface_diagnostics id;
          Ok ()
      | exception Diag.Error e ->
          surface_diagnostics id;
          Error
            (Printf.sprintf "experiment %s failed: %s" id
               (Diag.error_to_string e)))
  | None ->
      Error
        (Printf.sprintf "unknown experiment %S; valid ids: %s" id
           (String.concat ", " experiment_ids))

module Checkpoint = Batlife_core.Checkpoint

(* The batch-level completion map: after each successful experiment the
   checkpoint file is atomically rewritten with the ids finished so
   far, so a killed overnight run resumed with the same checkpoint path
   skips straight past everything already on disk. *)
let load_completed path =
  if not (Sys.file_exists path) then []
  else
    (* A corrupt completion map is quarantined and the batch restarts
       from an empty one: already-written figure artifacts are simply
       recomputed, never trusted blindly. *)
    match Checkpoint.load_for_resume ~path with
    | None -> []
    | Some (Checkpoint.Experiments { completed }) -> completed
    | Some (Checkpoint.Cdf _ | Checkpoint.Montecarlo _) ->
        Diag.invalid_model ~what:("checkpoint " ^ path)
          [
            "checkpoint holds a different computation kind, not an \
             experiments completion map";
          ]

let completion_tracker options =
  let completed =
    ref (match options.checkpoint with
        | None -> []
        | Some path -> load_completed path)
  in
  let is_done id = List.mem id !completed in
  let record_done id =
    match options.checkpoint with
    | None -> ()
    | Some path ->
        completed := !completed @ [ id ];
        Checkpoint.save ~path
          (Checkpoint.Experiments { completed = !completed })
  in
  (is_done, record_done)

let skip_note id =
  Printf.printf "experiment %s: already completed (checkpoint), skipping\n%!"
    id

let run_all ?(options = default_options) () =
  let is_done, record_done = completion_tracker options in
  List.iter
    (fun (id, _) ->
      if is_done id then skip_note id
      else
        match run_one ~options id with
        | Ok () -> record_done id
        | Error msg -> Printf.eprintf "%s (continuing with the rest)\n%!" msg)
    experiments

let run_many ?(options = default_options) ids =
  let is_done, record_done = completion_tracker options in
  let rec go = function
    | [] -> Ok ()
    | id :: rest ->
        if is_done id then begin
          skip_note id;
          go rest
        end
        else (
          match run_one ~options id with
          | Ok () ->
              record_done id;
              go rest
          | Error _ as e -> e)
  in
  go ids
