(** Fig. 8: lifetime distribution of the on/off model with the full
    two-well battery (f = 1 Hz, K = 1, C = 7200 As, c = 0.625,
    k = 4.5e-5/s).  Both wells are discretised, so the state space
    grows quadratically in [1/Delta]: by default the refinement stops
    at [Delta = 25] (the paper's finest [Delta = 5] has ~1.5 million
    states); pass [~full:true] to add [Delta = 10, 5]. *)

open Batlife_output

val compute :
  ?opts:Batlife_ctmc.Solver_opts.t ->
  ?runs:int ->
  ?full:bool ->
  unit ->
  Series.t list

val run :
  ?opts:Batlife_ctmc.Solver_opts.t ->
  ?out_dir:string ->
  ?runs:int ->
  ?full:bool ->
  unit ->
  unit
