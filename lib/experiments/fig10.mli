(** Fig. 10: lifetime distribution of the simple (idle/send/sleep)
    model for three battery settings:

    - C = 500 mAh, c = 1 (only the available charge exists):
      approximation at [Delta = 25, 2] + simulation;
    - C = 800 mAh, c = 0.625, k = 0.162/h (the full KiBaMRM; see params.ml on the paper's printed 1.96e-2/h):
      approximation at [Delta = 25, 2] + simulation;
    - C = 800 mAh, c = 1: reference curve ("exact" in the paper,
      computed there with a uniformisation-based special-case
      algorithm [25]; here via auto-refined Erlangization, plus the
      exact mean via the occupation-time machinery is not applicable —
      three reward values — so the Erlangization is validated by its
      own stage-doubling convergence). *)

open Batlife_output

val compute :
  ?opts:Batlife_ctmc.Solver_opts.t -> ?runs:int -> unit -> Series.t list

val run :
  ?opts:Batlife_ctmc.Solver_opts.t ->
  ?out_dir:string ->
  ?runs:int ->
  unit ->
  unit
