(** Fig. 7: lifetime distribution of the on/off model with the
    degenerate battery (f = 1 Hz, K = 1, C = 7200 As, c = 1, k = 0):
    Markovian approximation at [Delta = 100, 50, 25, 5] against the
    1000-run simulation.  As an extension beyond the paper, the exact
    curve via the occupation-time algorithm ([25]) is included — for
    this two-valued reward structure it is available in closed
    Bernstein-mixture form. *)

open Batlife_output

val compute :
  ?opts:Batlife_ctmc.Solver_opts.t ->
  ?runs:int ->
  ?with_exact:bool ->
  unit ->
  Series.t list

val run :
  ?opts:Batlife_ctmc.Solver_opts.t ->
  ?out_dir:string ->
  ?runs:int ->
  unit ->
  unit
