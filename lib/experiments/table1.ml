open Batlife_battery
open Batlife_sim
open Batlife_output

type row = {
  label : string;
  experimental_min : float;
  kibam_min : float;
  kibam_paper_k_min : float;
  modified_min : float;
  modified_stochastic_min : float;
}

let minutes seconds = Units.seconds_to_minutes seconds

let loads =
  [
    ("continuous", `Continuous);
    ("1 Hz", `Square 1.0);
    ("0.2 Hz", `Square 0.2);
  ]

let profile_of = function
  | `Continuous -> Load_profile.constant Params.on_current_a
  | `Square f ->
      Load_profile.square_wave ~frequency:f ~on_load:Params.on_current_a

let kibam_lifetime p load =
  match Kibam.lifetime p (profile_of load) with
  | Some t -> minutes t
  | None -> Float.nan

let modified_lifetime p load =
  match Modified_kibam.lifetime p (profile_of load) with
  | Some t -> minutes t
  | None -> Float.nan

let compute ?(stochastic_runs = 100) () =
  let continuous_target = Units.minutes_to_seconds 90. in
  (* Analytic KiBaM with k fitted to the continuous measurement. *)
  let fitted =
    Fit.k_for_lifetime ~capacity:Params.capacity_as ~c:Params.c_fraction
      ~load:Params.on_current_a ~target_lifetime:continuous_target
  in
  let paper = Params.battery_two_well () in
  (* Modified KiBaM calibrated on (continuous = 90 min, 1 Hz = 193 min)
     as Rao et al. calibrate against pulsed measurements. *)
  let modified =
    Fit.gamma_for_lifetime ~capacity:Params.capacity_as ~c:Params.c_fraction
      ~continuous_load:Params.on_current_a
      ~continuous_lifetime:continuous_target
      ~target_lifetime:(Units.minutes_to_seconds 193.)
      (Load_profile.square_wave ~frequency:1.0 ~on_load:Params.on_current_a)
  in
  List.map
    (fun (label, load) ->
      let experimental_min =
        List.assoc label Params.experimental_lifetimes_min
      in
      let stochastic, _ci =
        Stochastic_kibam.mean_lifetime ~runs:stochastic_runs ~slot:0.05
          modified (profile_of load)
      in
      {
        label;
        experimental_min;
        kibam_min = kibam_lifetime fitted load;
        kibam_paper_k_min = kibam_lifetime paper load;
        modified_min = modified_lifetime modified load;
        modified_stochastic_min = minutes stochastic;
      })
    loads

let run ?(out_dir = Params.results_dir) ?stochastic_runs () =
  Report.heading "Table 1: experimental and computed lifetimes (minutes)";
  let rows = compute ?stochastic_runs () in
  let cell = Table.float_cell ~decimals:1 in
  Table.print
    ~header:
      [
        "load";
        "Exp. [9]";
        "KiBaM (fit k)";
        "KiBaM (k=4.5e-5)";
        "mod. KiBaM";
        "mod. stoch.";
      ]
    (List.map
       (fun r ->
         [
           r.label;
           cell r.experimental_min;
           cell r.kibam_min;
           cell r.kibam_paper_k_min;
           cell r.modified_min;
           cell r.modified_stochastic_min;
         ])
       rows);
  print_string
    "  (paper: KiBaM 91/203/203, modified numerical 89/193/193,\n\
    \   modified stochastic 90/193/226; KiBaM and deterministic modified\n\
    \   KiBaM are frequency independent -- the paper's central negative\n\
    \   finding.)\n";
  Report.ensure_dir out_dir;
  let csv_rows =
    List.map
      (fun r ->
        Printf.sprintf "%s,%.2f,%.2f,%.2f,%.2f,%.2f" r.label r.experimental_min
          r.kibam_min r.kibam_paper_k_min r.modified_min
          r.modified_stochastic_min)
      rows
  in
  Batlife_numerics.Atomic_io.with_out
    ~path:(Filename.concat out_dir "table1.csv") (fun oc ->
      output_string oc
        "load,experimental_min,kibam_fit_min,kibam_paper_k_min,modified_min,modified_stochastic_min\n";
      List.iter (fun line -> output_string oc (line ^ "\n")) csv_rows);
  Printf.printf "  wrote table1.csv under %s/\n" out_dir
