open Batlife_core
open Batlife_sim
open Batlife_numerics

let compute ?opts ?(runs = 1000) () =
  let times = Params.phone_times () in
  let battery = Params.battery_phone_two_well () in
  let pair name model =
    let curve = Lifetime.cdf ?opts ~delta:5. ~times model in
    Printf.printf "%s\n" (Report.curve_summary ~name curve);
    let est = Montecarlo.lifetime_cdf ~runs model ~times in
    Printf.printf "%s\n"
      (Report.estimate_summary ~name:(name ^ " (simulation)") est);
    ( Report.series_of_curve ~name curve,
      Report.series_of_estimate ~name:(name ^ " (simulation)") est,
      curve )
  in
  let simple_curve, simple_sim, sc = pair "simple model" (Params.simple_kibamrm battery) in
  let burst_curve, burst_sim, bc = pair "burst model" (Params.burst_kibamrm battery) in
  let at20 (c : Lifetime.curve) =
    let interp = Interp.create ~xs:c.Lifetime.times ~ys:c.Lifetime.probabilities in
    Interp.eval interp 20.
  in
  Printf.printf
    "  P(empty at 20 h): simple %.3f vs burst %.3f (paper: ~0.95 vs ~0.89)\n"
    (at20 sc) (at20 bc);
  [ simple_curve; burst_curve; simple_sim; burst_sim ]

let run ?opts ?(out_dir = Params.results_dir) ?runs () =
  Report.heading
    "Fig. 11: simple vs burst model (C=800 mAh, c=0.625, Delta=5)";
  let series = compute ?opts ?runs () in
  Report.save_figure ~dir:out_dir ~stem:"fig11"
    ~title:"Simple vs burst model, C=800 mAh, c=0.625" ~xlabel:"t (hours)"
    series
