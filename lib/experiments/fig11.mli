(** Fig. 11: lifetime distribution of the simple vs the burst model on
    the full two-well phone battery (C = 800 mAh, c = 0.625,
    Delta = 5).  The burst model condenses its send activity and
    sleeps more, so its battery lasts longer — the paper's headline
    application result (about 95% vs 89% depletion probability at
    20 hours). *)

open Batlife_output

val compute :
  ?opts:Batlife_ctmc.Solver_opts.t -> ?runs:int -> unit -> Series.t list

val run :
  ?opts:Batlife_ctmc.Solver_opts.t ->
  ?out_dir:string ->
  ?runs:int ->
  unit ->
  unit
