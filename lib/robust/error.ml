module Diag = Batlife_numerics.Diag

type t = Diag.error =
  | Invalid_model of { what : string; violations : string list }
  | Nonconvergence of {
      algorithm : string;
      iterations : int;
      residual : float;
      tolerance : float;
      attempted : string list;
    }
  | Numerical_breakdown of { where : string; detail : string }
  | Budget_exhausted of { what : string; budget : int }
  | Cancelled of { what : string; progress : string }
  | Parse_error of {
      source : string;
      line : int;
      field : string option;
      message : string;
    }

exception Error = Diag.Error

let to_string = Diag.error_to_string

let pp = Diag.pp

let exit_code = Diag.exit_code

let of_exn = function
  | Diag.Error e -> Some e
  | Invalid_argument message ->
      Some (Invalid_model { what = "argument"; violations = [ message ] })
  | Failure detail ->
      Some (Numerical_breakdown { where = "<unclassified>"; detail })
  | Batlife_numerics.Iterative.Did_not_converge r ->
      Some
        (Nonconvergence
           {
             algorithm = "iterative solver";
             iterations = r.Batlife_numerics.Iterative.iterations;
             residual = r.Batlife_numerics.Iterative.residual;
             tolerance = Float.nan;
             attempted = [];
           })
  | _ -> None

let protect f =
  match f () with
  | value -> Ok value
  | exception exn -> (
      match of_exn exn with Some e -> Result.error e | None -> raise exn)

let get_ok = function Ok v -> v | Error e -> raise (Error e)

let ( let* ) = Result.bind

let ( let+ ) r f = Result.map f r
