(** Structured errors and [Result] combinators.

    Re-exports {!Batlife_numerics.Diag.error} (one variant per failure
    class, each carrying context) so robust callers can write
    [Error.protect]-guarded pipelines without reaching into the
    numerics substrate. *)

type t = Batlife_numerics.Diag.error =
  | Invalid_model of { what : string; violations : string list }
  | Nonconvergence of {
      algorithm : string;
      iterations : int;
      residual : float;
      tolerance : float;
      attempted : string list;
    }
  | Numerical_breakdown of { where : string; detail : string }
  | Budget_exhausted of { what : string; budget : int }
  | Cancelled of { what : string; progress : string }
  | Parse_error of {
      source : string;
      line : int;
      field : string option;
      message : string;
    }

exception Error of t
(** Same exception as [Batlife_numerics.Diag.Error]. *)

val to_string : t -> string
(** One-paragraph human-readable rendering. *)

val pp : Format.formatter -> t -> unit

val exit_code : t -> int
(** Stable per-class CLI exit code (3-8); see
    {!Batlife_numerics.Diag.exit_code}. *)

val of_exn : exn -> t option
(** Classify an exception: [Diag.Error] passes through,
    [Invalid_argument] becomes {!Invalid_model}, [Failure] becomes
    {!Numerical_breakdown}, [Iterative.Did_not_converge] becomes
    {!Nonconvergence}; anything else is [None]. *)

val protect : (unit -> 'a) -> ('a, t) result
(** Run a computation, capturing any classifiable exception as a
    structured error.  Unclassifiable exceptions are re-raised. *)

val get_ok : ('a, t) result -> 'a
(** [get_ok (Ok v)] is [v]; [get_ok (Error e)] raises [Error e]. *)

val ( let* ) : ('a, t) result -> ('a -> ('b, t) result) -> ('b, t) result

val ( let+ ) : ('a, t) result -> ('a -> 'b) -> ('b, t) result
