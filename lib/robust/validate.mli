(** Up-front model validation that reports {e every} violation.

    Each checker walks its whole input and returns the complete list of
    problems found (empty = valid), so a user mistyping three CLI flags
    sees three diagnostics, not a fix-one-rerun loop.  Use
    {!to_result} or {!run} to turn a report into a structured
    {!Error.Invalid_model}. *)

type violation = { subject : string; problem : string }

val message : violation -> string
(** ["subject: problem"]. *)

val messages : violation list -> string list

val to_result : what:string -> violation list -> (unit, Error.t) result
(** [Ok ()] on an empty report, otherwise
    [Error (Invalid_model { what; violations })] carrying every
    message. *)

val run : what:string -> violation list -> unit
(** Like {!to_result} but raises {!Error.Error}. *)

val kibam :
  ?subject:string -> capacity:float -> c:float -> k:float -> unit ->
  violation list
(** Hard KiBaM parameter checks on the raw values (before
    {!Batlife_battery.Kibam.params} would reject them one at a time):
    finiteness, [capacity > 0], [c] in (0, 1], [k >= 0]. *)

val kibam_pedantic :
  ?subject:string -> capacity:float -> c:float -> k:float -> unit ->
  violation list
(** Soft findings a strict caller may escalate: currently [k = 0] with
    [c < 1], which silently strands the bound charge.  The CLI fails on
    these under [--strict] (the default) and downgrades them to
    warnings under [--lenient]. *)

val generator :
  ?tol:float -> ?subject:string -> Batlife_ctmc.Generator.t ->
  violation list
(** Structural CTMC checks: finite entries, non-negative off-diagonal
    rates, and row sums within [tol] (default [1e-9], relative to the
    largest exit rate) of zero.  The [Generator] constructors guarantee
    this by construction; this checker is for generators that may have
    been mutated or built from untrusted data. *)

val uniformisation_q :
  ?subject:string -> Batlife_ctmc.Generator.t -> float -> violation list
(** A user-supplied uniformisation rate must be positive, finite, and
    at least the largest exit rate (otherwise [P = I + Q/q] has
    negative entries and sweeps silently return garbage). *)

val probability_vector :
  ?tol:float -> ?subject:string -> float array -> violation list
(** Finite, non-negative entries summing to 1 (within [tol] scaled by
    the length). *)

val workload :
  ?subject:string -> Batlife_workload.Model.t -> violation list
(** Combined report over a workload model: per-state currents (finite,
    non-negative), the initial distribution, and the mode-switching
    generator. *)
