(** Fault injection for tests and the chaos harness.

    Two layers live here.  The ad-hoc helpers ({!corrupt_row_sum},
    {!inject_nan}, {!transient}, {!nan_measure_after}) sabotage a
    model or callback directly, for unit tests that hold the object in
    hand.  The {b site registry} ({!Fi}, re-exported from
    {!Batlife_numerics.Fi}) is the production-grade layer: named,
    seeded injection points compiled into the hot paths themselves —
    [Atomic_io] write/rename/fsync/short-write, [Checkpoint] load
    corruption, [Pool] worker crashes, [Transient] kernel NaN /
    overflow, [Budget] clock skew — each a single predictable-branch
    check when disarmed, so production binaries carry the sites at no
    measurable cost.  [bench --chaos-report] drives whole fault plans
    through them.

    Nothing arms a site unless a test or the chaos harness asks. *)

module Fi = Batlife_numerics.Fi
(** The process-wide injection-site registry: [Fi.site] interns a
    site, [Fi.arm ~after ~count] schedules it to fire on a
    deterministic window of consultations, [Fi.reset] disarms
    everything.  See {!Batlife_numerics.Fi} for the full API and the
    list of registered site names. *)

val corrupt_row_sum : Batlife_ctmc.Generator.t -> row:int -> amount:float -> unit
(** Add [amount] to the first stored entry of [row] in place, breaking
    the zero-row-sum invariant the generator constructors established.
    Raises [Invalid_argument] if the row is out of range or has no
    stored entries (absorbing rows are empty in CSR form, so there is
    nothing to perturb). *)

val inject_nan : Batlife_numerics.Fvec.t -> index:int -> unit
(** Overwrite one entry (of a matrix's flat [values] stream, an
    iterate buffer, ...) with NaN. *)

exception Injected of string
(** The same exception as [Batlife_numerics.Fi.Injected] (rebound):
    what {!transient} and every armed crash-style site raise —
    deliberately {e not} a [Diag.Error], so it exercises the generic
    retry paths ([Batlife_experiments.Par] task retries, [Pool]
    section supervision). *)

val transient : failures:int -> ('a -> 'b) -> 'a -> 'b
(** [transient ~failures f] behaves like [f] except that the first
    [failures] invocations {e process-wide} raise {!Injected} (the
    countdown is atomic, so concurrent pool workers share it).  Models
    a transient environment fault for driving
    [Batlife_experiments.Par]'s retry-with-backoff: with
    [max_retries >= failures] the fan-out must recover and produce
    results bitwise identical to the fault-free run. *)

val nan_measure_after : calls:int -> ('a -> float) -> 'a -> float
(** [nan_measure_after ~calls m] behaves like [m] for the first
    [calls] invocations and returns NaN from then on — for driving the
    NaN-measure guard of {!Batlife_ctmc.Transient.measure_sweep}
    (whose measures read the flat [Fvec.t] iterate). *)

val with_sites : (string * int * int) list -> (unit -> 'a) -> 'a
(** [with_sites [(site, after, count); ...] f] resets the registry,
    arms each named site to fire on consultations
    [after .. after + count - 1], runs [f], and disarms everything
    again (also on exception) — the scoped arming idiom the fault
    tests and the chaos harness are built from. *)
