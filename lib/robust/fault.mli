(** Test-only fault injection.

    Each helper sabotages a model or callback in a controlled way so
    the guardrails in {!Batlife_ctmc.Transient},
    {!Batlife_numerics.Iterative} and friends can be shown to trip.
    Nothing in the production paths uses this module. *)

val corrupt_row_sum : Batlife_ctmc.Generator.t -> row:int -> amount:float -> unit
(** Add [amount] to the first stored entry of [row] in place, breaking
    the zero-row-sum invariant the generator constructors established.
    Raises [Invalid_argument] if the row is out of range or has no
    stored entries (absorbing rows are empty in CSR form, so there is
    nothing to perturb). *)

val inject_nan : float array -> index:int -> unit
(** Overwrite one entry (of a distribution, a matrix's [values], ...)
    with NaN. *)

exception Injected of string
(** What {!transient} raises — deliberately {e not} a [Diag.Error], so
    it exercises the generic retry path. *)

val transient : failures:int -> ('a -> 'b) -> 'a -> 'b
(** [transient ~failures f] behaves like [f] except that the first
    [failures] invocations {e process-wide} raise {!Injected} (the
    countdown is atomic, so concurrent pool workers share it).  Models
    a transient environment fault for driving
    [Batlife_experiments.Par]'s retry-with-backoff: with
    [max_retries >= failures] the fan-out must recover and produce
    results bitwise identical to the fault-free run. *)

val nan_measure_after : calls:int -> (float array -> float) -> float array -> float
(** [nan_measure_after ~calls m] behaves like [m] for the first
    [calls] invocations and returns NaN from then on — for driving the
    NaN-measure guard of {!Batlife_ctmc.Transient.measure_sweep}. *)
