(** Test-only fault injection.

    Each helper sabotages a model or callback in a controlled way so
    the guardrails in {!Batlife_ctmc.Transient},
    {!Batlife_numerics.Iterative} and friends can be shown to trip.
    Nothing in the production paths uses this module. *)

val corrupt_row_sum : Batlife_ctmc.Generator.t -> row:int -> amount:float -> unit
(** Add [amount] to the first stored entry of [row] in place, breaking
    the zero-row-sum invariant the generator constructors established.
    Raises [Invalid_argument] if the row is out of range or has no
    stored entries (absorbing rows are empty in CSR form, so there is
    nothing to perturb). *)

val inject_nan : float array -> index:int -> unit
(** Overwrite one entry (of a distribution, a matrix's [values], ...)
    with NaN. *)

val nan_measure_after : calls:int -> (float array -> float) -> float array -> float
(** [nan_measure_after ~calls m] behaves like [m] for the first
    [calls] invocations and returns NaN from then on — for driving the
    NaN-measure guard of {!Batlife_ctmc.Transient.measure_sweep}. *)
