module Diag = Batlife_numerics.Diag
module Sparse = Batlife_numerics.Sparse
module Generator = Batlife_ctmc.Generator
module Model = Batlife_workload.Model

type violation = { subject : string; problem : string }

let violation ~subject fmt =
  Printf.ksprintf (fun problem -> { subject; problem }) fmt

let message v = Printf.sprintf "%s: %s" v.subject v.problem

let messages vs = List.map message vs

let to_result ~what = function
  | [] -> Ok ()
  | vs -> Error (Diag.Invalid_model { what; violations = messages vs })

let run ~what vs =
  match to_result ~what vs with
  | Ok () -> ()
  | Error e -> raise (Diag.Error e)

let finite ~subject name value =
  if Float.is_finite value then []
  else [ violation ~subject "%s = %g is not finite" name value ]

(* -- KiBaM parameters ---------------------------------------------- *)

let kibam ?(subject = "KiBaM parameters") ~capacity ~c ~k () =
  let nonfinite =
    finite ~subject "capacity" capacity
    @ finite ~subject "c" c
    @ finite ~subject "k" k
  in
  let range =
    (if Float.is_finite capacity && capacity <= 0. then
       [
         violation ~subject "capacity = %g must be positive (total charge C)"
           capacity;
       ]
     else [])
    @ (if Float.is_finite c && not (c > 0. && c <= 1.) then
         [
           violation ~subject
             "c = %g must lie in (0, 1] (available-charge fraction)" c;
         ]
       else [])
    @
    if Float.is_finite k && k < 0. then
      [ violation ~subject "k = %g must be non-negative (diffusion rate)" k ]
    else []
  in
  nonfinite @ range

let kibam_pedantic ?(subject = "KiBaM parameters") ~capacity:_ ~c ~k () =
  if Float.is_finite c && Float.is_finite k && k = 0. && c < 1. then
    [
      violation ~subject
        "k = 0 with c = %g < 1 leaves the bound well (%.0f%% of the charge) \
         permanently unreachable; use c = 1 for an ideal battery or k > 0 \
         for a true KiBaM"
        c
        (100. *. (1. -. c));
    ]
  else []

(* -- CTMC generators ----------------------------------------------- *)

let generator ?(tol = 1e-9) ?(subject = "generator") g =
  let m = Generator.matrix g in
  let off_diag = ref [] in
  Sparse.iter m (fun i j v ->
      if i <> j && v < 0. then
        off_diag :=
          violation ~subject "negative off-diagonal rate q(%d, %d) = %g" i j v
          :: !off_diag;
      if not (Float.is_finite v) then
        off_diag :=
          violation ~subject "non-finite entry q(%d, %d) = %g" i j v
          :: !off_diag);
  let scale = Float.max 1. (Generator.max_exit_rate g) in
  let rows = ref [] in
  Array.iteri
    (fun i sum ->
      if Float.is_finite sum && Float.abs sum > tol *. scale then
        rows :=
          violation ~subject
            "row %d (%s) sums to %g, not 0 (tolerance %g): probability mass \
             is created or destroyed"
            i (Generator.label g i) sum (tol *. scale)
          :: !rows)
    (Sparse.row_sums m);
  List.rev !off_diag @ List.rev !rows

let uniformisation_q ?(subject = "uniformisation rate") g q =
  if (not (Float.is_finite q)) || q <= 0. then
    [ violation ~subject "q = %g must be a positive finite number" q ]
  else
    let max_exit = Generator.max_exit_rate g in
    if q < max_exit then
      [
        violation ~subject
          "q = %g is below the largest exit rate %g; P = I + Q/q would have \
           negative entries"
          q max_exit;
      ]
    else []

(* -- Probability vectors ------------------------------------------- *)

let probability_vector ?(tol = 1e-9) ?(subject = "probability vector") v =
  let entries = ref [] in
  Array.iteri
    (fun i p ->
      if not (Float.is_finite p) then
        entries :=
          violation ~subject "entry %d = %g is not finite" i p :: !entries
      else if p < -.tol then
        entries := violation ~subject "entry %d = %g is negative" i p :: !entries)
    v;
  let sum = Array.fold_left ( +. ) 0. v in
  let total =
    if Float.is_finite sum && Float.abs (sum -. 1.) > tol *. float (Array.length v + 1)
    then [ violation ~subject "entries sum to %.12g, not 1" sum ]
    else []
  in
  List.rev !entries @ total

(* -- Workload models ----------------------------------------------- *)

let workload ?(subject = "workload model") w =
  let currents = ref [] in
  Array.iteri
    (fun i c ->
      if not (Float.is_finite c) then
        currents :=
          violation ~subject "current of state %d (%s) = %g is not finite" i
            (Model.name w i) c
          :: !currents
      else if c < 0. then
        currents :=
          violation ~subject "current of state %d (%s) = %g is negative" i
            (Model.name w i) c
          :: !currents)
    w.Model.currents;
  List.rev !currents
  @ probability_vector ~subject:(subject ^ " initial distribution")
      w.Model.initial
  @ generator ~subject:(subject ^ " generator") w.Model.generator
