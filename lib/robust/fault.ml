module Generator = Batlife_ctmc.Generator
module Fi = Batlife_numerics.Fi

exception Injected = Batlife_numerics.Fi.Injected

let corrupt_row_sum g ~row ~amount =
  let m = Generator.matrix g in
  if row < 0 || row >= m.Batlife_numerics.Sparse.rows then
    invalid_arg "Fault.corrupt_row_sum: row out of range";
  let start = m.Batlife_numerics.Sparse.row_ptr.(row) in
  let stop = m.Batlife_numerics.Sparse.row_ptr.(row + 1) in
  if start = stop then
    invalid_arg
      "Fault.corrupt_row_sum: row has no stored entries (absorbing rows are \
       empty in CSR form)";
  let values = m.Batlife_numerics.Sparse.values in
  Batlife_numerics.Fvec.set values start
    (Batlife_numerics.Fvec.get values start +. amount)

let inject_nan v ~index =
  if index < 0 || index >= Batlife_numerics.Fvec.length v then
    invalid_arg "Fault.inject_nan: index out of range";
  Batlife_numerics.Fvec.set v index Float.nan

let transient ~failures f =
  if failures < 0 then invalid_arg "Fault.transient: negative count";
  let remaining = Atomic.make failures in
  fun x ->
    let rec claim () =
      let n = Atomic.get remaining in
      n > 0 && (Atomic.compare_and_set remaining n (n - 1) || claim ())
    in
    if claim () then
      raise (Injected "injected transient fault")
    else f x

let nan_measure_after ~calls measure =
  if calls < 0 then invalid_arg "Fault.nan_measure_after: negative count";
  let remaining = ref calls in
  fun v ->
    if !remaining = 0 then Float.nan
    else begin
      decr remaining;
      measure v
    end

let with_sites plans f =
  Fi.reset ();
  List.iter
    (fun (name, after, count) -> Fi.arm ~after ~count name)
    plans;
  Fun.protect ~finally:Fi.reset f
