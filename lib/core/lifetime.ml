open Batlife_numerics
open Batlife_ctmc

type curve = {
  times : float array;
  probabilities : float array;
  delta : float;
  states : int;
  nnz : int;
  iterations : int;
  uniformisation_rate : float;
}

(* The sweep's probabilities carry O(accuracy) floating noise which can
   break strict CDF monotonicity; clamp and monotonise (the absorbed
   mass is mathematically non-decreasing in t for sorted times).
   Violations beyond [monotonicity_tolerance] are not noise — a NaN, an
   out-of-range value or a genuine decrease means the sweep returned
   garbage, and the guard trips a structured diagnostic instead of
   silently smoothing it away. *)
let monotonicity_tolerance = 1e-6

let sanitize times probabilities =
  let order = Array.init (Array.length times) (fun i -> i) in
  Array.sort (fun a b -> Float.compare times.(a) times.(b)) order;
  let running = ref 0. in
  Array.iter
    (fun idx ->
      let raw = probabilities.(idx) in
      if Float.is_nan raw then
        Diag.breakdown ~where:"Lifetime.cdf" "CDF value at t = %g is NaN"
          times.(idx);
      if raw < -.monotonicity_tolerance || raw > 1. +. monotonicity_tolerance
      then
        Diag.breakdown ~where:"Lifetime.cdf"
          "CDF value %g at t = %g lies outside [0, 1] beyond tolerance %g" raw
          times.(idx) monotonicity_tolerance;
      if raw < !running -. monotonicity_tolerance then
        Diag.breakdown ~where:"Lifetime.cdf"
          "CDF decreases by %g at t = %g (tolerance %g): the absorbed mass \
           must be non-decreasing"
          (!running -. raw) times.(idx) monotonicity_tolerance;
      let p = Float.min 1. (Float.max 0. raw) in
      running := Float.max !running p;
      probabilities.(idx) <- !running)
    order

let curve_of ~delta d probabilities (stats : Transient.stats) ~times =
  sanitize times probabilities;
  {
    times = Array.copy times;
    probabilities;
    delta;
    states = Discretized.n_states d;
    nnz = Discretized.nnz d;
    iterations = stats.Transient.iterations;
    uniformisation_rate = stats.Transient.uniformisation_rate;
  }

(* The session-backed path: callers that already hold a [Discretized.t]
   (the CLI, the experiments) get the CDF from the shared engine — and
   can keep using the same session for further per-time queries at no
   extra sweep. *)
let cdf_session ?(session : Discretized.Session.session option) ~delta d ~times
    =
  let s =
    match session with Some s -> s | None -> Discretized.Session.create d
  in
  let pending = Discretized.Session.empty_probability s ~times in
  let stats = Discretized.Session.run s in
  curve_of ~delta d (Discretized.Session.get pending) stats ~times

(* A-posteriori escalation.  When a sweep fails its self-verification
   (mass residual, skipped-mass budget, Fox–Glynn accounting, CDF
   shape — all surfacing as [Numerical_breakdown]), the result is
   discarded and re-derived on progressively more conservative rungs
   before the failure is let through.  The first rung re-runs
   sequentially with the {e same} kernel configuration and tolerances:
   the parallel kernel is bitwise-identical to the sequential one by
   construction, so a recovery here changes no output bit of a clean
   run — which is what lets the chaos harness demand bitwise equality
   from recovered runs.  The second rung drops to the exact
   full-support oracle kernel (still the same tolerances): it removes
   the adaptive window from the suspect set, at most perturbing the
   result by the skipped mass the adaptive run would have dropped.
   Only the last rung tightens the accuracy (its output may
   legitimately differ; it trades the guarantee for a last chance at a
   usable curve).  If every rung fails, the {e first} error is
   re-raised, so persistent breakdowns report the original diagnosis,
   not the oracle's echo of it. *)
let escalation_rungs (o : Solver_opts.t) =
  [
    ("sequential kernel, same tolerances", { o with jobs = Some 1 });
    ( "sequential exact full-support oracle, same tolerances",
      { o with jobs = Some 1; adaptive_support = false } );
    ( "sequential exact full-support oracle, accuracy tightened 100x",
      {
        o with
        jobs = Some 1;
        adaptive_support = false;
        accuracy = o.Solver_opts.accuracy /. 100.;
      } );
  ]

let cdf_discretized ?opts ~delta d ~times =
  let o = match opts with Some o -> o | None -> Solver_opts.default in
  let attempt o' =
    let s = Discretized.Session.create ~opts:o' d in
    cdf_session ~session:s ~delta d ~times
  in
  match attempt o with
  | curve -> curve
  | exception (Diag.Error (Diag.Numerical_breakdown _) as first) ->
      let rec climb = function
        | [] -> raise first
        | (label, o') :: rest -> (
            Diag.record ~fallback:true ~origin:"Lifetime.verify"
              (Printf.sprintf
                 "sweep failed its a-posteriori check; re-running with %s"
                 label);
            match attempt o' with
            | curve -> curve
            | exception Diag.Error (Diag.Numerical_breakdown _) -> climb rest)
      in
      climb (escalation_rungs o)

let cdf ?opts ?initial_fill ~delta ~times model =
  (match opts with Some o -> Solver_opts.request_telemetry o | None -> ());
  Telemetry.with_span "lifetime.cdf" @@ fun () ->
  let d = Discretized.build ?initial_fill ~delta model in
  cdf_discretized ?opts ~delta d ~times

(* The checkpointable CDF path.  It runs the same single-measure sweep
   as the session path (same resolved rate, same Fox–Glynn windows,
   same kernel construction), so its output is bitwise identical to
   [cdf]'s — asserted by the resilience test suite — while exposing
   Transient's snapshot/resume hooks through [Checkpoint] files. *)
let fingerprint_mismatches ~delta ~accuracy ~states ~nnz ~times
    (c : Checkpoint.cdf) =
  let issues = ref [] in
  let add fmt = Printf.ksprintf (fun s -> issues := s :: !issues) fmt in
  if c.Checkpoint.cdf_delta <> delta then
    add "checkpoint delta %g differs from this run's %g"
      c.Checkpoint.cdf_delta delta;
  if c.Checkpoint.cdf_accuracy <> accuracy then
    add "checkpoint accuracy %g differs from this run's %g"
      c.Checkpoint.cdf_accuracy accuracy;
  if c.Checkpoint.cdf_states <> states then
    add "checkpoint has %d states but this model expands to %d"
      c.Checkpoint.cdf_states states;
  if c.Checkpoint.cdf_nnz <> nnz then
    add "checkpoint has %d nonzeros but this model has %d"
      c.Checkpoint.cdf_nnz nnz;
  if c.Checkpoint.cdf_times <> times then add "time grids differ";
  List.rev !issues

let cdf_resumable ?(opts = Solver_opts.default) ?initial_fill ?checkpoint
    ?resume ~delta ~times model =
  Solver_opts.request_telemetry opts;
  Telemetry.with_span "lifetime.cdf" @@ fun () ->
  let d = Discretized.build ?initial_fill ~delta model in
  let payload_of progress =
    Checkpoint.Cdf
      {
        Checkpoint.cdf_delta = delta;
        cdf_accuracy = opts.Solver_opts.accuracy;
        cdf_states = Discretized.n_states d;
        cdf_nnz = Discretized.nnz d;
        cdf_times = times;
        cdf_progress = progress;
      }
  in
  let resume_progress =
    match resume with
    | None -> None
    | Some path -> (
        (* A corrupt file is quarantined and the sweep restarts cold —
           resumability must degrade to "slower", never to "stuck". *)
        match Checkpoint.load_for_resume ~path with
        | None -> None
        | Some (Checkpoint.Cdf c) -> (
            match
              fingerprint_mismatches ~delta
                ~accuracy:opts.Solver_opts.accuracy
                ~states:(Discretized.n_states d) ~nnz:(Discretized.nnz d)
                ~times c
            with
            | [] -> Some c.Checkpoint.cdf_progress
            | issues ->
                Diag.invalid_model ~what:("checkpoint " ^ path) issues)
        | Some (Checkpoint.Montecarlo _ | Checkpoint.Experiments _) ->
            Diag.invalid_model ~what:("checkpoint " ^ path)
              [ "checkpoint holds a different computation kind, not a CDF \
                 sweep" ])
  in
  let progress =
    match checkpoint with
    | None -> Progress.make ?resume:resume_progress ()
    | Some (path, interval) ->
        let save p = Checkpoint.save ~path (payload_of p) in
        Progress.make
          ~on_step:(Progress.every interval save)
          ~on_interrupt:save ?resume:resume_progress ()
  in
  let probabilities, stats =
    Discretized.empty_probability ~opts ~progress d ~times
  in
  curve_of ~delta d probabilities stats ~times

let mean c =
  let survival = Array.map (fun p -> 1. -. p) c.probabilities in
  (* Add the [0, t_0] prefix assuming survival probability 1 before the
     first sample (F(0) = 0 for a battery with positive charge). *)
  let prefix = if Array.length c.times > 0 then c.times.(0) else 0. in
  prefix +. Quadrature.trapezoid_sampled ~xs:c.times ~ys:survival

let mean_exact ?opts ?initial_fill ~delta model =
  Discretized.expected_lifetime ?opts
    (Discretized.build ?initial_fill ~delta model)

let quantile c p =
  if p < 0. || p > 1. then invalid_arg "Lifetime.quantile: p outside [0,1]";
  let interp = Interp.create ~xs:c.times ~ys:c.probabilities in
  Interp.inverse interp p

(* The refinement points are independent whole solves, so they fan out
   across the pool.  Each point's diagnostics — Diag events and
   Telemetry spans alike — are captured on its own domain and replayed
   in delta order afterwards, so the merged streams (and hence every
   log a front end prints from them) are identical to the sequential
   run's. *)
let convergence_study ?(opts = Solver_opts.default) ~deltas ~times model =
  Solver_opts.request_telemetry opts;
  let pool = Pool.get ~jobs:(Solver_opts.resolve_jobs opts) in
  Pool.map_array pool
    (fun delta ->
      Diag.capture (fun () ->
          Telemetry.capture (fun () -> cdf ~opts ~delta ~times model)))
    deltas
  |> Array.to_list
  |> List.map (fun ((curve, spans), events) ->
         Diag.replay events;
         Telemetry.replay spans;
         curve)

