(** The Markovian approximation (Section 5): expansion of the KiBaMRM
    into a pure CTMC over [workload-state x charge levels].

    Three transition families populate the generator [Q*]:

    - {b workload} transitions [(i,j1,j2) -> (i',j1,j2)] at the
      original rate [Q_{i,i'}];
    - {b consumption} transitions [(i,j1,j2) -> (i,j1-1,j2)] at rate
      [I_i / delta];
    - {b well transfer} transitions [(i,j1,j2) -> (i,j1+1,j2-1)] at
      rate [k (j2/(1-c) - j1/c)] whenever [h2 >= h1].

    States with [j1 = 0] (battery empty) are absorbing.  The flat
    state layout puts them in the leading block, so the probability of
    being empty is the mass of a prefix of the transient vector.

    {b Evaluating measures.}  {!Session} is the batched evaluation
    engine: it caches everything that depends only on the model and
    the solver options (CSR matrix, uniformisation rate, Fox–Glynn
    windows, working buffers) and answers any number of registered
    queries — CDF, marginals, expected charge, joint probabilities —
    from {e one} power sweep per flush.  (The pre-session per-time
    helpers, which paid a full sweep per call, were removed; register
    the same queries on a session instead.) *)

open Batlife_ctmc

type t = private {
  model : Kibamrm.t;
  grid : Grid.t;
  generator : Generator.t;
  alpha : float array;  (** initial distribution over flat states *)
}

val build :
  ?initial_fill:float * float ->
  ?absorb_empty:bool ->
  delta:float ->
  Kibamrm.t ->
  t
(** Expand the model with step [delta].  [initial_fill] overrides the
    initial well contents [(a1, a2)] (default: full battery,
    [(cC, (1-c)C)]).  Construction is linear in the number of
    transitions.

    [absorb_empty] (default [true]) makes the [j1 = 0] states
    absorbing, matching the paper's lifetime definition (first hit of
    an empty available well).  Setting it to [false] enables the
    variant the paper mentions in Section 5.2: the empty states keep
    their workload and well-transfer transitions, so a device that
    tolerates brown-outs can recover; {!empty_probability} then
    reports the (non-monotone) probability of being empty {e at} time
    [t] rather than {e by} time [t]. *)

val n_states : t -> int

val nnz : t -> int
(** Nonzero entries of [Q*] including the diagonal. *)

val empty_probability :
  ?opts:Solver_opts.t ->
  ?progress:Transient.sweep_progress Batlife_numerics.Progress.t ->
  t ->
  times:float array ->
  float array * Transient.stats
(** [Pr{battery empty at time t}] for each requested time — the
    lifetime distribution [Pr{L <= t}] — from a single uniformisation
    sweep.  [progress] is {!Transient.measure_sweep}'s
    checkpoint/resume record, threaded through for
    [Batlife_core.Lifetime]'s resumable CDF. *)

val state_distribution : ?opts:Solver_opts.t -> t -> time:float -> float array
(** Full transient distribution over the flat states at one time. *)

val expected_lifetime : ?opts:Solver_opts.t -> t -> float
(** Exact (no time grid, no Poisson truncation) expected absorption
    time of the expanded chain: solves the first-passage system
    [Q* tau = -1] on the transient states by Gauss–Seidel and returns
    [alpha . tau].  [opts.linear_tol] sets the residual tolerance
    (default [1e-10]).  Requires the absorbing variant
    ([absorb_empty = true]); raises [Invalid_argument] otherwise. *)

(** The batched evaluation engine.

    A session pins the solver options and the uniformisation rate at
    {!Session.create} and caches, for the lifetime of the session:

    - the expanded generator's CSR matrix (shared with [t], never
      copied);
    - the uniformisation rate [q] (validated once);
    - Fox–Glynn windows keyed by [(q, t)] — since [q] is pinned, one
      entry per distinct time point ever queried;
    - the two working vectors of the power sweep, so repeated flushes
      allocate nothing but their result blocks;
    - the parallel stepping kernel of {!Transient.make_kernel} — the
      CSR transpose of the uniformised matrix and its nnz-balanced row
      partition — so the transpose is paid once per session rather
      than once per sweep;
    - the index partitions behind the marginal queries.

    Queries {e register} linear functionals and return typed
    {!Session.pending} handles; {!Session.run} (or the first
    {!Session.get}) flushes every pending registration through one
    {!Transient.multi_measure_sweep} over the union of their time
    grids.  Queries registered after a flush simply go into the next
    batch — a session never recomputes what it already swept, and
    in-flight guards (mass conservation, NaN detection) apply to the
    shared sweep exactly as they do to individual solves. *)
module Session : sig
  type session

  type 'a pending
  (** A registered query; forced by {!get}. *)

  val create : ?opts:Solver_opts.t -> t -> session
  (** Validates and pins the uniformisation rate
      ([opts.unif_rate] when set, the generator's own otherwise) —
      raises [Diag.Error (Invalid_model _)] like
      {!Transient.resolve_rate} on a bad rate. *)

  (** {2 Queries}

      Each registers its functionals on the session and returns
      immediately; no numerical work happens until {!run} or the
      first {!get}. *)

  val empty_probability : session -> times:float array -> float array pending
  (** The lifetime CDF [Pr{L <= t}] on [times] (one value per entry,
      in the given order). *)

  val available_charge_marginal :
    session -> time:float -> (float * float) array pending
  (** The available-charge marginal at [time]:
      [(lower interval end, probability)] per charge level. *)

  val mode_marginal : session -> time:float -> float array pending
  val expected_available_charge : session -> time:float -> float pending

  val joint_probability :
    session -> time:float -> mode:int -> min_charge:float -> float pending
  (** Raises [Invalid_argument] immediately (at registration) if
      [mode] is out of range. *)

  val measure :
    session ->
    times:float array ->
    measure:(Batlife_numerics.Fvec.t -> float) ->
    float array pending
  (** Escape hatch: any user-supplied linear functional of the
      transient distribution, evaluated on [times].  The functional
      reads the flat [Fvec] iterate; under the adaptive kernel,
      entries outside the support window are exactly [0.]. *)

  (** {2 Execution} *)

  val run :
    ?budget:Batlife_numerics.Budget.t ->
    ?ctx:string ->
    session ->
    Transient.stats
  (** Flush all pending registrations through one shared sweep and
      return its stats.  With nothing pending this is a no-op
      returning the last flush's stats (zero iterations if the
      session never swept).  [budget] bounds {e this flush only},
      overriding the session options' budget: long-lived sessions (the
      query service caches them across requests) cannot pin a
      per-request deadline at {!create} time.  [ctx] is a trace
      context (request id): the flush runs under
      [Telemetry.with_context] and [Diag.with_context], so sweep spans
      and diagnostics notes are attributable to the requests that
      triggered them. *)

  val get : 'a pending -> 'a
  (** The query's result; triggers {!run} if its batch has not been
      flushed yet.  Idempotent. *)

  (** {2 Introspection} *)

  val uniformisation_rate : session -> float
  val sweeps : session -> int
  (** Number of flushes performed so far. *)

  val last_stats : session -> Transient.stats option
  val cached_windows : session -> int
  (** Number of distinct time points with a cached Fox–Glynn window. *)

  val approx_bytes : session -> int
  (** Estimated resident bytes of the session and the {!t} it pins:
      generator CSR nonzeros, initial distribution, kernel transpose,
      sweep buffers, cached Fox–Glynn windows and the lazily-built
      marginal aggregation structures.  Grows as the session warms up
      (kernel build, new windows), so byte-budgeted callers should
      re-read it after each use.  An estimate — per-entry boxing and
      hashtable overhead are approximated by constants. *)
end

