(* Versioned on-disk snapshots of interrupted computations.

   Format v3 ("batlife.ckpt/3", adding the adaptive kernel's skipped
   probability mass to CDF payloads): line 1 is one compact JSON
   document
   (every number through Batlife_numerics.Json's exact float/int64
   round-trip, the foundation of the "resumed == uninterrupted"
   bitwise guarantee), line 2 is an integrity footer

     batlife.ckpt.footer crc64=0x<16 hex digits> length=<payload bytes>

   over the payload bytes.  Atomic_io makes the write crash-safe; the
   footer catches what the rename discipline cannot — torn writes that
   landed, bit rot, truncation by an interrupted copy — and version
   skew is a schema mismatch inside an intact payload.  Loading
   validates everything (finite floats only, exactly 4 nonzero RNG
   words), so no checkpoint byte stream can reach a solver as
   undiagnosed garbage or escape as an uncaught exception. *)

open Batlife_numerics
open Batlife_ctmc

let schema = "batlife.ckpt/3"
let footer_tag = "batlife.ckpt.footer"

(* Corruption injection, applied to the raw bytes right after reading:
   what the chaos harness arms to prove that load detects (and the
   resume path quarantines) each corruption class. *)
let fi_truncate = Fi.site "checkpoint.truncate"
let fi_bitflip = Fi.site "checkpoint.bitflip"
let fi_skew = Fi.site "checkpoint.version_skew"

type cdf = {
  cdf_delta : float;
  cdf_accuracy : float;
  cdf_states : int;
  cdf_nnz : int;
  cdf_times : float array;
  cdf_progress : Transient.sweep_progress;
}

type montecarlo = {
  mc_seed : int64;
  mc_target : int;
  mc_done : int;
  mc_censored : int;
  mc_died : float list;
  mc_rng : int64 array;
}

type payload =
  | Cdf of cdf
  | Montecarlo of montecarlo
  | Experiments of { completed : string list }

(* ---------- encoding ---------- *)

let json_of_floats a = Json.Arr (List.map Json.of_float (Array.to_list a))

let json_of_payload = function
  | Cdf c ->
      let p = c.cdf_progress in
      Json.Obj
        [
          ("schema", Json.Str schema);
          ("kind", Json.Str "cdf");
          ("delta", Json.of_float c.cdf_delta);
          ("accuracy", Json.of_float c.cdf_accuracy);
          ("states", Json.of_int c.cdf_states);
          ("nnz", Json.of_int c.cdf_nnz);
          ("times", json_of_floats c.cdf_times);
          ("step", Json.of_int p.Transient.sp_step);
          ("converged", Json.Bool p.Transient.sp_converged);
          ("skipped", Json.of_float p.Transient.sp_skipped);
          ("vector", json_of_floats p.Transient.sp_vector);
          ( "values",
            Json.Arr
              (List.map json_of_floats (Array.to_list p.Transient.sp_values)) );
        ]
  | Montecarlo m ->
      Json.Obj
        [
          ("schema", Json.Str schema);
          ("kind", Json.Str "montecarlo");
          ("seed", Json.of_int64_hex m.mc_seed);
          ("target", Json.of_int m.mc_target);
          ("done", Json.of_int m.mc_done);
          ("censored", Json.of_int m.mc_censored);
          ("died", Json.Arr (List.map Json.of_float m.mc_died));
          ( "rng",
            Json.Arr (List.map Json.of_int64_hex (Array.to_list m.mc_rng)) );
        ]
  | Experiments { completed } ->
      Json.Obj
        [
          ("schema", Json.Str schema);
          ("kind", Json.Str "experiments");
          ("completed", Json.Arr (List.map (fun id -> Json.Str id) completed));
        ]

let with_footer body =
  Printf.sprintf "%s%s crc64=0x%016Lx length=%d\n" body footer_tag
    (Crc64.digest body) (String.length body)

let render payload = with_footer (Json.encode (json_of_payload payload))

let save ~path payload = Atomic_io.write_file ~path (render payload)

(* ---------- integrity layer ---------- *)

let parse_error ~source ?field message =
  Diag.fail (Diag.Parse_error { source; line = 0; field; message })

let read_raw path =
  try
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with Sys_error msg -> parse_error ~source:path msg

(* Split "payload bytes (ending \n)" + "footer line\n". *)
let split_footer text =
  let len = String.length text in
  if len = 0 || text.[len - 1] <> '\n' then None
  else
    match String.rindex_from_opt text (len - 2) '\n' with
    | None -> None
    | Some i ->
        Some (String.sub text 0 (i + 1), String.sub text (i + 1) (len - i - 2))

let replace_first ~sub ~by s =
  let n = String.length sub in
  let limit = String.length s - n in
  let rec find i =
    if i > limit then None
    else if String.sub s i n = sub then Some i
    else find (i + 1)
  in
  match find 0 with
  | None -> s
  | Some i ->
      String.sub s 0 i ^ by ^ String.sub s (i + n) (String.length s - i - n)

(* Version skew presents an intact, correctly-checksummed file whose
   payload claims an older schema — the "downgraded binary reads a
   newer checkpoint" case, distinct from corruption. *)
let skew text =
  match split_footer text with
  | None -> text
  | Some (body, _) ->
      with_footer (replace_first ~sub:schema ~by:"batlife.ckpt/1" body)

let inject_corruption text =
  if not (Fi.enabled ()) then text
  else begin
    let text =
      if Fi.fires fi_truncate then
        String.sub text 0 (String.length text * 3 / 5)
      else text
    in
    let text =
      if Fi.fires fi_bitflip && String.length text > 0 then begin
        let b = Bytes.of_string text in
        let i = String.length text / 3 in
        Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x01));
        Bytes.to_string b
      end
      else text
    in
    if Fi.fires fi_skew then skew text else text
  end

(* Integrity-check the raw bytes and return the verified payload. *)
let verified_body ~source text =
  match split_footer text with
  | None ->
      parse_error ~source
        "checkpoint has no integrity footer: the file is truncated, or it \
         is a pre-v2 checkpoint from an older release"
  | Some (body, footer) ->
      let crc, length =
        try
          Scanf.sscanf footer "batlife.ckpt.footer crc64=0x%Lx length=%d%!"
            (fun crc length -> (crc, length))
        with Scanf.Scan_failure _ | Failure _ | End_of_file ->
          parse_error ~source
            (Printf.sprintf "malformed checkpoint integrity footer %S" footer)
      in
      if String.length body <> length then
        parse_error ~source
          (Printf.sprintf
             "checkpoint truncated: footer records %d payload bytes but %d \
              are present"
             length (String.length body));
      let actual = Crc64.digest body in
      if not (Int64.equal actual crc) then
        parse_error ~source
          (Printf.sprintf
             "checkpoint corrupted: CRC64 mismatch (stored 0x%016Lx, \
              computed 0x%016Lx)"
             crc actual);
      body

(* ---------- decoding ---------- *)

let floats_of_json ~source ~field j =
  Json.to_list ~source ~field j
  |> List.map (Json.to_finite_float ~source ~field)
  |> Array.of_list

let load ~path =
  let source = path in
  let text = inject_corruption (read_raw path) in
  let j = Json.decode ~source (verified_body ~source text) in
  let str field = Json.to_string ~source ~field (Json.member ~source ~field j) in
  let num field =
    Json.to_finite_float ~source ~field (Json.member ~source ~field j)
  in
  let int field = Json.to_int ~source ~field (Json.member ~source ~field j) in
  (match str "schema" with
  | s when s = schema -> ()
  | s ->
      parse_error ~source ~field:"schema"
        (Printf.sprintf "unsupported checkpoint schema %S (want %S)" s schema));
  match str "kind" with
  | "cdf" ->
      let values =
        Json.to_list ~source ~field:"values" (Json.member ~source ~field:"values" j)
        |> List.map (floats_of_json ~source ~field:"values")
        |> Array.of_list
      in
      let step = int "step" in
      Array.iter
        (fun row ->
          if Array.length row <> step + 1 then
            parse_error ~source ~field:"values"
              (Printf.sprintf "row has %d entries but step %d implies %d"
                 (Array.length row) step (step + 1)))
        values;
      Cdf
        {
          cdf_delta = num "delta";
          cdf_accuracy = num "accuracy";
          cdf_states = int "states";
          cdf_nnz = int "nnz";
          cdf_times =
            floats_of_json ~source ~field:"times"
              (Json.member ~source ~field:"times" j);
          cdf_progress =
            {
              Transient.sp_step = step;
              sp_converged =
                (match Json.member ~source ~field:"converged" j with
                | Json.Bool b -> b
                | _ ->
                    parse_error ~source ~field:"converged"
                      "expected a boolean");
              sp_vector =
                floats_of_json ~source ~field:"vector"
                  (Json.member ~source ~field:"vector" j);
              sp_values = values;
              sp_skipped = num "skipped";
            };
        }
  | "montecarlo" ->
      let rng =
        Json.to_list ~source ~field:"rng" (Json.member ~source ~field:"rng" j)
        |> List.map (Json.to_int64_hex ~source ~field:"rng")
        |> Array.of_list
      in
      (* Validated here so Rng.of_state can never turn checkpoint bytes
         into an uncaught Invalid_argument downstream. *)
      if Array.length rng <> 4 then
        parse_error ~source ~field:"rng"
          (Printf.sprintf "rng state has %d words; xoshiro256++ needs \
                           exactly 4" (Array.length rng));
      if Array.for_all (fun w -> Int64.equal w 0L) rng then
        parse_error ~source ~field:"rng"
          "the all-zero rng state is invalid for xoshiro256++";
      Montecarlo
        {
          mc_seed =
            Json.to_int64_hex ~source ~field:"seed"
              (Json.member ~source ~field:"seed" j);
          mc_target = int "target";
          mc_done = int "done";
          mc_censored = int "censored";
          mc_died =
            Json.to_list ~source ~field:"died"
              (Json.member ~source ~field:"died" j)
            |> List.map (Json.to_finite_float ~source ~field:"died");
          mc_rng = rng;
        }
  | "experiments" ->
      Experiments
        {
          completed =
            Json.to_list ~source ~field:"completed"
              (Json.member ~source ~field:"completed" j)
            |> List.map (Json.to_string ~source ~field:"completed");
        }
  | kind ->
      parse_error ~source ~field:"kind"
        (Printf.sprintf "unknown checkpoint kind %S" kind)

(* ---------- resume-path loader: quarantine instead of abort ---------- *)

let load_for_resume ~path =
  match load ~path with
  | payload -> Some payload
  | exception Diag.Error (Diag.Parse_error _ as e) ->
      if not (Sys.file_exists path) then
        (* Nothing to quarantine: a missing/unreadable resume file is a
           caller mistake, not corruption — keep the hard error. *)
        Diag.fail e
      else begin
        let dest = path ^ ".corrupt" in
        (try Sys.rename path dest with Sys_error _ -> ());
        Diag.record ~fallback:true ~origin:"Checkpoint"
          (Printf.sprintf
             "quarantined corrupt checkpoint %s -> %s (%s); restarting from \
              scratch"
             path dest (Diag.error_to_string e));
        None
      end
