(* Versioned on-disk snapshots of interrupted computations.

   One JSON document per file, written atomically (Atomic_io), schema
   tag "batlife.ckpt/1".  Everything numeric goes through
   Batlife_numerics.Json's exact float/int64 round-trip, so a resumed
   computation continues from bit-identical state — the foundation of
   the "resumed == uninterrupted" guarantee. *)

open Batlife_numerics
open Batlife_ctmc

let schema = "batlife.ckpt/1"

type cdf = {
  cdf_delta : float;
  cdf_accuracy : float;
  cdf_states : int;
  cdf_nnz : int;
  cdf_times : float array;
  cdf_progress : Transient.sweep_progress;
}

type montecarlo = {
  mc_seed : int64;
  mc_target : int;
  mc_done : int;
  mc_censored : int;
  mc_died : float list;
  mc_rng : int64 array;
}

type payload =
  | Cdf of cdf
  | Montecarlo of montecarlo
  | Experiments of { completed : string list }

(* ---------- encoding ---------- *)

let json_of_floats a = Json.Arr (List.map Json.of_float (Array.to_list a))

let json_of_payload = function
  | Cdf c ->
      let p = c.cdf_progress in
      Json.Obj
        [
          ("schema", Json.Str schema);
          ("kind", Json.Str "cdf");
          ("delta", Json.of_float c.cdf_delta);
          ("accuracy", Json.of_float c.cdf_accuracy);
          ("states", Json.of_int c.cdf_states);
          ("nnz", Json.of_int c.cdf_nnz);
          ("times", json_of_floats c.cdf_times);
          ("step", Json.of_int p.Transient.sp_step);
          ("converged", Json.Bool p.Transient.sp_converged);
          ("vector", json_of_floats p.Transient.sp_vector);
          ( "values",
            Json.Arr
              (List.map json_of_floats (Array.to_list p.Transient.sp_values)) );
        ]
  | Montecarlo m ->
      Json.Obj
        [
          ("schema", Json.Str schema);
          ("kind", Json.Str "montecarlo");
          ("seed", Json.of_int64_hex m.mc_seed);
          ("target", Json.of_int m.mc_target);
          ("done", Json.of_int m.mc_done);
          ("censored", Json.of_int m.mc_censored);
          ("died", Json.Arr (List.map Json.of_float m.mc_died));
          ( "rng",
            Json.Arr (List.map Json.of_int64_hex (Array.to_list m.mc_rng)) );
        ]
  | Experiments { completed } ->
      Json.Obj
        [
          ("schema", Json.Str schema);
          ("kind", Json.Str "experiments");
          ("completed", Json.Arr (List.map (fun id -> Json.Str id) completed));
        ]

let save ~path payload =
  Atomic_io.write_file ~path (Json.encode (json_of_payload payload))

(* ---------- decoding ---------- *)

let floats_of_json ~source ~field j =
  Json.to_list ~source ~field j
  |> List.map (Json.to_float ~source ~field)
  |> Array.of_list

let load ~path =
  let source = path in
  let j = Json.decode_file path in
  let str field = Json.to_string ~source ~field (Json.member ~source ~field j) in
  let num field = Json.to_float ~source ~field (Json.member ~source ~field j) in
  let int field = Json.to_int ~source ~field (Json.member ~source ~field j) in
  (match str "schema" with
  | s when s = schema -> ()
  | s ->
      Diag.fail
        (Diag.Parse_error
           {
             source;
             line = 0;
             field = Some "schema";
             message =
               Printf.sprintf "unsupported checkpoint schema %S (want %S)" s
                 schema;
           }));
  match str "kind" with
  | "cdf" ->
      let values =
        Json.to_list ~source ~field:"values" (Json.member ~source ~field:"values" j)
        |> List.map (floats_of_json ~source ~field:"values")
        |> Array.of_list
      in
      let step = int "step" in
      Array.iter
        (fun row ->
          if Array.length row <> step + 1 then
            Diag.fail
              (Diag.Parse_error
                 {
                   source;
                   line = 0;
                   field = Some "values";
                   message =
                     Printf.sprintf
                       "row has %d entries but step %d implies %d"
                       (Array.length row) step (step + 1);
                 }))
        values;
      Cdf
        {
          cdf_delta = num "delta";
          cdf_accuracy = num "accuracy";
          cdf_states = int "states";
          cdf_nnz = int "nnz";
          cdf_times =
            floats_of_json ~source ~field:"times"
              (Json.member ~source ~field:"times" j);
          cdf_progress =
            {
              Transient.sp_step = step;
              sp_converged =
                (match Json.member ~source ~field:"converged" j with
                | Json.Bool b -> b
                | _ ->
                    Diag.fail
                      (Diag.Parse_error
                         {
                           source;
                           line = 0;
                           field = Some "converged";
                           message = "expected a boolean";
                         }));
              sp_vector =
                floats_of_json ~source ~field:"vector"
                  (Json.member ~source ~field:"vector" j);
              sp_values = values;
            };
        }
  | "montecarlo" ->
      Montecarlo
        {
          mc_seed =
            Json.to_int64_hex ~source ~field:"seed"
              (Json.member ~source ~field:"seed" j);
          mc_target = int "target";
          mc_done = int "done";
          mc_censored = int "censored";
          mc_died =
            Json.to_list ~source ~field:"died"
              (Json.member ~source ~field:"died" j)
            |> List.map (Json.to_float ~source ~field:"died");
          mc_rng =
            Json.to_list ~source ~field:"rng"
              (Json.member ~source ~field:"rng" j)
            |> List.map (Json.to_int64_hex ~source ~field:"rng")
            |> Array.of_list;
        }
  | "experiments" ->
      Experiments
        {
          completed =
            Json.to_list ~source ~field:"completed"
              (Json.member ~source ~field:"completed" j)
            |> List.map (Json.to_string ~source ~field:"completed");
        }
  | kind ->
      Diag.fail
        (Diag.Parse_error
           {
             source;
             line = 0;
             field = Some "kind";
             message = Printf.sprintf "unknown checkpoint kind %S" kind;
           })
