open Batlife_numerics
open Batlife_ctmc
open Batlife_battery
open Batlife_workload

let log_src =
  Logs.Src.create "batlife.discretized" ~doc:"Expanded-generator construction"

module Log = (val Logs.src_log log_src : Logs.LOG)

type t = {
  model : Kibamrm.t;
  grid : Grid.t;
  generator : Generator.t;
  alpha : float array;
}

let c_builds = Telemetry.counter "discretized.builds"
let g_states = Telemetry.gauge "discretized.states"
let g_nnz = Telemetry.gauge "discretized.nnz"

let build ?initial_fill ?(absorb_empty = true) ~delta model =
  Telemetry.incr c_builds;
  Telemetry.with_span "discretized.build" @@ fun () ->
  let workload = model.Kibamrm.workload in
  let battery = model.Kibamrm.battery in
  let u1, u2 = Kibamrm.upper_bounds model in
  let n = Model.n_states workload in
  let grid = Grid.create ~delta ~u1 ~u2 ~n_workload:n in
  let levels1 = grid.Grid.levels1 and levels2 = grid.Grid.levels2 in
  let total = Grid.total_states grid in
  let wq = Generator.matrix workload.Model.generator in
  (* Capacity estimate: every non-absorbing state carries the workload
     out-transitions plus at most one consumption, one transfer and the
     diagonal. *)
  let offdiag = Sparse.nnz wq - n in
  let capacity_estimate = total * (3 + ((offdiag + (n - 1)) / n)) in
  let b =
    Sparse.Builder.create ~initial_capacity:capacity_estimate ~rows:total
      ~cols:total ()
  in
  let c = battery.Kibam.c and k = battery.Kibam.k in
  let degenerate = Kibamrm.is_degenerate model in
  let lowest_live = if absorb_empty then 1 else 0 in
  for j1 = lowest_live to levels1 - 1 do
    (* When [absorb_empty], j1 = 0 has no outgoing transitions. *)
    for j2 = 0 to levels2 - 1 do
      let base = Grid.index grid ~state:0 ~j1 ~j2 in
      (* Workload transitions stay within the (j1, j2) block. *)
      Sparse.iter wq (fun i i' rate ->
          if i <> i' && rate > 0. then
            Sparse.Builder.add b (base + i) (base + i') rate);
      for i = 0 to n - 1 do
        let src = base + i in
        (* Consumption: one level down in the available charge (no
           consumption possible at the empty level). *)
        let current = Model.current workload i in
        if current > 0. && j1 > 0 then
          Sparse.Builder.add b src
            (Grid.index grid ~state:i ~j1:(j1 - 1) ~j2)
            (current /. delta);
        (* Bound-to-available transfer (Section 5.2): rate
           k (h2 - h1) / delta with h at the lower interval ends. *)
        if (not degenerate) && j2 > 0 && j1 < levels1 - 1 then begin
          let rate =
            k *. ((float_of_int j2 /. (1. -. c)) -. (float_of_int j1 /. c))
          in
          if rate > 0. then
            Sparse.Builder.add b src
              (Grid.index grid ~state:i ~j1:(j1 + 1) ~j2:(j2 - 1))
              rate
        end
      done
    done
  done;
  let generator = Generator.of_builder b in
  Log.debug (fun m ->
      m "built Q*: delta=%g, %d x %d levels, %d states, %d nonzeros" delta
        levels1 levels2 total (Generator.nnz generator));
  Telemetry.set_gauge g_states (float_of_int total);
  Telemetry.set_gauge g_nnz (float_of_int (Generator.nnz generator));
  (* Initial distribution: the workload's alpha placed at the levels
     containing the initial fill (a1, a2). *)
  let a1, a2 =
    match initial_fill with
    | Some (a1, a2) -> (a1, a2)
    | None ->
        let s = Kibam.initial battery in
        (s.Kibam.available, s.Kibam.bound)
  in
  let j1_0 = Grid.level_of1 grid a1 and j2_0 = Grid.level_of2 grid a2 in
  let alpha = Vector.create total in
  Array.iteri
    (fun i p ->
      if p > 0. then alpha.(Grid.index grid ~state:i ~j1:j1_0 ~j2:j2_0) <- p)
    workload.Model.initial;
  { model; grid; generator; alpha }

let n_states t = Grid.total_states t.grid

let nnz t = Generator.nnz t.generator

let absorbed_mass grid (v : Fvec.t) =
  let block = Grid.absorbing_block_size grid in
  let acc = ref 0. in
  for idx = 0 to block - 1 do
    acc := !acc +. Fvec.unsafe_get v idx
  done;
  !acc

(* Lower interval end of an available-charge level: the representative
   the expanded generator uses; the empty level contributes charge 0. *)
let level_charge grid j1 =
  if j1 = 0 then 0. else Grid.level_value grid (j1 - 1)

let empty_probability ?opts ?progress t ~times =
  Transient.measure_sweep ?opts ?progress t.generator ~alpha:t.alpha ~times
    ~measure:(absorbed_mass t.grid)

let state_distribution ?opts t ~time =
  Transient.solve ?opts t.generator ~alpha:t.alpha ~t:time

let check_mode grid mode =
  if mode < 0 || mode >= grid.Grid.n_workload then
    invalid_arg "Discretized.joint_probability: mode out of range"

let default_lifetime_tol = 1e-10

let expected_lifetime ?(opts = Solver_opts.default) t =
  Solver_opts.request_telemetry opts;
  Telemetry.with_span "discretized.expected_lifetime" @@ fun () ->
  let tol = Solver_opts.linear_tol_or ~default:default_lifetime_tol opts in
  let g = t.generator in
  let block = Grid.absorbing_block_size t.grid in
  for i = 0 to block - 1 do
    if not (Generator.is_absorbing g i) then
      invalid_arg
        "Discretized.expected_lifetime: needs the absorbing variant \
         (absorb_empty = true)"
  done;
  let n = Grid.total_states t.grid in
  let b =
    Array.init n (fun i -> if i < block then 0. else -1.)
  in
  let robust =
    Iterative.solve_robust ~tol (Generator.matrix g) ~b
      ~skip:(fun i -> i < block)
  in
  let result = robust.Iterative.result in
  (match robust.Iterative.path with
  | Iterative.Primary -> ()
  | Iterative.Fallback ->
      Log.warn (fun m ->
          m "expected lifetime: gauss-seidel stalled, %s fallback converged"
            robust.Iterative.solver));
  Log.debug (fun m ->
      m "expected lifetime: %s converged in %d sweeps (res %g)"
        robust.Iterative.solver result.Iterative.iterations
        result.Iterative.residual);
  Vector.dot t.alpha result.Iterative.solution

(* ------------------------------------------------------------------ *)
(* The batched evaluation engine.                                      *)

module Session = struct
  (* Cache-effectiveness counters: hits/misses of the Fox–Glynn window
     cache and the number of kernel (re)builds.  "Second flush over the
     same grid" should show pure hits and zero extra kernel builds —
     asserted by test_engine. *)
  let c_window_hits = Telemetry.counter "session.window_hits"
  let c_window_misses = Telemetry.counter "session.window_misses"
  let c_kernel_builds = Telemetry.counter "session.kernel_builds"
  let c_flushes = Telemetry.counter "session.flushes"

  (* One batch registration: a block of linear functionals to be
     evaluated on this query's own time grid.  [out] is the
     funcs-by-times result block, filled by the shared sweep. *)
  type reg = {
    reg_times : float array;
    funcs : (Fvec.t -> float) array;
    mutable out : float array array;
    mutable filled : bool;
  }

  type session = {
    d : t;
    opts : Solver_opts.t;  (** with the uniformisation rate pinned *)
    rate : float;
    fox_glynn : (float, Poisson.t) Hashtbl.t;
        (** Fox–Glynn windows keyed by [t]; the key pair [(q, t)] of
            the cache degenerates to [t] because [rate] is pinned for
            the session's lifetime. *)
    mutable buffers : (Fvec.t * Fvec.t) option;
    mutable kernel : Transient.kernel option;
        (** parallel stepping kernel (transposed uniformised matrix +
            row partition), built on the first sweep and reused — the
            per-sweep transpose cost is paid once per session *)
    mutable queue : reg list;  (** pending registrations, newest first *)
    mutable last_stats : Transient.stats option;
    mutable swept : int;
    (* Lazily-built aggregation structures shared by all marginal
       queries of the session. *)
    mutable charge_buckets : int array array option;
    mutable mode_buckets : int array array option;
    mutable charge_coefficients : float array option;
  }

  type 'a pending = {
    s : session;
    reg : reg;
    finish : float array array -> 'a;
  }

  let create ?(opts = Solver_opts.default) d =
    Solver_opts.request_telemetry opts;
    let rate = Transient.resolve_rate ~opts d.generator in
    (* Pin the rate so cached windows and future sweeps can never
       disagree on q. *)
    let opts = { opts with Solver_opts.unif_rate = Some rate } in
    {
      d;
      opts;
      rate;
      fox_glynn = Hashtbl.create 64;
      buffers = None;
      kernel = None;
      queue = [];
      last_stats = None;
      swept = 0;
      charge_buckets = None;
      mode_buckets = None;
      charge_coefficients = None;
    }

  let uniformisation_rate s = s.rate
  let sweeps s = s.swept
  let last_stats s = s.last_stats

  (* Resident-byte estimate of everything the session (and the
     Discretized.t it pins) keeps alive: the generator CSR, the initial
     distribution, the kernel transpose, the sweep buffers, the cached
     Fox–Glynn windows and the lazily-built aggregation structures.
     An estimate, not an accounting: boxing and hashtable overhead are
     approximated with small per-entry constants.  Monotone in what
     has actually been built, so a fresh session is cheap and the
     byte-budgeted cache re-reads it after each use. *)
  let approx_bytes s =
    let n = n_states s.d in
    let sparse_bytes (m : Sparse.t) =
      (Sparse.nnz m * (8 + 4)) + (Array.length m.Sparse.row_ptr * 8)
    in
    let generator = sparse_bytes (Generator.matrix s.d.generator) in
    let alpha = Array.length s.d.alpha * 8 in
    let kernel =
      match s.kernel with None -> 0 | Some k -> Transient.kernel_bytes k
    in
    let buffers = match s.buffers with None -> 0 | Some _ -> 2 * n * 8 in
    let windows =
      Hashtbl.fold
        (fun _ (w : Poisson.t) acc ->
          acc + (Array.length w.Poisson.weights * 8) + 64)
        s.fox_glynn 0
    in
    let buckets = function
      | None -> 0
      | Some b -> Array.fold_left (fun acc a -> acc + (Array.length a * 8)) 0 b
    in
    let coefficients =
      match s.charge_coefficients with None -> 0 | Some c -> Array.length c * 8
    in
    generator + alpha + kernel + buffers + windows
    + buckets s.charge_buckets + buckets s.mode_buckets + coefficients

  let window s t =
    match Hashtbl.find_opt s.fox_glynn t with
    | Some w ->
        Telemetry.incr c_window_hits;
        w
    | None ->
        Telemetry.incr c_window_misses;
        let w =
          Poisson.weights ~accuracy:s.opts.Solver_opts.accuracy (s.rate *. t)
        in
        Hashtbl.add s.fox_glynn t w;
        w

  let cached_windows s = Hashtbl.length s.fox_glynn

  let scratch s =
    match s.buffers with
    | Some b -> b
    | None ->
        let n = n_states s.d in
        let b = (Fvec.create n, Fvec.create n) in
        s.buffers <- Some b;
        b

  let kernel s =
    match s.kernel with
    | Some k -> k
    | None ->
        Telemetry.incr c_kernel_builds;
        let k = Transient.make_kernel ~opts:s.opts s.d.generator in
        s.kernel <- Some k;
        k

  let register s ~times ~funcs finish =
    let reg = { reg_times = times; funcs; out = [||]; filled = false } in
    s.queue <- reg :: s.queue;
    { s; reg; finish }

  (* Flush every pending registration through ONE multi-measure sweep
     over the union of their time grids.  [budget] bounds just this
     flush: sessions are long-lived (the query service caches them
     across requests), so per-request deadlines cannot be pinned into
     the session's options at create time. *)
  let flush ?budget s =
    let regs = List.rev s.queue in
    s.queue <- [];
    match regs with
    | [] -> (
        match s.last_stats with
        | Some stats -> stats
        | None ->
            {
              Transient.iterations = 0;
              converged_at = None;
              uniformisation_rate = s.rate;
              mass_residual = 0.;
              fg_defect = 0.;
              touched_nnz = 0;
              active_rows = 0;
              support_lo = 0;
              support_hi = 0;
              skipped_mass = 0.;
            })
    | regs ->
        Telemetry.incr c_flushes;
        Telemetry.with_span "session.flush" @@ fun () ->
        let grid =
          List.concat_map (fun r -> Array.to_list r.reg_times) regs
          |> List.sort_uniq Float.compare
          |> Array.of_list
        in
        let time_index = Hashtbl.create (Array.length grid) in
        Array.iteri (fun i t -> Hashtbl.replace time_index t i) grid;
        let measures = Array.concat (List.map (fun r -> r.funcs) regs) in
        let windows = Array.map (window s) grid in
        let buffers = scratch s in
        let opts =
          match budget with
          | None -> s.opts
          | Some b -> { s.opts with Solver_opts.budget = Some b }
        in
        let results, stats =
          Transient.multi_measure_sweep ~opts ~windows ~buffers
            ~kernel:(kernel s) s.d.generator ~alpha:s.d.alpha ~times:grid
            ~measures
        in
        let offset = ref 0 in
        List.iter
          (fun r ->
            r.out <-
              Array.init (Array.length r.funcs) (fun k ->
                  Array.map
                    (fun t -> results.(!offset + k).(Hashtbl.find time_index t))
                    r.reg_times);
            r.filled <- true;
            offset := !offset + Array.length r.funcs)
          regs;
        s.last_stats <- Some stats;
        s.swept <- s.swept + 1;
        Log.debug (fun m ->
            m "session sweep %d: %d registrations, %d functionals, %d times, \
               %d iterations"
              s.swept (List.length regs) (Array.length measures)
              (Array.length grid) stats.Transient.iterations);
        stats

  (* [ctx]: trace context (request id) for this flush.  Spans and Diag
     notes recorded during the sweep — kernel builds, escalations,
     budget trips — are stamped with it, so the service layer can
     attribute shared-sweep work to the requests that triggered it. *)
  let run ?budget ?ctx s =
    match ctx with
    | Some rid ->
        Telemetry.with_context rid @@ fun () ->
        Diag.with_context rid @@ fun () -> flush ?budget s
    | None -> flush ?budget s

  let get p =
    if not p.reg.filled then ignore (run p.s : Transient.stats);
    p.finish p.reg.out

  (* --- functional builders ---------------------------------------- *)

  (* Under the adaptive kernel, indices outside the support window
     read exactly 0., so bucket sums need no window awareness. *)
  let sum_over indices (v : Fvec.t) =
    let acc = ref 0. in
    Array.iter (fun i -> acc := !acc +. Fvec.unsafe_get v i) indices;
    !acc

  (* Partition the flat state space by available-charge level: bucket
     j1 holds every (state, j1, j2) index.  The buckets cover each
     index exactly once, so evaluating all of them costs one pass over
     the distribution per step — the same order as the vecmat product
     itself. *)
  let charge_buckets s =
    match s.charge_buckets with
    | Some b -> b
    | None ->
        let grid = s.d.grid in
        let per = grid.Grid.levels2 * grid.Grid.n_workload in
        let b =
          Array.init grid.Grid.levels1 (fun j1 ->
              let idxs = Array.make per 0 in
              let k = ref 0 in
              for j2 = 0 to grid.Grid.levels2 - 1 do
                for i = 0 to grid.Grid.n_workload - 1 do
                  idxs.(!k) <- Grid.index grid ~state:i ~j1 ~j2;
                  incr k
                done
              done;
              idxs)
        in
        s.charge_buckets <- Some b;
        b

  let mode_buckets s =
    match s.mode_buckets with
    | Some b -> b
    | None ->
        let grid = s.d.grid in
        let per = grid.Grid.levels1 * grid.Grid.levels2 in
        let b =
          Array.init grid.Grid.n_workload (fun state ->
              let idxs = Array.make per 0 in
              let k = ref 0 in
              for j1 = 0 to grid.Grid.levels1 - 1 do
                for j2 = 0 to grid.Grid.levels2 - 1 do
                  idxs.(!k) <- Grid.index grid ~state ~j1 ~j2;
                  incr k
                done
              done;
              idxs)
        in
        s.mode_buckets <- Some b;
        b

  let charge_coefficients s =
    match s.charge_coefficients with
    | Some c -> c
    | None ->
        let grid = s.d.grid in
        let c = Vector.create (n_states s.d) in
        Array.iteri
          (fun j1 idxs ->
            let charge = level_charge grid j1 in
            Array.iter (fun idx -> c.(idx) <- charge) idxs)
          (charge_buckets s);
        s.charge_coefficients <- Some c;
        c

  (* --- queries ------------------------------------------------------ *)

  let measure s ~times ~measure =
    register s ~times ~funcs:[| measure |] (fun out -> out.(0))

  let empty_probability s ~times =
    measure s ~times ~measure:(absorbed_mass s.d.grid)

  let available_charge_marginal s ~time =
    let grid = s.d.grid in
    let funcs = Array.map sum_over (charge_buckets s) in
    register s ~times:[| time |] ~funcs (fun out ->
        Array.mapi (fun j1 per_time -> (level_charge grid j1, per_time.(0))) out)

  let mode_marginal s ~time =
    let funcs = Array.map sum_over (mode_buckets s) in
    register s ~times:[| time |] ~funcs (fun out ->
        Array.map (fun per_time -> per_time.(0)) out)

  let expected_available_charge s ~time =
    let coefficients = charge_coefficients s in
    let func (v : Fvec.t) =
      let acc = ref 0. in
      for i = 0 to Fvec.length v - 1 do
        acc := !acc +. (coefficients.(i) *. Fvec.unsafe_get v i)
      done;
      !acc
    in
    register s ~times:[| time |] ~funcs:[| func |] (fun out -> out.(0).(0))

  let joint_probability s ~time ~mode ~min_charge =
    let grid = s.d.grid in
    check_mode grid mode;
    let indices = ref [] in
    for j1 = grid.Grid.levels1 - 1 downto 1 do
      if Grid.level_value grid (j1 - 1) >= min_charge then
        for j2 = grid.Grid.levels2 - 1 downto 0 do
          indices := Grid.index grid ~state:mode ~j1 ~j2 :: !indices
        done
    done;
    let indices = Array.of_list !indices in
    register s ~times:[| time |] ~funcs:[| sum_over indices |] (fun out ->
        out.(0).(0))
end

