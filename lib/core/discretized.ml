open Batlife_numerics
open Batlife_ctmc
open Batlife_battery
open Batlife_workload

let log_src =
  Logs.Src.create "batlife.discretized" ~doc:"Expanded-generator construction"

module Log = (val Logs.src_log log_src : Logs.LOG)

type t = {
  model : Kibamrm.t;
  grid : Grid.t;
  generator : Generator.t;
  alpha : float array;
}

let build ?initial_fill ?(absorb_empty = true) ~delta model =
  let workload = model.Kibamrm.workload in
  let battery = model.Kibamrm.battery in
  let u1, u2 = Kibamrm.upper_bounds model in
  let n = Model.n_states workload in
  let grid = Grid.create ~delta ~u1 ~u2 ~n_workload:n in
  let levels1 = grid.Grid.levels1 and levels2 = grid.Grid.levels2 in
  let total = Grid.total_states grid in
  let wq = Generator.matrix workload.Model.generator in
  (* Capacity estimate: every non-absorbing state carries the workload
     out-transitions plus at most one consumption, one transfer and the
     diagonal. *)
  let offdiag = Sparse.nnz wq - n in
  let capacity_estimate = total * (3 + ((offdiag + (n - 1)) / n)) in
  let b =
    Sparse.Builder.create ~initial_capacity:capacity_estimate ~rows:total
      ~cols:total ()
  in
  let c = battery.Kibam.c and k = battery.Kibam.k in
  let degenerate = Kibamrm.is_degenerate model in
  let lowest_live = if absorb_empty then 1 else 0 in
  for j1 = lowest_live to levels1 - 1 do
    (* When [absorb_empty], j1 = 0 has no outgoing transitions. *)
    for j2 = 0 to levels2 - 1 do
      let base = Grid.index grid ~state:0 ~j1 ~j2 in
      (* Workload transitions stay within the (j1, j2) block. *)
      Sparse.iter wq (fun i i' rate ->
          if i <> i' && rate > 0. then
            Sparse.Builder.add b (base + i) (base + i') rate);
      for i = 0 to n - 1 do
        let src = base + i in
        (* Consumption: one level down in the available charge (no
           consumption possible at the empty level). *)
        let current = Model.current workload i in
        if current > 0. && j1 > 0 then
          Sparse.Builder.add b src
            (Grid.index grid ~state:i ~j1:(j1 - 1) ~j2)
            (current /. delta);
        (* Bound-to-available transfer (Section 5.2): rate
           k (h2 - h1) / delta with h at the lower interval ends. *)
        if (not degenerate) && j2 > 0 && j1 < levels1 - 1 then begin
          let rate =
            k *. ((float_of_int j2 /. (1. -. c)) -. (float_of_int j1 /. c))
          in
          if rate > 0. then
            Sparse.Builder.add b src
              (Grid.index grid ~state:i ~j1:(j1 + 1) ~j2:(j2 - 1))
              rate
        end
      done
    done
  done;
  let generator = Generator.of_builder b in
  Log.debug (fun m ->
      m "built Q*: delta=%g, %d x %d levels, %d states, %d nonzeros" delta
        levels1 levels2 total (Generator.nnz generator));
  (* Initial distribution: the workload's alpha placed at the levels
     containing the initial fill (a1, a2). *)
  let a1, a2 =
    match initial_fill with
    | Some (a1, a2) -> (a1, a2)
    | None ->
        let s = Kibam.initial battery in
        (s.Kibam.available, s.Kibam.bound)
  in
  let j1_0 = Grid.level_of1 grid a1 and j2_0 = Grid.level_of2 grid a2 in
  let alpha = Vector.create total in
  Array.iteri
    (fun i p ->
      if p > 0. then alpha.(Grid.index grid ~state:i ~j1:j1_0 ~j2:j2_0) <- p)
    workload.Model.initial;
  { model; grid; generator; alpha }

let n_states t = Grid.total_states t.grid

let nnz t = Generator.nnz t.generator

let absorbed_mass grid v =
  let block = Grid.absorbing_block_size grid in
  let acc = ref 0. in
  for idx = 0 to block - 1 do
    acc := !acc +. v.(idx)
  done;
  !acc

let empty_probability ?accuracy t ~times =
  Transient.measure_sweep ?accuracy t.generator ~alpha:t.alpha ~times
    ~measure:(absorbed_mass t.grid)

let state_distribution ?accuracy t ~time =
  Transient.solve ?accuracy t.generator ~alpha:t.alpha ~t:time

let available_charge_marginal ?accuracy t ~time =
  let pi = state_distribution ?accuracy t ~time in
  let grid = t.grid in
  let levels1 = grid.Grid.levels1 in
  Array.init levels1 (fun j1 ->
      let acc = ref 0. in
      for j2 = 0 to grid.Grid.levels2 - 1 do
        for i = 0 to grid.Grid.n_workload - 1 do
          acc := !acc +. pi.(Grid.index grid ~state:i ~j1 ~j2)
        done
      done;
      let charge = if j1 = 0 then 0. else Grid.level_value grid (j1 - 1) in
      (charge, !acc))

let mode_marginal ?accuracy t ~time =
  let pi = state_distribution ?accuracy t ~time in
  let grid = t.grid in
  let result = Array.make grid.Grid.n_workload 0. in
  for j1 = 0 to grid.Grid.levels1 - 1 do
    for j2 = 0 to grid.Grid.levels2 - 1 do
      for i = 0 to grid.Grid.n_workload - 1 do
        result.(i) <- result.(i) +. pi.(Grid.index grid ~state:i ~j1 ~j2)
      done
    done
  done;
  result

let expected_available_charge ?accuracy t ~time =
  let marginal = available_charge_marginal ?accuracy t ~time in
  Array.fold_left (fun acc (charge, p) -> acc +. (charge *. p)) 0. marginal

let expected_lifetime ?(tol = 1e-10) t =
  let g = t.generator in
  let block = Grid.absorbing_block_size t.grid in
  for i = 0 to block - 1 do
    if not (Generator.is_absorbing g i) then
      invalid_arg
        "Discretized.expected_lifetime: needs the absorbing variant \
         (absorb_empty = true)"
  done;
  let n = Grid.total_states t.grid in
  let b =
    Array.init n (fun i -> if i < block then 0. else -1.)
  in
  let robust =
    Iterative.solve_robust ~tol (Generator.matrix g) ~b
      ~skip:(fun i -> i < block)
  in
  let result = robust.Iterative.result in
  (match robust.Iterative.path with
  | Iterative.Primary -> ()
  | Iterative.Fallback ->
      Log.warn (fun m ->
          m "expected lifetime: gauss-seidel stalled, %s fallback converged"
            robust.Iterative.solver));
  Log.debug (fun m ->
      m "expected lifetime: %s converged in %d sweeps (res %g)"
        robust.Iterative.solver result.Iterative.iterations
        result.Iterative.residual);
  Vector.dot t.alpha result.Iterative.solution

let joint_probability ?accuracy t ~time ~mode ~min_charge =
  let grid = t.grid in
  if mode < 0 || mode >= grid.Grid.n_workload then
    invalid_arg "Discretized.joint_probability: mode out of range";
  let pi = state_distribution ?accuracy t ~time in
  let acc = ref 0. in
  for j1 = 1 to grid.Grid.levels1 - 1 do
    (* Level j1 covers (j1*delta, (j1+1)*delta]; its lower end is
       j1*delta. *)
    if Grid.level_value grid (j1 - 1) >= min_charge then
      for j2 = 0 to grid.Grid.levels2 - 1 do
        acc := !acc +. pi.(Grid.index grid ~state:mode ~j1 ~j2)
      done
  done;
  !acc
