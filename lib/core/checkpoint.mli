(** Versioned on-disk snapshots of interrupted computations
    (schema ["batlife.ckpt/3"]).

    A checkpoint file is two lines: one JSON document, then an
    integrity footer

    {v batlife.ckpt.footer crc64=0x<16 hex digits> length=<bytes> v}

    recording the CRC-64 (XZ polynomial) and byte length of the
    payload line.  The payload is written atomically
    ({!Batlife_numerics.Atomic_io}) so a kill mid-write can never
    leave a half-renamed file, and carries every number through
    {!Batlife_numerics.Json}'s exact round-trip ([%.17g] floats,
    hex-string 64-bit words); the footer catches the corruption the
    rename discipline cannot — torn writes that landed, bit rot,
    truncation — before any byte reaches a solver.  Three kinds exist:

    - {b cdf}: an interrupted uniformisation sweep of
      [Lifetime.cdf_resumable] — the model fingerprint
      (delta/accuracy/states/nnz/times) plus the full
      {!Batlife_ctmc.Transient.sweep_progress};
    - {b montecarlo}: an interrupted replication batch — counts,
      observed lifetimes (newest first, preserving accumulation
      order), and the master xoshiro256++ RNG state;
    - {b experiments}: the runner's per-figure completion map.

    {!load} raises structured [Diag.Error (Parse_error _)] on any
    malformed, truncated, corrupted or wrong-schema file — a bad
    checkpoint is a diagnosable failure, not undefined behaviour —
    and additionally validates content (finite floats only, exactly 4
    not-all-zero RNG words).  {!load_for_resume} is the forgiving
    variant for [--resume] paths: it quarantines a corrupt file and
    reports a cold start instead of aborting the run.

    Fault injection: the registered sites ["checkpoint.truncate"],
    ["checkpoint.bitflip"] and ["checkpoint.version_skew"]
    ({!Batlife_numerics.Fi}) corrupt the raw bytes between the read
    and the integrity check, one corruption class each, so the
    detection and quarantine paths are exercisable deterministically. *)

open Batlife_ctmc

type cdf = {
  cdf_delta : float;
  cdf_accuracy : float;
  cdf_states : int;
  cdf_nnz : int;
  cdf_times : float array;
  cdf_progress : Transient.sweep_progress;
}
(** The fingerprint fields ([cdf_delta] … [cdf_times]) identify the
    exact sweep the snapshot belongs to; resuming validates them
    against the freshly built model and rejects a mismatch with
    [Invalid_model] rather than silently mixing incompatible state. *)

type montecarlo = {
  mc_seed : int64;  (** the seed the batch was started with *)
  mc_target : int;  (** total replications requested *)
  mc_done : int;  (** replications completed *)
  mc_censored : int;
  mc_died : float list;  (** observed lifetimes, newest first *)
  mc_rng : int64 array;  (** master generator state, 4 words *)
}

type payload =
  | Cdf of cdf
  | Montecarlo of montecarlo
  | Experiments of { completed : string list }
      (** experiment ids already finished and written *)

val save : path:string -> payload -> unit
(** Atomically (re)write the checkpoint file (payload + footer). *)

val load : path:string -> payload
(** Parse and integrity-check a checkpoint; raises
    [Diag.Error (Parse_error _)] with file/field context on anything
    malformed, truncated, CRC-mismatched, wrong-schema, non-finite, or
    carrying an invalid RNG state. *)

val load_for_resume : path:string -> payload option
(** Like {!load}, but a file that exists yet fails to parse or verify
    is {b quarantined}: renamed to [path ^ ".corrupt"], reported as a
    [Diag] fallback event, and [None] is returned so the caller
    restarts from scratch.  A {e missing} file still raises the
    [Parse_error] — pointing [--resume] at nothing is a caller
    mistake, not corruption. *)
