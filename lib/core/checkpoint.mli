(** Versioned on-disk snapshots of interrupted computations
    (schema ["batlife.ckpt/1"]).

    A checkpoint is one JSON document, written atomically
    ({!Batlife_numerics.Atomic_io}) so a kill mid-write can never
    leave a truncated file, and carrying every number through
    {!Batlife_numerics.Json}'s exact round-trip ([%.17g] floats,
    hex-string 64-bit words).  Three kinds exist:

    - {b cdf}: an interrupted uniformisation sweep of
      [Lifetime.cdf_resumable] — the model fingerprint
      (delta/accuracy/states/nnz/times) plus the full
      {!Batlife_ctmc.Transient.sweep_progress};
    - {b montecarlo}: an interrupted replication batch — counts,
      observed lifetimes (newest first, preserving accumulation
      order), and the master xoshiro256++ RNG state;
    - {b experiments}: the runner's per-figure completion map.

    {!load} raises structured [Diag.Error (Parse_error _)] on any
    malformed, truncated, or wrong-schema file — a corrupted
    checkpoint is a diagnosable failure, not undefined behaviour. *)

open Batlife_ctmc

type cdf = {
  cdf_delta : float;
  cdf_accuracy : float;
  cdf_states : int;
  cdf_nnz : int;
  cdf_times : float array;
  cdf_progress : Transient.sweep_progress;
}
(** The fingerprint fields ([cdf_delta] … [cdf_times]) identify the
    exact sweep the snapshot belongs to; resuming validates them
    against the freshly built model and rejects a mismatch with
    [Invalid_model] rather than silently mixing incompatible state. *)

type montecarlo = {
  mc_seed : int64;  (** the seed the batch was started with *)
  mc_target : int;  (** total replications requested *)
  mc_done : int;  (** replications completed *)
  mc_censored : int;
  mc_died : float list;  (** observed lifetimes, newest first *)
  mc_rng : int64 array;  (** master generator state, 4 words *)
}

type payload =
  | Cdf of cdf
  | Montecarlo of montecarlo
  | Experiments of { completed : string list }
      (** experiment ids already finished and written *)

val save : path:string -> payload -> unit
(** Atomically (re)write the checkpoint file. *)

val load : path:string -> payload
(** Parse a checkpoint; raises [Diag.Error (Parse_error _)] with
    file/field context on anything malformed. *)
