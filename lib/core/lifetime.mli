(** High-level battery-lifetime queries on the KiBaMRM.

    Wraps {!Discretized} with the bookkeeping a user actually wants:
    build, sweep, and summarise in one call; extract means, quantiles
    and convergence diagnostics.  The sweeps run through the batched
    engine ({!Discretized.Session}); {!cdf_session} lets a caller
    share one session — and hence one sweep — between the CDF and any
    other per-time queries. *)

open Batlife_ctmc

type curve = {
  times : float array;
  probabilities : float array;  (** [Pr{L <= t}] per time point *)
  delta : float;
  states : int;  (** size of the expanded CTMC *)
  nnz : int;  (** nonzeros of [Q*] *)
  iterations : int;  (** uniformisation steps of the sweep *)
  uniformisation_rate : float;
}

val sanitize : float array -> float array -> unit
(** In-place CDF guard and cleanup used by {!cdf}: values within 1e-6
    of a valid monotone CDF are clamped to [0, 1] and monotonised
    (floating noise of the sweep); a NaN, an out-of-range value or a
    genuine decrease beyond that tolerance raises
    [Diag.Error (Numerical_breakdown _)] instead of being silently
    smoothed away.  Exposed for fault-injection tests. *)

val cdf :
  ?opts:Solver_opts.t ->
  ?initial_fill:float * float ->
  delta:float ->
  times:float array ->
  Kibamrm.t ->
  curve
(** Lifetime distribution [Pr{L <= t}] on the given time grid.

    {b Escalation.}  A sweep whose result fails self-verification
    (mass conservation, Fox–Glynn truncation accounting, CDF shape —
    any [Numerical_breakdown]) is discarded and re-derived on an
    escalation ladder: first the sequential oracle kernel at the same
    tolerances (bitwise-identical to the parallel kernel on clean
    inputs, so a recovery here changes no output bit), then the oracle
    with the accuracy tightened 100x.  Each rung is reported as a
    [Diag] fallback event; if every rung fails, the {e first} error is
    re-raised. *)

val cdf_resumable :
  ?opts:Solver_opts.t ->
  ?initial_fill:float * float ->
  ?checkpoint:string * int ->
  ?resume:string ->
  delta:float ->
  times:float array ->
  Kibamrm.t ->
  curve
(** {!cdf} with checkpoint/resume.  [checkpoint:(path, interval)]
    atomically writes a [batlife.ckpt/3] snapshot ({!Checkpoint}) to
    [path] every [interval] completed sweep steps, and flushes a final
    snapshot before a budget/cancellation error propagates; [resume]
    loads such a snapshot and continues the sweep where it stopped.

    Guarantees: a resumed run performs the identical remaining
    products, guards and convergence tests, so its curve is {b bitwise
    identical} to an uninterrupted run's — and to {!cdf}'s (the sweep
    resolves the same rate and windows as the session path).  Resuming
    against a different model, grid, delta or accuracy is rejected
    with [Diag.Error (Invalid_model _)] via the checkpoint's
    fingerprint.  A checkpoint that fails parsing or its integrity
    check is {b quarantined} ([Checkpoint.load_for_resume]: renamed to
    [path ^ ".corrupt"], [Diag] fallback event) and the sweep restarts
    from scratch — resumability degrades to "slower", never to
    "stuck". *)

val cdf_discretized :
  ?opts:Solver_opts.t ->
  delta:float ->
  Discretized.t ->
  times:float array ->
  curve
(** Same, on an already-expanded model (skips the build; [delta] only
    annotates the curve and must be the step the model was built
    with). *)

val cdf_session :
  ?session:Discretized.Session.session ->
  delta:float ->
  Discretized.t ->
  times:float array ->
  curve
(** Same, registering the CDF on an existing session so it shares the
    session's next sweep with whatever else is pending — flushes the
    session. *)

val mean : curve -> float
(** Expected lifetime [integral of (1 - F)] over the sampled range
    (truncated at the last time point; accurate once the CDF has
    essentially reached 1 there). *)

val mean_exact :
  ?opts:Solver_opts.t ->
  ?initial_fill:float * float ->
  delta:float ->
  Kibamrm.t ->
  float
(** Expected lifetime of the discretised model without any time grid:
    the first-passage system on the expanded chain is solved directly
    (see {!Discretized.expected_lifetime}).  Exact up to the charge
    discretisation — no Poisson truncation, no quadrature. *)

val quantile : curve -> float -> float
(** [quantile c p] is the smallest sampled time with
    [F(t) >= p], linearly interpolated. *)

val convergence_study :
  ?opts:Solver_opts.t ->
  deltas:float array ->
  times:float array ->
  Kibamrm.t ->
  curve list
(** One curve per step size — the refinement sequence of the paper's
    Figs. 7/8 ([Delta = 100, 50, 25, 10, 5]).  The points are
    independent solves and are evaluated in parallel across
    [Solver_opts.resolve_jobs opts] domains; results and diagnostics
    are merged in delta order, so output is deterministic and bitwise
    identical to the sequential run. *)
