open Batlife_numerics

let check_sets g ~alpha ~avoid ~goal =
  let n = Generator.n_states g in
  if Array.length alpha <> n then invalid_arg "Reachability: alpha length";
  if Array.length avoid <> n then invalid_arg "Reachability: avoid length";
  if Array.length goal <> n then invalid_arg "Reachability: goal length"

(* Default residual tolerance of the linear first-passage solves; an
   explicit [opts.linear_tol] overrides it. *)
let default_linear_tol = 1e-12

(* The standard until-transformation: goal states become absorbing
   (success is locked in), avoid states become deadlocks (failure is
   locked in), other states keep their behaviour. *)
let until_generator g ~avoid ~goal =
  let n = Generator.n_states g in
  let b = Sparse.Builder.create ~initial_capacity:(Generator.nnz g) ~rows:n
      ~cols:n ()
  in
  Sparse.iter (Generator.matrix g) (fun i j v ->
      if i <> j && v > 0. && (not goal.(i)) && not avoid.(i) then
        Sparse.Builder.add b i j v);
  Generator.of_builder b

let bounded_until ?opts g ~alpha ~avoid ~goal ~t =
  check_sets g ~alpha ~avoid ~goal;
  let transformed = until_generator g ~avoid ~goal in
  let pi = Transient.solve ?opts transformed ~alpha ~t in
  let acc = ref 0. in
  Array.iteri (fun i p -> if goal.(i) then acc := !acc +. p) pi;
  !acc

let bounded_reach ?opts g ~alpha ~goal ~t =
  bounded_until ?opts g ~alpha
    ~avoid:(Array.make (Generator.n_states g) false)
    ~goal ~t

(* Minimal non-negative solution of the hitting-probability system:
   h = 1 on goal, 0 on avoid, harmonic elsewhere.  Gauss-Seidel from
   h = 0 converges monotonically to the minimal solution for this
   M-matrix system; unreachable recurrent classes stay at 0. *)
let hitting_probabilities ?(tol = default_linear_tol) g ~avoid ~goal =
  let n = Generator.n_states g in
  let pinned =
    Array.init n (fun i ->
        goal.(i) || avoid.(i) || Generator.is_absorbing g i)
  in
  let x0 = Array.init n (fun i -> if goal.(i) then 1. else 0.) in
  let robust =
    Iterative.solve_robust ~tol ~x0
      ~skip:(fun i -> pinned.(i))
      (Generator.matrix g)
      ~b:(Array.make n 0.)
  in
  robust.Iterative.result.Iterative.solution

let eventually ?(opts = Solver_opts.default) g ~alpha ~avoid ~goal =
  check_sets g ~alpha ~avoid ~goal;
  let tol = Solver_opts.linear_tol_or ~default:default_linear_tol opts in
  let h = hitting_probabilities ~tol g ~avoid ~goal in
  Vector.dot alpha h

let expected_hitting_time ?(opts = Solver_opts.default) g ~alpha ~goal =
  let n = Generator.n_states g in
  if not (Array.exists (fun b -> b) goal) then
    invalid_arg "Reachability.expected_hitting_time: empty goal set";
  check_sets g ~alpha ~avoid:(Array.make n false) ~goal;
  let tol = Solver_opts.linear_tol_or ~default:default_linear_tol opts in
  let h = hitting_probabilities ~tol g ~avoid:(Array.make n false) ~goal in
  (* If any initial mass can miss the goal, the expectation is
     infinite. *)
  let reachable = ref true in
  Array.iteri
    (fun i p -> if p > 0. && h.(i) < 1. -. 1e-9 then reachable := false)
    alpha;
  if not !reachable then infinity
  else begin
    (* tau = 0 on goal; Q tau = -1 on states that reach the goal a.s.;
       states with h < 1 are unreachable from the initial mass (else h
       would be < 1 there too) and are pinned to keep the system
       non-singular. *)
    let pinned = Array.init n (fun i -> goal.(i) || h.(i) < 1. -. 1e-9) in
    let b = Array.init n (fun i -> if pinned.(i) then 0. else -1.) in
    let robust =
      Iterative.solve_robust ~tol
        ~skip:(fun i -> pinned.(i))
        (Generator.matrix g) ~b
    in
    Vector.dot alpha robust.Iterative.result.Iterative.solution
  end
