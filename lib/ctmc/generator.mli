(** Continuous-time Markov chain generators.

    A generator is a square sparse matrix [Q] with non-negative
    off-diagonal rates and rows summing to zero.  The constructors
    below take only the off-diagonal rates and fill the diagonal, so a
    well-formed generator is guaranteed by construction. *)

open Batlife_numerics

type t = private {
  n : int;  (** number of states *)
  q : Sparse.t;  (** the generator matrix, rows summing to zero *)
  labels : string array;  (** state names, ["s<i>"] by default *)
}

val of_rates : ?labels:string array -> n:int -> (int * int * float) list -> t
(** [of_rates ~n rates] builds a generator from off-diagonal entries
    [(i, j, rate)].  Rates must be non-negative and [i <> j]; duplicate
    entries are summed.  Raises [Invalid_argument] on violations. *)

val of_builder : ?labels:string array -> Sparse.Builder.t -> t
(** Build from a mutable triplet accumulator holding only off-diagonal
    non-negative rates; the diagonal is added in place.  The builder
    must not be reused afterwards.  This is the constructor used for
    the large discretised battery generators (millions of entries)
    because it avoids materialising intermediate lists. *)

val of_sparse : ?labels:string array -> Sparse.t -> t
(** Wrap an existing matrix after validating generator structure
    (square, non-negative off-diagonal, row sums within [1e-9] of 0;
    the diagonal is recomputed exactly from the off-diagonal sums). *)

val n_states : t -> int

val label : t -> int -> string

val rate : t -> int -> int -> float
(** [rate g i j] is [q_ij]. *)

val exit_rate : t -> int -> float
(** [exit_rate g i] is [-q_ii >= 0]. *)

val max_exit_rate : t -> float
(** [max_i (-q_ii)]: the smallest admissible uniformisation rate. *)

val uniformisation_rate : t -> float
(** A valid uniformisation constant: [1.02 * max_i (-q_ii)], slightly
    inflated so the uniformised chain has strictly positive self-loop
    probability (helps aperiodicity); at least [1e-12]. *)

val is_absorbing : t -> int -> bool

val absorbing_states : t -> int list

val nnz : t -> int

val matrix : t -> Sparse.t

val uniformised : t -> q:float -> Sparse.t
(** [uniformised g ~q] is the stochastic matrix [P = I + Q/q].  Raises
    [Invalid_argument] if [q] is smaller than the largest exit rate. *)

val pp : Format.formatter -> t -> unit
