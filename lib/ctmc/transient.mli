(** Transient analysis of CTMCs by uniformisation.

    Uniformisation writes the transient distribution as
    [pi(t) = sum_n pois(qt; n) (alpha P^n)] with [P = I + Q/q].  The
    module offers the plain solver and a batched evaluation engine:
    the sequence [v_n = alpha P^n] is computed once and any number of
    user-supplied linear functionals are recorded per step; every
    [(measure, time)] pair then costs only a Poisson-weighted scalar
    sum.  This is how a whole battery-lifetime CDF curve — or a CDF
    {e plus} every per-time marginal — is produced from a single
    vector-matrix sweep ({!multi_measure_sweep}, and
    [Batlife_core.Discretized.Session] on top of it).

    All canonical entry points take numerical options as one
    [?opts:Solver_opts.t] record, and the resumable sweeps take their
    checkpoint hooks as one
    [?progress:sweep_progress Batlife_numerics.Progress.t] record
    (the pre-record optional-argument spellings were removed).

    {b Parallelism.}  The hot product [v := v P] runs as a gather over
    the CSR transpose of [P], row-partitioned across a
    [Batlife_numerics.Pool] of [Solver_opts.resolve_jobs opts] domains
    (a {!kernel} value, prepared once per sweep or cached by the
    session layer via {!make_kernel}).  Each output entry is owned by
    exactly one domain and summed in a fixed order, so results are
    {b bitwise identical} for every job count; [jobs = 1] takes a
    guaranteed sequential path.  The per-step vectors are flat float64
    [Batlife_numerics.Fvec] buffers, matching the int32/float64
    Bigarray CSR streams of [Batlife_numerics.Sparse].

    {b Adaptive support} (on by default, see
    [Solver_opts.adaptive_support]).  The iterate of a battery
    lifetime sweep is a travelling front over the charge grid: at any
    step, most rows hold no probability mass.  The batched engine
    tracks the set of rows outside which the iterate is exactly zero
    as disjoint index segments, {e expands} it each step along the
    matrix's distinct transition displacements (falling back to the
    structural bandwidths for unstructured matrices — either way no
    transition reaches outside the expanded set, so mass can never
    escape silently) and computes the gather only inside it.  Active
    tiles whose entries are all at most a threshold tied to the
    Fox–Glynn accuracy budget are {e pruned} (zeroed; their mass is
    tallied and audited), letting the support shrink behind the
    front.  The pruned mass is hard-capped at [accuracy / 2] (see
    [Solver_opts.support_threshold] for the split), so an adaptive
    result deviates from the exact full-support kernel by at most the
    skipped mass reported in {!stats.skipped_mass} — and with
    [support_threshold = Some 0.] the adaptive sweep is bitwise
    identical to the exact one.  [solve] and {!distribution_sweep}
    return full distributions and always use the exact full-support
    kernel.

    All entry points are guarded: a user-supplied uniformisation rate
    [q] below the chain's largest exit rate is rejected with
    [Diag.Error (Invalid_model _)] (the uniformised matrix would have
    negative entries and silently produce a wrong result); negative,
    NaN or infinite time points are rejected the same way (all
    violations collected into one error); and the sweeps monitor the
    iterate in flight — non-finite entries, probability mass (window
    sum plus pruned mass) drifting from the initial mass by more than
    1e-6, or a NaN measure value raise
    [Diag.Error (Numerical_breakdown _)].  A completed batched sweep
    additionally {b self-verifies a posteriori}: final-iterate mass
    conservation, the skipped-mass budget of the adaptive kernel, and
    the Fox–Glynn truncation accounting of every window are re-derived
    from the outputs (reported in {!stats.mass_residual} /
    {!stats.fg_defect}), so a fault that slipped between the per-step
    checks still cannot leave results standing. *)

type stats = {
  iterations : int;  (** number of vector-matrix products performed *)
  converged_at : int option;
      (** step after which [v_n] was numerically stationary, if
          detected *)
  uniformisation_rate : float;
  mass_residual : float;
      (** a-posteriori |mass(final iterate) + skipped - mass(alpha)|,
          audited against the 1e-6 conservation tolerance after the
          sweep *)
  fg_defect : float;
      (** largest Fox–Glynn truncation defect over the sweep's
          windows, audited against the requested accuracy *)
  touched_nnz : int;
      (** matrix nonzeros the sweep's products actually streamed; the
          full-support cost would be [iterations * nnz] *)
  active_rows : int;
      (** output rows the sweep's products actually computed; the
          full-support cost would be [iterations * states] *)
  support_lo : int;
  support_hi : int;
      (** hull [\[support_lo, support_hi)] of the iterate's final
          support ([\[0, states)] for full-support sweeps) *)
  skipped_mass : float;
      (** total probability mass the adaptive pruner dropped, audited
          against its [accuracy / 2] budget ([0.] for full-support
          sweeps); the adaptive-vs-exact deviation of any result is
          bounded by this *)
}

(** {1 Resilience}

    Every sweep consults the budget of its options
    ([Solver_opts.resolve_budget] — the explicit one or the
    process-wide ambient budget): one unit of work is noted per
    vector-matrix product, and before each product the budget is
    polled; an exhausted budget or a cancellation raises the
    structured [Diag.Error (Budget_exhausted _ / Cancelled _)].  The
    batched engine additionally supports snapshot/resume, giving
    checkpointed computations ({!Batlife_core.Lifetime}) their
    bitwise resumed == uninterrupted guarantee. *)

type sweep_progress = {
  sp_step : int;  (** last completed power step [m] *)
  sp_converged : bool;
      (** stationarity was detected exactly at [sp_step] *)
  sp_vector : float array;  (** the iterate [v_m = alpha P^m] *)
  sp_values : float array array;
      (** [sp_values.(j).(i)], [i <= sp_step]: measure [j] on the
          step-[i] iterate *)
  sp_skipped : float;
      (** probability mass the adaptive pruner had dropped by
          [sp_step] ([0.] for full-support sweeps) *)
}
(** Complete intermediate state of a {!multi_measure_sweep} after some
    step: restarting from a [sweep_progress] performs the identical
    remaining products, guards and convergence tests, so the resumed
    results are bitwise equal to the uninterrupted run's.  The support
    needs no field of its own — the pruner zeroes everything it drops
    and never leaves an all-zero tile active, so the stored vector's
    occupied tiles {e are} the live support. *)

(** {1 Work counters}

    Process-wide tallies of the sweeps started and the vector-matrix
    products performed, so tests and benchmarks can assert statements
    like "these five queries cost exactly one sweep".  They live in
    {!Batlife_numerics.Telemetry} as the Atomic-backed counters
    ["transient.sweeps"], ["transient.products"],
    ["transient.kernel_builds"], ["transient.touched_nnz"] and
    ["transient.active_rows"] — domain-safe, so the tallies stay
    exact under [Pool] fan-out.  The last two accumulate the same
    per-product work tallies {!stats.touched_nnz} /
    {!stats.active_rows} report per sweep; benchmarks derive the
    adaptive kernel's work-reduction ratio from them.  Read them with
    [Telemetry.(value (counter "transient.sweeps"))]. *)

val resolve_rate : ?opts:Solver_opts.t -> Generator.t -> float
(** The validated uniformisation rate the sweeps will use under
    [opts]: [opts.unif_rate] when set (rejected with
    [Diag.Error (Invalid_model _)] if below the largest exit rate or
    non-finite), else the generator's own rate.  Exposed so callers
    that cache Fox–Glynn windows keyed by [(q, t)] — the session layer
    — can compute them with the exact [q] a sweep will use. *)

(** {1 The stepping kernel}

    Everything a sweep needs to apply [v := v P] in parallel: the CSR
    transpose of the uniformised matrix, an nnz-balanced row partition
    of it, its structural shape (distinct displacements and bandwidths,
    for adaptive support expansion), and the worker pool.  Building one costs a transpose (O(nnz));
    sweeping with a prebuilt kernel avoids paying that per call, which
    is what [Batlife_core.Discretized.Session] relies on for its
    amortised fast path. *)

type kernel

val make_kernel : ?opts:Solver_opts.t -> Generator.t -> kernel
(** Prepare the parallel stepping kernel for [g] under [opts] (rate
    from [opts.unif_rate] or the generator, pool of
    [Solver_opts.resolve_jobs opts] domains).  Validates the rate like
    {!resolve_rate}. *)

val kernel_rate : kernel -> float
(** The uniformisation rate the kernel's matrix was built with. *)

val kernel_jobs : kernel -> int
(** The worker count of the kernel's pool. *)

val kernel_bandwidths : kernel -> int * int
(** [(down, up)]: the largest index decrease / increase any stored
    transition of the uniformised matrix causes.  The adaptive kernel
    normally expands the support along the distinct displacement set;
    the bandwidths bound that set and serve as its fallback. *)

val kernel_bytes : kernel -> int
(** Estimated resident bytes of the kernel's own allocations — the CSR
    transpose of the uniformised matrix (the dominant term: 12 bytes
    per nonzero plus 8 per row pointer), the cached partition and the
    displacement set.  Excludes the shared worker pool.  Feeds the
    byte-budgeted session cache's accounting. *)

val solve :
  ?opts:Solver_opts.t ->
  Generator.t ->
  alpha:float array ->
  t:float ->
  float array
(** [solve g ~alpha ~t] is the state distribution at time [t] given
    the initial distribution [alpha].  Always uses the exact
    full-support kernel (the deliverable is the whole vector). *)

val multi_measure_sweep :
  ?opts:Solver_opts.t ->
  ?windows:Batlife_numerics.Poisson.t array ->
  ?buffers:Batlife_numerics.Fvec.t * Batlife_numerics.Fvec.t ->
  ?kernel:kernel ->
  ?progress:sweep_progress Batlife_numerics.Progress.t ->
  Generator.t ->
  alpha:float array ->
  times:float array ->
  measures:(Batlife_numerics.Fvec.t -> float) array ->
  float array array * stats
(** [multi_measure_sweep g ~alpha ~times ~measures] evaluates
    [sum_n pois(q t; n) measures.(j)(alpha P^n)] for every measure
    [j] and every [t] in [times] (non-negative, not necessarily
    sorted) in a {b single} power sweep; [result.(j).(i)] is measure
    [j] at [times.(i)], and the returned [stats] are shared by all of
    them.  Each measure must be a linear functional of the
    distribution (e.g. total mass on a set of states), reading the
    flat [Fvec] iterate; under the adaptive kernel, entries outside
    the support window are exactly [0.], so index-summing measures
    need no window awareness.  When successive [v_n] differ by less
    than [opts.convergence_tol] in L-infinity, the sweep stops early
    and the remaining steps are extrapolated as constant.

    [windows] supplies precomputed Fox–Glynn truncations, one per
    entry of [times] (they must have been computed for the same [q]
    and [accuracy] — the session cache uses {!resolve_rate});
    [buffers] supplies the two length-[n] working vectors so repeated
    sweeps are allocation-free apart from the result matrix; [kernel]
    supplies a prebuilt stepping kernel (from {!make_kernel}) so
    repeated sweeps skip the per-call transpose.  Raises
    [Invalid_argument] if [windows]/[buffers] have the wrong length,
    or if [kernel] was prepared for a different state count or
    uniformisation rate than the sweep resolves under [opts].

    [progress] carries the checkpoint/resume hooks
    ({!Batlife_numerics.Progress}): [on_step] is called after every
    completed step with the step index and a lazy snapshot thunk — the
    state copy is only paid when the caller actually checkpoints;
    [on_interrupt] is called with a final snapshot just before a
    budget/cancellation error is raised (the flush point of
    checkpointing callers); [resume] restores a snapshot and continues
    at the following step.  Raises [Invalid_argument] if a [resume]
    snapshot disagrees with the sweep on state count, measure count,
    step range, or carries a negative/NaN skipped mass. *)

val measure_sweep :
  ?opts:Solver_opts.t ->
  ?windows:Batlife_numerics.Poisson.t array ->
  ?buffers:Batlife_numerics.Fvec.t * Batlife_numerics.Fvec.t ->
  ?kernel:kernel ->
  ?progress:sweep_progress Batlife_numerics.Progress.t ->
  Generator.t ->
  alpha:float array ->
  times:float array ->
  measure:(Batlife_numerics.Fvec.t -> float) ->
  float array * stats
(** Single-functional convenience over {!multi_measure_sweep}. *)

val distribution_sweep :
  ?opts:Solver_opts.t ->
  Generator.t ->
  alpha:float array ->
  times:float array ->
  float array array * stats
(** Full distributions at several time points from one sweep (memory:
    one accumulator vector per time point).  Validates [times] exactly
    like {!measure_sweep}.  Always uses the exact full-support
    kernel. *)

val expected_hitting_mass :
  ?opts:Solver_opts.t ->
  Generator.t ->
  alpha:float array ->
  states:int list ->
  t:float ->
  float
(** Probability mass on [states] at time [t]; convenience wrapper over
    {!solve}. *)
