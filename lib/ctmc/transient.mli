(** Transient analysis of CTMCs by uniformisation.

    Uniformisation writes the transient distribution as
    [pi(t) = sum_n pois(qt; n) (alpha P^n)] with [P = I + Q/q].  The
    module offers the plain solver and a batched evaluation engine:
    the sequence [v_n = alpha P^n] is computed once and any number of
    user-supplied linear functionals are recorded per step; every
    [(measure, time)] pair then costs only a Poisson-weighted scalar
    sum.  This is how a whole battery-lifetime CDF curve — or a CDF
    {e plus} every per-time marginal — is produced from a single
    vector-matrix sweep ({!multi_measure_sweep}, and
    [Batlife_core.Discretized.Session] on top of it).

    All canonical entry points take numerical options as one
    [?opts:Solver_opts.t] record, and the resumable sweeps take their
    checkpoint hooks as one
    [?progress:sweep_progress Batlife_numerics.Progress.t] record
    (the pre-record optional-argument spellings were removed).

    {b Parallelism.}  The hot product [v := v P] runs as a gather over
    the CSR transpose of [P], row-partitioned across a
    [Batlife_numerics.Pool] of [Solver_opts.resolve_jobs opts] domains
    (a {!kernel} value, prepared once per sweep or cached by the
    session layer via {!make_kernel}).  Each output entry is owned by
    exactly one domain and summed in a fixed order, so results are
    {b bitwise identical} for every job count; [jobs = 1] takes a
    guaranteed sequential path.

    All entry points are guarded: a user-supplied uniformisation rate
    [q] below the chain's largest exit rate is rejected with
    [Diag.Error (Invalid_model _)] (the uniformised matrix would have
    negative entries and silently produce a wrong result); negative,
    NaN or infinite time points are rejected the same way (all
    violations collected into one error); and the sweeps monitor the
    iterate in flight — non-finite entries, probability mass drifting
    from the initial mass by more than 1e-6, or a NaN measure value
    raise [Diag.Error (Numerical_breakdown _)].  A completed batched
    sweep additionally {b self-verifies a posteriori}: final-iterate
    mass conservation and the Fox–Glynn truncation accounting of every
    window are re-derived from the outputs (reported in
    {!stats.mass_residual} / {!stats.fg_defect}), so a fault that
    slipped between the per-step checks still cannot leave results
    standing. *)

type stats = {
  iterations : int;  (** number of vector-matrix products performed *)
  converged_at : int option;
      (** step after which [v_n] was numerically stationary, if
          detected *)
  uniformisation_rate : float;
  mass_residual : float;
      (** a-posteriori |mass(final iterate) - mass(alpha)|, audited
          against the 1e-6 conservation tolerance after the sweep *)
  fg_defect : float;
      (** largest Fox–Glynn truncation defect over the sweep's
          windows, audited against the requested accuracy *)
}

(** {1 Resilience}

    Every sweep consults the budget of its options
    ([Solver_opts.resolve_budget] — the explicit one or the
    process-wide ambient budget): one unit of work is noted per
    vector-matrix product, and before each product the budget is
    polled; an exhausted budget or a cancellation raises the
    structured [Diag.Error (Budget_exhausted _ / Cancelled _)].  The
    batched engine additionally supports snapshot/resume, giving
    checkpointed computations ({!Batlife_core.Lifetime}) their
    bitwise resumed == uninterrupted guarantee. *)

type sweep_progress = {
  sp_step : int;  (** last completed power step [m] *)
  sp_converged : bool;
      (** stationarity was detected exactly at [sp_step] *)
  sp_vector : float array;  (** the iterate [v_m = alpha P^m] *)
  sp_values : float array array;
      (** [sp_values.(j).(i)], [i <= sp_step]: measure [j] on the
          step-[i] iterate *)
}
(** Complete intermediate state of a {!multi_measure_sweep} after some
    step: restarting from a [sweep_progress] performs the identical
    remaining products, guards and convergence tests, so the resumed
    results are bitwise equal to the uninterrupted run's. *)

(** {1 Work counters}

    Process-wide tallies of the sweeps started and the vector-matrix
    products performed, so tests and benchmarks can assert statements
    like "these five queries cost exactly one sweep".  They live in
    {!Batlife_numerics.Telemetry} as the Atomic-backed counters
    ["transient.sweeps"], ["transient.products"] and
    ["transient.kernel_builds"] — domain-safe, so the tallies stay
    exact under [Pool] fan-out.  Read them with
    [Telemetry.(value (counter "transient.sweeps"))]. *)

val resolve_rate : ?opts:Solver_opts.t -> Generator.t -> float
(** The validated uniformisation rate the sweeps will use under
    [opts]: [opts.unif_rate] when set (rejected with
    [Diag.Error (Invalid_model _)] if below the largest exit rate or
    non-finite), else the generator's own rate.  Exposed so callers
    that cache Fox–Glynn windows keyed by [(q, t)] — the session layer
    — can compute them with the exact [q] a sweep will use. *)

(** {1 The stepping kernel}

    Everything a sweep needs to apply [v := v P] in parallel: the CSR
    transpose of the uniformised matrix, an nnz-balanced row partition
    of it, and the worker pool.  Building one costs a transpose
    (O(nnz)); sweeping with a prebuilt kernel avoids paying that per
    call, which is what [Batlife_core.Discretized.Session] relies on
    for its amortised fast path. *)

type kernel

val make_kernel : ?opts:Solver_opts.t -> Generator.t -> kernel
(** Prepare the parallel stepping kernel for [g] under [opts] (rate
    from [opts.unif_rate] or the generator, pool of
    [Solver_opts.resolve_jobs opts] domains).  Validates the rate like
    {!resolve_rate}. *)

val kernel_rate : kernel -> float
(** The uniformisation rate the kernel's matrix was built with. *)

val kernel_jobs : kernel -> int
(** The worker count of the kernel's pool. *)

val solve :
  ?opts:Solver_opts.t ->
  Generator.t ->
  alpha:float array ->
  t:float ->
  float array
(** [solve g ~alpha ~t] is the state distribution at time [t] given
    the initial distribution [alpha]. *)

val multi_measure_sweep :
  ?opts:Solver_opts.t ->
  ?windows:Batlife_numerics.Poisson.t array ->
  ?buffers:float array * float array ->
  ?kernel:kernel ->
  ?progress:sweep_progress Batlife_numerics.Progress.t ->
  Generator.t ->
  alpha:float array ->
  times:float array ->
  measures:(float array -> float) array ->
  float array array * stats
(** [multi_measure_sweep g ~alpha ~times ~measures] evaluates
    [sum_n pois(q t; n) measures.(j)(alpha P^n)] for every measure
    [j] and every [t] in [times] (non-negative, not necessarily
    sorted) in a {b single} power sweep; [result.(j).(i)] is measure
    [j] at [times.(i)], and the returned [stats] are shared by all of
    them.  Each measure must be a linear functional of the
    distribution (e.g. total mass on a set of states).  When
    successive [v_n] differ by less than [opts.convergence_tol] in
    L-infinity, the sweep stops early and the remaining steps are
    extrapolated as constant.

    [windows] supplies precomputed Fox–Glynn truncations, one per
    entry of [times] (they must have been computed for the same [q]
    and [accuracy] — the session cache uses {!resolve_rate});
    [buffers] supplies the two length-[n] working vectors so repeated
    sweeps are allocation-free apart from the result matrix; [kernel]
    supplies a prebuilt stepping kernel (from {!make_kernel}) so
    repeated sweeps skip the per-call transpose.  Raises
    [Invalid_argument] if [windows]/[buffers] have the wrong length,
    or if [kernel] was prepared for a different state count or
    uniformisation rate than the sweep resolves under [opts].

    [progress] carries the checkpoint/resume hooks
    ({!Batlife_numerics.Progress}): [on_step] is called after every
    completed step with the step index and a lazy snapshot thunk — the
    state copy is only paid when the caller actually checkpoints;
    [on_interrupt] is called with a final snapshot just before a
    budget/cancellation error is raised (the flush point of
    checkpointing callers); [resume] restores a snapshot and continues
    at the following step.  Raises [Invalid_argument] if a [resume]
    snapshot disagrees with the sweep on state count, measure count,
    or step range. *)

val measure_sweep :
  ?opts:Solver_opts.t ->
  ?windows:Batlife_numerics.Poisson.t array ->
  ?buffers:float array * float array ->
  ?kernel:kernel ->
  ?progress:sweep_progress Batlife_numerics.Progress.t ->
  Generator.t ->
  alpha:float array ->
  times:float array ->
  measure:(float array -> float) ->
  float array * stats
(** Single-functional convenience over {!multi_measure_sweep}. *)

val distribution_sweep :
  ?opts:Solver_opts.t ->
  Generator.t ->
  alpha:float array ->
  times:float array ->
  float array array * stats
(** Full distributions at several time points from one sweep (memory:
    one accumulator vector per time point).  Validates [times] exactly
    like {!measure_sweep}. *)

val expected_hitting_mass :
  ?opts:Solver_opts.t ->
  Generator.t ->
  alpha:float array ->
  states:int list ->
  t:float ->
  float
(** Probability mass on [states] at time [t]; convenience wrapper over
    {!solve}. *)

