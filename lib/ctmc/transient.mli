(** Transient analysis of CTMCs by uniformisation.

    Uniformisation writes the transient distribution as
    [pi(t) = sum_n pois(qt; n) (alpha P^n)] with [P = I + Q/q].  The
    module offers both the plain solver and a "one sweep, many times"
    variant: the sequence [v_n = alpha P^n] is computed once and a
    user-supplied linear functional [m_n = measure v_n] is recorded per
    step; any number of time points then costs only a Poisson-weighted
    scalar sum each.  This is how a whole battery-lifetime CDF curve is
    produced from a single vector-matrix sweep.

    All entry points are guarded: a user-supplied uniformisation rate
    [q] below the chain's largest exit rate is rejected with
    [Diag.Error (Invalid_model _)] (the uniformised matrix would have
    negative entries and silently produce a wrong result), and the
    sweeps monitor the iterate in flight — non-finite entries,
    probability mass drifting from the initial mass by more than 1e-6,
    or a NaN measure value raise
    [Diag.Error (Numerical_breakdown _)]. *)

type stats = {
  iterations : int;  (** number of vector-matrix products performed *)
  converged_at : int option;
      (** step after which [v_n] was numerically stationary, if
          detected *)
  uniformisation_rate : float;
}

val solve :
  ?accuracy:float ->
  ?q:float ->
  Generator.t ->
  alpha:float array ->
  t:float ->
  float array
(** [solve g ~alpha ~t] is the state distribution at time [t] given the
    initial distribution [alpha].  [accuracy] (default 1e-12) bounds
    the truncated Poisson mass; [q] overrides the uniformisation
    rate. *)

val measure_sweep :
  ?accuracy:float ->
  ?q:float ->
  ?convergence_tol:float ->
  Generator.t ->
  alpha:float array ->
  times:float array ->
  measure:(float array -> float) ->
  float array * stats
(** [measure_sweep g ~alpha ~times ~measure] evaluates
    [sum_n pois(q t; n) measure(alpha P^n)] for every [t] in [times]
    (which must be non-negative; they need not be sorted).  [measure]
    must be a linear functional of the distribution (e.g. total mass on
    a set of states).  When successive [v_n] differ by less than
    [convergence_tol] (default 1e-14) in L1, the sweep stops early and
    the remaining measures are extrapolated as constant. *)

val distribution_sweep :
  ?accuracy:float ->
  ?q:float ->
  Generator.t ->
  alpha:float array ->
  times:float array ->
  float array array * stats
(** Full distributions at several time points from one sweep (memory:
    one accumulator vector per time point). *)

val expected_hitting_mass :
  ?accuracy:float ->
  Generator.t ->
  alpha:float array ->
  states:int list ->
  t:float ->
  float
(** Probability mass on [states] at time [t]; convenience wrapper over
    {!solve}. *)
