type t = {
  accuracy : float;
  unif_rate : float option;
  convergence_tol : float;
  linear_tol : float option;
  jobs : int option;
  telemetry : bool;
  budget : Batlife_numerics.Budget.t option;
  max_retries : int;
  adaptive_support : bool;
  support_threshold : float option;
}

let default =
  { accuracy = 1e-12; unif_rate = None; convergence_tol = 1e-14;
    linear_tol = None; jobs = None; telemetry = false; budget = None;
    max_retries = 0; adaptive_support = true; support_threshold = None }

let make ?(accuracy = default.accuracy) ?unif_rate
    ?(convergence_tol = default.convergence_tol) ?linear_tol ?jobs
    ?(telemetry = default.telemetry) ?budget
    ?(max_retries = default.max_retries)
    ?(adaptive_support = default.adaptive_support) ?support_threshold () =
  (match jobs with
  | Some j when j < 1 -> invalid_arg "Solver_opts.make: need jobs >= 1"
  | _ -> ());
  if max_retries < 0 then invalid_arg "Solver_opts.make: need max_retries >= 0";
  (match support_threshold with
  | Some tau when not (Float.is_finite tau) || tau < 0. ->
      invalid_arg "Solver_opts.make: need a finite support_threshold >= 0"
  | _ -> ());
  { accuracy; unif_rate; convergence_tol; linear_tol; jobs; telemetry; budget;
    max_retries; adaptive_support; support_threshold }

let linear_tol_or ~default:d t =
  match t.linear_tol with Some tol -> tol | None -> d

let resolve_jobs t =
  match t.jobs with
  | Some j -> j
  | None -> Batlife_numerics.Pool.default_jobs ()

let resolve_budget t =
  match t.budget with
  | Some b -> b
  | None -> Batlife_numerics.Budget.ambient ()

(* The flag only ever turns the global collector ON: a nested call
   with [telemetry = false] must not silence the recording an outer
   caller (the CLI, a bench harness) asked for. *)
let request_telemetry t =
  if t.telemetry then Batlife_numerics.Telemetry.enable ()

let pp ppf t =
  Format.fprintf ppf
    "{ accuracy = %g; unif_rate = %s; convergence_tol = %g; linear_tol = %s; \
     jobs = %s; telemetry = %b; budget = %s; max_retries = %d; \
     adaptive_support = %b; support_threshold = %s }"
    t.accuracy
    (match t.unif_rate with Some q -> Printf.sprintf "%g" q | None -> "auto")
    t.convergence_tol
    (match t.linear_tol with
    | Some tol -> Printf.sprintf "%g" tol
    | None -> "solver default")
    (match t.jobs with Some j -> string_of_int j | None -> "auto")
    t.telemetry
    (match t.budget with
    | Some b when Batlife_numerics.Budget.is_unlimited b -> "unlimited"
    | Some _ -> "explicit"
    | None -> "ambient")
    t.max_retries t.adaptive_support
    (match t.support_threshold with
    | Some tau -> Printf.sprintf "%g" tau
    | None -> "auto")
