type t = {
  accuracy : float;
  unif_rate : float option;
  convergence_tol : float;
  linear_tol : float option;
  jobs : int option;
}

let default =
  { accuracy = 1e-12; unif_rate = None; convergence_tol = 1e-14;
    linear_tol = None; jobs = None }

let make ?(accuracy = default.accuracy) ?unif_rate
    ?(convergence_tol = default.convergence_tol) ?linear_tol ?jobs () =
  (match jobs with
  | Some j when j < 1 -> invalid_arg "Solver_opts.make: need jobs >= 1"
  | _ -> ());
  { accuracy; unif_rate; convergence_tol; linear_tol; jobs }

let of_legacy ?accuracy ?q ?convergence_tol ?tol () =
  make ?accuracy ?unif_rate:q ?convergence_tol ?linear_tol:tol ()

let linear_tol_or ~default:d t =
  match t.linear_tol with Some tol -> tol | None -> d

let resolve_jobs t =
  match t.jobs with
  | Some j -> j
  | None -> Batlife_numerics.Pool.default_jobs ()

let pp ppf t =
  Format.fprintf ppf
    "{ accuracy = %g; unif_rate = %s; convergence_tol = %g; linear_tol = %s; \
     jobs = %s }"
    t.accuracy
    (match t.unif_rate with Some q -> Printf.sprintf "%g" q | None -> "auto")
    t.convergence_tol
    (match t.linear_tol with
    | Some tol -> Printf.sprintf "%g" tol
    | None -> "solver default")
    (match t.jobs with Some j -> string_of_int j | None -> "auto")
