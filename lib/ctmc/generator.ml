open Batlife_numerics

type t = { n : int; q : Sparse.t; labels : string array }

let default_labels n = Array.init n (fun i -> Printf.sprintf "s%d" i)

let check_labels n = function
  | None -> default_labels n
  | Some l ->
      if Array.length l <> n then
        invalid_arg "Generator: wrong number of labels";
      Array.copy l

let of_rates ?labels ~n rates =
  if n <= 0 then invalid_arg "Generator.of_rates: need n > 0";
  let b = Sparse.Builder.create ~rows:n ~cols:n () in
  let exit = Array.make n 0. in
  List.iter
    (fun (i, j, r) ->
      if i = j then invalid_arg "Generator.of_rates: diagonal rate given";
      if r < 0. then invalid_arg "Generator.of_rates: negative rate";
      if i < 0 || i >= n || j < 0 || j >= n then
        invalid_arg "Generator.of_rates: state out of range";
      Sparse.Builder.add b i j r;
      exit.(i) <- exit.(i) +. r)
    rates;
  for i = 0 to n - 1 do
    Sparse.Builder.add b i i (-.exit.(i))
  done;
  { n; q = Sparse.of_builder b; labels = check_labels n labels }

let of_builder ?labels b =
  let n = Sparse.Builder.rows b in
  if n <> Sparse.Builder.cols b then
    invalid_arg "Generator.of_builder: not square";
  let exit = Array.make n 0. in
  Sparse.Builder.iter b (fun i j v ->
      if i = j then invalid_arg "Generator.of_builder: diagonal entry given";
      if v < 0. then invalid_arg "Generator.of_builder: negative rate";
      exit.(i) <- exit.(i) +. v);
  for i = 0 to n - 1 do
    Sparse.Builder.add b i i (-.exit.(i))
  done;
  { n; q = Sparse.of_builder b; labels = check_labels n labels }

let of_sparse ?labels m =
  let n = m.Sparse.rows in
  if n <> m.Sparse.cols then invalid_arg "Generator.of_sparse: not square";
  (* Validate and recompute the diagonal from off-diagonal sums so row
     sums are exactly zero. *)
  let b = Sparse.Builder.create ~initial_capacity:(Sparse.nnz m) ~rows:n
      ~cols:n ()
  in
  let exit = Array.make n 0. in
  Sparse.iter m (fun i j v ->
      if i <> j then begin
        if v < 0. then
          invalid_arg
            (Printf.sprintf "Generator.of_sparse: negative rate at (%d,%d)" i j);
        Sparse.Builder.add b i j v;
        exit.(i) <- exit.(i) +. v
      end);
  let sums = Sparse.row_sums m in
  Array.iteri
    (fun i s ->
      if Float.abs s > 1e-9 *. Float.max 1. exit.(i) then
        invalid_arg
          (Printf.sprintf "Generator.of_sparse: row %d sums to %g" i s))
    sums;
  for i = 0 to n - 1 do
    Sparse.Builder.add b i i (-.exit.(i))
  done;
  { n; q = Sparse.of_builder b; labels = check_labels n labels }

let n_states g = g.n

let label g i = g.labels.(i)

let rate g i j = Sparse.get g.q i j

let exit_rate g i = -.Sparse.get g.q i i

let max_exit_rate g =
  let m = ref 0. in
  for i = 0 to g.n - 1 do
    m := Float.max !m (exit_rate g i)
  done;
  !m

let uniformisation_rate g = Float.max (1.02 *. max_exit_rate g) 1e-12

let is_absorbing g i = exit_rate g i = 0.

let absorbing_states g =
  let acc = ref [] in
  for i = g.n - 1 downto 0 do
    if is_absorbing g i then acc := i :: !acc
  done;
  !acc

let nnz g = Sparse.nnz g.q

let matrix g = g.q

let uniformised g ~q =
  let max_exit = max_exit_rate g in
  if q < max_exit then
    invalid_arg "Generator.uniformised: rate below the largest exit rate";
  let b =
    Sparse.Builder.create ~initial_capacity:(nnz g + g.n) ~rows:g.n ~cols:g.n
      ()
  in
  Sparse.iter g.q (fun i j v -> Sparse.Builder.add b i j (v /. q));
  for i = 0 to g.n - 1 do
    Sparse.Builder.add b i i 1.
  done;
  Sparse.of_builder b

let pp ppf g =
  Format.fprintf ppf "@[<v>CTMC with %d states, %d transitions@," g.n
    (nnz g - g.n);
  Sparse.iter g.q (fun i j v ->
      if i <> j && v <> 0. then
        Format.fprintf ppf "  %s -> %s @@ %g@," g.labels.(i) g.labels.(j) v);
  Format.fprintf ppf "@]"
