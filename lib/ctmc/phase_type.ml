open Batlife_numerics

type t = {
  alpha : float array;
  sub : Dense.t;  (** sub-generator over transient states *)
  chain : Generator.t;  (** full chain with one absorbing state appended *)
  absorbing : int;
}

let build_chain alpha sub =
  let n = Array.length alpha in
  if n = 0 then invalid_arg "Phase_type.create: empty phase set";
  if Dense.rows sub <> n || Dense.cols sub <> n then
    invalid_arg "Phase_type.create: sub-generator shape mismatch";
  let mass = Array.fold_left ( +. ) 0. alpha in
  if mass > 1. +. 1e-9 then
    invalid_arg "Phase_type.create: initial mass exceeds 1";
  Array.iter
    (fun p -> if p < 0. then invalid_arg "Phase_type.create: negative alpha")
    alpha;
  let rates = ref [] in
  for i = 0 to n - 1 do
    let row_sum = ref 0. in
    for j = 0 to n - 1 do
      let v = Dense.get sub i j in
      if i <> j then begin
        if v < -1e-12 then
          invalid_arg "Phase_type.create: negative off-diagonal rate";
        if v > 0. then rates := (i, j, v) :: !rates;
        row_sum := !row_sum +. v
      end
      else row_sum := !row_sum +. v
    done;
    let absorption = -. !row_sum in
    if absorption < -1e-9 then
      invalid_arg "Phase_type.create: positive row sum in sub-generator";
    if absorption > 0. then rates := (i, n, absorption) :: !rates
  done;
  Generator.of_rates ~n:(n + 1) !rates

let create ~alpha ~sub_generator =
  let sub = Dense.of_arrays sub_generator in
  let alpha = Array.copy alpha in
  let chain = build_chain alpha sub in
  { alpha; sub; chain; absorbing = Array.length alpha }

let of_absorbing_ctmc g ~alpha =
  let n = Generator.n_states g in
  if Array.length alpha <> n then
    invalid_arg "Phase_type.of_absorbing_ctmc: alpha length";
  let absorbing = Generator.absorbing_states g in
  if absorbing = [] then
    invalid_arg "Phase_type.of_absorbing_ctmc: chain has no absorbing state";
  let is_abs = Array.make n false in
  List.iter (fun i -> is_abs.(i) <- true) absorbing;
  let transient =
    List.filter (fun i -> not is_abs.(i)) (List.init n (fun i -> i))
  in
  let index_of = Hashtbl.create 16 in
  List.iteri (fun pos i -> Hashtbl.add index_of i pos) transient;
  let m = List.length transient in
  if m = 0 then invalid_arg "Phase_type.of_absorbing_ctmc: no transient state";
  let sub = Dense.create ~rows:m ~cols:m in
  List.iteri
    (fun pos i ->
      List.iter
        (fun j ->
          match Hashtbl.find_opt index_of j with
          | Some pos_j -> Dense.set sub pos pos_j (Generator.rate g i j)
          | None -> ())
        (List.init n (fun j -> j));
      Dense.set sub pos pos (Generator.rate g i i))
    transient;
  let alpha_t = Array.of_list (List.map (fun i -> alpha.(i)) transient) in
  let chain = build_chain alpha_t sub in
  { alpha = alpha_t; sub; chain; absorbing = m }

let erlang ~k ~rate =
  if k < 1 then invalid_arg "Phase_type.erlang: need k >= 1";
  if rate <= 0. then invalid_arg "Phase_type.erlang: need positive rate";
  let sub =
    Array.init k (fun i ->
        Array.init k (fun j ->
            if i = j then -.rate
            else if j = i + 1 then rate
            else 0.))
  in
  let alpha = Array.init k (fun i -> if i = 0 then 1. else 0.) in
  create ~alpha ~sub_generator:sub

let exponential ~rate = erlang ~k:1 ~rate

let hypoexponential ~rates =
  let k = Array.length rates in
  if k = 0 then invalid_arg "Phase_type.hypoexponential: no phases";
  Array.iter
    (fun r ->
      if r <= 0. then invalid_arg "Phase_type.hypoexponential: rate <= 0")
    rates;
  let sub =
    Array.init k (fun i ->
        Array.init k (fun j ->
            if i = j then -.rates.(i)
            else if j = i + 1 then rates.(i)
            else 0.))
  in
  let alpha = Array.init k (fun i -> if i = 0 then 1. else 0.) in
  create ~alpha ~sub_generator:sub

let n_phases d = Array.length d.alpha

let full_alpha d =
  let n = n_phases d in
  let a = Array.make (n + 1) 0. in
  Array.blit d.alpha 0 a 0 n;
  a.(n) <- 1. -. Array.fold_left ( +. ) 0. d.alpha;
  if a.(n) < 0. then a.(n) <- 0.;
  a

let cdf ?accuracy d t =
  if t < 0. then 0.
  else
    let pi =
      Transient.solve
        ~opts:(Solver_opts.make ?accuracy ())
        d.chain ~alpha:(full_alpha d) ~t
    in
    pi.(d.absorbing)

let cdf_many ?accuracy d times =
  let results, _ =
    Transient.measure_sweep
      ~opts:(Solver_opts.make ?accuracy ())
      d.chain ~alpha:(full_alpha d)
      ~times:(Array.map (fun t -> Float.max t 0.) times)
      ~measure:(fun pi -> Batlife_numerics.Fvec.get pi d.absorbing)
  in
  Array.mapi (fun i r -> if times.(i) < 0. then 0. else r) results

let survival ?accuracy d t = 1. -. cdf ?accuracy d t

(* E[T^m] = (-1)^m m! alpha A^{-m} 1; compute x_1 = A^{-1} 1, then
   x_{j+1} = A^{-1} x_j. *)
let moment d m =
  if m < 1 then invalid_arg "Phase_type.moment: need m >= 1";
  let n = n_phases d in
  let ones = Array.make n 1. in
  let x = ref ones in
  for _ = 1 to m do
    x := Dense.lu_solve d.sub !x
  done;
  let sign = if m mod 2 = 0 then 1. else -1. in
  let fact = ref 1. in
  for j = 2 to m do
    fact := !fact *. float_of_int j
  done;
  sign *. !fact *. Vector.dot d.alpha !x

let mean d = moment d 1

let variance d =
  let m1 = moment d 1 in
  moment d 2 -. (m1 *. m1)

let erlang_cdf ~k ~rate t =
  if t <= 0. then 0.
  else begin
    (* P(Erlang_k <= t) = 1 - sum_{j<k} pois(rate*t; j). *)
    let lambda = rate *. t in
    let acc = ref 0. in
    for j = 0 to k - 1 do
      acc := !acc +. Special.poisson_pmf ~lambda j
    done;
    1. -. !acc
  end
