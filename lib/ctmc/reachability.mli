(** Reachability probabilities — the CTMC backbone of CSRL-style
    queries (the model-checking line of work this paper's authors
    built the KiBaMRM on; cf. their refs. [15, 16]).

    Time-bounded until is computed by making goal states absorbing and
    illegal states deadlocks, then solving the transient; unbounded
    until by solving the linear first-passage system.

    Numerical options come in as one [?opts:Solver_opts.t]:
    [opts.accuracy] (and [opts.unif_rate]) drive the transient solves
    behind the bounded queries, [opts.linear_tol] the Gauss–Seidel
    first-passage solves (default [1e-12] when unset). *)

val bounded_until :
  ?opts:Solver_opts.t ->
  Generator.t ->
  alpha:float array ->
  avoid:bool array ->
  goal:bool array ->
  t:float ->
  float
(** [P(alpha |= avoid-free U^{<= t} goal)]: probability of reaching a
    goal state within [t] along a path that never visits an avoid
    state before the goal.  A state that is both goal and avoid counts
    as goal.  Lengths must match the generator. *)

val bounded_reach :
  ?opts:Solver_opts.t ->
  Generator.t ->
  alpha:float array ->
  goal:bool array ->
  t:float ->
  float
(** Unconstrained bounded reachability ([avoid] empty). *)

val eventually :
  ?opts:Solver_opts.t ->
  Generator.t ->
  alpha:float array ->
  avoid:bool array ->
  goal:bool array ->
  float
(** Unbounded until: [P(reach goal, avoiding avoid, ever)].  Solved by
    Gauss–Seidel on the hitting-probability system; states from which
    the goal is unreachable contribute 0.  Raises [Failure] if the
    iteration does not converge. *)

val expected_hitting_time :
  ?opts:Solver_opts.t ->
  Generator.t ->
  alpha:float array ->
  goal:bool array ->
  float
(** Expected time to first reach a goal state; [infinity] if some
    initial mass can never reach the goal.  Raises [Invalid_argument]
    if no state is a goal. *)
