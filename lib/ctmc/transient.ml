open Batlife_numerics

let log_src = Logs.Src.create "batlife.transient" ~doc:"Uniformisation sweeps"

module Log = (val Logs.src_log log_src : Logs.LOG)

type stats = {
  iterations : int;
  converged_at : int option;
  uniformisation_rate : float;
  mass_residual : float;
  fg_defect : float;
  touched_nnz : int;
  active_rows : int;
  support_lo : int;
  support_hi : int;
  skipped_mass : float;
}

type sweep_progress = {
  sp_step : int;
  sp_converged : bool;
  sp_vector : float array;
  sp_values : float array array;
  sp_skipped : float;
}

(* Process-wide work counters.  They exist so tests and benchmarks can
   assert "this batch of queries cost exactly one sweep" without
   instrumenting call sites.  They are Telemetry counters now — Atomic
   cells, safe to bump from any domain — after the historical int refs
   proved racy under Pool fan-out (Par.map tasks each run sweeps).
   [touched_nnz] and [active_rows] tally the work the adaptive-support
   kernel actually performed; products * nnz minus touched_nnz is the
   work it skipped. *)
let c_sweeps = Telemetry.counter "transient.sweeps"
let c_products = Telemetry.counter "transient.products"
let c_kernel_builds = Telemetry.counter "transient.kernel_builds"
let c_touched_nnz = Telemetry.counter "transient.touched_nnz"
let c_active_rows = Telemetry.counter "transient.active_rows"

(* Kernel-corruption injection sites: a NaN or a wildly out-of-range
   value written into one vector-matrix product, the bit-flip /
   broken-BLAS class of fault the in-flight guards and the escalation
   ladder exist to catch. *)
let fi_step_nan = Fi.site "transient.step_nan"
let fi_step_overflow = Fi.site "transient.step_overflow"

let h_iterations =
  Telemetry.histogram
    ~buckets:[| 1.; 2.; 5.; 10.; 20.; 50.; 100.; 200.; 500.; 1000.; 5000. |]
    "transient.sweep_iterations"

let check_alpha g alpha =
  if Array.length alpha <> Generator.n_states g then
    invalid_arg "Transient: initial distribution has wrong length";
  Array.iter
    (fun p ->
      if p < -1e-12 then invalid_arg "Transient: negative initial probability")
    alpha

(* Time grids feed Poisson truncations: a negative, NaN or infinite
   entry would either raise deep inside the weight computation or make
   the truncation loop forever, so every sweep validates its grid up
   front and reports all offending entries in one structured error. *)
let check_times ~where times =
  let violations = ref [] in
  Array.iteri
    (fun i t ->
      if Float.is_nan t then
        violations :=
          Printf.sprintf "times.(%d) is NaN" i :: !violations
      else if not (Float.is_finite t) then
        violations :=
          Printf.sprintf "times.(%d) = %g is not finite" i t :: !violations
      else if t < 0. then
        violations :=
          Printf.sprintf "times.(%d) = %g is negative" i t :: !violations)
    times;
  match List.rev !violations with
  | [] -> ()
  | vs -> Diag.invalid_model ~what:(where ^ " time grid") vs

(* A user-supplied uniformisation rate below the largest exit rate
   makes P = I + Q/q a non-stochastic matrix (negative diagonal
   entries): the sweep would silently return garbage, so reject it
   with a structured error instead. *)
let resolve_q where ?q g =
  match q with
  | None ->
      let q = Generator.uniformisation_rate g in
      (* A NaN diagonal would make the Poisson truncation loop forever
         (NaN comparisons are all false); fail fast instead. *)
      if not (Float.is_finite q) then
        Diag.invalid_model ~what:(where ^ " uniformisation rate")
          [
            Printf.sprintf
              "generator has non-finite exit rates (uniformisation rate %g)" q;
          ];
      q
  | Some q ->
      let max_exit = Generator.max_exit_rate g in
      if (not (Float.is_finite q)) || q <= 0. then
        Diag.invalid_model ~what:(where ^ " uniformisation rate")
          [ Printf.sprintf "q = %g must be positive and finite" q ];
      if q < max_exit then
        Diag.invalid_model ~what:(where ^ " uniformisation rate")
          [
            Printf.sprintf
              "q = %g is below the largest exit rate %g; P = I + Q/q would \
               have negative entries and the sweep would silently return a \
               wrong result"
              q max_exit;
          ];
      q

let resolve_rate ?(opts = Solver_opts.default) g =
  resolve_q "Transient.resolve_rate" ?q:opts.Solver_opts.unif_rate g

(* ------------------------------------------------------------------ *)
(* The stepping kernel.

   The hot operation of every sweep is v' = v P with P = I + Q/q.  The
   scatter form (accumulate v_i * P_ij into column j, the historical
   [Sparse.vecmat_acc] path) cannot be row-partitioned: concurrent
   domains would race on the shared output columns.  So a sweep
   prepares a kernel once: the CSR {e transpose} of P, over which the
   product becomes a gather — output entry j is the dot product of
   row j of P^T with v, owned by exactly one domain, summed in a fixed
   (CSR) order.  Covering the rows with any disjoint partition then
   yields bitwise-identical results for every job count, which is what
   makes jobs a pure performance knob.

   On top of the gather sits the {e adaptive support window}: the
   iterate of a lifetime sweep is a travelling front over the charge
   grid — most rows hold no mass at any given step.  The kernel tracks
   the set of rows outside which the iterate is exactly zero as a
   sorted array of disjoint index segments, expands it each step along
   the transition structure, and computes the gather only inside it.

   Expansion uses the matrix's {e distinct displacement set} D = { dst
   - src : transitions }, collected once at build time: the rows that
   can be nonzero after a product are exactly the current segments
   shifted by each d in D (merged, clipped).  For the multi-axis grids
   of the battery models the iterate is a thin diagonal band in the
   flattened index space — a dense interval [\[lo, hi)] over-covers it
   by 2–15x, while shifted copies of the segment list preserve the
   band exactly.  When D is large ([> 64]) the kernel falls back to
   dilating each segment by the structural bandwidths (the largest
   index decrease/increase any single transition can cause), which is
   the same over-approximation the interval window used — either way
   mass can never escape the active set silently.

   Pruning is tile-granular: the support is scanned in fixed
   absolute-aligned tiles, and a tile is dropped (zeroed, its mass
   tallied into [skipped]) when every entry is at most the threshold
   and the cumulative skipped mass stays within the error budget.
   Tiles let the support shrink behind the front {e and} carve out
   interior regions the displacement shifts over-covered, at a cost
   linear in the active size — the same order as the gather itself. *)

type kernel = {
  k_states : int;
  k_rate : float;  (** the uniformisation rate [q] baked into P *)
  k_pt : Sparse.t;  (** transpose of [P = I + Q/q] *)
  k_parts : int;
  k_partition : (int * int) array;  (** full-range partition, cached *)
  k_pool : Pool.t;
  k_down : int;
      (** max index decrease a stored transition causes (src - dst) *)
  k_up : int;  (** max index increase a stored transition causes *)
  k_disp : int array;
      (** sorted distinct displacements [dst - src] of the stored
          transitions (0 always included); [\[||\]] when there are more
          than {!max_displacements}, selecting the bandwidth-interval
          fallback *)
}

(* Above this many distinct displacements, per-step dilation by
   shifted copies stops being obviously cheap and the kernel falls
   back to interval dilation.  Grid-structured models have a handful
   of displacements (one per transition kind); only genuinely
   unstructured matrices exceed this. *)
let max_displacements = 64

let kernel_for g ~q ~jobs =
  Telemetry.incr c_kernel_builds;
  Telemetry.with_span "transient.kernel_build" @@ fun () ->
  let pool = Pool.get ~jobs in
  let pt = Sparse.transpose (Generator.uniformised g ~q) in
  (* Structural shape of P: entry (r, c) of P^T is the transition
     c -> r, i.e. a displacement of d = r - c in the flattened index
     space.  One O(nnz) pass at build time collects both the extreme
     displacements (the bandwidths) and the distinct-displacement set
     that drives segment dilation for the whole sweep. *)
  let down = ref 0 and up = ref 0 in
  let disp = Hashtbl.create 64 in
  Hashtbl.replace disp 0 ();
  Sparse.iter pt (fun r c _ ->
      let d = r - c in
      if d < 0 then (if -d > !down then down := -d)
      else if d > !up then up := d;
      if not (Hashtbl.mem disp d) then Hashtbl.add disp d ());
  let disp =
    if Hashtbl.length disp > max_displacements then [||]
    else begin
      let a = Array.make (Hashtbl.length disp) 0 in
      let i = ref 0 in
      Hashtbl.iter
        (fun d () ->
          a.(!i) <- d;
          incr i)
        disp;
      Array.sort compare a;
      a
    end
  in
  let parts = Pool.size pool in
  {
    k_states = Generator.n_states g;
    k_rate = q;
    k_pt = pt;
    k_parts = parts;
    k_partition = Sparse.nnz_balanced_partition pt ~parts;
    k_pool = pool;
    k_down = !down;
    k_up = !up;
    k_disp = disp;
  }

let make_kernel ?(opts = Solver_opts.default) g =
  let q = resolve_q "Transient.make_kernel" ?q:opts.Solver_opts.unif_rate g in
  kernel_for g ~q ~jobs:(Solver_opts.resolve_jobs opts)

let kernel_rate k = k.k_rate
let kernel_jobs k = Pool.size k.k_pool
let kernel_bandwidths k = (k.k_down, k.k_up)

(* Resident-byte estimate of the kernel's own allocations: the CSR
   transpose (float64 values + int32 column stream + int row pointers)
   plus the cached partition and displacement set.  The pool is shared
   process-wide and not attributed here. *)
let kernel_bytes k =
  let nnz = Sparse.nnz k.k_pt in
  (nnz * (8 + 4))
  + (Array.length k.k_pt.Sparse.row_ptr * 8)
  + (Array.length k.k_partition * 3 * 8)
  + (Array.length k.k_disp * 8)

(* A caller-supplied kernel must have been prepared for the exact rate
   the sweep resolved, or the Poisson windows and the matrix would
   disagree on q. *)
let check_kernel ~where ~q ~opts g = function
  | Some k ->
      if k.k_states <> Generator.n_states g then
        invalid_arg
          (Printf.sprintf "%s: kernel has %d states but the generator has %d"
             where k.k_states (Generator.n_states g));
      if k.k_rate <> q then
        invalid_arg
          (Printf.sprintf
             "%s: kernel was prepared for q = %g but the sweep resolved q = %g"
             where k.k_rate q);
      k
  | None -> kernel_for g ~q ~jobs:(Solver_opts.resolve_jobs opts)

(* ------------------------------------------------------------------ *)
(* Segmented working vectors.

   A [buf] pairs a flat Fvec with its support: [segs] is a sorted
   array of disjoint half-open index segments, and the invariant,
   maintained by every operation below, is that the vector is exactly
   [0.] outside them.  [blo, bhi) is the segments' hull, kept for the
   mass guards and the reported stats.  All segment boundaries are
   aligned to a fixed tile grid (except where clipped at the state
   count), which is what lets a resumed sweep rebuild the exact live
   support from the stored vector alone: the pruner drops every
   all-zero tile it scans, so the live support is precisely the set of
   tiles holding a nonzero. *)

type buf = {
  v : Fvec.t;
  mutable blo : int;
  mutable bhi : int;
  mutable segs : (int * int) array;
}

(* The tile grid: coarse enough that the per-tile max/sum scan
   amortises, fine enough to hug a travelling front.  Derived from the
   state count alone so every consumer (dilation alignment, pruning,
   support recovery on resume) agrees on the grid. *)
let tile_width n = Int.max 8 (Int.min 64 (n / 1024))

let seg_hull = function
  | [||] -> (0, 0)
  | segs -> (fst segs.(0), snd segs.(Array.length segs - 1))

(* Merge a lo-sorted segment array: overlapping or exactly adjacent
   segments coalesce, so the result is disjoint, sorted and minimal. *)
let merge_segs segs =
  let m = Array.length segs in
  if m <= 1 then segs
  else begin
    let out = ref [] in
    let clo = ref (fst segs.(0)) and chi = ref (snd segs.(0)) in
    for i = 1 to m - 1 do
      let lo, hi = segs.(i) in
      if lo <= !chi then (if hi > !chi then chi := hi)
      else begin
        out := (!clo, !chi) :: !out;
        clo := lo;
        chi := hi
      end
    done;
    out := (!clo, !chi) :: !out;
    Array.of_list (List.rev !out)
  end

(* The support of an arbitrary vector, as tile-aligned segments: a
   tile survives iff it holds an entry that is not exactly [0.] (NaN
   counts — it must stay visible to the guards).  Used to seed a sweep
   from alpha and to restore the live support of a checkpointed
   iterate; because the pruner below never leaves an all-zero tile
   active, this reproduces the interrupted sweep's support exactly. *)
let segs_of_nonzeros v =
  let n = Fvec.length v in
  let tile = tile_width n in
  let lo0, hi0 = Fvec.nonzero_extent v in
  let kept = ref [] in
  let t = ref (lo0 / tile * tile) in
  while !t < hi0 do
    let hi = min n (!t + tile) in
    let occupied = ref false in
    let i = ref (max !t lo0) in
    while (not !occupied) && !i < hi do
      if Fvec.unsafe_get v !i <> 0. then occupied := true;
      incr i
    done;
    if !occupied then kept := (!t, hi) :: !kept;
    t := hi
  done;
  merge_segs (Array.of_list (List.rev !kept))

(* Rows that can be nonzero after one product: the source segments
   shifted by every distinct displacement (or dilated by the
   bandwidths when the displacement set overflowed), aligned out to
   the tile grid, clipped to [\[0, n)], sorted and merged.  This is an
   over-approximation of the true next support — any row outside it
   has all its P^T entries anchored at exact-zero sources — so rows
   outside stay exact zeros and nothing escapes silently. *)
let dilate_segs k segs =
  let n = k.k_states in
  if Array.length segs = 0 then [||]
  else begin
    let tile = tile_width n in
    let shifted =
      if Array.length k.k_disp > 0 then
        Array.concat
          (Array.to_list
             (Array.map
                (fun d -> Array.map (fun (lo, hi) -> (lo + d, hi + d)) segs)
                k.k_disp))
      else Array.map (fun (lo, hi) -> (lo - k.k_down, hi + k.k_up)) segs
    in
    let aligned =
      Array.map
        (fun (lo, hi) ->
          let lo = max 0 lo and hi = min n hi in
          if hi <= lo then (0, 0)
          else (lo / tile * tile, min n ((hi + tile - 1) / tile * tile)))
        shifted
    in
    let live = Array.of_list (List.filter (fun (lo, hi) -> hi > lo) (Array.to_list aligned)) in
    Array.sort compare live;
    merge_segs live
  end

(* Zero the parts of [dst]'s previous support the coming gather will
   not overwrite, so stale mass from two steps ago can never leak
   back in.  Both segment arrays are sorted, so one forward walk
   subtracts the new cover from the old. *)
let zero_stale dst ~active =
  let na = Array.length active in
  let j = ref 0 in
  Array.iter
    (fun (olo, ohi) ->
      let pos = ref olo in
      while !pos < ohi do
        while !j < na && snd active.(!j) <= !pos do
          incr j
        done;
        if !j >= na || fst active.(!j) >= ohi then begin
          Fvec.fill_range dst.v ~lo:!pos ~hi:ohi 0.;
          pos := ohi
        end
        else begin
          let alo, ahi = active.(!j) in
          if alo > !pos then Fvec.fill_range dst.v ~lo:!pos ~hi:alo 0.;
          pos := min ohi ahi
        end
      done)
    dst.segs

(* nnz-balanced chunks covering exactly the active segments, the
   segmented analogue of {!Sparse.nnz_balanced_partition} (same
   nnz-plus-one row weight).  Chunk boundaries never straddle a
   segment, so every chunk is a contiguous row range the gather can
   own; producing a few more chunks than workers is fine —
   {!Pool.run_chunks} assigns chunk [i] to worker [i mod size], and
   the values are bitwise independent of the partition anyway. *)
let partition_segs pt segs ~parts =
  let row_ptr = pt.Sparse.row_ptr in
  let weight lo hi = row_ptr.(hi) - row_ptr.(lo) + (hi - lo) in
  let total = Array.fold_left (fun acc (lo, hi) -> acc + weight lo hi) 0 segs in
  let target = max 1 ((total + parts - 1) / parts) in
  let chunks = ref [] in
  Array.iter
    (fun (slo, shi) ->
      let lo = ref slo and acc = ref 0 in
      for r = slo to shi - 1 do
        acc := !acc + (row_ptr.(r + 1) - row_ptr.(r)) + 1;
        if !acc >= target && r + 1 < shi then begin
          chunks := (!lo, r + 1) :: !chunks;
          lo := r + 1;
          acc := 0
        end
      done;
      if !lo < shi then chunks := (!lo, shi) :: !chunks)
    segs;
  Array.of_list (List.rev !chunks)

(* One uniformised step: v' = v P, as a gather over the transposed
   matrix restricted to the active segments.  Every active dst entry
   is (over)written by exactly one chunk; the chunk-to-worker
   assignment and the in-row summation order are fixed, so the result
   is bitwise independent of the job count.  Returns the (touched
   nonzeros, active rows) work tally of this product. *)
let step_window k ~src ~dst ~adaptive =
  Telemetry.incr c_products;
  let n = k.k_states in
  let active = if not adaptive then [| (0, n) |] else dilate_segs k src.segs in
  zero_stale dst ~active;
  if Array.length active > 0 then begin
    let partition =
      if not adaptive then k.k_partition
      else partition_segs k.k_pt active ~parts:k.k_parts
    in
    (* Supervised: a worker crash mid-product re-runs its partition
       (the chunks write disjoint, deterministic ranges of dst, so the
       re-run is bitwise identical) instead of killing the sweep. *)
    Pool.run_chunks ~supervise:true k.k_pool partition (fun ~lo ~hi ->
        Sparse.matvec_rows k.k_pt src.v ~dst:dst.v ~lo ~hi)
  end;
  dst.segs <- active;
  let wlo, whi = seg_hull active in
  dst.blo <- wlo;
  dst.bhi <- whi;
  let touched = ref 0 and rows = ref 0 in
  Array.iter
    (fun (lo, hi) ->
      touched := !touched + Sparse.range_nnz k.k_pt ~lo ~hi;
      rows := !rows + (hi - lo))
    active;
  Telemetry.add c_touched_nnz !touched;
  Telemetry.add c_active_rows !rows;
  if Fi.enabled () then begin
    let at = if wlo < whi then wlo else 0 in
    if Fi.fires fi_step_nan then Fvec.set dst.v at Float.nan;
    if Fi.fires fi_step_overflow then Fvec.set dst.v at 1e30
  end;
  (!touched, !rows)

(* Tile-granular pruning: every active tile whose max magnitude is at
   most [tau] AND whose mass fits the remaining skipped-mass cap is
   dropped — zeroed, its mass added to [skipped] — and the surviving
   tiles become the new support.  All-zero tiles always qualify at
   zero cost, so the support never retains a tile without a nonzero
   (the property resume relies on).  With [tau = 0.] only exact zeros
   are consumed and [skipped] stays [+0.], which is what makes the
   threshold-0 adaptive sweep bitwise identical to the full-support
   kernel.  NaN never satisfies the comparisons, so an injected NaN
   survives for the mass guard to catch. *)
let prune_segments b ~tau ~cap ~skipped =
  let n = Fvec.length b.v in
  let tile = tile_width n in
  let kept = ref [] in
  Array.iter
    (fun (slo, shi) ->
      let t = ref slo in
      while !t < shi do
        let hi = min shi (((!t / tile) + 1) * tile) in
        let mx = ref 0. and sm = ref 0. in
        for i = !t to hi - 1 do
          let ax = Float.abs (Fvec.unsafe_get b.v i) in
          if not (ax <= !mx) then mx := ax;
          sm := !sm +. ax
        done;
        if !mx <= tau && !skipped +. !sm <= cap then begin
          if !sm > 0. then begin
            skipped := !skipped +. !sm;
            Fvec.fill_range b.v ~lo:!t ~hi 0.
          end
        end
        else kept := (!t, hi) :: !kept;
        t := hi
      done)
    b.segs;
  let segs = merge_segs (Array.of_list (List.rev !kept)) in
  b.segs <- segs;
  let lo, hi = seg_hull segs in
  b.blo <- lo;
  b.bhi <- hi

(* The error-budget split.  Fox–Glynn truncation already spends up to
   [accuracy] (its defect is audited against it); the adaptive kernel
   gets an {e additional} skipped-mass allowance of [accuracy / 2],
   spread uniformly over the sweep's steps: the auto threshold is the
   per-step share [budget / (n_max + 1)], so a step that prunes a few
   edge entries at the threshold stays on budget, and the running
   tally is hard-capped by [budget_skip] regardless — correctness
   never depends on the threshold, only greediness does.  The sweep
   additionally prorates the cap over steps (step m may only have
   consumed the fraction [m / n_max] of it) so the spend rate is
   sustainable end-to-end rather than front-loaded — the tile pruner
   can see many sub-threshold tiles in one step, and without the rate
   limit a greedy early step would exhaust the whole budget and the
   support could never shrink again.  (Dividing the budget by the
   state count instead would be sound but hopelessly conservative.)
   A caller-supplied threshold keeps the
   same cap unless it is so large the cap would be unreachable, in
   which case the cap scales with the threshold (and the documented
   deviation bound scales with it — reported in {!stats.skipped_mass}
   either way). *)
let resolve_pruning ~opts ~n_max =
  if not opts.Solver_opts.adaptive_support then (0., 0.)
  else begin
    let steps = float_of_int (n_max + 1) in
    let tau =
      match opts.Solver_opts.support_threshold with
      | Some tau -> tau
      | None -> 0.5 *. opts.Solver_opts.accuracy /. steps
    in
    let budget_skip =
      Float.max (opts.Solver_opts.accuracy /. 2.) (tau *. steps)
    in
    (tau, budget_skip)
  end

(* In-flight guardrail for the uniformised power sweep: the iterate is
   a probability vector, so its mass — the window sum plus whatever
   the pruner deliberately skipped — must stay at the initial mass
   (the expanded generators conserve it exactly up to roundoff) and
   every entry must stay finite.  A violation beyond [mass_tolerance]
   means the generator rows do not sum to zero or the arithmetic broke
   down; propagating further would only weight garbage by Poisson
   factors. *)
let mass_tolerance = 1e-6

let guard_iterate ~where ~mass0 ~step ~skipped b =
  let mass = Fvec.sum_range b.v ~lo:b.blo ~hi:b.bhi +. skipped in
  if not (Float.is_finite mass) then
    Diag.breakdown ~where
      "non-finite probability entries at uniformisation step %d" step;
  if Float.abs (mass -. mass0) > mass_tolerance *. Float.max 1. mass0 then
    Diag.breakdown ~where
      "probability mass drifted from %g to %g at uniformisation step %d \
       (tolerance %g): the generator's row sums are not zero"
      mass0 mass step mass_tolerance;
  ()

(* A-posteriori self-verification of a completed sweep.  The in-flight
   guards catch faults the step they happen; this pass re-derives the
   invariants from the sweep's outputs — final-iterate mass
   conservation (window sum plus skipped mass), the skipped-mass
   budget of the adaptive kernel, and the Fox–Glynn truncation
   accounting of every window — so a fault that slipped between the
   per-step checks (or a bug in them) still cannot leave the sweep's
   results standing.  The audited quantities are returned and exposed
   in {!stats}. *)
let verify_sweep ~where ~accuracy ~mass0 ~windows ~skipped ~budget_skip b =
  let mass = Fvec.sum_range b.v ~lo:b.blo ~hi:b.bhi +. skipped in
  if not (Float.is_finite mass) then
    Diag.breakdown ~where
      "a-posteriori check: final iterate has non-finite probability mass";
  let mass_residual = Float.abs (mass -. mass0) in
  if mass_residual > mass_tolerance *. Float.max 1. mass0 then
    Diag.breakdown ~where
      "a-posteriori check: probability mass %g drifted from %g by %g \
       (tolerance %g)"
      mass mass0 mass_residual mass_tolerance;
  if skipped > budget_skip then
    Diag.breakdown ~where
      "a-posteriori check: adaptive support skipped %g of probability mass, \
       exceeding its error budget %g"
      skipped budget_skip;
  let fg_defect = ref 0. in
  Array.iter
    (fun w ->
      fg_defect := Float.max !fg_defect w.Poisson.defect;
      let total = Poisson.total w in
      if Float.abs (total -. 1.) > 1e-9 then
        Diag.breakdown ~where
          "a-posteriori check: Fox–Glynn window sums to %.17g after \
           renormalisation"
          total)
    windows;
  if !fg_defect > accuracy then
    Diag.breakdown ~where
      "a-posteriori check: Fox–Glynn truncation defect %g exceeds the \
       requested accuracy %g"
      !fg_defect accuracy;
  (mass_residual, !fg_defect)

let checked_measure ~where measure ~step v =
  let value = measure v in
  if Float.is_nan value then
    Diag.breakdown ~where "measure returned NaN at uniformisation step %d" step;
  value

(* Working vectors of a sweep: reuse caller-provided buffers (the
   session fast path — no per-call allocation) or allocate a fresh
   pair.  The first buffer is seeded with alpha either way; an
   adaptive sweep starts from the tile-aligned support of alpha, a
   full-support one from [\[0, n)]. *)
let sweep_buffers ~where ~n ~alpha ~adaptive buffers =
  let a, b =
    match buffers with
    | None -> (Fvec.of_array alpha, Fvec.create n)
    | Some (a, b) ->
        if Fvec.length a <> n || Fvec.length b <> n then
          invalid_arg (where ^ ": buffers have wrong length");
        Fvec.blit_from_array ~src:alpha ~dst:a;
        Fvec.fill b 0.;
        (a, b)
  in
  let asegs = if adaptive then segs_of_nonzeros a else [| (0, n) |] in
  let bsegs = if adaptive then [||] else [| (0, n) |] in
  let alo, ahi = seg_hull asegs in
  let blo, bhi = seg_hull bsegs in
  ( { v = a; blo = alo; bhi = ahi; segs = asegs },
    { v = b; blo; bhi; segs = bsegs } )

let solve ?(opts = Solver_opts.default) g ~alpha ~t =
  check_alpha g alpha;
  let where = "Transient.solve" in
  check_times ~where [| t |];
  Solver_opts.request_telemetry opts;
  Telemetry.incr c_sweeps;
  Telemetry.with_span "transient.solve" @@ fun () ->
  let n = Generator.n_states g in
  let q = resolve_q where ?q:opts.Solver_opts.unif_rate g in
  let budget = Solver_opts.resolve_budget opts in
  Budget.note_sweep budget;
  Budget.check ~what:where budget;
  let weights = Poisson.weights ~accuracy:opts.Solver_opts.accuracy (q *. t) in
  let kernel = kernel_for g ~q ~jobs:(Solver_opts.resolve_jobs opts) in
  (* The caller gets the full distribution, so this path keeps the
     exact full-support kernel; the adaptive window serves the batched
     measure engine, whose outputs are scalars. *)
  let v, v' = sweep_buffers ~where ~n ~alpha ~adaptive:false None in
  let out = Vector.create n in
  let current = ref v and scratch = ref v' in
  for m = 0 to weights.Poisson.right do
    if m > 0 then begin
      Budget.note_product budget;
      Budget.check ~what:where budget;
      ignore (step_window kernel ~src:!current ~dst:!scratch ~adaptive:false);
      let t = !current in
      current := !scratch;
      scratch := t
    end;
    let w = Poisson.prob weights m in
    if w > 0. then Fvec.axpy_array ~alpha:w ~x:(!current).v ~y:out
  done;
  (* NaN and mass drift both persist in the final power iterate (the
     weighted output is only accurate to the Poisson truncation, so it
     is not the thing to check). *)
  guard_iterate ~where ~mass0:(Vector.sum alpha) ~step:weights.Poisson.right
    ~skipped:0. !current;
  Telemetry.observe_int h_iterations weights.Poisson.right;
  out

let check_windows ~where ~times = function
  | None -> None
  | Some windows ->
      if Array.length windows <> Array.length times then
        invalid_arg (where ^ ": windows and times have different lengths");
      Some windows

(* The batched engine: the sequence v_n = alpha P^n is walked ONCE and
   every registered linear functional is evaluated at every step; each
   (measure, time) result is then a Poisson-weighted scalar sum.  Any
   number of measures and time points therefore cost a single power
   sweep.

   [progress] is invoked after every completed step with a lazy
   snapshot thunk (the copy is only paid when the caller decides to
   checkpoint); [on_interrupt] is invoked with a final snapshot right
   before a budget/cancellation error is raised, so the caller can
   flush a checkpoint covering all completed work; [resume] restores a
   snapshot and continues the walk at the next step.  A resumed sweep
   performs the identical sequence of products, guards, measures and
   convergence tests the uninterrupted sweep would have performed from
   that step on — the support of a restored iterate is rebuilt by the
   same tile scan whose output the pruner maintains live (no active
   tile is ever all-zero) — which is what makes resumed results
   bitwise equal. *)
let multi_measure_sweep ?(opts = Solver_opts.default) ?windows ?buffers ?kernel
    ?(progress = Progress.none) g ~alpha ~times ~measures =
  let { Progress.on_step; on_interrupt; resume } = progress in
  check_alpha g alpha;
  let where = "Transient.multi_measure_sweep" in
  check_times ~where times;
  Solver_opts.request_telemetry opts;
  Telemetry.incr c_sweeps;
  Telemetry.with_span "transient.multi_measure_sweep" @@ fun () ->
  let n = Generator.n_states g in
  let q = resolve_q where ?q:opts.Solver_opts.unif_rate g in
  let budget = Solver_opts.resolve_budget opts in
  Budget.note_sweep budget;
  let kernel = check_kernel ~where ~q ~opts g kernel in
  (* Poisson windows per time point; the sweep must reach the largest
     right truncation point (unless stationarity is detected first). *)
  let windows =
    match check_windows ~where ~times windows with
    | Some windows -> windows
    | None ->
        Array.map
          (fun t -> Poisson.weights ~accuracy:opts.Solver_opts.accuracy (q *. t))
          times
  in
  let n_max =
    Array.fold_left (fun acc w -> max acc w.Poisson.right) 0 windows
  in
  let adaptive = opts.Solver_opts.adaptive_support in
  let tau, budget_skip = resolve_pruning ~opts ~n_max in
  let mass0 = Vector.sum alpha in
  let k = Array.length measures in
  (* vals.(j).(m) is measure j evaluated on the step-m iterate. *)
  let vals = Array.make_matrix k (n_max + 1) 0. in
  let v, v' = sweep_buffers ~where ~n ~alpha ~adaptive buffers in
  let current = ref v and scratch = ref v' in
  let skipped = ref 0. in
  let total_touched = ref 0 and total_rows = ref 0 in
  let record m v =
    for j = 0 to k - 1 do
      vals.(j).(m) <- checked_measure ~where measures.(j) ~step:m v
    done
  in
  let converged_at = ref None in
  let start =
    match resume with
    | None ->
        record 0 (!current).v;
        1
    | Some r ->
        if Array.length r.sp_vector <> n then
          invalid_arg (where ^ ": resume vector has wrong length");
        if Array.length r.sp_values <> k then
          invalid_arg (where ^ ": resume has wrong measure count");
        if r.sp_step < 0 || r.sp_step > n_max then
          invalid_arg
            (Printf.sprintf "%s: resume step %d outside [0, %d]" where
               r.sp_step n_max);
        if Float.is_nan r.sp_skipped || r.sp_skipped < 0. then
          invalid_arg (where ^ ": resume skipped mass is invalid");
        Array.iteri
          (fun j row ->
            if Array.length row <> r.sp_step + 1 then
              invalid_arg (where ^ ": resume values have wrong length");
            Array.blit row 0 vals.(j) 0 (r.sp_step + 1))
          r.sp_values;
        Fvec.blit_from_array ~src:r.sp_vector ~dst:(!current).v;
        (* The pruner zeroes everything it drops and never leaves an
           all-zero tile active, so the stored vector's occupied tiles
           ARE the live support of the interrupted sweep. *)
        let segs =
          if adaptive then segs_of_nonzeros (!current).v else [| (0, n) |]
        in
        let lo, hi = seg_hull segs in
        (!current).segs <- segs;
        (!current).blo <- lo;
        (!current).bhi <- hi;
        skipped := r.sp_skipped;
        if r.sp_converged then converged_at := Some r.sp_step;
        r.sp_step + 1
  in
  let snapshot_at ~step:s ~converged () =
    {
      sp_step = s;
      sp_converged = converged;
      sp_vector = Fvec.to_array (!current).v;
      sp_values = Array.map (fun row -> Array.sub row 0 (s + 1)) vals;
      sp_skipped = !skipped;
    }
  in
  let m = ref start in
  while !m <= n_max && Option.is_none !converged_at do
    Budget.note_product budget;
    (match Budget.peek ~what:where budget with
    | None -> ()
    | Some e ->
        (match on_interrupt with
        | Some f -> f (snapshot_at ~step:(!m - 1) ~converged:false ())
        | None -> ());
        Diag.fail e);
    let touched, rows = step_window kernel ~src:!current ~dst:!scratch ~adaptive in
    total_touched := !total_touched + touched;
    total_rows := !total_rows + rows;
    if adaptive then begin
      (* Prorate the cap: after step m the cumulative skipped mass may
         use at most the fraction m / n_max of the total budget.  A
         greedy threshold front-loads its pruning; without the rate
         limit it can exhaust the whole budget in the early steps, and
         the window then never shrinks again for the rest of the sweep
         — costing MORE total work than a conservative threshold.  The
         proration depends only on m and n_max, so a resumed sweep
         reproduces it bitwise. *)
      let cap =
        budget_skip *. float_of_int !m /. float_of_int (max 1 n_max)
      in
      prune_segments !scratch ~tau ~cap ~skipped
    end;
    let ulo = min (!current).blo (!scratch).blo
    and uhi = max (!current).bhi (!scratch).bhi in
    let drift = Fvec.dist_inf_range (!current).v (!scratch).v ~lo:ulo ~hi:uhi in
    let t = !current in
    current := !scratch;
    scratch := t;
    guard_iterate ~where ~mass0 ~step:!m ~skipped:!skipped !current;
    record !m (!current).v;
    if drift <= opts.Solver_opts.convergence_tol then converged_at := Some !m;
    (match on_step with
    | Some f ->
        f ~step:!m
          ~snapshot:
            (snapshot_at ~step:!m ~converged:(Option.is_some !converged_at))
    | None -> ());
    incr m
  done;
  (* If the chain became stationary, later measures are constant. *)
  (match !converged_at with
  | Some at ->
      for j = 0 to k - 1 do
        for i = at + 1 to n_max do
          vals.(j).(i) <- vals.(j).(at)
        done
      done
  | None -> ());
  let iterations = match !converged_at with Some at -> at | None -> n_max in
  Log.debug (fun f ->
      f "multi-measure sweep: %d states, %d measures, %d times, q=%g, %d \
         iterations%s, window [%d, %d), touched %d nnz, skipped mass %g"
        n k (Array.length times) q iterations
        (match !converged_at with
        | Some at -> Printf.sprintf " (stationary after %d)" at
        | None -> "")
        (!current).blo (!current).bhi !total_touched !skipped);
  Telemetry.observe_int h_iterations iterations;
  let mass_residual, fg_defect =
    verify_sweep ~where ~accuracy:opts.Solver_opts.accuracy ~mass0 ~windows
      ~skipped:!skipped ~budget_skip !current
  in
  let results =
    Array.map
      (fun per_step ->
        Array.map
          (fun w ->
            Poisson.fold w ~init:0. ~f:(fun acc m weight ->
                acc +. (weight *. per_step.(m))))
          windows)
      vals
  in
  ( results,
    {
      iterations;
      converged_at = !converged_at;
      uniformisation_rate = q;
      mass_residual;
      fg_defect;
      touched_nnz = !total_touched;
      active_rows = !total_rows;
      support_lo = (!current).blo;
      support_hi = (!current).bhi;
      skipped_mass = !skipped;
    } )

let measure_sweep ?opts ?windows ?buffers ?kernel ?progress g ~alpha ~times
    ~measure =
  let results, stats =
    multi_measure_sweep ?opts ?windows ?buffers ?kernel ?progress g ~alpha
      ~times ~measures:[| measure |]
  in
  (results.(0), stats)

let distribution_sweep ?(opts = Solver_opts.default) g ~alpha ~times =
  check_alpha g alpha;
  let where = "Transient.distribution_sweep" in
  check_times ~where times;
  Solver_opts.request_telemetry opts;
  Telemetry.incr c_sweeps;
  Telemetry.with_span "transient.distribution_sweep" @@ fun () ->
  let n = Generator.n_states g in
  let q = resolve_q where ?q:opts.Solver_opts.unif_rate g in
  let budget = Solver_opts.resolve_budget opts in
  Budget.note_sweep budget;
  Budget.check ~what:where budget;
  let kernel = kernel_for g ~q ~jobs:(Solver_opts.resolve_jobs opts) in
  let windows =
    Array.map
      (fun t -> Poisson.weights ~accuracy:opts.Solver_opts.accuracy (q *. t))
      times
  in
  let n_max =
    Array.fold_left (fun acc w -> max acc w.Poisson.right) 0 windows
  in
  let mass0 = Vector.sum alpha in
  let outs = Array.map (fun _ -> Vector.create n) times in
  (* Full per-time distributions are the deliverable here, so the
     exact full-support kernel is kept (as in {!solve}). *)
  let v, v' = sweep_buffers ~where ~n ~alpha ~adaptive:false None in
  let current = ref v and scratch = ref v' in
  let total_touched = ref 0 and total_rows = ref 0 in
  for m = 0 to n_max do
    if m > 0 then begin
      Budget.note_product budget;
      Budget.check ~what:where budget;
      let touched, rows =
        step_window kernel ~src:!current ~dst:!scratch ~adaptive:false
      in
      total_touched := !total_touched + touched;
      total_rows := !total_rows + rows;
      let t = !current in
      current := !scratch;
      scratch := t;
      guard_iterate ~where ~mass0 ~step:m ~skipped:0. !current
    end;
    Array.iteri
      (fun idx w ->
        let weight = Poisson.prob w m in
        if weight > 0. then
          Fvec.axpy_array ~alpha:weight ~x:(!current).v ~y:outs.(idx))
      windows
  done;
  Telemetry.observe_int h_iterations n_max;
  let mass_residual, fg_defect =
    verify_sweep ~where ~accuracy:opts.Solver_opts.accuracy ~mass0 ~windows
      ~skipped:0. ~budget_skip:0. !current
  in
  ( outs,
    {
      iterations = n_max;
      converged_at = None;
      uniformisation_rate = q;
      mass_residual;
      fg_defect;
      touched_nnz = !total_touched;
      active_rows = !total_rows;
      support_lo = 0;
      support_hi = n;
      skipped_mass = 0.;
    } )

let expected_hitting_mass ?opts g ~alpha ~states ~t =
  let pi = solve ?opts g ~alpha ~t in
  List.fold_left (fun acc i -> acc +. pi.(i)) 0. states
