open Batlife_numerics

let log_src = Logs.Src.create "batlife.transient" ~doc:"Uniformisation sweeps"

module Log = (val Logs.src_log log_src : Logs.LOG)

type stats = {
  iterations : int;
  converged_at : int option;
  uniformisation_rate : float;
  mass_residual : float;
  fg_defect : float;
}

type sweep_progress = {
  sp_step : int;
  sp_converged : bool;
  sp_vector : float array;
  sp_values : float array array;
}

(* Process-wide work counters.  They exist so tests and benchmarks can
   assert "this batch of queries cost exactly one sweep" without
   instrumenting call sites.  They are Telemetry counters now — Atomic
   cells, safe to bump from any domain — after the historical int refs
   proved racy under Pool fan-out (Par.map tasks each run sweeps). *)
let c_sweeps = Telemetry.counter "transient.sweeps"
let c_products = Telemetry.counter "transient.products"
let c_kernel_builds = Telemetry.counter "transient.kernel_builds"

(* Kernel-corruption injection sites: a NaN or a wildly out-of-range
   value written into one vector-matrix product, the bit-flip /
   broken-BLAS class of fault the in-flight guards and the escalation
   ladder exist to catch. *)
let fi_step_nan = Fi.site "transient.step_nan"
let fi_step_overflow = Fi.site "transient.step_overflow"

let h_iterations =
  Telemetry.histogram
    ~buckets:[| 1.; 2.; 5.; 10.; 20.; 50.; 100.; 200.; 500.; 1000.; 5000. |]
    "transient.sweep_iterations"

let check_alpha g alpha =
  if Array.length alpha <> Generator.n_states g then
    invalid_arg "Transient: initial distribution has wrong length";
  Array.iter
    (fun p ->
      if p < -1e-12 then invalid_arg "Transient: negative initial probability")
    alpha

(* Time grids feed Poisson truncations: a negative, NaN or infinite
   entry would either raise deep inside the weight computation or make
   the truncation loop forever, so every sweep validates its grid up
   front and reports all offending entries in one structured error. *)
let check_times ~where times =
  let violations = ref [] in
  Array.iteri
    (fun i t ->
      if Float.is_nan t then
        violations :=
          Printf.sprintf "times.(%d) is NaN" i :: !violations
      else if not (Float.is_finite t) then
        violations :=
          Printf.sprintf "times.(%d) = %g is not finite" i t :: !violations
      else if t < 0. then
        violations :=
          Printf.sprintf "times.(%d) = %g is negative" i t :: !violations)
    times;
  match List.rev !violations with
  | [] -> ()
  | vs -> Diag.invalid_model ~what:(where ^ " time grid") vs

(* A user-supplied uniformisation rate below the largest exit rate
   makes P = I + Q/q a non-stochastic matrix (negative diagonal
   entries): the sweep would silently return garbage, so reject it
   with a structured error instead. *)
let resolve_q where ?q g =
  match q with
  | None ->
      let q = Generator.uniformisation_rate g in
      (* A NaN diagonal would make the Poisson truncation loop forever
         (NaN comparisons are all false); fail fast instead. *)
      if not (Float.is_finite q) then
        Diag.invalid_model ~what:(where ^ " uniformisation rate")
          [
            Printf.sprintf
              "generator has non-finite exit rates (uniformisation rate %g)" q;
          ];
      q
  | Some q ->
      let max_exit = Generator.max_exit_rate g in
      if (not (Float.is_finite q)) || q <= 0. then
        Diag.invalid_model ~what:(where ^ " uniformisation rate")
          [ Printf.sprintf "q = %g must be positive and finite" q ];
      if q < max_exit then
        Diag.invalid_model ~what:(where ^ " uniformisation rate")
          [
            Printf.sprintf
              "q = %g is below the largest exit rate %g; P = I + Q/q would \
               have negative entries and the sweep would silently return a \
               wrong result"
              q max_exit;
          ];
      q

let resolve_rate ?(opts = Solver_opts.default) g =
  resolve_q "Transient.resolve_rate" ?q:opts.Solver_opts.unif_rate g

(* ------------------------------------------------------------------ *)
(* The stepping kernel.

   The hot operation of every sweep is v' = v P with P = I + Q/q.  The
   scatter form (accumulate v_i * P_ij into column j, the historical
   [Sparse.vecmat_acc] path) cannot be row-partitioned: concurrent
   domains would race on the shared output columns.  So a sweep
   prepares a kernel once: the CSR {e transpose} of P, over which the
   product becomes a gather — output entry j is the dot product of
   row j of P^T with v, owned by exactly one domain, summed in a fixed
   (CSR) order.  Covering the rows with any disjoint partition then
   yields bitwise-identical results for every job count, which is what
   makes jobs a pure performance knob. *)

type kernel = {
  k_states : int;
  k_rate : float;  (** the uniformisation rate [q] baked into P *)
  k_pt : Sparse.t;  (** transpose of [P = I + Q/q] *)
  k_partition : (int * int) array;  (** nnz-balanced row ranges of [k_pt] *)
  k_pool : Pool.t;
}

let kernel_for g ~q ~jobs =
  Telemetry.incr c_kernel_builds;
  Telemetry.with_span "transient.kernel_build" @@ fun () ->
  let pool = Pool.get ~jobs in
  let pt = Sparse.transpose (Generator.uniformised g ~q) in
  {
    k_states = Generator.n_states g;
    k_rate = q;
    k_pt = pt;
    k_partition = Sparse.nnz_balanced_partition pt ~parts:(Pool.size pool);
    k_pool = pool;
  }

let make_kernel ?(opts = Solver_opts.default) g =
  let q = resolve_q "Transient.make_kernel" ?q:opts.Solver_opts.unif_rate g in
  kernel_for g ~q ~jobs:(Solver_opts.resolve_jobs opts)

let kernel_rate k = k.k_rate
let kernel_jobs k = Pool.size k.k_pool

(* A caller-supplied kernel must have been prepared for the exact rate
   the sweep resolved, or the Poisson windows and the matrix would
   disagree on q. *)
let check_kernel ~where ~q ~opts g = function
  | Some k ->
      if k.k_states <> Generator.n_states g then
        invalid_arg
          (Printf.sprintf "%s: kernel has %d states but the generator has %d"
             where k.k_states (Generator.n_states g));
      if k.k_rate <> q then
        invalid_arg
          (Printf.sprintf
             "%s: kernel was prepared for q = %g but the sweep resolved q = %g"
             where k.k_rate q);
      k
  | None -> kernel_for g ~q ~jobs:(Solver_opts.resolve_jobs opts)

(* In-flight guardrail for the uniformised power sweep: the iterate is
   a probability vector, so its mass must stay at the initial mass (the
   expanded generators conserve it exactly up to roundoff) and every
   entry must stay finite.  A violation beyond [mass_tolerance] means
   the generator rows do not sum to zero or the arithmetic broke down;
   propagating further would only weight garbage by Poisson factors. *)
let mass_tolerance = 1e-6

let guard_iterate ~where ~mass0 ~step v =
  let mass = ref 0. in
  for i = 0 to Array.length v - 1 do
    mass := !mass +. v.(i)
  done;
  if not (Float.is_finite !mass) then
    Diag.breakdown ~where
      "non-finite probability entries at uniformisation step %d" step;
  if Float.abs (!mass -. mass0) > mass_tolerance *. Float.max 1. mass0 then
    Diag.breakdown ~where
      "probability mass drifted from %g to %g at uniformisation step %d \
       (tolerance %g): the generator's row sums are not zero"
      mass0 !mass step mass_tolerance;
  ()

(* A-posteriori self-verification of a completed sweep.  The in-flight
   guards catch faults the step they happen; this pass re-derives the
   invariants from the sweep's outputs — final-iterate mass
   conservation and the Fox–Glynn truncation accounting of every
   window — so a fault that slipped between the per-step checks (or a
   bug in them) still cannot leave the sweep's results standing.  The
   audited quantities are returned and exposed in {!stats}. *)
let verify_sweep ~where ~accuracy ~mass0 ~windows final =
  let mass = Vector.sum final in
  if not (Float.is_finite mass) then
    Diag.breakdown ~where
      "a-posteriori check: final iterate has non-finite probability mass";
  let mass_residual = Float.abs (mass -. mass0) in
  if mass_residual > mass_tolerance *. Float.max 1. mass0 then
    Diag.breakdown ~where
      "a-posteriori check: probability mass %g drifted from %g by %g \
       (tolerance %g)"
      mass mass0 mass_residual mass_tolerance;
  let fg_defect = ref 0. in
  Array.iter
    (fun w ->
      fg_defect := Float.max !fg_defect w.Poisson.defect;
      let total = Poisson.total w in
      if Float.abs (total -. 1.) > 1e-9 then
        Diag.breakdown ~where
          "a-posteriori check: Fox–Glynn window sums to %.17g after \
           renormalisation"
          total)
    windows;
  if !fg_defect > accuracy then
    Diag.breakdown ~where
      "a-posteriori check: Fox–Glynn truncation defect %g exceeds the \
       requested accuracy %g"
      !fg_defect accuracy;
  (mass_residual, !fg_defect)

let checked_measure ~where measure ~step v =
  let value = measure v in
  if Float.is_nan value then
    Diag.breakdown ~where "measure returned NaN at uniformisation step %d" step;
  value

(* One uniformised step: v' = v P, as a gather over the transposed
   matrix.  Every dst entry is (over)written by exactly one chunk, so
   no blit/zeroing of dst is needed; the chunk-to-worker assignment and
   the in-row summation order are fixed, so the result is bitwise
   independent of the job count. *)
let step k ~src ~dst =
  Telemetry.incr c_products;
  (* Supervised: a worker crash mid-product re-runs its partition (the
     chunks write disjoint, deterministic ranges of dst, so the re-run
     is bitwise identical) instead of killing the sweep. *)
  Pool.run_chunks ~supervise:true k.k_pool k.k_partition (fun ~lo ~hi ->
      Sparse.matvec_rows k.k_pt src ~dst ~lo ~hi);
  if Fi.enabled () then begin
    if Fi.fires fi_step_nan then dst.(0) <- Float.nan;
    if Fi.fires fi_step_overflow then dst.(0) <- 1e30
  end

(* Working vectors of a sweep: reuse caller-provided buffers (the
   session fast path — no per-call allocation) or allocate a fresh
   pair.  The first buffer is seeded with alpha either way. *)
let sweep_buffers ~where ~n ~alpha = function
  | None -> (Vector.copy alpha, Vector.create n)
  | Some (a, b) ->
      if Array.length a <> n || Array.length b <> n then
        invalid_arg (where ^ ": buffers have wrong length");
      Vector.blit ~src:alpha ~dst:a;
      Vector.fill b 0.;
      (a, b)

let solve ?(opts = Solver_opts.default) g ~alpha ~t =
  check_alpha g alpha;
  let where = "Transient.solve" in
  check_times ~where [| t |];
  Solver_opts.request_telemetry opts;
  Telemetry.incr c_sweeps;
  Telemetry.with_span "transient.solve" @@ fun () ->
  let n = Generator.n_states g in
  let q = resolve_q where ?q:opts.Solver_opts.unif_rate g in
  let budget = Solver_opts.resolve_budget opts in
  Budget.note_sweep budget;
  Budget.check ~what:where budget;
  let weights = Poisson.weights ~accuracy:opts.Solver_opts.accuracy (q *. t) in
  let kernel = kernel_for g ~q ~jobs:(Solver_opts.resolve_jobs opts) in
  let v = Vector.copy alpha and v' = Vector.create n in
  let out = Vector.create n in
  let add_weighted w src = Vector.axpy ~alpha:w ~x:src ~y:out in
  let current = ref v and scratch = ref v' in
  for m = 0 to weights.Poisson.right do
    if m > 0 then begin
      Budget.note_product budget;
      Budget.check ~what:where budget;
      step kernel ~src:!current ~dst:!scratch;
      let t = !current in
      current := !scratch;
      scratch := t
    end;
    let w = Poisson.prob weights m in
    if w > 0. then add_weighted w !current
  done;
  (* NaN and mass drift both persist in the final power iterate (the
     weighted output is only accurate to the Poisson truncation, so it
     is not the thing to check). *)
  guard_iterate ~where ~mass0:(Vector.sum alpha) ~step:weights.Poisson.right
    !current;
  Telemetry.observe_int h_iterations weights.Poisson.right;
  out

let check_windows ~where ~times = function
  | None -> None
  | Some windows ->
      if Array.length windows <> Array.length times then
        invalid_arg (where ^ ": windows and times have different lengths");
      Some windows

(* The batched engine: the sequence v_n = alpha P^n is walked ONCE and
   every registered linear functional is evaluated at every step; each
   (measure, time) result is then a Poisson-weighted scalar sum.  Any
   number of measures and time points therefore cost a single power
   sweep.

   [progress] is invoked after every completed step with a lazy
   snapshot thunk (the copy is only paid when the caller decides to
   checkpoint); [on_interrupt] is invoked with a final snapshot right
   before a budget/cancellation error is raised, so the caller can
   flush a checkpoint covering all completed work; [resume] restores a
   snapshot and continues the walk at the next step.  A resumed sweep
   performs the identical sequence of products, guards, measures and
   convergence tests the uninterrupted sweep would have performed from
   that step on, which is what makes resumed results bitwise equal. *)
let multi_measure_sweep ?(opts = Solver_opts.default) ?windows ?buffers ?kernel
    ?(progress = Progress.none) g ~alpha ~times ~measures =
  let { Progress.on_step; on_interrupt; resume } = progress in
  check_alpha g alpha;
  let where = "Transient.multi_measure_sweep" in
  check_times ~where times;
  Solver_opts.request_telemetry opts;
  Telemetry.incr c_sweeps;
  Telemetry.with_span "transient.multi_measure_sweep" @@ fun () ->
  let n = Generator.n_states g in
  let q = resolve_q where ?q:opts.Solver_opts.unif_rate g in
  let budget = Solver_opts.resolve_budget opts in
  Budget.note_sweep budget;
  let kernel = check_kernel ~where ~q ~opts g kernel in
  (* Poisson windows per time point; the sweep must reach the largest
     right truncation point (unless stationarity is detected first). *)
  let windows =
    match check_windows ~where ~times windows with
    | Some windows -> windows
    | None ->
        Array.map
          (fun t -> Poisson.weights ~accuracy:opts.Solver_opts.accuracy (q *. t))
          times
  in
  let n_max =
    Array.fold_left (fun acc w -> max acc w.Poisson.right) 0 windows
  in
  let mass0 = Vector.sum alpha in
  let k = Array.length measures in
  (* vals.(j).(m) is measure j evaluated on the step-m iterate. *)
  let vals = Array.make_matrix k (n_max + 1) 0. in
  let v, v' = sweep_buffers ~where ~n ~alpha buffers in
  let current = ref v and scratch = ref v' in
  let record m v =
    for j = 0 to k - 1 do
      vals.(j).(m) <- checked_measure ~where measures.(j) ~step:m v
    done
  in
  let converged_at = ref None in
  let start =
    match resume with
    | None ->
        record 0 !current;
        1
    | Some r ->
        if Array.length r.sp_vector <> n then
          invalid_arg (where ^ ": resume vector has wrong length");
        if Array.length r.sp_values <> k then
          invalid_arg (where ^ ": resume has wrong measure count");
        if r.sp_step < 0 || r.sp_step > n_max then
          invalid_arg
            (Printf.sprintf "%s: resume step %d outside [0, %d]" where
               r.sp_step n_max);
        Array.iteri
          (fun j row ->
            if Array.length row <> r.sp_step + 1 then
              invalid_arg (where ^ ": resume values have wrong length");
            Array.blit row 0 vals.(j) 0 (r.sp_step + 1))
          r.sp_values;
        Vector.blit ~src:r.sp_vector ~dst:!current;
        if r.sp_converged then converged_at := Some r.sp_step;
        r.sp_step + 1
  in
  let snapshot_at ~step:s ~converged () =
    {
      sp_step = s;
      sp_converged = converged;
      sp_vector = Vector.copy !current;
      sp_values = Array.map (fun row -> Array.sub row 0 (s + 1)) vals;
    }
  in
  let m = ref start in
  while !m <= n_max && Option.is_none !converged_at do
    Budget.note_product budget;
    (match Budget.peek ~what:where budget with
    | None -> ()
    | Some e ->
        (match on_interrupt with
        | Some f -> f (snapshot_at ~step:(!m - 1) ~converged:false ())
        | None -> ());
        Diag.fail e);
    step kernel ~src:!current ~dst:!scratch;
    let drift = Vector.dist_inf !current !scratch in
    let t = !current in
    current := !scratch;
    scratch := t;
    guard_iterate ~where ~mass0 ~step:!m !current;
    record !m !current;
    if drift <= opts.Solver_opts.convergence_tol then converged_at := Some !m;
    (match on_step with
    | Some f ->
        f ~step:!m
          ~snapshot:
            (snapshot_at ~step:!m ~converged:(Option.is_some !converged_at))
    | None -> ());
    incr m
  done;
  (* If the chain became stationary, later measures are constant. *)
  (match !converged_at with
  | Some at ->
      for j = 0 to k - 1 do
        for i = at + 1 to n_max do
          vals.(j).(i) <- vals.(j).(at)
        done
      done
  | None -> ());
  let iterations = match !converged_at with Some at -> at | None -> n_max in
  Log.debug (fun f ->
      f "multi-measure sweep: %d states, %d measures, %d times, q=%g, %d \
         iterations%s"
        n k (Array.length times) q iterations
        (match !converged_at with
        | Some at -> Printf.sprintf " (stationary after %d)" at
        | None -> ""));
  Telemetry.observe_int h_iterations iterations;
  let mass_residual, fg_defect =
    verify_sweep ~where ~accuracy:opts.Solver_opts.accuracy ~mass0 ~windows
      !current
  in
  let results =
    Array.map
      (fun per_step ->
        Array.map
          (fun w ->
            Poisson.fold w ~init:0. ~f:(fun acc m weight ->
                acc +. (weight *. per_step.(m))))
          windows)
      vals
  in
  ( results,
    {
      iterations;
      converged_at = !converged_at;
      uniformisation_rate = q;
      mass_residual;
      fg_defect;
    } )

let measure_sweep ?opts ?windows ?buffers ?kernel ?progress g ~alpha ~times
    ~measure =
  let results, stats =
    multi_measure_sweep ?opts ?windows ?buffers ?kernel ?progress g ~alpha
      ~times ~measures:[| measure |]
  in
  (results.(0), stats)

let distribution_sweep ?(opts = Solver_opts.default) g ~alpha ~times =
  check_alpha g alpha;
  let where = "Transient.distribution_sweep" in
  check_times ~where times;
  Solver_opts.request_telemetry opts;
  Telemetry.incr c_sweeps;
  Telemetry.with_span "transient.distribution_sweep" @@ fun () ->
  let n = Generator.n_states g in
  let q = resolve_q where ?q:opts.Solver_opts.unif_rate g in
  let budget = Solver_opts.resolve_budget opts in
  Budget.note_sweep budget;
  Budget.check ~what:where budget;
  let kernel = kernel_for g ~q ~jobs:(Solver_opts.resolve_jobs opts) in
  let windows =
    Array.map
      (fun t -> Poisson.weights ~accuracy:opts.Solver_opts.accuracy (q *. t))
      times
  in
  let n_max =
    Array.fold_left (fun acc w -> max acc w.Poisson.right) 0 windows
  in
  let mass0 = Vector.sum alpha in
  let outs = Array.map (fun _ -> Vector.create n) times in
  let v = Vector.copy alpha and v' = Vector.create n in
  let current = ref v and scratch = ref v' in
  for m = 0 to n_max do
    if m > 0 then begin
      Budget.note_product budget;
      Budget.check ~what:where budget;
      step kernel ~src:!current ~dst:!scratch;
      let t = !current in
      current := !scratch;
      scratch := t;
      guard_iterate ~where ~mass0 ~step:m !current
    end;
    Array.iteri
      (fun idx w ->
        let weight = Poisson.prob w m in
        if weight > 0. then Vector.axpy ~alpha:weight ~x:!current ~y:outs.(idx))
      windows
  done;
  Telemetry.observe_int h_iterations n_max;
  let mass_residual, fg_defect =
    verify_sweep ~where ~accuracy:opts.Solver_opts.accuracy ~mass0 ~windows
      !current
  in
  ( outs,
    {
      iterations = n_max;
      converged_at = None;
      uniformisation_rate = q;
      mass_residual;
      fg_defect;
    } )

let expected_hitting_mass ?opts g ~alpha ~states ~t =
  let pi = solve ?opts g ~alpha ~t in
  List.fold_left (fun acc i -> acc +. pi.(i)) 0. states

