(** Unified numerical options for every CTMC solver entry point.

    Before this record existed, [?accuracy], [?q], [?convergence_tol]
    and [?tol] were repeated (with drifting defaults) across
    {!Transient}, {!Reachability}, [Batlife_core.Discretized] and
    [Batlife_core.Lifetime].  Every entry point takes a single
    [?opts:Solver_opts.t] (the deprecated per-argument wrappers have
    been removed; see the README migration table).

    The fields and their defaults:

    - [accuracy] (default [1e-12]): bound on the truncated Poisson
      mass of a uniformisation sweep (Fox–Glynn truncation).
    - [unif_rate] (default [None]): override of the uniformisation
      rate [q].  [None] uses the generator's own
      [1.02 * max_i (-q_ii)]; an explicit rate below the largest exit
      rate is rejected with [Diag.Error (Invalid_model _)].
    - [convergence_tol] (default [1e-14]): L-infinity stationarity
      threshold at which a sweep stops early and extrapolates the
      remaining steps as constant.
    - [linear_tol] (default [None]): residual tolerance of the linear
      (Gauss–Seidel / Jacobi) solves behind unbounded reachability and
      exact expected lifetimes.  [None] keeps each solver's documented
      default: [1e-12] for hitting probabilities and hitting times,
      [1e-10] for the expected-lifetime first-passage system.
    - [jobs] (default [None]): worker-domain count of the parallel
      uniformisation kernel and the experiment fan-out.  [None]
      resolves at use time to [Batlife_numerics.Pool.default_jobs]
      (the CLI [--jobs] override, else [BATLIFE_JOBS], else
      [Domain.recommended_domain_count]); [Some 1] forces the
      guaranteed sequential path.  Results are bitwise identical for
      every job count.
    - [telemetry] (default [false]): when set, solver entry points
      switch the process-wide [Batlife_numerics.Telemetry] collector
      on before running, so spans/histograms are recorded for the
      solve.  Enabling telemetry never changes numerical results
      (asserted bitwise by the test suite).
    - [budget] (default [None]): the cooperative deadline/cancellation
      token checked between sweeps, vector-matrix products, solver
      iterations, ODE steps and parallel tasks.  [None] resolves at
      use time to the process-wide
      [Batlife_numerics.Budget.ambient ()] (what the CLI's
      [--deadline]/[--max-sweeps]/[--max-products] and SIGINT handler
      install); budgets never change numerical results, they only
      decide whether a run is allowed to finish.
    - [max_retries] (default [0]): per-task retry allowance of the
      parallel experiment fan-out ([Batlife_experiments.Par]);
      transiently failing tasks are retried with exponential backoff
      up to this many times before the failure propagates.
    - [adaptive_support] (default [true]): let the uniformisation
      kernel track the active support window of the iterate and skip
      rows whose probability mass is provably negligible.  The mass it
      drops is budgeted against the Fox–Glynn truncation error, so the
      documented accuracy bound still holds; results are no longer
      bitwise identical to the exact full-support kernel (which
      [false] restores, and which the escalation ladder falls back to
      as an oracle).
    - [support_threshold] (default [None]): per-entry pruning
      threshold of the adaptive kernel.  [None] derives one from
      [accuracy] and the sweep shape so the total skipped mass stays
      under half the accuracy budget; [Some 0.] prunes only exact
      zeros, making the adaptive kernel bitwise identical to the exact
      one while still shrinking the window.  Rejected if negative or
      non-finite. *)

type t = {
  accuracy : float;
  unif_rate : float option;
  convergence_tol : float;
  linear_tol : float option;
  jobs : int option;
  telemetry : bool;
  budget : Batlife_numerics.Budget.t option;
  max_retries : int;
  adaptive_support : bool;
  support_threshold : float option;
}

val default : t
(** [{ accuracy = 1e-12; unif_rate = None; convergence_tol = 1e-14;
      linear_tol = None; jobs = None; telemetry = false; budget = None;
      max_retries = 0; adaptive_support = true;
      support_threshold = None }]. *)

val make :
  ?accuracy:float ->
  ?unif_rate:float ->
  ?convergence_tol:float ->
  ?linear_tol:float ->
  ?jobs:int ->
  ?telemetry:bool ->
  ?budget:Batlife_numerics.Budget.t ->
  ?max_retries:int ->
  ?adaptive_support:bool ->
  ?support_threshold:float ->
  unit ->
  t
(** [make ()] is {!default}; each argument overrides one field.
    Raises [Invalid_argument] on [jobs < 1], [max_retries < 0], or a
    negative/non-finite [support_threshold]. *)

val linear_tol_or : default:float -> t -> float
(** The linear-solve tolerance, falling back to the calling solver's
    documented default when [linear_tol] is [None]. *)

val resolve_jobs : t -> int
(** The effective job count: [jobs] when set, else
    [Batlife_numerics.Pool.default_jobs ()]. *)

val resolve_budget : t -> Batlife_numerics.Budget.t
(** The effective budget: [budget] when set, else the process-wide
    [Batlife_numerics.Budget.ambient ()] (which is
    [Budget.unlimited] unless the CLI installed one). *)

val request_telemetry : t -> unit
(** Switch the process-wide telemetry collector on if [telemetry] is
    set.  Never switches it off — an enclosing caller (CLI [--profile],
    bench harness) may have enabled it independently. *)

val pp : Format.formatter -> t -> unit
