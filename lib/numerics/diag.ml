(* Structured diagnostics shared by every layer.

   This module sits at the bottom of the dependency stack so the
   numerical kernels (iterative solvers, ODE steppers, uniformisation
   sweeps) can trip a typed diagnostic instead of a bare [failwith];
   the [Batlife_robust] library re-exports the type together with
   validation and Result combinators. *)

type error =
  | Invalid_model of { what : string; violations : string list }
  | Nonconvergence of {
      algorithm : string;
      iterations : int;
      residual : float;
      tolerance : float;
      attempted : string list;
    }
  | Numerical_breakdown of { where : string; detail : string }
  | Budget_exhausted of { what : string; budget : int }
  | Cancelled of { what : string; progress : string }
  | Parse_error of {
      source : string;
      line : int;
      field : string option;
      message : string;
    }

exception Error of error

let error_to_string = function
  | Invalid_model { what; violations } ->
      Printf.sprintf "invalid model (%s): %s" what
        (String.concat "; " violations)
  | Nonconvergence { algorithm; iterations; residual; tolerance; attempted } ->
      Printf.sprintf "%s did not converge after %d iterations (residual %g%s)%s"
        algorithm iterations residual
        (if Float.is_finite tolerance then
           Printf.sprintf ", tolerance %g" tolerance
         else "")
        (match attempted with
        | [] -> ""
        | chain -> "; attempted: " ^ String.concat " -> " chain)
  | Numerical_breakdown { where; detail } ->
      Printf.sprintf "numerical breakdown in %s: %s" where detail
  | Budget_exhausted { what; budget } ->
      Printf.sprintf "budget exhausted: %s (limit %d)" what budget
  | Cancelled { what; progress } ->
      Printf.sprintf "cancelled: %s (%s)" what progress
  | Parse_error { source; line; field; message } ->
      Printf.sprintf "parse error: %s, line %d%s: %s" source line
        (match field with None -> "" | Some f -> ", field " ^ f)
        message

let pp ppf e = Format.pp_print_string ppf (error_to_string e)

(* Distinct nonzero CLI exit codes; 1-2 and cmdliner's 123-125 stay
   free. *)
let exit_code = function
  | Invalid_model _ -> 3
  | Parse_error _ -> 4
  | Nonconvergence _ -> 5
  | Numerical_breakdown _ -> 6
  | Budget_exhausted _ -> 7
  | Cancelled _ -> 8

let fail e = raise (Error e)

let invalid_model ~what violations = fail (Invalid_model { what; violations })

let breakdown ~where fmt =
  Printf.ksprintf
    (fun detail -> fail (Numerical_breakdown { where; detail }))
    fmt

(* In-flight diagnostics: numerical components record which path ran
   (e.g. a fallback solver) into a process-wide sink; front ends drain
   it to surface the events next to their results.

   The sink is shared by every domain, so it is mutex-protected
   (events are rare — one per solver fallback — so the lock is never
   hot).  A parallel fan-out additionally wants per-task event
   streams merged back in task order, not arrival order: [capture]
   redirects the current domain's recordings into a private buffer,
   and [replay] re-records a buffer into the shared sink, so the
   merge order is whatever order the caller replays in. *)

type event = {
  origin : string;
  detail : string;
  fallback : bool;
  ctx : string option;
}

let sink : event list ref = ref []
let sink_mutex = Mutex.create ()

(* The current domain's capture buffer, if a [capture] is in flight. *)
let capture_cell : event list ref option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

(* The current domain's trace context (request id), stamped on every
   event recorded in its extent — mirrors [Telemetry.with_context]. *)
let context_cell : string option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let with_context ctx f =
  let cell = Domain.DLS.get context_cell in
  let saved = !cell in
  cell := Some ctx;
  match f () with
  | result ->
      cell := saved;
      result
  | exception e ->
      cell := saved;
      raise e

let current_context () = !(Domain.DLS.get context_cell)

let record_event e =
  match !(Domain.DLS.get capture_cell) with
  | Some buffer -> buffer := e :: !buffer
  | None ->
      Mutex.lock sink_mutex;
      sink := e :: !sink;
      Mutex.unlock sink_mutex

let record ?(fallback = false) ~origin detail =
  record_event
    { origin; detail; fallback; ctx = !(Domain.DLS.get context_cell) }

let capture f =
  let cell = Domain.DLS.get capture_cell in
  let saved = !cell in
  let buffer = ref [] in
  cell := Some buffer;
  match f () with
  | result ->
      cell := saved;
      (result, List.rev !buffer)
  | exception e ->
      cell := saved;
      raise e

(* Replay re-records the event values verbatim: in particular the
   context each event was captured under survives the hop from the
   worker domain to the replaying one, so per-request notes stay
   attributable after the deterministic merge (re-stamping with the
   replayer's context would anonymise them). *)
let replay events = List.iter record_event events

let events () =
  Mutex.lock sink_mutex;
  let es = List.rev !sink in
  Mutex.unlock sink_mutex;
  es

let clear_events () =
  Mutex.lock sink_mutex;
  sink := [];
  Mutex.unlock sink_mutex
