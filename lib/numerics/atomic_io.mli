(** Atomic (crash-safe) file writes.

    Every artifact the toolchain puts on disk — metrics/trace JSON,
    CSV/dat series, checkpoints, bench reports — goes through this
    module: the content is written to a hidden temp file in the
    destination directory, flushed and [fsync]ed, moved over the
    destination with a single [rename], and the parent directory is
    then [fsync]ed so the rename itself is durable across power loss.
    A crash or kill at any instant leaves either the previous file
    intact or the complete new one — never a truncated mix.

    {b Fault injection.}  The failure points are {!Batlife_numerics.Fi}
    sites ([atomic_io.write_fail], [atomic_io.short_write],
    [atomic_io.fsync_fail], [atomic_io.rename_fail],
    [atomic_io.dir_fsync_fail]), the hooks the chaos harness arms:
    injected write/rename failures surface as the same structured
    [Diag.Error (Parse_error _)] a real [ENOSPC]/[EXDEV] would, leaving
    the destination untouched and no temp litter; injected fsync
    failures are swallowed exactly like real ones (rename stays
    atomic); an injected short write silently lands a prefix of the
    content — the storage-corruption case checkpoint CRCs exist to
    catch. *)

val with_out : path:string -> (out_channel -> 'a) -> 'a
(** [with_out ~path f] runs [f] on a channel to a temp file next to
    [path] and atomically renames it to [path] when [f] returns.  If
    [f] raises, the temp file is removed and [path] is untouched.
    Raises [Diag.Error (Parse_error _)] (source = [path], line 0) when
    the destination directory is not writable. *)

val write_file : path:string -> string -> unit
(** [write_file ~path s] atomically replaces [path]'s content with
    [s]. *)

(** {1 Append-only logs}

    Whole-file replacement is wrong for access logs; these use the
    other POSIX atomicity primitive: an [O_APPEND] descriptor where
    every line is a single [write].  Concurrent appenders never
    interleave within a line, and a crash can only lose the line in
    flight, never corrupt completed ones. *)

type appender

val appender : path:string -> appender
(** Open (creating if needed) [path] for appending.  Raises
    [Diag.Error (Parse_error _)] when the path cannot be opened.
    Subject to the [atomic_io.write_fail] fault site. *)

val append_line : appender -> string -> unit
(** Append one line (a ['\n'] is added) as a single [write]. *)

val close_appender : appender -> unit
(** [fsync] then close the appender's descriptor, so the tail lines
    survive a power loss right after exit.  Both failures are
    swallowed (durability degrades; nothing else can). *)
