(** Atomic (crash-safe) file writes.

    Every artifact the toolchain puts on disk — metrics/trace JSON,
    CSV/dat series, checkpoints, bench reports — goes through this
    module: the content is written to a hidden temp file in the
    destination directory, flushed and [fsync]ed, and then moved over
    the destination with a single [rename].  A crash or kill at any
    instant leaves either the previous file intact or the complete new
    one — never a truncated mix. *)

val with_out : path:string -> (out_channel -> 'a) -> 'a
(** [with_out ~path f] runs [f] on a channel to a temp file next to
    [path] and atomically renames it to [path] when [f] returns.  If
    [f] raises, the temp file is removed and [path] is untouched.
    Raises [Diag.Error (Parse_error _)] (source = [path], line 0) when
    the destination directory is not writable. *)

val write_file : path:string -> string -> unit
(** [write_file ~path s] atomically replaces [path]'s content with
    [s]. *)
