(** Deterministic fault injection: named, armed injection sites.

    The chaos layer's foundation.  Production modules declare {e sites}
    at the exact points where the environment could bite — an IO write
    failing mid-checkpoint ([atomic_io.write_fail]), a pool worker
    dying mid-section ([pool.crash]), a NaN appearing in one
    vector-matrix product ([transient.step_nan]) — and consult
    {!fires} there.  Tests and the [bench --chaos-report] harness then
    {!arm} a site with a deterministic [(after, count)] plan and assert
    that the recovery machinery (checkpoint quarantine, pool
    supervision, the sweep-verification escalation ladder) restores the
    clean answer or fails with a structured error.

    {b Cost when disabled.}  Everything is off by default; {!fires} is
    one atomic load and a branch, the same discipline as
    [Telemetry.enabled], so the probes stay wired into the hot paths
    permanently.

    {b Determinism.}  An armed site fires on consultations numbered
    [after .. after + count - 1] of its own counter (counted only while
    armed; concurrent consultations claim unique indices atomically).
    Randomness enters only one level up, where a chaos harness draws
    plans from a seeded [Rng] — so any observed failure replays from
    its seed.

    Registered sites: [atomic_io.{write_fail,short_write,fsync_fail,
    rename_fail,dir_fsync_fail}], [checkpoint.{truncate,bitflip,
    version_skew}], [pool.crash], [transient.{step_nan,step_overflow}],
    [budget.clock_skew], and the server IO sites
    [server.{slow_read,disconnect,frame_flood,short_write}] (a stalled
    client read, a client vanishing mid-batch, a frame burst forcing
    admission to shed, a partial [write] to the client). *)

type site
(** An interned injection point; obtain with {!site}, consult with
    {!fires}. *)

exception Injected of string
(** Raised by {!inject} (and by the [pool.crash] site) with the site
    name.  Deliberately {e not} a [Diag.Error]: it models an abrupt
    crash and therefore exercises the generic (retryable) failure
    paths. *)

val site : string -> site
(** Intern a site by name (idempotent; thread-safe). *)

val name : site -> string

val fires : site -> bool
(** Consult the site: [true] iff injection is globally enabled, the
    site is armed, and this consultation falls inside the armed
    [(after, count)] window.  Each [true] consumes one firing. *)

val inject : site -> unit
(** [if fires s then raise (Injected (name s))]. *)

val enabled : unit -> bool
(** Whether any [arm] is in effect (the global fast-path flag). *)

val arm : ?after:int -> ?count:int -> string -> unit
(** [arm name] resets the site's counters and schedules it to fire on
    its next [count] (default 1) consultations after skipping the first
    [after] (default 0).  Enables injection globally.  Raises
    [Invalid_argument] on [after < 0] or [count < 1]. *)

val disarm : string -> unit
(** Remove the site's plan (counters and the global flag are left;
    use {!reset} to restore the all-off state). *)

val reset : unit -> unit
(** Disable injection globally and clear every site's plan and
    counters — the state test teardowns restore. *)

val hits : string -> int
(** Consultations of the site while armed (since its last [arm]). *)

val fired : string -> int
(** Firings of the site since its last [arm]. *)

val armed : unit -> (string * int * int) list
(** The active plans, as sorted [(name, after, count)] triples. *)

val registered : unit -> string list
(** All site names interned so far, sorted. *)
