(** Flat float64 vectors backed by [Bigarray.Array1].

    The uniformisation kernel streams its per-step vectors millions of
    times per sweep; a Bigarray buffer guarantees a contiguous,
    unboxed, GC-opaque layout the gather loop can walk with raw loads,
    and pairs with the int32 column stream of {!Sparse} so the hot
    loop touches half the index bytes of the historical [int array]
    representation.

    Only the operations the stepping kernel and the window-restricted
    sweeps need live here; general vector algebra on plain
    [float array] stays in {!Vector}.  All [_range] operations work on
    the half-open interval [\[lo, hi)] and sum / compare in ascending
    index order — the fixed evaluation order the bitwise-identity
    guarantees of the sweeps rely on. *)

type t = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

val create : int -> t
(** Zero-filled vector of the given length. *)

val length : t -> int

val get : t -> int -> float
val set : t -> int -> float -> unit

val unsafe_get : t -> int -> float
(** Unchecked load; the caller owns the bounds proof. *)

val unsafe_set : t -> int -> float -> unit

val of_array : float array -> t
val to_array : t -> float array

val blit : src:t -> dst:t -> unit
(** Copy [src] over [dst]; lengths must match. *)

val blit_from_array : src:float array -> dst:t -> unit
(** Copy a plain array into a vector; lengths must match. *)

val fill : t -> float -> unit

val fill_range : t -> lo:int -> hi:int -> float -> unit
(** Fill entries [lo .. hi - 1]; a no-op when [lo >= hi]. *)

val sum : t -> float
(** Entries summed in ascending index order. *)

val sum_range : t -> lo:int -> hi:int -> float
(** Entries [lo .. hi - 1] summed in ascending index order. *)

val dist_inf : t -> t -> float
(** L-infinity distance; lengths must match. *)

val dist_inf_range : t -> t -> lo:int -> hi:int -> float
(** L-infinity distance restricted to [\[lo, hi)]. *)

val axpy_array : alpha:float -> x:t -> y:float array -> unit
(** [y.(i) <- y.(i) + alpha * x.(i)] for every [i]; lengths must
    match.  Bridges Bigarray iterates into [float array] accumulators
    (the Poisson-weighted outputs of the sweeps). *)

val nonzero_extent : t -> int * int
(** The tightest half-open interval [(lo, hi)] with every entry
    outside it exactly [0.]; [(0, 0)] for an all-zero vector.  A NaN
    entry counts as nonzero.  This recovers the support window of a
    checkpointed sweep iterate: the adaptive kernel zeroes everything
    it prunes, so the stored vector's extent {e is} its window. *)
