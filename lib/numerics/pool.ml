(* A reusable pool of worker domains (OCaml 5 stdlib [Domain] only).

   The pool exists for the uniformisation hot loop: spawning a domain
   costs orders of magnitude more than one chunk of a sparse
   matrix-vector product, so the workers are spawned once and parked on
   a condition variable between parallel sections.  A parallel section
   ([run]) publishes a closure, bumps a generation counter, wakes every
   worker, executes share 0 on the calling domain, and waits for the
   stragglers — a plain fork-join barrier.

   Determinism is the caller's contract: [run]/[run_chunks] assign each
   share to exactly one worker index, so as long as the closure writes
   only locations owned by its share (the gather-based kernels in
   {!Sparse} do), the result is independent of scheduling.

   Nesting: a [run] issued from inside a worker (or from the caller
   share of an enclosing [run]) executes all shares inline on the
   current domain instead of touching the pool.  This makes it safe for
   a parallel experiment fan-out to call parallel sweeps — the
   outermost parallel section wins, inner ones degrade to the
   guaranteed sequential path. *)

type shared = {
  mutex : Mutex.t;
  start : Condition.t;  (* workers: a new generation was published *)
  finished : Condition.t;  (* caller: all workers completed the section *)
  mutable generation : int;
  mutable task : (int -> unit) option;  (* [None] tells workers to exit *)
  mutable pending : int;
  mutable failures : (int * exn * Printexc.raw_backtrace) list;
}

type t =
  | Sequential
  | Domains of {
      jobs : int;
      shared : shared;
      submit : Mutex.t;  (* serialises concurrent [run] calls *)
      domains : unit Domain.t array;
      mutable live : bool;
    }

(* True on any domain currently executing a share of a parallel
   section; [run] consults it to fall back to inline execution. *)
let in_section : bool ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref false)

let c_sections = Telemetry.counter "pool.sections"
let c_nested_inline = Telemetry.counter "pool.nested_inline"
let c_supervised = Telemetry.counter "pool.supervised_retries"

(* Worker-crash injection site for supervised sections: consulted at
   the start of every share, so an armed plan kills a share mid-section
   the way a dying domain would. *)
let fi_crash = Fi.site "pool.crash"

(* How many times a supervised section re-executes a crashed share
   before giving up (process-wide; the CLI wires --max-retries here so
   kernel sections share the experiment fan-out's retry budget). *)
let section_retries_cell = Atomic.make 0

let set_section_retries n =
  if n < 0 then invalid_arg "Pool.set_section_retries: need retries >= 0";
  Atomic.set section_retries_cell n

let section_retries () = Atomic.get section_retries_cell

(* Same policy as Par's retry loop: a cooperative stop is a decision,
   not a fault, and must surface immediately. *)
let retryable = function
  | Diag.Error (Diag.Cancelled _ | Diag.Budget_exhausted _) -> false
  | _ -> true

(* One share of a supervised section: a crashed share is re-executed in
   place, on the same domain, up to the retry budget.  Safe because
   supervised callers (the gather-based kernels) write only locations
   owned by their share, idempotently — re-running the share overwrites
   the same outputs with the same values, so a recovered section is
   bitwise identical to an undisturbed one.  [retried] counts failed
   attempts for the caller's post-section diagnostic. *)
let supervised_share ~retried f w =
  let retries = Atomic.get section_retries_cell in
  let rec exec attempt =
    match
      Fi.inject fi_crash;
      f w
    with
    | () -> ()
    | exception e when attempt < retries && retryable e ->
        Atomic.incr retried;
        exec (attempt + 1)
  in
  exec 0

let latency_buckets =
  [| 1e-6; 1e-5; 1e-4; 1e-3; 1e-2; 1e-1; 1.; 10.; 100. |]

(* Fork-join barrier wall time, caller's view: publish -> all workers
   done.  One observation per section, so enabling telemetry adds two
   clock reads per sweep step — noise next to the matvec it brackets. *)
let h_section = Telemetry.histogram ~buckets:latency_buckets "pool.section_seconds"

(* Per-task latency of [map_array] items, observed on the worker domain
   that ran the task. *)
let h_task = Telemetry.histogram ~buckets:latency_buckets "pool.task_seconds"

let seconds_since start_ns =
  Int64.to_float (Int64.sub (Telemetry.now_ns ()) start_ns) /. 1e9

let size = function Sequential -> 1 | Domains d -> d.jobs

let worker shared w =
  Domain.DLS.get in_section := true;
  let seen = ref 0 in
  let rec loop () =
    Mutex.lock shared.mutex;
    while shared.generation = !seen do
      Condition.wait shared.start shared.mutex
    done;
    seen := shared.generation;
    let task = shared.task in
    Mutex.unlock shared.mutex;
    match task with
    | None -> ()
    | Some f ->
        let failure =
          match f w with
          | () -> None
          | exception e -> Some (w, e, Printexc.get_raw_backtrace ())
        in
        Mutex.lock shared.mutex;
        (match failure with
        | Some f -> shared.failures <- f :: shared.failures
        | None -> ());
        shared.pending <- shared.pending - 1;
        if shared.pending = 0 then Condition.signal shared.finished;
        Mutex.unlock shared.mutex;
        loop ()
  in
  loop ()

let create ~jobs =
  if jobs < 1 then invalid_arg "Pool.create: need jobs >= 1";
  if jobs = 1 then Sequential
  else begin
    let shared =
      {
        mutex = Mutex.create ();
        start = Condition.create ();
        finished = Condition.create ();
        generation = 0;
        task = None;
        pending = 0;
        failures = [];
      }
    in
    let domains =
      Array.init (jobs - 1) (fun i ->
          Domain.spawn (fun () -> worker shared (i + 1)))
    in
    Domains { jobs; shared; submit = Mutex.create (); domains; live = true }
  end

let run_inline jobs f =
  for w = 0 to jobs - 1 do
    f w
  done

let run ?(supervise = false) t f =
  let retried = Atomic.make 0 in
  let f = if supervise then supervised_share ~retried f else f in
  (* Recorded on the caller's domain after the section, so the note
     lands in the caller's Diag capture (if any) exactly once — the
     event stream is identical for every job count even though which
     share crashed is scheduling-dependent. *)
  let note_retries () =
    let r = Atomic.get retried in
    if r > 0 then begin
      Telemetry.add c_supervised r;
      Diag.record ~fallback:true ~origin:"Pool"
        (Printf.sprintf
           "supervised section: re-executed crashed share(s) after %d failed \
            attempt%s"
           r
           (if r = 1 then "" else "s"))
    end
  in
  match t with
  | Sequential ->
      f 0;
      note_retries ()
  | Domains d ->
      let flag = Domain.DLS.get in_section in
      if !flag then begin
        (* Nested section: the pool is busy with the enclosing one. *)
        Telemetry.incr c_nested_inline;
        run_inline d.jobs f;
        note_retries ()
      end
      else begin
        if not d.live then invalid_arg "Pool.run: pool was shut down";
        Telemetry.incr c_sections;
        let section_start =
          if Telemetry.enabled () then Telemetry.now_ns () else 0L
        in
        Mutex.lock d.submit;
        let s = d.shared in
        Mutex.lock s.mutex;
        s.task <- Some f;
        s.generation <- s.generation + 1;
        s.pending <- d.jobs - 1;
        s.failures <- [];
        Condition.broadcast s.start;
        Mutex.unlock s.mutex;
        (* The calling domain is worker 0 for the section's duration;
           flagging it routes nested [run]s to the inline path. *)
        flag := true;
        let caller_failure =
          match f 0 with
          | () -> None
          | exception e -> Some (0, e, Printexc.get_raw_backtrace ())
        in
        flag := false;
        Mutex.lock s.mutex;
        while s.pending > 0 do
          Condition.wait s.finished s.mutex
        done;
        let failures = s.failures in
        s.task <- None;
        Mutex.unlock s.mutex;
        Mutex.unlock d.submit;
        let failures =
          match caller_failure with
          | Some c -> c :: failures
          | None -> failures
        in
        if Telemetry.enabled () then
          Telemetry.observe h_section (seconds_since section_start);
        note_retries ();
        match
          List.sort (fun (a, _, _) (b, _, _) -> compare a b) failures
        with
        | [] -> ()
        | (_, e, bt) :: _ -> Printexc.raise_with_backtrace e bt
      end

let shutdown t =
  match t with
  | Sequential -> ()
  | Domains d ->
      if d.live then begin
        d.live <- false;
        Mutex.lock d.shared.mutex;
        d.shared.task <- None;
        d.shared.generation <- d.shared.generation + 1;
        Condition.broadcast d.shared.start;
        Mutex.unlock d.shared.mutex;
        Array.iter Domain.join d.domains
      end

let parallel_for t ~lo ~hi f =
  let n = hi - lo in
  if n > 0 then begin
    let parts = size t in
    if parts = 1 || n = 1 then f ~lo ~hi
    else begin
      let chunk = (n + parts - 1) / parts in
      run t (fun w ->
          let l = lo + (w * chunk) in
          let h = min hi (l + chunk) in
          if l < h then f ~lo:l ~hi:h)
    end
  end

let run_chunks ?(supervise = false) t bounds f =
  let k = Array.length bounds in
  if k > 0 then
    match t with
    | Sequential ->
        run ~supervise Sequential (fun _ ->
            Array.iter (fun (lo, hi) -> if lo < hi then f ~lo ~hi) bounds)
    | Domains d ->
        run ~supervise t (fun w ->
            (* Chunk i is owned by worker [i mod jobs]: a fixed map, so
               every output location has exactly one writer no matter
               how the domains are scheduled. *)
            let i = ref w in
            while !i < k do
              let lo, hi = bounds.(!i) in
              if lo < hi then f ~lo ~hi;
              i := !i + d.jobs
            done)

let map_array t f xs =
  let n = Array.length xs in
  match t with
  | Sequential -> Array.map f xs
  | Domains _ when n = 0 -> [||]
  | Domains _ ->
      let results = Array.make n None in
      let next = Atomic.make 0 in
      run t (fun _w ->
          let rec loop () =
            let i = Atomic.fetch_and_add next 1 in
            if i < n then begin
              (if Telemetry.enabled () then begin
                 let start = Telemetry.now_ns () in
                 results.(i) <- Some (f xs.(i));
                 Telemetry.observe h_task (seconds_since start)
               end
               else results.(i) <- Some (f xs.(i)));
              loop ()
            end
          in
          loop ());
      Array.map
        (function Some v -> v | None -> assert false (* run is a barrier *))
        results

(* ------------------------------------------------------------------ *)
(* Process-wide default                                                *)

let jobs_override = ref None

let set_default_jobs jobs =
  if jobs < 1 then invalid_arg "Pool.set_default_jobs: need jobs >= 1";
  jobs_override := Some jobs

let env_jobs () =
  match Sys.getenv_opt "BATLIFE_JOBS" with
  | None -> None
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> Some n
      | Some _ | None ->
          Diag.record ~origin:"Pool"
            (Printf.sprintf
               "ignoring invalid BATLIFE_JOBS=%S (want an integer >= 1)" s);
          None)

let default_jobs () =
  match !jobs_override with
  | Some n -> n
  | None -> (
      match env_jobs () with
      | Some n -> n
      | None -> max 1 (Domain.recommended_domain_count ()))

(* More worker domains than cores is a measured slowdown (the
   committed BENCH_parallel.json shows jobs = 2/4 running 21-35%
   slower than jobs = 1 on a 1-core container), so the CLI routes
   every explicit jobs request through this clamp.  The note is a
   plain (non-fallback) Diag event: discoverable by drains and tests,
   but not printed on stderr, so clamping never perturbs pinned CLI
   output.  Library callers asking [get ~jobs] directly are NOT
   clamped — the determinism tests deliberately oversubscribe. *)
let clamp_jobs requested =
  if requested < 1 then invalid_arg "Pool.clamp_jobs: need jobs >= 1";
  let cores = max 1 (Domain.recommended_domain_count ()) in
  if requested > cores then begin
    Diag.record ~origin:"Pool"
      (Printf.sprintf
         "requested %d worker domain(s) but only %d core(s) are available; \
          clamping to %d (oversubscribing domains is a slowdown)"
         requested cores cores);
    cores
  end
  else requested

(* Cached pools keyed by size, so repeated sweeps at the same job count
   reuse the parked domains.  Entries are never shut down: idle workers
   block on a condition variable and cost nothing. *)
let cache : (int, t) Hashtbl.t = Hashtbl.create 4
let cache_mutex = Mutex.create ()

let get ~jobs =
  if jobs < 1 then invalid_arg "Pool.get: need jobs >= 1";
  if jobs = 1 then Sequential
  else begin
    Mutex.lock cache_mutex;
    let pool =
      match Hashtbl.find_opt cache jobs with
      | Some p -> p
      | None ->
          let p = create ~jobs in
          Hashtbl.add cache jobs p;
          p
    in
    Mutex.unlock cache_mutex;
    pool
  end

let default () = get ~jobs:(default_jobs ())
