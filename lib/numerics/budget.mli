(** Cooperative computation budgets: wall-clock deadlines, work
    limits, and cancellation.

    A budget is a shared token threaded (explicitly through
    [Solver_opts], or implicitly via the process-wide {!ambient}
    budget) into every long-running loop: uniformisation sweeps,
    iterative linear solvers, ODE integration, Monte-Carlo
    replication, parallel experiment fan-out.  The loops poll
    {!peek}/{!check} at step boundaries — cancellation is cooperative,
    never pre-emptive — and raise a structured
    [Diag.Error (Budget_exhausted _)] (work/deadline limits) or
    [Diag.Error (Cancelled _)] (explicit {!cancel}, e.g. from the
    CLI's SIGINT handler), {e after} flushing any pending checkpoint,
    so partial results survive.

    Budgets are domain-safe: all counters are [Atomic], and a single
    budget may be observed concurrently by every pool worker.  The
    unbudgeted path is one physical-equality test per check. *)

type t

val unlimited : t
(** The shared no-op budget: all checks pass, nothing is counted. *)

val create :
  ?wall_s:float ->
  ?max_sweeps:int ->
  ?max_products:int ->
  ?cancel_after:int ->
  unit ->
  t
(** A fresh budget.  [wall_s] is a wall-clock allowance in seconds
    from now (must be positive and finite); [max_sweeps] /
    [max_products] bound the number of uniformisation sweeps /
    vector-matrix products ({!note_sweep}, {!note_product});
    [cancel_after] is a deterministic testing knob that trips
    cancellation after that many {!peek}s, giving cram tests a
    reproducible "interrupted mid-run" without real signals or timing
    races.  Omitted limits are absent.  Raises [Invalid_argument] on
    non-positive limits. *)

val is_unlimited : t -> bool
(** [true] exactly for {!unlimited} (physical identity). *)

val cancel : t -> unit
(** Request cooperative cancellation: every subsequent {!peek} on this
    budget returns [Cancelled].  Safe from a signal handler or another
    domain. *)

val cancelled : t -> bool

val note_sweep : t -> unit
(** Count one started power sweep against the budget. *)

val note_product : t -> unit
(** Count one started vector-matrix product (or solver iteration, ODE
    step, Monte-Carlo replication — the generic unit of work). *)

val sweeps_done : t -> int

val products_done : t -> int

val progress : t -> string
(** Human-readable work summary (["N sweeps, M products completed"]),
    embedded in the structured errors as the partial-result note. *)

val peek : what:string -> t -> Diag.error option
(** Non-raising check: [Some (Cancelled _)] once {!cancel} was called,
    [Some (Budget_exhausted _)] once a work limit or the deadline is
    exceeded, [None] while within budget.  [what] names the
    computation for the diagnostic.  Callers that must flush state
    before dying use [peek], flush, then [Diag.fail]. *)

val check : what:string -> t -> unit
(** [peek] and raise [Diag.Error] on [Some]. *)

(** {1 Ambient budget}

    The process-wide default consulted by every solver whose options
    carry no explicit budget.  The CLI installs one from
    [--deadline]/[--max-sweeps]/[--max-products] and points its SIGINT
    handler at it. *)

val ambient : unit -> t
(** Currently installed ambient budget (initially {!unlimited}). *)

val set_ambient : t -> unit

val with_ambient : t -> (unit -> 'a) -> 'a
(** Run [f] with the ambient budget replaced, restoring the previous
    one on exit (even on exception). *)
