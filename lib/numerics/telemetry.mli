(** Low-overhead, domain-safe instrumentation for the solver stack.

    The telemetry layer answers "where does the time go and how much
    work was done" for every phase of a lifetime computation: Fox–Glynn
    window construction, CSR transposes, uniformisation sweeps, linear
    solves, ODE stepping, pool scheduling and the session caches.  It
    offers three primitive kinds:

    - {b counters} and {b gauges}: [Atomic]-backed tallies, safe to
      bump from any domain.  Counters are {e always on} — they are the
      work-accounting backbone ("this batch cost one sweep") that tests
      and benchmarks rely on, and an atomic increment per sweep-level
      event is free compared to the work it counts.
    - {b histograms}: fixed-bucket distributions (window sizes,
      iteration counts, per-task latencies).  Recorded only while
      {!enabled}.
    - {b spans}: hierarchically nested timed sections on a monotonic
      clock.  Recorded only while {!enabled}.

    {b Overhead discipline.}  Every gated probe starts with a single
    load-and-branch on the process-wide enabled flag; when telemetry is
    disabled (the default) that branch is the whole cost.  Probes are
    placed at sweep/solve/section granularity, never inside the
    per-nonzero inner loops, so enabling telemetry costs a few percent
    at most (bench --obs-report measures the ratio).

    {b Determinism.}  Telemetry never influences numerical results:
    enabling it changes no solver output bit (asserted by the test
    suite).  Span streams from a parallel fan-out are made
    deterministic the same way [Diag] events are: wrap each task in
    {!capture} on its own domain and {!replay} the buffers in input
    order. *)

val enabled : unit -> bool
val enable : unit -> unit

val disable : unit -> unit
(** Stop recording gated probes.  Already-recorded data is kept (drain
    it with {!snapshot}, drop it with {!reset}). *)

val reset : unit -> unit
(** Clear recorded spans and zero every counter, gauge and histogram.
    The enabled flag is left as it is. *)

val now_ns : unit -> int64
(** Monotonic clock, nanoseconds (CLOCK_MONOTONIC). *)

(** {1 Counters}

    Named monotone tallies, interned process-wide: [counter name]
    returns the same counter for the same name everywhere, so the
    instrumented module and the test/exporter that reads it need not
    share code.  Increments are atomic and {e unconditional} (not
    gated on {!enabled}). *)

type counter

val counter : string -> counter
val incr : counter -> unit
val add : counter -> int -> unit
val value : counter -> int
val counter_name : counter -> string
val reset_counter : counter -> unit

(** {1 Gauges}

    Last-value-wins named floats (sizes, rates).  Sets are gated on
    {!enabled}. *)

type gauge

val gauge : string -> gauge
val set_gauge : gauge -> float -> unit
val gauge_value : gauge -> float

(** {1 Histograms}

    Fixed upper-bound buckets plus an overflow bucket; observation [v]
    lands in the first bucket with [v <= bound].  Counts are atomic;
    observations are gated on {!enabled}. *)

type histogram

val histogram : ?buckets:float array -> string -> histogram
(** Interned by name like counters.  [buckets] (strictly increasing
    upper bounds) is honoured on the first creation of a name;
    later calls return the existing histogram unchanged.  The default
    buckets are decades from 1e-6 to 1e6. *)

val observe : histogram -> float -> unit
val observe_int : histogram -> int -> unit

(** {1 Spans} *)

type span = {
  sp_name : string;
  sp_start_ns : int64;  (** monotonic-clock start *)
  sp_dur_ns : int64;
  sp_self_ns : int64;
      (** duration minus the time spent in directly nested spans
          closed on the same domain *)
  sp_depth : int;  (** nesting depth at open time (0 = root) *)
  sp_domain : int;  (** id of the recording domain (trace "tid") *)
  sp_ctx : string option;
      (** trace context (request id) active when the span closed — see
          {!with_context}; carried into {!trace_json} as ["rid"] *)
}

val with_context : string -> (unit -> 'a) -> 'a
(** [with_context rid f] stamps every span the {e current domain}
    records during [f] with [rid] (restoring the previous context when
    [f] returns or raises; contexts nest, inner wins).  The service
    layer wraps each request's work in its request id so one slow
    query can be filtered out of a merged trace. *)

val current_context : unit -> string option
(** The current domain's active context, if any. *)

val with_span : string -> (unit -> 'a) -> 'a
(** [with_span name f] times [f ()] and records a completed span
    (also when [f] raises).  Spans nest per domain: a span opened
    inside another on the same domain records depth and contributes to
    the parent's child time.  When telemetry is disabled this is a
    single branch around [f ()]. *)

val capture : (unit -> 'a) -> 'a * span list
(** [capture f] redirects the {e current domain's} span recordings to
    a private buffer for the extent of [f] and returns them oldest
    first, exactly like [Diag.capture] does for events.  Nests; on
    exceptions the redirection is undone and the buffer dropped.
    Spans recorded by other domains during the call are not captured —
    wrap each parallel task separately and {!replay} in input order
    for a deterministic merged stream. *)

val replay : span list -> unit
(** Re-record spans in list order (into the shared sink, or into the
    enclosing {!capture} buffer if one is in flight).  Timestamps are
    kept as recorded — all domains share one monotonic clock. *)

(** {1 Snapshots and export} *)

type histogram_snapshot = {
  hs_name : string;
  hs_bounds : float array;
  hs_counts : int array;  (** length = [length hs_bounds + 1] (overflow last) *)
  hs_total : int;
  hs_sum : float;
  hs_max : float;
}

type snapshot = {
  snap_spans : span list;  (** completed spans, oldest first *)
  snap_counters : (string * int) list;  (** sorted by name *)
  snap_gauges : (string * float) list;  (** sorted by name *)
  snap_histograms : histogram_snapshot list;  (** sorted by name *)
}

val snapshot : unit -> snapshot

type rollup_row = {
  r_name : string;
  r_count : int;
  r_total_ns : int64;
  r_self_ns : int64;
  r_max_ns : int64;
}

val rollup : span list -> rollup_row list
(** Aggregate spans by name (count, total, self, max), sorted by total
    time descending (ties by name). *)

val metrics_json : snapshot -> string
(** Machine-readable metrics dump: schema ["batlife.metrics/1"] with
    ["counters"], ["gauges"], ["histograms"] objects and a ["spans"]
    roll-up array (milliseconds). *)

val trace_json : snapshot -> string
(** Chrome [trace_event] export: a JSON object with a ["traceEvents"]
    array of complete ("ph": "X") events, loadable in about:tracing
    and Perfetto.  Timestamps are microseconds relative to the
    earliest recorded span; "tid" is the recording domain. *)

val write_metrics : path:string -> snapshot -> unit
val write_trace : path:string -> snapshot -> unit
