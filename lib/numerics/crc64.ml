(* CRC-64/XZ (reflected ECMA-182 polynomial), table-driven.

   Checkpoint files carry a CRC64 footer so that corruption the
   filesystem lets through — torn writes, bit rot, truncation by an
   interrupted copy — is detected at load time instead of being parsed
   into a silently wrong resume state.  The 64-bit width keeps the
   collision probability negligible for multi-megabyte snapshot
   payloads. *)

let poly = 0xC96C5795D7870F42L

let table =
  lazy
    (Array.init 256 (fun i ->
         let crc = ref (Int64.of_int i) in
         for _ = 0 to 7 do
           crc :=
             if Int64.logand !crc 1L <> 0L then
               Int64.logxor (Int64.shift_right_logical !crc 1) poly
             else Int64.shift_right_logical !crc 1
         done;
         !crc))

let update crc s =
  let t = Lazy.force table in
  let c = ref (Int64.lognot crc) in
  String.iter
    (fun ch ->
      let idx =
        Int64.to_int
          (Int64.logand
             (Int64.logxor !c (Int64.of_int (Char.code ch)))
             0xFFL)
      in
      c := Int64.logxor (Int64.shift_right_logical !c 8) t.(idx))
    s;
  Int64.lognot !c

let digest s = update 0L s
