(** Truncated Poisson weight computation for uniformisation.

    Uniformisation of a CTMC expresses a transient measure as
    [sum_n pois(lambda; n) m_n].  For large [lambda] (the paper's Fig. 7
    needs [lambda = q t ~ 4e4]) one needs the weights of the bulk of the
    distribution only, computed in a numerically stable way.  This module
    follows the Fox–Glynn approach: start at the mode, recur outwards,
    truncate when the accumulated tail mass is below the requested
    accuracy, and renormalise. *)

type t = private {
  left : int;  (** first retained index *)
  right : int;  (** last retained index *)
  weights : float array;
      (** [weights.(n - left)] is the (renormalised) Poisson probability
          of [n] *)
  defect : float;
      (** upper bound on the truncated-away tail mass, from the
          geometric tail bounds at the window's two stopping points
          ([>= 0]; at most [accuracy / 2] by construction) — the
          quantity the sweeps' a-posteriori Fox–Glynn audit checks *)
}

val weights : ?accuracy:float -> float -> t
(** [weights ?accuracy lambda] computes truncated weights for a Poisson
    distribution with rate [lambda >= 0].  The truncated total mass
    before renormalisation is at least [1 - accuracy] (default
    [1e-12]).  Raises [Invalid_argument] on negative [lambda]. *)

val prob : t -> int -> float
(** [prob w n] is the weight of [n], zero outside the truncation
    window. *)

val fold : t -> init:'a -> f:('a -> int -> float -> 'a) -> 'a
(** Fold over the retained [(n, weight)] pairs in increasing order of
    [n]. *)

val total : t -> float
(** Sum of the retained weights (1 up to rounding, after
    renormalisation). *)

val cdf_complement : t -> int -> float
(** [cdf_complement w n] is [P(N > n)] under the truncated
    distribution. *)
