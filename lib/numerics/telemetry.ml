(* Domain-safe instrumentation: spans, counters, gauges, histograms.

   Design constraints, in order:

   1. Zero-cost when off.  Every gated probe ([with_span], [observe],
      [set_gauge]) begins with one atomic load and branch; the default
      state records nothing and allocates nothing.
   2. Domain safety.  Counter/gauge/histogram cells are [Atomic];
      completed spans go either to the current domain's capture buffer
      (a DLS cell, no sharing) or to a mutex-protected global sink.
      Span nesting state is per-domain (DLS), never shared.
   3. Determinism where it matters.  [capture]/[replay] mirror
      [Diag.capture]/[Diag.replay] exactly, so a parallel fan-out can
      collect each task's spans on its worker domain and replay them
      in input order — the merged stream is then independent of
      scheduling.  Registry snapshots are sorted by name.

   The monotonic clock comes from bechamel's [monotonic_clock] stub
   library (CLOCK_MONOTONIC, nanoseconds, [@@noalloc]); neither the
   stdlib nor Unix expose a monotonic source. *)

let now_ns = Monotonic_clock.now

(* ------------------------------------------------------------------ *)
(* Enabled flag                                                        *)

let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag
let enable () = Atomic.set enabled_flag true
let disable () = Atomic.set enabled_flag false

(* ------------------------------------------------------------------ *)
(* Registries                                                          *)

(* One mutex guards all three name->cell registries.  Registration is
   rare (module initialisation, mostly); reads and updates of the cells
   themselves never take the lock. *)

type counter = { c_name : string; c_cell : int Atomic.t }
type gauge = { g_name : string; g_cell : float Atomic.t }

type histogram = {
  h_name : string;
  h_bounds : float array;  (* strictly increasing upper bounds *)
  h_counts : int Atomic.t array;  (* length = bounds + 1; overflow last *)
  h_sum : float Atomic.t;
  h_max : float Atomic.t;
}

let registry_mutex = Mutex.create ()
let counters : (string, counter) Hashtbl.t = Hashtbl.create 32
let gauges : (string, gauge) Hashtbl.t = Hashtbl.create 16
let histograms : (string, histogram) Hashtbl.t = Hashtbl.create 16

let intern table name make =
  Mutex.lock registry_mutex;
  let cell =
    match Hashtbl.find_opt table name with
    | Some c -> c
    | None ->
        let c = make () in
        Hashtbl.add table name c;
        c
  in
  Mutex.unlock registry_mutex;
  cell

let counter name =
  intern counters name (fun () -> { c_name = name; c_cell = Atomic.make 0 })

let incr c = ignore (Atomic.fetch_and_add c.c_cell 1)
let add c n = ignore (Atomic.fetch_and_add c.c_cell n)
let value c = Atomic.get c.c_cell
let counter_name c = c.c_name
let reset_counter c = Atomic.set c.c_cell 0

let gauge name =
  intern gauges name (fun () -> { g_name = name; g_cell = Atomic.make 0.0 })

let set_gauge g v = if Atomic.get enabled_flag then Atomic.set g.g_cell v
let gauge_value g = Atomic.get g.g_cell

let default_buckets =
  [| 1e-6; 1e-5; 1e-4; 1e-3; 1e-2; 1e-1; 1.; 1e1; 1e2; 1e3; 1e4; 1e5; 1e6 |]

let histogram ?(buckets = default_buckets) name =
  if Array.length buckets = 0 then
    invalid_arg "Telemetry.histogram: need at least one bucket bound";
  Array.iteri
    (fun i b ->
      if i > 0 && not (buckets.(i - 1) < b) then
        invalid_arg "Telemetry.histogram: bounds must be strictly increasing")
    buckets;
  intern histograms name (fun () ->
      {
        h_name = name;
        h_bounds = Array.copy buckets;
        h_counts = Array.init (Array.length buckets + 1) (fun _ -> Atomic.make 0);
        h_sum = Atomic.make 0.0;
        h_max = Atomic.make neg_infinity;
      })

(* Atomic float accumulation: OCaml's [Atomic.t] compares the boxed
   value physically, so a CAS loop over get/compute/set is the portable
   read-modify-write. *)
let rec atomic_update cell f =
  let old = Atomic.get cell in
  if not (Atomic.compare_and_set cell old (f old)) then atomic_update cell f

let bucket_index bounds v =
  (* First bucket whose upper bound admits [v]; NaN and +inf land in
     the overflow bucket. *)
  let n = Array.length bounds in
  let rec go i = if i >= n then n else if v <= bounds.(i) then i else go (i + 1) in
  go 0

let observe h v =
  if Atomic.get enabled_flag then begin
    ignore (Atomic.fetch_and_add h.h_counts.(bucket_index h.h_bounds v) 1);
    atomic_update h.h_sum (fun s -> s +. v);
    atomic_update h.h_max (fun m -> Float.max m v)
  end

let observe_int h n = observe h (float_of_int n)

(* ------------------------------------------------------------------ *)
(* Spans                                                               *)

type span = {
  sp_name : string;
  sp_start_ns : int64;
  sp_dur_ns : int64;
  sp_self_ns : int64;
  sp_depth : int;
  sp_domain : int;
  sp_ctx : string option;
}

(* Per-domain open-span stack (for depth and parent child-time
   accounting) plus the capture redirection cell, mirroring
   [Diag.capture_cell], plus the trace context a service front end
   stamps on every span recorded in its extent. *)
type frame = { f_name : string; f_start : int64; f_depth : int; mutable f_child : int64 }

type dstate = {
  mutable stack : frame list;
  mutable capturing : span list ref option;
  mutable ctx : string option;
}

let dls : dstate Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { stack = []; capturing = None; ctx = None })

let with_context ctx f =
  let st = Domain.DLS.get dls in
  let saved = st.ctx in
  st.ctx <- Some ctx;
  match f () with
  | result ->
      st.ctx <- saved;
      result
  | exception e ->
      st.ctx <- saved;
      raise e

let current_context () = (Domain.DLS.get dls).ctx

let span_sink : span list ref = ref []
let span_mutex = Mutex.create ()

let record_span st sp =
  match st.capturing with
  | Some buffer -> buffer := sp :: !buffer
  | None ->
      Mutex.lock span_mutex;
      span_sink := sp :: !span_sink;
      Mutex.unlock span_mutex

let with_span name f =
  if not (Atomic.get enabled_flag) then f ()
  else begin
    let st = Domain.DLS.get dls in
    let frame =
      { f_name = name; f_start = now_ns (); f_depth = List.length st.stack;
        f_child = 0L }
    in
    st.stack <- frame :: st.stack;
    let finish () =
      let dur = Int64.sub (now_ns ()) frame.f_start in
      (match st.stack with
      | top :: rest when top == frame ->
          st.stack <- rest;
          (match rest with
          | parent :: _ -> parent.f_child <- Int64.add parent.f_child dur
          | [] -> ())
      | _ ->
          (* An effect/exception tore frames out of order; drop down to
             this frame so accounting stays sane. *)
          st.stack <- (match st.stack with [] -> [] | _ :: tl -> tl));
      record_span st
        {
          sp_name = frame.f_name;
          sp_start_ns = frame.f_start;
          sp_dur_ns = dur;
          sp_self_ns = Int64.max 0L (Int64.sub dur frame.f_child);
          sp_depth = frame.f_depth;
          sp_domain = (Domain.self () :> int);
          sp_ctx = st.ctx;
        }
    in
    match f () with
    | result ->
        finish ();
        result
    | exception e ->
        finish ();
        raise e
  end

let capture f =
  let st = Domain.DLS.get dls in
  let saved = st.capturing in
  let buffer = ref [] in
  st.capturing <- Some buffer;
  match f () with
  | result ->
      st.capturing <- saved;
      (result, List.rev !buffer)
  | exception e ->
      st.capturing <- saved;
      raise e

let replay spans =
  let st = Domain.DLS.get dls in
  List.iter (fun sp -> record_span st sp) spans

(* ------------------------------------------------------------------ *)
(* Snapshots                                                           *)

type histogram_snapshot = {
  hs_name : string;
  hs_bounds : float array;
  hs_counts : int array;
  hs_total : int;
  hs_sum : float;
  hs_max : float;
}

type snapshot = {
  snap_spans : span list;
  snap_counters : (string * int) list;
  snap_gauges : (string * float) list;
  snap_histograms : histogram_snapshot list;
}

let sorted_by_name key xs = List.sort (fun a b -> compare (key a) (key b)) xs

let snapshot () =
  Mutex.lock span_mutex;
  let spans = List.rev !span_sink in
  Mutex.unlock span_mutex;
  Mutex.lock registry_mutex;
  let cs = Hashtbl.fold (fun _ c acc -> c :: acc) counters [] in
  let gs = Hashtbl.fold (fun _ g acc -> g :: acc) gauges [] in
  let hs = Hashtbl.fold (fun _ h acc -> h :: acc) histograms [] in
  Mutex.unlock registry_mutex;
  {
    snap_spans = spans;
    snap_counters =
      sorted_by_name fst (List.map (fun c -> (c.c_name, value c)) cs);
    snap_gauges =
      sorted_by_name fst (List.map (fun g -> (g.g_name, gauge_value g)) gs);
    snap_histograms =
      sorted_by_name
        (fun h -> h.hs_name)
        (List.map
           (fun h ->
             let counts = Array.map Atomic.get h.h_counts in
             {
               hs_name = h.h_name;
               hs_bounds = Array.copy h.h_bounds;
               hs_counts = counts;
               hs_total = Array.fold_left ( + ) 0 counts;
               hs_sum = Atomic.get h.h_sum;
               hs_max = Atomic.get h.h_max;
             })
           hs);
  }

let reset () =
  Mutex.lock span_mutex;
  span_sink := [];
  Mutex.unlock span_mutex;
  Mutex.lock registry_mutex;
  Hashtbl.iter (fun _ c -> Atomic.set c.c_cell 0) counters;
  Hashtbl.iter (fun _ g -> Atomic.set g.g_cell 0.0) gauges;
  Hashtbl.iter
    (fun _ h ->
      Array.iter (fun c -> Atomic.set c 0) h.h_counts;
      Atomic.set h.h_sum 0.0;
      Atomic.set h.h_max neg_infinity)
    histograms;
  Mutex.unlock registry_mutex

(* ------------------------------------------------------------------ *)
(* Roll-up                                                             *)

type rollup_row = {
  r_name : string;
  r_count : int;
  r_total_ns : int64;
  r_self_ns : int64;
  r_max_ns : int64;
}

let rollup spans =
  let table : (string, rollup_row ref) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun sp ->
      match Hashtbl.find_opt table sp.sp_name with
      | Some row ->
          let r = !row in
          row :=
            {
              r with
              r_count = r.r_count + 1;
              r_total_ns = Int64.add r.r_total_ns sp.sp_dur_ns;
              r_self_ns = Int64.add r.r_self_ns sp.sp_self_ns;
              r_max_ns = Int64.max r.r_max_ns sp.sp_dur_ns;
            }
      | None ->
          Hashtbl.add table sp.sp_name
            (ref
               {
                 r_name = sp.sp_name;
                 r_count = 1;
                 r_total_ns = sp.sp_dur_ns;
                 r_self_ns = sp.sp_self_ns;
                 r_max_ns = sp.sp_dur_ns;
               }))
    spans;
  Hashtbl.fold (fun _ row acc -> !row :: acc) table []
  |> List.sort (fun a b ->
         match Int64.compare b.r_total_ns a.r_total_ns with
         | 0 -> compare a.r_name b.r_name
         | c -> c)

(* ------------------------------------------------------------------ *)
(* JSON export (hand-written: the toolchain carries no JSON library,
   and both exports are flat enough that printf is clearer)            *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_float v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.1f" v
  else if Float.is_finite v then Printf.sprintf "%.17g" v
  else "null"

let ms_of_ns ns = Int64.to_float ns /. 1e6

let metrics_json snap =
  let buf = Buffer.create 4096 in
  let obj_of fmt kvs =
    String.concat ", " (List.map (fun (k, v) -> Printf.sprintf "\"%s\": %s" (json_escape k) (fmt v)) kvs)
  in
  Buffer.add_string buf "{\n  \"schema\": \"batlife.metrics/1\",\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"counters\": {%s},\n" (obj_of string_of_int snap.snap_counters));
  Buffer.add_string buf
    (Printf.sprintf "  \"gauges\": {%s},\n" (obj_of json_float snap.snap_gauges));
  Buffer.add_string buf "  \"histograms\": {\n";
  List.iteri
    (fun i h ->
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf
        (Printf.sprintf
           "    \"%s\": {\"bounds\": [%s], \"counts\": [%s], \"total\": %d, \
            \"sum\": %s, \"max\": %s}"
           (json_escape h.hs_name)
           (String.concat ", "
              (Array.to_list (Array.map json_float h.hs_bounds)))
           (String.concat ", "
              (Array.to_list (Array.map string_of_int h.hs_counts)))
           h.hs_total (json_float h.hs_sum)
           (json_float (if h.hs_total = 0 then 0.0 else h.hs_max))))
    snap.snap_histograms;
  Buffer.add_string buf "\n  },\n";
  Buffer.add_string buf "  \"spans\": [\n";
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"name\": \"%s\", \"count\": %d, \"total_ms\": %s, \
            \"self_ms\": %s, \"max_ms\": %s}"
           (json_escape r.r_name) r.r_count
           (json_float (ms_of_ns r.r_total_ns))
           (json_float (ms_of_ns r.r_self_ns))
           (json_float (ms_of_ns r.r_max_ns))))
    (rollup snap.snap_spans);
  Buffer.add_string buf "\n  ]\n}\n";
  Buffer.contents buf

let trace_json snap =
  (* Chrome trace_event "JSON object format": complete events carry
     start + duration in microseconds.  Timestamps are rebased to the
     first span so the trace opens at t=0 in Perfetto. *)
  let base =
    List.fold_left
      (fun acc sp -> Int64.min acc sp.sp_start_ns)
      Int64.max_int snap.snap_spans
  in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\": [\n";
  List.iteri
    (fun i sp ->
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf
        (Printf.sprintf
           "  {\"name\": \"%s\", \"cat\": \"batlife\", \"ph\": \"X\", \
            \"ts\": %s, \"dur\": %s, \"pid\": 1, \"tid\": %d, \
            \"args\": {\"depth\": %d%s}}"
           (json_escape sp.sp_name)
           (json_float (Int64.to_float (Int64.sub sp.sp_start_ns base) /. 1e3))
           (json_float (Int64.to_float sp.sp_dur_ns /. 1e3))
           sp.sp_domain sp.sp_depth
           (match sp.sp_ctx with
           | None -> ""
           | Some rid -> Printf.sprintf ", \"rid\": \"%s\"" (json_escape rid))))
    snap.snap_spans;
  Buffer.add_string buf "\n], \"displayTimeUnit\": \"ms\"}\n";
  Buffer.contents buf

(* Atomic (temp + rename): an export interrupted by a kill or a full
   disk never clobbers a previous complete dump. *)
let write_string ~path s = Atomic_io.write_file ~path s

let write_metrics ~path snap = write_string ~path (metrics_json snap)
let write_trace ~path snap = write_string ~path (trace_json snap)
