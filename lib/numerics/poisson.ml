type t = {
  left : int;
  right : int;
  weights : float array;
  defect : float;
}

let c_windows = Telemetry.counter "poisson.windows"

(* Window width drives sweep cost (one vector-matrix product per term),
   so the distribution of widths is the first thing to look at when a
   model is slow. *)
let h_window =
  Telemetry.histogram
    ~buckets:[| 8.; 16.; 32.; 64.; 128.; 256.; 512.; 1024.; 4096.; 16384. |]
    "poisson.window_size"

(* The weights decrease monotonically away from the mode, so recurring
   outwards from the mode never overflows once the mode weight is
   represented exactly in log space.  We stop extending a side when its
   next weight would add less than [accuracy / 2] relative mass. *)
let weights ?(accuracy = 1e-12) lambda =
  if lambda < 0. then invalid_arg "Poisson.weights: negative rate";
  Telemetry.incr c_windows;
  if lambda = 0. then begin
    Telemetry.observe_int h_window 1;
    { left = 0; right = 0; weights = [| 1. |]; defect = 0. }
  end
  else begin
    Telemetry.with_span "poisson.weights" @@ fun () ->
    let mode = int_of_float (Float.floor lambda) in
    let log_w_mode =
      (float_of_int mode *. log lambda)
      -. lambda
      -. Special.log_factorial mode
    in
    let w_mode = exp log_w_mode in
    (* Walk right from the mode. *)
    let right_weights = ref [] in
    let n = ref mode and w = ref w_mode and tail = ref 0. in
    let cutoff = accuracy /. 4. in
    let right_tail = ref 0. in
    let continue = ref true in
    while !continue do
      let n' = !n + 1 in
      let w' = !w *. lambda /. float_of_int n' in
      (* A geometric-series bound on the remaining right tail: once the
         ratio is < 1, remaining mass <= w' / (1 - ratio). *)
      let ratio = lambda /. float_of_int (n' + 1) in
      let bound = if ratio < 1. then w' /. (1. -. ratio) else infinity in
      if bound <= cutoff then begin
        right_tail := bound;
        continue := false
      end
      else begin
        right_weights := w' :: !right_weights;
        n := n';
        w := w';
        tail := !tail +. w'
      end
    done;
    let right = !n in
    (* Walk left from the mode. *)
    let left_weights = ref [] in
    let n = ref mode and w = ref w_mode in
    let left_tail = ref 0. in
    let continue = ref true in
    while !continue && !n > 0 do
      let w' = !w *. float_of_int !n /. lambda in
      (* Left weights decay at least geometrically with ratio n/lambda
         once n < lambda. *)
      let ratio = float_of_int (!n - 1) /. lambda in
      let bound = if ratio < 1. then w' /. (1. -. ratio) else infinity in
      if bound <= cutoff then begin
        left_tail := bound;
        continue := false
      end
      else begin
        left_weights := w' :: !left_weights;
        n := !n - 1;
        w := w'
      end
    done;
    let left = !n in
    let ws =
      Array.of_list (!left_weights @ (w_mode :: List.rev !right_weights))
    in
    let total = Array.fold_left ( +. ) 0. ws in
    let ws = Array.map (fun x -> x /. total) ws in
    Telemetry.observe_int h_window (right - left + 1);
    (* Truncation accounting: the geometric tail bounds captured at
       the two stopping points, relative to the represented mass.
       Dividing by [total] cancels the common scale of the recurrence
       (all weights inherit exp(log w_mode)'s ~lambda*eps relative
       error, so [1 - sum] could NOT resolve a 1e-12 truncation), and
       by construction the bound stays <= accuracy/2 — what the
       a-posteriori sweep verification audits against [accuracy]. *)
    { left; right; weights = ws; defect = (!left_tail +. !right_tail) /. total }
  end

let prob t n =
  if n < t.left || n > t.right then 0. else t.weights.(n - t.left)

let fold t ~init ~f =
  let acc = ref init in
  for i = 0 to Array.length t.weights - 1 do
    acc := f !acc (t.left + i) t.weights.(i)
  done;
  !acc

let total t = Array.fold_left ( +. ) 0. t.weights

let cdf_complement t n =
  fold t ~init:0. ~f:(fun acc m w -> if m > n then acc +. w else acc)
