(* Crash-safe file writes: temp file in the destination directory,
   flush + fsync, then atomic rename.  A reader never observes a
   truncated file — it sees either the old content or the new one. *)

let with_out ~path f =
  let dir = Filename.dirname path in
  let base = Filename.basename path in
  let tmp, oc =
    try Filename.open_temp_file ~temp_dir:dir ("." ^ base ^ ".") ".tmp"
    with Sys_error msg ->
      Diag.fail
        (Diag.Parse_error
           { source = path; line = 0; field = None; message = msg })
  in
  match
    let result = f oc in
    flush oc;
    (try Unix.fsync (Unix.descr_of_out_channel oc)
     with Unix.Unix_error _ -> () (* e.g. pipes in tests; rename still atomic *));
    close_out oc;
    result
  with
  | result ->
      Sys.rename tmp path;
      result
  | exception e ->
      close_out_noerr oc;
      (try Sys.remove tmp with Sys_error _ -> ());
      raise e

let write_file ~path contents =
  with_out ~path (fun oc -> output_string oc contents)
