(* Crash-safe file writes: temp file in the destination directory,
   flush + fsync, then atomic rename, then fsync of the parent
   directory.  A reader never observes a truncated file — it sees
   either the old content or the new one — and once [with_out] returns
   the rename itself is durable (the directory entry has reached the
   disk, not just the file data).

   Every step is an [Fi] injection site, so the chaos harness can
   simulate a full disk, a lying fsync, a failed rename or a torn
   write and assert the callers' recovery behaviour. *)

let fi_write = Fi.site "atomic_io.write_fail"
let fi_short = Fi.site "atomic_io.short_write"
let fi_fsync = Fi.site "atomic_io.fsync_fail"
let fi_rename = Fi.site "atomic_io.rename_fail"
let fi_dir_fsync = Fi.site "atomic_io.dir_fsync_fail"

let io_error ~path message =
  Diag.fail
    (Diag.Parse_error { source = path; line = 0; field = None; message })

(* POSIX durability of a rename needs an fsync of the containing
   directory; without it a power loss can roll the directory entry
   back even though the file data was synced.  Failures are swallowed
   like file-fsync failures: some filesystems refuse to fsync a
   directory fd, and the rename stays atomic either way. *)
let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
      (try
         if Fi.fires fi_dir_fsync then
           raise (Unix.Unix_error (Unix.EIO, "fsync", dir))
         else Unix.fsync fd
       with Unix.Unix_error _ -> ());
      (try Unix.close fd with Unix.Unix_error _ -> ())

let with_out ~path f =
  if Fi.fires fi_write then
    io_error ~path "injected write failure (fault site atomic_io.write_fail)";
  let dir = Filename.dirname path in
  let base = Filename.basename path in
  let tmp, oc =
    try Filename.open_temp_file ~temp_dir:dir ("." ^ base ^ ".") ".tmp"
    with Sys_error msg ->
      Diag.fail
        (Diag.Parse_error
           { source = path; line = 0; field = None; message = msg })
  in
  match
    let result = f oc in
    flush oc;
    (try
       if Fi.fires fi_fsync then
         raise (Unix.Unix_error (Unix.EIO, "fsync", tmp))
       else Unix.fsync (Unix.descr_of_out_channel oc)
     with Unix.Unix_error _ -> () (* e.g. pipes in tests; rename still atomic *));
    close_out oc;
    result
  with
  | result ->
      if Fi.fires fi_rename then begin
        (try Sys.remove tmp with Sys_error _ -> ());
        io_error ~path
          "injected rename failure (fault site atomic_io.rename_fail)"
      end;
      Sys.rename tmp path;
      fsync_dir dir;
      result
  | exception e ->
      close_out_noerr oc;
      (try Sys.remove tmp with Sys_error _ -> ());
      raise e

(* Append-only logs (JSONL access/slow-query logs) cannot use the
   temp+rename dance — each line must land next to the previous ones.
   The crash-safety story is different but equally simple: the file is
   opened O_APPEND and every line goes out as one [write]; POSIX makes
   O_APPEND writes atomic with respect to concurrent appenders, so
   lines never interleave, and a crash can only lose the tail line,
   never corrupt earlier ones. *)
type appender = { ap_path : string; ap_fd : Unix.file_descr; ap_mutex : Mutex.t }

let appender ~path =
  if Fi.fires fi_write then
    io_error ~path "injected write failure (fault site atomic_io.write_fail)";
  match
    Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644
  with
  | fd -> { ap_path = path; ap_fd = fd; ap_mutex = Mutex.create () }
  | exception Unix.Unix_error (err, _, _) ->
      io_error ~path (Unix.error_message err)

let append_line ap line =
  let line =
    let n = String.length line in
    if n > 0 && line.[n - 1] = '\n' then String.sub line 0 (n - 1) else line
  in
  let data = Bytes.of_string (line ^ "\n") in
  Mutex.lock ap.ap_mutex;
  let result =
    try Ok (ignore (Unix.write ap.ap_fd data 0 (Bytes.length data)))
    with Unix.Unix_error (err, _, _) -> Error err
  in
  Mutex.unlock ap.ap_mutex;
  match result with
  | Ok () -> ()
  | Error err -> io_error ~path:ap.ap_path (Unix.error_message err)

(* fsync before close: appended lines ride the page cache until the
   kernel flushes them, and a host losing power right after a graceful
   drain would otherwise drop the tail of the access log.  A failing
   fsync degrades durability only (same policy as [with_out]), so it
   is swallowed; the close still happens. *)
let close_appender ap =
  Mutex.lock ap.ap_mutex;
  (try Unix.fsync ap.ap_fd with Unix.Unix_error _ -> ());
  (try Unix.close ap.ap_fd with Unix.Unix_error _ -> ());
  Mutex.unlock ap.ap_mutex

let write_file ~path contents =
  (* A short write models storage-level corruption the rename cannot
     prevent: the file lands complete as far as this process can tell,
     but holds only a prefix of the content.  Callers that must detect
     this (checkpoints) carry their own integrity footer. *)
  let contents =
    if Fi.fires fi_short then
      String.sub contents 0 (String.length contents / 2)
    else contents
  in
  with_out ~path (fun oc -> output_string oc contents)
