(** Deterministic pseudo-random numbers for reproducible simulation.

    xoshiro256++ core seeded through splitmix64 — self-contained, fast,
    and with a [split] operation for independent replication streams,
    so Monte-Carlo experiments are reproducible run-to-run and
    parallelisable replication-by-replication. *)

type t

val create : ?seed:int64 -> unit -> t
(** Default seed is a fixed constant: two unseeded generators produce
    identical streams by design. *)

val copy : t -> t

val state : t -> int64 array
(** Snapshot of the four xoshiro256++ state words, for
    checkpointing.  [of_state (state t)] continues the exact stream
    [t] would have produced. *)

val of_state : int64 array -> t
(** Rebuild a generator from a {!state} snapshot.  Raises
    [Invalid_argument] unless given exactly 4 words with at least one
    nonzero (the all-zero state is a fixed point of xoshiro256++). *)

val split : t -> t
(** Derive a statistically independent generator (jump via fresh
    splitmix64 reseeding from the parent's next outputs). *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val uniform : t -> float
(** Uniform on [\[0, 1)] with 53-bit resolution. *)

val uniform_positive : t -> float
(** Uniform on [(0, 1)] (never exactly 0 — safe for logarithms). *)

val uniform_range : t -> lo:float -> hi:float -> float

val int_below : t -> int -> int
(** Uniform in [\[0, n)]; rejection-sampled, unbiased.  [n > 0]. *)

val exponential : t -> rate:float -> float
(** Inverse-CDF exponential sample; [rate > 0]. *)

val erlang : t -> k:int -> rate:float -> float
(** Sum of [k] independent exponentials. *)

val bernoulli : t -> p:float -> bool

val discrete : t -> float array -> int
(** Sample an index proportionally to the (non-negative, not all zero)
    weights. *)
