type result = { solution : float array; iterations : int; residual : float }

exception Did_not_converge of result

let c_solves = Telemetry.counter "iterative.solves"
let c_fallbacks = Telemetry.counter "iterative.fallbacks"

let h_iterations =
  Telemetry.histogram
    ~buckets:[| 1.; 2.; 5.; 10.; 20.; 50.; 100.; 500.; 1000.; 10000.; 100000. |]
    "iterative.iterations"

let check_square (a : Sparse.t) b =
  if a.Sparse.rows <> a.Sparse.cols then
    invalid_arg "Iterative: matrix not square";
  if Array.length b <> a.Sparse.rows then
    invalid_arg "Iterative: right-hand side length"

let diagonal (a : Sparse.t) =
  let d = Array.make a.Sparse.rows 0. in
  Sparse.iter a (fun i j v -> if i = j then d.(i) <- d.(i) +. v);
  d

let residual_norm ?(skip = fun _ -> false) (a : Sparse.t) x b =
  let r = Sparse.matvec a x in
  let worst = ref 0. in
  Array.iteri
    (fun i ri ->
      if not (skip i) then worst := Float.max !worst (Float.abs (ri -. b.(i))))
    r;
  !worst

let scale_of b = Float.max 1. (Vector.norm_inf b)

(* A NaN residual means the iteration is polluted beyond recovery;
   spinning to the budget would only report a misleading
   non-convergence. *)
let check_residual ~where ~iter res =
  if Float.is_nan res then
    Diag.breakdown ~where "residual became NaN at iteration %d" iter

let jacobi ?(tol = 1e-10) ?(max_iter = 100_000) ?x0 ?(skip = fun _ -> false) a
    ~b =
  Telemetry.with_span "iterative.jacobi" @@ fun () ->
  check_square a b;
  let n = a.Sparse.rows in
  let d = diagonal a in
  Array.iteri
    (fun i di ->
      if di = 0. && not (skip i) then
        invalid_arg (Printf.sprintf "Iterative.jacobi: zero diagonal at %d" i))
    d;
  let x = match x0 with Some x -> Array.copy x | None -> Array.make n 0. in
  let x' = Array.make n 0. in
  let threshold = tol *. scale_of b in
  let budget = Budget.ambient () in
  let rec loop x x' iter =
    Budget.note_product budget;
    Budget.check ~what:"Iterative.jacobi" budget;
    (* x'_i = (b_i - sum_{j<>i} a_ij x_j) / a_ii *)
    Array.blit b 0 x' 0 n;
    Sparse.iter a (fun i j v -> if i <> j then x'.(i) <- x'.(i) -. (v *. x.(j)));
    for i = 0 to n - 1 do
      if skip i then x'.(i) <- x.(i) else x'.(i) <- x'.(i) /. d.(i)
    done;
    let res = residual_norm ~skip a x' b in
    check_residual ~where:"Iterative.jacobi" ~iter res;
    if res <= threshold then { solution = Array.copy x'; iterations = iter;
                               residual = res }
    else if iter >= max_iter then
      raise
        (Did_not_converge
           { solution = Array.copy x'; iterations = iter; residual = res })
    else loop x' x (iter + 1)
  in
  let r = loop x x' 1 in
  Telemetry.incr c_solves;
  Telemetry.observe_int h_iterations r.iterations;
  r

let gauss_seidel ?(tol = 1e-10) ?(max_iter = 100_000) ?x0
    ?(skip = fun _ -> false) (a : Sparse.t) ~b =
  Telemetry.with_span "iterative.gauss_seidel" @@ fun () ->
  check_square a b;
  let n = a.Sparse.rows in
  let x = match x0 with Some x -> Array.copy x | None -> Array.make n 0. in
  let row_ptr = a.Sparse.row_ptr
  and col_idx = a.Sparse.col_idx
  and values = a.Sparse.values in
  let threshold = tol *. scale_of b in
  let sweep () =
    for i = 0 to n - 1 do
      if not (skip i) then begin
        let acc = ref b.(i) and diag = ref 0. in
        for k = row_ptr.(i) to row_ptr.(i + 1) - 1 do
          let j = Int32.to_int (Bigarray.Array1.get col_idx k) in
          let v = Fvec.get values k in
          if j = i then diag := !diag +. v
          else acc := !acc -. (v *. x.(j))
        done;
        if !diag = 0. then
          invalid_arg
            (Printf.sprintf "Iterative.gauss_seidel: zero diagonal at %d" i);
        x.(i) <- !acc /. !diag
      end
    done
  in
  let budget = Budget.ambient () in
  let rec loop iter =
    Budget.note_product budget;
    Budget.check ~what:"Iterative.gauss_seidel" budget;
    sweep ();
    (* Residual restricted to the non-skipped rows. *)
    let res = residual_norm ~skip a x b in
    check_residual ~where:"Iterative.gauss_seidel" ~iter res;
    if res <= threshold then
      { solution = Array.copy x; iterations = iter; residual = res }
    else if iter >= max_iter then
      raise
        (Did_not_converge
           { solution = Array.copy x; iterations = iter; residual = res })
    else loop (iter + 1)
  in
  let r = loop 1 in
  Telemetry.incr c_solves;
  Telemetry.observe_int h_iterations r.iterations;
  r

type path = Primary | Fallback

type robust = { result : result; solver : string; path : path }

let finite_solution r = Array.for_all Float.is_finite r.solution

let solve_robust ?(tol = 1e-10) ?(max_iter = 100_000) ?(fallback_factor = 10)
    ?x0 ?skip a ~b =
  match gauss_seidel ~tol ~max_iter ?x0 ?skip a ~b with
  | r -> { result = r; solver = "gauss-seidel"; path = Primary }
  | exception Did_not_converge primary -> (
      Telemetry.incr c_fallbacks;
      Diag.record ~fallback:true ~origin:"Iterative.solve_robust"
        (Printf.sprintf
           "gauss-seidel stalled after %d sweeps (residual %g); falling back \
            to jacobi with a %dx budget"
           primary.iterations primary.residual fallback_factor);
      (* Warm-start the fallback from the stalled iterate when it is
         still finite; otherwise restart from the caller's guess. *)
      let x0 = if finite_solution primary then Some primary.solution else x0 in
      let budget = max_iter * fallback_factor in
      match jacobi ~tol ~max_iter:budget ?x0 ?skip a ~b with
      | r -> { result = r; solver = "jacobi"; path = Fallback }
      | exception Did_not_converge secondary ->
          Diag.fail
            (Diag.Nonconvergence
               {
                 algorithm = "Iterative.solve_robust";
                 iterations = primary.iterations + secondary.iterations;
                 residual = Float.min primary.residual secondary.residual;
                 tolerance = tol;
                 attempted = [ "gauss-seidel"; "jacobi" ];
               }))
