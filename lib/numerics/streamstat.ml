(* Bounded streaming aggregates: log-bucketed histograms and rolling
   windows.  See the .mli for the quantile error-bound derivation; the
   invariants that matter here are that state is fixed at creation
   (O(buckets) / O(slots)) and that updates are safe from any domain. *)

module Hist = struct
  type t = {
    lo : float;
    ratio : float;  (* bucket bound ratio r = 10^(1/per_decade) *)
    log_lo : float;
    log_ratio : float;
    bounds : float array;  (* upper bounds, bounds.(0) = lo *)
    counts : int Atomic.t array;  (* length bounds + 1; overflow last *)
    sum : float Atomic.t;
    max : float Atomic.t;
  }

  let rec atomic_update cell f =
    let old = Atomic.get cell in
    if not (Atomic.compare_and_set cell old (f old)) then atomic_update cell f

  let create ?(lo = 1e-6) ?(hi = 1e3) ?(per_decade = 20) () =
    if not (0. < lo && lo < hi) then
      invalid_arg "Streamstat.Hist.create: need 0 < lo < hi";
    if per_decade < 1 then
      invalid_arg "Streamstat.Hist.create: need per_decade >= 1";
    let ratio = Float.pow 10. (1. /. float_of_int per_decade) in
    let n =
      (* Smallest n with lo * r^n >= hi, so bounds cover [lo, hi]. *)
      int_of_float (Float.ceil (Float.log10 (hi /. lo) *. float_of_int per_decade))
    in
    let bounds = Array.init (n + 1) (fun i -> lo *. Float.pow ratio (float_of_int i)) in
    {
      lo;
      ratio;
      log_lo = Float.log lo;
      log_ratio = Float.log ratio;
      bounds;
      counts = Array.init (n + 2) (fun _ -> Atomic.make 0);
      sum = Atomic.make 0.0;
      max = Atomic.make neg_infinity;
    }

  let index t v =
    (* Bucket i covers (bounds.(i-1), bounds.(i)]; bucket 0 merges the
       underflow (0, lo].  Direct log computation keeps observe O(1)
       regardless of bucket count; ties on exact bound values are
       resolved by the explicit comparison below. *)
    if v <= t.lo then 0
    else
      let n = Array.length t.bounds in
      let i =
        int_of_float (Float.ceil ((Float.log v -. t.log_lo) /. t.log_ratio))
      in
      let i = if i < 0 then 0 else if i > n then n else i in
      (* Float.log rounding can land one bucket off near a bound. *)
      if i < n && v > t.bounds.(i) then i + 1
      else if i > 0 && v <= t.bounds.(i - 1) then i - 1
      else i

  let observe t v =
    if not (Float.is_nan v) then begin
      ignore (Atomic.fetch_and_add t.counts.(index t v) 1);
      atomic_update t.sum (fun s -> s +. v);
      atomic_update t.max (fun m -> Float.max m v)
    end

  let count t = Array.fold_left (fun acc c -> acc + Atomic.get c) 0 t.counts
  let sum t = Atomic.get t.sum
  let max_seen t = Atomic.get t.max
  let mean t = let n = count t in if n = 0 then nan else sum t /. float_of_int n
  let rel_error_bound t = Float.sqrt t.ratio -. 1.
  let buckets t = Array.length t.counts

  let quantile t p =
    let n = count t in
    if n = 0 then nan
    else begin
      let rank =
        (* Same convention bench/main.ml uses on sorted samples:
           index floor(p * n), clamped to the last sample. *)
        let r = int_of_float (p *. float_of_int n) in
        if r < 0 then 0 else if r >= n then n - 1 else r
      in
      let nb = Array.length t.counts in
      let i = ref 0 and seen = ref 0 in
      while !seen + Atomic.get t.counts.(!i) <= rank && !i < nb - 1 do
        seen := !seen + Atomic.get t.counts.(!i);
        incr i
      done;
      let i = !i in
      if i = 0 then t.lo (* underflow-merged bucket: report its bound *)
      else if i = nb - 1 then Atomic.get t.max (* overflow: best effort *)
      else t.bounds.(i) /. Float.sqrt t.ratio (* geometric midpoint *)
    end

  let snapshot t =
    Array.mapi
      (fun i c ->
        let bound =
          if i < Array.length t.bounds then t.bounds.(i) else infinity
        in
        (bound, Atomic.get c))
      t.counts

  let reset t =
    Array.iter (fun c -> Atomic.set c 0) t.counts;
    Atomic.set t.sum 0.0;
    Atomic.set t.max neg_infinity
end

module Window = struct
  type t = {
    span_s : float;
    slot_ns : int64;
    counts : int array;  (* ring, indexed by epoch mod slots *)
    epochs : int64 array;  (* absolute slot index each ring cell holds *)
    mutex : Mutex.t;
  }

  let create ?(slots = 12) ~span_s () =
    if not (span_s > 0.) then
      invalid_arg "Streamstat.Window.create: need span_s > 0";
    if slots < 1 then invalid_arg "Streamstat.Window.create: need slots >= 1";
    let slot_ns =
      Int64.of_float (Float.max 1. (span_s *. 1e9 /. float_of_int slots))
    in
    {
      span_s;
      slot_ns;
      counts = Array.make slots 0;
      epochs = Array.make slots Int64.min_int;
      mutex = Mutex.create ();
    }

  let now_default = function Some t -> t | None -> Telemetry.now_ns ()

  (* Callers hold the mutex.  A ring cell is live iff its epoch is
     within [slots] of the current one; anything older is retired
     lazily on first touch. *)
  let cell t epoch =
    let slots = Array.length t.counts in
    let i = Int64.to_int (Int64.rem epoch (Int64.of_int slots)) in
    let i = if i < 0 then i + slots else i in
    if t.epochs.(i) <> epoch then begin
      t.epochs.(i) <- epoch;
      t.counts.(i) <- 0
    end;
    i

  let add ?now_ns t n =
    let now = now_default now_ns in
    Mutex.lock t.mutex;
    let i = cell t (Int64.div now t.slot_ns) in
    t.counts.(i) <- t.counts.(i) + n;
    Mutex.unlock t.mutex

  let total ?now_ns t =
    let now = now_default now_ns in
    let slots = Array.length t.counts in
    let epoch = Int64.div now t.slot_ns in
    let oldest = Int64.sub epoch (Int64.of_int (slots - 1)) in
    Mutex.lock t.mutex;
    let acc = ref 0 in
    for i = 0 to slots - 1 do
      if t.epochs.(i) >= oldest && t.epochs.(i) <= epoch then
        acc := !acc + t.counts.(i)
    done;
    Mutex.unlock t.mutex;
    !acc

  let rate ?now_ns t = float_of_int (total ?now_ns t) /. t.span_s
  let span_s t = t.span_s
  let slots t = Array.length t.counts
end
