(** The shared checkpoint/resume hook surface of the resumable
    computations.

    Before this record existed, [Transient]'s sweeps,
    [Batlife_core.Discretized.empty_probability] and
    [Batlife_sim.Montecarlo]'s replication batches each took a
    near-identical triple of optional arguments
    ([?progress]/[?on_interrupt]/[?resume]) differing only in the
    snapshot type and the label of the step argument.  They now all
    take one [?progress:'snapshot Progress.t], parametric in the
    snapshot each computation knows how to take
    ([Transient.sweep_progress], [Montecarlo.progress], ...).

    The contract every consumer honours:

    - [on_step] fires after every completed unit of work (a power
      step, a replication) with the 0-based count of completed units
      and a {e lazy} snapshot thunk — the state copy is only paid when
      the caller actually checkpoints;
    - [on_interrupt] fires with a final snapshot just before a
      budget-exhaustion or cancellation error propagates (the flush
      point of checkpointing callers);
    - [resume] restores a snapshot and continues where it stopped;
      the resumed computation performs the identical remaining work,
      so its results are bitwise equal to an uninterrupted run's. *)

type 'snapshot t = {
  on_step : (step:int -> snapshot:(unit -> 'snapshot) -> unit) option;
  on_interrupt : ('snapshot -> unit) option;
  resume : 'snapshot option;
}

val none : 'snapshot t
(** No hooks, no resume — the default of every consumer.  Shared, so
    [p == none] is a valid fast-path test. *)

val make :
  ?on_step:(step:int -> snapshot:(unit -> 'snapshot) -> unit) ->
  ?on_interrupt:('snapshot -> unit) ->
  ?resume:'snapshot ->
  unit ->
  'snapshot t

val every :
  int -> ('snapshot -> unit) -> step:int -> snapshot:(unit -> 'snapshot) -> unit
(** [every interval save] is an [on_step] callback that forces the
    snapshot and hands it to [save] whenever [step] is a positive
    multiple of [interval] (clamped to at least 1) — the periodic
    checkpoint writer. *)
