type system = float -> float array -> float array

(* Step counters cover the fixed-step walkers too: KiBaM traces are
   integrated with RK4, so "how many ODE steps did this figure cost"
   is answerable from the counters alone. *)
let c_steps = Telemetry.counter "ode.steps"
let c_rejected = Telemetry.counter "ode.steps_rejected"

let euler_step f ~t ~dt ~y =
  let dy = f t y in
  Array.mapi (fun i yi -> yi +. (dt *. dy.(i))) y

let rk4_step f ~t ~dt ~y =
  let n = Array.length y in
  let k1 = f t y in
  let k2 =
    f (t +. (dt /. 2.))
      (Array.init n (fun i -> y.(i) +. (dt /. 2. *. k1.(i))))
  in
  let k3 =
    f (t +. (dt /. 2.))
      (Array.init n (fun i -> y.(i) +. (dt /. 2. *. k2.(i))))
  in
  let k4 = f (t +. dt) (Array.init n (fun i -> y.(i) +. (dt *. k3.(i)))) in
  Array.init n (fun i ->
      y.(i)
      +. (dt /. 6. *. (k1.(i) +. (2. *. k2.(i)) +. (2. *. k3.(i)) +. k4.(i))))

let default_step t0 t1 = (t1 -. t0) /. 1000.

let integrate ?step f ~t0 ~t1 ~y0 =
  if t1 < t0 then invalid_arg "Ode.integrate: t1 < t0";
  let dt = match step with Some s -> s | None -> default_step t0 t1 in
  if dt <= 0. then invalid_arg "Ode.integrate: non-positive step";
  Telemetry.with_span "ode.rk4_integrate" @@ fun () ->
  let budget = Budget.ambient () in
  let t = ref t0 and y = ref (Array.copy y0) in
  let steps = ref 0 in
  while t1 -. !t > 1e-15 *. Float.max 1. (Float.abs t1) do
    Budget.note_product budget;
    Budget.check ~what:"Ode.integrate" budget;
    let h = Float.min dt (t1 -. !t) in
    y := rk4_step f ~t:!t ~dt:h ~y:!y;
    t := !t +. h;
    Stdlib.incr steps
  done;
  Telemetry.add c_steps !steps;
  !y

let trace ?step f ~t0 ~t1 ~y0 =
  if t1 < t0 then invalid_arg "Ode.trace: t1 < t0";
  let dt = match step with Some s -> s | None -> default_step t0 t1 in
  if dt <= 0. then invalid_arg "Ode.trace: non-positive step";
  Telemetry.with_span "ode.rk4_trace" @@ fun () ->
  let budget = Budget.ambient () in
  let t = ref t0 and y = ref (Array.copy y0) in
  let acc = ref [ (t0, Array.copy y0) ] in
  let steps = ref 0 in
  while t1 -. !t > 1e-15 *. Float.max 1. (Float.abs t1) do
    Budget.note_product budget;
    Budget.check ~what:"Ode.trace" budget;
    let h = Float.min dt (t1 -. !t) in
    y := rk4_step f ~t:!t ~dt:h ~y:!y;
    t := !t +. h;
    Stdlib.incr steps;
    acc := (!t, !y) :: !acc
  done;
  Telemetry.add c_steps !steps;
  Array.of_list (List.rev !acc)

type adaptive_result = {
  y : float array;
  steps_taken : int;
  steps_rejected : int;
}

(* Fehlberg 4(5) tableau. *)
let rkf45 ?(rtol = 1e-8) ?(atol = 1e-10) ?initial_step ?(max_steps = 1_000_000)
    ?min_step f ~t0 ~t1 ~y0 =
  if t1 < t0 then invalid_arg "Ode.rkf45: t1 < t0";
  let n = Array.length y0 in
  let h0 =
    match initial_step with Some h -> h | None -> (t1 -. t0) /. 100.
  in
  let floor_step =
    match min_step with
    | Some s -> s
    | None -> 1e-12 *. Float.max 1. (Float.abs (t1 -. t0))
  in
  Telemetry.with_span "ode.rkf45" @@ fun () ->
  let t = ref t0
  and y = ref (Array.copy y0)
  and h = ref (Float.max h0 1e-300) in
  let taken = ref 0 and rejected = ref 0 in
  let add_scaled base coeffs =
    Array.init n (fun i ->
        let acc = ref base.(i) in
        List.iter (fun (c, (k : float array)) -> acc := !acc +. (c *. k.(i)))
          coeffs;
        !acc)
  in
  let budget = Budget.ambient () in
  while t1 -. !t > 1e-14 *. Float.max 1. (Float.abs t1) do
    Budget.note_product budget;
    Budget.check ~what:"Ode.rkf45" budget;
    if !taken + !rejected > max_steps then
      Diag.fail
        (Diag.Budget_exhausted
           {
             what = Printf.sprintf "Ode.rkf45 step budget at t = %g" !t;
             budget = max_steps;
           });
    if !h < floor_step then
      Diag.breakdown ~where:"Ode.rkf45"
        "step size collapsed to %g at t = %g (floor %g): repeated rejections \
         indicate a discontinuity or an unresolvable error estimate"
        !h !t floor_step;
    let h' = Float.min !h (t1 -. !t) in
    let k1 = Array.map (fun d -> h' *. d) (f !t !y) in
    let k2 =
      Array.map (fun d -> h' *. d)
        (f (!t +. (h' /. 4.)) (add_scaled !y [ (0.25, k1) ]))
    in
    let k3 =
      Array.map (fun d -> h' *. d)
        (f
           (!t +. (3. /. 8. *. h'))
           (add_scaled !y [ (3. /. 32., k1); (9. /. 32., k2) ]))
    in
    let k4 =
      Array.map (fun d -> h' *. d)
        (f
           (!t +. (12. /. 13. *. h'))
           (add_scaled !y
              [
                (1932. /. 2197., k1);
                (-7200. /. 2197., k2);
                (7296. /. 2197., k3);
              ]))
    in
    let k5 =
      Array.map (fun d -> h' *. d)
        (f (!t +. h')
           (add_scaled !y
              [
                (439. /. 216., k1);
                (-8., k2);
                (3680. /. 513., k3);
                (-845. /. 4104., k4);
              ]))
    in
    let k6 =
      Array.map (fun d -> h' *. d)
        (f
           (!t +. (h' /. 2.))
           (add_scaled !y
              [
                (-8. /. 27., k1);
                (2., k2);
                (-3544. /. 2565., k3);
                (1859. /. 4104., k4);
                (-11. /. 40., k5);
              ]))
    in
    let y5 =
      add_scaled !y
        [
          (16. /. 135., k1);
          (6656. /. 12825., k3);
          (28561. /. 56430., k4);
          (-9. /. 50., k5);
          (2. /. 55., k6);
        ]
    in
    let y4 =
      add_scaled !y
        [
          (25. /. 216., k1);
          (1408. /. 2565., k3);
          (2197. /. 4104., k4);
          (-1. /. 5., k5);
        ]
    in
    (* Error estimate and acceptance. *)
    let err = ref 0. in
    for i = 0 to n - 1 do
      let scale = atol +. (rtol *. Float.max (Float.abs !y.(i)) (Float.abs y5.(i))) in
      err := Float.max !err (Float.abs (y5.(i) -. y4.(i)) /. scale)
    done;
    (* A NaN error estimate cannot drive step control: every comparison
       fails and the loop would spin to the budget with a NaN state. *)
    if Float.is_nan !err then
      Diag.breakdown ~where:"Ode.rkf45"
        "error estimate became NaN at t = %g (step %g)" !t h';
    if !err <= 1. then begin
      t := !t +. h';
      y := y5;
      incr taken
    end
    else incr rejected;
    let factor =
      if !err = 0. then 4. else Float.min 4. (Float.max 0.1 (0.9 *. Float.pow !err (-0.2)))
    in
    h := h' *. factor
  done;
  Telemetry.add c_steps !taken;
  Telemetry.add c_rejected !rejected;
  { y = !y; steps_taken = !taken; steps_rejected = !rejected }

type solver_path = Adaptive | Fixed_step_fallback

let rkf45_robust ?rtol ?atol ?initial_step ?max_steps ?min_step
    ?(fallback_steps = 10_000) f ~t0 ~t1 ~y0 =
  match rkf45 ?rtol ?atol ?initial_step ?max_steps ?min_step f ~t0 ~t1 ~y0 with
  | r -> (r, Adaptive)
  | exception
      Diag.Error
        ((Diag.Numerical_breakdown _ | Diag.Budget_exhausted _) as reason) ->
      Diag.record ~fallback:true ~origin:"Ode.rkf45_robust"
        (Printf.sprintf "%s; retrying with fixed-step RK4 (%d steps)"
           (Diag.error_to_string reason) fallback_steps);
      let step = (t1 -. t0) /. float_of_int fallback_steps in
      if step <= 0. then Diag.fail reason;
      let y = integrate ~step f ~t0 ~t1 ~y0 in
      if not (Array.for_all Float.is_finite y) then Diag.fail reason;
      ( { y; steps_taken = fallback_steps; steps_rejected = 0 },
        Fixed_step_fallback )

type event_outcome = Reached_end of float array | Event of float * float array

let integrate_until ?step ~event f ~t0 ~t1 ~y0 =
  if t1 < t0 then invalid_arg "Ode.integrate_until: t1 < t0";
  let dt = match step with Some s -> s | None -> default_step t0 t1 in
  if dt <= 0. then invalid_arg "Ode.integrate_until: non-positive step";
  let refine t_lo y_lo h =
    (* Bisect the step [t_lo, t_lo + h]; invariant: event > 0 at lo. *)
    let lo = ref 0. and hi = ref h in
    let y_hi = ref (rk4_step f ~t:t_lo ~dt:h ~y:y_lo) in
    for _ = 1 to 60 do
      let mid = 0.5 *. (!lo +. !hi) in
      let y_mid = rk4_step f ~t:t_lo ~dt:mid ~y:y_lo in
      if event (t_lo +. mid) y_mid > 0. then lo := mid
      else begin
        hi := mid;
        y_hi := y_mid
      end
    done;
    Event (t_lo +. !hi, !y_hi)
  in
  if event t0 y0 <= 0. then Event (t0, Array.copy y0)
  else begin
    let budget = Budget.ambient () in
    let t = ref t0 and y = ref (Array.copy y0) in
    let outcome = ref None in
    while
      Option.is_none !outcome
      && t1 -. !t > 1e-15 *. Float.max 1. (Float.abs t1)
    do
      Budget.note_product budget;
      Budget.check ~what:"Ode.integrate_until" budget;
      let h = Float.min dt (t1 -. !t) in
      let y_next = rk4_step f ~t:!t ~dt:h ~y:!y in
      if event (!t +. h) y_next <= 0. then outcome := Some (refine !t !y h)
      else begin
        t := !t +. h;
        y := y_next
      end
    done;
    match !outcome with Some e -> e | None -> Reached_end !y
  end
