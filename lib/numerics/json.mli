(** Minimal JSON reader/writer for checkpoint files.

    Self-contained (the dependency set has no JSON package) and built
    for one property the resume guarantee rests on: {b numeric
    fidelity}.  Numbers are carried as their raw literal text —
    {!of_float} emits [%.17g], which round-trips every finite binary64
    value exactly, and {!to_float} converts only on projection — so a
    probability vector written to a checkpoint and read back is
    bit-identical.  64-bit RNG words travel as hex strings
    ({!of_int64_hex}/{!to_int64_hex}) to avoid signedness pitfalls.

    All failures (malformed input, missing keys, wrong types) raise
    the structured [Diag.Error (Parse_error _)] with source/line/field
    context, so a corrupted checkpoint surfaces as exit code 4 with a
    useful message, never an [assert]. *)

type t =
  | Null
  | Bool of bool
  | Num of string  (** raw numeric literal, unconverted *)
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(** {1 Construction} *)

val of_float : float -> t
(** [%.17g] rendering (exact binary64 round-trip); NaN and the
    infinities — not representable in JSON — become the strings
    ["nan"], ["inf"], ["-inf"], which {!to_float} maps back. *)

val of_int : int -> t

val of_int64_hex : int64 -> t
(** Hex-string rendering (["0x1234abcd"]) of a raw 64-bit word. *)

(** {1 Projection}

    Each projector raises [Diag.Error (Parse_error _)] naming [field]
    (and [source], when given) on a type mismatch or a missing key. *)

val to_float : ?source:string -> field:string -> t -> float

val to_finite_float : ?source:string -> field:string -> t -> float
(** Like {!to_float} but rejects NaN and the infinities with a
    [Parse_error] — the projector for fields where a non-finite value
    can only mean corruption (probability vectors, time grids, RNG
    observables in checkpoints). *)

val to_int : ?source:string -> field:string -> t -> int
val to_string : ?source:string -> field:string -> t -> string
val to_int64_hex : ?source:string -> field:string -> t -> int64
val to_list : ?source:string -> field:string -> t -> t list

val member : ?source:string -> field:string -> t -> t
(** Required object key. *)

val member_opt : field:string -> t -> t option
(** Optional object key ([None] on absence or non-object). *)

(** {1 Text} *)

val encode : t -> string
(** Compact one-line rendering with a trailing newline. *)

val decode : ?source:string -> string -> t
(** Parse one JSON document; trailing garbage is an error.  [source]
    labels diagnostics (default ["<string>"]). *)

val decode_file : string -> t
(** Read and {!decode} a file; IO errors become [Parse_error] with the
    path as source. *)
