(** Iterative solvers for sparse linear systems.

    The expanded battery generators have up to millions of unknowns, so
    direct factorisation is off the table; their transient parts are
    (irreducibly diagonally dominant) M-matrices, for which Jacobi and
    Gauss–Seidel sweeps converge.  Used for exact first-passage
    expectations (mean battery lifetime without a time grid).

    Both solvers trip a structured
    {!Diag.error.Numerical_breakdown} if the residual becomes NaN;
    {!solve_robust} chains Gauss–Seidel into a bigger-budget Jacobi
    retry so a production batch degrades gracefully instead of
    crashing. *)

type result = {
  solution : float array;
  iterations : int;
  residual : float;  (** final max-norm residual *)
}

exception Did_not_converge of result
(** Raised when the iteration budget is exhausted; carries the best
    iterate for diagnosis. *)

val jacobi :
  ?tol:float ->
  ?max_iter:int ->
  ?x0:float array ->
  ?skip:(int -> bool) ->
  Sparse.t ->
  b:float array ->
  result
(** Solve [A x = b] by Jacobi iteration.  [A] must be square with a
    nonzero diagonal on the non-skipped rows; [tol] (default 1e-10)
    bounds the max-norm residual relative to [max 1 ||b||]; [max_iter]
    defaults to 100_000.  Rows [i] with [skip i = true] are held fixed
    at their initial value. *)

val gauss_seidel :
  ?tol:float ->
  ?max_iter:int ->
  ?x0:float array ->
  ?skip:(int -> bool) ->
  Sparse.t ->
  b:float array ->
  result
(** Gauss–Seidel (forward sweeps); usually converges in far fewer
    sweeps than Jacobi on the battery systems.  Rows [i] with
    [skip i = true] are held fixed at their initial value (used to pin
    absorbing states to 0). *)

type path = Primary | Fallback

type robust = {
  result : result;
  solver : string;  (** name of the solver that produced the result *)
  path : path;
}

val solve_robust :
  ?tol:float ->
  ?max_iter:int ->
  ?fallback_factor:int ->
  ?x0:float array ->
  ?skip:(int -> bool) ->
  Sparse.t ->
  b:float array ->
  robust
(** Fallback chain: try {!gauss_seidel} with [max_iter]; on
    {!Did_not_converge}, retry with {!jacobi} under a
    [fallback_factor]-times larger budget (default 10x), warm-started
    from the stalled iterate when it is finite.  The chosen path is
    recorded via {!Diag.record} so front ends can surface it.  Raises
    [Diag.Error (Nonconvergence _)] when both solvers exhaust their
    budgets (with [attempted] naming the chain members in order). *)
