(* Deterministic fault injection: a registry of named sites.

   Production code declares a site once ([site "atomic_io.rename_fail"])
   and consults [fires] at the exact point where a fault would bite.
   With nothing armed the whole subsystem is a single atomic load and a
   branch per consultation — the same fast-path discipline as
   [Telemetry.enabled] — so leaving the probes wired into the hot paths
   costs nothing in a clean run.

   Determinism: an armed site fires on consultations
   [after .. after + count - 1] of its own per-site counter, counted
   only while armed.  There is no randomness here; "seeded" fault plans
   are built one level up (the chaos harness draws site names and
   (after, count) pairs from a seeded [Rng]), so a plan replays
   identically and a failing chaos run can be reproduced from its seed
   alone. *)

type site = {
  s_name : string;
  plan : plan option Atomic.t;
  s_hits : int Atomic.t;  (* consultations while armed *)
  s_fired : int Atomic.t;
}

and plan = { p_after : int; p_count : int }

exception Injected of string

(* Off by default; flipped on by [arm] and off by [reset], so the
   disabled fast path of [fires] is one atomic load. *)
let enabled_flag = Atomic.make false
let enabled () = Atomic.get enabled_flag

let registry : (string, site) Hashtbl.t = Hashtbl.create 16
let registry_mutex = Mutex.create ()

let site name =
  Mutex.lock registry_mutex;
  let s =
    match Hashtbl.find_opt registry name with
    | Some s -> s
    | None ->
        let s =
          {
            s_name = name;
            plan = Atomic.make None;
            s_hits = Atomic.make 0;
            s_fired = Atomic.make 0;
          }
        in
        Hashtbl.add registry name s;
        s
  in
  Mutex.unlock registry_mutex;
  s

let name s = s.s_name

let fires s =
  Atomic.get enabled_flag
  &&
  match Atomic.get s.plan with
  | None -> false
  | Some p ->
      (* The counter orders concurrent consultations (pool workers may
         race on one site); each consultation claims a unique index, so
         exactly [count] of them fire no matter how domains are
         scheduled. *)
      let n = Atomic.fetch_and_add s.s_hits 1 in
      n >= p.p_after
      && n < p.p_after + p.p_count
      &&
      (Atomic.incr s.s_fired;
       true)

let inject s = if fires s then raise (Injected s.s_name)

let arm ?(after = 0) ?(count = 1) n =
  if after < 0 then invalid_arg "Fi.arm: need after >= 0";
  if count < 1 then invalid_arg "Fi.arm: need count >= 1";
  let s = site n in
  Atomic.set s.s_hits 0;
  Atomic.set s.s_fired 0;
  Atomic.set s.plan (Some { p_after = after; p_count = count });
  Atomic.set enabled_flag true

let disarm n = Atomic.set (site n).plan None

let reset () =
  Atomic.set enabled_flag false;
  Mutex.lock registry_mutex;
  Hashtbl.iter
    (fun _ s ->
      Atomic.set s.plan None;
      Atomic.set s.s_hits 0;
      Atomic.set s.s_fired 0)
    registry;
  Mutex.unlock registry_mutex

let hits n = Atomic.get (site n).s_hits
let fired n = Atomic.get (site n).s_fired

let armed () =
  Mutex.lock registry_mutex;
  let plans =
    Hashtbl.fold
      (fun _ s acc ->
        match Atomic.get s.plan with
        | None -> acc
        | Some p -> (s.s_name, p.p_after, p.p_count) :: acc)
      registry []
  in
  Mutex.unlock registry_mutex;
  List.sort compare plans

let registered () =
  Mutex.lock registry_mutex;
  let names = Hashtbl.fold (fun n _ acc -> n :: acc) registry [] in
  Mutex.unlock registry_mutex;
  List.sort compare names
