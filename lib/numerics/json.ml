(* Minimal JSON reader/writer for checkpoints.

   Numbers are carried as their raw literal text ([Num of string]):
   floats are emitted with %.17g, which round-trips every binary64
   value exactly, and parsing never converts until the caller asks —
   so a checkpoint written and re-read reproduces bit-identical
   vectors, the property the resume guarantee rests on. *)

type t =
  | Null
  | Bool of bool
  | Num of string
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* ---------- construction / projection helpers ---------- *)

let of_float f =
  if Float.is_nan f then Str "nan"
  else if f = Float.infinity then Str "inf"
  else if f = Float.neg_infinity then Str "-inf"
  else Num (Printf.sprintf "%.17g" f)

let of_int i = Num (string_of_int i)
let of_int64_hex i = Str (Printf.sprintf "0x%Lx" i)

let type_name = function
  | Null -> "null"
  | Bool _ -> "bool"
  | Num _ -> "number"
  | Str _ -> "string"
  | Arr _ -> "array"
  | Obj _ -> "object"

let projection_error ~source ~field message =
  Diag.fail (Diag.Parse_error { source; line = 0; field = Some field; message })

let to_float ?(source = "<json>") ~field j =
  match j with
  | Num s -> (
      match float_of_string_opt s with
      | Some f -> f
      | None ->
          projection_error ~source ~field ("cannot read " ^ s ^ " as a number"))
  | Str "nan" -> Float.nan
  | Str "inf" -> Float.infinity
  | Str "-inf" -> Float.neg_infinity
  | j -> projection_error ~source ~field ("expected a number, got " ^ type_name j)

let to_finite_float ?(source = "<json>") ~field j =
  let f = to_float ~source ~field j in
  if Float.is_finite f then f
  else
    projection_error ~source ~field
      (Printf.sprintf "expected a finite number, got %s"
         (match j with Str s -> s | _ -> Printf.sprintf "%g" f))

let to_int ?(source = "<json>") ~field j =
  match j with
  | Num s -> (
      match int_of_string_opt s with
      | Some i -> i
      | None ->
          projection_error ~source ~field
            ("cannot read " ^ s ^ " as an integer"))
  | j ->
      projection_error ~source ~field ("expected an integer, got " ^ type_name j)

let to_string ?(source = "<json>") ~field j =
  match j with
  | Str s -> s
  | j -> projection_error ~source ~field ("expected a string, got " ^ type_name j)

let to_int64_hex ?(source = "<json>") ~field j =
  match j with
  | Str s -> (
      match Int64.of_string_opt s with
      | Some i -> i
      | None ->
          projection_error ~source ~field
            ("cannot read " ^ s ^ " as a 64-bit word"))
  | j ->
      projection_error ~source ~field
        ("expected a hex-string word, got " ^ type_name j)

let to_list ?(source = "<json>") ~field j =
  match j with
  | Arr xs -> xs
  | j -> projection_error ~source ~field ("expected an array, got " ^ type_name j)

let member ?(source = "<json>") ~field j =
  match j with
  | Obj kvs -> (
      match List.assoc_opt field kvs with
      | Some v -> v
      | None -> projection_error ~source ~field "required key is missing")
  | j ->
      projection_error ~source ~field ("expected an object, got " ^ type_name j)

let member_opt ~field j =
  match j with Obj kvs -> List.assoc_opt field kvs | _ -> None

(* ---------- emitter ---------- *)

let escape_to buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let rec emit buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num s -> Buffer.add_string buf s
  | Str s ->
      Buffer.add_char buf '"';
      escape_to buf s;
      Buffer.add_char buf '"'
  | Arr xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          emit buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          escape_to buf k;
          Buffer.add_string buf "\":";
          emit buf v)
        kvs;
      Buffer.add_char buf '}'

let encode j =
  let buf = Buffer.create 4096 in
  emit buf j;
  Buffer.add_char buf '\n';
  Buffer.contents buf

(* ---------- parser ---------- *)

type cursor = {
  src : string;  (* for error reports *)
  text : string;
  mutable pos : int;
  mutable line : int;
}

let parse_fail c message =
  Diag.fail
    (Diag.Parse_error { source = c.src; line = c.line; field = None; message })

let peek_char c = if c.pos < String.length c.text then Some c.text.[c.pos] else None

let advance c =
  (if c.pos < String.length c.text && c.text.[c.pos] = '\n' then
     c.line <- c.line + 1);
  c.pos <- c.pos + 1

let skip_ws c =
  let continue = ref true in
  while !continue do
    match peek_char c with
    | Some (' ' | '\t' | '\n' | '\r') -> advance c
    | _ -> continue := false
  done

let expect c ch =
  match peek_char c with
  | Some x when x = ch -> advance c
  | Some x -> parse_fail c (Printf.sprintf "expected %c, got %c" ch x)
  | None -> parse_fail c (Printf.sprintf "expected %c, got end of input" ch)

let literal c word value =
  let n = String.length word in
  if
    c.pos + n <= String.length c.text
    && String.sub c.text c.pos n = word
  then begin
    c.pos <- c.pos + n;
    value
  end
  else parse_fail c ("cannot read JSON value starting with " ^ word)

let parse_string_body c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek_char c with
    | None -> parse_fail c "unterminated string"
    | Some '"' ->
        advance c;
        Buffer.contents buf
    | Some '\\' -> (
        advance c;
        match peek_char c with
        | Some '"' -> Buffer.add_char buf '"'; advance c; go ()
        | Some '\\' -> Buffer.add_char buf '\\'; advance c; go ()
        | Some '/' -> Buffer.add_char buf '/'; advance c; go ()
        | Some 'n' -> Buffer.add_char buf '\n'; advance c; go ()
        | Some 'r' -> Buffer.add_char buf '\r'; advance c; go ()
        | Some 't' -> Buffer.add_char buf '\t'; advance c; go ()
        | Some 'b' -> Buffer.add_char buf '\b'; advance c; go ()
        | Some 'f' -> Buffer.add_char buf '\012'; advance c; go ()
        | Some 'u' ->
            advance c;
            if c.pos + 4 > String.length c.text then
              parse_fail c "truncated \\u escape";
            let hex = String.sub c.text c.pos 4 in
            (match int_of_string_opt ("0x" ^ hex) with
            | None -> parse_fail c ("bad \\u escape: " ^ hex)
            | Some code ->
                (* Checkpoints only ever escape control characters, so a
                   plain byte is sufficient here. *)
                if code < 0x100 then Buffer.add_char buf (Char.chr code)
                else parse_fail c ("unsupported \\u escape: " ^ hex));
            c.pos <- c.pos + 4;
            go ()
        | Some ch -> parse_fail c (Printf.sprintf "bad escape \\%c" ch)
        | None -> parse_fail c "unterminated string")
    | Some '\n' -> parse_fail c "unterminated string"
    | Some ch ->
        Buffer.add_char buf ch;
        advance c;
        go ()
  in
  go ()

let parse_number c =
  let start = c.pos in
  let is_num_char ch =
    (ch >= '0' && ch <= '9')
    || ch = '-' || ch = '+' || ch = '.' || ch = 'e' || ch = 'E'
  in
  while
    match peek_char c with Some ch when is_num_char ch -> true | _ -> false
  do
    advance c
  done;
  let s = String.sub c.text start (c.pos - start) in
  if s = "" || float_of_string_opt s = None then
    parse_fail c ("cannot read " ^ (if s = "" then "value" else s) ^ " as a number");
  Num s

let rec parse_value c =
  skip_ws c;
  match peek_char c with
  | None -> parse_fail c "unexpected end of input"
  | Some '{' ->
      advance c;
      skip_ws c;
      if peek_char c = Some '}' then begin
        advance c;
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws c;
          let k = parse_string_body c in
          skip_ws c;
          expect c ':';
          let v = parse_value c in
          skip_ws c;
          match peek_char c with
          | Some ',' ->
              advance c;
              members ((k, v) :: acc)
          | Some '}' ->
              advance c;
              Obj (List.rev ((k, v) :: acc))
          | _ -> parse_fail c "expected , or } in object"
        in
        members []
      end
  | Some '[' ->
      advance c;
      skip_ws c;
      if peek_char c = Some ']' then begin
        advance c;
        Arr []
      end
      else begin
        let rec elements acc =
          let v = parse_value c in
          skip_ws c;
          match peek_char c with
          | Some ',' ->
              advance c;
              elements (v :: acc)
          | Some ']' ->
              advance c;
              Arr (List.rev (v :: acc))
          | _ -> parse_fail c "expected , or ] in array"
        in
        elements []
      end
  | Some '"' -> Str (parse_string_body c)
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some _ -> parse_number c

let decode ?(source = "<string>") text =
  let c = { src = source; text; pos = 0; line = 1 } in
  let v = parse_value c in
  skip_ws c;
  (match peek_char c with
  | None -> ()
  | Some ch -> parse_fail c (Printf.sprintf "trailing content: %c" ch));
  v

let decode_file path =
  let text =
    try
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    with Sys_error msg ->
      Diag.fail
        (Diag.Parse_error { source = path; line = 0; field = None; message = msg })
  in
  decode ~source:path text
