(** A reusable pool of worker domains (stdlib [Domain], OCaml 5).

    The multicore execution layer of the library: the uniformisation
    kernel partitions its gather-based matrix-vector product over a
    pool, and the experiment runner fans independent curves out over
    one.  Workers are spawned once and parked between parallel
    sections; a section is a plain fork-join barrier in which the
    calling domain executes share 0.

    {b Determinism.}  [run] and [run_chunks] assign each share to
    exactly one worker index by a fixed rule.  A closure that writes
    only locations owned by its share therefore produces results that
    are independent of how the domains are scheduled — this is the
    contract the gather-based {!Sparse.matvec_rows} kernel is built
    on.

    {b Nesting.}  A [run] issued from inside a share of another
    section (any pool) executes all its shares inline on the current
    domain.  The outermost parallel section wins; inner ones take the
    guaranteed sequential path, so composing a parallel experiment
    fan-out with parallel sweeps cannot deadlock.

    {b Exceptions.}  If shares raise, the section still completes
    (every worker finishes or fails), and the exception of the
    lowest-numbered failing share is re-raised — with its original
    backtrace — on the caller.  The pool remains usable.

    {b Supervision.}  A section run with [~supervise:true] re-executes
    a crashed share in place, on the same domain, up to
    {!section_retries} times (same never-retry policy as the
    experiment fan-out: [Diag] cancellation and budget exhaustion
    surface immediately).  This is sound exactly for the closures the
    determinism contract already demands — idempotent writers of
    share-owned locations — so a recovered section is bitwise
    identical to an undisturbed one.  Retries bump the
    ["pool.supervised_retries"] Telemetry counter and record one
    [Diag] fallback note on the {e caller's} domain after the section,
    keeping capture/replay streams identical for every job count.
    Exhausted retries fall back to the normal lowest-index
    propagation.  The [pool.crash] {!Fi} site, consulted at the start
    of every supervised share, injects such crashes
    deterministically. *)

type t

val create : jobs:int -> t
(** [create ~jobs] spawns [jobs - 1] worker domains ([jobs >= 1];
    [jobs = 1] spawns nothing and every operation runs inline on the
    caller).  Raises [Invalid_argument] on [jobs < 1]. *)

val size : t -> int
(** Total shares of a section, including the caller's. *)

val run : ?supervise:bool -> t -> (int -> unit) -> unit
(** [run t f] executes [f 0 .. f (size t - 1)], one share per domain,
    and returns when all have finished.  [supervise] (default false)
    enables crashed-share re-execution; only pass it for closures
    whose shares write their owned locations idempotently. *)

val parallel_for : t -> lo:int -> hi:int -> (lo:int -> hi:int -> unit) -> unit
(** [parallel_for t ~lo ~hi f] covers [\[lo, hi)] with [size t]
    contiguous chunks, [f ~lo ~hi] once per non-empty chunk.  Each
    index belongs to exactly one chunk. *)

val run_chunks :
  ?supervise:bool -> t -> (int * int) array -> (lo:int -> hi:int -> unit) -> unit
(** [run_chunks t bounds f] executes [f] on every non-empty [(lo, hi)]
    range of [bounds]; chunk [i] is always executed by worker
    [i mod size t], so ownership of output ranges is a fixed function
    of the partition.  Use with {!Sparse.nnz_balanced_partition} for a
    load-balanced deterministic matrix kernel.  [supervise] as in
    {!run} (the uniformisation kernel passes it: a worker lost
    mid-product re-runs its partition instead of killing the sweep). *)

val map_array : t -> ('a -> 'b) -> 'a array -> 'b array
(** [map_array t f xs] maps [f] over [xs] with dynamic load balancing
    (an atomic work index).  Result order matches input order; which
    domain computes which element does not. *)

val shutdown : t -> unit
(** Join the worker domains.  Idempotent.  Only meaningful for pools
    made with {!create}; pools from {!get}/{!default} are shared and
    must not be shut down. *)

(** {1 Process-wide default}

    The default job count is resolved, in order, from
    {!set_default_jobs} (the CLI's [--jobs]), the [BATLIFE_JOBS]
    environment variable, and [Domain.recommended_domain_count].  An
    unparsable or non-positive [BATLIFE_JOBS] is ignored (with a
    {!Diag.record} note). *)

val default_jobs : unit -> int

val set_section_retries : int -> unit
(** Process-wide retry budget for supervised sections (default 0 — a
    crashed share propagates immediately).  The CLI wires
    [--max-retries] here.  Raises [Invalid_argument] on negative
    values. *)

val section_retries : unit -> int
(** The current supervised-section retry budget. *)

val set_default_jobs : int -> unit
(** Override the default job count process-wide (takes precedence over
    [BATLIFE_JOBS]).  Raises [Invalid_argument] on values below 1. *)

val clamp_jobs : int -> int
(** [clamp_jobs requested] is [requested] limited to
    [Domain.recommended_domain_count] (at least 1).  When the request
    exceeds the core count, a {!Diag.record} note explains the clamp
    (non-fallback, so nothing is printed): oversubscribing domains is
    a measured slowdown — BENCH_parallel.json shows jobs = 2/4 running
    21-35% {e slower} on a 1-core container.  The CLI routes [--jobs]
    through this; direct [get ~jobs] callers are not clamped (the
    determinism tests deliberately oversubscribe).  Raises
    [Invalid_argument] on values below 1. *)

val get : jobs:int -> t
(** A shared pool of the given size, created on first request and
    cached for the life of the process ([jobs = 1] is the sequential
    pool).  Never shut these down. *)

val default : unit -> t
(** [get ~jobs:(default_jobs ())]. *)
