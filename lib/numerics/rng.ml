type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64;
           mutable s3 : int64 }

(* splitmix64: used to expand a single seed into the xoshiro state. *)
let splitmix64 state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let default_seed = 0x5DEECE66DL

let create ?(seed = default_seed) () =
  let state = ref seed in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  { s0; s1; s2; s3 }

let copy t = { s0 = t.s0; s1 = t.s1; s2 = t.s2; s3 = t.s3 }

let state t = [| t.s0; t.s1; t.s2; t.s3 |]

let of_state words =
  if Array.length words <> 4 then
    invalid_arg "Rng.of_state: need exactly 4 words";
  if Array.for_all (fun w -> Int64.equal w 0L) words then
    invalid_arg "Rng.of_state: the all-zero state is invalid for xoshiro256++";
  { s0 = words.(0); s1 = words.(1); s2 = words.(2); s3 = words.(3) }

let rotl x k =
  let open Int64 in
  logor (shift_left x k) (shift_right_logical x (64 - k))

(* xoshiro256++ *)
let bits64 t =
  let open Int64 in
  let result = add (rotl (add t.s0 t.s3) 23) t.s0 in
  let tmp = shift_left t.s1 17 in
  t.s2 <- logxor t.s2 t.s0;
  t.s3 <- logxor t.s3 t.s1;
  t.s1 <- logxor t.s1 t.s2;
  t.s0 <- logxor t.s0 t.s3;
  t.s2 <- logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t =
  let state = ref (Int64.logxor (bits64 t) 0xA3EC647659359ACDL) in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  { s0; s1; s2; s3 }

let uniform t =
  (* Take the top 53 bits. *)
  let x = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float x *. 0x1.0p-53

let uniform_positive t =
  let rec go () =
    let u = uniform t in
    if u > 0. then u else go ()
  in
  go ()

let uniform_range t ~lo ~hi =
  if hi < lo then invalid_arg "Rng.uniform_range: hi < lo";
  lo +. ((hi -. lo) *. uniform t)

let int_below t n =
  if n <= 0 then invalid_arg "Rng.int_below: need n > 0";
  (* Rejection sampling on the top bits to avoid modulo bias. *)
  let bound = Int64.of_int n in
  let limit = Int64.sub (Int64.div Int64.max_int bound) 1L in
  let rec go () =
    let x = Int64.shift_right_logical (bits64 t) 1 in
    let q = Int64.div x bound in
    if Int64.compare q limit <= 0 then Int64.to_int (Int64.rem x bound)
    else go ()
  in
  go ()

let exponential t ~rate =
  if rate <= 0. then invalid_arg "Rng.exponential: non-positive rate";
  -.log (uniform_positive t) /. rate

let erlang t ~k ~rate =
  if k < 1 then invalid_arg "Rng.erlang: need k >= 1";
  let acc = ref 0. in
  for _ = 1 to k do
    acc := !acc +. exponential t ~rate
  done;
  !acc

let bernoulli t ~p =
  if p < 0. || p > 1. then invalid_arg "Rng.bernoulli: p outside [0,1]";
  uniform t < p

let discrete t weights =
  let total = Array.fold_left ( +. ) 0. weights in
  if total <= 0. then invalid_arg "Rng.discrete: weights sum to zero";
  Array.iter
    (fun w -> if w < 0. then invalid_arg "Rng.discrete: negative weight")
    weights;
  let target = uniform t *. total in
  let n = Array.length weights in
  let acc = ref 0. and result = ref (n - 1) in
  (try
     for i = 0 to n - 1 do
       acc := !acc +. weights.(i);
       if target < !acc then begin
         result := i;
         raise Exit
       end
     done
   with Exit -> ());
  !result
