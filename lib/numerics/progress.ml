type 'snapshot t = {
  on_step : (step:int -> snapshot:(unit -> 'snapshot) -> unit) option;
  on_interrupt : ('snapshot -> unit) option;
  resume : 'snapshot option;
}

let none = { on_step = None; on_interrupt = None; resume = None }
let make ?on_step ?on_interrupt ?resume () = { on_step; on_interrupt; resume }

let every interval save =
  let interval = max 1 interval in
  fun ~step ~snapshot -> if step > 0 && step mod interval = 0 then save (snapshot ())
