(** Sparse matrices in CSR form, with a COO-style builder.

    The discretised battery generator [Q*] of the paper easily reaches
    millions of nonzeros (Sec. 6.1 quotes 3.2e6 for [Delta = 5]); the
    uniformisation sweep is a long sequence of vector-matrix products
    over this structure, so the representation is kept flat and
    primitive: the value stream is a float64 {!Batlife_numerics.Fvec}
    Bigarray and the column stream an int32 Bigarray — contiguous,
    unboxed, GC-opaque memory the gather kernel can stream, at half
    the index bytes of an [int array].  [row_ptr] stays a plain
    [int array]: rows+1 entries, read once per row rather than once
    per nonzero. *)

module Builder : sig
  (** Mutable triplet accumulator.  Duplicate entries are summed when
      the CSR form is built. *)

  type t

  val create : ?initial_capacity:int -> rows:int -> cols:int -> unit -> t

  val add : t -> int -> int -> float -> unit
  (** [add b i j v] records [v] at position [(i, j)].  Zero values are
      ignored; indices are bounds-checked. *)

  val nnz : t -> int
  (** Number of recorded triplets (before duplicate merging). *)

  val rows : t -> int

  val cols : t -> int

  val iter : t -> (int -> int -> float -> unit) -> unit
  (** Iterate recorded triplets in insertion order (duplicates not yet
      merged). *)
end

type index_array =
  (int32, Bigarray.int32_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = private {
  rows : int;
  cols : int;
  row_ptr : int array;  (** length [rows + 1] *)
  col_idx : index_array;  (** int32 column stream, length [nnz] *)
  values : Fvec.t;  (** float64 value stream, length [nnz] *)
}

val of_builder : Builder.t -> t
(** Sort triplets, merge duplicates, produce CSR. *)

val of_dense : Dense.t -> t
(** Direct two-pass CSR construction (no builder, no per-element
    bounds checks); zero entries are dropped. *)

val to_dense : t -> Dense.t

val nnz : t -> int

val range_nnz : t -> lo:int -> hi:int -> int
(** Stored entries in rows [\[lo, hi)] — the work a window-restricted
    {!matvec_rows} pass touches. *)

val get : t -> int -> int -> float
(** Logarithmic in the row population. *)

val matvec : t -> float array -> float array
(** [matvec a x = A x]. *)

val matvec_rows : t -> Fvec.t -> dst:Fvec.t -> lo:int -> hi:int -> unit
(** [matvec_rows a x ~dst ~lo ~hi] writes [(A x).(i)] into [dst.(i)]
    for [i] in [\[lo, hi)] only, leaving the rest of [dst] untouched.
    The gather form of the product: each output entry is owned by one
    row and its terms are summed in CSR order, so covering a row range
    with disjoint subranges — sequentially or on concurrent domains —
    produces results bitwise identical to a single pass over the same
    range.  This is the parallel uniformisation kernel; partition rows
    with {!nnz_balanced_partition} and dispatch with
    [Pool.run_chunks].  Source and destination are flat
    {!Batlife_numerics.Fvec} buffers, so the inner loop streams
    unboxed float64 values and int32 indices.  Dimensions and the
    range are checked once per call; the inner loop is unchecked. *)

val vecmat : float array -> t -> float array
(** [vecmat x a = x^T A]. *)

val vecmat_acc : src:float array -> t -> scale:float -> dst:float array -> unit
(** [vecmat_acc ~src a ~scale ~dst] performs
    [dst <- dst + scale * (src^T A)] without allocating; the
    sequential scatter kernel of uniformisation (column-indexed
    accumulation — not safely row-partitionable, which is why the
    parallel path uses {!matvec_rows} over the {!transpose}). *)

val nnz_balanced_partition :
  ?lo:int -> ?hi:int -> t -> parts:int -> (int * int) array
(** [nnz_balanced_partition a ~parts] splits the row range [\[lo, hi)]
    (default [\[0, rows)]) into exactly [parts] contiguous [(lo, hi)]
    ranges of roughly equal work (row population plus a constant per
    row).  Ranges may be empty; they always cover each row of the
    range exactly once.  The cut points are a deterministic function
    of the matrix, the range and [parts].  The optional range is what
    lets the adaptive-support sweep partition just its active window
    each step. *)

val row_sums : t -> float array

val scale : float -> t -> t

val transpose : t -> t
(** Direct CSR-to-CSR counting-sort transpose, O(nnz + rows + cols).
    Row [j] of the result lists the column-[j] entries of [a] in
    ascending source-row order — the summation order that makes
    [matvec (transpose a) x] bitwise identical to [vecmat x a]. *)

val iter : t -> (int -> int -> float -> unit) -> unit
(** Iterate entries in row-major order. *)

val max_abs_diagonal : t -> float
(** Largest [|a_ii|]; the uniformisation rate of a generator. *)
