(* Cooperative computation budgets.

   A budget is a small shared token checked at natural pause points of
   the long-running algorithms (between uniformisation products,
   iterative-solver iterations, ODE steps, Monte-Carlo replications,
   parallel tasks).  Checking is cooperative: nothing is interrupted
   pre-emptively; the computation polls [peek]/[check] and raises a
   structured [Diag.Error] when a limit has been hit, after it has had
   the chance to flush partial results (checkpoints).

   The common case is "no budget at all", so [unlimited] is a single
   shared value and every accounting call starts with a physical
   equality test against it — the unbudgeted hot path costs one
   pointer comparison per product. *)

type t = {
  deadline : float;
      (* absolute [Unix.gettimeofday] instant; [infinity] = none *)
  max_sweeps : int;  (* [max_int] = no limit *)
  max_products : int;
  sweeps : int Atomic.t;
  products : int Atomic.t;
  cancelled : bool Atomic.t;
  cancel_after : int;
      (* testing knob: trip cancellation after this many [peek]s;
         [max_int] = off *)
  peeks : int Atomic.t;
}

let unlimited =
  {
    deadline = infinity;
    max_sweeps = max_int;
    max_products = max_int;
    sweeps = Atomic.make 0;
    products = Atomic.make 0;
    cancelled = Atomic.make false;
    cancel_after = max_int;
    peeks = Atomic.make 0;
  }

let create ?wall_s ?max_sweeps ?max_products ?cancel_after () =
  let pos name = function
    | None -> max_int
    | Some n when n > 0 -> n
    | Some n ->
        invalid_arg (Printf.sprintf "Budget.create: %s = %d must be > 0" name n)
  in
  let deadline =
    match wall_s with
    | None -> infinity
    | Some s when s > 0. && Float.is_finite s -> Unix.gettimeofday () +. s
    | Some s ->
        invalid_arg
          (Printf.sprintf "Budget.create: wall_s = %g must be positive and \
                           finite" s)
  in
  {
    deadline;
    max_sweeps = pos "max_sweeps" max_sweeps;
    max_products = pos "max_products" max_products;
    sweeps = Atomic.make 0;
    products = Atomic.make 0;
    cancelled = Atomic.make false;
    cancel_after = pos "cancel_after" cancel_after;
    peeks = Atomic.make 0;
  }

let is_unlimited t = t == unlimited
let cancel t = Atomic.set t.cancelled true
let cancelled t = Atomic.get t.cancelled
let sweeps_done t = Atomic.get t.sweeps
let products_done t = Atomic.get t.products

let note_sweep t = if t != unlimited then Atomic.incr t.sweeps
let note_product t = if t != unlimited then Atomic.incr t.products

let progress t =
  Printf.sprintf "%d sweeps, %d products completed" (Atomic.get t.sweeps)
    (Atomic.get t.products)

(* Clock-skew injection: a [fires] makes the deadline comparison
   behave as if the clock jumped far past the deadline — the NTP
   step / suspended-laptop case.  Only consulted when a deadline is
   actually set, so unbudgeted and work-budgeted runs never touch
   it. *)
let fi_skew = Fi.site "budget.clock_skew"

let peek ~what t =
  if t == unlimited then None
  else begin
    if t.cancel_after <> max_int then begin
      let n = 1 + Atomic.fetch_and_add t.peeks 1 in
      if n >= t.cancel_after then Atomic.set t.cancelled true
    end;
    if Atomic.get t.cancelled then
      Some (Diag.Cancelled { what; progress = progress t })
    else if Atomic.get t.sweeps > t.max_sweeps then
      Some
        (Diag.Budget_exhausted
           { what = what ^ ": sweep budget"; budget = t.max_sweeps })
    else if Atomic.get t.products > t.max_products then
      Some
        (Diag.Budget_exhausted
           {
             what = what ^ ": vector-matrix product budget";
             budget = t.max_products;
           })
    else if
      t.deadline < infinity
      && (Unix.gettimeofday () > t.deadline || Fi.fires fi_skew)
    then
      Some
        (Diag.Budget_exhausted
           {
             what = what ^ ": wall-clock deadline (" ^ progress t ^ ")";
             budget = 0;
           })
    else None
  end

let check ~what t =
  match peek ~what t with None -> () | Some e -> Diag.fail e

(* The process-wide ambient budget: what the CLI's --deadline and the
   SIGINT handler install, and what every solver consults when its
   [Solver_opts.t] carries no explicit budget. *)
let ambient_budget : t Atomic.t = Atomic.make unlimited
let ambient () = Atomic.get ambient_budget
let set_ambient b = Atomic.set ambient_budget b

let with_ambient b f =
  let saved = ambient () in
  set_ambient b;
  Fun.protect ~finally:(fun () -> set_ambient saved) f
