(** CRC-64/XZ checksums (reflected ECMA-182 polynomial).

    The integrity check behind the [batlife.ckpt/3] checkpoint footer:
    a 64-bit CRC over the payload bytes detects truncation, bit flips
    and torn writes that the atomic-rename discipline cannot rule out
    (storage-level corruption after the write).  The parameters are
    those of the widely deployed CRC-64/XZ variant
    (poly [0x42F0E1EBA9EA3693] reflected, init and xorout all-ones), so
    [digest "123456789" = 0x995DC9BBDF1939FA] — checkable against any
    external implementation. *)

val digest : string -> int64
(** CRC-64/XZ of the whole string. *)

val update : int64 -> string -> int64
(** [update crc s] extends a running checksum: [digest (a ^ b)] equals
    [update (digest a) b]. *)
