(** Initial-value ODE solvers.

    The analytic KiBaM solution is cross-validated against these
    integrators, and the modified KiBaM (whose recovery law has no
    closed form) is evaluated with them.  Event detection locates the
    battery-empty instant [y1(t) = 0] inside a step. *)

type system = float -> float array -> float array
(** [f t y] returns [dy/dt]. *)

val euler_step : system -> t:float -> dt:float -> y:float array -> float array

val rk4_step : system -> t:float -> dt:float -> y:float array -> float array
(** One classical Runge–Kutta 4 step. *)

val integrate :
  ?step:float ->
  system ->
  t0:float ->
  t1:float ->
  y0:float array ->
  float array
(** Fixed-step RK4 from [t0] to [t1] (default step [(t1-t0)/1000],
    last step shortened to land exactly on [t1]). *)

val trace :
  ?step:float ->
  system ->
  t0:float ->
  t1:float ->
  y0:float array ->
  (float * float array) array
(** Like {!integrate} but returning the whole trajectory including both
    endpoints. *)

type adaptive_result = {
  y : float array;
  steps_taken : int;
  steps_rejected : int;
}

val rkf45 :
  ?rtol:float ->
  ?atol:float ->
  ?initial_step:float ->
  ?max_steps:int ->
  ?min_step:float ->
  system ->
  t0:float ->
  t1:float ->
  y0:float array ->
  adaptive_result
(** Runge–Kutta–Fehlberg 4(5) with proportional step control.  Raises
    [Diag.Error (Budget_exhausted _)] when [max_steps] (default
    1_000_000) is exhausted, and [Diag.Error (Numerical_breakdown _)]
    when the step size collapses below [min_step] (default
    [1e-12 * max 1 |t1 - t0|]) or the error estimate becomes NaN —
    both symptoms of an integrand the adaptive controller cannot
    resolve. *)

type solver_path = Adaptive | Fixed_step_fallback

val rkf45_robust :
  ?rtol:float ->
  ?atol:float ->
  ?initial_step:float ->
  ?max_steps:int ->
  ?min_step:float ->
  ?fallback_steps:int ->
  system ->
  t0:float ->
  t1:float ->
  y0:float array ->
  adaptive_result * solver_path
(** Fallback chain: try {!rkf45}; on step-size collapse or budget
    exhaustion, rerun with fixed-step RK4 using [fallback_steps]
    (default 10_000) uniform steps.  The fallback is recorded via
    {!Diag.record}.  The original structured error is re-raised when
    the fallback also produces a non-finite state. *)

type event_outcome =
  | Reached_end of float array  (** no event; state at [t1] *)
  | Event of float * float array
      (** event time and state at the event *)

val integrate_until :
  ?step:float ->
  event:(float -> float array -> float) ->
  system ->
  t0:float ->
  t1:float ->
  y0:float array ->
  event_outcome
(** Fixed-step RK4 integration that stops at the first zero *downward*
    crossing of [event t y] (positive to non-positive), refining the
    crossing with bisection on the step. *)
