(** Structured diagnostics for the numerical engines.

    Every guarded failure mode in the code base is one of these
    variants; raising [Error] instead of [failwith] lets callers match
    on the class of failure (and lets the CLI map each class to a
    distinct exit code).  The higher-level [Batlife_robust.Error]
    module re-exports the type together with [Result] combinators. *)

type error =
  | Invalid_model of { what : string; violations : string list }
      (** A model or parameter set failed validation; [violations]
          lists every problem found, not just the first. *)
  | Nonconvergence of {
      algorithm : string;
      iterations : int;
      residual : float;
      tolerance : float;
      attempted : string list;
          (** members of a fallback chain that were tried, in order *)
    }  (** An iterative method exhausted its budget. *)
  | Numerical_breakdown of { where : string; detail : string }
      (** NaN/Inf contamination, probability-mass loss, CDF
          non-monotonicity, step-size collapse: the computation would
          otherwise return garbage. *)
  | Budget_exhausted of { what : string; budget : int }
      (** A step or work budget ran out before completion. *)
  | Cancelled of { what : string; progress : string }
      (** Cooperative cancellation was requested (SIGINT, an explicit
          [Budget.cancel]) and honoured at the next check point;
          [progress] summarises the work completed so far. *)
  | Parse_error of {
      source : string;  (** file name, or ["<string>"] *)
      line : int;  (** 1-based; 0 when no line applies (e.g. IO) *)
      field : string option;
      message : string;
    }  (** Malformed external input. *)

exception Error of error

val error_to_string : error -> string
(** One-paragraph human-readable rendering. *)

val pp : Format.formatter -> error -> unit

val exit_code : error -> int
(** Stable per-class CLI exit code: [Invalid_model] 3, [Parse_error]
    4, [Nonconvergence] 5, [Numerical_breakdown] 6,
    [Budget_exhausted] 7, [Cancelled] 8. *)

val fail : error -> 'a
(** [fail e] raises [Error e]. *)

val invalid_model : what:string -> string list -> 'a

val breakdown : where:string -> ('a, unit, string, 'b) format4 -> 'a
(** [breakdown ~where fmt ...] raises a [Numerical_breakdown]. *)

(** {1 Diagnostics events}

    Numerical components record which path ran (e.g. "fell back to
    Jacobi") into a process-wide sink; the CLI and the experiment
    runner drain it to surface the events next to their results.

    The sink is shared across domains (recording is mutex-protected).
    A parallel fan-out that wants deterministic logs uses {!capture}
    around each task — events recorded by the task's domain land in a
    private per-task buffer — and {!replay}s the buffers in input
    order, so the merged stream is independent of domain scheduling. *)

type event = {
  origin : string;
  detail : string;
  fallback : bool;
  ctx : string option;
      (** trace context (request id) active when the event was
          recorded — see {!with_context}; preserved by
          {!capture}/{!replay} so merged per-request notes stay
          attributable *)
}

val record : ?fallback:bool -> origin:string -> string -> unit
(** Record an event; the current domain's {!with_context} value (if
    any) is stamped on it. *)

val with_context : string -> (unit -> 'a) -> 'a
(** [with_context rid f] stamps every event the {e current domain}
    records during [f] with [rid], mirroring
    [Telemetry.with_context].  Restores the previous context when [f]
    returns or raises; nests, inner wins. *)

val current_context : unit -> string option

val capture : (unit -> 'a) -> 'a * event list
(** [capture f] runs [f] with the {e current domain's} recordings
    redirected to a fresh buffer and returns [f]'s result with the
    events recorded during the call, oldest first.  Nests (the inner
    capture shadows the outer one for its extent).  If [f] raises, the
    redirection is undone and the exception propagates (the buffered
    events are dropped).  Recordings made by {e other} domains during
    the call are not captured — wrap each parallel task separately. *)

val replay : event list -> unit
(** Re-record events in list order (into the shared sink, or into the
    enclosing capture buffer if one is in flight).  Events are
    re-recorded verbatim — in particular each keeps the [ctx] it was
    originally recorded under, not the replaying domain's. *)

val events : unit -> event list
(** Recorded events, oldest first. *)

val clear_events : unit -> unit
