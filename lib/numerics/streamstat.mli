(** Bounded streaming aggregation for a long-running service.

    The batch telemetry layer ({!Telemetry}) accumulates for one
    process lifetime and is exported once at exit; a daemon needs the
    complementary shape: aggregates that can be scraped at any moment
    and whose state stays bounded no matter how many requests flow
    through.  This module provides the two primitives the service
    plane is built from:

    - {!Hist}: log-bucketed latency histograms with a {e documented}
      quantile error bound, O(buckets) state;
    - {!Window}: rolling-window event counters (requests/errors per
      1m/5m), O(slots) state.

    Both are safe to update from any domain (atomic bucket counts; a
    never-hot mutex for window slot rotation) and never influence the
    numerical results they sit next to. *)

(** {1 Log-bucketed histograms}

    Bucket upper bounds form a geometric series [lo·r^i] with ratio
    [r = 10^(1/per_decade)], covering [[lo, hi]]; one underflow-merged
    first bucket and one overflow bucket close the ends.  A quantile is
    reported as the geometric midpoint of the bucket holding the
    target rank, so for any sample population whose values lie inside
    [[lo, hi]] the estimate [e] of a true sample quantile [v]
    satisfies

    {v 1/sqrt(r) <= e / v <= sqrt(r) v}

    i.e. a relative error of at most [sqrt(r) - 1] (= {!Hist.rel_error_bound},
    about 5.9% for the default 20 buckets per decade).  Values below
    [lo] are clamped into the first bucket and values above [hi] into
    the overflow bucket; quantiles landing there are reported as [lo]
    resp. the maximum value seen, and the bound no longer applies. *)
module Hist : sig
  type t

  val create : ?lo:float -> ?hi:float -> ?per_decade:int -> unit -> t
  (** Defaults: [lo = 1e-6], [hi = 1e3] (latencies in seconds from a
      microsecond to a quarter hour), [per_decade = 20].  Raises
      [Invalid_argument] unless [0 < lo < hi] and [per_decade >= 1]. *)

  val observe : t -> float -> unit
  (** Record one sample.  Atomic; always on; NaN is ignored. *)

  val count : t -> int
  val sum : t -> float

  val max_seen : t -> float
  (** [neg_infinity] when empty. *)

  val mean : t -> float
  (** [nan] when empty. *)

  val quantile : t -> float -> float
  (** [quantile t p] for [p] in [[0, 1]]: the geometric midpoint of
      the bucket containing the sample of rank [⌊p·count⌋] (the same
      rank convention as sorting all samples and indexing).  [nan]
      when empty. *)

  val rel_error_bound : t -> float
  (** The documented bound [sqrt(r) - 1] on the relative quantile
      error for in-range samples. *)

  val buckets : t -> int
  (** Number of buckets — the size of the histogram's state, fixed at
      creation and independent of how many samples were observed. *)

  val snapshot : t -> (float * int) array
  (** [(upper_bound, count)] per bucket, oldest bound first; the
      overflow bucket reports [infinity].  Length = {!buckets}. *)

  val reset : t -> unit
end

(** {1 Rolling windows}

    A ring of [slots] sub-interval counters covering the trailing
    [span_s] seconds.  Each update or read first retires slots older
    than the window (O(slots)), so state never grows with traffic.
    Time is taken from {!Telemetry.now_ns} unless the caller supplies
    [~now_ns] — tests inject a synthetic clock for determinism. *)
module Window : sig
  type t

  val create : ?slots:int -> span_s:float -> unit -> t
  (** Default [slots = 12] (5-second resolution on a 1-minute
      window).  Raises [Invalid_argument] unless [span_s > 0.] and
      [slots >= 1]. *)

  val add : ?now_ns:int64 -> t -> int -> unit
  (** Count [n] events at the current (or supplied) instant. *)

  val total : ?now_ns:int64 -> t -> int
  (** Events counted within the trailing window. *)

  val rate : ?now_ns:int64 -> t -> float
  (** {!total} divided by the window span — events per second. *)

  val span_s : t -> float
  val slots : t -> int
end
