type t = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

let create n =
  let v = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout n in
  Bigarray.Array1.fill v 0.;
  v

let length = Bigarray.Array1.dim

let get (v : t) i = Bigarray.Array1.get v i
let set (v : t) i x = Bigarray.Array1.set v i x

let unsafe_get (v : t) i = Bigarray.Array1.unsafe_get v i
let unsafe_set (v : t) i x = Bigarray.Array1.unsafe_set v i x

let of_array a =
  let n = Array.length a in
  let v = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout n in
  for i = 0 to n - 1 do
    Bigarray.Array1.unsafe_set v i (Array.unsafe_get a i)
  done;
  v

let to_array (v : t) = Array.init (length v) (fun i -> unsafe_get v i)

let check_same_length name x y =
  if length x <> length y then invalid_arg (name ^ ": length mismatch")

let blit ~src ~dst =
  check_same_length "Fvec.blit" src dst;
  Bigarray.Array1.blit src dst

let blit_from_array ~src ~dst =
  if Array.length src <> length dst then
    invalid_arg "Fvec.blit_from_array: length mismatch";
  for i = 0 to Array.length src - 1 do
    unsafe_set dst i (Array.unsafe_get src i)
  done

let fill (v : t) x = Bigarray.Array1.fill v x

let check_range name v ~lo ~hi =
  if lo < 0 || hi > length v || lo > hi then
    invalid_arg (Printf.sprintf "%s: range [%d, %d) outside [0, %d)" name lo hi
                   (length v))

let fill_range v ~lo ~hi x =
  check_range "Fvec.fill_range" v ~lo ~hi;
  for i = lo to hi - 1 do
    unsafe_set v i x
  done

let sum_range v ~lo ~hi =
  check_range "Fvec.sum_range" v ~lo ~hi;
  let acc = ref 0. in
  for i = lo to hi - 1 do
    acc := !acc +. unsafe_get v i
  done;
  !acc

let sum v = sum_range v ~lo:0 ~hi:(length v)

let dist_inf_range x y ~lo ~hi =
  check_same_length "Fvec.dist_inf_range" x y;
  check_range "Fvec.dist_inf_range" x ~lo ~hi;
  let acc = ref 0. in
  for i = lo to hi - 1 do
    acc := Float.max !acc (Float.abs (unsafe_get x i -. unsafe_get y i))
  done;
  !acc

let dist_inf x y =
  check_same_length "Fvec.dist_inf" x y;
  dist_inf_range x y ~lo:0 ~hi:(length x)

let axpy_array ~alpha ~x ~y =
  if length x <> Array.length y then
    invalid_arg "Fvec.axpy_array: length mismatch";
  for i = 0 to Array.length y - 1 do
    Array.unsafe_set y i
      (Array.unsafe_get y i +. (alpha *. unsafe_get x i))
  done

let nonzero_extent v =
  let n = length v in
  let lo = ref 0 in
  while !lo < n && unsafe_get v !lo = 0. do incr lo done;
  if !lo = n then (0, 0)
  else begin
    let hi = ref n in
    while unsafe_get v (!hi - 1) = 0. do decr hi done;
    (!lo, !hi)
  end
