module Builder = struct
  type t = {
    rows : int;
    cols : int;
    mutable len : int;
    mutable row : int array;
    mutable col : int array;
    mutable value : float array;
  }

  let create ?(initial_capacity = 1024) ~rows ~cols () =
    if rows <= 0 || cols <= 0 then
      invalid_arg "Sparse.Builder.create: empty dimensions";
    let capacity = max initial_capacity 16 in
    {
      rows;
      cols;
      len = 0;
      row = Array.make capacity 0;
      col = Array.make capacity 0;
      value = Array.make capacity 0.;
    }

  let grow b =
    let capacity = 2 * Array.length b.row in
    let row = Array.make capacity 0
    and col = Array.make capacity 0
    and value = Array.make capacity 0. in
    Array.blit b.row 0 row 0 b.len;
    Array.blit b.col 0 col 0 b.len;
    Array.blit b.value 0 value 0 b.len;
    b.row <- row;
    b.col <- col;
    b.value <- value

  let add b i j v =
    if i < 0 || i >= b.rows || j < 0 || j >= b.cols then
      invalid_arg
        (Printf.sprintf "Sparse.Builder.add: index (%d,%d) out of %dx%d" i j
           b.rows b.cols);
    if v <> 0. then begin
      if b.len = Array.length b.row then grow b;
      b.row.(b.len) <- i;
      b.col.(b.len) <- j;
      b.value.(b.len) <- v;
      b.len <- b.len + 1
    end

  let nnz b = b.len

  let rows b = b.rows

  let cols b = b.cols

  let iter b f =
    for k = 0 to b.len - 1 do
      f b.row.(k) b.col.(k) b.value.(k)
    done
end

type t = {
  rows : int;
  cols : int;
  row_ptr : int array;
  col_idx : int array;
  values : float array;
}

(* Two-pass counting sort by row, then per-row sort by column and
   duplicate merge.  O(nnz log nnz_row) and no intermediate boxing. *)
let of_builder (b : Builder.t) =
  let n = b.Builder.len in
  let rows = b.Builder.rows and cols = b.Builder.cols in
  let counts = Array.make (rows + 1) 0 in
  for k = 0 to n - 1 do
    counts.(b.Builder.row.(k) + 1) <- counts.(b.Builder.row.(k) + 1) + 1
  done;
  for i = 1 to rows do
    counts.(i) <- counts.(i) + counts.(i - 1)
  done;
  (* counts.(i) now is the start offset of row i. *)
  let col_tmp = Array.make (max n 1) 0 and val_tmp = Array.make (max n 1) 0. in
  let cursor = Array.copy counts in
  for k = 0 to n - 1 do
    let r = b.Builder.row.(k) in
    let pos = cursor.(r) in
    col_tmp.(pos) <- b.Builder.col.(k);
    val_tmp.(pos) <- b.Builder.value.(k);
    cursor.(r) <- pos + 1
  done;
  (* Sort each row segment by column index (insertion sort: rows are
     short in all our generators) and merge duplicates in place. *)
  let row_ptr = Array.make (rows + 1) 0 in
  let write = ref 0 in
  for i = 0 to rows - 1 do
    row_ptr.(i) <- !write;
    let lo = counts.(i) and hi = cursor.(i) in
    for k = lo + 1 to hi - 1 do
      let c = col_tmp.(k) and v = val_tmp.(k) in
      let j = ref (k - 1) in
      while !j >= lo && col_tmp.(!j) > c do
        col_tmp.(!j + 1) <- col_tmp.(!j);
        val_tmp.(!j + 1) <- val_tmp.(!j);
        decr j
      done;
      col_tmp.(!j + 1) <- c;
      val_tmp.(!j + 1) <- v
    done;
    let k = ref lo in
    while !k < hi do
      let c = col_tmp.(!k) in
      let acc = ref 0. in
      while !k < hi && col_tmp.(!k) = c do
        acc := !acc +. val_tmp.(!k);
        incr k
      done;
      if !acc <> 0. then begin
        col_tmp.(!write) <- c;
        val_tmp.(!write) <- !acc;
        incr write
      end
    done
  done;
  row_ptr.(rows) <- !write;
  {
    rows;
    cols;
    row_ptr;
    col_idx = Array.sub col_tmp 0 !write;
    values = Array.sub val_tmp 0 !write;
  }

(* Dense rows are already in row-major order with ascending, duplicate
   free columns, so CSR can be written directly in two passes — no need
   to funnel rows*cols elements through [Builder.add]'s per-element
   bounds check and [of_builder]'s sort. *)
let of_dense d =
  let rows = Dense.rows d and cols = Dense.cols d in
  let row_ptr = Array.make (rows + 1) 0 in
  let count = ref 0 in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      if Dense.get d i j <> 0. then incr count
    done;
    row_ptr.(i + 1) <- !count
  done;
  let col_idx = Array.make !count 0 and values = Array.make !count 0. in
  let write = ref 0 in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      let v = Dense.get d i j in
      if v <> 0. then begin
        col_idx.(!write) <- j;
        values.(!write) <- v;
        incr write
      end
    done
  done;
  { rows; cols; row_ptr; col_idx; values }

let to_dense t =
  let d = Dense.create ~rows:t.rows ~cols:t.cols in
  for i = 0 to t.rows - 1 do
    for k = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
      Dense.set d i t.col_idx.(k) (Dense.get d i t.col_idx.(k) +. t.values.(k))
    done
  done;
  d

let nnz t = Array.length t.values

let get t i j =
  if i < 0 || i >= t.rows || j < 0 || j >= t.cols then
    invalid_arg "Sparse.get: index out of bounds";
  let lo = ref t.row_ptr.(i) and hi = ref (t.row_ptr.(i + 1) - 1) in
  let result = ref 0. in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let c = t.col_idx.(mid) in
    if c = j then begin
      result := t.values.(mid);
      lo := !hi + 1
    end
    else if c < j then lo := mid + 1
    else hi := mid - 1
  done;
  !result

(* The kernels below drop per-element bounds checks after one up-front
   dimension check.  This is sound because [t] is private and every
   constructor ([of_builder], [of_dense], [transpose]) establishes the
   CSR invariants: [row_ptr] has length [rows + 1], is non-decreasing
   with [row_ptr.(rows) = nnz], and every [col_idx] entry lies in
   [0, cols). *)

(* [dst.(i) <- (t x).(i)] for [i] in [lo, hi) only.  The gather form of
   the product: each output entry is owned by exactly one row, and its
   terms are summed in CSR order, so covering [0, rows) with disjoint
   ranges — in any order, on any domains — yields the same bits as one
   sequential pass.  This is the parallel uniformisation kernel. *)
let matvec_rows t x ~dst ~lo ~hi =
  if lo < 0 || hi > t.rows || lo > hi then
    invalid_arg "Sparse.matvec_rows: row range";
  if Array.length x <> t.cols then invalid_arg "Sparse.matvec_rows: dimensions";
  if Array.length dst <> t.rows then
    invalid_arg "Sparse.matvec_rows: destination dimension";
  let row_ptr = t.row_ptr and col_idx = t.col_idx and values = t.values in
  for i = lo to hi - 1 do
    let k0 = Array.unsafe_get row_ptr i
    and k1 = Array.unsafe_get row_ptr (i + 1) in
    let acc = ref 0. in
    for k = k0 to k1 - 1 do
      acc :=
        !acc
        +. Array.unsafe_get values k
           *. Array.unsafe_get x (Array.unsafe_get col_idx k)
    done;
    Array.unsafe_set dst i !acc
  done

let matvec t x =
  if Array.length x <> t.cols then invalid_arg "Sparse.matvec: dimensions";
  let y = Array.make t.rows 0. in
  matvec_rows t x ~dst:y ~lo:0 ~hi:t.rows;
  y

let vecmat x t =
  if Array.length x <> t.rows then invalid_arg "Sparse.vecmat: dimensions";
  let y = Array.make t.cols 0. in
  let row_ptr = t.row_ptr and col_idx = t.col_idx and values = t.values in
  for i = 0 to t.rows - 1 do
    let xi = Array.unsafe_get x i in
    if xi <> 0. then begin
      let k0 = Array.unsafe_get row_ptr i
      and k1 = Array.unsafe_get row_ptr (i + 1) in
      for k = k0 to k1 - 1 do
        let j = Array.unsafe_get col_idx k in
        Array.unsafe_set y j
          (Array.unsafe_get y j +. (xi *. Array.unsafe_get values k))
      done
    end
  done;
  y

let vecmat_acc ~src t ~scale ~dst =
  if Array.length src <> t.rows then
    invalid_arg "Sparse.vecmat_acc: source dimension";
  if Array.length dst <> t.cols then
    invalid_arg "Sparse.vecmat_acc: destination dimension";
  let row_ptr = t.row_ptr and col_idx = t.col_idx and values = t.values in
  for i = 0 to t.rows - 1 do
    let xi = Array.unsafe_get src i *. scale in
    if xi <> 0. then begin
      let k0 = Array.unsafe_get row_ptr i
      and k1 = Array.unsafe_get row_ptr (i + 1) in
      for k = k0 to k1 - 1 do
        let j = Array.unsafe_get col_idx k in
        Array.unsafe_set dst j
          (Array.unsafe_get dst j +. (xi *. Array.unsafe_get values k))
      done
    end
  done

let row_sums t =
  Array.init t.rows (fun i ->
      let acc = ref 0. in
      for k = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
        acc := !acc +. t.values.(k)
      done;
      !acc)

let scale s t = { t with values = Array.map (fun v -> s *. v) t.values }

(* Direct CSR-to-CSR transpose by counting sort on the column index:
   one pass to count, one to place.  Walking the source rows in
   ascending order makes each output row's column indices ascending,
   so the result is valid CSR without any per-row sort; no builder, no
   per-element bounds checks. *)
let transpose t =
  let n = nnz t in
  let row_ptr = Array.make (t.cols + 1) 0 in
  for k = 0 to n - 1 do
    let j = t.col_idx.(k) in
    row_ptr.(j + 1) <- row_ptr.(j + 1) + 1
  done;
  for j = 1 to t.cols do
    row_ptr.(j) <- row_ptr.(j) + row_ptr.(j - 1)
  done;
  let cursor = Array.copy row_ptr in
  let col_idx = Array.make n 0 and values = Array.make n 0. in
  for i = 0 to t.rows - 1 do
    for k = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
      let j = t.col_idx.(k) in
      let pos = cursor.(j) in
      col_idx.(pos) <- i;
      values.(pos) <- t.values.(k);
      cursor.(j) <- pos + 1
    done
  done;
  { rows = t.cols; cols = t.rows; row_ptr; col_idx; values }

(* Split [0, rows) into exactly [parts] contiguous ranges with roughly
   equal work, where a row's work is its population plus a constant
   (so long runs of empty rows still spread out).  Ranges may be empty
   when a single row outweighs a whole share; together they always
   cover every row exactly once — the property the deterministic
   parallel {!matvec_rows} kernel relies on. *)
let nnz_balanced_partition t ~parts =
  if parts < 1 then invalid_arg "Sparse.nnz_balanced_partition: need parts >= 1";
  let weight i = t.row_ptr.(i + 1) - t.row_ptr.(i) + 1 in
  let total = nnz t + t.rows in
  let bounds = Array.make parts (0, 0) in
  let start = ref 0 and acc = ref 0 in
  for p = 0 to parts - 1 do
    let hi =
      if p = parts - 1 then t.rows
      else begin
        (* Cut where the cumulative weight first reaches the share's
           end point; integer arithmetic keeps the cuts deterministic. *)
        let budget = total * (p + 1) / parts in
        let i = ref !start in
        while !i < t.rows && !acc + weight !i <= budget do
          acc := !acc + weight !i;
          incr i
        done;
        !i
      end
    in
    bounds.(p) <- (!start, hi);
    start := hi
  done;
  bounds

let iter t f =
  for i = 0 to t.rows - 1 do
    for k = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
      f i t.col_idx.(k) t.values.(k)
    done
  done

let max_abs_diagonal t =
  let best = ref 0. in
  for i = 0 to min t.rows t.cols - 1 do
    best := Float.max !best (Float.abs (get t i i))
  done;
  !best
