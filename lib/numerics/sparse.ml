module Builder = struct
  type t = {
    rows : int;
    cols : int;
    mutable len : int;
    mutable row : int array;
    mutable col : int array;
    mutable value : float array;
  }

  let create ?(initial_capacity = 1024) ~rows ~cols () =
    if rows <= 0 || cols <= 0 then
      invalid_arg "Sparse.Builder.create: empty dimensions";
    let capacity = max initial_capacity 16 in
    {
      rows;
      cols;
      len = 0;
      row = Array.make capacity 0;
      col = Array.make capacity 0;
      value = Array.make capacity 0.;
    }

  let grow b =
    let capacity = 2 * Array.length b.row in
    let row = Array.make capacity 0
    and col = Array.make capacity 0
    and value = Array.make capacity 0. in
    Array.blit b.row 0 row 0 b.len;
    Array.blit b.col 0 col 0 b.len;
    Array.blit b.value 0 value 0 b.len;
    b.row <- row;
    b.col <- col;
    b.value <- value

  let add b i j v =
    if i < 0 || i >= b.rows || j < 0 || j >= b.cols then
      invalid_arg
        (Printf.sprintf "Sparse.Builder.add: index (%d,%d) out of %dx%d" i j
           b.rows b.cols);
    if v <> 0. then begin
      if b.len = Array.length b.row then grow b;
      b.row.(b.len) <- i;
      b.col.(b.len) <- j;
      b.value.(b.len) <- v;
      b.len <- b.len + 1
    end

  let nnz b = b.len

  let rows b = b.rows

  let cols b = b.cols

  let iter b f =
    for k = 0 to b.len - 1 do
      f b.row.(k) b.col.(k) b.value.(k)
    done
end

type index_array =
  (int32, Bigarray.int32_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = {
  rows : int;
  cols : int;
  row_ptr : int array;
  col_idx : index_array;
  values : Fvec.t;
}

(* The CSR streams are flat Bigarray buffers: [values] float64,
   [col_idx] int32, so the gather loop reads half the index bytes an
   [int array] would cost and never touches a boxed cell.  [row_ptr]
   stays a plain [int array]: it is rows+1 long, read once per row
   (not once per nonzero), and an int avoids the per-row Int32
   conversion without widening any hot stream. *)

let check_col_range ~cols =
  if cols > Int32.to_int Int32.max_int then
    invalid_arg
      (Printf.sprintf "Sparse: %d columns exceed the int32 index range" cols)

let index_array_of ~len a =
  let ia = Bigarray.Array1.create Bigarray.int32 Bigarray.c_layout len in
  for k = 0 to len - 1 do
    Bigarray.Array1.unsafe_set ia k (Int32.of_int (Array.unsafe_get a k))
  done;
  ia

let fvec_of ~len a =
  let v = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout len in
  for k = 0 to len - 1 do
    Bigarray.Array1.unsafe_set v k (Array.unsafe_get a k)
  done;
  v

(* Two-pass counting sort by row, then per-row sort by column and
   duplicate merge.  O(nnz log nnz_row); the sort works on scratch
   [int array]/[float array] and the final streams are copied into
   their Bigarray form once. *)
let of_builder (b : Builder.t) =
  let n = b.Builder.len in
  let rows = b.Builder.rows and cols = b.Builder.cols in
  check_col_range ~cols;
  let counts = Array.make (rows + 1) 0 in
  for k = 0 to n - 1 do
    counts.(b.Builder.row.(k) + 1) <- counts.(b.Builder.row.(k) + 1) + 1
  done;
  for i = 1 to rows do
    counts.(i) <- counts.(i) + counts.(i - 1)
  done;
  (* counts.(i) now is the start offset of row i. *)
  let col_tmp = Array.make (max n 1) 0 and val_tmp = Array.make (max n 1) 0. in
  let cursor = Array.copy counts in
  for k = 0 to n - 1 do
    let r = b.Builder.row.(k) in
    let pos = cursor.(r) in
    col_tmp.(pos) <- b.Builder.col.(k);
    val_tmp.(pos) <- b.Builder.value.(k);
    cursor.(r) <- pos + 1
  done;
  (* Sort each row segment by column index (insertion sort: rows are
     short in all our generators) and merge duplicates in place. *)
  let row_ptr = Array.make (rows + 1) 0 in
  let write = ref 0 in
  for i = 0 to rows - 1 do
    row_ptr.(i) <- !write;
    let lo = counts.(i) and hi = cursor.(i) in
    for k = lo + 1 to hi - 1 do
      let c = col_tmp.(k) and v = val_tmp.(k) in
      let j = ref (k - 1) in
      while !j >= lo && col_tmp.(!j) > c do
        col_tmp.(!j + 1) <- col_tmp.(!j);
        val_tmp.(!j + 1) <- val_tmp.(!j);
        decr j
      done;
      col_tmp.(!j + 1) <- c;
      val_tmp.(!j + 1) <- v
    done;
    let k = ref lo in
    while !k < hi do
      let c = col_tmp.(!k) in
      let acc = ref 0. in
      while !k < hi && col_tmp.(!k) = c do
        acc := !acc +. val_tmp.(!k);
        incr k
      done;
      if !acc <> 0. then begin
        col_tmp.(!write) <- c;
        val_tmp.(!write) <- !acc;
        incr write
      end
    done
  done;
  row_ptr.(rows) <- !write;
  {
    rows;
    cols;
    row_ptr;
    col_idx = index_array_of ~len:!write col_tmp;
    values = fvec_of ~len:!write val_tmp;
  }

(* Dense rows are already in row-major order with ascending, duplicate
   free columns, so CSR can be written directly in two passes — no need
   to funnel rows*cols elements through [Builder.add]'s per-element
   bounds check and [of_builder]'s sort. *)
let of_dense d =
  let rows = Dense.rows d and cols = Dense.cols d in
  check_col_range ~cols;
  let row_ptr = Array.make (rows + 1) 0 in
  let count = ref 0 in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      if Dense.get d i j <> 0. then incr count
    done;
    row_ptr.(i + 1) <- !count
  done;
  let col_idx = Bigarray.Array1.create Bigarray.int32 Bigarray.c_layout !count in
  let values = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout !count in
  let write = ref 0 in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      let v = Dense.get d i j in
      if v <> 0. then begin
        Bigarray.Array1.unsafe_set col_idx !write (Int32.of_int j);
        Bigarray.Array1.unsafe_set values !write v;
        incr write
      end
    done
  done;
  { rows; cols; row_ptr; col_idx; values }

let col_at t k = Int32.to_int (Bigarray.Array1.get t.col_idx k)
let value_at t k = Bigarray.Array1.get t.values k

let to_dense t =
  let d = Dense.create ~rows:t.rows ~cols:t.cols in
  for i = 0 to t.rows - 1 do
    for k = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
      let j = col_at t k in
      Dense.set d i j (Dense.get d i j +. value_at t k)
    done
  done;
  d

let nnz t = Bigarray.Array1.dim t.values

let range_nnz t ~lo ~hi =
  if lo < 0 || hi > t.rows || lo > hi then
    invalid_arg "Sparse.range_nnz: row range";
  t.row_ptr.(hi) - t.row_ptr.(lo)

let get t i j =
  if i < 0 || i >= t.rows || j < 0 || j >= t.cols then
    invalid_arg "Sparse.get: index out of bounds";
  let lo = ref t.row_ptr.(i) and hi = ref (t.row_ptr.(i + 1) - 1) in
  let result = ref 0. in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let c = col_at t mid in
    if c = j then begin
      result := value_at t mid;
      lo := !hi + 1
    end
    else if c < j then lo := mid + 1
    else hi := mid - 1
  done;
  !result

(* The kernels below drop per-element bounds checks after one up-front
   dimension check.  This is sound because [t] is private and every
   constructor ([of_builder], [of_dense], [transpose]) establishes the
   CSR invariants: [row_ptr] has length [rows + 1], is non-decreasing
   with [row_ptr.(rows) = nnz], and every [col_idx] entry lies in
   [0, cols). *)

(* [dst.(i) <- (t x).(i)] for [i] in [lo, hi) only.  The gather form of
   the product: each output entry is owned by exactly one row, and its
   terms are summed in CSR order, so covering any subset of [0, rows)
   with disjoint ranges — in any order, on any domains — yields the
   same bits for every covered entry as one sequential pass.  This is
   the parallel uniformisation kernel; src and dst are flat Bigarray
   buffers so the inner loop streams unboxed float64 values and int32
   column indices with no GC interaction. *)
let matvec_rows t x ~dst ~lo ~hi =
  if lo < 0 || hi > t.rows || lo > hi then
    invalid_arg "Sparse.matvec_rows: row range";
  if Fvec.length x <> t.cols then invalid_arg "Sparse.matvec_rows: dimensions";
  if Fvec.length dst <> t.rows then
    invalid_arg "Sparse.matvec_rows: destination dimension";
  let row_ptr = t.row_ptr and col_idx = t.col_idx and values = t.values in
  for i = lo to hi - 1 do
    let k0 = Array.unsafe_get row_ptr i
    and k1 = Array.unsafe_get row_ptr (i + 1) in
    let acc = ref 0. in
    for k = k0 to k1 - 1 do
      acc :=
        !acc
        +. Bigarray.Array1.unsafe_get values k
           *. Fvec.unsafe_get x
                (Int32.to_int (Bigarray.Array1.unsafe_get col_idx k))
    done;
    Fvec.unsafe_set dst i !acc
  done

let matvec t x =
  if Array.length x <> t.cols then invalid_arg "Sparse.matvec: dimensions";
  let y = Array.make t.rows 0. in
  let row_ptr = t.row_ptr and col_idx = t.col_idx and values = t.values in
  for i = 0 to t.rows - 1 do
    let k0 = Array.unsafe_get row_ptr i
    and k1 = Array.unsafe_get row_ptr (i + 1) in
    let acc = ref 0. in
    for k = k0 to k1 - 1 do
      acc :=
        !acc
        +. Bigarray.Array1.unsafe_get values k
           *. Array.unsafe_get x
                (Int32.to_int (Bigarray.Array1.unsafe_get col_idx k))
    done;
    Array.unsafe_set y i !acc
  done;
  y

let vecmat x t =
  if Array.length x <> t.rows then invalid_arg "Sparse.vecmat: dimensions";
  let y = Array.make t.cols 0. in
  let row_ptr = t.row_ptr and col_idx = t.col_idx and values = t.values in
  for i = 0 to t.rows - 1 do
    let xi = Array.unsafe_get x i in
    if xi <> 0. then begin
      let k0 = Array.unsafe_get row_ptr i
      and k1 = Array.unsafe_get row_ptr (i + 1) in
      for k = k0 to k1 - 1 do
        let j = Int32.to_int (Bigarray.Array1.unsafe_get col_idx k) in
        Array.unsafe_set y j
          (Array.unsafe_get y j
          +. (xi *. Bigarray.Array1.unsafe_get values k))
      done
    end
  done;
  y

let vecmat_acc ~src t ~scale ~dst =
  if Array.length src <> t.rows then
    invalid_arg "Sparse.vecmat_acc: source dimension";
  if Array.length dst <> t.cols then
    invalid_arg "Sparse.vecmat_acc: destination dimension";
  let row_ptr = t.row_ptr and col_idx = t.col_idx and values = t.values in
  for i = 0 to t.rows - 1 do
    let xi = Array.unsafe_get src i *. scale in
    if xi <> 0. then begin
      let k0 = Array.unsafe_get row_ptr i
      and k1 = Array.unsafe_get row_ptr (i + 1) in
      for k = k0 to k1 - 1 do
        let j = Int32.to_int (Bigarray.Array1.unsafe_get col_idx k) in
        Array.unsafe_set dst j
          (Array.unsafe_get dst j
          +. (xi *. Bigarray.Array1.unsafe_get values k))
      done
    end
  done

let row_sums t =
  Array.init t.rows (fun i ->
      let acc = ref 0. in
      for k = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
        acc := !acc +. value_at t k
      done;
      !acc)

let scale s t =
  let n = nnz t in
  let values = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout n in
  for k = 0 to n - 1 do
    Bigarray.Array1.unsafe_set values k
      (s *. Bigarray.Array1.unsafe_get t.values k)
  done;
  { t with values }

(* Direct CSR-to-CSR transpose by counting sort on the column index:
   one pass to count, one to place.  Walking the source rows in
   ascending order makes each output row's column indices ascending,
   so the result is valid CSR without any per-row sort; no builder, no
   per-element bounds checks. *)
let transpose t =
  let n = nnz t in
  let row_ptr = Array.make (t.cols + 1) 0 in
  for k = 0 to n - 1 do
    let j = Int32.to_int (Bigarray.Array1.unsafe_get t.col_idx k) in
    row_ptr.(j + 1) <- row_ptr.(j + 1) + 1
  done;
  for j = 1 to t.cols do
    row_ptr.(j) <- row_ptr.(j) + row_ptr.(j - 1)
  done;
  let cursor = Array.copy row_ptr in
  let col_idx = Bigarray.Array1.create Bigarray.int32 Bigarray.c_layout n in
  let values = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout n in
  for i = 0 to t.rows - 1 do
    for k = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
      let j = Int32.to_int (Bigarray.Array1.unsafe_get t.col_idx k) in
      let pos = cursor.(j) in
      Bigarray.Array1.unsafe_set col_idx pos (Int32.of_int i);
      Bigarray.Array1.unsafe_set values pos
        (Bigarray.Array1.unsafe_get t.values k);
      cursor.(j) <- pos + 1
    done
  done;
  { rows = t.cols; cols = t.rows; row_ptr; col_idx; values }

(* Split [lo, hi) into exactly [parts] contiguous ranges with roughly
   equal work, where a row's work is its population plus a constant
   (so long runs of empty rows still spread out).  Ranges may be empty
   when a single row outweighs a whole share; together they always
   cover every row of [lo, hi) exactly once — the property the
   deterministic parallel {!matvec_rows} kernel relies on.  The
   optional range is what lets the adaptive-support sweep partition
   just its active window per step. *)
let nnz_balanced_partition ?(lo = 0) ?hi t ~parts =
  let hi = match hi with Some hi -> hi | None -> t.rows in
  if parts < 1 then invalid_arg "Sparse.nnz_balanced_partition: need parts >= 1";
  if lo < 0 || hi > t.rows || lo > hi then
    invalid_arg "Sparse.nnz_balanced_partition: row range";
  let weight i = t.row_ptr.(i + 1) - t.row_ptr.(i) + 1 in
  let total = t.row_ptr.(hi) - t.row_ptr.(lo) + (hi - lo) in
  let bounds = Array.make parts (0, 0) in
  let start = ref lo and acc = ref 0 in
  for p = 0 to parts - 1 do
    let stop =
      if p = parts - 1 then hi
      else begin
        (* Cut where the cumulative weight first reaches the share's
           end point; integer arithmetic keeps the cuts deterministic. *)
        let budget = total * (p + 1) / parts in
        let i = ref !start in
        while !i < hi && !acc + weight !i <= budget do
          acc := !acc + weight !i;
          incr i
        done;
        !i
      end
    in
    bounds.(p) <- (!start, stop);
    start := stop
  done;
  bounds

let iter t f =
  for i = 0 to t.rows - 1 do
    for k = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
      f i (col_at t k) (value_at t k)
    done
  done

let max_abs_diagonal t =
  let best = ref 0. in
  for i = 0 to min t.rows t.cols - 1 do
    best := Float.max !best (Float.abs (get t i i))
  done;
  !best
