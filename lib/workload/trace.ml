open Batlife_battery
module Diag = Batlife_numerics.Diag

type sample = { time : float; current : float }

let parse_failure ?(source = "<trace>") ~line ?field fmt =
  Printf.ksprintf
    (fun message ->
      raise (Diag.Error (Diag.Parse_error { source; line; field; message })))
    fmt

(* All violations of the sample invariants, labelled by sample index
   (1-based, matching the order of the input list). *)
let sample_violations samples =
  let problems = ref [] in
  let add fmt = Printf.ksprintf (fun m -> problems := m :: !problems) fmt in
  (match samples with
  | [] | [ _ ] -> add "need at least two samples, got %d" (List.length samples)
  | _ -> ());
  List.iteri
    (fun i s ->
      let idx = i + 1 in
      if not (Float.is_finite s.time) then
        add "sample %d: timestamp %g is not finite" idx s.time;
      if not (Float.is_finite s.current) then
        add "sample %d: current %g is not finite" idx s.current
      else if s.current < 0. then
        add "sample %d: current %g is negative" idx s.current)
    samples;
  (match samples with
  | first :: _ when Float.is_finite first.time && first.time < 0. ->
      add "sample 1: timestamp %g is negative" first.time
  | _ -> ());
  let rec ordered i previous = function
    | [] -> ()
    | s :: rest ->
        if Float.is_finite s.time && Float.is_finite previous
           && s.time <= previous
        then
          add "sample %d: timestamp %g does not increase (previous %g)" i
            s.time previous;
        ordered (i + 1) s.time rest
  in
  (match samples with first :: rest -> ordered 2 first.time rest | [] -> ());
  List.rev !problems

let check_samples_result samples =
  match sample_violations samples with
  | [] -> Ok ()
  | violations -> Error (Diag.Invalid_model { what = "trace samples"; violations })

let check_samples samples =
  match check_samples_result samples with
  | Ok () -> ()
  | Error e -> invalid_arg (Diag.error_to_string e)

let median_gap samples =
  let gaps =
    List.rev
      (snd
         (List.fold_left
            (fun (prev, acc) s ->
              match prev with
              | None -> (Some s.time, acc)
              | Some t -> (Some s.time, (s.time -. t) :: acc))
            (None, []) samples))
  in
  let sorted = List.sort Float.compare gaps in
  List.nth sorted (List.length sorted / 2)

let of_samples samples =
  check_samples samples;
  let tail_hold = median_gap samples in
  let rec segments = function
    | s :: (next :: _ as rest) ->
        { Load_profile.duration = next.time -. s.time; load = s.current }
        :: segments rest
    | [ last ] ->
        [ { Load_profile.duration = tail_hold; load = last.current } ]
    | [] -> []
  in
  let body = segments samples in
  let lead =
    match samples with
    | first :: _ when first.time > 0. ->
        [ { Load_profile.duration = first.time; load = 0. } ]
    | _ -> []
  in
  Load_profile.finite (lead @ body)

let of_samples_result samples =
  match check_samples_result samples with
  | Ok () -> Ok (of_samples samples)
  | Error _ as e -> e

let parse_csv_exn ?source text =
  let lines = String.split_on_char '\n' text in
  let parse_line idx line =
    let trimmed = String.trim line in
    if trimmed = "" || trimmed.[0] = '#' then None
    else
      let lineno = idx + 1 in
      match String.split_on_char ',' trimmed with
      | [ t; c ] ->
          let parse_field name text =
            match float_of_string_opt (String.trim text) with
            | Some v -> v
            | None ->
                parse_failure ?source ~line:lineno ~field:name
                  "cannot read %S as a number" (String.trim text)
          in
          let time = parse_field "time" t in
          let current = parse_field "current" c in
          Some { time; current }
      | fields ->
          parse_failure ?source ~line:lineno
            "expected 'time,current' (2 fields), got %d field%s: %S"
            (List.length fields)
            (if List.length fields = 1 then "" else "s")
            trimmed
  in
  List.mapi parse_line lines |> List.filter_map Fun.id

let parse_csv_result ?source text =
  match parse_csv_exn ?source text with
  | samples -> Ok samples
  | exception Diag.Error e -> Error e

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load_samples_result path =
  match read_file path with
  | text -> parse_csv_result ~source:path text
  | exception Sys_error message ->
      Error (Diag.Parse_error { source = path; line = 0; field = None; message })

let load_csv_result path =
  match load_samples_result path with
  | Error _ as e -> e
  | Ok samples -> of_samples_result samples

let load_csv path = of_samples (parse_csv_exn ~source:path (read_file path))

let to_csv profile ~t_end ~step =
  if t_end <= 0. || step <= 0. then
    invalid_arg "Trace.to_csv: need positive horizon and step";
  let buffer = Buffer.create 1024 in
  Buffer.add_string buffer "# time,current\n";
  let n = int_of_float (Float.floor (t_end /. step)) in
  for i = 0 to n do
    let t = step *. float_of_int i in
    Buffer.add_string buffer
      (Printf.sprintf "%.9g,%.9g\n" t (Load_profile.load_at profile t))
  done;
  Buffer.contents buffer

let synthesize ?(seed = 0x7ACEL) ~horizon workload =
  if horizon <= 0. then invalid_arg "Trace.synthesize: non-positive horizon";
  let rng = Batlife_numerics.Rng.create ~seed () in
  let g = workload.Model.generator in
  let state = ref (Batlife_numerics.Rng.discrete rng workload.Model.initial) in
  let time = ref 0. in
  let acc = ref [ { time = 0.; current = Model.current workload !state } ] in
  let continue = ref true in
  while !continue do
    let exit = Batlife_ctmc.Generator.exit_rate g !state in
    if exit <= 0. then continue := false
    else begin
      let sojourn = Batlife_numerics.Rng.exponential rng ~rate:exit in
      time := !time +. sojourn;
      if !time >= horizon then continue := false
      else begin
        let n = Model.n_states workload in
        let weights =
          Array.init n (fun j ->
              if j = !state then 0. else Batlife_ctmc.Generator.rate g !state j)
        in
        state := Batlife_numerics.Rng.discrete rng weights;
        acc := { time = !time; current = Model.current workload !state } :: !acc
      end
    end
  done;
  List.rev !acc

type estimated = {
  model : Model.t;
  levels : float array;
  occupancy : float array;
}

(* Dwell segments of a trace: (level current, duration). *)
let dwells samples =
  let rec go = function
    | s :: (next :: _ as rest) ->
        (s.current, next.time -. s.time) :: go rest
    | [ _ ] | [] -> []
  in
  go samples

let quantise ~max_states samples =
  let distinct =
    List.sort_uniq Float.compare (List.map (fun s -> s.current) samples)
  in
  if List.length distinct <= max_states then Array.of_list distinct
  else begin
    (* Equal-occupancy clustering: split the time-weighted current
       distribution into max_states quantile buckets and use the
       time-weighted mean of each bucket as its level. *)
    let segments =
      List.sort (fun (a, _) (b, _) -> Float.compare a b) (dwells samples)
    in
    let total = List.fold_left (fun acc (_, d) -> acc +. d) 0. segments in
    let per_bucket = total /. float_of_int max_states in
    let levels = Array.make max_states 0. in
    let weight = Array.make max_states 0. in
    let bucket = ref 0 and filled = ref 0. in
    List.iter
      (fun (current, duration) ->
        let remaining = ref duration in
        while !remaining > 0. do
          let capacity = per_bucket -. !filled in
          let take = Float.min capacity !remaining in
          levels.(!bucket) <- levels.(!bucket) +. (current *. take);
          weight.(!bucket) <- weight.(!bucket) +. take;
          filled := !filled +. take;
          remaining := !remaining -. take;
          if !filled >= per_bucket -. 1e-12 && !bucket < max_states - 1 then begin
            incr bucket;
            filled := 0.
          end
          else if !filled >= per_bucket then remaining := 0.
        done)
      segments;
    Array.mapi
      (fun i acc -> if weight.(i) > 0. then acc /. weight.(i) else 0.)
      levels
  end

let nearest_level levels current =
  let best = ref 0 and best_distance = ref infinity in
  Array.iteri
    (fun i level ->
      let d = Float.abs (level -. current) in
      if d < !best_distance then begin
        best := i;
        best_distance := d
      end)
    levels;
  !best

let estimate_model ?(max_states = 8) samples =
  check_samples samples;
  if max_states < 2 then invalid_arg "Trace.estimate_model: max_states < 2";
  let levels = quantise ~max_states samples in
  let n = Array.length levels in
  if n < 2 then invalid_arg "Trace.estimate_model: trace has a single level";
  (* Collapse consecutive dwells that quantise to the same level, then
     count transitions and time per level. *)
  let dwell_levels =
    List.map (fun (c, d) -> (nearest_level levels c, d)) (dwells samples)
  in
  let time_in = Array.make n 0. in
  let transitions = Array.make_matrix n n 0 in
  let rec walk = function
    | (a, d) :: ((b, _) :: _ as rest) ->
        time_in.(a) <- time_in.(a) +. d;
        if a <> b then transitions.(a).(b) <- transitions.(a).(b) + 1;
        walk rest
    | [ (a, d) ] -> time_in.(a) <- time_in.(a) +. d
    | [] -> ()
  in
  walk dwell_levels;
  let rates = ref [] in
  for a = 0 to n - 1 do
    for b = 0 to n - 1 do
      if a <> b && transitions.(a).(b) > 0 && time_in.(a) > 0. then
        rates :=
          (a, b, float_of_int transitions.(a).(b) /. time_in.(a)) :: !rates
    done
  done;
  let labels = Array.init n (fun i -> Printf.sprintf "level%d" i) in
  let generator = Batlife_ctmc.Generator.of_rates ~labels ~n !rates in
  let initial = Array.make n 0. in
  (match samples with
  | first :: _ -> initial.(nearest_level levels first.current) <- 1.
  | [] -> ());
  let total = Array.fold_left ( +. ) 0. time_in in
  let occupancy = Array.map (fun t -> t /. Float.max total 1e-300) time_in in
  { model = Model.create ~generator ~currents:levels ~initial; levels;
    occupancy }
