(** Trace-driven workloads.

    The paper's conclusion names "the evaluation of real world
    power-aware devices" as future work; the missing piece is feeding
    measured current traces into the battery models.  This module
    parses recorded traces into {!Batlife_battery.Load_profile}s,
    generates synthetic traces from the stochastic workload models
    (for closing the loop in tests), and estimates a CTMC workload
    model back from a trace by quantising the observed currents —
    so a measured device can be run through the KiBaMRM pipeline. *)

open Batlife_battery

type sample = { time : float; current : float }

val sample_violations : sample list -> string list
(** Every invariant violation in the sample list (empty = valid),
    labelled by 1-based sample index: at least two samples, finite
    non-negative currents, finite strictly-increasing timestamps
    starting at 0 or later. *)

val of_samples : sample list -> Load_profile.t
(** Build a piecewise-constant profile: sample [k]'s current holds
    from its timestamp to the next one; the final sample's current is
    held for the median inter-sample gap.  Timestamps must be strictly
    increasing and start at 0 or later (an initial gap is treated as
    idle).  Raises [Invalid_argument] rendering the full
    {!sample_violations} report on invalid input. *)

val of_samples_result :
  sample list -> (Load_profile.t, Batlife_numerics.Diag.error) result
(** Like {!of_samples} but returns [Error (Invalid_model _)] carrying
    every violation instead of raising. *)

val parse_csv_exn : ?source:string -> string -> sample list
(** Parse a trace from a string of CSV lines [time,current]; blank
    lines and [#]-comments are skipped.  Raises
    [Diag.Error (Parse_error _)] naming [source] (default
    ["<trace>"]), the 1-based line number and, for an unreadable
    number, which field ([time] or [current]) was at fault. *)

val parse_csv_result :
  ?source:string -> string -> (sample list, Batlife_numerics.Diag.error) result
(** {!parse_csv_exn} with the error captured as a [result]. *)

val load_samples_result :
  string -> (sample list, Batlife_numerics.Diag.error) result
(** Read and parse a trace file; I/O errors surface as a
    [Parse_error] with [line = 0]. *)

val load_csv_result :
  string -> (Load_profile.t, Batlife_numerics.Diag.error) result
(** {!load_samples_result} followed by {!of_samples_result}. *)

val load_csv : string -> Load_profile.t
(** [load_csv path] reads and parses a trace file.  Raises
    [Diag.Error (Parse_error _)] (parse) / [Invalid_argument]
    (validation) / [Sys_error] (I/O). *)

val to_csv : Load_profile.t -> t_end:float -> step:float -> string
(** Sample a profile back to CSV text (for round-tripping and for
    exporting synthetic traces). *)

val synthesize :
  ?seed:int64 -> horizon:float -> Model.t -> sample list
(** Generate a synthetic trace by simulating the workload CTMC until
    [horizon]: one sample per state change. *)

type estimated = {
  model : Model.t;
  levels : float array;  (** quantised current levels (the states) *)
  occupancy : float array;  (** fraction of trace time per level *)
}

val estimate_model : ?max_states:int -> sample list -> estimated
(** Fit a CTMC workload model to a trace: quantise the observed
    currents into at most [max_states] (default 8) distinct levels
    (exact distinct values if few enough, otherwise equal-occupancy
    clusters), then estimate transition rates
    [q_ij = transitions(i->j) / time_in(i)] — the maximum-likelihood
    estimator for a CTMC observed continuously.  The initial state is
    the first sample's level.  Raises [Invalid_argument] if the trace
    has fewer than two samples or only one level. *)
