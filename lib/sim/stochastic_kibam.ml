open Batlife_battery
module Diag = Batlife_numerics.Diag

let step_slot rng p ~load ~slot (s : Kibam.state) =
  let base = p.Modified_kibam.base in
  let delta = Kibam.height_difference base s in
  let flow =
    if delta > 0. then
      let probability = Modified_kibam.recovery_factor p s in
      if Rng.bernoulli rng ~p:probability then
        base.Kibam.k *. delta *. slot
      else 0.
    else
      (* Reverse flow (levelling after over-recovery) is kept
         deterministic; it does not model electro-chemical recovery. *)
      base.Kibam.k *. delta *. slot
  in
  let flow = Float.min flow s.Kibam.bound in
  {
    Kibam.available = s.Kibam.available -. (load *. slot) +. flow;
    bound = s.Kibam.bound -. flow;
  }

let sample_lifetime ?(max_time = 1e9) ~slot rng p profile =
  if slot <= 0. then
    Diag.invalid_model ~what:"Stochastic_kibam slot width"
      [ Printf.sprintf "slot = %g; need a positive slot" slot ];
  let rec walk t s segs =
    if t >= max_time then None
    else if s.Kibam.available <= 0. then Some t
    else
      match segs () with
      | Seq.Nil -> None
      | Seq.Cons ((duration, load), rest) ->
          let seg_end = Float.min (t +. duration) max_time in
          let rec slots t s =
            if s.Kibam.available <= 0. then Some t
            else if t >= seg_end then
              if Float.is_finite duration then walk t s rest else None
            else
              let dt = Float.min slot (seg_end -. t) in
              let s' = step_slot rng p ~load ~slot:dt s in
              if s'.Kibam.available <= 0. then
                (* Interpolate the crossing within the slot. *)
                let consumed = s.Kibam.available -. s'.Kibam.available in
                let frac =
                  if consumed > 0. then s.Kibam.available /. consumed else 1.
                in
                Some (t +. (frac *. dt))
              else slots (t +. dt) s'
          in
          slots t s
  in
  walk 0. (Kibam.initial p.Modified_kibam.base)
    (Load_profile.segments_from profile 0.)

let mean_lifetime ?(seed = 0x57CA571CL) ?(runs = 200) ?max_time ~slot p profile
    =
  if runs <= 0 then
    Diag.invalid_model ~what:"Stochastic_kibam replication count"
      [ Printf.sprintf "runs = %d; need runs > 0" runs ];
  let master = Rng.create ~seed () in
  let samples =
    Array.init runs (fun _ ->
        let rng = Rng.split master in
        match sample_lifetime ?max_time ~slot rng p profile with
        | Some t -> t
        | None ->
            Diag.fail
              (Diag.Budget_exhausted
                 {
                   what =
                     "Stochastic_kibam.mean_lifetime: a replication was \
                      censored — the battery outlived the simulated span \
                      (raise ?max_time or supply a finite load profile)";
                   budget = runs;
                 }))
  in
  let s = Stats.summarize samples in
  (s.Stats.mean, Stats.mean_confidence_interval samples)
