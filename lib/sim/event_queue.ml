type 'a entry = { time : float; payload : 'a }

type 'a t = { mutable data : 'a entry array; mutable len : int }

let create () = { data = [||]; len = 0 }

let is_empty q = q.len = 0

let size q = q.len

let swap q i j =
  let t = q.data.(i) in
  q.data.(i) <- q.data.(j);
  q.data.(j) <- t

let rec sift_up q i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if q.data.(i).time < q.data.(parent).time then begin
      swap q i parent;
      sift_up q parent
    end
  end

let rec sift_down q i =
  let left = (2 * i) + 1 and right = (2 * i) + 2 in
  let smallest = ref i in
  if left < q.len && q.data.(left).time < q.data.(!smallest).time then
    smallest := left;
  if right < q.len && q.data.(right).time < q.data.(!smallest).time then
    smallest := right;
  if !smallest <> i then begin
    swap q i !smallest;
    sift_down q !smallest
  end

let push q ~time payload =
  if Float.is_nan time then
    Batlife_numerics.Diag.invalid_model ~what:"Event_queue.push"
      [ "event time is NaN: the heap order would be undefined" ];
  let entry = { time; payload } in
  if q.len = Array.length q.data then begin
    let capacity = max 16 (2 * Array.length q.data) in
    let data = Array.make capacity entry in
    Array.blit q.data 0 data 0 q.len;
    q.data <- data
  end;
  q.data.(q.len) <- entry;
  q.len <- q.len + 1;
  sift_up q (q.len - 1)

let peek q =
  if q.len = 0 then None else Some (q.data.(0).time, q.data.(0).payload)

let pop q =
  if q.len = 0 then None
  else begin
    let top = q.data.(0) in
    q.len <- q.len - 1;
    if q.len > 0 then begin
      q.data.(0) <- q.data.(q.len);
      sift_down q 0
    end;
    Some (top.time, top.payload)
  end

let clear q = q.len <- 0
