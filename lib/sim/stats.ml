open Batlife_numerics

type summary = {
  count : int;
  mean : float;
  variance : float;
  std_dev : float;
  minimum : float;
  maximum : float;
}

let summarize samples =
  let n = Array.length samples in
  if n = 0 then
    Diag.invalid_model ~what:"Stats.summarize"
      [ "empty sample: no statistics to compute" ];
  (* Welford's online algorithm for numerical stability. *)
  let mean = ref 0. and m2 = ref 0. in
  let minimum = ref samples.(0) and maximum = ref samples.(0) in
  Array.iteri
    (fun i x ->
      let k = float_of_int (i + 1) in
      let d = x -. !mean in
      mean := !mean +. (d /. k);
      m2 := !m2 +. (d *. (x -. !mean));
      minimum := Float.min !minimum x;
      maximum := Float.max !maximum x)
    samples;
  let variance = if n > 1 then !m2 /. float_of_int (n - 1) else 0. in
  {
    count = n;
    mean = !mean;
    variance;
    std_dev = sqrt variance;
    minimum = !minimum;
    maximum = !maximum;
  }

let z_for confidence =
  if confidence <= 0. || confidence >= 1. then
    Diag.invalid_model ~what:"Stats confidence level"
      [ Printf.sprintf "confidence = %g must lie strictly in (0, 1)" confidence ];
  Special.normal_quantile (1. -. ((1. -. confidence) /. 2.))

let mean_confidence_interval ?(confidence = 0.95) samples =
  let s = summarize samples in
  let z = z_for confidence in
  let half = z *. s.std_dev /. sqrt (float_of_int s.count) in
  (s.mean -. half, s.mean +. half)

let proportion_confidence_interval ?(confidence = 0.95) ~p_hat n =
  if n <= 0 then
    Diag.invalid_model ~what:"Stats.proportion_confidence_interval"
      [ Printf.sprintf "n = %d; need a positive sample count" n ];
  let z = z_for confidence in
  let half = z *. sqrt (p_hat *. (1. -. p_hat) /. float_of_int n) in
  (Float.max 0. (p_hat -. half), Float.min 1. (p_hat +. half))

module Ecdf = struct
  type t = { sorted : float array }

  let create samples =
    if Array.length samples = 0 then
      Diag.invalid_model ~what:"Ecdf.create" [ "empty sample" ];
    let sorted = Array.copy samples in
    Array.sort Float.compare sorted;
    { sorted }

  (* Number of samples <= x, by binary search. *)
  let count_le e x =
    let n = Array.length e.sorted in
    if x < e.sorted.(0) then 0
    else if x >= e.sorted.(n - 1) then n
    else begin
      (* Largest index with sorted.(i) <= x. *)
      let lo = ref 0 and hi = ref (n - 1) in
      while !hi - !lo > 1 do
        let mid = (!lo + !hi) / 2 in
        if e.sorted.(mid) <= x then lo := mid else hi := mid
      done;
      !lo + 1
    end

  let eval e x =
    float_of_int (count_le e x) /. float_of_int (Array.length e.sorted)

  let quantile e p =
    if p < 0. || p > 1. then
      Diag.invalid_model ~what:"Ecdf.quantile"
        [ Printf.sprintf "p = %g lies outside [0, 1]" p ];
    let n = Array.length e.sorted in
    let idx = int_of_float (Float.ceil (p *. float_of_int n)) - 1 in
    e.sorted.(min (max idx 0) (n - 1))

  let samples e = Array.copy e.sorted

  let ks_distance e cdf =
    let n = Array.length e.sorted in
    let nf = float_of_int n in
    let best = ref 0. in
    for i = 0 to n - 1 do
      let f = cdf e.sorted.(i) in
      let upper = (float_of_int (i + 1) /. nf) -. f
      and lower = f -. (float_of_int i /. nf) in
      best := Float.max !best (Float.max upper lower)
    done;
    !best
end
