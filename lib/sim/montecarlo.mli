(** Monte-Carlo estimation of lifetime distributions.

    Replicates {!Trajectory.sample_lifetime} (the paper uses 1000
    independent runs) and reports the empirical CDF with pointwise
    confidence bands. *)

open Batlife_core

type estimate = {
  times : float array;
  cdf : float array;  (** empirical [Pr{L <= t}] *)
  ci_low : float array;
  ci_high : float array;  (** pointwise 95 % band (Wald) *)
  runs : int;
  censored : int;  (** replications that outlived the horizon *)
  samples : float array;  (** observed lifetimes (censored excluded) *)
}

type progress = {
  mp_target : int;  (** total replications requested *)
  mp_done : int;  (** replications completed so far *)
  mp_censored : int;
  mp_died : float list;  (** observed lifetimes, newest first *)
  mp_rng : int64 array;  (** master generator state before the next split *)
}
(** A mid-batch snapshot.  Restoring it ({!run_replications}'s
    [?resume]) replays nothing: the master generator continues from its
    exact xoshiro256++ state and the accumulated outcomes keep their
    accumulation order, so the resumed estimate is bitwise identical to
    an uninterrupted run's. *)

val run_replications :
  ?seed:int64 ->
  ?progress:progress Batlife_numerics.Progress.t ->
  runs:int ->
  horizon:float ->
  Kibamrm.t ->
  float array * int
(** Observed lifetimes (oldest first) and the censored count.  Each
    replication counts one unit against the ambient
    {!Batlife_numerics.Budget}.  [progress] is the shared
    checkpoint/resume record ({!Batlife_numerics.Progress}): [on_step]
    fires after every completed replication with a lazy snapshot,
    [on_interrupt] receives the final snapshot before a
    budget-exhaustion/cancellation error propagates, and [resume] must
    carry the same [mp_target] as [runs] ([Invalid_model]
    otherwise). *)

val lifetime_cdf :
  ?seed:int64 ->
  ?runs:int ->
  ?horizon:float ->
  ?confidence:float ->
  ?progress:progress Batlife_numerics.Progress.t ->
  Kibamrm.t ->
  times:float array ->
  estimate
(** [lifetime_cdf model ~times] runs [runs] (default 1000) independent
    replications.  Censored runs count as "alive" at every requested
    time, making the CDF estimate exact as long as
    [max times <= horizon] (default: 4x the largest requested
    time).  The resilience hooks pass through to
    {!run_replications}. *)

val mean_lifetime :
  ?seed:int64 -> ?runs:int -> ?horizon:float -> Kibamrm.t ->
  float * (float * float)
(** Mean observed lifetime with a 95 % CI.  Raises [Failure] if any
    replication is censored (increase the horizon). *)
