(** Descriptive statistics and empirical distributions for the
    Monte-Carlo engine. *)

type summary = {
  count : int;
  mean : float;
  variance : float;  (** unbiased sample variance *)
  std_dev : float;
  minimum : float;
  maximum : float;
}

val summarize : float array -> summary
(** Raises [Batlife_numerics.Diag.Error (Invalid_model _)] on the
    empty array. *)

val mean_confidence_interval :
  ?confidence:float -> float array -> float * float
(** Normal-approximation CI for the mean (default 95 %). *)

val proportion_confidence_interval :
  ?confidence:float -> p_hat:float -> int -> float * float
(** [proportion_confidence_interval ~p_hat n]: Wald interval for a
    proportion observed over [n] trials, clamped to [\[0,1\]]. *)

module Ecdf : sig
  type t

  val create : float array -> t
  (** Empirical CDF of the samples (copies and sorts). *)

  val eval : t -> float -> float
  (** Fraction of samples [<= x]. *)

  val quantile : t -> float -> float
  (** [quantile e p] with [p] in [\[0, 1]]. *)

  val samples : t -> float array
  (** The sorted samples. *)

  val ks_distance : t -> (float -> float) -> float
  (** Kolmogorov–Smirnov distance between the empirical CDF and a
      reference CDF, evaluated at the sample points (both one-sided
      deviations considered). *)
end
