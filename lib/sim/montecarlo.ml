module Diag = Batlife_numerics.Diag
module Progress = Batlife_numerics.Progress

type estimate = {
  times : float array;
  cdf : float array;
  ci_low : float array;
  ci_high : float array;
  runs : int;
  censored : int;
  samples : float array;
}

let default_runs = 1000

type progress = {
  mp_target : int;
  mp_done : int;
  mp_censored : int;
  mp_died : float list;  (* newest first — the accumulation order *)
  mp_rng : int64 array;  (* master generator state before the next split *)
}

(* Resuming restores the master generator's exact state plus the
   accumulated outcomes, so the remaining replications draw the exact
   streams the uninterrupted run would have drawn: the final estimate
   is bitwise identical (the sample list even preserves accumulation
   order, so order-sensitive float summations downstream agree too). *)
let run_replications ?(seed = 0x0BA77E7AL) ?(progress = Progress.none) ~runs
    ~horizon model =
  let { Progress.on_step; on_interrupt; resume } = progress in
  if runs <= 0 then
    Diag.invalid_model ~what:"Montecarlo replication count"
      [ Printf.sprintf "runs = %d; need runs > 0" runs ];
  let sim = Trajectory.prepare model in
  let died = ref [] and censored = ref 0 in
  let master, start =
    match resume with
    | None -> (Rng.create ~seed (), 0)
    | Some r ->
        if r.mp_target <> runs then
          Diag.invalid_model ~what:"Montecarlo resume"
            [
              Printf.sprintf
                "snapshot was taken for %d replications but this run asks for \
                 %d"
                r.mp_target runs;
            ];
        if
          r.mp_done < 0 || r.mp_done > runs
          || List.length r.mp_died + r.mp_censored <> r.mp_done
        then
          Diag.invalid_model ~what:"Montecarlo resume"
            [
              Printf.sprintf
                "inconsistent snapshot: done = %d, died = %d, censored = %d"
                r.mp_done (List.length r.mp_died) r.mp_censored;
            ];
        died := r.mp_died;
        censored := r.mp_censored;
        (Rng.of_state r.mp_rng, r.mp_done)
  in
  let snapshot_at k () =
    {
      mp_target = runs;
      mp_done = k;
      mp_censored = !censored;
      mp_died = !died;
      mp_rng = Rng.state master;
    }
  in
  let budget = Batlife_numerics.Budget.ambient () in
  let what = "Montecarlo.run_replications" in
  for k = start + 1 to runs do
    Batlife_numerics.Budget.note_product budget;
    (match Batlife_numerics.Budget.peek ~what budget with
    | None -> ()
    | Some e ->
        (match on_interrupt with
        | Some f -> f (snapshot_at (k - 1) ())
        | None -> ());
        Diag.fail e);
    (* A split stream per replication keeps replications independent
       of each other's consumption pattern. *)
    let rng = Rng.split master in
    (match Trajectory.run ~horizon sim rng with
    | Trajectory.Died t -> died := t :: !died
    | Trajectory.Survived _ -> incr censored);
    match on_step with
    | Some f -> f ~step:k ~snapshot:(snapshot_at k)
    | None -> ()
  done;
  (Array.of_list !died, !censored)

let lifetime_cdf ?seed ?(runs = default_runs) ?horizon ?(confidence = 0.95)
    ?progress model ~times =
  let horizon =
    match horizon with
    | Some h -> h
    | None -> 4. *. Array.fold_left Float.max 1. times
  in
  Array.iter
    (fun t ->
      if t > horizon then
        Diag.invalid_model ~what:"Montecarlo.lifetime_cdf time grid"
          [ Printf.sprintf "t = %g lies beyond the horizon %g" t horizon ])
    times;
  let samples, censored =
    run_replications ?seed ?progress ~runs ~horizon model
  in
  let nf = float_of_int runs in
  let cdf =
    Array.map
      (fun t ->
        let count =
          Array.fold_left
            (fun acc l -> if l <= t then acc + 1 else acc)
            0 samples
        in
        float_of_int count /. nf)
      times
  in
  let lows = Array.make (Array.length times) 0.
  and highs = Array.make (Array.length times) 0. in
  Array.iteri
    (fun i p ->
      let lo, hi =
        Stats.proportion_confidence_interval ~confidence ~p_hat:p runs
      in
      lows.(i) <- lo;
      highs.(i) <- hi)
    cdf;
  {
    times = Array.copy times;
    cdf;
    ci_low = lows;
    ci_high = highs;
    runs;
    censored;
    samples;
  }

let mean_lifetime ?seed ?(runs = default_runs) ?(horizon = 1e9) model =
  let samples, censored = run_replications ?seed ~runs ~horizon model in
  if censored > 0 then
    Diag.fail
      (Diag.Budget_exhausted
         {
           what =
             Printf.sprintf
               "Montecarlo.mean_lifetime: %d of %d replications censored at \
                horizon %g; a mean over the survivors would be biased low \
                (increase ~horizon)"
               censored runs horizon;
           budget = runs;
         });
  let s = Stats.summarize samples in
  (s.Stats.mean, Stats.mean_confidence_interval samples)
