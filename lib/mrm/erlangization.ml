open Batlife_numerics
open Batlife_ctmc

(* Product chain over (model state, consumed stages 0..m); stage m is
   the absorbing "budget exhausted" layer, collapsed per state.  Layout:
   index = stage * n + i, so the absorbing layer is the trailing
   block. *)
let build_product (m : Mrm.t) ~budget ~stages =
  if budget <= 0. then invalid_arg "Erlangization: non-positive budget";
  if stages < 1 then invalid_arg "Erlangization: need stages >= 1";
  let n = Mrm.n_states m in
  let stage_rate = float_of_int stages /. budget in
  let total = (stages + 1) * n in
  let wq = Generator.matrix m.Mrm.generator in
  let b =
    Sparse.Builder.create
      ~initial_capacity:(total * 4)
      ~rows:total ~cols:total ()
  in
  for stage = 0 to stages - 1 do
    let base = stage * n in
    Sparse.iter wq (fun i j rate ->
        if i <> j && rate > 0. then
          Sparse.Builder.add b (base + i) (base + j) rate);
    for i = 0 to n - 1 do
      let r = m.Mrm.rewards.(i) in
      if r > 0. then
        Sparse.Builder.add b (base + i) (base + n + i) (r *. stage_rate)
    done
  done;
  (* Stage [stages] rows stay empty: absorbing. *)
  let alpha = Array.make total 0. in
  Array.blit m.Mrm.alpha 0 alpha 0 n;
  (Generator.of_builder b, alpha, stages * n)

let exceedance ?accuracy ?(stages = 512) m ~budget ~times =
  let g, alpha, absorbing_start = build_product m ~budget ~stages in
  let measure (v : Fvec.t) =
    let acc = ref 0. in
    for idx = absorbing_start to Fvec.length v - 1 do
      acc := !acc +. Fvec.unsafe_get v idx
    done;
    !acc
  in
  let results, _ =
    Transient.measure_sweep
      ~opts:(Solver_opts.make ?accuracy ())
      g ~alpha ~times ~measure
  in
  results

let cdf ?accuracy ?stages m ~t ~ys =
  Array.map
    (fun y ->
      if y < 0. then 0.
      else if y = 0. then begin
        (* P(Y(t) = 0): only if the chain can stay in zero-reward
           states; approximate by a tiny budget. *)
        let eps = 1e-9 *. Float.max t 1. in
        1. -. (exceedance ?accuracy ?stages m ~budget:eps ~times:[| t |]).(0)
      end
      else 1. -. (exceedance ?accuracy ?stages m ~budget:y ~times:[| t |]).(0))
    ys

let exceedance_auto ?accuracy ?(initial_stages = 256) ?(tolerance = 1e-4)
    ?(max_stages = 16384) m ~budget ~times =
  let rec refine stages previous =
    let current = exceedance ?accuracy ~stages m ~budget ~times in
    match previous with
    | Some prev when Vector.dist_inf prev current <= tolerance ->
        (current, stages)
    | _ ->
        if 2 * stages > max_stages then (current, stages)
        else refine (2 * stages) (Some current)
  in
  refine initial_stages None
