open Batlife_battery
open Batlife_workload
open Batlife_core
open Helpers

let model () =
  Kibamrm.create
    ~workload:(Onoff.model ~frequency:1. ~k:1 ~on_current:0.96 ())
    ~battery:(Kibam.params ~capacity:7200. ~c:1. ~k:0.)

let times () = Array.init 29 (fun i -> 6000. +. (500. *. float_of_int i))

let test_pointwise_distance () =
  let times = times () in
  let a = Lifetime.cdf ~delta:200. ~times (model ()) in
  let b = Lifetime.cdf ~delta:100. ~times (model ()) in
  let d = Analysis.max_pointwise_distance a b in
  check_true "positive" (d > 0.);
  check_float "self distance" 0. (Analysis.max_pointwise_distance a a);
  let other = Lifetime.cdf ~delta:100. ~times:[| 6000.; 7000. |] (model ()) in
  check_raises_invalid "grid mismatch" (fun () ->
      ignore (Analysis.max_pointwise_distance a other))

let test_refinement_contracts () =
  let times = times () in
  let curves =
    Lifetime.convergence_study ~deltas:[| 400.; 200.; 100.; 50. |] ~times
      (model ())
  in
  let distances = Analysis.refinement_distances curves in
  check_int "three gaps" 3 (List.length distances);
  (* Each refinement moves the curve less than the previous one. *)
  (match distances with
  | [ d1; d2; d3 ] -> check_true "contracting" (d1 > d2 && d2 > d3)
  | _ -> Alcotest.fail "unexpected");
  match Analysis.empirical_order curves with
  | Some p ->
      (* The on/off CDF is nearly deterministic, so the convergence of
         the phase-type approximation is slow at coarse deltas. *)
      check_true "order positive and sane" (p > 0.05 && p < 2.5)
  | None -> Alcotest.fail "expected an order estimate"

let test_empirical_order_degenerate () =
  let times = times () in
  let c = Lifetime.cdf ~delta:100. ~times (model ()) in
  check_true "needs three curves" (Analysis.empirical_order [ c ] = None)

(* Hand-built curves exercise the degenerate branches without paying
   for a sweep. *)
let curve ~delta times probabilities =
  {
    Lifetime.times;
    probabilities;
    delta;
    states = 0;
    nnz = 0;
    iterations = 0;
    uniformisation_rate = 0.;
  }

let test_empirical_order_degenerate_inputs () =
  let t = [| 1.; 2. |] in
  check_true "empty list" (Analysis.empirical_order [] = None);
  check_true "two curves"
    (Analysis.empirical_order
       [ curve ~delta:100. t [| 0.1; 0.5 |]; curve ~delta:50. t [| 0.2; 0.6 |] ]
    = None);
  (* Identical curves: both refinement distances are exactly zero, so
     no order can be estimated. *)
  let same d = curve ~delta:d t [| 0.1; 0.5 |] in
  check_true "identical curves"
    (Analysis.empirical_order [ same 100.; same 50.; same 25. ] = None);
  (* Deltas in the wrong direction (ratio <= 1) with genuine
     distances must also refuse rather than divide by log 1 or flip
     the sign of the estimate. *)
  let seq =
    [
      curve ~delta:25. t [| 0.1; 0.5 |];
      curve ~delta:50. t [| 0.2; 0.6 |];
      curve ~delta:100. t [| 0.25; 0.65 |];
    ]
  in
  check_true "non-refining deltas" (Analysis.empirical_order seq = None);
  (* Equal deltas: ratio exactly 1. *)
  let flat =
    [
      curve ~delta:50. t [| 0.1; 0.5 |];
      curve ~delta:50. t [| 0.2; 0.6 |];
      curve ~delta:50. t [| 0.25; 0.65 |];
    ]
  in
  check_true "equal deltas" (Analysis.empirical_order flat = None)

let test_richardson_clamps () =
  let t = [| 1.; 2.; 3. |] in
  let coarse = curve ~delta:100. t [| 0.4; 0.5; 0.7 |] in
  let fine = curve ~delta:50. t [| 0.1; 0.9; 0.8 |] in
  (* Raw order-1 extrapolation is [2 f - c] = [-0.2; 1.3; 0.9]:
     undershoots 0, overshoots 1, then decreases.  The result must be
     clamped back to a monotone CDF. *)
  let extrapolated = Analysis.richardson ~coarse fine in
  let p = extrapolated.Lifetime.probabilities in
  check_float "undershoot clamped to 0" 0. p.(0);
  check_float "overshoot clamped to 1" 1. p.(1);
  check_float "monotonised after the overshoot" 1. p.(2);
  check_float "fine metadata reused" 50. extrapolated.Lifetime.delta

let test_richardson_improves () =
  let times = times () in
  let m = model () in
  let coarse = Lifetime.cdf ~delta:100. ~times m in
  let fine = Lifetime.cdf ~delta:50. ~times m in
  let reference = Lifetime.cdf ~delta:10. ~times m in
  let extrapolated = Analysis.richardson ~coarse fine in
  let err_fine = Analysis.max_pointwise_distance fine reference in
  let err_extra = Analysis.max_pointwise_distance extrapolated reference in
  check_true "extrapolation beats fine curve" (err_extra < err_fine);
  (* Output is still a CDF. *)
  let prev = ref 0. in
  Array.iter
    (fun p ->
      check_true "in range" (p >= 0. && p <= 1.);
      check_true "monotone" (p >= !prev);
      prev := p)
    extrapolated.Lifetime.probabilities;
  check_raises_invalid "wrong order of arguments" (fun () ->
      ignore (Analysis.richardson ~coarse:fine coarse))

let test_empty_recovery_variant () =
  let workload = Simple.model () in
  let battery = Kibam.params ~capacity:800. ~c:0.625 ~k:0.162 in
  let m = Kibamrm.create ~workload ~battery in
  let times = Array.init 30 (fun i -> float_of_int (i + 1)) in
  let absorbing = Discretized.build ~delta:25. m in
  let live = Discretized.build ~absorb_empty:false ~delta:25. m in
  (* Same state space, more transitions. *)
  check_int "same states" (Discretized.n_states absorbing)
    (Discretized.n_states live);
  check_true "more transitions" (Discretized.nnz live > Discretized.nnz absorbing);
  let by_t, _ = Discretized.empty_probability absorbing ~times in
  let at_t, _ = Discretized.empty_probability live ~times in
  (* P(empty at t) <= P(empty by t): recovery only helps. *)
  Array.iteri
    (fun i p -> check_true "recovery dominates" (p <= by_t.(i) +. 1e-9))
    at_t;
  (* And it is strictly better while depletion-and-recovery is in
     full swing (t = 21 h). *)
  check_true "strictly better mid-life" (at_t.(20) < by_t.(20) -. 0.02)

let suite =
  [
    case "pointwise distance" test_pointwise_distance;
    slow_case "refinement contracts" test_refinement_contracts;
    case "empirical order needs data" test_empirical_order_degenerate;
    case "empirical order degenerate inputs" test_empirical_order_degenerate_inputs;
    case "richardson clamps to a CDF" test_richardson_clamps;
    slow_case "richardson improves" test_richardson_improves;
    case "empty-state recovery variant" test_empty_recovery_variant;
  ]
