open Batlife_battery
open Batlife_workload
open Batlife_core
open Batlife_sim
open Helpers

(* --- RNG -------------------------------------------------------------- *)

let test_rng_deterministic () =
  let a = Rng.create ~seed:42L () and b = Rng.create ~seed:42L () in
  for _ = 1 to 100 do
    check_true "same stream" (Rng.bits64 a = Rng.bits64 b)
  done

let test_rng_seeds_differ () =
  let a = Rng.create ~seed:1L () and b = Rng.create ~seed:2L () in
  check_true "different streams" (Rng.bits64 a <> Rng.bits64 b)

let test_rng_copy_and_split () =
  let a = Rng.create ~seed:7L () in
  let c = Rng.copy a in
  check_true "copy equal" (Rng.bits64 a = Rng.bits64 c);
  let a = Rng.create ~seed:7L () in
  let s = Rng.split a in
  check_true "split differs from parent" (Rng.bits64 a <> Rng.bits64 s)

let test_uniform_range_and_moments () =
  let rng = Rng.create ~seed:11L () in
  let n = 100_000 in
  let sum = ref 0. and sum_sq = ref 0. in
  for _ = 1 to n do
    let u = Rng.uniform rng in
    check_true "in [0,1)" (u >= 0. && u < 1.);
    sum := !sum +. u;
    sum_sq := !sum_sq +. (u *. u)
  done;
  let mean = !sum /. float_of_int n in
  let second = !sum_sq /. float_of_int n in
  check_float ~eps:5e-3 "mean 1/2" 0.5 mean;
  check_float ~eps:5e-3 "second moment 1/3" (1. /. 3.) second

let test_exponential_moments () =
  let rng = Rng.create ~seed:13L () in
  let rate = 2.5 in
  let n = 100_000 in
  let sum = ref 0. in
  for _ = 1 to n do
    sum := !sum +. Rng.exponential rng ~rate
  done;
  check_float ~eps:6e-3 "mean 1/rate" (1. /. rate) (!sum /. float_of_int n);
  check_raises_invalid "bad rate" (fun () ->
      ignore (Rng.exponential rng ~rate:0.))

let test_erlang_moments () =
  let rng = Rng.create ~seed:17L () in
  let k = 4 and rate = 2. in
  let n = 50_000 in
  let sum = ref 0. and sum_sq = ref 0. in
  for _ = 1 to n do
    let x = Rng.erlang rng ~k ~rate in
    sum := !sum +. x;
    sum_sq := !sum_sq +. (x *. x)
  done;
  let mean = !sum /. float_of_int n in
  let var = (!sum_sq /. float_of_int n) -. (mean *. mean) in
  check_float ~eps:0.03 "mean k/rate" 2. mean;
  check_float ~eps:0.05 "variance k/rate^2" 1. var

let test_discrete_sampler () =
  let rng = Rng.create ~seed:19L () in
  let weights = [| 1.; 0.; 3. |] in
  let counts = Array.make 3 0 in
  let n = 40_000 in
  for _ = 1 to n do
    let i = Rng.discrete rng weights in
    counts.(i) <- counts.(i) + 1
  done;
  check_int "never the zero weight" 0 counts.(1);
  check_float ~eps:0.02 "first quarter" 0.25
    (float_of_int counts.(0) /. float_of_int n);
  check_raises_invalid "all zero" (fun () ->
      ignore (Rng.discrete rng [| 0.; 0. |]))

let test_int_below () =
  let rng = Rng.create ~seed:23L () in
  for _ = 1 to 1000 do
    let x = Rng.int_below rng 7 in
    check_true "in range" (x >= 0 && x < 7)
  done;
  check_raises_invalid "n zero" (fun () -> ignore (Rng.int_below rng 0))

(* --- Stats ------------------------------------------------------------ *)

let test_summarize () =
  let s = Stats.summarize [| 1.; 2.; 3.; 4. |] in
  check_float "mean" 2.5 s.Stats.mean;
  check_close ~rel:1e-12 "variance" (5. /. 3.) s.Stats.variance;
  check_float "min" 1. s.Stats.minimum;
  check_float "max" 4. s.Stats.maximum;
  check_int "count" 4 s.Stats.count;
  check_raises_diag "empty" is_invalid_model (fun () ->
      ignore (Stats.summarize [||]))

let test_confidence_intervals () =
  let samples = Array.make 100 5. in
  let lo, hi = Stats.mean_confidence_interval samples in
  check_float "degenerate lo" 5. lo;
  check_float "degenerate hi" 5. hi;
  let lo, hi = Stats.proportion_confidence_interval ~p_hat:0.5 100 in
  check_true "brackets p" (lo < 0.5 && hi > 0.5);
  (* Wald width: 2 * 1.96 * sqrt(0.25/100). *)
  check_float ~eps:1e-3 "width" 0.196 (hi -. lo)

let test_ecdf () =
  let e = Stats.Ecdf.create [| 3.; 1.; 2. |] in
  check_float "below" 0. (Stats.Ecdf.eval e 0.5);
  check_close ~rel:1e-12 "at 1" (1. /. 3.) (Stats.Ecdf.eval e 1.);
  check_close ~rel:1e-12 "mid" (2. /. 3.) (Stats.Ecdf.eval e 2.5);
  check_float "above" 1. (Stats.Ecdf.eval e 10.);
  check_float "quantile 0.5" 2. (Stats.Ecdf.quantile e 0.5);
  check_float "quantile 1" 3. (Stats.Ecdf.quantile e 1.)

let test_ks_distance () =
  let e = Stats.Ecdf.create (Array.init 1000 (fun i -> float_of_int i /. 1000.)) in
  let d_uniform = Stats.Ecdf.ks_distance e (fun x -> Float.max 0. (Float.min 1. x)) in
  check_true "close to uniform" (d_uniform < 0.01);
  let d_wrong = Stats.Ecdf.ks_distance e (fun x -> Float.max 0. (Float.min 1. (x ** 3.))) in
  check_true "far from cubic" (d_wrong > 0.2)

(* --- Event queue ------------------------------------------------------- *)

let test_event_queue_order () =
  let q = Event_queue.create () in
  check_true "empty" (Event_queue.is_empty q);
  List.iter (fun t -> Event_queue.push q ~time:t (int_of_float t))
    [ 5.; 1.; 3.; 2.; 4. ];
  check_int "size" 5 (Event_queue.size q);
  (match Event_queue.peek q with
  | Some (t, _) -> check_float "peek earliest" 1. t
  | None -> Alcotest.fail "non-empty");
  let order = ref [] in
  let rec drain () =
    match Event_queue.pop q with
    | Some (_, v) ->
        order := v :: !order;
        drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list int)) "sorted" [ 1; 2; 3; 4; 5 ] (List.rev !order)

let prop_event_queue_sorted =
  qcheck ~count:100 "pop yields non-decreasing times"
    QCheck.(list_of_size (Gen.int_range 0 50) (float_range 0. 100.))
    (fun times ->
      let q = Event_queue.create () in
      List.iter (fun t -> Event_queue.push q ~time:t ()) times;
      let rec check_sorted prev =
        match Event_queue.pop q with
        | None -> true
        | Some (t, ()) -> t >= prev && check_sorted t
      in
      check_sorted neg_infinity)

(* --- Trajectory / Monte Carlo ------------------------------------------ *)

let constant_workload current =
  Model.of_spec
    ~states:[ ("only", current) ]
    ~transitions:[] ~initial:"only"

let test_trajectory_deterministic_workload () =
  (* One-state workload: the simulated lifetime equals the analytic
     constant-load lifetime exactly. *)
  let battery = Kibam.params ~capacity:7200. ~c:0.625 ~k:4.5e-5 in
  let model =
    Kibamrm.create ~workload:(constant_workload 0.96) ~battery
  in
  let rng = Rng.create () in
  (match Trajectory.sample_lifetime rng model with
  | Trajectory.Died t ->
      check_close ~rel:1e-9 "analytic lifetime"
        (Kibam.lifetime_constant battery ~load:0.96)
        t
  | Trajectory.Survived _ -> Alcotest.fail "must die")

let test_trajectory_horizon () =
  let battery = Kibam.params ~capacity:7200. ~c:1. ~k:0. in
  let model = Kibamrm.create ~workload:(constant_workload 0.01) ~battery in
  let rng = Rng.create () in
  match Trajectory.sample_lifetime ~horizon:10. rng model with
  | Trajectory.Survived s ->
      check_float ~eps:1e-9 "drained a little" 7199.9 s.Kibam.available;
      check_float "no bound charge" 0. s.Kibam.bound
  | Trajectory.Died _ -> Alcotest.fail "should survive"

let test_trajectory_path_events () =
  let workload = Onoff.model ~frequency:1. ~k:1 ~on_current:0.96 () in
  let battery = Kibam.params ~capacity:7200. ~c:1. ~k:0. in
  let model = Kibamrm.create ~workload ~battery in
  let events, outcome = Trajectory.sample_path (Rng.create ()) model in
  check_true "has events" (List.length events > 10);
  (match outcome with
  | Trajectory.Died t -> check_true "died eventually" (t > 7000.)
  | Trajectory.Survived _ -> Alcotest.fail "must die");
  (* Times non-decreasing; charge within bounds. *)
  let prev = ref (-1.) in
  List.iter
    (fun e ->
      check_true "ordered" (e.Trajectory.time >= !prev);
      prev := e.Trajectory.time;
      check_true "charge bound"
        (e.Trajectory.battery.Kibam.available <= 7200.0001))
    events

let test_montecarlo_reproducible () =
  let model =
    Kibamrm.create
      ~workload:(Onoff.model ~frequency:1. ~k:1 ~on_current:0.96 ())
      ~battery:(Kibam.params ~capacity:7200. ~c:1. ~k:0.)
  in
  let times = [| 14000.; 15000.; 16000. |] in
  let a = Montecarlo.lifetime_cdf ~seed:5L ~runs:50 model ~times in
  let b = Montecarlo.lifetime_cdf ~seed:5L ~runs:50 model ~times in
  Alcotest.(check (array (float 0.)))
    "same seeds, same cdf" a.Montecarlo.cdf b.Montecarlo.cdf;
  let c = Montecarlo.lifetime_cdf ~seed:6L ~runs:50 model ~times in
  check_true "different seed differs"
    (a.Montecarlo.samples <> c.Montecarlo.samples)

let test_montecarlo_mean_matches_deterministic_equivalent () =
  (* Degenerate battery + on/off: consumed charge must reach C, and
     the on-time to do so is C/I = 7500 s, so the mean lifetime is
     about 15000 s. *)
  let model =
    Kibamrm.create
      ~workload:(Onoff.model ~frequency:1. ~k:1 ~on_current:0.96 ())
      ~battery:(Kibam.params ~capacity:7200. ~c:1. ~k:0.)
  in
  let mean, (lo, hi) = Montecarlo.mean_lifetime ~runs:400 model in
  check_true "mean near 15000" (Float.abs (mean -. 15000.) < 100.);
  check_true "CI brackets mean" (lo < mean && mean < hi);
  check_true "CI brackets truth" (lo < 15000. && 15000. < hi)

let test_montecarlo_validation () =
  let model =
    Kibamrm.create ~workload:(constant_workload 1.)
      ~battery:(Kibam.params ~capacity:100. ~c:1. ~k:0.)
  in
  check_raises_diag "runs" is_invalid_model (fun () ->
      ignore (Montecarlo.lifetime_cdf ~runs:0 model ~times:[| 1. |]));
  check_raises_diag "time beyond horizon" is_invalid_model (fun () ->
      ignore (Montecarlo.lifetime_cdf ~horizon:10. model ~times:[| 20. |]))

(* --- Stochastic modified KiBaM ----------------------------------------- *)

let test_stochastic_kibam_matches_deterministic_on_average () =
  let base = Kibam.params ~capacity:7200. ~c:0.625 ~k:4.5e-5 in
  let p = Modified_kibam.params ~base ~gamma:2. in
  let profile = Load_profile.square_wave ~frequency:0.1 ~on_load:0.96 in
  let deterministic =
    match Modified_kibam.lifetime p profile with
    | Some t -> t
    | None -> Alcotest.fail "must deplete"
  in
  let mean, (lo, hi) =
    Stochastic_kibam.mean_lifetime ~runs:60 ~slot:0.25 p profile
  in
  check_true "mean close to deterministic"
    (Float.abs (mean -. deterministic) /. deterministic < 0.02);
  check_true "ci sane" (lo <= mean && mean <= hi)

let test_three_engines_agree () =
  (* The strongest cross-check in the suite: on the Fig. 7 scenario the
     exact occupation-time algorithm, the Monte-Carlo estimator and the
     (fine) Markovian approximation must agree pointwise. *)
  let workload = Onoff.model ~frequency:1. ~k:1 ~on_current:0.96 () in
  let battery = Kibam.params ~capacity:7200. ~c:1. ~k:0. in
  let model = Kibamrm.create ~workload ~battery in
  let times = [| 14000.; 14500.; 15000.; 15500.; 16000. |] in
  (* Engine 1: exact (occupation time). *)
  let m =
    Batlife_mrm.Mrm.create ~generator:workload.Model.generator
      ~rewards:(Array.init (Model.n_states workload) (Model.current workload))
      ~alpha:workload.Model.initial
  in
  let exact =
    Array.map (fun p -> 1. -. p)
      (Batlife_mrm.Occupation.two_valued_cdf m
         ~queries:(Array.map (fun t -> (t, 7200.)) times))
  in
  (* Engine 2: Monte Carlo (1000 runs; binomial error ~ 1.6% at 1 sd). *)
  let sim = Montecarlo.lifetime_cdf ~runs:1000 model ~times in
  Array.iteri
    (fun i p ->
      let sigma = sqrt (Float.max 1e-4 (p *. (1. -. p)) /. 1000.) in
      check_true
        (Printf.sprintf "sim vs exact at %g" times.(i))
        (Float.abs (sim.Montecarlo.cdf.(i) -. p) < 4. *. sigma +. 0.005))
    exact;
  (* Engine 3: Markovian approximation at a fine step; it is biased by
     the phase-type spread, so only a loose agreement is required, but
     it must bracket the exact curve's median crossing. *)
  let curve = Lifetime.cdf ~delta:5. ~times model in
  check_true "approximation near 1/2 at the exact median"
    (Float.abs (curve.Lifetime.probabilities.(2) -. exact.(2)) < 0.05)

let test_stochastic_kibam_validation () =
  let base = Kibam.params ~capacity:100. ~c:0.5 ~k:1e-3 in
  let p = Modified_kibam.params ~base ~gamma:1. in
  check_raises_diag "slot" is_invalid_model (fun () ->
      ignore
        (Stochastic_kibam.sample_lifetime ~slot:0. (Rng.create ()) p
           (Load_profile.constant 1.)))

let suite =
  [
    case "rng deterministic" test_rng_deterministic;
    case "rng seeds differ" test_rng_seeds_differ;
    case "rng copy and split" test_rng_copy_and_split;
    case "uniform moments" test_uniform_range_and_moments;
    case "exponential moments" test_exponential_moments;
    case "erlang moments" test_erlang_moments;
    case "discrete sampler" test_discrete_sampler;
    case "int_below" test_int_below;
    case "summarize" test_summarize;
    case "confidence intervals" test_confidence_intervals;
    case "ecdf" test_ecdf;
    case "ks distance" test_ks_distance;
    case "event queue ordering" test_event_queue_order;
    prop_event_queue_sorted;
    case "trajectory: deterministic workload"
      test_trajectory_deterministic_workload;
    case "trajectory: horizon" test_trajectory_horizon;
    case "trajectory: path events" test_trajectory_path_events;
    case "montecarlo reproducible" test_montecarlo_reproducible;
    slow_case "montecarlo mean near deterministic equivalent"
      test_montecarlo_mean_matches_deterministic_equivalent;
    case "montecarlo validation" test_montecarlo_validation;
    slow_case "stochastic modified KiBaM unbiased"
      test_stochastic_kibam_matches_deterministic_on_average;
    slow_case "three engines agree (fig 7 scenario)"
      test_three_engines_agree;
    case "stochastic modified KiBaM validation"
      test_stochastic_kibam_validation;
  ]
