open Batlife_numerics
open Helpers

let build_matrix entries ~rows ~cols =
  let b = Sparse.Builder.create ~rows ~cols () in
  List.iter (fun (i, j, v) -> Sparse.Builder.add b i j v) entries;
  Sparse.of_builder b

let test_builder_basics () =
  let b = Sparse.Builder.create ~rows:3 ~cols:3 () in
  Sparse.Builder.add b 0 0 1.;
  Sparse.Builder.add b 0 0 0.;
  (* Zeros ignored. *)
  check_int "nnz skips zero" 1 (Sparse.Builder.nnz b);
  check_int "rows" 3 (Sparse.Builder.rows b);
  check_raises_invalid "out of bounds" (fun () -> Sparse.Builder.add b 3 0 1.)

let test_duplicate_merge () =
  let m = build_matrix [ (1, 2, 1.5); (1, 2, 2.5); (0, 0, 1.) ] ~rows:3 ~cols:3 in
  check_int "nnz merged" 2 (Sparse.nnz m);
  check_float "summed" 4. (Sparse.get m 1 2)

let test_cancellation_dropped () =
  let m = build_matrix [ (0, 1, 2.); (0, 1, -2.) ] ~rows:2 ~cols:2 in
  check_int "exact cancellation removed" 0 (Sparse.nnz m)

let test_get () =
  let m = build_matrix [ (0, 2, 3.); (1, 0, -1.) ] ~rows:2 ~cols:3 in
  check_float "present" 3. (Sparse.get m 0 2);
  check_float "absent" 0. (Sparse.get m 0 1);
  check_raises_invalid "bounds" (fun () -> ignore (Sparse.get m 2 0))

let test_matvec_known () =
  let m = build_matrix [ (0, 0, 1.); (0, 1, 2.); (1, 1, 3.) ] ~rows:2 ~cols:2 in
  let y = Sparse.matvec m [| 1.; 10. |] in
  check_float "row 0" 21. y.(0);
  check_float "row 1" 30. y.(1)

let test_vecmat_known () =
  let m = build_matrix [ (0, 0, 1.); (0, 1, 2.); (1, 1, 3.) ] ~rows:2 ~cols:2 in
  let y = Sparse.vecmat [| 1.; 10. |] m in
  check_float "col 0" 1. y.(0);
  check_float "col 1" 32. y.(1)

let test_vecmat_acc () =
  let m = build_matrix [ (0, 1, 4.) ] ~rows:2 ~cols:2 in
  let dst = [| 1.; 1. |] in
  Sparse.vecmat_acc ~src:[| 2.; 0. |] m ~scale:0.5 ~dst;
  check_float "accumulated" 5. dst.(1);
  check_float "untouched" 1. dst.(0)

let test_row_sums_scale () =
  let m = build_matrix [ (0, 0, 1.); (0, 1, 2.); (1, 0, 5.) ] ~rows:2 ~cols:2 in
  let sums = Sparse.row_sums m in
  check_float "row 0" 3. sums.(0);
  check_float "row 1" 5. sums.(1);
  let doubled = Sparse.scale 2. m in
  check_float "scaled" 4. (Sparse.get doubled 0 1)

let test_transpose () =
  let m = build_matrix [ (0, 1, 2.); (1, 0, 3.) ] ~rows:2 ~cols:2 in
  let t = Sparse.transpose m in
  check_float "transposed 1 0" 2. (Sparse.get t 1 0);
  check_float "transposed 0 1" 3. (Sparse.get t 0 1)

let test_dense_roundtrip () =
  let d = Dense.of_arrays [| [| 1.; 0.; 2. |]; [| 0.; 0.; 3. |] |] in
  let m = Sparse.of_dense d in
  check_int "nnz" 3 (Sparse.nnz m);
  check_true "roundtrip" (Dense.approx_equal (Sparse.to_dense m) d)

let test_max_abs_diagonal () =
  let m =
    build_matrix [ (0, 0, -4.); (1, 1, 2.); (0, 1, 100.) ] ~rows:2 ~cols:2
  in
  check_float "max |diag|" 4. (Sparse.max_abs_diagonal m)

let random_sparse_arb =
  QCheck.(
    list_of_size (Gen.int_range 0 40)
      (triple (int_range 0 5) (int_range 0 5) (float_range (-10.) 10.)))

let prop_matvec_matches_dense =
  qcheck ~count:200 "sparse matvec = dense matvec"
    QCheck.(pair random_sparse_arb (float_array_arb 6))
    (fun (entries, x) ->
      let triples = List.map (fun (i, j, v) -> (i, j, v)) entries in
      let m = build_matrix triples ~rows:6 ~cols:6 in
      let d = Sparse.to_dense m in
      Vector.approx_equal ~tol:1e-9 (Sparse.matvec m x) (Dense.matvec d x))

let prop_vecmat_matches_dense =
  qcheck ~count:200 "sparse vecmat = dense vecmat"
    QCheck.(pair random_sparse_arb (float_array_arb 6))
    (fun (entries, x) ->
      let m = build_matrix entries ~rows:6 ~cols:6 in
      let d = Sparse.to_dense m in
      Vector.approx_equal ~tol:1e-9 (Sparse.vecmat x m) (Dense.vecmat x d))

let prop_transpose_involution =
  qcheck ~count:100 "transpose twice is identity" random_sparse_arb
    (fun entries ->
      let m = build_matrix entries ~rows:6 ~cols:6 in
      let tt = Sparse.transpose (Sparse.transpose m) in
      Dense.approx_equal (Sparse.to_dense m) (Sparse.to_dense tt))

(* The parallel uniformisation kernel rests on this exact identity:
   the gather product over the transpose must reproduce the scatter
   product over the original {e bitwise}, not approximately — the
   transpose lists every column's entries in ascending source-row
   order, which is precisely vecmat's summation order. *)
let prop_transposed_matvec_bitwise =
  qcheck ~count:300 "matvec over transpose = vecmat, bitwise"
    QCheck.(pair random_sparse_arb (float_array_arb 6))
    (fun (entries, x) ->
      let m = build_matrix entries ~rows:6 ~cols:6 in
      let scatter = Sparse.vecmat x m in
      let gather = Sparse.matvec (Sparse.transpose m) x in
      Array.for_all2
        (fun a b -> Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b))
        scatter gather)

let prop_of_dense_matches_builder =
  qcheck ~count:200 "of_dense = builder path" random_sparse_arb
    (fun entries ->
      let via_builder = build_matrix entries ~rows:6 ~cols:6 in
      let d = Dense.create ~rows:6 ~cols:6 in
      List.iter (fun (i, j, v) -> Dense.set d i j (Dense.get d i j +. v)) entries;
      let via_dense = Sparse.of_dense d in
      Sparse.nnz via_builder = Sparse.nnz via_dense
      && Dense.approx_equal ~tol:0.
           (Sparse.to_dense via_builder)
           (Sparse.to_dense via_dense))

let test_matvec_rows_range () =
  let m =
    build_matrix [ (0, 0, 1.); (1, 0, 2.); (2, 1, 3.) ] ~rows:3 ~cols:2
  in
  let dst = Fvec.of_array [| -1.; -1.; -1. |] in
  Sparse.matvec_rows m (Fvec.of_array [| 10.; 100. |]) ~dst ~lo:1 ~hi:2;
  check_float "outside range untouched (before)" (-1.) (Fvec.get dst 0);
  check_float "inside range written" 20. (Fvec.get dst 1);
  check_float "outside range untouched (after)" (-1.) (Fvec.get dst 2);
  check_raises_invalid "bad range" (fun () ->
      Sparse.matvec_rows m (Fvec.of_array [| 1.; 1. |]) ~dst ~lo:0 ~hi:4);
  check_raises_invalid "wrong x length" (fun () ->
      Sparse.matvec_rows m (Fvec.of_array [| 1. |]) ~dst ~lo:0 ~hi:3)

(* Every partition must tile [0, rows) exactly, whatever the shape. *)
let prop_partition_tiles =
  qcheck ~count:200 "nnz partition tiles the rows"
    QCheck.(pair random_sparse_arb (int_range 1 8))
    (fun (entries, parts) ->
      let m = build_matrix entries ~rows:6 ~cols:6 in
      let ranges = Sparse.nnz_balanced_partition m ~parts in
      Array.length ranges = parts
      && Array.for_all (fun (lo, hi) -> lo <= hi) ranges
      && fst ranges.(0) = 0
      && snd ranges.(parts - 1) = 6
      && Array.for_all
           (fun i -> snd ranges.(i) = fst ranges.(i + 1))
           (Array.init (parts - 1) (fun i -> i)))

let suite =
  [
    case "builder basics" test_builder_basics;
    case "duplicates merged" test_duplicate_merge;
    case "cancellation dropped" test_cancellation_dropped;
    case "get" test_get;
    case "matvec" test_matvec_known;
    case "vecmat" test_vecmat_known;
    case "vecmat_acc" test_vecmat_acc;
    case "row sums and scale" test_row_sums_scale;
    case "transpose" test_transpose;
    case "dense roundtrip" test_dense_roundtrip;
    case "max abs diagonal" test_max_abs_diagonal;
    case "matvec_rows range" test_matvec_rows_range;
    prop_matvec_matches_dense;
    prop_vecmat_matches_dense;
    prop_transpose_involution;
    prop_transposed_matvec_bitwise;
    prop_of_dense_matches_builder;
    prop_partition_tiles;
  ]
