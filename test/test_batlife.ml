(* Master test runner: one alcotest binary, one suite per module. *)

let () =
  Alcotest.run "batlife"
    [
      ("numerics: vector", Test_vector.suite);
      ("numerics: special functions", Test_special.suite);
      ("numerics: poisson weights", Test_poisson.suite);
      ("numerics: root finding", Test_roots.suite);
      ("numerics: dense matrices", Test_dense.suite);
      ("numerics: sparse matrices", Test_sparse.suite);
      ("numerics: domain pool", Test_pool.suite);
      ("numerics: telemetry", Test_telemetry.suite);
      ("numerics: ode solvers", Test_ode.suite);
      ("numerics: interpolation & quadrature", Test_interp_quadrature.suite);
      ("ctmc: generators", Test_generator.suite);
      ("ctmc: transient analysis", Test_transient.suite);
      ("ctmc: adaptive-support kernel", Test_kernel.suite);
      ("ctmc: steady state", Test_steady.suite);
      ("ctmc: phase-type distributions", Test_phase_type.suite);
      ("ctmc: reachability", Test_reachability.suite);
      ("mrm: reward models", Test_mrm.suite);
      ("battery: kibam", Test_kibam.suite);
      ("battery: models & profiles", Test_battery_misc.suite);
      ("battery: rakhmatov-vrudhula", Test_rakhmatov.suite);
      ("workload: models", Test_workload.suite);
      ("workload: trace-driven", Test_trace.suite);
      ("core: kibamrm & discretisation", Test_core.suite);
      ("core: convergence analysis", Test_analysis.suite);
      ("numerics: iterative solvers & exact means", Test_iterative.suite);
      ("sim: rng, stats, monte carlo", Test_sim.suite);
      ("scheduling: multi-battery packs", Test_scheduling.suite);
      ("output: series, csv, tables", Test_output.suite);
      ("experiments: paper reproduction", Test_experiments.suite);
      ("robust: guardrails & fault injection", Test_robust.suite);
      ("core: batched evaluation engine", Test_engine.suite);
      ("resilience: budgets, checkpoints, retries", Test_resilience.suite);
      ("chaos: fault injection & recovery", Test_chaos.suite);
      ("service: query API, cache, server", Test_service.suite);
      ("service: observability plane", Test_obs.suite);
    ]
