open Batlife_output
open Helpers

let sample_series () =
  Series.create ~name:"cdf" ~xs:[| 0.; 1.; 2. |] ~ys:[| 0.; 0.5; 1. |]

let test_series_basics () =
  let s = sample_series () in
  Alcotest.(check string) "name" "cdf" (Series.name s);
  check_int "length" 3 (Series.length s);
  let lo, hi = Series.x_range s in
  check_float "x lo" 0. lo;
  check_float "x hi" 2. hi;
  let lo, hi = Series.y_range s in
  check_float "y lo" 0. lo;
  check_float "y hi" 1. hi;
  check_raises_diag "length mismatch" is_invalid_model (fun () ->
      ignore (Series.create ~name:"bad" ~xs:[| 1. |] ~ys:[||]))

let test_series_map_rename () =
  let s = Series.map_y (fun y -> 1. -. y) (sample_series ()) in
  check_float "mapped" 1. (Series.ys s).(0);
  Alcotest.(check string) "renamed" "survival"
    (Series.name (Series.rename "survival" s))

let test_series_of_pairs () =
  let s = Series.of_pairs ~name:"p" [| (1., 10.); (2., 20.) |] in
  check_float "x" 2. (Series.xs s).(1);
  check_float "y" 20. (Series.ys s).(1)

let with_temp_file f =
  let path = Filename.temp_file "batlife_test" ".out" in
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_write_csv () =
  with_temp_file (fun path ->
      Csv.write_csv ~path [ sample_series () ];
      let content = read_file path in
      check_true "header" (String.length content > 0);
      let lines = String.split_on_char '\n' content in
      Alcotest.(check string) "header line" "x,cdf" (List.hd lines);
      check_int "rows" 4 (List.length (List.filter (fun l -> l <> "") lines)))

let test_write_csv_merges_x () =
  with_temp_file (fun path ->
      let a = Series.create ~name:"a" ~xs:[| 0.; 1. |] ~ys:[| 1.; 2. |] in
      let b = Series.create ~name:"b" ~xs:[| 1.; 2. |] ~ys:[| 5.; 6. |] in
      Csv.write_csv ~path [ a; b ];
      let content = read_file path in
      let lines =
        List.filter (fun l -> l <> "") (String.split_on_char '\n' content)
      in
      (* header + union of {0, 1, 2} *)
      check_int "merged rows" 4 (List.length lines);
      check_true "blank cell present"
        (List.exists (fun l -> String.length l > 2 && l.[0] = '2') lines))

let test_write_dat () =
  with_temp_file (fun path ->
      Csv.write_dat ~path [ sample_series (); sample_series () ];
      let content = read_file path in
      (* Two blocks, each with a comment header. *)
      let comments =
        List.filter
          (fun l -> String.length l > 0 && l.[0] = '#')
          (String.split_on_char '\n' content)
      in
      check_int "two headers" 2 (List.length comments))

let contains_substring haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let test_write_gnuplot () =
  with_temp_file (fun path ->
      Csv.write_gnuplot_script ~path ~data_file:"fig.dat" ~title:"t"
        ~xlabel:"x" ~ylabel:"y"
        [ sample_series () ];
      let content = read_file path in
      check_true "mentions data file" (contains_substring content "fig.dat");
      check_true "mentions series name" (contains_substring content "cdf"))

let test_csv_escaping () =
  with_temp_file (fun path ->
      let tricky =
        Series.create ~name:"C=800, c=1, \"exact\"" ~xs:[| 1. |] ~ys:[| 2. |]
      in
      Csv.write_csv ~path [ tricky ];
      let content = read_file path in
      let header = List.hd (String.split_on_char '\n' content) in
      (* The comma-bearing name must be quoted, embedded quotes
         doubled. *)
      Alcotest.(check string)
        "quoted header" "x,\"C=800, c=1, \"\"exact\"\"\"" header)

let test_table_render () =
  let out =
    Table.render ~header:[ "name"; "value" ]
      [ [ "alpha"; "1.0" ]; [ "beta"; "22.5" ] ]
  in
  let lines = String.split_on_char '\n' out in
  check_true "has rows" (List.length lines >= 4);
  (* All non-empty lines share the same width. *)
  let widths =
    List.filter_map
      (fun l -> if l = "" then None else Some (String.length l))
      lines
  in
  check_true "aligned" (List.for_all (fun w -> w = List.hd widths) widths)

let test_table_cells () =
  Alcotest.(check string) "float cell" "1.5" (Table.float_cell 1.5);
  Alcotest.(check string) "nan cell" "-" (Table.float_cell Float.nan);
  Alcotest.(check string) "decimals" "1.50"
    (Table.float_cell ~decimals:2 1.5)

let test_table_validation () =
  check_raises_diag "align mismatch" is_invalid_model (fun () ->
      ignore (Table.render ~align:[ Table.Left ] ~header:[ "a"; "b" ] []))

let test_ascii_plot () =
  let rendered =
    Ascii_plot.render ~width:40 ~height:10 [ sample_series () ]
  in
  check_true "non-empty" (String.length rendered > 100);
  check_true "contains glyph" (String.contains rendered '*');
  check_true "legend" (String.length rendered > 0);
  check_raises_diag "no series" is_invalid_model (fun () ->
      ignore (Ascii_plot.render []))

let suite =
  [
    case "series basics" test_series_basics;
    case "series map and rename" test_series_map_rename;
    case "series of pairs" test_series_of_pairs;
    case "write csv" test_write_csv;
    case "csv merges abscissae" test_write_csv_merges_x;
    case "write dat blocks" test_write_dat;
    case "write gnuplot script" test_write_gnuplot;
    case "csv escaping" test_csv_escaping;
    case "table render" test_table_render;
    case "table cells" test_table_cells;
    case "table validation" test_table_validation;
    case "ascii plot" test_ascii_plot;
  ]
