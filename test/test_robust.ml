(* Guardrail layer: validation reports, fault injection, fallback
   chains.  Every guard added by the robustness pass is driven to
   actually trip here — a guard that never fires in tests is a guard
   that may silently not exist. *)

open Helpers
open Batlife_numerics
open Batlife_ctmc
open Batlife_workload
open Batlife_core
module Error = Batlife_robust.Error
module Validate = Batlife_robust.Validate
module Fault = Batlife_robust.Fault

let contains haystack needle =
  let h = String.length haystack and n = String.length needle in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let check_error name classify f =
  match f () with
  | exception Diag.Error e ->
      if not (classify e) then
        Alcotest.failf "%s: wrong error class: %s" name
          (Diag.error_to_string e)
  | _ -> Alcotest.failf "%s: expected Diag.Error" name

let is_invalid_model = function Diag.Invalid_model _ -> true | _ -> false

let is_breakdown = function Diag.Numerical_breakdown _ -> true | _ -> false

let is_budget = function Diag.Budget_exhausted _ -> true | _ -> false

(* A small irreducible 3-state chain used by the sweep tests. *)
let three_state () =
  Generator.of_rates ~n:3 [ (0, 1, 1.0); (1, 2, 0.5); (2, 0, 0.25) ]

let alpha3 = [| 1.; 0.; 0. |]

(* ------------------------------------------------------------------ *)
(* Validation reports                                                  *)

let test_kibam_collects_all () =
  let report = Validate.kibam ~capacity:0. ~c:1.5 ~k:(-1.) () in
  check_int "all three violations reported" 3 (List.length report);
  check_int "valid params: empty report" 0
    (List.length (Validate.kibam ~capacity:7200. ~c:0.625 ~k:4.5e-5 ()));
  check_error "run raises Invalid_model" is_invalid_model (fun () ->
      Validate.run ~what:"KiBaM parameters" report)

let test_kibam_pedantic () =
  check_int "k = 0 with c < 1 flagged" 1
    (List.length (Validate.kibam_pedantic ~capacity:1. ~c:0.625 ~k:0. ()));
  check_int "ideal battery (c = 1, k = 0) is fine" 0
    (List.length (Validate.kibam_pedantic ~capacity:1. ~c:1. ~k:0. ()));
  check_int "true KiBaM is fine" 0
    (List.length (Validate.kibam_pedantic ~capacity:1. ~c:0.625 ~k:4.5e-5 ()))

let test_generator_report () =
  let g = three_state () in
  check_int "constructed generator is clean" 0
    (List.length (Validate.generator g));
  Fault.corrupt_row_sum g ~row:0 ~amount:0.5;
  let report = Validate.generator g in
  check_true "corrupted row sum detected" (List.length report > 0);
  check_true "report names the row"
    (List.exists (fun v -> contains (Validate.message v) "row 0") report)

let test_probability_vector () =
  check_int "valid distribution" 0
    (List.length (Validate.probability_vector [| 0.5; 0.5 |]));
  check_true "bad sum detected"
    (List.length (Validate.probability_vector [| 0.5; 0.6 |]) > 0);
  check_true "NaN entry detected"
    (List.length (Validate.probability_vector [| Float.nan; 1. |]) > 0);
  check_true "negative entry detected"
    (List.length (Validate.probability_vector [| -0.1; 1.1 |]) > 0)

let test_uniformisation_q () =
  let g = three_state () in
  check_true "q below max exit rate rejected"
    (List.length (Validate.uniformisation_q g 0.5) > 0);
  check_int "admissible q accepted" 0
    (List.length (Validate.uniformisation_q g 2.))

(* ------------------------------------------------------------------ *)
(* In-flight sweep guards (fault injection)                            *)

let test_mass_guard_trips () =
  let g = three_state () in
  Fault.corrupt_row_sum g ~row:0 ~amount:0.5;
  check_error "mass drift detected" is_breakdown (fun () ->
      ignore
        (Transient.measure_sweep g ~alpha:alpha3 ~times:[| 50. |]
           ~measure:(fun v -> Fvec.get v 2)))

let test_nan_measure_guard () =
  let g = three_state () in
  let measure = Fault.nan_measure_after ~calls:5 (fun v -> Fvec.get v 2) in
  check_error "NaN measure detected" is_breakdown (fun () ->
      ignore (Transient.measure_sweep g ~alpha:alpha3 ~times:[| 50. |] ~measure))

let test_nan_in_generator () =
  let g = three_state () in
  (* Index 1 is the off-diagonal (0, 1) entry: exit rates stay finite,
     so the sweep starts and the in-flight guard must catch the NaN. *)
  Fault.inject_nan (Generator.matrix g).Sparse.values ~index:1;
  check_error "non-finite iterate detected" is_breakdown (fun () ->
      ignore
        (Transient.measure_sweep g ~alpha:alpha3 ~times:[| 50. |]
           ~measure:(fun v -> Fvec.get v 2)));
  (* A NaN diagonal is caught before the sweep would hang in the
     Poisson truncation. *)
  let g2 = three_state () in
  Fault.inject_nan (Generator.matrix g2).Sparse.values ~index:0;
  check_error "NaN exit rate rejected up front" is_invalid_model (fun () ->
      ignore (Transient.solve g2 ~alpha:alpha3 ~t:1.))

let test_q_override_rejected () =
  let g = three_state () in
  let with_q q = Batlife_ctmc.Solver_opts.make ~unif_rate:q () in
  check_error "solve rejects low q" is_invalid_model (fun () ->
      ignore (Transient.solve ~opts:(with_q 0.5) g ~alpha:alpha3 ~t:1.));
  check_error "measure_sweep rejects low q" is_invalid_model (fun () ->
      ignore
        (Transient.measure_sweep ~opts:(with_q 0.5) g ~alpha:alpha3
           ~times:[| 1. |]
           ~measure:(fun v -> Fvec.get v 2)));
  check_error "negative q rejected" is_invalid_model (fun () ->
      ignore (Transient.solve ~opts:(with_q (-1.)) g ~alpha:alpha3 ~t:1.));
  check_error "session create rejects low q" is_invalid_model (fun () ->
      let d =
        Discretized.build ~delta:1000.
          (Kibamrm.create
             ~workload:(Onoff.model ~frequency:1.0 ~k:1 ~on_current:0.96 ())
             ~battery:
               (Batlife_battery.Kibam.params ~capacity:7200. ~c:1. ~k:0.))
      in
      ignore (Discretized.Session.create ~opts:(with_q 1e-9) d))

let test_sanitize_guard () =
  check_error "genuine CDF decrease detected" is_breakdown (fun () ->
      Lifetime.sanitize [| 0.; 1. |] [| 0.5; 0.3 |]);
  check_error "NaN CDF value detected" is_breakdown (fun () ->
      Lifetime.sanitize [| 0.; 1. |] [| 0.1; Float.nan |]);
  check_error "out-of-range CDF value detected" is_breakdown (fun () ->
      Lifetime.sanitize [| 0.; 1. |] [| 0.1; 1.5 |]);
  (* Noise-level violations are repaired, not reported. *)
  let noisy = [| 0.5; 0.5 -. 1e-9; 1. +. 1e-9 |] in
  Lifetime.sanitize [| 0.; 1.; 2. |] noisy;
  check_float "noise monotonised" 0.5 noisy.(1);
  check_float "noise clamped" 1. noisy.(2)

(* ------------------------------------------------------------------ *)
(* Solver fallback chains                                              *)

(* Strongly diagonally dominant tridiagonal system: both solvers
   converge given enough sweeps, so starving Gauss-Seidel's budget
   forces the chain over to Jacobi. *)
let tridiagonal n =
  let b = Sparse.Builder.create ~rows:n ~cols:n () in
  for i = 0 to n - 1 do
    Sparse.Builder.add b i i 10.;
    if i > 0 then Sparse.Builder.add b i (i - 1) (-1.);
    if i < n - 1 then Sparse.Builder.add b i (i + 1) (-1.)
  done;
  Sparse.of_builder b

let test_solve_robust_fallback () =
  Diag.clear_events ();
  let n = 20 in
  let a = tridiagonal n in
  let b = Array.make n 1. in
  let robust = Iterative.solve_robust ~max_iter:2 a ~b in
  check_true "fallback path taken" (robust.Iterative.path = Iterative.Fallback);
  Alcotest.(check string) "jacobi produced the result" "jacobi"
    robust.Iterative.solver;
  check_true "fallback converged"
    (robust.Iterative.result.Iterative.residual <= 1e-10);
  let x = robust.Iterative.result.Iterative.solution in
  let r = Sparse.matvec a x in
  Array.iteri
    (fun i ri -> check_float ~eps:1e-8 "residual row" b.(i) ri)
    r;
  check_true "fallback event recorded"
    (List.exists
       (fun (e : Diag.event) -> e.Diag.fallback)
       (Diag.events ()));
  Diag.clear_events ()

let test_solve_robust_primary () =
  Diag.clear_events ();
  let a = tridiagonal 20 in
  let robust = Iterative.solve_robust a ~b:(Array.make 20 1.) in
  check_true "primary path on an easy system"
    (robust.Iterative.path = Iterative.Primary);
  check_int "no events recorded" 0 (List.length (Diag.events ()))

let test_solve_robust_exhausted () =
  Diag.clear_events ();
  let a = tridiagonal 20 in
  let b = Array.make 20 1. in
  (match
     Iterative.solve_robust ~max_iter:1 ~fallback_factor:1 a ~b
   with
  | exception Diag.Error (Diag.Nonconvergence { attempted; _ }) ->
      Alcotest.(check (list string))
        "attempted chain recorded"
        [ "gauss-seidel"; "jacobi" ]
        attempted
  | exception Diag.Error e ->
      Alcotest.failf "wrong error class: %s" (Diag.error_to_string e)
  | _ -> Alcotest.fail "expected Nonconvergence");
  Diag.clear_events ()

(* ------------------------------------------------------------------ *)
(* ODE guards and fallback                                             *)

let decay _ y = [| -.y.(0) |]

let test_ode_step_collapse () =
  (* A floor above the controller's working step makes the very first
     step look collapsed. *)
  check_error "step collapse detected" is_breakdown (fun () ->
      ignore (Ode.rkf45 ~min_step:0.5 decay ~t0:0. ~t1:1. ~y0:[| 1. |]))

let test_ode_budget () =
  check_error "step budget detected" is_budget (fun () ->
      ignore (Ode.rkf45 ~max_steps:2 decay ~t0:0. ~t1:1000. ~y0:[| 1. |]))

let test_ode_fallback_recovers () =
  Diag.clear_events ();
  let result, path =
    Ode.rkf45_robust ~min_step:0.5 decay ~t0:0. ~t1:1. ~y0:[| 1. |]
  in
  check_true "fixed-step fallback taken" (path = Ode.Fixed_step_fallback);
  check_close ~rel:1e-6 "fallback recovers exp(-1)" (Float.exp (-1.))
    result.Ode.y.(0);
  check_true "fallback event recorded"
    (List.exists (fun (e : Diag.event) -> e.Diag.fallback) (Diag.events ()));
  Diag.clear_events ()

(* ------------------------------------------------------------------ *)
(* Parse errors and the Error module                                   *)

let test_trace_parse_context () =
  (match Trace.parse_csv_exn ~source:"test.csv" "0,1\n2,frog\n" with
  | exception Diag.Error (Diag.Parse_error { source; line; field; _ }) ->
      Alcotest.(check string) "source" "test.csv" source;
      check_int "line number" 2 line;
      Alcotest.(check (option string)) "field" (Some "current") field
  | _ -> Alcotest.fail "expected Parse_error");
  (match Trace.parse_csv_exn "0,1\n1,2,3\n" with
  | exception Diag.Error (Diag.Parse_error { line; field; _ }) ->
      check_int "field-count error line" 2 line;
      Alcotest.(check (option string)) "no single field" None field
  | _ -> Alcotest.fail "expected Parse_error")

let test_trace_of_samples_raises () =
  check_raises_invalid "of_samples validates" (fun () ->
      ignore (Trace.of_samples [ { Trace.time = 0.; current = 1. } ]))

let test_sample_violations () =
  let bad =
    [
      { Trace.time = 1.; current = -2. };
      { Trace.time = 0.5; current = 1. };
    ]
  in
  let report = Trace.sample_violations bad in
  check_int "both problems reported" 2 (List.length report)

let test_error_protect () =
  (match Error.protect (fun () -> 42) with
  | Ok v -> check_int "protect passes values through" 42 v
  | Error e -> Alcotest.failf "unexpected error: %s" (Error.to_string e));
  (match Error.protect (fun () -> invalid_arg "boom") with
  | Error (Error.Invalid_model _) -> ()
  | _ -> Alcotest.fail "Invalid_argument should classify as Invalid_model");
  (match
     Error.protect (fun () ->
         raise
           (Iterative.Did_not_converge
              { Iterative.solution = [||]; iterations = 7; residual = 1. }))
   with
  | Error (Error.Nonconvergence { iterations; _ }) ->
      check_int "iterations" 7 iterations
  | _ -> Alcotest.fail "Did_not_converge should classify as Nonconvergence");
  check_true "unclassifiable exceptions re-raise"
    (match Error.protect (fun () -> raise Exit) with
    | exception Exit -> true
    | _ -> false)

let test_exit_codes_distinct () =
  let codes =
    List.map Error.exit_code
      [
        Error.Invalid_model { what = ""; violations = [] };
        Error.Parse_error { source = ""; line = 0; field = None; message = "" };
        Error.Nonconvergence
          {
            algorithm = "";
            iterations = 0;
            residual = 0.;
            tolerance = 0.;
            attempted = [];
          };
        Error.Numerical_breakdown { where = ""; detail = "" };
        Error.Budget_exhausted { what = ""; budget = 0 };
      ]
  in
  check_int "five distinct nonzero codes" 5
    (List.length (List.sort_uniq compare codes));
  List.iter (fun c -> check_true "nonzero" (c <> 0 && c <> 124)) codes

let suite =
  [
    case "kibam report collects all violations" test_kibam_collects_all;
    case "kibam pedantic findings" test_kibam_pedantic;
    case "generator report (corrupted row sum)" test_generator_report;
    case "probability vector report" test_probability_vector;
    case "uniformisation q report" test_uniformisation_q;
    case "mass-conservation guard trips" test_mass_guard_trips;
    case "NaN-measure guard trips" test_nan_measure_guard;
    case "NaN in generator caught in flight" test_nan_in_generator;
    case "low q override rejected" test_q_override_rejected;
    case "CDF sanitize guard" test_sanitize_guard;
    case "solve_robust falls back to jacobi" test_solve_robust_fallback;
    case "solve_robust primary path" test_solve_robust_primary;
    case "solve_robust chain exhausted" test_solve_robust_exhausted;
    case "rkf45 step collapse" test_ode_step_collapse;
    case "rkf45 budget exhausted" test_ode_budget;
    case "rkf45_robust fixed-step fallback" test_ode_fallback_recovers;
    case "trace parse error context" test_trace_parse_context;
    case "trace of_samples validates" test_trace_of_samples_raises;
    case "trace sample violations" test_sample_violations;
    case "Error.protect classification" test_error_protect;
    case "exit codes distinct" test_exit_codes_distinct;
  ]
