(* The batched evaluation engine: session queries must agree with an
   independent per-call reference to near machine precision, batching must
   actually batch (one sweep for any number of queries), and
   multi_measure_sweep must equal N independent measure_sweep calls on
   arbitrary generators. *)

open Helpers
open Batlife_numerics
open Batlife_ctmc
open Batlife_battery
open Batlife_workload
open Batlife_core

(* Work accounting now lives in the Telemetry registry; these counters
   are always on, so tests can assert on sweep counts without enabling
   the (span/histogram) collector. *)
let c_sweeps = Telemetry.counter "transient.sweeps"

let reset_sweeps () = Telemetry.reset_counter c_sweeps
let sweeps_done () = Telemetry.value c_sweeps

(* The fig-7 configuration: on/off workload, degenerate single-well
   battery (c = 1, k = 0). *)
let fig7_model () =
  Kibamrm.create
    ~workload:(Onoff.model ~frequency:1.0 ~k:1 ~on_current:0.96 ())
    ~battery:(Kibam.params ~capacity:7200. ~c:1. ~k:0.)

(* The fig-2 battery (two wells, c = 0.625, k = 4.5e-5) under the same
   on/off workload. *)
let fig2_battery_model () =
  Kibamrm.create
    ~workload:(Onoff.model ~frequency:1.0 ~k:1 ~on_current:0.96 ())
    ~battery:(Kibam.params ~capacity:7200. ~c:0.625 ~k:4.5e-5)

(* An independent reference implementation of the per-time measures,
   straight off the full transient distribution (one whole solve per
   call).  The session's batched functionals must reproduce it. *)
module Reference = struct
  let level_charge grid j1 =
    if j1 = 0 then 0. else Grid.level_value grid (j1 - 1)

  let charge_marginal d ~time =
    let pi = Discretized.state_distribution d ~time in
    let grid = d.Discretized.grid in
    Array.init grid.Grid.levels1 (fun j1 ->
        let acc = ref 0. in
        for j2 = 0 to grid.Grid.levels2 - 1 do
          for i = 0 to grid.Grid.n_workload - 1 do
            acc := !acc +. pi.(Grid.index grid ~state:i ~j1 ~j2)
          done
        done;
        (level_charge grid j1, !acc))

  let mode_marginal d ~time =
    let pi = Discretized.state_distribution d ~time in
    let grid = d.Discretized.grid in
    let result = Array.make grid.Grid.n_workload 0. in
    for j1 = 0 to grid.Grid.levels1 - 1 do
      for j2 = 0 to grid.Grid.levels2 - 1 do
        for i = 0 to grid.Grid.n_workload - 1 do
          result.(i) <- result.(i) +. pi.(Grid.index grid ~state:i ~j1 ~j2)
        done
      done
    done;
    result

  let expected_charge d ~time =
    Array.fold_left
      (fun acc (charge, p) -> acc +. (charge *. p))
      0. (charge_marginal d ~time)

  let joint d ~time ~mode ~min_charge =
    let pi = Discretized.state_distribution d ~time in
    let grid = d.Discretized.grid in
    let acc = ref 0. in
    for j1 = 1 to grid.Grid.levels1 - 1 do
      if Grid.level_value grid (j1 - 1) >= min_charge then
        for j2 = 0 to grid.Grid.levels2 - 1 do
          acc := !acc +. pi.(Grid.index grid ~state:mode ~j1 ~j2)
        done
    done;
    !acc
end

let check_session_matches_legacy ~delta model =
  let d = Discretized.build ~delta model in
  let times = [| 2000.; 5000.; 10000.; 15000. |] in
  let time = 10000. in
  (* Reference per-call answers (one whole solve each). *)
  let legacy_cdf, _ = Discretized.empty_probability d ~times in
  let legacy_marginal = Reference.charge_marginal d ~time in
  let legacy_modes = Reference.mode_marginal d ~time in
  let legacy_expected = Reference.expected_charge d ~time in
  let legacy_joint = Reference.joint d ~time ~mode:0 ~min_charge:2000. in
  (* The same queries, one session, one sweep. *)
  let s = Discretized.Session.create d in
  let cdf_q = Discretized.Session.empty_probability s ~times in
  let marginal_q = Discretized.Session.available_charge_marginal s ~time in
  let modes_q = Discretized.Session.mode_marginal s ~time in
  let expected_q = Discretized.Session.expected_available_charge s ~time in
  let joint_q =
    Discretized.Session.joint_probability s ~time ~mode:0 ~min_charge:2000.
  in
  reset_sweeps ();
  let stats = Discretized.Session.run s in
  check_int "whole batch = one sweep" 1 (sweeps_done ());
  check_true "sweep did work" (stats.Transient.iterations > 0);
  let cdf = Discretized.Session.get cdf_q in
  Array.iteri
    (fun i t ->
      check_float ~eps:1e-12 (Printf.sprintf "cdf at t=%g" t) legacy_cdf.(i)
        cdf.(i))
    times;
  let marginal = Discretized.Session.get marginal_q in
  check_int "marginal length" (Array.length legacy_marginal)
    (Array.length marginal);
  Array.iteri
    (fun j1 (charge, p) ->
      let charge', p' = marginal.(j1) in
      check_float ~eps:0. (Printf.sprintf "level %d charge" j1) charge charge';
      check_float ~eps:1e-12 (Printf.sprintf "level %d mass" j1) p p')
    legacy_marginal;
  let modes = Discretized.Session.get modes_q in
  Array.iteri
    (fun i p ->
      check_float ~eps:1e-12 (Printf.sprintf "mode %d" i) p modes.(i))
    legacy_modes;
  check_close ~rel:1e-12 "expected charge" legacy_expected
    (Discretized.Session.get expected_q);
  check_float ~eps:1e-12 "joint probability" legacy_joint
    (Discretized.Session.get joint_q)

let test_session_matches_legacy_fig7 () =
  check_session_matches_legacy ~delta:100. (fig7_model ())

let test_session_matches_legacy_fig2_battery () =
  check_session_matches_legacy ~delta:200. (fig2_battery_model ())

(* The headline acceptance property: on a fig-7-sized model, the CDF
   plus all four per-time measures over a shared grid cost exactly ONE
   sweep, against five for the per-call path. *)
let test_one_sweep_for_five_queries () =
  let d = Discretized.build ~delta:25. (fig7_model ()) in
  let times = Array.init 10 (fun i -> 2000. *. float_of_int (i + 1)) in
  let time = times.(5) in
  reset_sweeps ();
  let s = Discretized.Session.create d in
  let cdf_q = Discretized.Session.empty_probability s ~times in
  let _m1 = Discretized.Session.available_charge_marginal s ~time in
  let _m2 = Discretized.Session.mode_marginal s ~time in
  let _m3 = Discretized.Session.expected_available_charge s ~time in
  let _m4 =
    Discretized.Session.joint_probability s ~time ~mode:1 ~min_charge:1000.
  in
  let cdf = Discretized.Session.get cdf_q in
  check_int "exactly one sweep" 1 (sweeps_done ());
  check_int "session agrees" 1 (Discretized.Session.sweeps s);
  check_true "CDF nontrivial" (cdf.(Array.length cdf - 1) > 0.5);
  (* A second batch on the same session reuses the cached windows. *)
  let windows_before = Discretized.Session.cached_windows s in
  let again = Discretized.Session.empty_probability s ~times in
  ignore (Discretized.Session.get again : float array);
  check_int "windows cached across flushes" windows_before
    (Discretized.Session.cached_windows s);
  check_int "second flush = second sweep" 2 (sweeps_done ())

(* The session cache counters must expose what the engine actually
   reused: the first flush misses every Fox-Glynn window and builds
   the kernel once; a second flush over the same grid hits every
   window and rebuilds nothing. *)
let test_session_cache_counters () =
  let c_hits = Telemetry.counter "session.window_hits"
  and c_misses = Telemetry.counter "session.window_misses"
  and c_kernels = Telemetry.counter "session.kernel_builds"
  and c_flushes = Telemetry.counter "session.flushes" in
  List.iter Telemetry.reset_counter [ c_hits; c_misses; c_kernels; c_flushes ];
  let d = Discretized.build ~delta:100. (fig7_model ()) in
  let s = Discretized.Session.create d in
  let times = [| 3000.; 6000.; 9000. |] in
  let q1 = Discretized.Session.empty_probability s ~times in
  ignore (Discretized.Session.get q1 : float array);
  check_int "first flush misses every window" (Array.length times)
    (Telemetry.value c_misses);
  check_int "no hits yet" 0 (Telemetry.value c_hits);
  check_int "first flush builds the kernel once" 1 (Telemetry.value c_kernels);
  check_int "one flush so far" 1 (Telemetry.value c_flushes);
  let q2 = Discretized.Session.empty_probability s ~times in
  ignore (Discretized.Session.get q2 : float array);
  check_int "second flush with the same grid = 0 kernel rebuilds" 1
    (Telemetry.value c_kernels);
  check_int "second flush hits every window" (Array.length times)
    (Telemetry.value c_hits);
  check_int "no new misses" (Array.length times) (Telemetry.value c_misses);
  check_int "two flushes" 2 (Telemetry.value c_flushes)

(* Lifetime.cdf_discretized rides the same engine and must agree with
   the one-shot Lifetime.cdf. *)
let test_lifetime_cdf_discretized_matches () =
  let model = fig7_model () in
  let times = Array.init 20 (fun i -> 1000. *. float_of_int (i + 1)) in
  let delta = 50. in
  let via_model = Lifetime.cdf ~delta ~times model in
  let d = Discretized.build ~delta model in
  let via_prebuilt = Lifetime.cdf_discretized ~delta d ~times in
  Array.iteri
    (fun i t ->
      check_float ~eps:1e-14
        (Printf.sprintf "t=%g" t)
        via_model.Lifetime.probabilities.(i)
        via_prebuilt.Lifetime.probabilities.(i))
    times;
  check_int "states agree" via_model.Lifetime.states
    via_prebuilt.Lifetime.states

(* Random-generator property: batching k functionals is exactly k
   independent sweeps' worth of answers. *)
let prop_multi_equals_singles =
  qcheck ~count:100 "multi_measure_sweep = N independent measure_sweeps"
    QCheck.(
      triple
        (list_of_size (Gen.int_range 2 10)
           (triple (int_range 0 3) (int_range 0 3) (float_range 0.05 4.)))
        (list_of_size (Gen.int_range 1 4) (pos_float_arb 0.01 5.))
        (int_range 1 3))
    (fun (entries, times_list, k) ->
      let rates =
        List.filter_map
          (fun (i, j, r) -> if i <> j then Some (i, j, r) else None)
          entries
      in
      let g = Generator.of_rates ~n:4 rates in
      let alpha = [| 0.4; 0.3; 0.2; 0.1 |] in
      let times = Array.of_list times_list in
      let measures =
        Array.init k (fun j ->
            fun (pi : Batlife_numerics.Fvec.t) -> Batlife_numerics.Fvec.get pi j)
      in
      let batched, _ = Transient.multi_measure_sweep g ~alpha ~times ~measures in
      Array.for_all Fun.id
        (Array.mapi
           (fun j measure ->
             let single, _ = Transient.measure_sweep g ~alpha ~times ~measure in
             Array.for_all Fun.id
               (Array.mapi
                  (fun i v -> Float.abs (v -. single.(i)) <= 1e-12)
                  batched.(j)))
           measures))

(* The escape-hatch measure query composes with the built-ins on one
   grid union. *)
let test_custom_measure_query () =
  let d = Discretized.build ~delta:100. (fig7_model ()) in
  let s = Discretized.Session.create d in
  let times = [| 3000.; 9000. |] in
  let total_q =
    Discretized.Session.measure s ~times ~measure:Batlife_numerics.Fvec.sum
  in
  let cdf_q = Discretized.Session.empty_probability s ~times:[| 9000. |] in
  let total = Discretized.Session.get total_q in
  Array.iter (fun m -> check_float ~eps:1e-9 "mass conserved" 1. m) total;
  let cdf = Discretized.Session.get cdf_q in
  check_int "one sweep despite different grids" 1
    (Discretized.Session.sweeps s);
  check_true "cdf in range" (cdf.(0) >= 0. && cdf.(0) <= 1.)

(* The multicore contract: the gather kernel owns each output entry on
   exactly one domain and sums it in a fixed order, so the job count
   must not change a single bit of any result — not "close", equal. *)
let curve_bits (c : Lifetime.curve) =
  Array.map Int64.bits_of_float c.Lifetime.probabilities

let check_jobs_identical ~delta model =
  let times = [| 4000.; 8000.; 12000. |] in
  let solve jobs =
    Lifetime.cdf ~opts:(Solver_opts.make ~jobs ()) ~delta ~times model
  in
  let reference = curve_bits (solve 1) in
  List.iter
    (fun jobs ->
      let bits = curve_bits (solve jobs) in
      check_true
        (Printf.sprintf "jobs=%d CDF bitwise equal to jobs=1" jobs)
        (bits = reference))
    [ 2; 4 ]

let test_jobs_identical_fig7 () = check_jobs_identical ~delta:100. (fig7_model ())

let test_jobs_identical_fig2_battery () =
  check_jobs_identical ~delta:200. (fig2_battery_model ())

(* Same for a full session batch (CDF plus marginals) — the session
   caches the kernel, so this also covers the cached path. *)
let test_jobs_identical_session () =
  let batch jobs =
    let d = Discretized.build ~delta:200. (fig2_battery_model ()) in
    let s =
      Discretized.Session.create ~opts:(Solver_opts.make ~jobs ()) d
    in
    let cdf =
      Discretized.Session.empty_probability s ~times:[| 5000.; 10000. |]
    in
    let marginal =
      Discretized.Session.available_charge_marginal s ~time:8000.
    in
    let cdf = Discretized.Session.get cdf in
    let marginal = Discretized.Session.get marginal in
    ( Array.map Int64.bits_of_float cdf,
      Array.map (fun (_, p) -> Int64.bits_of_float p) marginal )
  in
  let cdf1, marginal1 = batch 1 in
  let cdf4, marginal4 = batch 4 in
  check_true "session CDF bitwise equal across jobs" (cdf1 = cdf4);
  check_true "session marginal bitwise equal across jobs" (marginal1 = marginal4)

let suite =
  [
    case "session matches reference per-call (fig-7 model)"
      test_session_matches_legacy_fig7;
    case "session matches reference per-call (fig-2 battery)"
      test_session_matches_legacy_fig2_battery;
    case "CDF + 4 measures = one sweep" test_one_sweep_for_five_queries;
    case "session cache hit/miss counters" test_session_cache_counters;
    case "cdf_discretized matches cdf" test_lifetime_cdf_discretized_matches;
    prop_multi_equals_singles;
    case "custom measure query" test_custom_measure_query;
    case "jobs=1/2/4 bitwise identical (fig-7 model)"
      test_jobs_identical_fig7;
    case "jobs=1/2/4 bitwise identical (fig-2 battery)"
      test_jobs_identical_fig2_battery;
    case "session batch bitwise identical across jobs"
      test_jobs_identical_session;
  ]
