open Batlife_numerics
open Batlife_ctmc
open Batlife_mrm
open Batlife_battery
open Batlife_workload
open Batlife_core
open Helpers

let onoff_degenerate () =
  Kibamrm.create
    ~workload:(Onoff.model ~frequency:1. ~k:1 ~on_current:0.96 ())
    ~battery:(Kibam.params ~capacity:7200. ~c:1. ~k:0.)

let onoff_two_well () =
  Kibamrm.create
    ~workload:(Onoff.model ~frequency:1. ~k:1 ~on_current:0.96 ())
    ~battery:(Kibam.params ~capacity:7200. ~c:0.625 ~k:4.5e-5)

(* --- Grid ----------------------------------------------------------- *)

let test_grid_shape () =
  let g = Grid.create ~delta:5. ~u1:7200. ~u2:0. ~n_workload:2 in
  check_int "levels1" 1441 g.Grid.levels1;
  check_int "levels2 degenerate" 1 g.Grid.levels2;
  (* The paper's state count for Fig. 7 at Delta = 5. *)
  check_int "2882 states" 2882 (Grid.total_states g);
  check_int "absorbing block" 2 (Grid.absorbing_block_size g)

let test_grid_two_dimensional () =
  let g = Grid.create ~delta:25. ~u1:500. ~u2:300. ~n_workload:3 in
  check_int "levels1" 21 g.Grid.levels1;
  check_int "levels2" 13 g.Grid.levels2;
  check_int "total" (21 * 13 * 3) (Grid.total_states g)

let test_grid_levels () =
  let g = Grid.create ~delta:5. ~u1:100. ~u2:50. ~n_workload:1 in
  check_int "level of 0" 0 (Grid.level_of1 g 0.);
  check_int "level of 5 (closed right end)" 0 (Grid.level_of1 g 5.);
  check_int "level of 5.1" 1 (Grid.level_of1 g 5.1);
  check_int "level of 100" 19 (Grid.level_of1 g 100.);
  (* u2 = 50 lives in level 9 = (45, 50]; the top level 10 is the
     transfer-reachable overflow level. *)
  check_int "level of u2" 9 (Grid.level_of2 g 50.);
  check_int "level2 clamp" (g.Grid.levels2 - 1) (Grid.level_of2 g 500.);
  check_float "level value" 10. (Grid.level_value g 1)

let test_grid_validation () =
  check_raises_invalid "delta" (fun () ->
      ignore (Grid.create ~delta:0. ~u1:1. ~u2:0. ~n_workload:1));
  check_raises_invalid "u1" (fun () ->
      ignore (Grid.create ~delta:1. ~u1:0. ~u2:0. ~n_workload:1));
  check_raises_invalid "negative reward" (fun () ->
      ignore (Grid.level_of1 (Grid.create ~delta:1. ~u1:5. ~u2:0. ~n_workload:1) (-1.)))

let prop_grid_index_bijection =
  qcheck ~count:300 "index/decompose bijection"
    QCheck.(triple (int_range 0 4) (int_range 0 20) (int_range 0 11))
    (fun (state, j1, j2) ->
      let g = Grid.create ~delta:25. ~u1:500. ~u2:300. ~n_workload:5 in
      let j1 = min j1 (g.Grid.levels1 - 1) and j2 = min j2 (g.Grid.levels2 - 1) in
      let idx = Grid.index g ~state ~j1 ~j2 in
      Grid.decompose g idx = (state, j1, j2))

let prop_grid_index_dense =
  qcheck ~count:20 "indices cover 0..total-1 exactly once"
    (QCheck.int_range 1 4)
    (fun n ->
      let g = Grid.create ~delta:50. ~u1:200. ~u2:100. ~n_workload:n in
      let seen = Array.make (Grid.total_states g) false in
      for state = 0 to n - 1 do
        for j1 = 0 to g.Grid.levels1 - 1 do
          for j2 = 0 to g.Grid.levels2 - 1 do
            seen.(Grid.index g ~state ~j1 ~j2) <- true
          done
        done
      done;
      Array.for_all (fun b -> b) seen)

(* --- Kibamrm rewards ------------------------------------------------- *)

let test_reward_rates () =
  let m = onoff_two_well () in
  (* State 0 is the on state drawing 0.96 A. *)
  let r1, r2 = Kibamrm.reward_rates m ~state:0 ~y1:1000. ~y2:2700. in
  (* h2 = 7200 > h1 = 1600: recovery flows. *)
  let flow = 4.5e-5 *. ((2700. /. 0.375) -. (1000. /. 0.625)) in
  check_float ~eps:1e-12 "r1" (-0.96 +. flow) r1;
  check_float ~eps:1e-12 "r2" (-.flow) r2;
  (* Empty battery: clamped to zero. *)
  let r1, r2 = Kibamrm.reward_rates m ~state:0 ~y1:0. ~y2:2700. in
  check_float "r1 clamped" 0. r1;
  check_float "r2 clamped" 0. r2;
  (* h1 > h2: no reverse recovery in the MRM formulation. *)
  let r1, r2 = Kibamrm.reward_rates m ~state:0 ~y1:4500. ~y2:100. in
  check_float "r1 no flow" (-0.96) r1;
  check_float "r2 no flow" 0. r2

let test_upper_bounds () =
  let u1, u2 = Kibamrm.upper_bounds (onoff_two_well ()) in
  check_float "u1" 4500. u1;
  check_float "u2" 2700. u2;
  check_true "degenerate" (Kibamrm.is_degenerate (onoff_degenerate ()))

(* --- Discretized generator ------------------------------------------ *)

let test_discretized_structure () =
  let d = Discretized.build ~delta:5. (onoff_degenerate ()) in
  check_int "paper state count" 2882 (Discretized.n_states d);
  let g = d.Discretized.generator in
  (* Row sums of any generator are zero. *)
  let sums = Sparse.row_sums (Generator.matrix g) in
  Array.iter (fun s -> check_true "row sum" (Float.abs s < 1e-9)) sums;
  (* The absorbing block (j1 = 0) has no outgoing transitions. *)
  let block = Grid.absorbing_block_size d.Discretized.grid in
  for i = 0 to block - 1 do
    check_true "absorbing" (Generator.is_absorbing g i)
  done;
  (* Initial mass sits in one state of the top level. *)
  check_float "alpha mass" 1. (Vector.sum d.Discretized.alpha)

let test_discretized_initial_fill () =
  let d =
    Discretized.build ~initial_fill:(10., 0.) ~delta:5. (onoff_degenerate ())
  in
  (* Level of 10 is 1: the flat index of (state on1 = 0, j1 = 1). *)
  let idx = Grid.index d.Discretized.grid ~state:0 ~j1:1 ~j2:0 in
  check_float "mass placed low" 1. d.Discretized.alpha.(idx)

let test_empty_probability_monotone_bounds () =
  let d = Discretized.build ~delta:100. (onoff_two_well ()) in
  let times = [| 2000.; 6000.; 10000.; 14000.; 18000. |] in
  let probs, stats = Discretized.empty_probability d ~times in
  check_true "iterations" (stats.Transient.iterations > 0);
  let prev = ref (-1e-9) in
  Array.iter
    (fun p ->
      check_true "bounds" (p >= -1e-9 && p <= 1. +. 1e-9);
      check_true "monotone" (p >= !prev -. 1e-9);
      prev := p)
    probs

let test_degenerate_matches_erlangization () =
  (* For c = 1 the expanded chain is an Erlangization of the consumed
     charge; the independent Mrm.Erlangization must agree when using
     the same number of stages. *)
  let model = onoff_degenerate () in
  let delta = 100. in
  let d = Discretized.build ~delta model in
  let times = [| 8000.; 12000.; 15000.; 18000. |] in
  let approx, _ = Discretized.empty_probability d ~times in
  let workload = model.Kibamrm.workload in
  let m =
    Mrm.create ~generator:workload.Model.generator
      ~rewards:
        (Array.init (Model.n_states workload) (Model.current workload))
      ~alpha:workload.Model.initial
  in
  (* The paper places the initial fill 7200 in level 71 of 72 (interval
     (7100, 7200]), so the comparable Erlang budget has 71 stages
     of size delta. *)
  let stages = 71 in
  let erl =
    Erlangization.exceedance ~stages m
      ~budget:(delta *. float_of_int stages)
      ~times
  in
  Array.iteri
    (fun i t ->
      check_float ~eps:5e-3 (Printf.sprintf "t=%g" t) erl.(i) approx.(i))
    times

let test_state_distribution_mass () =
  let d = Discretized.build ~delta:50. (onoff_two_well ()) in
  let pi = Discretized.state_distribution d ~time:5000. in
  check_float ~eps:1e-9 "mass 1" 1. (Vector.sum pi)

let test_charge_marginal () =
  let d = Discretized.build ~delta:500. (onoff_two_well ()) in
  let s = Discretized.Session.create d in
  let marginal =
    Discretized.Session.(get (available_charge_marginal s ~time:3000.))
  in
  let total = Array.fold_left (fun acc (_, p) -> acc +. p) 0. marginal in
  check_float ~eps:1e-9 "marginal mass" 1. total;
  let charge0, _ = marginal.(0) in
  check_float "first bucket is empty level" 0. charge0

let test_mode_marginal_matches_workload_transient () =
  (* The workload evolves independently of the charge, so with
     non-absorbing empty states the mode marginal of the expanded
     chain equals the plain workload transient. *)
  let model = onoff_two_well () in
  let d = Discretized.build ~absorb_empty:false ~delta:200. model in
  let time = 4000. in
  let s = Discretized.Session.create d in
  let marginal = Discretized.Session.(get (mode_marginal s ~time)) in
  let direct =
    Transient.solve model.Kibamrm.workload.Model.generator
      ~alpha:model.Kibamrm.workload.Model.initial ~t:time
  in
  Array.iteri
    (fun i p ->
      check_float ~eps:1e-8 (Printf.sprintf "mode %d" i) direct.(i) p)
    marginal

let test_expected_available_charge () =
  let model = onoff_two_well () in
  let d = Discretized.build ~delta:100. model in
  (* Early on (before any absorption) the expected available charge is
     roughly the initial charge minus the mean consumption; the grid
     underestimates by at most one level width.  Both time points ride
     the same session flush. *)
  let s = Discretized.Session.create d in
  let early_q = Discretized.Session.expected_available_charge s ~time:1000. in
  let later_q = Discretized.Session.expected_available_charge s ~time:8000. in
  let expected = Discretized.Session.get early_q in
  (* Mean consumed by t=1000 with half the time on: ~0.48 * 1000. *)
  let ballpark = 4500. -. 480. in
  check_true "in the right ballpark"
    (Float.abs (expected -. ballpark) < 150.);
  (* Decreasing over time. *)
  let later = Discretized.Session.get later_q in
  check_true "decreasing" (later < expected);
  check_int "one sweep for both times" 1 (Discretized.Session.sweeps s)

let test_joint_probability () =
  let model = onoff_two_well () in
  let d = Discretized.build ~delta:200. model in
  let time = 3000. in
  let s = Discretized.Session.create d in
  (* Joint probabilities sum (over modes, with min_charge 0 and the
     empty mass) to 1. *)
  let modes = 2 in
  let joint_qs =
    List.init modes (fun mode ->
        Discretized.Session.joint_probability s ~time ~mode ~min_charge:0.)
  in
  let marginal_q = Discretized.Session.available_charge_marginal s ~time in
  let lo_q =
    Discretized.Session.joint_probability s ~time ~mode:0 ~min_charge:1000.
  in
  let hi_q =
    Discretized.Session.joint_probability s ~time ~mode:0 ~min_charge:3000.
  in
  let above =
    List.fold_left
      (fun acc q -> acc +. Discretized.Session.get q)
      0. joint_qs
  in
  let empty_mass = (Discretized.Session.get marginal_q).(0) |> snd in
  check_float ~eps:1e-8 "joint + empty = 1" 1. (above +. empty_mass);
  (* Raising the bar lowers the probability. *)
  let lo = Discretized.Session.get lo_q in
  let hi = Discretized.Session.get hi_q in
  check_true "monotone in the bar" (hi <= lo +. 1e-12);
  check_int "one sweep for the whole batch" 1 (Discretized.Session.sweeps s);
  check_raises_invalid "bad mode" (fun () ->
      ignore (Discretized.Session.joint_probability s ~time ~mode:7 ~min_charge:0.))

(* --- Lifetime API ----------------------------------------------------- *)

let test_lifetime_cdf_and_quantiles () =
  let model = onoff_degenerate () in
  let times = Array.init 30 (fun i -> 6000. +. (500. *. float_of_int i)) in
  let curve = Lifetime.cdf ~delta:50. ~times model in
  check_int "states" 290 curve.Lifetime.states;
  let median = Lifetime.quantile curve 0.5 in
  (* The deterministic-equivalent lifetime is 15000 s; the coarse
     approximation spreads around it. *)
  check_true "median reasonable" (median > 13000. && median < 17000.);
  let mean = Lifetime.mean curve in
  check_true "mean reasonable" (mean > 13000. && mean < 17000.);
  check_raises_invalid "bad quantile" (fun () ->
      ignore (Lifetime.quantile curve 1.5))

let test_lifetime_refinement_sharpens () =
  (* Smaller Delta concentrates the CDF: the spread between q10 and
     q90 must shrink monotonically along the refinement sequence. *)
  let model = onoff_degenerate () in
  let times = Array.init 57 (fun i -> 6000. +. (250. *. float_of_int i)) in
  let curves =
    Lifetime.convergence_study ~deltas:[| 200.; 100.; 50. |] ~times model
  in
  let spreads =
    List.map
      (fun c -> Lifetime.quantile c 0.9 -. Lifetime.quantile c 0.1)
      curves
  in
  match spreads with
  | [ s1; s2; s3 ] -> check_true "sharpens" (s1 > s2 && s2 > s3)
  | _ -> Alcotest.fail "expected three curves"

(* Randomised cross-engine validation: for arbitrary small workload
   CTMCs and battery parameters, the discretisation and the exact
   Monte-Carlo simulation must produce the same lifetime distribution
   up to discretisation bias + sampling error.  We compare medians with
   a tolerance that accounts for both. *)
let prop_random_models_cross_engine =
  let gen =
    QCheck.make
      QCheck.Gen.(
        let* n = int_range 2 4 in
        let* currents = array_size (return n) (float_range 0.1 2.) in
        let* rates =
          array_size (return ((n * n) - n)) (float_range 0.05 3.)
        in
        let* c = float_range 0.4 1. in
        let* k = float_range 1e-4 1e-2 in
        return (n, currents, rates, c, k))
  in
  qcheck ~count:5 "random models: simulation matches discretisation" gen
    (fun (n, currents, rates, c, k) ->
      (* Fully connected workload CTMC. *)
      let transitions = ref [] in
      let idx = ref 0 in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          if i <> j then begin
            transitions := (i, j, rates.(!idx)) :: !transitions;
            incr idx
          end
        done
      done;
      let generator = Generator.of_rates ~n !transitions in
      let alpha = Array.init n (fun i -> if i = 0 then 1. else 0.) in
      let workload = Model.create ~generator ~currents ~initial:alpha in
      let battery = Kibam.params ~capacity:50. ~c ~k in
      let model = Kibamrm.create ~workload ~battery in
      let times = Array.init 40 (fun i -> 2.5 *. float_of_int (i + 1)) in
      let curve = Lifetime.cdf ~delta:0.5 ~times model in
      let est =
        Batlife_sim.Montecarlo.lifetime_cdf ~runs:300 ~horizon:1e4 model ~times
      in
      let median = Lifetime.quantile curve 0.5 in
      let sim_median =
        let interp =
          Interp.create ~xs:times ~ys:est.Batlife_sim.Montecarlo.cdf
        in
        Interp.inverse interp 0.5
      in
      Float.abs (median -. sim_median) /. Float.max sim_median 1. < 0.12)

let test_lifetime_approaches_simulation_median () =
  (* Cross-validation of the two independent engines. *)
  let model = onoff_degenerate () in
  let times = Array.init 57 (fun i -> 6000. +. (250. *. float_of_int i)) in
  let curve = Lifetime.cdf ~delta:25. ~times model in
  let est = Batlife_sim.Montecarlo.lifetime_cdf ~runs:400 model ~times in
  let median = Lifetime.quantile curve 0.5 in
  let sim_median =
    let interp = Interp.create ~xs:times ~ys:est.Batlife_sim.Montecarlo.cdf in
    Interp.inverse interp 0.5
  in
  check_true "medians within 3%"
    (Float.abs (median -. sim_median) /. sim_median < 0.03)

let suite =
  [
    case "grid shape (paper count)" test_grid_shape;
    case "grid 2d shape" test_grid_two_dimensional;
    case "grid levels" test_grid_levels;
    case "grid validation" test_grid_validation;
    prop_grid_index_bijection;
    prop_grid_index_dense;
    case "reward rates" test_reward_rates;
    case "upper bounds" test_upper_bounds;
    case "discretized structure" test_discretized_structure;
    case "initial fill placement" test_discretized_initial_fill;
    case "empty probability monotone" test_empty_probability_monotone_bounds;
    slow_case "degenerate matches Erlangization"
      test_degenerate_matches_erlangization;
    case "state distribution mass" test_state_distribution_mass;
    case "charge marginal" test_charge_marginal;
    case "mode marginal matches workload transient"
      test_mode_marginal_matches_workload_transient;
    case "expected available charge" test_expected_available_charge;
    case "joint state-charge probability" test_joint_probability;
    case "lifetime cdf and quantiles" test_lifetime_cdf_and_quantiles;
    slow_case "refinement sharpens" test_lifetime_refinement_sharpens;
    slow_case "matches simulation median"
      test_lifetime_approaches_simulation_median;
    prop_random_models_cross_engine;
  ]
