open Batlife_numerics
open Helpers

(* The pools under test are created/shut down per case; the shared
   [Pool.get] caches are exercised too but never shut down. *)

let with_pool ~jobs f =
  let pool = Pool.create ~jobs in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () -> f pool)

let test_run_covers_all_shares () =
  with_pool ~jobs:4 (fun pool ->
      check_int "size" 4 (Pool.size pool);
      let hits = Array.make 4 0 in
      Pool.run pool (fun share -> hits.(share) <- hits.(share) + 1);
      Array.iteri
        (fun i n -> check_int (Printf.sprintf "share %d ran once" i) 1 n)
        hits)

let test_parallel_for_each_index_once () =
  with_pool ~jobs:3 (fun pool ->
      let hits = Array.make 17 0 in
      Pool.parallel_for pool ~lo:0 ~hi:17 (fun ~lo ~hi ->
          for i = lo to hi - 1 do
            hits.(i) <- hits.(i) + 1
          done);
      Array.iteri
        (fun i n -> check_int (Printf.sprintf "index %d covered once" i) 1 n)
        hits)

let test_run_chunks_ownership () =
  with_pool ~jobs:2 (fun pool ->
      let seen = Array.make 10 (-1) in
      Pool.run_chunks pool
        [| (0, 3); (3, 3); (3, 7); (7, 10) |]
        (fun ~lo ~hi ->
          for i = lo to hi - 1 do
            seen.(i) <- i
          done);
      Array.iteri (fun i v -> check_int "every index written" i v) seen)

let test_map_array_preserves_order () =
  with_pool ~jobs:4 (fun pool ->
      let xs = Array.init 100 (fun i -> i) in
      let ys = Pool.map_array pool (fun x -> 2 * x) xs in
      Array.iteri
        (fun i y -> check_int (Printf.sprintf "element %d" i) (2 * i) y)
        ys)

exception Boom of int

(* Exceptions cross the domain boundary: every share finishes, the
   lowest-numbered failure is re-raised on the caller, and the pool
   stays usable afterwards. *)
let test_worker_exception_propagates () =
  with_pool ~jobs:4 (fun pool ->
      let ran = Array.make 4 false in
      (match
         Pool.run pool (fun share ->
             ran.(share) <- true;
             if share >= 2 then raise (Boom share))
       with
      | () -> Alcotest.fail "expected the worker exception to propagate"
      | exception Boom share ->
          check_int "lowest failing share wins" 2 share);
      Array.iteri
        (fun i r -> check_true (Printf.sprintf "share %d still ran" i) r)
        ran;
      (* The section completed despite the failures: reuse the pool. *)
      let total = Atomic.make 0 in
      Pool.run pool (fun share -> ignore (Atomic.fetch_and_add total share));
      check_int "pool usable after exception" 6 (Atomic.get total))

let test_map_array_exception_propagates () =
  with_pool ~jobs:2 (fun pool ->
      match
        Pool.map_array pool
          (fun x -> if x = 3 then raise (Boom x) else x)
          [| 0; 1; 2; 3; 4 |]
      with
      | _ -> Alcotest.fail "expected the task exception to propagate"
      | exception Boom 3 -> ())

let test_nested_run_inline () =
  with_pool ~jobs:2 (fun outer ->
      with_pool ~jobs:2 (fun inner ->
          let counts = Array.make 2 0 in
          Pool.run outer (fun share ->
              (* A nested section (even on a different pool) must run
                 inline rather than deadlock on a busy pool. *)
              Pool.run inner (fun inner_share ->
                  if inner_share = 0 then counts.(share) <- counts.(share) + 1);
              Pool.parallel_for inner ~lo:0 ~hi:4 (fun ~lo ~hi ->
                  counts.(share) <- counts.(share) + (hi - lo)));
          check_int "share 0: nested sections all ran" 5 counts.(0);
          check_int "share 1: nested sections all ran" 5 counts.(1)))

let test_sequential_pool () =
  let pool = Pool.create ~jobs:1 in
  check_int "size 1" 1 (Pool.size pool);
  let hits = ref 0 in
  Pool.run pool (fun share ->
      check_int "only share 0" 0 share;
      incr hits);
  check_int "ran once" 1 !hits;
  Pool.shutdown pool

let test_invalid_jobs () =
  check_raises_invalid "jobs 0" (fun () -> ignore (Pool.create ~jobs:0));
  check_raises_invalid "negative" (fun () -> ignore (Pool.get ~jobs:(-3)))

(* Core-count independent: ask for one more domain than the machine
   has, whatever that number is. *)
let test_clamp_jobs () =
  let cores = max 1 (Domain.recommended_domain_count ()) in
  let clamped, events = Diag.capture (fun () -> Pool.clamp_jobs (cores + 1)) in
  check_int "oversubscription clamped to the core count" cores clamped;
  check_int "clamp recorded a Diag note" 1 (List.length events);
  check_true "note is informational, not a fallback"
    (not (List.hd events).Diag.fallback);
  let kept, events = Diag.capture (fun () -> Pool.clamp_jobs cores) in
  check_int "request within the cores kept" cores kept;
  check_int "no note when nothing was clamped" 0 (List.length events);
  check_int "jobs 1 always passes" 1
    (fst (Diag.capture (fun () -> Pool.clamp_jobs 1)));
  check_raises_invalid "jobs 0 rejected" (fun () ->
      ignore (Pool.clamp_jobs 0))

let test_get_cached () =
  let a = Pool.get ~jobs:2 and b = Pool.get ~jobs:2 in
  check_true "same pool returned" (a == b);
  check_int "requested size" 2 (Pool.size a);
  check_true "default jobs positive" (Pool.default_jobs () >= 1)

let suite =
  [
    case "run covers all shares" test_run_covers_all_shares;
    case "parallel_for covers each index once" test_parallel_for_each_index_once;
    case "run_chunks writes every chunk" test_run_chunks_ownership;
    case "map_array preserves order" test_map_array_preserves_order;
    case "worker exception propagates" test_worker_exception_propagates;
    case "map_array exception propagates" test_map_array_exception_propagates;
    case "nested sections run inline" test_nested_run_inline;
    case "jobs = 1 is sequential" test_sequential_pool;
    case "invalid job counts rejected" test_invalid_jobs;
    case "clamp_jobs caps at the core count" test_clamp_jobs;
    case "get caches shared pools" test_get_cached;
  ]
