open Batlife_battery
open Batlife_workload
open Helpers
module Diag = Batlife_numerics.Diag

let samples =
  [
    { Trace.time = 0.; current = 2. };
    { Trace.time = 1.; current = 0. };
    { Trace.time = 3.; current = 5. };
    { Trace.time = 4.; current = 2. };
  ]

let test_of_samples () =
  let p = Trace.of_samples samples in
  check_float "first segment" 2. (Load_profile.load_at p 0.5);
  check_float "idle stretch" 0. (Load_profile.load_at p 2.);
  check_float "third segment" 5. (Load_profile.load_at p 3.5);
  (* Last sample held for the median gap (1.0). *)
  check_float "tail hold" 2. (Load_profile.load_at p 4.5);
  check_float "beyond the trace" 0. (Load_profile.load_at p 100.)

let test_of_samples_leading_gap () =
  let p =
    Trace.of_samples
      [ { Trace.time = 2.; current = 3. }; { Trace.time = 4.; current = 1. } ]
  in
  check_float "implicit leading idle" 0. (Load_profile.load_at p 1.);
  check_float "first real segment" 3. (Load_profile.load_at p 3.)

let test_of_samples_validation () =
  check_raises_invalid "too short" (fun () ->
      ignore (Trace.of_samples [ { Trace.time = 0.; current = 1. } ]));
  check_raises_invalid "unordered" (fun () ->
      ignore
        (Trace.of_samples
           [
             { Trace.time = 1.; current = 1. };
             { Trace.time = 1.; current = 2. };
           ]));
  check_raises_invalid "negative current" (fun () ->
      ignore
        (Trace.of_samples
           [
             { Trace.time = 0.; current = -1. };
             { Trace.time = 1.; current = 2. };
           ]))

let test_parse_csv () =
  let text = "# a comment\n0, 2.5\n\n1.5, 0\n 2 , 1e-1 \n" in
  let parsed = Trace.parse_csv_exn text in
  check_int "three samples" 3 (List.length parsed);
  (match parsed with
  | [ a; b; c ] ->
      check_float "time a" 0. a.Trace.time;
      check_float "current a" 2.5 a.Trace.current;
      check_float "time b" 1.5 b.Trace.time;
      check_float "current c" 0.1 c.Trace.current
  | _ -> Alcotest.fail "unexpected shape");
  (match Trace.parse_csv_exn "0,1\nbogus line\n" with
  | exception Diag.Error (Diag.Parse_error { line; _ }) ->
      check_int "line number" 2 line
  | _ -> Alcotest.fail "malformed line must fail")

let test_csv_roundtrip () =
  let p = Trace.of_samples samples in
  let text = Trace.to_csv p ~t_end:4. ~step:0.25 in
  let p' = Trace.of_samples (Trace.parse_csv_exn text) in
  (* The resampled profile matches at the sampling resolution. *)
  List.iter
    (fun t ->
      check_float
        (Printf.sprintf "load at %g" t)
        (Load_profile.load_at p t) (Load_profile.load_at p' t))
    [ 0.1; 0.6; 2.1; 3.1; 3.9 ]

let test_synthesize () =
  let workload = Simple.model () in
  let trace = Trace.synthesize ~seed:9L ~horizon:200. workload in
  check_true "many state changes" (List.length trace > 20);
  (* All currents are model currents. *)
  List.iter
    (fun s ->
      check_true "known current"
        (List.mem s.Trace.current [ 8.; 200.; 0. ]))
    trace;
  (* Reproducible. *)
  let again = Trace.synthesize ~seed:9L ~horizon:200. workload in
  check_int "same length" (List.length trace) (List.length again)

let test_estimate_model_recovers_structure () =
  (* Close the loop: synthesize a long trace from the simple model and
     re-estimate a CTMC from it; levels, occupancy and rates should be
     close to the source model. *)
  let workload = Simple.model () in
  let trace = Trace.synthesize ~seed:17L ~horizon:5000. workload in
  let estimated = Trace.estimate_model trace in
  check_int "three levels" 3 (Array.length estimated.Trace.levels);
  Array.iter
    (fun level -> check_true "level is a model current"
        (List.mem level [ 0.; 8.; 200. ]))
    estimated.Trace.levels;
  (* Steady occupancy: idle 0.5, send 0.25, sleep 0.25 (+- noise). *)
  let m = estimated.Trace.model in
  Array.iteri
    (fun i level ->
      let expected =
        if level = 8. then 0.5 else 0.25 (* send and sleep both 0.25 *)
      in
      check_true
        (Printf.sprintf "occupancy of level %g" level)
        (Float.abs (estimated.Trace.occupancy.(i) -. expected) < 0.08))
    estimated.Trace.levels;
  (* Estimated exit rate of the idle level ~ lambda + tau = 3/h. *)
  let idle =
    let rec find i =
      if Model.current m i = 8. then i else find (i + 1)
    in
    find 0
  in
  let exit = Batlife_ctmc.Generator.exit_rate m.Model.generator idle in
  check_true "idle exit rate ~ 3"
    (Float.abs (exit -. 3.) < 0.5)

let test_estimate_model_quantises () =
  (* More distinct currents than max_states: quantisation kicks in. *)
  let noisy =
    List.init 100 (fun i ->
        {
          Trace.time = float_of_int i;
          current = (if i mod 2 = 0 then 10. else 100.) +. float_of_int (i mod 5);
        })
  in
  let estimated = Trace.estimate_model ~max_states:2 noisy in
  check_int "two levels" 2 (Array.length estimated.Trace.levels);
  let lo = estimated.Trace.levels.(0) and hi = estimated.Trace.levels.(1) in
  check_true "low cluster near 12" (Float.abs (lo -. 12.) < 3.);
  check_true "high cluster near 102" (Float.abs (hi -. 102.) < 3.)

let test_estimate_validation () =
  check_raises_invalid "single level" (fun () ->
      ignore
        (Trace.estimate_model
           [
             { Trace.time = 0.; current = 5. };
             { Trace.time = 1.; current = 5. };
           ]));
  check_raises_invalid "max_states" (fun () ->
      ignore (Trace.estimate_model ~max_states:1 samples))

let test_trace_through_battery () =
  (* End-to-end: a synthetic trace drives the analytic KiBaM. *)
  let workload = Simple.model () in
  let trace = Trace.synthesize ~seed:23L ~horizon:100. workload in
  let profile = Trace.of_samples trace in
  let battery = Kibam.params ~capacity:800. ~c:0.625 ~k:0.162 in
  match Kibam.lifetime ~max_time:100. battery profile with
  | Some t -> check_true "dies within the trace only if drained" (t > 0.)
  | None ->
      (* Most likely outcome on a 100 h trace start: survived. *)
      ()

let suite =
  [
    case "of_samples" test_of_samples;
    case "leading gap" test_of_samples_leading_gap;
    case "of_samples validation" test_of_samples_validation;
    case "parse csv" test_parse_csv;
    case "csv roundtrip" test_csv_roundtrip;
    case "synthesize" test_synthesize;
    case "estimate model (loop closure)" test_estimate_model_recovers_structure;
    case "estimate model quantises" test_estimate_model_quantises;
    case "estimate validation" test_estimate_validation;
    case "trace through battery" test_trace_through_battery;
  ]
