(* The resilience layer: budgets and cooperative cancellation, exact
   JSON round-trips, atomic writes, checkpoint/resume bitwise identity
   (uniformisation sweeps and Monte-Carlo batches), and Par's
   retry-with-backoff under injected transient faults. *)

open Helpers
open Batlife_numerics
open Batlife_ctmc
open Batlife_battery
open Batlife_workload
open Batlife_core
open Batlife_sim
module Fault = Batlife_robust.Fault
module Par = Batlife_experiments.Par

let fig7_model () =
  Kibamrm.create
    ~workload:(Onoff.model ~frequency:1.0 ~k:1 ~on_current:0.96 ())
    ~battery:(Kibam.params ~capacity:7200. ~c:1. ~k:0.)

let fig2_battery_model () =
  Kibamrm.create
    ~workload:(Onoff.model ~frequency:1.0 ~k:1 ~on_current:0.96 ())
    ~battery:(Kibam.params ~capacity:7200. ~c:0.625 ~k:4.5e-5)

let times () = [| 4000.; 8000.; 12000.; 15000.; 17000. |]

let tmp_path suffix =
  let path = Filename.temp_file "batlife_resilience" suffix in
  Sys.remove path;
  path

let is_budget = function Diag.Budget_exhausted _ -> true | _ -> false
let is_cancelled = function Diag.Cancelled _ -> true | _ -> false

(* ------------------------------------------------------------------ *)
(* Budget                                                              *)

let test_budget_counts () =
  let b = Budget.create ~max_products:3 () in
  (* Protocol: note the unit of work, then check.  A budget of 3 lets
     exactly 3 units through and trips on the 4th. *)
  for _ = 1 to 3 do
    Budget.note_product b;
    Budget.check ~what:"test" b
  done;
  Budget.note_product b;
  check_true "4th unit trips" (Budget.peek ~what:"test" b |> Option.is_some);
  check_raises_diag "budget error class" is_budget (fun () ->
      Budget.check ~what:"test" b);
  check_int "products counted" 4 (Budget.products_done b)

let test_budget_cancel () =
  let b = Budget.create () in
  check_true "fresh budget passes" (Budget.peek ~what:"t" b = None);
  Budget.cancel b;
  check_raises_diag "cancel trips Cancelled" is_cancelled (fun () ->
      Budget.check ~what:"t" b);
  (* The deterministic testing knob trips like an async Ctrl-C. *)
  let b2 = Budget.create ~cancel_after:2 () in
  check_true "1st peek passes" (Budget.peek ~what:"t" b2 = None);
  check_true "2nd peek cancels" (Budget.peek ~what:"t" b2 <> None);
  check_true "knob reports cancelled" (Budget.cancelled b2)

let test_budget_unlimited_and_ambient () =
  check_true "unlimited is unlimited" (Budget.is_unlimited Budget.unlimited);
  Budget.note_product Budget.unlimited;
  check_int "unlimited counts nothing" 0
    (Budget.products_done Budget.unlimited);
  let b = Budget.create ~max_sweeps:1 () in
  Budget.with_ambient b (fun () ->
      check_true "ambient swapped in" (Budget.ambient () == b));
  check_true "ambient restored"
    (Budget.is_unlimited (Budget.ambient ()));
  check_raises_invalid "non-positive limit rejected" (fun () ->
      Budget.create ~max_products:0 ())

(* Budgets actually stop the sweeps, and partial progress is named in
   the error. *)
let test_budget_stops_sweep () =
  let model = fig7_model () in
  let b = Budget.create ~max_products:25 () in
  check_raises_diag "sweep stops on budget" is_budget (fun () ->
      Budget.with_ambient b (fun () ->
          ignore (Lifetime.cdf ~delta:100. ~times:(times ()) model)));
  check_int "exactly the budgeted products ran" 26 (Budget.products_done b)

(* ------------------------------------------------------------------ *)
(* Json: exact round-trips                                             *)

let test_json_float_roundtrip () =
  let values =
    [
      0.; -0.; 1.; -1.; 0.1; 1e-300; -1.7976931348623157e308; Float.pi;
      4.9e-324 (* smallest denormal *); 12345.6789012345678;
    ]
  in
  List.iter
    (fun x ->
      let j = Json.encode (Json.of_float x) in
      let back = Json.to_float ~field:"x" (Json.decode j) in
      check_true
        (Printf.sprintf "float %h survives the round-trip" x)
        (Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float back)))
    values;
  (* Non-finite values ride along as strings. *)
  List.iter
    (fun x ->
      let back =
        Json.to_float ~field:"x" (Json.decode (Json.encode (Json.of_float x)))
      in
      check_true "non-finite round-trip"
        (Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float back)))
    [ Float.nan; Float.infinity; Float.neg_infinity ]

let test_json_int64_and_errors () =
  List.iter
    (fun w ->
      let back =
        Json.to_int64_hex ~field:"w"
          (Json.decode (Json.encode (Json.of_int64_hex w)))
      in
      check_true "int64 hex round-trip" (Int64.equal w back))
    [ 0L; 1L; -1L; Int64.min_int; Int64.max_int; 0x0BA77E7AL ];
  let is_parse = function Diag.Parse_error _ -> true | _ -> false in
  check_raises_diag "garbage is a Parse_error" is_parse (fun () ->
      Json.decode "{\"a\": }");
  check_raises_diag "trailing garbage rejected" is_parse (fun () ->
      Json.decode "1 2");
  check_raises_diag "missing member is structured" is_parse (fun () ->
      Json.member ~field:"missing" (Json.decode "{}"))

(* ------------------------------------------------------------------ *)
(* Atomic_io                                                           *)

let test_atomic_write () =
  let path = tmp_path ".txt" in
  Atomic_io.write_file ~path "first\n";
  (* A writer that dies mid-way must leave the previous content and no
     temp litter. *)
  (try
     Atomic_io.with_out ~path (fun oc ->
         output_string oc "partial";
         failwith "boom")
   with Failure _ -> ());
  let ic = open_in path in
  let content = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Alcotest.(check string) "old content survives a failed rewrite" "first\n"
    content;
  let dir = Filename.dirname path in
  let litter =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f ->
           Filename.check_suffix f ".tmp"
           && String.length f > String.length "batlife_resilience"
           && String.sub f 1 (String.length "batlife_resilience")
              = "batlife_resilience")
  in
  check_int "no temp litter" 0 (List.length litter);
  Sys.remove path

(* ------------------------------------------------------------------ *)
(* Checkpoint round-trips                                              *)

let test_checkpoint_roundtrip () =
  let path = tmp_path ".ckpt" in
  let progress =
    {
      Transient.sp_step = 2;
      sp_converged = false;
      sp_vector = [| 0.125; 0.25; 0.625 |];
      sp_values = [| [| 0.; 0.1; 0.2 |]; [| 1.; 0.9; 0.8 |] |];
      sp_skipped = 0.;
    }
  in
  let cdf =
    {
      Checkpoint.cdf_delta = 50.;
      cdf_accuracy = 1e-7;
      cdf_states = 3;
      cdf_nnz = 4;
      cdf_times = [| 10.; 20. |];
      cdf_progress = progress;
    }
  in
  (match Checkpoint.(save ~path (Cdf cdf); load ~path) with
  | Checkpoint.Cdf c ->
      check_true "cdf fingerprint round-trips"
        (c.Checkpoint.cdf_delta = 50. && c.Checkpoint.cdf_times = [| 10.; 20. |]);
      check_true "sweep progress round-trips bitwise"
        (c.Checkpoint.cdf_progress = progress)
  | _ -> Alcotest.fail "wrong kind back");
  let mc =
    {
      Checkpoint.mc_seed = 0x0BA77E7AL;
      mc_target = 100;
      mc_done = 42;
      mc_censored = 2;
      mc_died = [ 3.5; 2.25; 1.125 ];
      mc_rng = [| 1L; -2L; Int64.min_int; 0x123456789ABCDEF0L |];
    }
  in
  (match Checkpoint.(save ~path (Montecarlo mc); load ~path) with
  | Checkpoint.Montecarlo m ->
      check_true "montecarlo round-trips" (m = mc)
  | _ -> Alcotest.fail "wrong kind back");
  (match
     Checkpoint.(
       save ~path (Experiments { completed = [ "fig2"; "fig7" ] });
       load ~path)
   with
  | Checkpoint.Experiments { completed } ->
      check_true "completion map round-trips" (completed = [ "fig2"; "fig7" ])
  | _ -> Alcotest.fail "wrong kind back");
  Sys.remove path

let test_checkpoint_corruption () =
  let is_parse = function Diag.Parse_error _ -> true | _ -> false in
  let path = tmp_path ".ckpt" in
  Atomic_io.write_file ~path "{\"schema\":\"batlife.ckpt/1\",\"kind\":\"cd";
  check_raises_diag "truncated file is a Parse_error" is_parse (fun () ->
      Checkpoint.load ~path);
  Atomic_io.write_file ~path
    "{\"schema\":\"batlife.ckpt/99\",\"kind\":\"cdf\"}";
  check_raises_diag "wrong schema rejected" is_parse (fun () ->
      Checkpoint.load ~path);
  Atomic_io.write_file ~path "{\"schema\":\"batlife.ckpt/1\",\"kind\":\"x\"}";
  check_raises_diag "unknown kind rejected" is_parse (fun () ->
      Checkpoint.load ~path);
  Sys.remove path

(* ------------------------------------------------------------------ *)
(* cdf checkpoint/resume: bitwise identity                             *)

let interrupt_and_resume ~delta model =
  let ts = times () in
  let reference = Lifetime.cdf ~delta ~times:ts model in
  let resumable = Lifetime.cdf_resumable ~delta ~times:ts model in
  check_true "cdf_resumable == cdf bitwise"
    (reference.Lifetime.probabilities = resumable.Lifetime.probabilities
    && reference.Lifetime.iterations = resumable.Lifetime.iterations);
  let path = tmp_path ".ckpt" in
  (* Interrupt mid-sweep: a tight product budget kills the run after
     the checkpoint hook has seen some steps; the final snapshot is
     flushed by on_interrupt. *)
  check_raises_diag "budget interrupts the sweep" is_budget (fun () ->
      Budget.with_ambient
        (Budget.create ~max_products:40 ())
        (fun () ->
          ignore
            (Lifetime.cdf_resumable ~checkpoint:(path, 5) ~delta ~times:ts
               model)));
  check_true "interrupt flushed a checkpoint" (Sys.file_exists path);
  let resumed =
    Lifetime.cdf_resumable ~resume:path ~delta ~times:ts model
  in
  check_true "resumed == uninterrupted bitwise"
    (reference.Lifetime.probabilities = resumed.Lifetime.probabilities);
  check_int "resumed reports the full iteration count"
    reference.Lifetime.iterations resumed.Lifetime.iterations;
  Sys.remove path

let test_cdf_resume_fig7 () = interrupt_and_resume ~delta:100. (fig7_model ())

let test_cdf_resume_fig2_battery () =
  interrupt_and_resume ~delta:100. (fig2_battery_model ())

let test_cdf_resume_fingerprint () =
  let model = fig7_model () in
  let ts = times () in
  let path = tmp_path ".ckpt" in
  check_raises_diag "interrupted run" is_budget (fun () ->
      Budget.with_ambient
        (Budget.create ~max_products:40 ())
        (fun () ->
          ignore
            (Lifetime.cdf_resumable ~checkpoint:(path, 5) ~delta:100.
               ~times:ts model)));
  (* Wrong delta / wrong grid: the fingerprint must reject. *)
  check_raises_diag "wrong delta rejected" is_invalid_model (fun () ->
      Lifetime.cdf_resumable ~resume:path ~delta:50. ~times:ts model);
  check_raises_diag "wrong grid rejected" is_invalid_model (fun () ->
      Lifetime.cdf_resumable ~resume:path ~delta:100. ~times:[| 1.; 2. |]
        model);
  Sys.remove path

(* ------------------------------------------------------------------ *)
(* Monte-Carlo checkpoint/resume                                       *)

let test_montecarlo_resume () =
  let model = fig7_model () in
  let runs = 120 and horizon = 40000. and seed = 195802L in
  let ref_samples, ref_censored =
    Montecarlo.run_replications ~seed ~runs ~horizon model
  in
  (* Interrupt after 50 replications, round-trip the snapshot through
     an on-disk checkpoint, resume, and demand bitwise identity. *)
  let snap = ref None in
  check_raises_diag "replications interrupted" is_budget (fun () ->
      Budget.with_ambient
        (Budget.create ~max_products:50 ())
        (fun () ->
          ignore
            (Montecarlo.run_replications ~seed
               ~progress:
                 (Progress.make ~on_interrupt:(fun p -> snap := Some p) ())
               ~runs ~horizon model)));
  let p = match !snap with Some p -> p | None -> Alcotest.fail "no snapshot" in
  check_int "snapshot after the budgeted replications" 50
    p.Montecarlo.mp_done;
  let path = tmp_path ".ckpt" in
  Checkpoint.save ~path
    (Checkpoint.Montecarlo
       {
         Checkpoint.mc_seed = seed;
         mc_target = p.Montecarlo.mp_target;
         mc_done = p.Montecarlo.mp_done;
         mc_censored = p.Montecarlo.mp_censored;
         mc_died = p.Montecarlo.mp_died;
         mc_rng = p.Montecarlo.mp_rng;
       });
  let resume =
    match Checkpoint.load ~path with
    | Checkpoint.Montecarlo m ->
        {
          Montecarlo.mp_target = m.Checkpoint.mc_target;
          mp_done = m.Checkpoint.mc_done;
          mp_censored = m.Checkpoint.mc_censored;
          mp_died = m.Checkpoint.mc_died;
          mp_rng = m.Checkpoint.mc_rng;
        }
    | _ -> Alcotest.fail "wrong checkpoint kind"
  in
  let res_samples, res_censored =
    Montecarlo.run_replications ~seed
      ~progress:(Progress.make ~resume ())
      ~runs ~horizon model
  in
  check_true "resumed samples bitwise identical" (ref_samples = res_samples);
  check_int "censored count identical" ref_censored res_censored;
  (* A snapshot for a different target is rejected. *)
  check_raises_diag "wrong target rejected" is_invalid_model (fun () ->
      Montecarlo.run_replications ~seed
        ~progress:(Progress.make ~resume ())
        ~runs:(runs + 1) ~horizon model);
  Sys.remove path

let test_rng_state_roundtrip () =
  let r = Rng.create ~seed:42L () in
  for _ = 1 to 17 do
    ignore (Rng.uniform r)
  done;
  let saved = Rng.state r in
  let clone = Rng.of_state saved in
  for _ = 1 to 100 do
    check_true "restored stream continues identically"
      (Int64.equal (Rng.bits64 r) (Rng.bits64 clone))
  done;
  check_raises_invalid "all-zero state rejected" (fun () ->
      Rng.of_state [| 0L; 0L; 0L; 0L |]);
  check_raises_invalid "wrong length rejected" (fun () ->
      Rng.of_state [| 1L |])

(* ------------------------------------------------------------------ *)
(* Par: retries under injected faults                                  *)

let c_retries = Telemetry.counter "par.retries"

let test_par_retries () =
  let solve delta =
    let curve = Lifetime.cdf ~delta ~times:(times ()) (fig7_model ()) in
    curve.Lifetime.probabilities
  in
  let deltas = [ 100.; 50. ] in
  let reference = Par.map solve deltas in
  List.iter
    (fun jobs ->
      let opts = Solver_opts.make ~jobs ~max_retries:3 () in
      Telemetry.reset_counter c_retries;
      let faulty =
        Par.map ~opts ~backoff_s:1e-6
          (Fault.transient ~failures:2 solve)
          deltas
      in
      check_true
        (Printf.sprintf "jobs=%d: faulty run bitwise identical" jobs)
        (faulty = reference);
      check_int
        (Printf.sprintf "jobs=%d: retries counted" jobs)
        2
        (Telemetry.value c_retries))
    [ 1; 2; 4 ];
  (* More failures than retries: the fault escapes. *)
  let opts = Solver_opts.make ~jobs:1 ~max_retries:1 () in
  check_true "unrecoverable fault propagates"
    (match
       Par.map ~opts ~backoff_s:1e-6
         (Fault.transient ~failures:5 solve)
         deltas
     with
    | _ -> false
    | exception Fault.Injected _ -> true)

let test_par_never_retries_cancellation () =
  (* A cancelled budget must short-circuit, not burn retries. *)
  let b = Budget.create () in
  Budget.cancel b;
  let opts = Solver_opts.make ~budget:b ~max_retries:5 () in
  Telemetry.reset_counter c_retries;
  check_true "cancellation propagates without retries"
    (match Par.map ~opts (fun x -> x) [ 1; 2 ] with
    | _ -> false
    | exception Diag.Error (Diag.Cancelled _) -> true);
  check_int "no retries burned" 0 (Telemetry.value c_retries)

let test_map_partial_degrades () =
  (* Tasks that trip the budget come back as [Error]; the rest
     survive. *)
  let b = Budget.create ~max_products:1 () in
  let opts = Solver_opts.make ~jobs:1 ~budget:b () in
  let results =
    Par.map_partial ~opts
      (fun x ->
        if x > 1 then begin
          Budget.note_product b;
          Budget.note_product b;
          Budget.check ~what:"task" b
        end;
        x * 10)
      [ 1; 2; 3 ]
  in
  (match results with
  | [ Ok 10; Error e1; Error e2 ] ->
      check_true "dropped tasks carry budget errors"
        (is_budget e1 && is_budget e2)
  | _ -> Alcotest.fail "unexpected map_partial shape");
  check_int "three results, in order" 3 (List.length results)

let suite =
  [
    Alcotest.test_case "budget counts and trips exactly" `Quick
      test_budget_counts;
    Alcotest.test_case "budget cancel & cancel_after knob" `Quick
      test_budget_cancel;
    Alcotest.test_case "unlimited fast path & ambient scoping" `Quick
      test_budget_unlimited_and_ambient;
    Alcotest.test_case "budget stops a uniformisation sweep" `Quick
      test_budget_stops_sweep;
    Alcotest.test_case "json float round-trip is exact" `Quick
      test_json_float_roundtrip;
    Alcotest.test_case "json int64 hex & parse errors" `Quick
      test_json_int64_and_errors;
    Alcotest.test_case "atomic writes survive a failing writer" `Quick
      test_atomic_write;
    Alcotest.test_case "checkpoint payloads round-trip" `Quick
      test_checkpoint_roundtrip;
    Alcotest.test_case "corrupted checkpoints are structured errors" `Quick
      test_checkpoint_corruption;
    Alcotest.test_case "cdf resume bitwise identical (fig 7)" `Quick
      test_cdf_resume_fig7;
    Alcotest.test_case "cdf resume bitwise identical (fig 2 battery)" `Quick
      test_cdf_resume_fig2_battery;
    Alcotest.test_case "cdf resume rejects fingerprint mismatches" `Quick
      test_cdf_resume_fingerprint;
    Alcotest.test_case "monte-carlo mid-batch resume bitwise identical"
      `Quick test_montecarlo_resume;
    Alcotest.test_case "rng state serialise/restore" `Quick
      test_rng_state_roundtrip;
    Alcotest.test_case "par retries injected faults deterministically"
      `Quick test_par_retries;
    Alcotest.test_case "par never retries cancellation" `Quick
      test_par_never_retries_cancellation;
    Alcotest.test_case "map_partial degrades gracefully" `Quick
      test_map_partial_degrades;
  ]
