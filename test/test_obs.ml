(* The observability plane: streaming histogram quantiles must stay
   inside the documented error bound against exact sorted quantiles,
   rolling windows must be deterministic under a synthetic clock and
   lose no events under the fork-join hammer, trace contexts must be
   stamped on spans and Diag events (and survive capture/replay
   verbatim), the service must write one attributable access-log line
   per request, and — the headline contract — turning the plane on
   must not change a single response bit. *)

open Helpers
module Streamstat = Batlife_numerics.Streamstat
module Hist = Streamstat.Hist
module Window = Streamstat.Window
module Telemetry = Batlife_numerics.Telemetry
module Diag = Batlife_numerics.Diag
module Pool = Batlife_numerics.Pool
module Json = Batlife_numerics.Json
module Model_spec = Batlife_service.Model_spec
module Query = Batlife_service.Query
module Service = Batlife_service.Service
module Obs = Batlife_service.Obs

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i =
    i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1))
  in
  go 0

(* ------------------------------------------------------------------ *)
(* Histograms. *)

let test_hist_empty_and_edges () =
  let h = Hist.create () in
  check_int "empty count" 0 (Hist.count h);
  check_true "empty quantile is nan" (Float.is_nan (Hist.quantile h 0.5));
  check_true "empty mean is nan" (Float.is_nan (Hist.mean h));
  check_true "empty max is -inf" (Hist.max_seen h = neg_infinity);
  Hist.observe h Float.nan;
  check_int "NaN ignored" 0 (Hist.count h);
  (* Underflow clamps to the first bucket, reported as lo. *)
  Hist.observe h 1e-9;
  check_float ~eps:0. "underflow quantile reports lo" 1e-6
    (Hist.quantile h 0.5);
  Hist.reset h;
  (* Overflow reports the maximum seen (bound no longer applies). *)
  Hist.observe h 5e4;
  check_float ~eps:0. "overflow quantile reports max seen" 5e4
    (Hist.quantile h 0.5);
  check_float ~eps:0. "sum" 5e4 (Hist.sum h);
  Hist.reset h;
  check_int "reset clears" 0 (Hist.count h)

(* The acceptance criterion made checkable: state is O(buckets),
   fixed at creation, no matter how many samples flow through. *)
let test_hist_state_bounded () =
  let h = Hist.create () in
  let buckets0 = Hist.buckets h in
  check_int "snapshot length = buckets" buckets0
    (Array.length (Hist.snapshot h));
  for i = 1 to 100_000 do
    Hist.observe h (1e-5 *. float_of_int i)
  done;
  check_int "buckets unchanged after 100k samples" buckets0 (Hist.buckets h);
  check_int "snapshot length unchanged" buckets0
    (Array.length (Hist.snapshot h));
  check_int "snapshot counts sum to count" (Hist.count h)
    (Array.fold_left (fun acc (_, c) -> acc + c) 0 (Hist.snapshot h))

(* Streaming quantile vs the exact sorted quantile, same floor(p*n)
   rank convention, for in-range samples: relative error must stay
   within the documented sqrt(r) - 1 bound. *)
let prop_hist_quantile_bound =
  qcheck ~count:200 "streaming quantile within documented bound"
    QCheck.(
      pair
        (list_of_size (Gen.int_range 1 200)
           (* strictly inside [lo, hi] = [1e-6, 1e3] *)
           (float_range 2e-6 900.))
        (float_range 0. 1.))
    (fun (samples, p) ->
      let h = Hist.create () in
      List.iter (Hist.observe h) samples;
      let sorted = Array.of_list samples in
      Array.sort Float.compare sorted;
      let n = Array.length sorted in
      let exact = sorted.(min (n - 1) (int_of_float (p *. float_of_int n))) in
      let stream = Hist.quantile h p in
      Float.abs (stream -. exact) /. exact <= Hist.rel_error_bound h)

(* ------------------------------------------------------------------ *)
(* Rolling windows. *)

let s_ns seconds = Int64.of_float (seconds *. 1e9)

let test_window_synthetic_clock () =
  (* 6 slots over 60 s: 10-second resolution. *)
  let w = Window.create ~slots:6 ~span_s:60. () in
  check_int "slots" 6 (Window.slots w);
  check_float ~eps:0. "span" 60. (Window.span_s w);
  let t0 = s_ns 1000. in
  Window.add ~now_ns:t0 w 5;
  Window.add ~now_ns:(s_ns 1030.) w 7;
  check_int "both events inside the window" 12
    (Window.total ~now_ns:(s_ns 1030.) w);
  check_float ~eps:1e-12 "rate = total / span" (12. /. 60.)
    (Window.rate ~now_ns:(s_ns 1030.) w);
  (* 65 s after the first event: its slot has aged out, the second
     remains. *)
  check_int "first event retired" 7 (Window.total ~now_ns:(s_ns 1065.) w);
  (* Far future: everything retired. *)
  check_int "all retired" 0 (Window.total ~now_ns:(s_ns 2000.) w);
  (* A slot is reused after retirement without double counting. *)
  Window.add ~now_ns:(s_ns 2000.) w 3;
  check_int "reused slot counts fresh" 3 (Window.total ~now_ns:(s_ns 2000.) w)

let test_window_forkjoin_hammer () =
  let per_share = 5_000 in
  List.iter
    (fun jobs ->
      (* A window wide enough that nothing retires mid-test. *)
      let w = Window.create ~span_s:3600. () in
      let pool = Pool.get ~jobs in
      Pool.run pool (fun _ ->
          for _ = 1 to per_share do
            Window.add w 1
          done);
      check_int
        (Printf.sprintf "no lost events at jobs=%d" jobs)
        (Pool.size pool * per_share)
        (Window.total w))
    [ 1; 2; 4 ]

(* ------------------------------------------------------------------ *)
(* Trace contexts. *)

let test_span_context_stamping () =
  Telemetry.enable ();
  Telemetry.reset ();
  Fun.protect
    ~finally:(fun () ->
      Telemetry.disable ();
      Telemetry.reset ())
    (fun () ->
      let (), spans =
        Telemetry.capture (fun () ->
            Telemetry.with_span "ctx.none" ignore;
            Telemetry.with_context "r9" (fun () ->
                Telemetry.with_span "ctx.some" ignore);
            Telemetry.with_span "ctx.after" ignore)
      in
      let ctx name =
        (List.find (fun s -> s.Telemetry.sp_name = name) spans)
          .Telemetry.sp_ctx
      in
      check_true "no context outside with_context" (ctx "ctx.none" = None);
      check_true "context stamped inside" (ctx "ctx.some" = Some "r9");
      check_true "context restored after" (ctx "ctx.after" = None);
      check_true "current_context restored"
        (Telemetry.current_context () = None);
      (* The Chrome trace carries the id as a span argument. *)
      Telemetry.replay spans;
      let trace = Telemetry.trace_json (Telemetry.snapshot ()) in
      check_true "trace_json tags the rid" (contains trace "\"rid\": \"r9\""))

(* The satellite fix under test: capture/replay must keep each event's
   original context, not re-stamp it with the replaying domain's. *)
let test_diag_context_replay_verbatim () =
  Diag.clear_events ();
  let (), captured =
    Diag.capture (fun () ->
        Diag.with_context "rA" (fun () ->
            Diag.record ~origin:"test.obs" "inside rA");
        Diag.record ~origin:"test.obs" "no context")
  in
  (match captured with
  | [ a; b ] ->
      check_true "captured with its context" (a.Diag.ctx = Some "rA");
      check_true "captured without context" (b.Diag.ctx = None)
  | _ -> Alcotest.failf "expected 2 events, got %d" (List.length captured));
  (* Replay under a different context: the original ids must win. *)
  Diag.with_context "rB" (fun () -> Diag.replay captured);
  (match Diag.events () with
  | [ a; b ] ->
      check_true "replayed ctx verbatim" (a.Diag.ctx = Some "rA");
      check_true "replayed None stays None" (b.Diag.ctx = None)
  | evs -> Alcotest.failf "expected 2 replayed events, got %d" (List.length evs));
  Diag.clear_events ()

(* ------------------------------------------------------------------ *)
(* The service plane end-to-end. *)

let fig7_spec ?(capacity = 7200.) () =
  {
    Model_spec.workload =
      Model_spec.Onoff { frequency = 1.0; k = 1; on_current = 0.96 };
    capacity;
    c = 1.0;
    k = 0.0;
    delta = 300.;
    accuracy = None;
  }

let cdf_request ?(spec = fig7_spec ()) id =
  {
    Query.id;
    model = Some spec;
    payload = Query.Cdf { times = [| 5000.; 10000. |] };
    deadline_s = None;
  }

let admin_request id payload =
  { Query.id; model = None; payload; deadline_s = None }

let read_lines path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | line -> go (line :: acc)
        | exception End_of_file -> List.rev acc
      in
      go [])

let with_temp_files n f =
  let paths = List.init n (fun _ -> Filename.temp_file "batlife_obs" ".jsonl") in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun p -> try Sys.remove p with Sys_error _ -> ()) paths)
    (fun () -> f paths)

let ok_exn label r =
  match r.Query.result with
  | Ok result -> result
  | Error e -> Alcotest.failf "%s: %s (%s)" label e.Query.message e.Query.kind

(* One access-log line per request, each carrying the rid that the
   spans recorded during its evaluation were stamped with, and a
   trailing stats query that observes the batch it rode in with. *)
let test_service_access_log_and_stats () =
  with_temp_files 1 @@ fun paths ->
  let access_log = List.nth paths 0 in
  let obs = Obs.create ~access_log () in
  let svc = Service.create ~cache_capacity:4 ~obs () in
  Telemetry.enable ();
  Telemetry.reset ();
  Fun.protect
    ~finally:(fun () ->
      Telemetry.disable ();
      Telemetry.reset ();
      Obs.close obs)
    (fun () ->
      (* Batch 1: two queries, one model, one sweep (cache miss). *)
      List.iter
        (fun r -> ignore (ok_exn r.Query.r_id r))
        (Service.handle_batch svc [ cdf_request "a"; cdf_request "b" ]);
      (* Batch 2: a repeat query (cache hit) plus a trailing stats
         admin query that must see the whole history. *)
      let batch2 =
        Service.handle_batch svc
          [ cdf_request "c"; admin_request "s" Query.Server_stats ]
      in
      let stats =
        match batch2 with
        | [ _; s ] -> (
            match ok_exn "stats" s with
            | Query.Service_stats { stats } -> stats
            | _ -> Alcotest.fail "stats: expected a Service_stats result")
        | _ -> Alcotest.failf "expected 2 responses, got %d" (List.length batch2)
      in
      let str path j =
        Json.to_string ~field:(String.concat "." path)
          (List.fold_left (fun j f -> Json.member ~field:f j) j path)
      and num path j =
        Json.to_float ~field:(String.concat "." path)
          (List.fold_left (fun j f -> Json.member ~field:f j) j path)
      in
      Alcotest.(check string)
        "stats schema" "batlife.stats/1" (str [ "schema" ] stats);
      check_float ~eps:0. "three model queries aggregated" 3.
        (num [ "latency"; "cdf"; "count" ] stats);
      check_true "p50 populated" (num [ "latency"; "cdf"; "p50_s" ] stats > 0.);
      check_true "p99 >= p50"
        (num [ "latency"; "cdf"; "p99_s" ] stats
        >= num [ "latency"; "cdf"; "p50_s" ] stats);
      (* The streaming estimate must bracket the exact range: p50 can
         be off by at most the documented bound from a real sample, so
         it cannot exceed (1 + bound) * max. *)
      let bound = num [ "latency"; "rel_error_bound" ] stats in
      check_true "p99 within bound of max"
        (num [ "latency"; "cdf"; "p99_s" ] stats
        <= (1. +. bound) *. num [ "latency"; "cdf"; "max_s" ] stats);
      check_float ~eps:0. "one cache hit" 1. (num [ "cache"; "hits" ] stats);
      check_float ~eps:0. "one cache miss" 1. (num [ "cache"; "misses" ] stats);
      check_float ~eps:0. "hit rate" 0.5 (num [ "cache"; "hit_rate" ] stats);
      check_true "kernel touched-nnz populated"
        (num [ "kernel"; "touched_nnz" ] stats > 0.);
      check_true "in-flight sees its own batch"
        (num [ "requests"; "in_flight" ] stats >= 1.);
      (* Access log: one line per request, rids in arrival order. *)
      let lines = read_lines access_log in
      check_int "one access-log line per request" 4 (List.length lines);
      List.iteri
        (fun i line ->
          let j = Json.decode ~source:access_log line in
          Alcotest.(check string)
            "access schema" "batlife.access/1" (str [ "schema" ] j);
          Alcotest.(check string)
            (Printf.sprintf "rid of line %d" i)
            (Printf.sprintf "r%d" (i + 1))
            (str [ "rid" ] j))
        lines;
      (* Every span recorded during the batches carries a context made
         of rids that the access log attributes — request to span,
         end-to-end. *)
      let rids =
        List.map (fun l -> str [ "rid" ] (Json.decode l)) lines
      in
      let spans = (Telemetry.snapshot ()).Telemetry.snap_spans in
      check_true "spans were recorded" (spans <> []);
      List.iter
        (fun s ->
          match s.Telemetry.sp_ctx with
          | None ->
              Alcotest.failf "span %s has no request context"
                s.Telemetry.sp_name
          | Some ctx ->
              List.iter
                (fun rid ->
                  check_true
                    (Printf.sprintf "span %s ctx %s is a logged rid"
                       s.Telemetry.sp_name rid)
                    (List.mem rid rids))
                (String.split_on_char '+' ctx))
        spans)

let test_health_and_prometheus () =
  let svc = Service.create ~cache_capacity:4 () in
  ignore (ok_exn "warm" (Service.handle svc (cdf_request "warm")));
  (match ok_exn "health" (Service.handle svc (admin_request "h" Query.Health))
   with
  | Query.Health_report { status; uptime_s } ->
      Alcotest.(check string) "healthy" "ok" status;
      check_true "uptime non-negative" (uptime_s >= 0.)
  | _ -> Alcotest.fail "health: expected a Health_report result");
  match
    ok_exn "prometheus" (Service.handle svc (admin_request "p" Query.Prometheus))
  with
  | Query.Text { format; text } ->
      Alcotest.(check string) "format" "prometheus" format;
      check_true "up gauge" (contains text "batlife_up 1");
      check_true "request totals"
        (contains text "batlife_requests_total{kind=\"cdf\"} 1");
      check_true "latency summary"
        (contains text "batlife_request_duration_seconds{kind=\"cdf\",quantile=\"0.99\"}");
      check_true "cache counters" (contains text "batlife_cache_misses_total 1")
  | _ -> Alcotest.fail "prometheus: expected a Text result"

(* A zero threshold forces a slow-log entry; with telemetry enabled
   the entry carries the per-phase span breakdown. *)
let test_slow_log_phases () =
  with_temp_files 1 @@ fun paths ->
  let slow_log = List.nth paths 0 in
  let obs = Obs.create ~slow_log ~slow_threshold_s:0. () in
  let svc = Service.create ~cache_capacity:4 ~obs () in
  Telemetry.enable ();
  Telemetry.reset ();
  Fun.protect
    ~finally:(fun () ->
      Telemetry.disable ();
      Telemetry.reset ();
      Obs.close obs)
    (fun () ->
      ignore (ok_exn "slow" (Service.handle svc (cdf_request "slow")));
      match read_lines slow_log with
      | [ line ] ->
          let j = Json.decode ~source:slow_log line in
          Alcotest.(check string)
            "slow schema" "batlife.slow/1"
            (Json.to_string ~field:"schema" (Json.member ~field:"schema" j));
          Alcotest.(check string)
            "slow rid" "r1"
            (Json.to_string ~field:"rid" (Json.member ~field:"rid" j));
          let phases = Json.to_list ~field:"phases" (Json.member ~field:"phases" j) in
          check_true "per-phase breakdown present" (phases <> []);
          let names =
            List.map
              (fun p -> Json.to_string ~field:"name" (Json.member ~field:"name" p))
              phases
          in
          check_true "the shared flush is a phase"
            (List.mem "session.flush" names)
      | lines ->
          Alcotest.failf "expected exactly 1 slow-log line, got %d"
            (List.length lines))

(* The headline contract: running with the full plane on — access and
   slow logs, zero slow threshold, telemetry enabled — produces
   byte-identical response frames to a bare service. *)
let test_plane_on_off_identical () =
  let batches () =
    [
      [ cdf_request "a"; cdf_request "b" ];
      [ cdf_request ~spec:(fig7_spec ~capacity:6000. ()) "c" ];
      [ cdf_request "d" ];
    ]
  in
  let run svc =
    List.concat_map
      (fun batch ->
        List.map Query.response_to_line (Service.handle_batch svc batch))
      (batches ())
  in
  Telemetry.disable ();
  Telemetry.reset ();
  let off = run (Service.create ~cache_capacity:4 ()) in
  let on =
    with_temp_files 2 @@ fun paths ->
    let obs =
      Obs.create
        ~access_log:(List.nth paths 0)
        ~slow_log:(List.nth paths 1) ~slow_threshold_s:0. ()
    in
    Telemetry.enable ();
    Telemetry.reset ();
    Fun.protect
      ~finally:(fun () ->
        Telemetry.disable ();
        Telemetry.reset ();
        Obs.close obs)
      (fun () -> run (Service.create ~cache_capacity:4 ~obs ()))
  in
  check_int "same number of frames" (List.length off) (List.length on);
  List.iter2
    (fun a b -> Alcotest.(check string) "frame identical with plane on" a b)
    off on

let suite =
  [
    case "histogram: empty, NaN, underflow, overflow, reset"
      test_hist_empty_and_edges;
    case "histogram: state is O(buckets), fixed at creation"
      test_hist_state_bounded;
    prop_hist_quantile_bound;
    case "window: deterministic under a synthetic clock"
      test_window_synthetic_clock;
    case "window: no lost events under fork-join at jobs=1/2/4"
      test_window_forkjoin_hammer;
    case "telemetry spans carry the request context"
      test_span_context_stamping;
    case "diag capture/replay preserves contexts verbatim"
      test_diag_context_replay_verbatim;
    slow_case "service: access log rids, span attribution, stats snapshot"
      test_service_access_log_and_stats;
    case "service: health probe and Prometheus exposition"
      test_health_and_prometheus;
    case "service: forced slow-log entry with phase breakdown"
      test_slow_log_phases;
    slow_case "service: responses bitwise identical with plane on/off"
      test_plane_on_off_identical;
  ]
