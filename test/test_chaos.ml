(* The chaos layer: Fi site-registry semantics, CRC-64 integrity,
   fault-injected Atomic_io, checkpoint-v2 corruption detection and
   quarantine, pool section supervision, the transient-sweep
   escalation ladder, and budget clock skew — the unit-level half of
   what `bench --chaos-report` drives end to end. *)

open Helpers
open Batlife_numerics
open Batlife_battery
open Batlife_workload
open Batlife_ctmc
open Batlife_core
module Fault = Batlife_robust.Fault
module Fi = Batlife_robust.Fault.Fi

let tmp_path suffix =
  let path = Filename.temp_file "batlife_chaos" suffix in
  Sys.remove path;
  path

let is_parse = function Diag.Parse_error _ -> true | _ -> false
let is_breakdown = function Diag.Numerical_breakdown _ -> true | _ -> false
let is_budget = function Diag.Budget_exhausted _ -> true | _ -> false

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* ------------------------------------------------------------------ *)
(* Fi registry semantics                                               *)

let test_fi_window () =
  Fi.reset ();
  let s = Fi.site "test.alpha" in
  check_true "disarmed never fires" (not (Fi.fires s));
  check_true "disabled fast path" (not (Fi.enabled ()));
  Fi.arm ~after:2 ~count:2 "test.alpha";
  check_true "armed enables globally" (Fi.enabled ());
  let observed = ref [] in
  for _ = 1 to 6 do
    observed := Fi.fires s :: !observed
  done;
  check_true "fires exactly on consultations [after, after+count)"
    (List.rev !observed = [ false; false; true; true; false; false ]);
  check_int "hits counted while armed" 6 (Fi.hits "test.alpha");
  check_int "firings counted" 2 (Fi.fired "test.alpha");
  check_true "plan is listed"
    (List.mem ("test.alpha", 2, 2) (Fi.armed ()));
  Fi.reset ();
  check_true "reset disables" (not (Fi.enabled ()));
  check_true "reset disarms" (not (Fi.fires s));
  check_int "reset clears counters" 0 (Fi.hits "test.alpha")

let test_fi_inject () =
  Fi.reset ();
  let s = Fi.site "test.beta" in
  Fi.inject s;
  (* disarmed: no-op *)
  Fi.arm "test.beta";
  (match Fi.inject s with
  | () -> Alcotest.fail "armed inject must raise"
  | exception Fault.Injected name ->
      check_true "exception carries the site name" (name = "test.beta"));
  Fi.reset ();
  check_true "with_sites disarms on exit"
    (try
       Fault.with_sites
         [ ("test.beta", 0, 1) ]
         (fun () -> raise Exit)
     with Exit -> not (Fi.enabled ()))

(* ------------------------------------------------------------------ *)
(* CRC-64                                                              *)

let test_crc64 () =
  (* The CRC-64/XZ check value. *)
  check_true "digest of the standard test vector"
    (Crc64.digest "123456789" = 0x995DC9BBDF1939FAL);
  check_true "streaming update composes"
    (Crc64.update (Crc64.digest "12345") "6789" = Crc64.digest "123456789");
  check_true "empty digest is zero" (Crc64.digest "" = 0L);
  check_true "sensitive to a single bit"
    (Crc64.digest "123456788" <> Crc64.digest "123456789")

(* ------------------------------------------------------------------ *)
(* Atomic_io under injected IO failures                                *)

(* Atomic_io temp files are [.<basename>.<random>.tmp] next to the
   destination; after a failed write none may remain. *)
let no_litter path =
  let dir = Filename.dirname path in
  let prefix = "." ^ Filename.basename path ^ "." in
  Sys.readdir dir |> Array.to_list
  |> List.for_all (fun f ->
         not
           (Filename.check_suffix f ".tmp"
           && String.length f >= String.length prefix
           && String.sub f 0 (String.length prefix) = prefix))

let test_atomic_io_injected_failures () =
  let path = tmp_path ".txt" in
  Atomic_io.write_file ~path "old";
  List.iter
    (fun site ->
      Fault.with_sites
        [ (site, 0, 1) ]
        (fun () ->
          check_raises_diag (site ^ " is a structured parse error") is_parse
            (fun () -> Atomic_io.write_file ~path "new"));
      check_true (site ^ " leaves the destination untouched")
        (read_file path = "old");
      check_true (site ^ " leaves no temp litter") (no_litter path))
    [ "atomic_io.write_fail"; "atomic_io.rename_fail" ];
  (* fsync failures (file or directory) degrade durability, not
     correctness: the write itself must succeed, like the real-error
     path on filesystems without fsync. *)
  List.iter
    (fun site ->
      Fault.with_sites
        [ (site, 0, 1) ]
        (fun () -> Atomic_io.write_file ~path "new");
      check_true (site ^ " still lands the write") (read_file path = "new");
      Atomic_io.write_file ~path "old")
    [ "atomic_io.fsync_fail"; "atomic_io.dir_fsync_fail" ];
  Sys.remove path

(* ------------------------------------------------------------------ *)
(* Checkpoint v2: integrity footer, corruption classes, quarantine     *)

let sample_cdf () =
  Checkpoint.Cdf
    {
      Checkpoint.cdf_delta = 50.;
      cdf_accuracy = 1e-7;
      cdf_states = 3;
      cdf_nnz = 4;
      cdf_times = [| 10.; 20. |];
      cdf_progress =
        {
          Batlife_ctmc.Transient.sp_step = 1;
          sp_converged = false;
          sp_vector = [| 0.25; 0.25; 0.5 |];
          sp_values = [| [| 0.; 0.1 |] |];
          sp_skipped = 0.;
        };
    }

let test_checkpoint_torn_write_caught () =
  let path = tmp_path ".ckpt" in
  (* A short write that LANDS (truncation the rename discipline cannot
     prevent) must be caught by the integrity footer on load. *)
  Fault.with_sites
    [ ("atomic_io.short_write", 0, 1) ]
    (fun () -> Checkpoint.save ~path (sample_cdf ()));
  check_raises_diag "torn checkpoint detected" is_parse (fun () ->
      Checkpoint.load ~path);
  Sys.remove path

let test_checkpoint_injected_corruption () =
  let path = tmp_path ".ckpt" in
  List.iter
    (fun site ->
      Checkpoint.save ~path (sample_cdf ());
      Fault.with_sites
        [ (site, 0, 1) ]
        (fun () ->
          check_raises_diag (site ^ " detected on load") is_parse (fun () ->
              Checkpoint.load ~path));
      (* The file on disk was never touched: a clean reload works. *)
      match Checkpoint.load ~path with
      | Checkpoint.Cdf _ -> ()
      | _ -> Alcotest.fail "clean reload returned the wrong kind")
    [ "checkpoint.truncate"; "checkpoint.bitflip"; "checkpoint.version_skew" ];
  Sys.remove path

let test_checkpoint_quarantine () =
  let path = tmp_path ".ckpt" in
  Atomic_io.write_file ~path "complete garbage, no footer";
  let result, events = Diag.capture (fun () -> Checkpoint.load_for_resume ~path) in
  check_true "corrupt file reports a cold start" (result = None);
  check_true "file was quarantined"
    ((not (Sys.file_exists path)) && Sys.file_exists (path ^ ".corrupt"));
  check_true "quarantine is a fallback diagnostic"
    (List.exists
       (fun e -> e.Diag.fallback && e.Diag.origin = "Checkpoint")
       events);
  Sys.remove (path ^ ".corrupt");
  (* A missing file is a caller mistake, not corruption. *)
  check_raises_diag "missing resume file stays a hard error" is_parse
    (fun () -> Checkpoint.load_for_resume ~path)

let test_checkpoint_content_validation () =
  let path = tmp_path ".ckpt" in
  let mc rng died =
    Checkpoint.Montecarlo
      {
        Checkpoint.mc_seed = 7L;
        mc_target = 10;
        mc_done = 5;
        mc_censored = 0;
        mc_died = died;
        mc_rng = rng;
      }
  in
  Checkpoint.save ~path (mc [| 1L; 2L; 3L |] [ 1.5 ]);
  check_raises_diag "3-word rng state rejected" is_parse (fun () ->
      Checkpoint.load ~path);
  Checkpoint.save ~path (mc [| 0L; 0L; 0L; 0L |] [ 1.5 ]);
  check_raises_diag "all-zero rng state rejected" is_parse (fun () ->
      Checkpoint.load ~path);
  Checkpoint.save ~path (mc [| 1L; 2L; 3L; 4L |] [ Float.nan ]);
  check_raises_diag "non-finite lifetime rejected" is_parse (fun () ->
      Checkpoint.load ~path);
  Checkpoint.save ~path (mc [| 1L; 2L; 3L; 4L |] [ 1.5 ]);
  (match Checkpoint.load ~path with
  | Checkpoint.Montecarlo m ->
      check_true "valid payload still loads" (m.Checkpoint.mc_done = 5)
  | _ -> Alcotest.fail "wrong kind back");
  Sys.remove path

(* ------------------------------------------------------------------ *)
(* Corrupt-resume: quarantine then cold start, bitwise clean result    *)

let fig7_model () =
  Kibamrm.create
    ~workload:(Onoff.model ~frequency:1.0 ~k:1 ~on_current:0.96 ())
    ~battery:(Kibam.params ~capacity:7200. ~c:1. ~k:0.)

let small_times = [| 4000.; 8000. |]

let bits (c : Lifetime.curve) =
  Array.map Int64.bits_of_float c.Lifetime.probabilities

let test_corrupt_resume_cold_start () =
  let model = fig7_model () in
  let clean = Lifetime.cdf ~delta:100. ~times:small_times model in
  let path = tmp_path ".ckpt" in
  Atomic_io.write_file ~path "{\"schema\":\"batlife.ckpt/3\",\"kind\":ga";
  let resumed, events =
    Diag.capture (fun () ->
        Lifetime.cdf_resumable ~resume:path ~delta:100. ~times:small_times
          model)
  in
  check_true "cold start reproduces the clean curve bitwise"
    (bits resumed = bits clean);
  check_true "quarantine event recorded"
    (List.exists (fun e -> e.Diag.origin = "Checkpoint" && e.Diag.fallback)
       events);
  check_true "corrupt file set aside" (Sys.file_exists (path ^ ".corrupt"));
  Sys.remove (path ^ ".corrupt")

(* ------------------------------------------------------------------ *)
(* Pool supervision                                                    *)

let c_supervised = Telemetry.counter "pool.supervised_retries"

let supervision_at_jobs jobs =
  let pool = Pool.get ~jobs in
  let n = 64 in
  let chunks = [| (0, 16); (16, 32); (32, 48); (48, 64) |] in
  let reference = Array.init n (fun i -> float_of_int (i * i)) in
  let dst = Array.make n 0. in
  let fill ~lo ~hi =
    for i = lo to hi - 1 do
      dst.(i) <- float_of_int (i * i)
    done
  in
  Pool.set_section_retries 2;
  Fun.protect
    ~finally:(fun () -> Pool.set_section_retries 0)
    (fun () ->
      let before = Telemetry.value c_supervised in
      let (), events =
        Diag.capture (fun () ->
            (* after:0 so the plan bites at every job count — a
               sequential pool runs the whole section as one share and
               consults the site just once per (re)execution. *)
            Fault.with_sites
              [ ("pool.crash", 0, 2) ]
              (fun () -> Pool.run_chunks ~supervise:true pool chunks fill))
      in
      check_true
        (Printf.sprintf "jobs=%d: retried result is bitwise identical" jobs)
        (dst = reference);
      check_int
        (Printf.sprintf "jobs=%d: retries counted" jobs)
        2
        (Telemetry.value c_supervised - before);
      check_int
        (Printf.sprintf "jobs=%d: exactly one supervision note" jobs)
        1
        (List.length
           (List.filter
              (fun e -> e.Diag.origin = "Pool" && e.Diag.fallback)
              events)))

let test_pool_supervision () = List.iter supervision_at_jobs [ 1; 2; 4 ]

let test_pool_supervision_exhausted () =
  let pool = Pool.get ~jobs:2 in
  let dst = Array.make 8 0. in
  Pool.set_section_retries 1;
  Fun.protect
    ~finally:(fun () -> Pool.set_section_retries 0)
    (fun () ->
      match
        Fault.with_sites
          [ ("pool.crash", 0, 50) ]
          (fun () ->
            Pool.run_chunks ~supervise:true pool
              [| (0, 4); (4, 8) |]
              (fun ~lo ~hi ->
                for i = lo to hi - 1 do
                  dst.(i) <- 1.
                done))
      with
      | () -> Alcotest.fail "persistent crash must propagate"
      | exception Fault.Injected _ -> ())

let test_pool_supervision_never_retries_cancelled () =
  let pool = Pool.get ~jobs:1 in
  Pool.set_section_retries 5;
  Fun.protect
    ~finally:(fun () -> Pool.set_section_retries 0)
    (fun () ->
      let result, events =
        Diag.capture (fun () ->
            match
              Pool.run ~supervise:true pool (fun _ ->
                  Diag.fail
                    (Diag.Cancelled { what = "test"; progress = "none" }))
            with
            | () -> `Completed
            | exception Diag.Error (Diag.Cancelled _) -> `Cancelled)
      in
      check_true "cancellation propagates unretried" (result = `Cancelled);
      check_int "no supervision note for cancellation" 0
        (List.length (List.filter (fun e -> e.Diag.fallback) events)))

(* ------------------------------------------------------------------ *)
(* Transient kernel injection and the escalation ladder                *)

let verify_events events =
  List.filter
    (fun e -> e.Diag.origin = "Lifetime.verify" && e.Diag.fallback)
    events

let test_kernel_injection_recovers_bitwise () =
  let model = fig7_model () in
  let clean = Lifetime.cdf ~delta:100. ~times:small_times model in
  List.iter
    (fun site ->
      let curve, events =
        Diag.capture (fun () ->
            Fault.with_sites
              [ (site, 3, 1) ]
              (fun () -> Lifetime.cdf ~delta:100. ~times:small_times model))
      in
      check_true (site ^ ": rung-1 recovery is bitwise identical")
        (bits curve = bits clean);
      check_int (site ^ ": one escalation note") 1
        (List.length (verify_events events)))
    [ "transient.step_nan"; "transient.step_overflow" ]

let test_kernel_injection_rung2_close () =
  let model = fig7_model () in
  let clean = Lifetime.cdf ~delta:100. ~times:small_times model in
  (* Two firings: the first attempt and the bitwise-preserving oracle
     rung both fail, the tightened-accuracy rung recovers.  Its curve
     may legitimately differ in the last ulps — only closeness is
     guaranteed. *)
  let curve, events =
    Diag.capture (fun () ->
        Fault.with_sites
          [ ("transient.step_nan", 3, 2) ]
          (fun () -> Lifetime.cdf ~delta:100. ~times:small_times model))
  in
  Array.iteri
    (fun i p ->
      check_float ~eps:1e-9
        (Printf.sprintf "rung-2 point %d close to clean" i)
        clean.Lifetime.probabilities.(i)
        p)
    curve.Lifetime.probabilities;
  check_int "two escalation notes" 2 (List.length (verify_events events))

let test_kernel_injection_persistent_fails_structured () =
  let model = fig7_model () in
  check_raises_diag "persistent NaN injection is a structured breakdown"
    is_breakdown (fun () ->
      Fault.with_sites
        [ ("transient.step_nan", 0, 1_000_000) ]
        (fun () -> Lifetime.cdf ~delta:100. ~times:small_times model))

let test_sweep_stats_expose_audit () =
  let model = fig7_model () in
  let d = Discretized.build ~delta:100. model in
  let g = d.Discretized.generator in
  let alpha = d.Discretized.alpha in
  let _, stats =
    Transient.measure_sweep g ~alpha ~times:small_times
      ~measure:Batlife_numerics.Fvec.sum
  in
  check_true "mass residual audited and small"
    (stats.Transient.mass_residual >= 0.
    && stats.Transient.mass_residual <= 1e-6);
  check_true "Fox-Glynn defect audited against accuracy"
    (stats.Transient.fg_defect >= 0. && stats.Transient.fg_defect <= 1e-12)

(* ------------------------------------------------------------------ *)
(* Budget clock skew                                                   *)

let test_budget_clock_skew () =
  (* Only deadline-carrying budgets consult the site. *)
  let unbounded = Budget.create () in
  Fault.with_sites
    [ ("budget.clock_skew", 0, 10) ]
    (fun () ->
      Budget.check ~what:"t" unbounded;
      let b = Budget.create ~wall_s:1e6 () in
      check_raises_diag "skewed clock exhausts the deadline" is_budget
        (fun () -> Budget.check ~what:"t" b))

(* ------------------------------------------------------------------ *)
(* Json: finite-float projection (qcheck round-trip)                   *)

let test_json_finite_float_roundtrip =
  qcheck "finite floats round-trip through to_finite_float"
    (float_array_arb 16)
    (fun xs ->
      let j = Json.Arr (Array.to_list (Array.map Json.of_float xs)) in
      let back =
        Json.decode (Json.encode j)
        |> Json.to_list ~field:"xs"
        |> List.map (Json.to_finite_float ~field:"xs")
        |> Array.of_list
      in
      Array.for_all2
        (fun a b -> Int64.bits_of_float a = Int64.bits_of_float b)
        xs back)

let test_json_finite_float_rejects () =
  List.iter
    (fun x ->
      check_true "to_float accepts non-finite"
        (Json.to_float ~field:"x" (Json.of_float x) = x
        || Float.is_nan (Json.to_float ~field:"x" (Json.of_float x)));
      check_raises_diag "to_finite_float rejects non-finite" is_parse
        (fun () -> Json.to_finite_float ~field:"x" (Json.of_float x)))
    [ Float.nan; Float.infinity; Float.neg_infinity ]

let suite =
  [
    case "fi window semantics" test_fi_window;
    case "fi inject & scoped arming" test_fi_inject;
    case "crc64 check vector & streaming" test_crc64;
    case "atomic_io injected failures" test_atomic_io_injected_failures;
    case "checkpoint: torn write caught by footer"
      test_checkpoint_torn_write_caught;
    case "checkpoint: injected corruption classes"
      test_checkpoint_injected_corruption;
    case "checkpoint: quarantine on resume" test_checkpoint_quarantine;
    case "checkpoint: content validation" test_checkpoint_content_validation;
    slow_case "corrupt resume cold-starts bitwise"
      test_corrupt_resume_cold_start;
    case "pool supervision at jobs=1/2/4" test_pool_supervision;
    case "pool supervision: retries exhausted"
      test_pool_supervision_exhausted;
    case "pool supervision: cancellation not retried"
      test_pool_supervision_never_retries_cancelled;
    slow_case "kernel injection: rung-1 recovery bitwise"
      test_kernel_injection_recovers_bitwise;
    slow_case "kernel injection: rung-2 recovery close"
      test_kernel_injection_rung2_close;
    slow_case "kernel injection: persistent fault fails structured"
      test_kernel_injection_persistent_fails_structured;
    case "sweep stats expose the a-posteriori audit"
      test_sweep_stats_expose_audit;
    case "budget clock skew" test_budget_clock_skew;
    test_json_finite_float_roundtrip;
    case "to_finite_float rejects non-finite" test_json_finite_float_rejects;
  ]
