(* Shared assertion helpers for the test suite. *)

let check_float ?(eps = 1e-9) name expected actual =
  Alcotest.(check (float eps)) name expected actual

let check_close ?(rel = 1e-9) name expected actual =
  let eps = rel *. Float.max (Float.abs expected) 1. in
  Alcotest.(check (float eps)) name expected actual

let check_true name condition = Alcotest.(check bool) name true condition

let check_int = Alcotest.(check int)

let check_raises_invalid name f =
  match f () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.failf "%s: expected Invalid_argument" name

let check_raises_diag name classify f =
  match f () with
  | exception Batlife_numerics.Diag.Error e ->
      if not (classify e) then
        Alcotest.failf "%s: wrong error class: %s" name
          (Batlife_numerics.Diag.error_to_string e)
  | _ -> Alcotest.failf "%s: expected Diag.Error" name

let is_invalid_model = function
  | Batlife_numerics.Diag.Invalid_model _ -> true
  | _ -> false

let case name f = Alcotest.test_case name `Quick f

let slow_case name f = Alcotest.test_case name `Slow f

let qcheck ?(count = 200) name arbitrary property =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count ~name arbitrary property)

(* A deterministic float array generator for property tests. *)
let float_array_arb n =
  QCheck.(array_of_size (Gen.return n) (float_range (-100.) 100.))

let pos_float_arb lo hi = QCheck.float_range lo hi
