(* The telemetry layer: gating, span nesting and self-time accounting,
   deterministic merged span order under the parallel fan-out, counter
   atomicity across domains, histogram bucket edges, and the headline
   contract that enabling telemetry never changes a result bit. *)

open Helpers
open Batlife_numerics
open Batlife_ctmc
open Batlife_battery
open Batlife_workload
open Batlife_core

(* Every test leaves the collector as it found it at suite entry:
   disabled and empty (other suites assert on freshly-reset counters,
   so leftover state would not break them, but a stray enabled flag
   would silently start recording spans everywhere). *)
let with_telemetry f =
  Telemetry.enable ();
  Telemetry.reset ();
  Fun.protect
    ~finally:(fun () ->
      Telemetry.disable ();
      Telemetry.reset ())
    f

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0

(* Enough work for a nonzero monotonic-clock reading. *)
let burn () =
  let acc = ref 0. in
  for i = 1 to 2000 do
    acc := !acc +. sqrt (float_of_int i)
  done;
  ignore (Sys.opaque_identity !acc)

(* --- Gating ----------------------------------------------------------- *)

let test_disabled_is_passthrough () =
  Telemetry.disable ();
  Telemetry.reset ();
  let c = Telemetry.counter "test.gating.counter" in
  let g = Telemetry.gauge "test.gating.gauge" in
  let h = Telemetry.histogram ~buckets:[| 1.; 10. |] "test.gating.hist" in
  let v =
    Telemetry.with_span "test.gating.span" (fun () ->
        Telemetry.incr c;
        Telemetry.set_gauge g 42.;
        Telemetry.observe h 5.;
        7)
  in
  check_int "with_span passes the result through" 7 v;
  (* Counters are the always-on work-accounting backbone... *)
  check_int "counter counts while disabled" 1 (Telemetry.value c);
  (* ...but gauges, histograms and spans are gated. *)
  check_float ~eps:0. "gauge not set while disabled" 0.
    (Telemetry.gauge_value g);
  let snap = Telemetry.snapshot () in
  check_true "no span recorded while disabled"
    (List.for_all
       (fun s -> s.Telemetry.sp_name <> "test.gating.span")
       snap.Telemetry.snap_spans);
  let hs =
    List.find
      (fun hs -> hs.Telemetry.hs_name = "test.gating.hist")
      snap.Telemetry.snap_histograms
  in
  check_int "no observation while disabled" 0 hs.Telemetry.hs_total

(* --- Span nesting ----------------------------------------------------- *)

let test_span_nesting_and_self_time () =
  with_telemetry @@ fun () ->
  let (), spans =
    Telemetry.capture (fun () ->
        Telemetry.with_span "outer" (fun () ->
            Telemetry.with_span "inner.a" burn;
            Telemetry.with_span "inner.b" burn))
  in
  match spans with
  | [ a; b; o ] ->
      (* Spans are recorded at completion: children first. *)
      Alcotest.(check string) "first completed" "inner.a" a.Telemetry.sp_name;
      Alcotest.(check string) "second completed" "inner.b" b.Telemetry.sp_name;
      Alcotest.(check string) "parent last" "outer" o.Telemetry.sp_name;
      check_int "parent depth" 0 o.Telemetry.sp_depth;
      check_int "child depth" 1 a.Telemetry.sp_depth;
      check_int "child depth" 1 b.Telemetry.sp_depth;
      let children = Int64.add a.Telemetry.sp_dur_ns b.Telemetry.sp_dur_ns in
      check_true "parent spans its children"
        (o.Telemetry.sp_dur_ns >= children);
      check_true "self = duration - children"
        (Int64.add o.Telemetry.sp_self_ns children = o.Telemetry.sp_dur_ns);
      check_true "leaf self-time is its whole duration"
        (a.Telemetry.sp_self_ns = a.Telemetry.sp_dur_ns)
  | spans ->
      Alcotest.failf "expected 3 spans, got %d" (List.length spans)

let test_capture_replay_roundtrip () =
  with_telemetry @@ fun () ->
  let names = [ "rt.a"; "rt.b"; "rt.c" ] in
  let (), spans =
    Telemetry.capture (fun () ->
        List.iter (fun n -> Telemetry.with_span n burn) names)
  in
  Alcotest.(check (list string)) "captured in completion order" names
    (List.map (fun s -> s.Telemetry.sp_name) spans);
  let before = Telemetry.snapshot () in
  check_true "capture kept the sink clean"
    (List.for_all
       (fun s -> not (List.mem s.Telemetry.sp_name names))
       before.Telemetry.snap_spans);
  Telemetry.replay spans;
  let after = Telemetry.snapshot () in
  let replayed =
    List.filter_map
      (fun s ->
        if List.mem s.Telemetry.sp_name names then Some s.Telemetry.sp_name
        else None)
      after.Telemetry.snap_spans
  in
  Alcotest.(check (list string)) "replayed in order" names replayed;
  (* The roll-up aggregates by name. *)
  let rows = Telemetry.rollup spans in
  check_int "one row per name" (List.length names) (List.length rows);
  List.iter (fun r -> check_int r.Telemetry.r_name 1 r.Telemetry.r_count) rows

(* --- Deterministic merged order under the experiment fan-out ---------- *)

let merged_par_names jobs =
  let opts = Solver_opts.make ~jobs ~telemetry:true () in
  let inputs = List.init 8 Fun.id in
  let results, spans =
    Telemetry.capture (fun () ->
        Batlife_experiments.Par.map ~opts
          (fun i ->
            Telemetry.with_span
              (Printf.sprintf "par.task.%d" i)
              (fun () ->
                Telemetry.with_span "par.sub" burn;
                i * i))
          inputs)
  in
  check_true "results in input order"
    (results = List.map (fun i -> i * i) inputs);
  List.map (fun s -> s.Telemetry.sp_name) spans

let test_par_merged_span_order () =
  with_telemetry @@ fun () ->
  let expected =
    List.concat_map
      (fun i -> [ "par.sub"; Printf.sprintf "par.task.%d" i ])
      (List.init 8 Fun.id)
  in
  List.iter
    (fun jobs ->
      Alcotest.(check (list string))
        (Printf.sprintf "merged span order is input order at jobs=%d" jobs)
        expected (merged_par_names jobs))
    [ 1; 2; 4 ]

(* --- Counter atomicity ------------------------------------------------ *)

let test_counter_atomic_under_forkjoin () =
  let c = Telemetry.counter "test.hammer" in
  let per_share = 20_000 in
  List.iter
    (fun jobs ->
      Telemetry.reset_counter c;
      let pool = Pool.get ~jobs in
      Pool.run pool (fun _ ->
          for _ = 1 to per_share do
            Telemetry.incr c
          done);
      check_int
        (Printf.sprintf "no lost increments at jobs=%d" jobs)
        (Pool.size pool * per_share)
        (Telemetry.value c))
    [ 1; 2; 4 ]

(* --- Histogram bucket edges ------------------------------------------- *)

let find_hist name =
  List.find
    (fun hs -> hs.Telemetry.hs_name = name)
    (Telemetry.snapshot ()).Telemetry.snap_histograms

let test_histogram_bucket_edges () =
  with_telemetry @@ fun () ->
  let h = Telemetry.histogram ~buckets:[| 1.; 2.; 4. |] "test.hist.edges" in
  (* An observation lands in the first bucket with v <= bound; bounds
     themselves are inclusive, anything past the last bound (and NaN)
     overflows. *)
  List.iter (Telemetry.observe h)
    [ 0.5; 1.0; 1.5; 2.0; 2.5; 4.0; 4.5; Float.nan ];
  let hs = find_hist "test.hist.edges" in
  Alcotest.(check (array int)) "bucket counts" [| 2; 2; 2; 2 |]
    (Array.of_list (Array.to_list hs.Telemetry.hs_counts));
  check_int "total" 8 hs.Telemetry.hs_total;
  (* Sum and max on a NaN-free histogram. *)
  let h2 = Telemetry.histogram ~buckets:[| 10. |] "test.hist.sum" in
  Telemetry.observe_int h2 3;
  Telemetry.observe_int h2 4;
  let hs2 = find_hist "test.hist.sum" in
  check_float ~eps:0. "sum" 7. hs2.Telemetry.hs_sum;
  check_float ~eps:0. "max" 4. hs2.Telemetry.hs_max;
  check_int "observe_int counts" 2 hs2.Telemetry.hs_counts.(0)

(* --- Exporters -------------------------------------------------------- *)

let test_exporters_mention_recorded_data () =
  with_telemetry @@ fun () ->
  let (), spans =
    Telemetry.capture (fun () -> Telemetry.with_span "export.span" burn)
  in
  Telemetry.replay spans;
  Telemetry.incr (Telemetry.counter "test.export.counter");
  let snap = Telemetry.snapshot () in
  let metrics = Telemetry.metrics_json snap in
  check_true "metrics schema tag" (contains metrics "batlife.metrics/1");
  check_true "metrics has the counter" (contains metrics "test.export.counter");
  check_true "metrics has the span roll-up" (contains metrics "export.span");
  let trace = Telemetry.trace_json snap in
  check_true "trace has traceEvents" (contains trace "\"traceEvents\"");
  check_true "trace has the span" (contains trace "export.span");
  check_true "trace events are complete events" (contains trace "\"ph\": \"X\"")

(* --- Telemetry never changes results ---------------------------------- *)

let fig7_model () =
  Kibamrm.create
    ~workload:(Onoff.model ~frequency:1.0 ~k:1 ~on_current:0.96 ())
    ~battery:(Kibam.params ~capacity:7200. ~c:1. ~k:0.)

let fig2_battery_model () =
  Kibamrm.create
    ~workload:(Onoff.model ~frequency:1.0 ~k:1 ~on_current:0.96 ())
    ~battery:(Kibam.params ~capacity:7200. ~c:0.625 ~k:4.5e-5)

let curve_bits (c : Lifetime.curve) =
  Array.map Int64.bits_of_float c.Lifetime.probabilities

let check_on_off_identical ~delta model =
  let times = [| 4000.; 8000.; 12000. |] in
  Telemetry.disable ();
  Telemetry.reset ();
  let solve ~telemetry jobs =
    Lifetime.cdf ~opts:(Solver_opts.make ~jobs ~telemetry ()) ~delta ~times
      model
  in
  let reference = curve_bits (solve ~telemetry:false 1) in
  Fun.protect
    ~finally:(fun () ->
      Telemetry.disable ();
      Telemetry.reset ())
    (fun () ->
      List.iter
        (fun jobs ->
          let bits = curve_bits (solve ~telemetry:true jobs) in
          check_true
            (Printf.sprintf "telemetry on at jobs=%d is bitwise identical"
               jobs)
            (bits = reference))
        [ 1; 2; 4 ])

let test_on_off_identical_fig7 () =
  check_on_off_identical ~delta:100. (fig7_model ())

let test_on_off_identical_fig2_battery () =
  check_on_off_identical ~delta:200. (fig2_battery_model ())

(* Random-generator property: recording spans and histograms must not
   perturb a single bit of a transient solve. *)
let prop_telemetry_preserves_bits =
  qcheck ~count:50 "telemetry on/off bitwise identical (random generators)"
    QCheck.(
      pair
        (list_of_size (Gen.int_range 1 8)
           (triple (int_range 0 3) (int_range 0 3) (float_range 0.05 4.)))
        (pos_float_arb 0.01 5.))
    (fun (entries, t) ->
      let rates =
        List.filter_map
          (fun (i, j, r) -> if i <> j then Some (i, j, r) else None)
          entries
      in
      let g = Generator.of_rates ~n:4 rates in
      let alpha = [| 0.4; 0.3; 0.2; 0.1 |] in
      Telemetry.disable ();
      let off = Transient.solve g ~alpha ~t in
      Telemetry.enable ();
      let on =
        Fun.protect
          ~finally:(fun () ->
            Telemetry.disable ();
            Telemetry.reset ())
          (fun () -> Transient.solve g ~alpha ~t)
      in
      Array.for_all2
        (fun a b -> Int64.bits_of_float a = Int64.bits_of_float b)
        off on)

let suite =
  [
    case "disabled probes are pass-through" test_disabled_is_passthrough;
    case "span nesting, depth and self-time" test_span_nesting_and_self_time;
    case "capture/replay round trip" test_capture_replay_roundtrip;
    case "merged span order deterministic at jobs=1/2/4"
      test_par_merged_span_order;
    case "counter atomic under fork-join hammer"
      test_counter_atomic_under_forkjoin;
    case "histogram bucket edges" test_histogram_bucket_edges;
    case "exporters mention recorded data" test_exporters_mention_recorded_data;
    case "on/off bitwise identical (fig-7 model)" test_on_off_identical_fig7;
    case "on/off bitwise identical (fig-2 battery)"
      test_on_off_identical_fig2_battery;
    prop_telemetry_preserves_bits;
  ]
