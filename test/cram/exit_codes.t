The exit-code contract is documented in three places: the EXIT STATUS
section of `batlife --help`, the README table, and DESIGN.md 5c.  This
test pins the --help rendering so the documented table cannot drift
from the binary.

  $ batlife --help 2>/dev/null | sed -n '/EXIT STATUS/,/ENVIRONMENT/p' \
  >   | grep -E '^ *(3|4|5|6|7|8|9|130) ' | sed 's/^ *//'
  3   a model or parameter set failed validation.
  4   malformed external input (trace, checkpoint, query frame).
  5   an iterative method failed to converge.
  6   numerical breakdown (NaN/Inf contamination, mass loss).
  7   a wall-clock deadline or work budget ran out.
  8   cooperative cancellation was requested (first Ctrl-C).
  9   the query service shed the request under overload (retryable).
  130 hard interrupt (second Ctrl-C, immediate abort).

And the codes are live, not just documented.  An invalid model exits 3:

  $ batlife kibam --capacity=-5 --load 1 2>/dev/null
  [3]

A malformed trace file exits 4:

  $ printf 'not,a,trace\n' > bad.csv
  $ batlife trace --csv bad.csv 2>/dev/null
  [4]

An exhausted work budget exits 7:

  $ batlife lifetime --model simple --capacity 800 -c 0.625 -k 0.162 \
  >   --delta 25 --horizon 30 --points 5 --max-products 3 2>/dev/null
  [7]

Deterministic mid-run cancellation exits 8:

  $ batlife lifetime --model simple --capacity 800 -c 0.625 -k 0.162 \
  >   --delta 25 --horizon 30 --points 5 --cancel-after 2 2>/dev/null
  [8]
