The observability plane of `batlife serve`: per-request access log,
threshold-gated slow-query log, admin scrape queries and the
`batlife stats` client.

Drive a session with the full plane on.  --max-batch 1 makes each
frame its own batch, so the repeat query is a cache hit and the
trailing admin queries observe the model work that preceded them; a
zero slow-query threshold forces a slow-log entry for every request,
and --trace-out enables telemetry so those entries carry the
per-phase span breakdown.

  $ batlife serve --max-batch 1 --access-log access.jsonl \
  >   --slow-log slow.jsonl --slow-query-ms 0 \
  >   --trace-out trace.json <<'EOF' > responses.ndjson
  > {"v":"batlife.query/1","id":"a","model":{"workload":{"kind":"onoff","frequency":1.0,"k":1,"on_current":0.96},"battery":{"capacity":7200,"c":1.0,"k":0.0},"delta":100},"query":{"kind":"cdf","times":[5000,10000]}}
  > {"v":"batlife.query/1","id":"b","model":{"workload":{"kind":"onoff","frequency":1.0,"k":1,"on_current":0.96},"battery":{"capacity":7200,"c":1.0,"k":0.0},"delta":100},"query":{"kind":"cdf","times":[5000,10000]}}
  > {"v":"batlife.query/1","id":"s","query":{"kind":"server_stats"}}
  > {"v":"batlife.query/1","id":"m","query":{"kind":"prometheus"}}
  > {"v":"batlife.query/1","id":"h","query":{"kind":"health"}}
  > EOF
  batlife: wrote trace to trace.json

Every frame was answered, admin ones included:

  $ wc -l < responses.ndjson
  5
  $ grep -c '"ok":true' responses.ndjson
  5

The stats snapshot is versioned and saw both CDF queries and the
cache hit the repeat produced:

  $ grep '"id":"s"' responses.ndjson | grep -c '"schema":"batlife.stats/1"'
  1
  $ grep '"id":"s"' responses.ndjson | grep -c '"hits":1'
  1

The Prometheus exposition and the health probe:

  $ grep '"id":"m"' responses.ndjson | grep -c 'batlife_up 1'
  1
  $ grep '"id":"h"' responses.ndjson | grep -c '"status":"ok"'
  1

One access-log line per request — rids r1..r5 in arrival order, the
repeat query marked as a cache hit:

  $ wc -l < access.jsonl
  5
  $ grep -c '"schema":"batlife.access/1"' access.jsonl
  5
  $ grep -c '"rid":"r1"' access.jsonl
  1
  $ grep -c '"rid":"r5"' access.jsonl
  1
  $ grep '"rid":"r2"' access.jsonl | grep -c '"cache":"hit"'
  1

The zero threshold forced slow-log entries, each carrying the phase
breakdown of its request's evaluation:

  $ grep -c '"schema":"batlife.slow/1"' slow.jsonl
  5
  $ grep '"rid":"r1"' slow.jsonl | grep -c '"name":"session.flush"'
  1

The Chrome trace tags every span with the request id it served:

  $ grep -q '"rid": "r1"' trace.json && echo tagged
  tagged

The same surfaces over a unix socket, scraped with `batlife stats`:

  $ sh -c '
  >   batlife serve --socket obs.sock --max-connections 3 &
  >   pid=$!
  >   for i in $(seq 1 100); do [ -S obs.sock ] && break; sleep 0.05; done
  >   batlife stats --socket obs.sock --probe health | grep -o "\"status\":\"ok\""
  >   batlife stats --socket obs.sock --probe stats | grep -o "\"schema\":\"batlife.stats/1\""
  >   batlife stats --socket obs.sock --probe prometheus | grep "^batlife_up "
  >   wait $pid'
  "status":"ok"
  "schema":"batlife.stats/1"
  batlife_up 1

Probing a dead socket is a structured parse error (exit-4 class), not
a hang or a stack trace:

  $ batlife stats --socket missing.sock --probe health
  batlife: error: parse error: missing.sock, line 0: cannot connect: No such file or directory
  [4]
