The query service speaks line-delimited JSON (batlife.query/1) over
stdin/stdout.  Pipe a batch of frames through it: two queries against
the same model (answered from one interned session), a stats query
against a second model, and one malformed frame.

  $ batlife serve <<'EOF' > responses.ndjson
  > {"v":"batlife.query/1","id":"cdf","model":{"workload":{"kind":"onoff","frequency":1.0,"k":1,"on_current":0.96},"battery":{"capacity":7200,"c":1.0,"k":0.0},"delta":100},"query":{"kind":"cdf","times":[5000,10000,15000]}}
  > {"v":"batlife.query/1","id":"p50","model":{"workload":{"kind":"onoff","frequency":1.0,"k":1,"on_current":0.96},"battery":{"capacity":7200,"c":1.0,"k":0.0},"delta":100},"query":{"kind":"percentiles","ps":[0.5],"horizon":20000,"points":40}}
  > {"v":"batlife.query/1","id":"stats","model":{"workload":{"kind":"simple"},"battery":{"capacity":7200,"c":0.625,"k":4.5e-5},"delta":200},"query":{"kind":"stats"}}
  > not json at all
  > EOF

One response line per request, in request order:

  $ wc -l < responses.ndjson
  4

Every well-formed request succeeded; the malformed frame got a
structured protocol error (parse_error, the exit-4 class) instead of
killing the server:

  $ grep -c '"ok":true' responses.ndjson
  3
  $ grep -c '"kind":"parse_error","code":4' responses.ndjson
  1

The model stats identify the interned model:

  $ grep '"id":"stats"' responses.ndjson | grep -c '"states":1080'
  1

The median lifetime of the fig-7 on/off model lands between its 10 and
15 ks CDF samples:

  $ grep '"id":"p50"' responses.ndjson | grep -c '"kind":"quantiles"'
  1

A deadline of a few nanoseconds cannot finish a sweep; the response is
the structured budget_exhausted error (exit-7 class), and the server
keeps serving:

  $ batlife serve <<'EOF' | grep -c '"kind":"budget_exhausted","code":7'
  > {"v":"batlife.query/1","id":"tight","model":{"workload":{"kind":"simple"},"battery":{"capacity":7200,"c":0.625,"k":4.5e-5},"delta":50},"query":{"kind":"cdf","times":[5000]},"deadline_s":1e-9}
  > EOF
  1

Admission control: with a one-frame batch and a zero pending queue, a
four-frame burst admits the first request and sheds the other three
with the structured overloaded error (exit-9 class, retryable) — each
shed frame still gets a well-formed response carrying a retry hint:

  $ batlife serve --max-batch 1 --queue 0 <<'EOF' > shed.ndjson
  > {"v":"batlife.query/1","id":"h0","query":{"kind":"health"}}
  > {"v":"batlife.query/1","id":"h1","query":{"kind":"health"}}
  > {"v":"batlife.query/1","id":"h2","query":{"kind":"health"}}
  > {"v":"batlife.query/1","id":"h3","query":{"kind":"health"}}
  > EOF
  $ wc -l < shed.ndjson
  4
  $ grep -c '"ok":true' shed.ndjson
  1
  $ grep -c '"kind":"overloaded","code":9' shed.ndjson
  3
  $ grep -c 'retry_after_s' shed.ndjson
  3

An unsupported protocol version is refused per-frame:

  $ batlife serve <<'EOF' | grep -c 'unsupported protocol version'
  > {"v":"batlife.query/9","id":"x","model":{},"query":{"kind":"stats"}}
  > EOF
  1
