The analytic KiBaM under the paper's Table 1 loads.  Continuous
0.96 A with the paper's calibrated k:

  $ batlife kibam --capacity 7200 -c 0.625 -k 4.5e-5 --load 0.96
  lifetime: 5468.59 time units (91.14 minutes if seconds)
  average load: 0.96
  ideal-battery lifetime at average load: 7500

The 1 Hz square wave lasts much longer (recovery effect), and the
0.2 Hz one exactly as long (frequency independence):

  $ batlife kibam --capacity 7200 -c 0.625 -k 4.5e-5 --square-wave 1
  lifetime: 12176.3 time units (202.94 minutes if seconds)
  average load: 0.48
  ideal-battery lifetime at average load: 15000

  $ batlife kibam --capacity 7200 -c 0.625 -k 4.5e-5 --square-wave 0.2
  lifetime: 12175.9 time units (202.93 minutes if seconds)
  average load: 0.48
  ideal-battery lifetime at average load: 15000

A tiny lifetime-distribution query (stderr carries the diagnostics,
stdout the curve):

  $ batlife lifetime --model simple --capacity 800 -c 0.625 -k 0.162 \
  >   --delta 25 --horizon 30 --points 5 2>/dev/null
  6	0.031102
  12	0.454096
  18	0.895086
  24	0.992080
  30	0.999700

Unknown experiments are rejected with the list of valid ids:

  $ batlife experiment nonsense 2>&1 | head -1
  batlife: unknown experiment "nonsense"; valid ids: table1, fig2, fig7, fig8, fig9, fig10, fig11, ext_erlang_k, ext_empty_recovery, ext_frequency_sweep, ext_richardson, ext_charge_profile, ext_sensitivity

Trace-driven workflow: replay a measured CSV and fit a model from it:

  $ cat > trace.csv <<END
  > # time,current
  > 0,0.96
  > 100,0
  > 200,0.96
  > 300,0
  > 400,0.96
  > 500,0
  > END
  $ batlife trace --csv trace.csv --capacity 7200 -c 0.625 -k 4.5e-5 \
  >   --horizon 20000 --points 4 2>/dev/null
  trace replay: battery survives the recorded trace
  estimated 2-level workload model:
    level 0: current 0 (occupancy 0.400)
    level 1: current 0.96 (occupancy 0.600)
  5000	0.000000
  10000	0.590482
  15000	0.999965
  20000	1.000000

Structured failure paths.  Invalid KiBaM parameters are all reported
in one diagnostic (not fix-one-rerun) and map to the invalid-model
exit code:

  $ batlife kibam --capacity 0 -c 1.5 --diffusion=-2e-5 --load 0.96
  batlife: error: invalid model (KiBaM parameters): KiBaM parameters: capacity = 0 must be positive (total charge C); KiBaM parameters: c = 1.5 must lie in (0, 1] (available-charge fraction); KiBaM parameters: k = -2e-05 must be non-negative (diffusion rate)
  [3]

k = 0 with c < 1 strands the bound charge: refused under the default
strict mode, downgraded to a warning under --lenient:

  $ batlife kibam --capacity 7200 -c 0.625 -k 0 --load 0.96
  batlife: error: invalid model (KiBaM parameters): pedantic finding: k = 0 with c = 0.625 < 1 leaves the bound well (38% of the charge) permanently unreachable; use c = 1 for an ideal battery or k > 0 for a true KiBaM; pass --lenient to downgrade pedantic findings to warnings
  [3]

  $ batlife kibam --capacity 7200 -c 0.625 -k 0 --lenient --load 0.96 2>/dev/null
  lifetime: 4687.5 time units (78.12 minutes if seconds)
  average load: 0.96
  ideal-battery lifetime at average load: 7500

  $ batlife kibam --capacity 7200 -c 0.625 -k 0 --lenient --load 0.96 2>&1 >/dev/null
  batlife: warning: pedantic finding: k = 0 with c = 0.625 < 1 leaves the bound well (38% of the charge) permanently unreachable; use c = 1 for an ideal battery or k > 0 for a true KiBaM

A malformed trace file is a parse error naming the file, line and
field, with its own exit code:

  $ cat > bad.csv <<END
  > 0,1
  > frog,2
  > END
  $ batlife trace --csv bad.csv
  batlife: error: parse error: bad.csv, line 2, field time: cannot read "frog" as a number
  [4]

  $ batlife trace --csv does-not-exist.csv
  batlife: error: parse error: does-not-exist.csv, line 0: does-not-exist.csv: No such file or directory
  [4]

Telemetry: --metrics-out / --trace-out emit JSON documents and
--profile prints a per-phase table on stderr.  Timings vary run to
run, so only the stable structure is checked:

  $ batlife lifetime --model simple --capacity 800 -c 0.625 -k 0.162 \
  >   --delta 25 --horizon 30 --points 5 \
  >   --profile --metrics-out metrics.json --trace-out trace.json \
  >   2>profile.err >/dev/null
  $ grep -c '"schema": "batlife.metrics/1"' metrics.json
  1
  $ grep -q '"transient.sweeps"' metrics.json
  $ grep -q '"traceEvents"' trace.json
  $ grep -q '"ph": "X"' trace.json
  $ grep -q '^phase' profile.err
  $ grep -q 'session.flush' profile.err
  $ grep -q 'counter/gauge' profile.err

Without the flags nothing telemetry-related is printed:

  $ batlife lifetime --model simple --capacity 800 -c 0.625 -k 0.162 \
  >   --delta 25 --horizon 30 --points 5 2>&1 >/dev/null | grep -c phase
  0
  [1]

Resilience.  A work budget stops the sweep at a step boundary with a
structured error and its own exit code, and --checkpoint flushes a
final snapshot before dying; resuming from it completes the run and
reproduces the uninterrupted output bitwise:

  $ batlife lifetime --model simple --capacity 800 -c 0.625 -k 0.162 \
  >   --delta 25 --horizon 30 --points 5 --checkpoint full.ckpt \
  >   2>full.err >full.out
  $ batlife lifetime --model simple --capacity 800 -c 0.625 -k 0.162 \
  >   --delta 25 --horizon 30 --points 5 --checkpoint part.ckpt \
  >   --checkpoint-interval 5 --max-products 20
  batlife: error: budget exhausted: Transient.multi_measure_sweep: vector-matrix product budget (limit 20)
  [7]
  $ head -n 1 part.ckpt | grep -c '"schema":"batlife.ckpt/3"'
  1
  $ grep -c '^batlife.ckpt.footer crc64=0x[0-9a-f]\{16\} length=[0-9]*$' part.ckpt
  1
  $ batlife lifetime --model simple --capacity 800 -c 0.625 -k 0.162 \
  >   --delta 25 --horizon 30 --points 5 --checkpoint part.ckpt \
  >   --resume part.ckpt 2>resumed.err >resumed.out
  $ cmp full.out resumed.out
  $ cmp full.err resumed.err

Resuming against a different discretisation is rejected as an invalid
model (the checkpoint carries a fingerprint):

  $ batlife lifetime --model simple --capacity 800 -c 0.625 -k 0.162 \
  >   --delta 50 --horizon 30 --points 5 --resume part.ckpt
  batlife: error: invalid model (checkpoint part.ckpt): checkpoint delta 25 differs from this run's 50; checkpoint has 819 states but this model expands to 231; checkpoint has 2706 nonzeros but this model has 723
  [3]

Cooperative cancellation (--cancel-after is the deterministic stand-in
for Ctrl-C) exits with its own code and names the partial progress:

  $ batlife lifetime --model simple --capacity 800 -c 0.625 -k 0.162 \
  >   --delta 25 --horizon 30 --points 5 --cancel-after 10
  batlife: error: cancelled: Transient.multi_measure_sweep (1 sweeps, 10 products completed)
  [8]

An interrupted experiment batch records completed figures in a
completion map and skips them on the next run:

  $ batlife experiment fig2 -o results --checkpoint batch.ckpt >/dev/null 2>&1
  $ cat batch.ckpt
  {"schema":"batlife.ckpt/3","kind":"experiments","completed":["fig2"]}
  batlife.ckpt.footer crc64=0xc4ee1e1dc4439cff length=70
  $ batlife experiment fig2 -o results --checkpoint batch.ckpt 2>/dev/null
  experiment fig2: already completed (checkpoint), skipping

A corrupted checkpoint under --resume is quarantined (renamed to
*.corrupt, reported as a note) and the run restarts cold instead of
aborting; its output still matches the uninterrupted run bitwise:

  $ echo '{"schema":"batlife.ckpt/3","kind":garbage' > part.ckpt
  $ batlife lifetime --model simple --capacity 800 -c 0.625 -k 0.162 \
  >   --delta 25 --horizon 30 --points 5 --resume part.ckpt \
  >   2>quarantine.err >quarantine.out
  $ cmp full.out quarantine.out
  $ grep -c 'batlife: note: Checkpoint: quarantined corrupt checkpoint' quarantine.err
  1
  $ test -f part.ckpt.corrupt && test ! -f part.ckpt

Pointing --resume at a file that does not exist is a caller mistake,
not corruption: it stays a hard structured parse error with its
stable exit code (nothing to quarantine):

  $ batlife lifetime --model simple --capacity 800 -c 0.625 -k 0.162 \
  >   --delta 25 --horizon 30 --points 5 --resume never-written.ckpt \
  >   2>missing.err >/dev/null
  [4]
  $ head -1 missing.err
  batlife: error: parse error: never-written.ckpt, line 0: never-written.ckpt: No such file or directory
