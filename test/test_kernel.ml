(* The adaptive-support stepping kernel: accuracy contract against the
   exact full-support oracle, the threshold = 0 bitwise-identity
   degeneration at every job count, the work/window statistics, and
   checkpoint/resume of an adaptive sweep. *)

open Helpers
open Batlife_numerics
open Batlife_ctmc
open Batlife_battery
open Batlife_workload
open Batlife_core

let onoff_model ~frequency ~capacity ~c ~k =
  Kibamrm.create
    ~workload:(Onoff.model ~frequency ~k:1 ~on_current:0.96 ())
    ~battery:(Kibam.params ~capacity ~c ~k)

let fig7_model () = onoff_model ~frequency:1.0 ~capacity:7200. ~c:1. ~k:0.

let oracle_opts ?jobs () = Solver_opts.make ?jobs ~adaptive_support:false ()

let bits (c : Lifetime.curve) =
  Array.map Int64.bits_of_float c.Lifetime.probabilities

let is_budget = function Diag.Budget_exhausted _ -> true | _ -> false

(* The documented deviation bound: the adaptive pruner's skipped mass
   is hard-capped at accuracy / 2, and any linear measure of the
   iterate (a CDF value in particular) deviates from the exact
   full-support result by at most that skipped mass. *)
let prop_adaptive_matches_oracle =
  qcheck ~count:15 "adaptive CDF within skipped-mass bound of the oracle"
    QCheck.(
      triple
        (pos_float_arb 2000. 9000.)
        (pos_float_arb 0.5 0.95)
        (pos_float_arb 0.02 0.2))
    (fun (capacity, c, frequency) ->
      let model = onoff_model ~frequency ~capacity ~c ~k:4.5e-5 in
      let delta = 300. and times = [| 3000.; 9000. |] in
      let adaptive = Lifetime.cdf ~delta ~times model in
      let oracle = Lifetime.cdf ~opts:(oracle_opts ()) ~delta ~times model in
      let tol = Solver_opts.default.Solver_opts.accuracy in
      Array.for_all2
        (fun a o -> Float.abs (a -. o) <= tol)
        adaptive.Lifetime.probabilities oracle.Lifetime.probabilities)

(* support_threshold = Some 0. prunes only exact zeros: the window
   still shrinks, but every arithmetic operation that contributes to
   the result is performed on identical values in an identical order,
   so the curve is bitwise identical to the exact kernel's — at every
   job count (the gather is bitwise job-count-independent on top). *)
let test_threshold_zero_bitwise () =
  let model = fig7_model () in
  let delta = 100. and times = [| 4000.; 9000.; 14000. |] in
  let reference =
    bits (Lifetime.cdf ~opts:(oracle_opts ~jobs:1 ()) ~delta ~times model)
  in
  List.iter
    (fun jobs ->
      let adaptive =
        Lifetime.cdf
          ~opts:(Solver_opts.make ~jobs ~support_threshold:0. ())
          ~delta ~times model
      in
      check_true
        (Printf.sprintf "threshold 0 == exact kernel bitwise at jobs %d" jobs)
        (bits adaptive = reference))
    [ 1; 2; 4 ]

(* The default adaptive sweep must actually skip work, report a sane
   final window, and keep its skipped mass inside the budget. *)
let test_adaptive_stats_and_work () =
  let d = Discretized.build ~delta:100. (fig7_model ()) in
  let g = d.Discretized.generator in
  let alpha = d.Discretized.alpha in
  let times = [| 4000.; 12000. |] in
  let n = Discretized.n_states d in
  let adaptive, astats =
    Transient.measure_sweep g ~alpha ~times ~measure:Fvec.sum
  in
  let oracle, ostats =
    Transient.measure_sweep ~opts:(oracle_opts ()) g ~alpha ~times
      ~measure:Fvec.sum
  in
  Array.iteri
    (fun i a ->
      check_float ~eps:1e-12 "mass conserved under pruning" oracle.(i) a)
    adaptive;
  let full_nnz =
    Sparse.nnz (Generator.uniformised g ~q:(Transient.resolve_rate g))
  in
  check_int "oracle touches every nonzero every step"
    (ostats.Transient.iterations * full_nnz)
    ostats.Transient.touched_nnz;
  check_true "adaptive touched strictly less"
    (astats.Transient.touched_nnz < ostats.Transient.touched_nnz);
  check_true "adaptive rows strictly less"
    (astats.Transient.active_rows < ostats.Transient.active_rows);
  check_true "oracle window is full support"
    (ostats.Transient.support_lo = 0 && ostats.Transient.support_hi = n);
  check_true "adaptive window well-formed"
    (astats.Transient.support_lo >= 0
    && astats.Transient.support_lo <= astats.Transient.support_hi
    && astats.Transient.support_hi <= n);
  check_true "oracle skipped nothing" (ostats.Transient.skipped_mass = 0.);
  check_true "skipped mass within the accuracy/2 budget"
    (astats.Transient.skipped_mass >= 0.
    && astats.Transient.skipped_mass
       <= Solver_opts.default.Solver_opts.accuracy /. 2.)

(* Entries outside the adaptive window are exactly 0., so an
   index-summing measure needs no window awareness: summing the whole
   vector and summing only inside the reported window agree exactly. *)
let test_outside_window_exact_zero () =
  let d = Discretized.build ~delta:100. (fig7_model ()) in
  let g = d.Discretized.generator in
  let alpha = d.Discretized.alpha in
  let witness = ref true in
  let measure v =
    let lo, hi = Fvec.nonzero_extent v in
    let n = Fvec.length v in
    (if Fvec.sum_range v ~lo:0 ~hi:lo <> 0.
        || Fvec.sum_range v ~lo:hi ~hi:n <> 0.
     then witness := false);
    Fvec.sum v
  in
  ignore (Transient.measure_sweep g ~alpha ~times:[| 8000. |] ~measure);
  check_true "iterate exactly zero outside its nonzero extent" !witness

(* An explicit threshold so absurd that the cap would be unreachable
   scales the cap with it (documented); a negative or non-finite one is
   rejected up front. *)
let test_threshold_validation () =
  check_raises_invalid "negative threshold" (fun () ->
      ignore (Solver_opts.make ~support_threshold:(-1e-9) ()));
  check_raises_invalid "NaN threshold" (fun () ->
      ignore (Solver_opts.make ~support_threshold:Float.nan ()))

(* Checkpoint/resume of an adaptive sweep: the snapshot carries the
   skipped-mass tally and the stored vector's nonzero extent IS the
   live window, so a resumed run is bitwise identical to an
   uninterrupted one. *)
let test_adaptive_resume_bitwise () =
  let model = fig7_model () in
  let delta = 100. and times = [| 4000.; 8000.; 12000. |] in
  let reference = Lifetime.cdf ~delta ~times model in
  let path = Filename.temp_file "batlife_kernel" ".ckpt" in
  Sys.remove path;
  check_raises_diag "budget interrupts the adaptive sweep" is_budget
    (fun () ->
      Budget.with_ambient
        (Budget.create ~max_products:40 ())
        (fun () ->
          ignore
            (Lifetime.cdf_resumable ~checkpoint:(path, 5) ~delta ~times model)));
  check_true "interrupt flushed a checkpoint" (Sys.file_exists path);
  let resumed = Lifetime.cdf_resumable ~resume:path ~delta ~times model in
  check_true "resumed adaptive run == uninterrupted bitwise"
    (bits resumed = bits reference);
  check_int "full iteration count after resume" reference.Lifetime.iterations
    resumed.Lifetime.iterations;
  Sys.remove path

let suite =
  [
    prop_adaptive_matches_oracle;
    case "threshold 0 is bitwise exact at jobs 1/2/4"
      test_threshold_zero_bitwise;
    case "adaptive stats: less work, sane window, budgeted skip"
      test_adaptive_stats_and_work;
    case "iterate exactly zero outside the window"
      test_outside_window_exact_zero;
    case "support threshold validation" test_threshold_validation;
    case "adaptive checkpoint/resume bitwise" test_adaptive_resume_bitwise;
  ]
