open Batlife_numerics
open Batlife_ctmc
open Helpers

(* 2-state chain 0 <-> 1 with rates a, b: closed form
   pi_0(t) = b/(a+b) + (pi_0(0) - b/(a+b)) e^{-(a+b)t}. *)
let two_state_closed_form ~a ~b ~p0 t =
  let s = a +. b in
  (b /. s) +. ((p0 -. (b /. s)) *. exp (-.s *. t))

let test_two_state_closed_form () =
  let a = 2. and b = 0.5 in
  let g = Generator.of_rates ~n:2 [ (0, 1, a); (1, 0, b) ] in
  List.iter
    (fun t ->
      let pi = Transient.solve g ~alpha:[| 1.; 0. |] ~t in
      check_float ~eps:1e-10
        (Printf.sprintf "pi_0(%g)" t)
        (two_state_closed_form ~a ~b ~p0:1. t)
        pi.(0);
      check_float ~eps:1e-12 "mass" 1. (Vector.sum pi))
    [ 0.; 0.1; 1.; 5.; 50. ]

let test_t_zero () =
  let g = Generator.of_rates ~n:3 [ (0, 1, 1.); (1, 2, 1.); (2, 0, 1.) ] in
  let pi = Transient.solve g ~alpha:[| 0.; 1.; 0. |] ~t:0. in
  check_float "stays put" 1. pi.(1)

let random_generator entries =
  let rates =
    List.filter_map
      (fun (i, j, r) -> if i <> j then Some (i, j, r) else None)
      entries
  in
  Generator.of_rates ~n:4 rates

let prop_matches_expm =
  qcheck ~count:100 "uniformisation matches dense matrix exponential"
    QCheck.(
      pair
        (list_of_size (Gen.int_range 2 12)
           (triple (int_range 0 3) (int_range 0 3) (float_range 0.05 4.)))
        (pos_float_arb 0.01 3.))
    (fun (entries, t) ->
      let g = random_generator entries in
      let expm_qt =
        Dense.expm (Dense.scale t (Sparse.to_dense (Generator.matrix g)))
      in
      let alpha = [| 0.25; 0.25; 0.25; 0.25 |] in
      let via_expm = Dense.vecmat alpha expm_qt in
      let via_unif =
        Transient.solve ~opts:(Solver_opts.make ~accuracy:1e-14 ()) g ~alpha ~t
      in
      Vector.approx_equal ~tol:1e-9 via_expm via_unif)

let test_measure_sweep_matches_solve () =
  let g =
    Generator.of_rates ~n:3 [ (0, 1, 1.5); (1, 2, 0.7); (2, 0, 0.2) ]
  in
  let alpha = [| 1.; 0.; 0. |] in
  let times = [| 0.3; 1.; 2.5; 7. |] in
  let measure pi = Fvec.get pi 2 in
  let results, stats = Transient.measure_sweep g ~alpha ~times ~measure in
  check_true "iterations positive" (stats.Transient.iterations > 0);
  Array.iteri
    (fun i t ->
      let pi = Transient.solve g ~alpha ~t in
      check_float ~eps:1e-10 (Printf.sprintf "t=%g" t) pi.(2) results.(i))
    times

let test_measure_sweep_unsorted_times () =
  let g = Generator.of_rates ~n:2 [ (0, 1, 1.) ] in
  let alpha = [| 1.; 0. |] in
  let results, _ =
    Transient.measure_sweep g ~alpha ~times:[| 5.; 0.5 |]
      ~measure:(fun pi -> Fvec.get pi 1)
  in
  check_true "monotone measure" (results.(0) > results.(1))

let test_convergence_detection () =
  (* An absorbing chain: after absorption the vector is stationary and
     the sweep should stop early. *)
  let g = Generator.of_rates ~n:2 [ (0, 1, 10.) ] in
  let alpha = [| 1.; 0. |] in
  let _, stats =
    Transient.measure_sweep g ~alpha ~times:[| 1000. |]
      ~measure:(fun pi -> Fvec.get pi 1)
  in
  match stats.Transient.converged_at with
  | Some at -> check_true "stopped early" (at < 2000)
  | None -> Alcotest.fail "expected early convergence"

let test_distribution_sweep () =
  let g = Generator.of_rates ~n:2 [ (0, 1, 2.); (1, 0, 1.) ] in
  let alpha = [| 1.; 0. |] in
  let times = [| 0.5; 2. |] in
  let dists, _ = Transient.distribution_sweep g ~alpha ~times in
  Array.iteri
    (fun i t ->
      let direct = Transient.solve g ~alpha ~t in
      check_true
        (Printf.sprintf "dist at %g" t)
        (Vector.approx_equal ~tol:1e-10 direct dists.(i)))
    times

let test_absorbing_mass_monotone () =
  let g = Generator.of_rates ~n:3 [ (0, 1, 1.); (1, 2, 2.) ] in
  let alpha = [| 1.; 0.; 0. |] in
  let times = Array.init 20 (fun i -> 0.25 *. float_of_int (i + 1)) in
  let results, _ =
    Transient.measure_sweep g ~alpha ~times ~measure:(fun pi -> Fvec.get pi 2)
  in
  for i = 1 to Array.length results - 1 do
    check_true "monotone" (results.(i) >= results.(i - 1) -. 1e-12)
  done

let test_validation () =
  let g = Generator.of_rates ~n:2 [ (0, 1, 1.) ] in
  check_raises_invalid "alpha length" (fun () ->
      ignore (Transient.solve g ~alpha:[| 1. |] ~t:1.))

(* Regression: a bad time grid is a structured Invalid_model error
   (not a bare Invalid_argument), consistently across every sweep
   entry point, with all violations collected. *)
let test_times_validation () =
  let g = Generator.of_rates ~n:2 [ (0, 1, 1.) ] in
  let alpha = [| 1.; 0. |] in
  check_raises_diag "negative time" is_invalid_model (fun () ->
      ignore (Transient.solve g ~alpha ~t:(-1.)));
  check_raises_diag "NaN time in measure_sweep" is_invalid_model (fun () ->
      ignore
        (Transient.measure_sweep g ~alpha
           ~times:[| 1.; Float.nan |]
           ~measure:(fun pi -> Fvec.get pi 1)));
  check_raises_diag "negative time in multi_measure_sweep" is_invalid_model
    (fun () ->
      ignore
        (Transient.multi_measure_sweep g ~alpha
           ~times:[| 1.; -2. |]
           ~measures:[| (fun pi -> Fvec.get pi 1) |]));
  check_raises_diag "infinite time in distribution_sweep" is_invalid_model
    (fun () ->
      ignore
        (Transient.distribution_sweep g ~alpha
           ~times:[| Float.infinity |]));
  (* All offending entries are reported in one error. *)
  (match
     Transient.measure_sweep g ~alpha
       ~times:[| -1.; Float.nan; 2. |]
       ~measure:(fun pi -> Fvec.get pi 1)
   with
  | exception Diag.Error (Diag.Invalid_model { violations; _ }) ->
      check_int "both violations collected" 2 (List.length violations)
  | _ -> Alcotest.fail "expected Invalid_model")

let test_expected_hitting_mass () =
  let g = Generator.of_rates ~n:2 [ (0, 1, 1.) ] in
  let m =
    Transient.expected_hitting_mass g ~alpha:[| 1.; 0. |] ~states:[ 1 ] ~t:3.
  in
  check_float ~eps:1e-10 "absorbed mass" (1. -. exp (-3.)) m

let test_multi_measure_matches_single () =
  let g =
    Generator.of_rates ~n:3 [ (0, 1, 1.5); (1, 2, 0.7); (2, 0, 0.2) ]
  in
  let alpha = [| 1.; 0.; 0. |] in
  let times = [| 0.3; 1.; 2.5; 7. |] in
  let measures =
    [| (fun pi -> Fvec.get pi 0); (fun pi -> Fvec.get pi 2); (fun pi -> Fvec.get pi 0 +. Fvec.get pi 1) |]
  in
  let batched, stats = Transient.multi_measure_sweep g ~alpha ~times ~measures in
  check_true "iterations positive" (stats.Transient.iterations > 0);
  Array.iteri
    (fun j measure ->
      let single, _ = Transient.measure_sweep g ~alpha ~times ~measure in
      Array.iteri
        (fun i t ->
          check_float ~eps:1e-14
            (Printf.sprintf "measure %d at t=%g" j t)
            single.(i)
            batched.(j).(i))
        times)
    measures

let test_multi_measure_counts_one_sweep () =
  let g = Generator.of_rates ~n:2 [ (0, 1, 1.); (1, 0, 0.5) ] in
  let alpha = [| 1.; 0. |] in
  let times = [| 0.5; 1.; 2. |] in
  let measures = [| (fun pi -> Fvec.get pi 0); (fun pi -> Fvec.get pi 1) |] in
  let c_sweeps = Telemetry.counter "transient.sweeps"
  and c_products = Telemetry.counter "transient.products" in
  Telemetry.reset_counter c_sweeps;
  Telemetry.reset_counter c_products;
  let _, stats = Transient.multi_measure_sweep g ~alpha ~times ~measures in
  check_int "one sweep" 1 (Telemetry.value c_sweeps);
  check_int "products = iterations" stats.Transient.iterations
    (Telemetry.value c_products)

let test_supplied_buffers_and_windows () =
  let g = Generator.of_rates ~n:3 [ (0, 1, 1.); (1, 2, 0.5) ] in
  let alpha = [| 1.; 0.; 0. |] in
  let times = [| 0.7; 3. |] in
  let measure pi = Fvec.get pi 2 in
  let plain, _ = Transient.measure_sweep g ~alpha ~times ~measure in
  let q = Transient.resolve_rate g in
  let windows =
    Array.map
      (fun t ->
        Poisson.weights
          ~accuracy:Solver_opts.default.Solver_opts.accuracy
          (q *. t))
      times
  in
  let buffers = (Fvec.create 3, Fvec.create 3) in
  let reused, _ =
    Transient.measure_sweep ~windows ~buffers g ~alpha ~times ~measure
  in
  Array.iteri
    (fun i _ -> check_float ~eps:0. "identical with cached windows"
        plain.(i) reused.(i))
    times;
  check_raises_invalid "window length mismatch" (fun () ->
      ignore
        (Transient.measure_sweep
           ~windows:[| windows.(0) |]
           g ~alpha ~times ~measure));
  check_raises_invalid "buffer length mismatch" (fun () ->
      ignore
        (Transient.measure_sweep
           ~buffers:(Fvec.create 2, Fvec.create 3)
           g ~alpha ~times ~measure))

let suite =
  [
    case "two-state closed form" test_two_state_closed_form;
    case "t = 0" test_t_zero;
    prop_matches_expm;
    case "measure sweep matches solve" test_measure_sweep_matches_solve;
    case "measure sweep with unsorted times" test_measure_sweep_unsorted_times;
    case "convergence detection" test_convergence_detection;
    case "distribution sweep" test_distribution_sweep;
    case "absorbing mass monotone" test_absorbing_mass_monotone;
    case "validation" test_validation;
    case "time-grid validation is structured" test_times_validation;
    case "multi-measure matches single sweeps" test_multi_measure_matches_single;
    case "multi-measure costs one sweep" test_multi_measure_counts_one_sweep;
    case "supplied buffers and windows" test_supplied_buffers_and_windows;
    case "expected hitting mass" test_expected_hitting_mass;
  ]
