(* The lifetime-query service: the wire codec must round-trip every
   representable frame and never raise on garbage, the fingerprint
   cache must make repeat queries free of Q* constructions and kernel
   builds (asserted through the always-on telemetry counters), batches
   against one model must share one sweep, per-request deadlines must
   surface as structured budget errors, and the fd server must answer
   every line in order. *)

open Helpers
module Telemetry = Batlife_numerics.Telemetry
module Model_spec = Batlife_service.Model_spec
module Query = Batlife_service.Query
module Service = Batlife_service.Service
module Cache = Batlife_service.Cache
module Server = Batlife_service.Server

(* ------------------------------------------------------------------ *)
(* Generators.  Floats are built as m * 2^e so every generated value
   is a finite double that the %.17g codec reproduces bit-exactly. *)

let gen_float =
  QCheck.Gen.(
    map2
      (fun m e -> Float.ldexp (float_of_int m) e)
      (int_range (-1_000_000) 1_000_000)
      (int_range (-20) 20))

let gen_pos_float = QCheck.Gen.map (fun x -> Float.abs x +. 1.) gen_float
let gen_name = QCheck.Gen.(string_size ~gen:(char_range 'a' 'z') (int_range 1 6))

let gen_workload =
  QCheck.Gen.(
    frequency
      [
        (2, return Model_spec.Simple);
        (2, return Model_spec.Burst);
        ( 3,
          map2
            (fun frequency k ->
              Model_spec.Onoff { frequency; k; on_current = 0.96 })
            gen_pos_float (int_range 1 4) );
        ( 1,
          let* names = list_size (int_range 1 3) gen_name in
          let* currents = list_size (return (List.length names)) gen_float in
          let states = List.combine names currents in
          let* rates = list_size (return (List.length names)) gen_pos_float in
          let transitions =
            List.map2 (fun (a, _) r -> (a, fst (List.hd states), r)) states
              rates
          in
          return
            (Model_spec.Custom
               { states; transitions; initial = fst (List.hd states) }) );
      ])

let gen_spec =
  QCheck.Gen.(
    let* workload = gen_workload in
    let* capacity = gen_pos_float in
    let* c = gen_pos_float in
    let* k = gen_float in
    let* delta = gen_pos_float in
    let* accuracy = opt gen_pos_float in
    return { Model_spec.workload; capacity; c; k; delta; accuracy })

let gen_measure =
  QCheck.Gen.(
    frequency
      [
        (2, return Query.Expected_charge);
        (2, return Query.Mode_marginal);
        (2, return Query.Charge_marginal);
        ( 1,
          map2
            (fun mode min_charge -> Query.Joint { mode; min_charge })
            (int_range 0 3) gen_float );
      ])

let gen_float_array =
  QCheck.Gen.(map Array.of_list (list_size (int_range 0 5) gen_float))

let gen_payload =
  QCheck.Gen.(
    frequency
      [
        (3, map (fun times -> Query.Cdf { times }) gen_float_array);
        ( 2,
          map2
            (fun time measures -> Query.Measures { time; measures })
            gen_float
            (list_size (int_range 0 4) gen_measure) );
        ( 2,
          map3
            (fun ps horizon points -> Query.Percentiles { ps; horizon; points })
            gen_float_array gen_pos_float (int_range 2 40) );
        (1, return Query.Stats);
      ])

let gen_admin_payload =
  QCheck.Gen.(
    frequency
      [
        (1, return Query.Server_stats);
        (1, return Query.Prometheus);
        (1, return Query.Health);
      ])

let gen_request =
  QCheck.Gen.(
    let* id = string_printable in
    let* deadline_s = opt gen_pos_float in
    let* admin = frequency [ (5, return false); (1, return true) ] in
    if admin then
      let* payload = gen_admin_payload in
      (* Admin frames may also carry a model; both round-trip. *)
      let* model = opt gen_spec in
      return { Query.id; model; payload; deadline_s }
    else
      let* model = gen_spec in
      let* payload = gen_payload in
      return { Query.id; model = Some model; payload; deadline_s })

let gen_result =
  QCheck.Gen.(
    frequency
      [
        ( 2,
          map2
            (fun times probabilities -> Query.Curve { times; probabilities })
            gen_float_array gen_float_array );
        ( 2,
          map2
            (fun time values -> Query.Per_time { time; values })
            gen_float
            (list_size (int_range 0 3) (pair gen_name gen_float_array)) );
        ( 2,
          map2
            (fun ps values -> Query.Quantiles { ps; values })
            gen_float_array gen_float_array );
        ( 1,
          let* states = int_range 1 10_000 in
          let* nnz = int_range 1 100_000 in
          let* unif_rate = gen_pos_float in
          let* kernel =
            opt
              (let* k_touched_nnz = int_range 0 1_000_000 in
               let* k_active_rows = int_range 0 1_000_000 in
               let* k_support_lo = int_range 0 5_000 in
               let* k_support_hi = int_range 0 10_000 in
               let* k_skipped_mass = gen_pos_float in
               return
                 {
                   Query.k_touched_nnz;
                   k_active_rows;
                   k_support_lo;
                   k_support_hi;
                   k_skipped_mass;
                 })
          in
          return
            (Query.Model_stats
               {
                 states;
                 nnz;
                 unif_rate;
                 fingerprint = "deadbeefdeadbeef";
                 kernel;
               }) );
      ])

let gen_response =
  QCheck.Gen.(
    let* r_id = string_printable in
    let* cache = oneof [ return None; return (Some "hit"); return (Some "miss") ] in
    let* result =
      frequency
        [
          (3, map Result.ok gen_result);
          ( 1,
            map3
              (fun kind message retry_after_s ->
                Error { Query.kind; code = 4; message; retry_after_s })
              gen_name string_printable (opt gen_pos_float) );
        ]
    in
    return { Query.r_id; cache; result })

(* ------------------------------------------------------------------ *)
(* Codec round-trips. *)

let request_roundtrip =
  qcheck ~count:300 "request codec round-trips"
    (QCheck.make ~print:Query.request_to_line gen_request)
    (fun r ->
      match Query.request_of_line (Query.request_to_line r) with
      | Ok r' -> r' = r
      | Error e -> QCheck.Test.fail_reportf "decode failed: %s" e.Query.message)

let response_roundtrip =
  qcheck ~count:300 "response codec round-trips"
    (QCheck.make ~print:Query.response_to_line gen_response)
    (fun r ->
      match Query.response_of_line (Query.response_to_line r) with
      | Ok r' -> r' = r
      | Error e -> QCheck.Test.fail_reportf "decode failed: %s" e.Query.message)

let decoder_never_raises =
  qcheck ~count:500 "request decoder never raises" QCheck.string (fun s ->
      match Query.request_of_line s with Ok _ | Error _ -> true)

(* Malformed frames come back as structured parse errors carrying the
   exit-4 code, never as exceptions. *)
let test_malformed_frames () =
  let expect_parse_error name line =
    match Query.request_of_line line with
    | Ok _ -> Alcotest.failf "%s: decoded a malformed frame" name
    | Error e ->
        check_int (name ^ ": code") 4 e.Query.code;
        check_true (name ^ ": kind") (e.Query.kind = "parse_error")
  in
  expect_parse_error "empty" "";
  expect_parse_error "not json" "not json at all";
  expect_parse_error "wrong type" "[1,2,3]";
  expect_parse_error "missing fields" "{}";
  expect_parse_error "bad version"
    {|{"v":"batlife.query/9","id":"x","model":{},"query":{"kind":"stats"}}|};
  expect_parse_error "unknown query kind"
    {|{"v":"batlife.query/1","id":"x","model":{"workload":{"kind":"simple"},"battery":{"capacity":7200,"c":1,"k":0},"delta":300},"query":{"kind":"nope"}}|};
  expect_parse_error "ill-typed times"
    {|{"v":"batlife.query/1","id":"x","model":{"workload":{"kind":"simple"},"battery":{"capacity":7200,"c":1,"k":0},"delta":300},"query":{"kind":"cdf","times":"soon"}}|}

(* ------------------------------------------------------------------ *)
(* The service proper. *)

let fig7_spec ?(capacity = 7200.) () =
  {
    Model_spec.workload =
      Model_spec.Onoff { frequency = 1.0; k = 1; on_current = 0.96 };
    capacity;
    c = 1.0;
    k = 0.0;
    delta = 300.;
    accuracy = None;
  }

let cdf_request ?deadline_s ?(spec = fig7_spec ()) id =
  {
    Query.id;
    model = Some spec;
    payload = Query.Cdf { times = [| 5000.; 10000. |] };
    deadline_s;
  }

let counter name = Telemetry.value (Telemetry.counter name)

let ok_exn name (r : Query.response) =
  match r.Query.result with
  | Ok result -> result
  | Error e -> Alcotest.failf "%s: unexpected error: %s" name e.Query.message

(* The tentpole guarantee: a repeat query is answered from the interned
   session -- zero Q* constructions, zero kernel builds, one more cache
   hit.  (A sweep still runs: results are not memoised, models are.) *)
let test_repeat_query_interns () =
  let svc = Service.create ~cache_capacity:4 () in
  let r1 = Service.handle svc (cdf_request "first") in
  check_true "first is a miss" (r1.Query.cache = Some "miss");
  let builds0 = counter "discretized.builds"
  and session_kernels0 = counter "session.kernel_builds"
  and transient_kernels0 = counter "transient.kernel_builds"
  and hits0 = counter "session.cache_hit" in
  let r2 = Service.handle svc (cdf_request "second") in
  check_true "second is a hit" (r2.Query.cache = Some "hit");
  check_int "zero Q* constructions" 0 (counter "discretized.builds" - builds0);
  check_int "zero session kernel builds" 0
    (counter "session.kernel_builds" - session_kernels0);
  check_int "zero transient kernel builds" 0
    (counter "transient.kernel_builds" - transient_kernels0);
  check_int "one more cache hit" 1 (counter "session.cache_hit" - hits0);
  check_true "identical answers" (ok_exn "first" r1 = ok_exn "second" r2);
  check_int "cache holds one entry" 1 (Cache.size (Service.cache svc))

(* Same-model queries in one batch share a single sweep; distinct
   models pay one each. *)
let test_batch_shares_sweep () =
  let svc = Service.create ~cache_capacity:4 () in
  (* Intern the model first so the batch measures only sweeps. *)
  ignore (Service.handle svc (cdf_request "warm") : Query.response);
  let sweeps0 = counter "transient.sweeps" in
  let responses =
    Service.handle_batch svc
      [
        cdf_request "a";
        {
          Query.id = "b";
          model = Some (fig7_spec ());
          payload =
            Query.Measures
              { time = 10000.; measures = [ Query.Expected_charge ] };
          deadline_s = None;
        };
      ]
  in
  check_int "one sweep for a same-model batch" 1
    (counter "transient.sweeps" - sweeps0);
  check_true "responses in request order"
    (List.map (fun r -> r.Query.r_id) responses = [ "a"; "b" ]);
  List.iteri (fun i r -> ignore (ok_exn (string_of_int i) r)) responses;
  let sweeps1 = counter "transient.sweeps" in
  let distinct =
    Service.handle_batch svc
      [
        cdf_request "c";
        cdf_request ~spec:(fig7_spec ~capacity:6000. ()) "d";
      ]
  in
  List.iteri (fun i r -> ignore (ok_exn (string_of_int i) r)) distinct;
  check_int "two sweeps for a two-model batch" 2
    (counter "transient.sweeps" - sweeps1)

(* A hopeless deadline surfaces as the structured exit-7 error; the
   service survives and answers the next request normally. *)
let test_deadline_exhaustion () =
  let svc = Service.create ~cache_capacity:4 () in
  let r = Service.handle svc (cdf_request ~deadline_s:1e-9 "tight") in
  (match r.Query.result with
  | Ok _ -> Alcotest.fail "a 1 ns deadline produced an answer"
  | Error e ->
      check_int "budget exit code" 7 e.Query.code;
      check_true "budget kind" (e.Query.kind = "budget_exhausted"));
  ignore (ok_exn "after deadline" (Service.handle svc (cdf_request "retry")))

(* An unbuildable model is a structured invalid_model response, not an
   exception and not a poisoned cache entry. *)
let test_invalid_model_response () =
  let spec = { (fig7_spec ()) with Model_spec.capacity = -5. } in
  let svc = Service.create ~cache_capacity:4 () in
  let r = Service.handle svc (cdf_request ~spec "bad") in
  (match r.Query.result with
  | Ok _ -> Alcotest.fail "negative capacity produced an answer"
  | Error e -> check_int "invalid-model exit code" 3 e.Query.code);
  check_int "nothing cached" 0 (Cache.size (Service.cache svc))

(* Feed [input] through [Server.serve_fd] over pipes and decode every
   response line — the harness behind the wire-loop tests. *)
let pipe_serve ?limits ?drain ?max_batch svc input =
  let in_r, in_w = Unix.pipe ~cloexec:false () in
  let out_r, out_w = Unix.pipe ~cloexec:false () in
  let n = Unix.write_substring in_w input 0 (String.length input) in
  check_int "wrote the whole input" (String.length input) n;
  Unix.close in_w;
  Server.serve_fd ?limits ?drain ?max_batch svc ~in_fd:in_r ~out_fd:out_w;
  Unix.close in_r;
  Unix.close out_w;
  let buf = Buffer.create 1024 in
  let chunk = Bytes.create 4096 in
  let rec drain_out () =
    let k = Unix.read out_r chunk 0 (Bytes.length chunk) in
    if k > 0 then begin
      Buffer.add_subbytes buf chunk 0 k;
      drain_out ()
    end
  in
  drain_out ();
  Unix.close out_r;
  String.split_on_char '\n' (Buffer.contents buf)
  |> List.filter (fun l -> l <> "")
  |> List.map (fun l ->
         match Query.response_of_line l with
         | Ok r -> r
         | Error e ->
             Alcotest.failf "undecodable response: %s" e.Query.message)

(* serve_fd: every line gets exactly one response, in order, with
   malformed frames answered in place. *)
let test_serve_fd_pipe () =
  let svc = Service.create ~cache_capacity:4 () in
  let input =
    String.concat ""
      [
        Query.request_to_line (cdf_request "one");
        "garbage\n";
        Query.request_to_line (cdf_request "two");
      ]
  in
  let decoded = pipe_serve svc input in
  check_int "one response per line" 3 (List.length decoded);
  check_true "responses in request order"
    (List.map (fun r -> r.Query.r_id) decoded = [ "one"; ""; "two" ]);
  match (List.nth decoded 1).Query.result with
  | Ok _ -> Alcotest.fail "garbage line produced an answer"
  | Error e -> check_int "garbage line exit code" 4 e.Query.code

(* ------------------------------------------------------------------ *)
(* Overload hardening: the overloaded error class, admission control,
   connection guards, cache eviction policy and graceful drain. *)

module Drain = Batlife_service.Drain
module Obs = Batlife_service.Obs

let spec_freq f =
  {
    (fig7_spec ()) with
    Model_spec.workload = Model_spec.Onoff { frequency = f; k = 1; on_current = 0.96 };
  }

let health_request id =
  { Query.id; model = None; payload = Query.Health; deadline_s = None }

(* The overloaded class: stable code 9, retryable, and the only error
   whose retry_after_s survives the wire round-trip. *)
let test_overloaded_frame () =
  check_int "stable code" 9 Query.overloaded_code;
  let e = Query.overloaded_error ~retry_after_s:0.25 "queue full" in
  check_int "code" Query.overloaded_code e.Query.code;
  check_true "kind" (e.Query.kind = "overloaded");
  check_true "retry hint" (e.Query.retry_after_s = Some 0.25);
  let line =
    Query.response_to_line { Query.r_id = "q9"; cache = None; result = Error e }
  in
  (match Query.response_of_line line with
  | Ok { Query.result = Error e'; _ } ->
      check_true "retry_after_s round-trips" (e' = e)
  | Ok _ -> Alcotest.fail "overloaded frame decoded as a success"
  | Error d -> Alcotest.failf "overloaded frame undecodable: %s" d.Query.message);
  check_true "protocol errors carry no retry hint"
    ((Query.protocol_error "x").Query.retry_after_s = None)

(* LRU at capacity 1: every insertion evicts the previous resident and
   a re-request pays a fresh miss. *)
let test_cache_lru_capacity_one () =
  let c = Cache.create ~capacity:1 () in
  let miss0 = counter "session.cache_miss"
  and evc0 = counter "session.cache_evictions_capacity" in
  ignore (Cache.find_or_build c (spec_freq 1.0));
  ignore (Cache.find_or_build c (spec_freq 2.0));
  check_int "one resident" 1 (Cache.size c);
  check_int "one capacity eviction" 1
    (counter "session.cache_evictions_capacity" - evc0);
  let _, status = Cache.find_or_build c (spec_freq 1.0) in
  check_true "evicted entry misses again" (status = `Miss);
  check_int "three misses" 3 (counter "session.cache_miss" - miss0)

(* LRU at capacity 2: touching an entry protects it; the least
   recently used one goes. *)
let test_cache_lru_capacity_two () =
  let c = Cache.create ~capacity:2 () in
  ignore (Cache.find_or_build c (spec_freq 1.0));
  ignore (Cache.find_or_build c (spec_freq 2.0));
  let _, a = Cache.find_or_build c (spec_freq 1.0) in
  check_true "touch hits" (a = `Hit);
  ignore (Cache.find_or_build c (spec_freq 3.0));
  let _, a' = Cache.find_or_build c (spec_freq 1.0) in
  check_true "recently-touched entry survives" (a' = `Hit);
  let _, b = Cache.find_or_build c (spec_freq 2.0) in
  check_true "least-recently-used entry was evicted" (b = `Miss)

(* Byte budget: with room for one session but not two, the budget pass
   evicts the LRU entry (counted under the bytes reason) and leaves
   the resident estimate within budget. *)
let test_cache_byte_budget () =
  let probe = Cache.create ~capacity:4 () in
  ignore (Cache.find_or_build probe (spec_freq 1.0));
  Cache.enforce_budget probe;
  let one = Cache.resident_bytes probe in
  check_true "session estimate is positive" (one > 0);
  let budget = one + (one / 2) in
  let c = Cache.create ~capacity:8 ~max_bytes:budget () in
  check_true "budget is visible" (Cache.max_bytes c = Some budget);
  ignore (Cache.find_or_build c (spec_freq 1.0));
  Cache.enforce_budget c;
  check_int "one session fits" 1 (Cache.size c);
  ignore (Cache.find_or_build c (spec_freq 2.0));
  let evb0 = counter "session.cache_evictions_bytes" in
  Cache.enforce_budget c;
  check_int "budget pass evicted one" 1
    (counter "session.cache_evictions_bytes" - evb0);
  check_int "back to one resident" 1 (Cache.size c);
  check_true "resident estimate within budget"
    (Cache.resident_bytes c <= budget);
  let _, survivor = Cache.find_or_build c (spec_freq 2.0) in
  check_true "most recent entry survived" (survivor = `Hit)

(* A session larger than the whole budget is still admitted and
   serves its batch; the budget pass then evicts it immediately,
   counted as a bytes eviction. *)
let test_cache_over_budget_session () =
  let svc = Service.create ~cache_capacity:4 ~cache_max_bytes:1 () in
  let evb0 = counter "session.cache_evictions_bytes" in
  ignore (ok_exn "over-budget session answers" (Service.handle svc (cdf_request "big")));
  check_int "evicted right after serving" 0 (Cache.size (Service.cache svc));
  check_true "counted as a bytes eviction"
    (counter "session.cache_evictions_bytes" - evb0 >= 1);
  ignore (ok_exn "rebuilds on demand" (Service.handle svc (cdf_request "again")))

(* Admission control through the wire loop: with a zero pending queue
   and batch size 1, a 5-frame burst admits the first and sheds the
   rest with structured code-9 responses carrying retry hints. *)
let test_admission_shed () =
  let svc = Service.create ~cache_capacity:4 () in
  let limits = { Server.default_limits with queue = 0 } in
  let shed0 = counter "service.shed" in
  let input =
    String.concat ""
      (List.init 5 (fun i ->
           Query.request_to_line (health_request (Printf.sprintf "h%d" i))))
  in
  let responses = pipe_serve ~limits ~max_batch:1 svc input in
  check_int "every frame answered" 5 (List.length responses);
  let by_id id = List.find (fun r -> r.Query.r_id = id) responses in
  ignore (ok_exn "admitted frame answered" (by_id "h0"));
  List.iter
    (fun i ->
      match (by_id (Printf.sprintf "h%d" i)).Query.result with
      | Ok _ -> Alcotest.failf "h%d: shed frame produced an answer" i
      | Error e ->
          check_int "shed code" Query.overloaded_code e.Query.code;
          check_true "shed kind" (e.Query.kind = "overloaded");
          check_true "shed retry hint present" (e.Query.retry_after_s <> None))
    [ 1; 2; 3; 4 ];
  check_int "shed counter moved" 4 (counter "service.shed" - shed0)

(* The frame-size guard: an endless line without a newline earns a
   structured code-4 goodbye and the drop, not unbounded buffering. *)
let test_oversized_frame_guard () =
  let svc = Service.create ~cache_capacity:4 () in
  let limits = { Server.default_limits with max_frame_bytes = 64 } in
  let responses = pipe_serve ~limits svc (String.make 200 'x') in
  match responses with
  | [ { Query.result = Error e; _ } ] ->
      check_int "goodbye code" 4 e.Query.code
  | rs -> Alcotest.failf "want one goodbye frame, got %d" (List.length rs)

(* The strike limit: each malformed frame is answered in place, and
   the limit ends the connection with a goodbye — later frames are
   never read. *)
let test_strike_limit () =
  let svc = Service.create ~cache_capacity:4 () in
  let limits = { Server.default_limits with max_strikes = 2; queue = 8 } in
  let responses =
    pipe_serve ~limits ~max_batch:1 svc "garbage one\ngarbage two\ngarbage three\n"
  in
  check_int "two strikes plus the goodbye" 3 (List.length responses);
  List.iter
    (fun r ->
      match r.Query.result with
      | Ok _ -> Alcotest.fail "garbage produced an answer"
      | Error e -> check_int "structured code" 4 e.Query.code)
    responses

(* A requested drain stops the wire loop from reading frames at all. *)
let test_drain_stops_reading () =
  let drain = Drain.create ~drain_s:60. () in
  Fun.protect ~finally:(fun () -> Drain.stop drain) @@ fun () ->
  Drain.request drain;
  let svc = Service.create ~cache_capacity:4 () in
  let responses =
    pipe_serve ~drain svc (Query.request_to_line (health_request "h"))
  in
  check_int "no frames read after drain" 0 (List.length responses)

(* Within the drain allowance the drain is invisible: an admitted
   batch answers bitwise-identically to an undisturbed run. *)
let test_drain_within_allowance () =
  let svc = Service.create ~cache_capacity:4 () in
  let base = ok_exn "undisturbed" (Service.handle svc (cdf_request "warm")) in
  let drain = Drain.create ~drain_s:60. () in
  Fun.protect ~finally:(fun () -> Drain.stop drain) @@ fun () ->
  Drain.request drain;
  let drained =
    match Service.handle_batch ~drain svc [ cdf_request "r" ] with
    | [ r ] -> ok_exn "drained" r
    | _ -> Alcotest.fail "one request, one response"
  in
  check_true "bitwise-identical in-flight response" (base = drained)

(* Past the drain deadline, in-flight work is cancelled into the
   structured exit-8 error rather than holding the process open. *)
let test_drain_past_deadline_cancels () =
  let drain = Drain.create ~drain_s:0.01 () in
  Fun.protect ~finally:(fun () -> Drain.stop drain) @@ fun () ->
  Drain.request drain;
  Unix.sleepf 0.05;
  let svc = Service.create ~cache_capacity:4 () in
  match Service.handle_batch ~drain svc [ cdf_request "late" ] with
  | [ { Query.result = Error e; _ } ] ->
      check_int "cancelled exit code" 8 e.Query.code;
      check_true "cancelled kind" (e.Query.kind = "cancelled")
  | [ { Query.result = Ok _; _ } ] ->
      Alcotest.fail "work past the drain deadline was not cancelled"
  | _ -> Alcotest.fail "one request, one response"

(* The retry hint: 50 ms until a batch latency distribution exists,
   then the rolling p90 (clamped below at 10 ms). *)
let test_retry_hint () =
  let obs = Obs.create () in
  check_true "cold default" (Obs.retry_hint_s obs = 0.05);
  for _ = 1 to 50 do
    Obs.note_batch obs ~latency_s:0.2
  done;
  let hint = Obs.retry_hint_s obs in
  check_true "hint tracks the p90 batch latency" (hint > 0.1 && hint < 0.4);
  Obs.note_queue_depth obs 7;
  check_true "queue depth p99 sees the sample" (Obs.queue_depth_p99 obs >= 6.)

let suite =
  [
    request_roundtrip;
    response_roundtrip;
    decoder_never_raises;
    case "malformed frames decode to parse errors" test_malformed_frames;
    case "repeat query: zero builds, zero kernels, one hit"
      test_repeat_query_interns;
    case "batch: same model shares one sweep" test_batch_shares_sweep;
    case "deadline exhaustion is a structured exit-7 error"
      test_deadline_exhaustion;
    case "invalid model is a structured exit-3 error"
      test_invalid_model_response;
    case "serve_fd answers every line in order" test_serve_fd_pipe;
    case "overloaded error: code 9, retryable, hint round-trips"
      test_overloaded_frame;
    case "cache: LRU at capacity 1" test_cache_lru_capacity_one;
    case "cache: LRU at capacity 2 honours recency" test_cache_lru_capacity_two;
    case "cache: byte budget evicts LRU within budget" test_cache_byte_budget;
    case "cache: over-budget session admitted, used, then evicted"
      test_cache_over_budget_session;
    case "admission: burst past the queue is shed with code 9"
      test_admission_shed;
    case "guard: oversized frame gets a structured goodbye"
      test_oversized_frame_guard;
    case "guard: strike limit drops the connection" test_strike_limit;
    case "drain: requested drain stops reading" test_drain_stops_reading;
    case "drain: in-flight work within the allowance is untouched"
      test_drain_within_allowance;
    case "drain: past the deadline cancels into exit-8"
      test_drain_past_deadline_cancels;
    case "obs: retry hint follows batch latency" test_retry_hint;
  ]
