(* The lifetime-query service: the wire codec must round-trip every
   representable frame and never raise on garbage, the fingerprint
   cache must make repeat queries free of Q* constructions and kernel
   builds (asserted through the always-on telemetry counters), batches
   against one model must share one sweep, per-request deadlines must
   surface as structured budget errors, and the fd server must answer
   every line in order. *)

open Helpers
module Telemetry = Batlife_numerics.Telemetry
module Model_spec = Batlife_service.Model_spec
module Query = Batlife_service.Query
module Service = Batlife_service.Service
module Cache = Batlife_service.Cache
module Server = Batlife_service.Server

(* ------------------------------------------------------------------ *)
(* Generators.  Floats are built as m * 2^e so every generated value
   is a finite double that the %.17g codec reproduces bit-exactly. *)

let gen_float =
  QCheck.Gen.(
    map2
      (fun m e -> Float.ldexp (float_of_int m) e)
      (int_range (-1_000_000) 1_000_000)
      (int_range (-20) 20))

let gen_pos_float = QCheck.Gen.map (fun x -> Float.abs x +. 1.) gen_float
let gen_name = QCheck.Gen.(string_size ~gen:(char_range 'a' 'z') (int_range 1 6))

let gen_workload =
  QCheck.Gen.(
    frequency
      [
        (2, return Model_spec.Simple);
        (2, return Model_spec.Burst);
        ( 3,
          map2
            (fun frequency k ->
              Model_spec.Onoff { frequency; k; on_current = 0.96 })
            gen_pos_float (int_range 1 4) );
        ( 1,
          let* names = list_size (int_range 1 3) gen_name in
          let* currents = list_size (return (List.length names)) gen_float in
          let states = List.combine names currents in
          let* rates = list_size (return (List.length names)) gen_pos_float in
          let transitions =
            List.map2 (fun (a, _) r -> (a, fst (List.hd states), r)) states
              rates
          in
          return
            (Model_spec.Custom
               { states; transitions; initial = fst (List.hd states) }) );
      ])

let gen_spec =
  QCheck.Gen.(
    let* workload = gen_workload in
    let* capacity = gen_pos_float in
    let* c = gen_pos_float in
    let* k = gen_float in
    let* delta = gen_pos_float in
    let* accuracy = opt gen_pos_float in
    return { Model_spec.workload; capacity; c; k; delta; accuracy })

let gen_measure =
  QCheck.Gen.(
    frequency
      [
        (2, return Query.Expected_charge);
        (2, return Query.Mode_marginal);
        (2, return Query.Charge_marginal);
        ( 1,
          map2
            (fun mode min_charge -> Query.Joint { mode; min_charge })
            (int_range 0 3) gen_float );
      ])

let gen_float_array =
  QCheck.Gen.(map Array.of_list (list_size (int_range 0 5) gen_float))

let gen_payload =
  QCheck.Gen.(
    frequency
      [
        (3, map (fun times -> Query.Cdf { times }) gen_float_array);
        ( 2,
          map2
            (fun time measures -> Query.Measures { time; measures })
            gen_float
            (list_size (int_range 0 4) gen_measure) );
        ( 2,
          map3
            (fun ps horizon points -> Query.Percentiles { ps; horizon; points })
            gen_float_array gen_pos_float (int_range 2 40) );
        (1, return Query.Stats);
      ])

let gen_admin_payload =
  QCheck.Gen.(
    frequency
      [
        (1, return Query.Server_stats);
        (1, return Query.Prometheus);
        (1, return Query.Health);
      ])

let gen_request =
  QCheck.Gen.(
    let* id = string_printable in
    let* deadline_s = opt gen_pos_float in
    let* admin = frequency [ (5, return false); (1, return true) ] in
    if admin then
      let* payload = gen_admin_payload in
      (* Admin frames may also carry a model; both round-trip. *)
      let* model = opt gen_spec in
      return { Query.id; model; payload; deadline_s }
    else
      let* model = gen_spec in
      let* payload = gen_payload in
      return { Query.id; model = Some model; payload; deadline_s })

let gen_result =
  QCheck.Gen.(
    frequency
      [
        ( 2,
          map2
            (fun times probabilities -> Query.Curve { times; probabilities })
            gen_float_array gen_float_array );
        ( 2,
          map2
            (fun time values -> Query.Per_time { time; values })
            gen_float
            (list_size (int_range 0 3) (pair gen_name gen_float_array)) );
        ( 2,
          map2
            (fun ps values -> Query.Quantiles { ps; values })
            gen_float_array gen_float_array );
        ( 1,
          let* states = int_range 1 10_000 in
          let* nnz = int_range 1 100_000 in
          let* unif_rate = gen_pos_float in
          let* kernel =
            opt
              (let* k_touched_nnz = int_range 0 1_000_000 in
               let* k_active_rows = int_range 0 1_000_000 in
               let* k_support_lo = int_range 0 5_000 in
               let* k_support_hi = int_range 0 10_000 in
               let* k_skipped_mass = gen_pos_float in
               return
                 {
                   Query.k_touched_nnz;
                   k_active_rows;
                   k_support_lo;
                   k_support_hi;
                   k_skipped_mass;
                 })
          in
          return
            (Query.Model_stats
               {
                 states;
                 nnz;
                 unif_rate;
                 fingerprint = "deadbeefdeadbeef";
                 kernel;
               }) );
      ])

let gen_response =
  QCheck.Gen.(
    let* r_id = string_printable in
    let* cache = oneof [ return None; return (Some "hit"); return (Some "miss") ] in
    let* result =
      frequency
        [
          (3, map Result.ok gen_result);
          ( 1,
            map2
              (fun kind message ->
                Error { Query.kind; code = 4; message })
              gen_name string_printable );
        ]
    in
    return { Query.r_id; cache; result })

(* ------------------------------------------------------------------ *)
(* Codec round-trips. *)

let request_roundtrip =
  qcheck ~count:300 "request codec round-trips"
    (QCheck.make ~print:Query.request_to_line gen_request)
    (fun r ->
      match Query.request_of_line (Query.request_to_line r) with
      | Ok r' -> r' = r
      | Error e -> QCheck.Test.fail_reportf "decode failed: %s" e.Query.message)

let response_roundtrip =
  qcheck ~count:300 "response codec round-trips"
    (QCheck.make ~print:Query.response_to_line gen_response)
    (fun r ->
      match Query.response_of_line (Query.response_to_line r) with
      | Ok r' -> r' = r
      | Error e -> QCheck.Test.fail_reportf "decode failed: %s" e.Query.message)

let decoder_never_raises =
  qcheck ~count:500 "request decoder never raises" QCheck.string (fun s ->
      match Query.request_of_line s with Ok _ | Error _ -> true)

(* Malformed frames come back as structured parse errors carrying the
   exit-4 code, never as exceptions. *)
let test_malformed_frames () =
  let expect_parse_error name line =
    match Query.request_of_line line with
    | Ok _ -> Alcotest.failf "%s: decoded a malformed frame" name
    | Error e ->
        check_int (name ^ ": code") 4 e.Query.code;
        check_true (name ^ ": kind") (e.Query.kind = "parse_error")
  in
  expect_parse_error "empty" "";
  expect_parse_error "not json" "not json at all";
  expect_parse_error "wrong type" "[1,2,3]";
  expect_parse_error "missing fields" "{}";
  expect_parse_error "bad version"
    {|{"v":"batlife.query/9","id":"x","model":{},"query":{"kind":"stats"}}|};
  expect_parse_error "unknown query kind"
    {|{"v":"batlife.query/1","id":"x","model":{"workload":{"kind":"simple"},"battery":{"capacity":7200,"c":1,"k":0},"delta":300},"query":{"kind":"nope"}}|};
  expect_parse_error "ill-typed times"
    {|{"v":"batlife.query/1","id":"x","model":{"workload":{"kind":"simple"},"battery":{"capacity":7200,"c":1,"k":0},"delta":300},"query":{"kind":"cdf","times":"soon"}}|}

(* ------------------------------------------------------------------ *)
(* The service proper. *)

let fig7_spec ?(capacity = 7200.) () =
  {
    Model_spec.workload =
      Model_spec.Onoff { frequency = 1.0; k = 1; on_current = 0.96 };
    capacity;
    c = 1.0;
    k = 0.0;
    delta = 300.;
    accuracy = None;
  }

let cdf_request ?deadline_s ?(spec = fig7_spec ()) id =
  {
    Query.id;
    model = Some spec;
    payload = Query.Cdf { times = [| 5000.; 10000. |] };
    deadline_s;
  }

let counter name = Telemetry.value (Telemetry.counter name)

let ok_exn name (r : Query.response) =
  match r.Query.result with
  | Ok result -> result
  | Error e -> Alcotest.failf "%s: unexpected error: %s" name e.Query.message

(* The tentpole guarantee: a repeat query is answered from the interned
   session -- zero Q* constructions, zero kernel builds, one more cache
   hit.  (A sweep still runs: results are not memoised, models are.) *)
let test_repeat_query_interns () =
  let svc = Service.create ~cache_capacity:4 () in
  let r1 = Service.handle svc (cdf_request "first") in
  check_true "first is a miss" (r1.Query.cache = Some "miss");
  let builds0 = counter "discretized.builds"
  and session_kernels0 = counter "session.kernel_builds"
  and transient_kernels0 = counter "transient.kernel_builds"
  and hits0 = counter "session.cache_hit" in
  let r2 = Service.handle svc (cdf_request "second") in
  check_true "second is a hit" (r2.Query.cache = Some "hit");
  check_int "zero Q* constructions" 0 (counter "discretized.builds" - builds0);
  check_int "zero session kernel builds" 0
    (counter "session.kernel_builds" - session_kernels0);
  check_int "zero transient kernel builds" 0
    (counter "transient.kernel_builds" - transient_kernels0);
  check_int "one more cache hit" 1 (counter "session.cache_hit" - hits0);
  check_true "identical answers" (ok_exn "first" r1 = ok_exn "second" r2);
  check_int "cache holds one entry" 1 (Cache.size (Service.cache svc))

(* Same-model queries in one batch share a single sweep; distinct
   models pay one each. *)
let test_batch_shares_sweep () =
  let svc = Service.create ~cache_capacity:4 () in
  (* Intern the model first so the batch measures only sweeps. *)
  ignore (Service.handle svc (cdf_request "warm") : Query.response);
  let sweeps0 = counter "transient.sweeps" in
  let responses =
    Service.handle_batch svc
      [
        cdf_request "a";
        {
          Query.id = "b";
          model = Some (fig7_spec ());
          payload =
            Query.Measures
              { time = 10000.; measures = [ Query.Expected_charge ] };
          deadline_s = None;
        };
      ]
  in
  check_int "one sweep for a same-model batch" 1
    (counter "transient.sweeps" - sweeps0);
  check_true "responses in request order"
    (List.map (fun r -> r.Query.r_id) responses = [ "a"; "b" ]);
  List.iteri (fun i r -> ignore (ok_exn (string_of_int i) r)) responses;
  let sweeps1 = counter "transient.sweeps" in
  let distinct =
    Service.handle_batch svc
      [
        cdf_request "c";
        cdf_request ~spec:(fig7_spec ~capacity:6000. ()) "d";
      ]
  in
  List.iteri (fun i r -> ignore (ok_exn (string_of_int i) r)) distinct;
  check_int "two sweeps for a two-model batch" 2
    (counter "transient.sweeps" - sweeps1)

(* A hopeless deadline surfaces as the structured exit-7 error; the
   service survives and answers the next request normally. *)
let test_deadline_exhaustion () =
  let svc = Service.create ~cache_capacity:4 () in
  let r = Service.handle svc (cdf_request ~deadline_s:1e-9 "tight") in
  (match r.Query.result with
  | Ok _ -> Alcotest.fail "a 1 ns deadline produced an answer"
  | Error e ->
      check_int "budget exit code" 7 e.Query.code;
      check_true "budget kind" (e.Query.kind = "budget_exhausted"));
  ignore (ok_exn "after deadline" (Service.handle svc (cdf_request "retry")))

(* An unbuildable model is a structured invalid_model response, not an
   exception and not a poisoned cache entry. *)
let test_invalid_model_response () =
  let spec = { (fig7_spec ()) with Model_spec.capacity = -5. } in
  let svc = Service.create ~cache_capacity:4 () in
  let r = Service.handle svc (cdf_request ~spec "bad") in
  (match r.Query.result with
  | Ok _ -> Alcotest.fail "negative capacity produced an answer"
  | Error e -> check_int "invalid-model exit code" 3 e.Query.code);
  check_int "nothing cached" 0 (Cache.size (Service.cache svc))

(* serve_fd: every line gets exactly one response, in order, with
   malformed frames answered in place. *)
let test_serve_fd_pipe () =
  let svc = Service.create ~cache_capacity:4 () in
  let in_r, in_w = Unix.pipe ~cloexec:false () in
  let out_r, out_w = Unix.pipe ~cloexec:false () in
  let input =
    String.concat ""
      [
        Query.request_to_line (cdf_request "one");
        "garbage\n";
        Query.request_to_line (cdf_request "two");
      ]
  in
  let n = Unix.write_substring in_w input 0 (String.length input) in
  check_int "wrote the whole input" (String.length input) n;
  Unix.close in_w;
  Server.serve_fd svc ~in_fd:in_r ~out_fd:out_w;
  Unix.close in_r;
  Unix.close out_w;
  let buf = Buffer.create 1024 in
  let chunk = Bytes.create 4096 in
  let rec drain () =
    let k = Unix.read out_r chunk 0 (Bytes.length chunk) in
    if k > 0 then begin
      Buffer.add_subbytes buf chunk 0 k;
      drain ()
    end
  in
  drain ();
  Unix.close out_r;
  let lines =
    String.split_on_char '\n' (Buffer.contents buf)
    |> List.filter (fun l -> l <> "")
  in
  check_int "one response per line" 3 (List.length lines);
  let decoded =
    List.map
      (fun l ->
        match Query.response_of_line l with
        | Ok r -> r
        | Error e -> Alcotest.failf "undecodable response: %s" e.Query.message)
      lines
  in
  check_true "responses in request order"
    (List.map (fun r -> r.Query.r_id) decoded = [ "one"; ""; "two" ]);
  match (List.nth decoded 1).Query.result with
  | Ok _ -> Alcotest.fail "garbage line produced an answer"
  | Error e -> check_int "garbage line exit code" 4 e.Query.code

let suite =
  [
    request_roundtrip;
    response_roundtrip;
    decoder_never_raises;
    case "malformed frames decode to parse errors" test_malformed_frames;
    case "repeat query: zero builds, zero kernels, one hit"
      test_repeat_query_interns;
    case "batch: same model shares one sweep" test_batch_shares_sweep;
    case "deadline exhaustion is a structured exit-7 error"
      test_deadline_exhaustion;
    case "invalid model is a structured exit-3 error"
      test_invalid_model_response;
    case "serve_fd answers every line in order" test_serve_fd_pipe;
  ]
