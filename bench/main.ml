(* Benchmark & reproduction harness.

   Default run (as in `dune exec bench/main.exe`):
     1. regenerate every table and figure of the paper's evaluation
        section, printing the measured rows/series summaries next to
        the paper's reported shapes, and writing .dat/.csv/.gp
        artefacts under results/;
     2. run one Bechamel timing benchmark per experiment kernel.

   Flags:
     --full         also compute the expensive Delta=10,5 two-well
                    refinements (Figs. 8, 9)
     --runs N       Monte-Carlo replications (default 1000)
     --out-dir D    artefact directory (default results)
     --repro-only   skip the timing pass
     --timing-only  skip the reproduction pass
     --quota S      seconds of sampling per timing test (default 0.5)
     --engine-report PATH
                    count uniformisation sweeps / vector-matrix
                    products for the per-call vs batched-session
                    evaluation paths and write a JSON snapshot
                    (committed as BENCH_engine.json, diffed by CI)
     --scaling-report PATH
                    run ONLY the multicore scaling benchmark: the
                    fig-7 solve at jobs = 1, 2, 4 (with a bitwise
                    identity check across job counts) plus the
                    scatter-vecmat vs transposed-gather-matvec
                    microbenchmark, written as a JSON snapshot
                    (committed as BENCH_parallel.json)
     --kernel-report PATH
                    run ONLY the adaptive-support kernel benchmark:
                    the fig-7 / fig-2 style sweeps at Delta = 10,
                    solved with the exact full-support oracle and
                    with the adaptive window, counting vector-matrix
                    products and touched nonzeros via the Telemetry
                    work counters and checking the adaptive-vs-oracle
                    CDF deviation against the documented skipped-mass
                    bound (accuracy / 2), written as a JSON snapshot
                    (committed as BENCH_kernel.json, diffed by CI --
                    work counts only, no wall clocks, so the file is
                    identical on any machine and core count); nonzero
                    exit if the touched-nnz reduction falls below 3x
                    on any model or the deviation exceeds the bound
     --obs-report PATH
                    run ONLY the telemetry overhead benchmark: the
                    same fig-7 style solve with the collector off and
                    on, a bitwise identity check between the two, and
                    the recorded span/counter volume, written as a
                    JSON snapshot (committed as BENCH_obs.json)
     --chaos-report PATH
                    run ONLY the chaos harness (see chaos.ml): a
                    seeded matrix of fault-injection plans over the
                    fig-2/fig-7 models, asserting every run ends
                    bitwise-identical to the clean run or in a clean
                    structured failure with no partial artifacts,
                    written as a JSON snapshot (committed as
                    BENCH_chaos.json); nonzero exit on any violation
     --chaos-plans N
                    number of fault plans (default 60)
     --chaos-seed S seed of the plan generator (default 2007)
     --serve-chaos-report PATH
                    run ONLY the serve-side chaos harness (see
                    serve_chaos.ml): boot the real Unix-socket accept
                    loop with small guard limits and drive the hostile
                    client matrix at it — oversized frames, admission
                    floods, malformed streaks, mid-batch disconnects,
                    stalled senders, and the armed server.* fault
                    sites — asserting the daemon survives every
                    scenario (health probe between scenarios), every
                    frame is answered or shed with a structured code-9
                    overloaded response, and the final drain exits
                    cleanly with the socket unlinked; written as a
                    JSON snapshot (committed as BENCH_serve_chaos.json,
                    counts and booleans only, no wall clocks); nonzero
                    exit on any violation
     --service-report PATH
                    run ONLY the query-service benchmark: >= 1000
                    Zipf-distributed queries over a 48-model
                    population through the [batlife serve] engine,
                    recording per-query latency percentiles and the
                    fingerprint cache's hit rate, written as a JSON
                    snapshot (committed as BENCH_service.json); the
                    same latencies are also fed through the streaming
                    log-bucketed histogram (Streamstat.Hist) and the
                    streaming p50/p90/p99 are cross-checked against
                    the exact sorted quantiles within the documented
                    relative error bound; nonzero exit on any failed
                    query, a zero cache hit rate, or a quantile
                    outside the bound *)

open Bechamel
open Batlife_battery
open Batlife_core
open Batlife_experiments

(* ------------------------------------------------------------------ *)
(* Timing kernels: one per table/figure, sized so a single sample is
   meaningful but the quota stays small.                               *)

let table1_kernel () =
  let p = Params.battery_two_well () in
  Kibam.lifetime p
    (Load_profile.square_wave ~frequency:1.0 ~on_load:Params.on_current_a)

let fig2_kernel () =
  let p = Params.battery_two_well () in
  Kibam.trace p
    (Load_profile.square_wave ~frequency:0.001 ~on_load:Params.on_current_a)
    ~t_end:12000. ~sample_step:50.

let times_small = [| 10000.; 15000.; 20000. |]

let fig7_kernel () =
  Lifetime.cdf ~delta:100. ~times:times_small
    (Params.onoff_kibamrm ~frequency:1.0 (Params.battery_single_well ()))

let fig8_kernel () =
  Lifetime.cdf ~delta:100. ~times:times_small
    (Params.onoff_kibamrm ~frequency:1.0 (Params.battery_two_well ()))

let fig9_kernel () =
  Discretized.build ~delta:25.
    (Params.onoff_kibamrm ~frequency:1.0 (Params.battery_two_well ()))

let phone_times_small = [| 10.; 20.; 30. |]

let fig10_kernel () =
  Lifetime.cdf ~delta:25. ~times:phone_times_small
    (Params.simple_kibamrm (Params.battery_phone_two_well ()))

let fig11_kernel () =
  Lifetime.cdf ~delta:10. ~times:phone_times_small
    (Params.burst_kibamrm (Params.battery_phone_two_well ()))

let simulation_kernel =
  let model =
    Params.onoff_kibamrm ~frequency:1.0 (Params.battery_two_well ())
  in
  let sim = Batlife_sim.Trajectory.prepare model in
  fun () ->
    Batlife_sim.Trajectory.run sim (Batlife_sim.Rng.create ~seed:42L ())

(* Micro / subsystem kernels beyond the paper's experiments. *)

let occupation_kernel =
  let workload = Params.onoff_model ~frequency:1.0 () in
  let m =
    Batlife_mrm.Mrm.create
      ~generator:workload.Batlife_workload.Model.generator
      ~rewards:
        (Array.init 2 (Batlife_workload.Model.current workload))
      ~alpha:workload.Batlife_workload.Model.initial
  in
  fun () ->
    Batlife_mrm.Occupation.two_valued_cdf m
      ~queries:[| (15000., Params.capacity_as) |]

let poisson_kernel () = Batlife_numerics.Poisson.weights 40000.

let vecmat_kernel =
  let d =
    Discretized.build ~delta:50.
      (Params.onoff_kibamrm ~frequency:1.0 (Params.battery_two_well ()))
  in
  let q = Batlife_ctmc.Generator.matrix d.Discretized.generator in
  let n = Discretized.n_states d in
  let src = Array.make n (1. /. float_of_int n) in
  let dst = Array.make n 0. in
  fun () -> Batlife_numerics.Sparse.vecmat_acc ~src q ~scale:1. ~dst

let scheduler_kernel () =
  Batlife_scheduling.Scheduler.run ~slot:60.
    ~policy:Batlife_scheduling.Policy.Round_robin
    ~battery:(Params.battery_two_well ()) ~n:2
    (Load_profile.constant Params.on_current_a)

let rakhmatov_kernel =
  let p = Batlife_battery.Rakhmatov.params ~alpha:40000. 0.2 in
  fun () -> Batlife_battery.Rakhmatov.lifetime_constant p ~load:100.

(* ------------------------------------------------------------------ *)
(* Engine kernels: the same query set (lifetime CDF on a shared grid
   plus all four per-time measures) answered once with a fresh
   single-query session per call — the cost profile of the removed
   per-time helpers — and once through a shared session.              *)

module Transient = Batlife_ctmc.Transient
module Telemetry = Batlife_numerics.Telemetry

let engine_times = [| 5.; 10.; 15.; 20.; 25. |]
let engine_time = 20.

let engine_discretized =
  lazy
    (Discretized.build ~delta:10.
       (Params.simple_kibamrm (Params.battery_phone_two_well ())))

(* The per-call baseline: every query pays its own session, hence its
   own sweep (and its own kernel build). *)
module Per_call_baseline = struct
  let one d f =
    let s = Discretized.Session.create d in
    Discretized.Session.get (f s)

  let queries d =
    let open Discretized.Session in
    let cdf = one d (fun s -> empty_probability s ~times:engine_times) in
    let marginal =
      one d (fun s -> available_charge_marginal s ~time:engine_time)
    in
    let modes = one d (fun s -> mode_marginal s ~time:engine_time) in
    let expected =
      one d (fun s -> expected_available_charge s ~time:engine_time)
    in
    let joint =
      one d (fun s ->
          joint_probability s ~time:engine_time ~mode:0 ~min_charge:250.)
    in
    (cdf, marginal, modes, expected, joint)
end

let session_queries d =
  let open Discretized.Session in
  let s = create d in
  let cdf = empty_probability s ~times:engine_times in
  let marginal = available_charge_marginal s ~time:engine_time in
  let modes = mode_marginal s ~time:engine_time in
  let expected = expected_available_charge s ~time:engine_time in
  let joint =
    joint_probability s ~time:engine_time ~mode:0 ~min_charge:250.
  in
  ignore (run s : Transient.stats);
  (get cdf, get marginal, get modes, get expected, get joint)

let engine_per_call_kernel () =
  Per_call_baseline.queries (Lazy.force engine_discretized)

let engine_session_kernel () = session_queries (Lazy.force engine_discretized)

(* Sweep/product accounting of the two paths, written as a committed
   JSON snapshot (BENCH_engine.json) so CI can diff the counts. *)
let c_sweeps = Telemetry.counter "transient.sweeps"
let c_products = Telemetry.counter "transient.products"

let engine_report path =
  let d = Lazy.force engine_discretized in
  let count f =
    Telemetry.reset_counter c_sweeps;
    Telemetry.reset_counter c_products;
    ignore (f d);
    (Telemetry.value c_sweeps, Telemetry.value c_products)
  in
  let per_call_sweeps, per_call_products = count Per_call_baseline.queries in
  let session_sweeps, session_products = count session_queries in
  let ratio f a b = if b = 0 then Float.nan else f a /. f b in
  let product_ratio =
    ratio float_of_int per_call_products session_products
  in
  Printf.printf
    "=== Engine sweep accounting (CDF on %d times + 4 per-time measures) ===\n"
    (Array.length engine_times);
  Printf.printf "  per-call baseline: %d sweeps, %d vector-matrix products\n"
    per_call_sweeps per_call_products;
  Printf.printf "  batched session:   %d sweeps, %d vector-matrix products\n"
    session_sweeps session_products;
  Printf.printf "  product reduction: %.2fx\n" product_ratio;
  Batlife_numerics.Atomic_io.with_out ~path (fun oc ->
  Printf.fprintf oc
    {|{
  "benchmark": "engine sweep accounting",
  "model": "simple workload, two-well phone battery, delta = 10",
  "queries": {
    "cdf_times": %d,
    "per_time_measures": 4
  },
  "per_call": { "sweeps": %d, "products": %d },
  "session": { "sweeps": %d, "products": %d },
  "product_ratio": %.4f,
  "sweep_ratio": %.4f
}
|}
    (Array.length engine_times) per_call_sweeps per_call_products
    session_sweeps session_products product_ratio
    (ratio float_of_int per_call_sweeps session_sweeps));
  Printf.printf "  wrote %s\n" path

(* ------------------------------------------------------------------ *)
(* Multicore scaling: wall-clock of a whole fig-7 style solve at
   jobs = 1, 2, 4, a bitwise identity check of the resulting curves,
   and a microbenchmark of the two step kernels (the historical
   scatter [vecmat_acc] against the gather [matvec_rows] over the
   transposed matrix that the parallel path uses).  Written as a
   committed JSON snapshot (BENCH_parallel.json); the machine's core
   count is recorded because speedups are only meaningful relative to
   it. *)

module Nsparse = Batlife_numerics.Sparse
module Npool = Batlife_numerics.Pool

let wall f =
  let t0 = Unix.gettimeofday () in
  let y = f () in
  (Unix.gettimeofday () -. t0, y)

let scaling_report path =
  let cores = Domain.recommended_domain_count () in
  let model =
    Params.onoff_kibamrm ~frequency:1.0 (Params.battery_single_well ())
  in
  let delta = 10. and times = [| 10000.; 15000.; 20000. |] in
  let solve jobs =
    let opts = Batlife_ctmc.Solver_opts.make ~jobs () in
    (* Spawn the pool's domains outside the measurement. *)
    ignore (Npool.get ~jobs : Npool.t);
    ignore (Lifetime.cdf ~opts ~delta ~times model : Lifetime.curve);
    let best = ref infinity and curve = ref None in
    for _ = 1 to 3 do
      let t, c = wall (fun () -> Lifetime.cdf ~opts ~delta ~times model) in
      if t < !best then best := t;
      curve := Some c
    done;
    (!best, Option.get !curve)
  in
  let measured = List.map (fun jobs -> (jobs, solve jobs)) [ 1; 2; 4 ] in
  let base_time, base_curve = List.assoc 1 measured in
  let bits (c : Lifetime.curve) =
    Array.map Int64.bits_of_float c.Lifetime.probabilities
  in
  let reference = bits base_curve in
  let identical =
    List.for_all (fun (_, (_, c)) -> bits c = reference) measured
  in
  Printf.printf
    "=== Multicore scaling (fig-7 model, delta = %g, %d cores) ===\n" delta
    cores;
  List.iter
    (fun (jobs, (t, _)) ->
      Printf.printf "  jobs = %d: %8.3f ms  (speedup %.2fx)\n" jobs
        (t *. 1e3) (base_time /. t))
    measured;
  Printf.printf "  curves bitwise identical across job counts: %b\n" identical;
  if not identical then begin
    prerr_endline
      "scaling report: results differ across job counts (determinism bug)";
    exit 1
  end;
  (* Step-kernel microbenchmark on the fig-8 Delta=50 matrix: both
     kernels compute x^T P, the scatter over P and the gather over
     P^T. *)
  let d =
    Discretized.build ~delta:50.
      (Params.onoff_kibamrm ~frequency:1.0 (Params.battery_two_well ()))
  in
  let g = d.Discretized.generator in
  let q = Batlife_ctmc.Generator.uniformisation_rate g in
  let p = Batlife_ctmc.Generator.uniformised g ~q in
  let pt = Nsparse.transpose p in
  let n = Discretized.n_states d in
  let src = Array.make n (1. /. float_of_int n) in
  let dst = Array.make n 0. in
  let fsrc = Batlife_numerics.Fvec.of_array src in
  let fdst = Batlife_numerics.Fvec.create n in
  let reps = 400 in
  let per_op f =
    f ();
    f ();
    let t, () = wall (fun () -> for _ = 1 to reps do f () done) in
    t *. 1e9 /. float_of_int reps
  in
  let scatter_ns =
    per_op (fun () ->
        Array.fill dst 0 n 0.;
        Nsparse.vecmat_acc ~src p ~scale:1. ~dst)
  in
  let gather_ns =
    per_op (fun () -> Nsparse.matvec_rows pt fsrc ~dst:fdst ~lo:0 ~hi:n)
  in
  Printf.printf
    "  step kernel (%d states, %d nnz): scatter %.0f ns, gather %.0f ns \
     (ratio %.2fx)\n"
    n (Nsparse.nnz p) scatter_ns gather_ns (scatter_ns /. gather_ns);
  Batlife_numerics.Atomic_io.with_out ~path (fun oc ->
  Printf.fprintf oc
    {|{
  "benchmark": "multicore scaling",
  "machine": { "cores": %d },
  "model": "fig7 on/off single-well, delta = %g, 3 time points",
  "solve": [
%s
  ],
  "bitwise_identical_across_jobs": %b,
  "step_kernel": {
    "states": %d,
    "nnz": %d,
    "scatter_vecmat_ns": %.0f,
    "gather_transposed_matvec_ns": %.0f,
    "scatter_over_gather_ratio": %.4f
  }
}
|}
    cores delta
    (String.concat ",\n"
       (List.map
          (fun (jobs, (t, _)) ->
            Printf.sprintf
              {|    { "jobs": %d, "seconds": %.6f, "speedup": %.4f }|} jobs t
              (base_time /. t))
          measured))
    identical n (Nsparse.nnz p) scatter_ns gather_ns (scatter_ns /. gather_ns));
  Printf.printf "  wrote %s\n" path

(* ------------------------------------------------------------------ *)
(* Adaptive-support kernel accounting: the fig-7 and fig-2 style
   sweeps at Delta = 10, each solved once with the exact full-support
   oracle and once with the adaptive window, counting vector-matrix
   products and touched nonzeros through the Telemetry work counters.
   The JSON snapshot (committed as BENCH_kernel.json, diffed by CI)
   contains only deterministic work counts and the adaptive-vs-oracle
   curve deviation -- never wall clocks -- so the file is identical on
   any machine and any core count.  Self-verifying: exits nonzero if
   the touched-nnz reduction falls below 3x on any model or the
   deviation exceeds the documented skipped-mass bound
   (accuracy / 2). *)

let c_touched = Telemetry.counter "transient.touched_nnz"

type kernel_row = {
  kr_key : string;
  kr_label : string;
  kr_times : float array;
  kr_states : int;
  kr_nnz : int;
  kr_oracle_products : int;
  kr_oracle_touched : int;
  kr_adaptive_products : int;
  kr_adaptive_touched : int;
  kr_reduction : float;
  kr_deviation : float;
}

let kernel_report path =
  let delta = 10. in
  let accuracy =
    Batlife_ctmc.Solver_opts.default.Batlife_ctmc.Solver_opts.accuracy
  in
  let bound = accuracy /. 2. in
  (* The sweep audits its cumulative skipped mass <= bound exactly; the
     measured CDF deviation vs the oracle additionally carries float
     reordering noise (the adaptive kernel sums the same products in a
     different association), so the gate allows a hair of headroom. *)
  let gate = bound +. 1e-14 in
  (* Each sweep's time grid brackets that model's death region (the
     two-well grid runs from the onset of failures to the median
     lifetime): the window fraction grows like the square root of the
     step count, so the grid also fixes how much support the adaptive
     kernel can skip. *)
  let models =
    [
      ( "fig7",
        "fig7 on/off single-well",
        [| 10000.; 15000.; 20000. |],
        Params.onoff_kibamrm ~frequency:1.0 (Params.battery_single_well ()) );
      ( "fig2",
        "fig2 on/off two-well",
        [| 8000.; 10000.; 12000. |],
        Params.onoff_kibamrm ~frequency:1.0 (Params.battery_two_well ()) );
    ]
  in
  Printf.printf "=== Adaptive-support kernel (delta = %g) ===\n" delta;
  let rows =
    List.map
      (fun (key, label, times, model) ->
        let d = Discretized.build ~delta model in
        let solve opts =
          Telemetry.reset_counter c_products;
          Telemetry.reset_counter c_touched;
          let t, curve =
            wall (fun () -> Lifetime.cdf_discretized ~opts ~delta d ~times)
          in
          (t, curve, Telemetry.value c_products, Telemetry.value c_touched)
        in
        let o_t, o_curve, o_products, o_touched =
          solve (Batlife_ctmc.Solver_opts.make ~adaptive_support:false ())
        in
        let a_t, a_curve, a_products, a_touched =
          solve (Batlife_ctmc.Solver_opts.make ())
        in
        let deviation = ref 0. in
        Array.iteri
          (fun i p ->
            let dev = Float.abs (p -. a_curve.Lifetime.probabilities.(i)) in
            if dev > !deviation then deviation := dev)
          o_curve.Lifetime.probabilities;
        let reduction = float_of_int o_touched /. float_of_int a_touched in
        Printf.printf "  %-24s %6d states, %8d nnz\n" label
          o_curve.Lifetime.states o_curve.Lifetime.nnz;
        Printf.printf
          "    oracle:   %5d products, %12d nnz touched, %9.3f ms\n"
          o_products o_touched (o_t *. 1e3);
        Printf.printf
          "    adaptive: %5d products, %12d nnz touched, %9.3f ms  \
           (%.2fx fewer nnz, %.2fx wall)\n"
          a_products a_touched (a_t *. 1e3) reduction (o_t /. a_t);
        Printf.printf "    max CDF deviation: %.3e  (bound %.3e)\n" !deviation
          bound;
        {
          kr_key = key;
          kr_label = label;
          kr_times = times;
          kr_states = o_curve.Lifetime.states;
          kr_nnz = o_curve.Lifetime.nnz;
          kr_oracle_products = o_products;
          kr_oracle_touched = o_touched;
          kr_adaptive_products = a_products;
          kr_adaptive_touched = a_touched;
          kr_reduction = reduction;
          kr_deviation = !deviation;
        })
      models
  in
  let min_reduction =
    List.fold_left (fun acc r -> Float.min acc r.kr_reduction) infinity rows
  in
  let max_deviation =
    List.fold_left (fun acc r -> Float.max acc r.kr_deviation) 0. rows
  in
  Printf.printf "  min touched-nnz reduction: %.2fx, max deviation %.3e\n"
    min_reduction max_deviation;
  if min_reduction < 3. || max_deviation > gate then begin
    prerr_endline
      "kernel report: reduction below 3x or deviation beyond the \
       skipped-mass bound (adaptive kernel bug)";
    exit 1
  end;
  Batlife_numerics.Atomic_io.with_out ~path (fun oc ->
  Printf.fprintf oc
    {|{
  "benchmark": "adaptive-support kernel accounting",
  "delta": %g,
  "accuracy": %.3e,
  "deviation_bound": %.3e,
  "models": [
%s
  ],
  "summary": { "min_reduction": %.4f, "max_deviation": %.3e }
}
|}
    delta accuracy bound
    (String.concat ",\n"
       (List.map
          (fun r ->
            Printf.sprintf
              {|    { "key": "%s", "model": "%s", "times": [%s],
      "states": %d, "nnz": %d,
      "oracle": { "products": %d, "touched_nnz": %d },
      "adaptive": { "products": %d, "touched_nnz": %d },
      "touched_nnz_reduction": %.4f, "max_cdf_deviation": %.3e }|}
              r.kr_key r.kr_label
              (String.concat ", "
                 (Array.to_list (Array.map (Printf.sprintf "%g") r.kr_times)))
              r.kr_states r.kr_nnz r.kr_oracle_products
              r.kr_oracle_touched r.kr_adaptive_products r.kr_adaptive_touched
              r.kr_reduction r.kr_deviation)
          rows))
    min_reduction max_deviation);
  Printf.printf "  wrote %s\n" path

(* ------------------------------------------------------------------ *)
(* Telemetry overhead: the fig-7 style solve with the collector off
   and on.  Gated probes must cost a single predictable branch when
   disabled and stay cheap enough when enabled that profiling a real
   run is always acceptable; the committed snapshot (BENCH_obs.json)
   keeps the measured ratio under version control.  The curves must
   also be bitwise identical in both modes -- telemetry may only
   observe, never perturb. *)

let obs_report path =
  let model =
    Params.onoff_kibamrm ~frequency:1.0 (Params.battery_single_well ())
  in
  let delta = 25. and times = [| 10000.; 15000.; 20000. |] in
  let solve () = Lifetime.cdf ~delta ~times model in
  let reps = 5 in
  let best_of f =
    ignore (f () : Lifetime.curve);
    (* Warm caches and the minor heap. *)
    let best = ref infinity and last = ref None in
    for _ = 1 to reps do
      let t, c = wall f in
      if t < !best then best := t;
      last := Some c
    done;
    (!best, Option.get !last)
  in
  Telemetry.disable ();
  let disabled_s, curve_off = best_of solve in
  Telemetry.enable ();
  Telemetry.reset ();
  let enabled_s, curve_on = best_of solve in
  let snap = Telemetry.snapshot () in
  let spans_recorded = List.length snap.Telemetry.snap_spans in
  (* Per-solve counter volume: reset, one run, read. *)
  Telemetry.reset ();
  ignore (solve () : Lifetime.curve);
  let per_solve name = Telemetry.value (Telemetry.counter name) in
  let sweeps = per_solve "transient.sweeps"
  and products = per_solve "transient.products"
  and windows = per_solve "poisson.windows" in
  Telemetry.disable ();
  Telemetry.reset ();
  let bits (c : Lifetime.curve) =
    Array.map Int64.bits_of_float c.Lifetime.probabilities
  in
  let identical = bits curve_off = bits curve_on in
  let overhead = (enabled_s /. disabled_s) -. 1. in
  Printf.printf "=== Telemetry overhead (fig-7 model, delta = %g) ===\n" delta;
  Printf.printf "  collector disabled: %8.3f ms\n" (disabled_s *. 1e3);
  Printf.printf "  collector enabled:  %8.3f ms  (%d spans recorded)\n"
    (enabled_s *. 1e3) spans_recorded;
  Printf.printf "  overhead: %+.2f %%\n" (overhead *. 100.);
  Printf.printf "  curves bitwise identical on/off: %b\n" identical;
  if not identical then begin
    prerr_endline "obs report: telemetry perturbed the results (bug)";
    exit 1
  end;
  Batlife_numerics.Atomic_io.with_out ~path (fun oc ->
  Printf.fprintf oc
    {|{
  "benchmark": "telemetry overhead",
  "model": "fig7 on/off single-well, delta = %g, %d time points",
  "reps_best_of": %d,
  "disabled_seconds": %.6f,
  "enabled_seconds": %.6f,
  "overhead_ratio": %.4f,
  "bitwise_identical_on_off": %b,
  "enabled_run": {
    "spans": %d,
    "counters": {
      "transient.sweeps": %d,
      "transient.products": %d,
      "poisson.windows": %d
    }
  }
}
|}
    delta (Array.length times) reps disabled_s enabled_s
    (enabled_s /. disabled_s) identical spans_recorded sweeps products windows);
  Printf.printf "  wrote %s\n" path

(* ------------------------------------------------------------------ *)
(* Query service: >= 1000 Zipf-distributed queries over a model
   population, answered sequentially through the same [Service] the
   [batlife serve] daemon uses.  The Zipf head keeps a handful of
   models hot, so the fingerprint cache absorbs most queries while the
   tail forces builds and LRU evictions; the committed snapshot
   (BENCH_service.json) records the latency percentiles and the hit
   rate.  Self-verifying: any failed query or a zero hit rate exits
   nonzero. *)

module Service = Batlife_service.Service
module Scache = Batlife_service.Cache
module Model_spec = Batlife_service.Model_spec
module Squery = Batlife_service.Query
module Rng = Batlife_numerics.Rng
module Streamstat = Batlife_numerics.Streamstat

(* 8 switching frequencies x 6 capacities of the fig-7 style single-well
   on/off model: 48 distinct fingerprints. *)
let service_population n =
  Array.init n (fun i ->
      {
        Model_spec.workload =
          Model_spec.Onoff
            {
              frequency = 0.25 +. (0.25 *. float_of_int (i mod 8));
              k = 1;
              on_current = 0.96;
            };
        capacity = 5400. +. (300. *. float_of_int (i / 8));
        c = 1.0;
        k = 0.0;
        delta = 300.;
        accuracy = None;
      })

let zipf_weights ~exponent n =
  Array.init n (fun i -> 1. /. (float_of_int (i + 1) ** exponent))

let service_query rng specs weights q =
  let spec = specs.(Rng.discrete rng weights) in
  let payload =
    let r = Rng.uniform rng in
    if r < 0.70 then Squery.Cdf { times = [| 5000.; 10000.; 15000. |] }
    else if r < 0.90 then
      Squery.Percentiles { ps = [| 0.5; 0.9 |]; horizon = 25000.; points = 20 }
    else Squery.Stats
  in
  { Squery.id = Printf.sprintf "q%04d" q; model = Some spec; payload;
    deadline_s = None }

let service_report path =
  let population = 48
  and cache_capacity = 16
  and queries = 1200
  and exponent = 1.1 in
  let specs = service_population population in
  let weights = zipf_weights ~exponent population in
  let svc = Service.create ~cache_capacity () in
  let cache = Service.cache svc in
  (* The counters are process-wide; report deltas. *)
  let hits0 = Scache.hits cache
  and misses0 = Scache.misses cache
  and evictions0 = Scache.evictions cache in
  let c_builds = Telemetry.counter "discretized.builds" in
  let builds0 = Telemetry.value c_builds in
  let c_admitted = Telemetry.counter "service.admitted"
  and c_shed = Telemetry.counter "service.shed" in
  let admitted0 = Telemetry.value c_admitted
  and shed0 = Telemetry.value c_shed in
  let rng = Rng.create ~seed:20070625L () in
  let latencies = Array.make queries 0. in
  let hist = Streamstat.Hist.create () in
  let failures = ref 0 in
  for q = 0 to queries - 1 do
    let req = service_query rng specs weights q in
    let t, resp = wall (fun () -> Service.handle svc req) in
    latencies.(q) <- t;
    Streamstat.Hist.observe hist t;
    match resp.Squery.result with
    | Ok _ -> ()
    | Error e ->
        incr failures;
        Printf.eprintf "service report: %s failed: %s (%s, code %d)\n"
          req.Squery.id e.Squery.message e.Squery.kind e.Squery.code
  done;
  let hits = Scache.hits cache - hits0
  and misses = Scache.misses cache - misses0
  and evictions = Scache.evictions cache - evictions0
  and builds = Telemetry.value c_builds - builds0 in
  let admitted = Telemetry.value c_admitted - admitted0
  and shed = Telemetry.value c_shed - shed0 in
  let shed_rate =
    if admitted + shed = 0 then 0.
    else float_of_int shed /. float_of_int (admitted + shed)
  and depth_p99 = Batlife_service.Obs.queue_depth_p99 (Service.obs svc) in
  let hit_rate = float_of_int hits /. float_of_int (hits + misses) in
  let sorted = Array.copy latencies in
  Array.sort Float.compare sorted;
  let pct p =
    sorted.(min (queries - 1) (int_of_float (p *. float_of_int queries)))
  in
  let mean = Array.fold_left ( +. ) 0. latencies /. float_of_int queries in
  Printf.printf
    "=== Query service (%d Zipf(%.1f) queries, %d models, cache %d) ===\n"
    queries exponent population cache_capacity;
  Printf.printf
    "  cache: %d hits / %d misses (%.1f %% hit rate), %d evictions, %d Q* \
     builds\n"
    hits misses (hit_rate *. 100.) evictions builds;
  Printf.printf
    "  admission: %d admitted, %d shed (shed rate %.4f), queue-depth p99 %.1f\n"
    admitted shed shed_rate depth_p99;
  Printf.printf "  latency: p50 %.0f us, p90 %.0f us, p99 %.0f us, max %.0f us\n"
    (pct 0.50 *. 1e6) (pct 0.90 *. 1e6) (pct 0.99 *. 1e6)
    (sorted.(queries - 1) *. 1e6);
  Printf.printf "  failed queries: %d\n" !failures;
  (* Cross-check: the bounded streaming histogram the live service
     scrapes must agree with the exact sorted quantiles computed on
     the very same latencies, within its documented relative error
     bound (both use the floor(p*n) rank convention, so the only
     divergence allowed is the bucket-midpoint rounding). *)
  let bound = Streamstat.Hist.rel_error_bound hist in
  let stream_pct p = Streamstat.Hist.quantile hist p in
  let quantile_checks =
    List.map
      (fun p ->
        let exact = pct p and stream = stream_pct p in
        let rel =
          if exact > 0. then Float.abs (stream -. exact) /. exact else 0.
        in
        (p, exact, stream, rel))
      [ 0.50; 0.90; 0.99 ]
  in
  let max_rel_error =
    List.fold_left (fun acc (_, _, _, rel) -> Float.max acc rel)
      0. quantile_checks
  in
  Printf.printf
    "  streaming: p50 %.0f us, p90 %.0f us, p99 %.0f us (max rel err %.4f, \
     bound %.4f)\n"
    (stream_pct 0.50 *. 1e6) (stream_pct 0.90 *. 1e6)
    (stream_pct 0.99 *. 1e6) max_rel_error bound;
  let quantile_violation =
    List.exists (fun (_, _, _, rel) -> rel > bound) quantile_checks
  in
  if quantile_violation then
    List.iter
      (fun (p, exact, stream, rel) ->
        if rel > bound then
          Printf.eprintf
            "service report: streaming p%.0f = %.6fs vs exact %.6fs (rel \
             err %.4f > bound %.4f)\n"
            (p *. 100.) stream exact rel bound)
      quantile_checks;
  (* The benchmark drives the engine directly (no wire loop), so every
     query must be admitted and none shed — a nonzero shed here means
     admission accounting leaked into the engine path. *)
  if !failures > 0 || hits = 0 || quantile_violation || shed > 0
     || admitted < queries
  then begin
    prerr_endline
      "service report: failed queries, cold cache, sheds at benchmark load, \
       or streaming quantile outside documented bound (service bug)";
    exit 1
  end;
  Batlife_numerics.Atomic_io.with_out ~path (fun oc ->
  Printf.fprintf oc
    {|{
  "benchmark": "query service",
  "population": { "models": %d, "zipf_exponent": %.2f },
  "queries": { "total": %d, "failed": %d,
               "mix": "70%% cdf / 20%% percentiles / 10%% stats" },
  "cache": { "capacity": %d, "hits": %d, "misses": %d,
             "evictions": %d, "hit_rate": %.4f },
  "admission": { "admitted": %d, "shed": %d, "shed_rate": %.4f,
                 "queue_depth_p99": %.1f },
  "q_star_builds": %d,
  "latency_seconds": {
    "mean": %.6f, "p50": %.6f, "p90": %.6f, "p99": %.6f, "max": %.6f
  },
  "streaming_latency_seconds": {
    "p50": %.6f, "p90": %.6f, "p99": %.6f,
    "rel_error_bound": %.6f, "max_rel_error": %.6f
  }
}
|}
    population exponent queries !failures cache_capacity hits misses
    evictions hit_rate admitted shed shed_rate depth_p99 builds mean
    (pct 0.50) (pct 0.90) (pct 0.99)
    sorted.(queries - 1) (stream_pct 0.50) (stream_pct 0.90)
    (stream_pct 0.99) bound max_rel_error);
  Printf.printf "  wrote %s\n" path

let timing_tests =
  Test.make_grouped ~name:"batlife"
    [
      Test.make ~name:"table1: analytic KiBaM square-wave lifetime"
        (Staged.stage table1_kernel);
      Test.make ~name:"fig2: KiBaM trace (12000 s)" (Staged.stage fig2_kernel);
      Test.make ~name:"fig7: KiBaMRM on/off c=1 (Delta=100)"
        (Staged.stage fig7_kernel);
      Test.make ~name:"fig8: KiBaMRM on/off c=0.625 (Delta=100)"
        (Staged.stage fig8_kernel);
      Test.make ~name:"fig9: Q* construction (Delta=25)"
        (Staged.stage fig9_kernel);
      Test.make ~name:"fig10: KiBaMRM simple model (Delta=25)"
        (Staged.stage fig10_kernel);
      Test.make ~name:"fig11: KiBaMRM burst model (Delta=10)"
        (Staged.stage fig11_kernel);
      Test.make ~name:"simulation: one on/off replication"
        (Staged.stage simulation_kernel);
      Test.make ~name:"micro: exact occupation-time query (qt~30k)"
        (Staged.stage occupation_kernel);
      Test.make ~name:"micro: Poisson weights (lambda=4e4)"
        (Staged.stage poisson_kernel);
      Test.make ~name:"micro: sparse vecmat (fig8 Delta=50, 30k nnz)"
        (Staged.stage vecmat_kernel);
      Test.make ~name:"scheduling: 2-cell round robin to depletion"
        (Staged.stage scheduler_kernel);
      Test.make ~name:"battery: Rakhmatov-Vrudhula lifetime"
        (Staged.stage rakhmatov_kernel);
      Test.make ~name:"engine: per-call baseline (5 sweeps)"
        (Staged.stage engine_per_call_kernel);
      Test.make ~name:"engine: batched session (1 sweep)"
        (Staged.stage engine_session_kernel);
    ]

let run_timing ~quota =
  print_newline ();
  print_endline "=== Timing (Bechamel, monotonic clock) ===";
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second quota) ~stabilize:true ()
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let raw = Benchmark.all cfg [ instance ] timing_tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols instance raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name result ->
      let estimate =
        match Analyze.OLS.estimates result with
        | Some [ e ] -> e
        | Some _ | None -> Float.nan
      in
      rows := (name, estimate) :: !rows)
    results;
  let rows = List.sort (fun (_, a) (_, b) -> Float.compare a b) !rows in
  let pretty ns =
    if Float.is_nan ns then "n/a"
    else if ns >= 1e9 then Printf.sprintf "%8.3f s " (ns /. 1e9)
    else if ns >= 1e6 then Printf.sprintf "%8.3f ms" (ns /. 1e6)
    else if ns >= 1e3 then Printf.sprintf "%8.3f us" (ns /. 1e3)
    else Printf.sprintf "%8.0f ns" ns
  in
  List.iter
    (fun (name, estimate) ->
      Printf.printf "  %-52s %s/run\n" name (pretty estimate))
    rows

(* ------------------------------------------------------------------ *)

type mode = Both | Repro_only | Timing_only

let () =
  let options = ref Runner.default_options in
  let mode = ref Both in
  let quota = ref 0.5 in
  let ids = ref [] in
  let engine_json = ref None in
  let scaling_json = ref None in
  let kernel_json = ref None in
  let obs_json = ref None in
  let chaos_json = ref None in
  let chaos_plans = ref 60 in
  let chaos_seed = ref 2007L in
  let service_json = ref None in
  let serve_chaos_json = ref None in
  let rec parse = function
    | [] -> ()
    | "--full" :: rest ->
        options := { !options with Runner.full = true };
        parse rest
    | "--engine-report" :: path :: rest ->
        engine_json := Some path;
        parse rest
    | "--scaling-report" :: path :: rest ->
        scaling_json := Some path;
        parse rest
    | "--kernel-report" :: path :: rest ->
        kernel_json := Some path;
        parse rest
    | "--obs-report" :: path :: rest ->
        obs_json := Some path;
        parse rest
    | "--chaos-report" :: path :: rest ->
        chaos_json := Some path;
        parse rest
    | "--service-report" :: path :: rest ->
        service_json := Some path;
        parse rest
    | "--serve-chaos-report" :: path :: rest ->
        serve_chaos_json := Some path;
        parse rest
    | "--chaos-plans" :: n :: rest ->
        chaos_plans := int_of_string n;
        parse rest
    | "--chaos-seed" :: s :: rest ->
        chaos_seed := Int64.of_string s;
        parse rest
    | "--runs" :: n :: rest ->
        options := { !options with Runner.runs = int_of_string n };
        parse rest
    | "--out-dir" :: d :: rest ->
        options := { !options with Runner.out_dir = d };
        parse rest
    | "--repro-only" :: rest ->
        mode := Repro_only;
        parse rest
    | "--timing-only" :: rest ->
        mode := Timing_only;
        parse rest
    | "--quota" :: s :: rest ->
        quota := float_of_string s;
        parse rest
    | id :: rest ->
        ids := id :: !ids;
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  let options = !options in
  (* --scaling-report is a standalone mode: only the scaling benchmark
     runs (it solves the same model several times; interleaving the
     full reproduction or Bechamel passes would just add noise). *)
  (match !scaling_json with
  | Some path ->
      scaling_report path;
      exit 0
  | None -> ());
  (* --kernel-report also runs alone: it reads the process-wide work
     counters, which any interleaved solve would pollute. *)
  (match !kernel_json with
  | Some path ->
      kernel_report path;
      exit 0
  | None -> ());
  (* --obs-report likewise runs alone: it compares wall clocks, so any
     interleaved work would pollute the overhead ratio. *)
  (match !obs_json with
  | Some path ->
      obs_report path;
      exit 0
  | None -> ());
  (* --chaos-report runs alone too: it arms process-wide injection
     sites, which must never overlap the reproduction passes. *)
  (match !chaos_json with
  | Some path ->
      Chaos.report ~plans:!chaos_plans ~seed:!chaos_seed ~path;
      exit 0
  | None -> ());
  (* --serve-chaos-report runs alone: it arms the server.* injection
     sites and owns the process's signal disposition. *)
  (match !serve_chaos_json with
  | Some path ->
      Serve_chaos.report ~path;
      exit 0
  | None -> ());
  (* --service-report runs alone for the same reason as the scaling
     report: it measures per-query wall clocks. *)
  (match !service_json with
  | Some path ->
      service_report path;
      exit 0
  | None -> ());
  if !mode <> Timing_only then begin
    print_endline
      "batlife reproduction harness -- Cloth, Jongerden, Haverkort:";
    print_endline "\"Computing Battery Lifetime Distributions\" (DSN 2007)";
    match List.rev !ids with
    | [] -> Runner.run_all ~options ()
    | ids ->
        List.iter
          (fun id ->
            match Runner.run_one ~options id with
            | Ok () -> ()
            | Error msg ->
                prerr_endline msg;
                exit 2)
          ids
  end;
  (match !engine_json with
  | Some path -> engine_report path
  | None -> ());
  if !mode <> Repro_only then run_timing ~quota:!quota
