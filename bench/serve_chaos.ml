(* Serve-side chaos harness: hostile clients against a live daemon.

   [bench --serve-chaos-report PATH] boots the real [Server.serve_unix]
   accept loop on a scratch socket (in its own domain, with
   deliberately small guard limits) and throws the misbehaviour matrix
   at it over real connections: an endless frame with no newline, a
   burst past the admission queue, a stream of garbage, a client that
   vanishes mid-batch, a stalled sender, and the armed [server.*]
   fault-injection sites (slow reads, forced disconnects, one-byte
   short writes, flood-forced sheds).

   Self-verifying invariants, checked per scenario:
     - the daemon never dies: a health probe on a fresh connection
       answers [ok] after every scenario, and the final drain exits the
       accept loop cleanly with the socket unlinked;
     - every admitted frame is answered (Ok or a structured error) and
       every shed frame gets a well-formed code-9 [overloaded] response
       carrying a [retry_after_s] hint;
     - guard trips end only the offending connection, with a
       structured goodbye where one is promised (oversized frame,
       strike limit);
     - probe latency stays bounded (no raw timings in the snapshot —
       only the boolean, so the committed file is machine-independent).

   Violations are collected per scenario and the run exits nonzero if
   any survive, mirroring chaos.ml for the solver side. *)

module Server = Batlife_service.Server
module Service = Batlife_service.Service
module Drain = Batlife_service.Drain
module Squery = Batlife_service.Query
module Model_spec = Batlife_service.Model_spec
module Fi = Batlife_numerics.Fi
module Telemetry = Batlife_numerics.Telemetry

(* Small guard limits so every guard is reachable in a fast run. *)
let limits =
  {
    Server.max_frame_bytes = 4096;
    read_idle_s = 1.0;
    write_timeout_s = 2.0;
    max_strikes = 2;
    queue = 2;
  }

let max_batch = 2
let probe_latency_bound_s = 5.0

let small_spec =
  {
    Model_spec.workload =
      Model_spec.Onoff { frequency = 1.0; k = 1; on_current = 0.96 };
    capacity = 5400.;
    c = 1.0;
    k = 0.0;
    delta = 300.;
    accuracy = None;
  }

let cdf_line id =
  Squery.request_to_line
    {
      Squery.id;
      model = Some small_spec;
      payload = Squery.Cdf { times = [| 2000.; 4000. |] };
      deadline_s = None;
    }

let health_line id =
  Squery.request_to_line
    { Squery.id; model = None; payload = Squery.Health; deadline_s = None }

(* ---------------------------------------------------------------- *)
(* Raw-socket client helpers; every read is deadline-bounded so a
   server bug can fail a scenario but never hang the harness.        *)

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  fd

(* EPIPE/ECONNRESET mean the server already dropped us — which is the
   very outcome several scenarios provoke, so the client shrugs. *)
let send_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let rec go off =
    if off < n then
      match Unix.write fd b off (n - off) with
      | written -> go (off + written)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
          ()
  in
  go 0

(* Read until [n] lines, EOF, or the deadline; returns the lines and
   whether EOF was seen. *)
let recv_lines fd ~n ~timeout_s =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let buf = Buffer.create 4096 in
  let chunk = Bytes.create 65536 in
  let lines = ref [] and count = ref 0 and eof = ref false in
  let drain_buffer () =
    let rec split () =
      let s = Buffer.contents buf in
      match String.index_opt s '\n' with
      | None -> ()
      | Some i ->
          lines := String.sub s 0 i :: !lines;
          incr count;
          Buffer.clear buf;
          Buffer.add_substring buf s (i + 1) (String.length s - i - 1);
          split ()
    in
    split ()
  in
  let rec go () =
    if !count >= n || !eof then ()
    else
      let left = deadline -. Unix.gettimeofday () in
      if left <= 0. then ()
      else
        match Unix.select [ fd ] [] [] left with
        | [ _ ], _, _ -> (
            match Unix.read fd chunk 0 (Bytes.length chunk) with
            | 0 ->
                eof := true;
                ()
            | r ->
                Buffer.add_subbytes buf chunk 0 r;
                drain_buffer ();
                go ()
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
            | exception
                Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
                eof := true;
                ())
        | _ -> ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ();
  (List.rev !lines, !eof)

let expect_eof fd ~timeout_s =
  let _, eof = recv_lines fd ~n:max_int ~timeout_s in
  eof

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* ---------------------------------------------------------------- *)
(* Scenario bookkeeping. *)

type tally = {
  mutable sent : int;
  mutable responses : int;
  mutable ok : int;
  mutable overloaded : int;
  mutable errors : int;
  mutable violations : string list;
}

let tally () =
  { sent = 0; responses = 0; ok = 0; overloaded = 0; errors = 0;
    violations = [] }

let violation t fmt =
  Printf.ksprintf (fun msg -> t.violations <- msg :: t.violations) fmt

(* Classify one response line into the tally; flags unparseable frames
   and overloaded frames missing their retry hint. *)
let classify t line =
  t.responses <- t.responses + 1;
  match Squery.response_of_line ~source:"<chaos>" line with
  | Error e -> violation t "unparseable response frame: %s" e.Squery.message
  | Ok resp -> (
      match resp.Squery.result with
      | Ok _ -> t.ok <- t.ok + 1
      | Error e when e.Squery.kind = "overloaded" ->
          t.overloaded <- t.overloaded + 1;
          if e.Squery.code <> Squery.overloaded_code then
            violation t "overloaded frame has code %d, want %d" e.Squery.code
              Squery.overloaded_code;
          if e.Squery.retry_after_s = None then
            violation t "overloaded frame lacks retry_after_s"
      | Error _ -> t.errors <- t.errors + 1)

(* ---------------------------------------------------------------- *)
(* Scenarios.  Each takes the socket path, runs one hostile (or
   Fi-armed) client, and returns its tally. *)

let scenario_well_formed path =
  let t = tally () in
  let fd = connect path in
  Fun.protect ~finally:(fun () -> close_quietly fd) @@ fun () ->
  t.sent <- 3;
  send_all fd (cdf_line "w1" ^ cdf_line "w2" ^ health_line "w3");
  let lines, _ = recv_lines fd ~n:3 ~timeout_s:30. in
  List.iter (classify t) lines;
  if t.ok <> 3 then
    violation t "well-formed: want 3 ok responses, got %d ok / %d frames"
      t.ok t.responses;
  t

let scenario_oversized_frame path =
  let t = tally () in
  let fd = connect path in
  Fun.protect ~finally:(fun () -> close_quietly fd) @@ fun () ->
  t.sent <- 1;
  send_all fd (String.make (limits.Server.max_frame_bytes + 512) 'x');
  let lines, eof = recv_lines fd ~n:1 ~timeout_s:10. in
  (match lines with
  | [ line ] -> (
      t.responses <- 1;
      match Squery.response_of_line ~source:"<chaos>" line with
      | Ok { Squery.result = Error e; _ } when e.Squery.code = 4 ->
          t.errors <- 1
      | Ok _ -> violation t "oversized frame: goodbye is not a code-4 error"
      | Error e ->
          violation t "oversized frame: unparseable goodbye: %s"
            e.Squery.message)
  | _ -> violation t "oversized frame: no structured goodbye frame");
  if not (eof || expect_eof fd ~timeout_s:5.) then
    violation t "oversized frame: connection not dropped";
  t

let scenario_frame_flood path =
  let t = tally () in
  let fd = connect path in
  Fun.protect ~finally:(fun () -> close_quietly fd) @@ fun () ->
  let n = 12 in
  t.sent <- n;
  let frames = List.init n (fun i -> health_line (Printf.sprintf "f%d" i)) in
  send_all fd (String.concat "" frames);
  let lines, _ = recv_lines fd ~n ~timeout_s:30. in
  List.iter (classify t) lines;
  if t.responses <> n then
    violation t "flood: %d frames sent, only %d answered" n t.responses;
  if t.ok + t.overloaded + t.errors <> t.responses then
    violation t "flood: %d responses but only %d classified" t.responses
      (t.ok + t.overloaded + t.errors);
  if t.overloaded = 0 then
    violation t
      "flood: a %d-frame burst past batch %d + queue %d shed nothing" n
      max_batch limits.Server.queue;
  t

let scenario_malformed_strikes path =
  let t = tally () in
  let fd = connect path in
  Fun.protect ~finally:(fun () -> close_quietly fd) @@ fun () ->
  t.sent <- limits.Server.max_strikes;
  send_all fd "this is not json\n{\"v\":\"wrong/0\"}\n";
  (* Every strike gets its structured error, then the strike limit
     earns one goodbye frame and the drop. *)
  let lines, eof = recv_lines fd ~n:(limits.Server.max_strikes + 1)
      ~timeout_s:10. in
  List.iter (classify t) lines;
  if t.errors < limits.Server.max_strikes then
    violation t "strikes: want %d structured rejections, got %d"
      limits.Server.max_strikes t.errors;
  if not (eof || expect_eof fd ~timeout_s:5.) then
    violation t "strikes: connection survived the strike limit";
  t

let scenario_mid_batch_disconnect path =
  let t = tally () in
  let fd = connect path in
  t.sent <- 2;
  send_all fd (cdf_line "d1" ^ cdf_line "d2");
  (* Vanish without reading a byte: the server's response writes must
     surface as [`Client_gone], not SIGPIPE or a crash (the follow-up
     probe proves the daemon survived). *)
  close_quietly fd;
  t

let scenario_idle_timeout path =
  let t = tally () in
  let fd = connect path in
  Fun.protect ~finally:(fun () -> close_quietly fd) @@ fun () ->
  if not (expect_eof fd ~timeout_s:(limits.Server.read_idle_s +. 5.)) then
    violation t "idle: stalled connection not dropped at read_idle_s";
  t

let scenario_fi_slow_read path =
  let t = tally () in
  Fi.arm ~count:5 "server.slow_read";
  Fun.protect ~finally:(fun () -> Fi.disarm "server.slow_read") @@ fun () ->
  let fd = connect path in
  Fun.protect ~finally:(fun () -> close_quietly fd) @@ fun () ->
  t.sent <- 2;
  send_all fd (health_line "s1" ^ health_line "s2");
  let lines, _ = recv_lines fd ~n:2 ~timeout_s:30. in
  List.iter (classify t) lines;
  if t.ok <> 2 then
    violation t "slow_read: want 2 ok responses through delays, got %d" t.ok;
  t

let scenario_fi_short_write path =
  let t = tally () in
  Fi.arm ~count:8 "server.short_write";
  Fun.protect ~finally:(fun () -> Fi.disarm "server.short_write") @@ fun () ->
  let fd = connect path in
  Fun.protect ~finally:(fun () -> close_quietly fd) @@ fun () ->
  t.sent <- 2;
  send_all fd (health_line "c1" ^ health_line "c2");
  let lines, _ = recv_lines fd ~n:2 ~timeout_s:30. in
  (* Self-verifying: the one-byte write rounds must still deliver
     byte-intact frames, or classify flags them unparseable. *)
  List.iter (classify t) lines;
  if t.ok <> 2 then
    violation t "short_write: want 2 intact ok responses, got %d ok of %d"
      t.ok t.responses;
  t

let scenario_fi_disconnect path =
  let t = tally () in
  Fi.arm ~count:1 "server.disconnect";
  Fun.protect ~finally:(fun () -> Fi.disarm "server.disconnect") @@ fun () ->
  let fd = connect path in
  Fun.protect ~finally:(fun () -> close_quietly fd) @@ fun () ->
  t.sent <- 1;
  send_all fd (health_line "x1");
  if not (expect_eof fd ~timeout_s:10.) then
    violation t "fi_disconnect: injected disconnect did not end connection";
  t

let scenario_fi_frame_flood path =
  let t = tally () in
  Fi.arm ~count:2 "server.frame_flood";
  Fun.protect ~finally:(fun () -> Fi.disarm "server.frame_flood") @@ fun () ->
  let fd = connect path in
  Fun.protect ~finally:(fun () -> close_quietly fd) @@ fun () ->
  let n = 4 in
  t.sent <- n;
  let frames = List.init n (fun i -> health_line (Printf.sprintf "g%d" i)) in
  send_all fd (String.concat "" frames);
  let lines, _ = recv_lines fd ~n ~timeout_s:30. in
  List.iter (classify t) lines;
  if t.responses <> n then
    violation t "fi_flood: %d frames sent, only %d answered" n t.responses;
  if t.overloaded = 0 then
    violation t "fi_flood: armed flood site shed nothing";
  t

let scenarios =
  [
    ("well_formed", scenario_well_formed);
    ("oversized_frame", scenario_oversized_frame);
    ("frame_flood", scenario_frame_flood);
    ("malformed_strikes", scenario_malformed_strikes);
    ("mid_batch_disconnect", scenario_mid_batch_disconnect);
    ("idle_timeout", scenario_idle_timeout);
    ("fi_slow_read", scenario_fi_slow_read);
    ("fi_short_write", scenario_fi_short_write);
    ("fi_disconnect", scenario_fi_disconnect);
    ("fi_frame_flood", scenario_fi_frame_flood);
  ]

(* ---------------------------------------------------------------- *)

let wait_for_socket path =
  let deadline = Unix.gettimeofday () +. 10. in
  let rec go () =
    if Unix.gettimeofday () > deadline then
      failwith "serve chaos: daemon socket never appeared"
    else if Sys.file_exists path then ()
    else begin
      Unix.sleepf 0.01;
      go ()
    end
  in
  go ()

(* Liveness probe on a fresh connection; returns its wall time, or a
   violation recorded into [t]. *)
let probe path t =
  let t0 = Unix.gettimeofday () in
  match connect path with
  | exception Unix.Unix_error (e, _, _) ->
      violation t "probe: connect failed: %s" (Unix.error_message e);
      infinity
  | fd ->
      Fun.protect ~finally:(fun () -> close_quietly fd) @@ fun () ->
      send_all fd (health_line "probe");
      let lines, _ = recv_lines fd ~n:1 ~timeout_s:probe_latency_bound_s in
      (match lines with
      | [ line ] -> (
          match Squery.response_of_line ~source:"<probe>" line with
          | Ok { Squery.result = Ok _; _ } -> ()
          | Ok _ -> violation t "probe: health answered with an error"
          | Error e ->
              violation t "probe: unparseable health response: %s"
                e.Squery.message)
      | _ -> violation t "probe: no health response (daemon wedged or dead)");
      Unix.gettimeofday () -. t0

let report ~path:out_path =
  Fi.reset ();
  let sock_dir = Filename.temp_file "batlife-chaos" "" in
  Sys.remove sock_dir;
  Unix.mkdir sock_dir 0o700;
  let sock = Filename.concat sock_dir "serve.sock" in
  let drain = Drain.create ~drain_s:10. () in
  let service = Service.create ~cache_capacity:4 () in
  let shed0 = Telemetry.value (Telemetry.counter "service.shed") in
  let daemon =
    Domain.spawn (fun () ->
        match
          Server.serve_unix ~limits ~drain ~max_batch ~backlog:8 service
            ~path:sock
        with
        | () -> Ok ()
        | exception e -> Error (Printexc.to_string e))
  in
  wait_for_socket sock;
  let probe_latencies = ref [] in
  let results =
    List.map
      (fun (name, run) ->
        let t =
          match run sock with
          | t -> t
          | exception e ->
              let t = tally () in
              violation t "scenario raised: %s" (Printexc.to_string e);
              t
        in
        probe_latencies := probe sock t :: !probe_latencies;
        Printf.printf "  %-22s sent %2d  ok %2d  overloaded %2d  errors %2d  %s\n"
          name t.sent t.ok t.overloaded t.errors
          (if t.violations = [] then "ok"
           else String.concat "; " (List.rev t.violations));
        (name, t))
      scenarios
  in
  (* Graceful shutdown: the drain must end the accept loop, unlink the
     socket, and hand back a clean exit from the daemon domain. *)
  Drain.request drain;
  let daemon_exit = Domain.join daemon in
  Drain.stop drain;
  Fi.reset ();
  let shutdown = tally () in
  (match daemon_exit with
  | Ok () -> ()
  | Error msg -> violation shutdown "daemon died: %s" msg);
  if Sys.file_exists sock then
    violation shutdown "socket file survived the drain";
  (try Unix.rmdir sock_dir with Unix.Unix_error _ -> ());
  let sheds = Telemetry.value (Telemetry.counter "service.shed") - shed0 in
  if sheds = 0 then
    violation shutdown "service.shed counter never moved across the matrix";
  let probes_bounded =
    List.for_all (fun l -> l < probe_latency_bound_s) !probe_latencies
  in
  if not probes_bounded then
    violation shutdown "a health probe exceeded the latency bound";
  let results = results @ [ ("shutdown", shutdown) ] in
  let total_violations =
    List.fold_left (fun acc (_, t) -> acc + List.length t.violations) 0 results
  in
  Printf.printf "  %-22s %s\n" "shutdown"
    (if shutdown.violations = [] then "clean drain, socket unlinked"
     else String.concat "; " (List.rev shutdown.violations));
  Batlife_numerics.Atomic_io.with_out ~path:out_path (fun oc ->
      let scenario_json (name, t) =
        Printf.sprintf
          {|    { "name": %S, "sent": %d, "responses": %d, "ok": %d,
      "overloaded": %d, "structured_errors": %d, "violations": [%s] }|}
          name t.sent t.responses t.ok t.overloaded t.errors
          (String.concat ", "
             (List.rev_map (Printf.sprintf "%S") t.violations))
      in
      Printf.fprintf oc
        {|{
  "benchmark": "serve chaos",
  "limits": { "max_frame_bytes": %d, "read_idle_s": %.1f,
              "write_timeout_s": %.1f, "max_strikes": %d,
              "queue": %d, "max_batch": %d },
  "scenarios": [
%s
  ],
  "daemon": { "clean_exit": %b, "socket_removed": %b,
              "probes_bounded": %b, "shed_total_nonzero": %b },
  "violations": %d
}
|}
        limits.Server.max_frame_bytes limits.Server.read_idle_s
        limits.Server.write_timeout_s limits.Server.max_strikes
        limits.Server.queue max_batch
        (String.concat ",\n" (List.map scenario_json results))
        (daemon_exit = Ok ())
        (not (Sys.file_exists sock))
        probes_bounded (sheds > 0) total_violations);
  Printf.printf "  wrote %s\n" out_path;
  if total_violations > 0 then begin
    Printf.eprintf
      "serve chaos: %d violation(s) — the daemon is not overload-safe\n"
      total_violations;
    exit 1
  end
