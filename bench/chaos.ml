(* Chaos harness: a seeded matrix of fault-injection plans driven
   through whole solver runs, asserting the repo's recovery invariant:

     every run either ends bitwise-identical to the clean run, or in a
     clean structured failure (a [Diag.Error] with its stable exit
     class) — and in both cases leaves no partial or corrupt artifact
     behind.

   Two workload shapes cover the recovery machinery end to end:

   - "resumable": a fig-7 CDF run in two phases — phase A under a
     small budget with periodic checkpoints (interrupted mid-sweep),
     phase B resuming from whatever checkpoint survived.  IO faults
     (Atomic_io sites) hit the saves, corruption faults (Checkpoint
     sites) hit the load, clock skew hits the budget; checkpoint
     quarantine plus the resume guarantee must still deliver the
     clean curve.

   - "escalating": a plain fig-2-battery CDF run whose kernel products
     are sabotaged (NaN / overflow injection) or whose pool workers
     crash mid-section; pool supervision and the sweep-verification
     escalation ladder must recover (count small) or fail structured
     (count huge).

   Randomness enters only here, from one seeded xoshiro generator, so
   any observed outcome replays from its plan id and seed.  The first
   plans deterministically cover every site once; the rest are drawn
   at random.  Written as a committed JSON snapshot (BENCH_chaos.json)
   so CI diffs the outcome matrix. *)

open Batlife_core
open Batlife_experiments
module Diag = Batlife_numerics.Diag
module Fi = Batlife_numerics.Fi
module Rng = Batlife_numerics.Rng
module Npool = Batlife_numerics.Pool
module Budget = Batlife_numerics.Budget
module Solver_opts = Batlife_ctmc.Solver_opts

let times = [| 4000.; 8000.; 12000.; 15000.; 17000. |]
let delta = 100.

let model_fig7 () =
  Params.onoff_kibamrm ~frequency:1.0 (Params.battery_single_well ())

let model_fig2 () =
  Params.onoff_kibamrm ~frequency:1.0 (Params.battery_two_well ())

(* Job count pinned so the committed outcome matrix is independent of
   the machine's core count (results are bitwise identical across job
   counts anyway; this pins consultation schedules). *)
let opts () = Solver_opts.make ~jobs:2 ()

let bits (c : Lifetime.curve) =
  Array.map Int64.bits_of_float c.Lifetime.probabilities

(* ------------------------------------------------------------------ *)
(* The site matrix: (site, workload, after-horizon, eligible counts).
   [after] is drawn below the horizon — sized to the number of
   consultations the workload actually performs (saves for IO sites,
   loads for corruption sites, steps for kernel sites) so plans mostly
   land inside the run.  Kernel counts are 1 (one bad product: the
   escalation ladder must recover, bitwise) or 1000 (persistent fault:
   every rung fails, the first breakdown must surface).  Pool crashes
   stay at <= 2 with a retry allowance of 2, so supervision must
   always recover them. *)

type workload = Resumable | Escalating

let workload_name = function
  | Resumable -> "resumable"
  | Escalating -> "escalating"

let site_matrix =
  [|
    ("atomic_io.write_fail", Resumable, 6, [| 1 |]);
    ("atomic_io.short_write", Resumable, 6, [| 1 |]);
    ("atomic_io.fsync_fail", Resumable, 6, [| 1 |]);
    ("atomic_io.rename_fail", Resumable, 6, [| 1 |]);
    ("atomic_io.dir_fsync_fail", Resumable, 6, [| 1 |]);
    ("checkpoint.truncate", Resumable, 1, [| 1 |]);
    ("checkpoint.bitflip", Resumable, 1, [| 1 |]);
    ("checkpoint.version_skew", Resumable, 1, [| 1 |]);
    ("budget.clock_skew", Resumable, 30, [| 1 |]);
    ("transient.step_nan", Escalating, 200, [| 1; 1000 |]);
    ("transient.step_overflow", Escalating, 200, [| 1; 1000 |]);
    ("pool.crash", Escalating, 100, [| 1; 2 |]);
  |]

type plan = {
  id : int;
  workload : workload;
  site : string;
  after : int;
  count : int;
}

let draw_plan rng id =
  let site, workload, horizon, counts =
    site_matrix.(Rng.int_below rng (Array.length site_matrix))
  in
  let after = if horizon <= 0 then 0 else Rng.int_below rng horizon in
  let count = counts.(Rng.int_below rng (Array.length counts)) in
  { id; workload; site; after; count }

(* Plans 0 .. |matrix|-1 cover every site once with its smallest
   count, so no seed can leave a site untested. *)
let canonical_plan id =
  let site, workload, _, counts = site_matrix.(id) in
  { id; workload; site; after = 0; count = counts.(0) }

(* ------------------------------------------------------------------ *)
(* Workloads.  Each returns the final curve (exceptions classify the
   run); [dir] holds every artifact the run may produce. *)

let run_resumable ~dir () =
  let ckpt = Filename.concat dir "chaos.ckpt" in
  let phase_a_budget =
    (* The clock-skew site is only consulted under a wall deadline;
       give it one too large to expire on its own. *)
    if Fi.armed () |> List.exists (fun (n, _, _) -> n = "budget.clock_skew")
    then Budget.create ~wall_s:1e6 ()
    else Budget.create ~max_products:35 ()
  in
  let phase_a =
    match
      Lifetime.cdf_resumable
        ~opts:(Solver_opts.make ~jobs:2 ~budget:phase_a_budget ())
        ~checkpoint:(ckpt, 7) ~delta ~times (model_fig7 ())
    with
    | curve -> Some curve
    | exception Diag.Error _ ->
        (* Interrupted mid-sweep (budget, or an injected save failure);
           whatever checkpoint survived is what phase B gets. *)
        None
  in
  match phase_a with
  | Some curve -> curve
  | None ->
      if Sys.file_exists ckpt then
        Lifetime.cdf_resumable ~opts:(opts ()) ~resume:ckpt ~delta ~times
          (model_fig7 ())
      else
        Lifetime.cdf_resumable ~opts:(opts ()) ~delta ~times (model_fig7 ())

let run_escalating ~dir:_ () =
  Lifetime.cdf ~opts:(opts ()) ~delta ~times (model_fig2 ())

(* ------------------------------------------------------------------ *)
(* Outcome classification and the artifact scan. *)

let error_class = function
  | Diag.Invalid_model _ -> "invalid_model"
  | Diag.Parse_error _ -> "parse_error"
  | Diag.Nonconvergence _ -> "nonconvergence"
  | Diag.Numerical_breakdown _ -> "numerical_breakdown"
  | Diag.Budget_exhausted _ -> "budget_exhausted"
  | Diag.Cancelled _ -> "cancelled"

let classify ~reference f =
  match f () with
  | curve ->
      if bits curve = reference then ("identical", "")
      else
        ( "violation",
          "run completed but differs bitwise from the clean run" )
  | exception Diag.Error e -> ("structured_failure", error_class e)
  | exception Fi.Injected site ->
      ("violation", "uncaught injected crash escaped from site " ^ site)
  | exception e -> ("violation", "uncaught exception: " ^ Printexc.to_string e)

(* After the plan is disarmed: no temp-file litter, and any checkpoint
   still standing must load cleanly (quarantined [.corrupt] files are
   a legitimate trace of recovery, not litter). *)
let artifact_issues dir =
  let issues = ref [] in
  Array.iter
    (fun f ->
      if Filename.check_suffix f ".tmp" then
        issues := ("temp-file litter: " ^ f) :: !issues)
    (Sys.readdir dir);
  let ckpt = Filename.concat dir "chaos.ckpt" in
  (if Sys.file_exists ckpt then
     match Checkpoint.load ~path:ckpt with
     | (_ : Checkpoint.payload) -> ()
     | exception Diag.Error _ ->
         issues := "unreadable checkpoint left behind" :: !issues);
  List.rev !issues

let clean_dir dir =
  Array.iter
    (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
    (Sys.readdir dir);
  try Unix.rmdir dir with Unix.Unix_error _ -> ()

(* ------------------------------------------------------------------ *)

let run_plan ~ref_resumable ~ref_escalating plan =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "batlife_chaos_%d_%d" (Unix.getpid ()) plan.id)
  in
  (try Unix.mkdir dir 0o700 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let reference, workload =
    match plan.workload with
    | Resumable -> (ref_resumable, run_resumable ~dir)
    | Escalating -> (ref_escalating, run_escalating ~dir)
  in
  let outcome, detail =
    Batlife_robust.Fault.with_sites
      [ (plan.site, plan.after, plan.count) ]
      (fun () -> classify ~reference workload)
  in
  let outcome, detail =
    match (outcome, artifact_issues dir) with
    | outcome, [] -> (outcome, detail)
    | _, issues -> ("violation", String.concat "; " issues)
  in
  clean_dir dir;
  (plan, outcome, detail)

let report ~plans:n_plans ~seed ~path =
  (* Supervision allowance for the pool-crash plans (the CLI wires
     --max-retries to the same knob). *)
  Npool.set_section_retries 2;
  Fi.reset ();
  Printf.printf "=== Chaos matrix (%d seeded fault plans, seed %Ld) ===\n"
    n_plans seed;
  let ref_resumable = bits (Lifetime.cdf ~opts:(opts ()) ~delta ~times (model_fig7 ())) in
  let ref_escalating =
    bits (Lifetime.cdf ~opts:(opts ()) ~delta ~times (model_fig2 ()))
  in
  let rng = Rng.create ~seed () in
  let n_canonical = Array.length site_matrix in
  let results =
    List.init n_plans (fun id ->
        let plan =
          if id < n_canonical then canonical_plan id else draw_plan rng id
        in
        let ((_, outcome, detail) as r) =
          run_plan ~ref_resumable ~ref_escalating plan
        in
        Printf.printf "  plan %2d  %-26s after=%-3d count=%-4d %s%s\n" plan.id
          plan.site plan.after plan.count outcome
          (if detail = "" then "" else ": " ^ detail);
        r)
  in
  Fi.reset ();
  Npool.set_section_retries 0;
  let count o =
    List.length (List.filter (fun (_, o', _) -> o' = o) results)
  in
  let identical = count "identical"
  and structured = count "structured_failure"
  and violations = count "violation" in
  Printf.printf
    "  %d identical, %d structured failures, %d violations\n" identical
    structured violations;
  Batlife_numerics.Atomic_io.with_out ~path (fun oc ->
      Printf.fprintf oc
        {|{
  "benchmark": "chaos fault-injection matrix",
  "workloads": {
    "resumable": "fig7 single-well CDF, delta = %g, budgeted+checkpointed phase then resume",
    "escalating": "fig2-battery two-well CDF, delta = %g, plain run"
  },
  "seed": %Ld,
  "plans": %d,
  "summary": {
    "identical": %d,
    "structured_failures": %d,
    "violations": %d
  },
  "runs": [
%s
  ]
}
|}
        delta delta seed n_plans identical structured violations
        (String.concat ",\n"
           (List.map
              (fun (p, outcome, detail) ->
                Printf.sprintf
                  {|    { "id": %d, "workload": "%s", "site": "%s", "after": %d, "count": %d, "outcome": "%s", "detail": "%s" }|}
                  p.id (workload_name p.workload) p.site p.after p.count
                  outcome
                  (String.concat ""
                     (List.map
                        (function
                          | '"' -> "\\\"" | '\\' -> "\\\\"
                          | c -> String.make 1 c)
                        (List.init (String.length detail) (String.get detail)))))
              results)));
  Printf.printf "  wrote %s\n" path;
  if violations > 0 then begin
    prerr_endline "chaos report: recovery invariant violated (see runs above)";
    exit 1
  end
