set title "Lifetime vs square-wave frequency (all battery models)"
set xlabel "log10 frequency (Hz)"
set ylabel "Pr[battery empty]"
set key bottom right
set grid
plot \
  "ext_frequency_sweep.dat" index 0 with lines title "ideal", \
  "ext_frequency_sweep.dat" index 1 with lines title "Peukert", \
  "ext_frequency_sweep.dat" index 2 with lines title "KiBaM", \
  "ext_frequency_sweep.dat" index 3 with lines title "modified KiBaM", \
  "ext_frequency_sweep.dat" index 4 with lines title "Rakhmatov-Vrudhula"
