set title "Absorbing vs recovering empty state (simple model)"
set xlabel "t (hours)"
set ylabel "Pr[battery empty]"
set key bottom right
set grid
plot \
  "ext_empty_recovery.dat" index 0 with lines title "P(empty by t) -- absorbing", \
  "ext_empty_recovery.dat" index 1 with lines title "P(empty at t) -- with recovery"
