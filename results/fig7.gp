set title "On/off model, C=7200 As, c=1, k=0"
set xlabel "t (seconds)"
set ylabel "Pr[battery empty]"
set key bottom right
set grid
plot \
  "fig7.dat" index 0 with lines title "Delta=100", \
  "fig7.dat" index 1 with lines title "Delta=50", \
  "fig7.dat" index 2 with lines title "Delta=25", \
  "fig7.dat" index 3 with lines title "Delta=5", \
  "fig7.dat" index 4 with lines title "simulation", \
  "fig7.dat" index 5 with lines title "exact (occupation time)"
