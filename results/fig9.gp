set title "On/off model, different initial capacities"
set xlabel "t (seconds)"
set ylabel "Pr[battery empty]"
set key bottom right
set grid
plot \
  "fig9.dat" index 0 with lines title "C=4500, c=1", \
  "fig9.dat" index 1 with lines title "C=7200, c=0.625 (Delta=25)", \
  "fig9.dat" index 2 with lines title "C=7200, c=1"
