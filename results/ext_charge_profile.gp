set title "Available-charge distribution over time (simple model)"
set xlabel "available charge (mAh)"
set ylabel "Pr[battery empty]"
set key bottom right
set grid
plot \
  "ext_charge_profile.dat" index 0 with lines title "t = 2 h", \
  "ext_charge_profile.dat" index 1 with lines title "t = 6 h", \
  "ext_charge_profile.dat" index 2 with lines title "t = 12 h", \
  "ext_charge_profile.dat" index 3 with lines title "t = 18 h", \
  "ext_charge_profile.dat" index 4 with lines title "t = 24 h"
