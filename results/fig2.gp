set title "KiBaM well contents, square wave f=0.001 Hz"
set xlabel "t (seconds)"
set ylabel "Pr[battery empty]"
set key bottom right
set grid
plot \
  "fig2.dat" index 0 with lines title "y1 (available charge)", \
  "fig2.dat" index 1 with lines title "y2 (bound charge)"
