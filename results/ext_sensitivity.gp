set title "Mean lifetime vs c and k (simple model)"
set xlabel "available-charge fraction c"
set ylabel "Pr[battery empty]"
set key bottom right
set grid
plot \
  "ext_sensitivity.dat" index 0 with lines title "k = 0.04 /h", \
  "ext_sensitivity.dat" index 1 with lines title "k = 0.08 /h", \
  "ext_sensitivity.dat" index 2 with lines title "k = 0.162 /h", \
  "ext_sensitivity.dat" index 3 with lines title "k = 0.32 /h", \
  "ext_sensitivity.dat" index 4 with lines title "k = 0.65 /h"
