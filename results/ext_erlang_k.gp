set title "On/off model with Erlang-K sojourns"
set xlabel "t (seconds)"
set ylabel "Pr[battery empty]"
set key bottom right
set grid
plot \
  "ext_erlang_k.dat" index 0 with lines title "Delta=50, K=1", \
  "ext_erlang_k.dat" index 1 with lines title "simulation, K=1", \
  "ext_erlang_k.dat" index 2 with lines title "Delta=50, K=4", \
  "ext_erlang_k.dat" index 3 with lines title "simulation, K=4", \
  "ext_erlang_k.dat" index 4 with lines title "Delta=50, K=16", \
  "ext_erlang_k.dat" index 5 with lines title "simulation, K=16"
