set title "On/off model, C=7200 As, c=0.625, k=4.5e-5/s"
set xlabel "t (seconds)"
set ylabel "Pr[battery empty]"
set key bottom right
set grid
plot \
  "fig8.dat" index 0 with lines title "Delta=100", \
  "fig8.dat" index 1 with lines title "Delta=50", \
  "fig8.dat" index 2 with lines title "Delta=25", \
  "fig8.dat" index 3 with lines title "simulation"
