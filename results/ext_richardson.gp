set title "Richardson extrapolation vs exact (on/off, c=1)"
set xlabel "t (seconds)"
set ylabel "Pr[battery empty]"
set key bottom right
set grid
plot \
  "ext_richardson.dat" index 0 with lines title "Delta=100", \
  "ext_richardson.dat" index 1 with lines title "Delta=50", \
  "ext_richardson.dat" index 2 with lines title "Richardson(100,50)", \
  "ext_richardson.dat" index 3 with lines title "exact"
