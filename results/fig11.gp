set title "Simple vs burst model, C=800 mAh, c=0.625"
set xlabel "t (hours)"
set ylabel "Pr[battery empty]"
set key bottom right
set grid
plot \
  "fig11.dat" index 0 with lines title "simple model", \
  "fig11.dat" index 1 with lines title "burst model", \
  "fig11.dat" index 2 with lines title "simple model (simulation)", \
  "fig11.dat" index 3 with lines title "burst model (simulation)"
