set title "Simple model, three battery settings"
set xlabel "t (hours)"
set ylabel "Pr[battery empty]"
set key bottom right
set grid
plot \
  "fig10.dat" index 0 with lines title "C=500, c=1, Delta=25", \
  "fig10.dat" index 1 with lines title "C=500, c=1, Delta=2", \
  "fig10.dat" index 2 with lines title "C=500, c=1, simulation", \
  "fig10.dat" index 3 with lines title "C=800, c=0.625, Delta=25", \
  "fig10.dat" index 4 with lines title "C=800, c=0.625, Delta=2", \
  "fig10.dat" index 5 with lines title "C=800, c=0.625, simulation", \
  "fig10.dat" index 6 with lines title "C=800, c=1, reference"
