(* Trace-driven analysis: from a measured current trace to a lifetime
   distribution.

   The paper's conclusion points at "the evaluation of real world
   power-aware devices".  The workflow this example demonstrates:

     1. a device is measured, producing a (time, current) trace — here
        we synthesize one from the paper's simple model, standing in
        for a real measurement;
     2. the trace is replayed against the analytic KiBaM: one number,
        the lifetime under exactly this trace;
     3. a CTMC workload model is *estimated* from the trace
        (quantised current levels + maximum-likelihood rates), and the
        KiBaMRM machinery turns it into a full lifetime distribution —
        what the battery will do under the device's statistical
        behaviour rather than one recorded afternoon.

   Run with:  dune exec examples/trace_replay.exe *)

open Batlife_battery
open Batlife_workload
open Batlife_core
open Batlife_sim
open Batlife_output

let battery = Kibam.params ~capacity:800. ~c:0.625 ~k:0.162

let () =
  (* 1. "Measure" a 48-hour trace of the device (stand-in for a real
     capture; any CSV of time,current rows works the same way). *)
  let device = Simple.model () in
  let trace = Trace.synthesize ~seed:4L ~horizon:48. device in
  Printf.printf "captured %d state changes over 48 h\n" (List.length trace);
  let csv = Trace.to_csv (Trace.of_samples trace) ~t_end:48. ~step:0.05 in
  Printf.printf "(exported %d CSV lines; parse-back check: %d samples)\n"
    (List.length (String.split_on_char '\n' csv))
    (List.length (Trace.parse_csv_exn csv));

  (* 2. Deterministic replay: how long does the battery last if the
     device repeats exactly this trace? *)
  let profile = Trace.of_samples trace in
  (match Kibam.lifetime ~max_time:48. battery profile with
  | Some t -> Printf.printf "\nreplaying the trace: battery dies at %.1f h\n" t
  | None ->
      Printf.printf
        "\nreplaying the trace: battery survives the 48 h capture\n");

  (* 3. Estimate a workload CTMC from the trace and compute the full
     lifetime distribution. *)
  let estimated = Trace.estimate_model trace in
  Printf.printf "\nestimated model: %d levels\n"
    (Array.length estimated.Trace.levels);
  Array.iteri
    (fun i level ->
      Printf.printf "  level %d: %6.1f mA  (occupancy %.2f)\n" i level
        estimated.Trace.occupancy.(i))
    estimated.Trace.levels;

  let model = Kibamrm.create ~workload:estimated.Trace.model ~battery in
  let times = Array.init 60 (fun i -> 0.5 *. float_of_int (i + 1)) in
  let curve = Lifetime.cdf ~delta:5. ~times model in
  Printf.printf "\nKiBaMRM on the estimated model (Delta = 5 mAh):\n";
  Printf.printf "  median lifetime %.1f h, 99%% depleted by %.1f h\n"
    (Lifetime.quantile curve 0.5)
    (Lifetime.quantile curve 0.99);

  (* Cross-check with the ground-truth model the trace came from. *)
  let truth = Kibamrm.create ~workload:device ~battery in
  let truth_curve = Lifetime.cdf ~delta:5. ~times truth in
  Printf.printf "  (ground-truth model: median %.1f h, q99 %.1f h)\n"
    (Lifetime.quantile truth_curve 0.5)
    (Lifetime.quantile truth_curve 0.99);

  let sim = Montecarlo.lifetime_cdf ~runs:400 model ~times in
  Ascii_plot.print ~height:16 ~x_label:"t (hours)" ~y_label:"Pr[empty]"
    [
      Series.create ~name:"estimated model (KiBaMRM)" ~xs:times
        ~ys:curve.Lifetime.probabilities;
      Series.create ~name:"ground truth (KiBaMRM)" ~xs:times
        ~ys:truth_curve.Lifetime.probabilities;
      Series.create ~name:"estimated model (simulation)" ~xs:times
        ~ys:sim.Montecarlo.cdf;
    ]
