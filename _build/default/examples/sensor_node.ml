(* Sensor node duty cycling: how the *shape* of the load, not just its
   average, determines battery lifetime.

   A wireless sensor transmits bursts at 0.96 A and sleeps in between,
   always with a 50 % duty cycle — the average current is identical in
   every scenario.  An ideal battery (and Peukert's law) predicts the
   same lifetime for all of them; the KiBaM predicts a recovery-driven
   dependence on how long the idle gaps are, and the stochastic
   KiBaMRM shows how sojourn-time randomness spreads the lifetime.

   This is the paper's Table 1 / Section 2 motivation turned into a
   small design study.

   Run with:  dune exec examples/sensor_node.exe *)

open Batlife_battery
open Batlife_workload
open Batlife_core
open Batlife_sim
open Batlife_output

let capacity = 7200. (* As *)

let current = 0.96 (* A *)

let battery () = Kibam.params ~capacity ~c:0.625 ~k:4.5e-5

let () =
  Printf.printf
    "Sensor node, %.2f A bursts at 50%% duty cycle, C = %.0f As\n\n" current
    capacity;
  let ideal =
    Ideal.lifetime_duty_cycle ~capacity ~load:current ~duty:0.5 /. 60.
  in
  Printf.printf "ideal battery (any frequency):        %7.1f min\n" ideal;

  (* Deterministic square waves at different burst frequencies. *)
  Printf.printf "\nanalytic KiBaM, deterministic square wave:\n";
  List.iter
    (fun f ->
      let profile = Load_profile.square_wave ~frequency:f ~on_load:current in
      match Kibam.lifetime (battery ()) profile with
      | Some t ->
          Printf.printf "  f = %-8g burst %6.1f s  lifetime %7.1f min\n" f
            (0.5 /. f) (t /. 60.)
      | None -> Printf.printf "  f = %-8g does not deplete\n" f)
    [ 10.; 1.; 0.1; 0.01; 0.001; 0.0001 ];

  (* Stochastic on/off workloads: same mean duty cycle, exponential
     sojourns.  The lifetime becomes a distribution; we report median
     and spread from the Markovian approximation. *)
  Printf.printf
    "\nstochastic on/off workload (exponential sojourns), KiBaMRM:\n";
  let series =
    List.map
      (fun f ->
        let model =
          Kibamrm.create
            ~workload:(Onoff.model ~frequency:f ~k:1 ~on_current:current ())
            ~battery:(battery ())
        in
        let times = Array.init 81 (fun i -> 5000. +. (250. *. float_of_int i)) in
        let curve = Lifetime.cdf ~delta:50. ~times model in
        Printf.printf
          "  f = %-6g median %7.0f s  q10 %7.0f  q90 %7.0f  (states %d)\n" f
          (Lifetime.quantile curve 0.5)
          (Lifetime.quantile curve 0.1)
          (Lifetime.quantile curve 0.9)
          curve.Lifetime.states;
        Series.create
          ~name:(Printf.sprintf "f = %g Hz" f)
          ~xs:times ~ys:curve.Lifetime.probabilities)
      [ 1.; 0.01 ]
  in
  print_newline ();
  Ascii_plot.print ~x_label:"t (s)" ~y_label:"Pr[empty]" series;

  (* The battery-aware design lesson, quantified by simulation. *)
  let mean_for f =
    let model =
      Kibamrm.create
        ~workload:(Onoff.model ~frequency:f ~k:1 ~on_current:current ())
        ~battery:(battery ())
    in
    fst (Montecarlo.mean_lifetime ~runs:300 model)
  in
  let fast = mean_for 1. and slow = mean_for 0.01 in
  Printf.printf
    "\nsimulated means: f=1 Hz %.0f s, f=0.01 Hz %.0f s -- both %.0f%% below\n\
     the ideal-battery prediction of %.0f s.\n" fast slow
    (100. *. (1. -. (fast /. (ideal *. 60.))))
    (ideal *. 60.);
  print_endline
    "The average current alone does not determine the lifetime: the\n\
     kinetic model charges the designer ~20% for pulsing at 0.96 A, and\n\
     once bursts outlast the recovery time scale (f ~ 1e-4 Hz above) the\n\
     penalty grows further."
