(* Battery model comparison: ideal vs Peukert vs KiBaM vs modified
   KiBaM on constant and pulsed discharge.

   Section 2/3 of the paper walks through this model hierarchy.  We
   calibrate each model against the same two "measurements" (the Rao
   et al. lifetimes cited in Table 1) and then ask each model the same
   two questions:

     1. how long does the battery last at other constant loads?
     2. does a pulsed load of the same average last longer?

   Run with:  dune exec examples/model_comparison.exe *)

open Batlife_battery
open Batlife_output

let capacity = 7200. (* As *)

let load = 0.96 (* A *)

let minutes t = t /. 60.

let () =
  (* Calibration data: continuous 0.96 A for 90 min; plus a slow
     pulsed measurement for Peukert's second point (0.48 A average,
     230 min, from Table 1's 0.2 Hz row). *)
  let peukert = Peukert.fit (0.96, 90. *. 60.) (0.48, 230. *. 60.) in
  let kibam =
    Fit.k_for_lifetime ~capacity ~c:0.625 ~load ~target_lifetime:(90. *. 60.)
  in
  let modified =
    Fit.gamma_for_lifetime ~capacity ~c:0.625 ~continuous_load:load
      ~continuous_lifetime:(90. *. 60.)
      ~target_lifetime:(193. *. 60.)
      (Load_profile.square_wave ~frequency:1.0 ~on_load:load)
  in
  Printf.printf "calibrated: Peukert a=%.0f b=%.3f | KiBaM k=%.3g | gamma=%.2f\n\n"
    peukert.Peukert.a peukert.Peukert.b kibam.Kibam.k
    modified.Modified_kibam.gamma;

  Printf.printf "constant-load lifetimes (minutes):\n";
  Table.print
    ~header:[ "load (A)"; "ideal"; "Peukert"; "KiBaM"; "mod. KiBaM" ]
    (List.map
       (fun i ->
         [
           Printf.sprintf "%.2f" i;
           Table.float_cell (minutes (Ideal.lifetime ~capacity ~load:i));
           Table.float_cell (minutes (Peukert.lifetime peukert ~load:i));
           Table.float_cell (minutes (Kibam.lifetime_constant kibam ~load:i));
           Table.float_cell
             (minutes (Modified_kibam.lifetime_constant modified ~load:i));
         ])
       [ 0.24; 0.48; 0.96; 1.92; 3.84 ]);

  Printf.printf "\npulsed 50%% duty cycle at 0.96 A (average 0.48 A), minutes:\n";
  let pulsed model_lifetime =
    List.map
      (fun f ->
        let profile = Load_profile.square_wave ~frequency:f ~on_load:load in
        match model_lifetime profile with
        | Some t -> Table.float_cell (minutes t)
        | None -> "-")
      [ 1.; 0.1; 0.01 ]
  in
  Table.print
    ~header:[ "model"; "f=1 Hz"; "f=0.1 Hz"; "f=0.01 Hz" ]
    [
      "ideal/Peukert (frequency blind)"
      :: List.map
           (fun _ -> Table.float_cell (minutes (Peukert.lifetime peukert ~load:0.48)))
           [ (); (); () ];
      "KiBaM" :: pulsed (Kibam.lifetime kibam);
      "modified KiBaM" :: pulsed (Modified_kibam.lifetime modified);
    ];
  print_endline
    "\nThe ideal and Peukert models cannot distinguish pulse shapes;\n\
     the kinetic models recover charge during idle gaps and also show\n\
     how delivered capacity shrinks at high constant loads.";
  Printf.printf
    "\ndelivered capacity: %.0f As at 10 A vs %.0f As at 0.01 A (c = %.3f)\n"
    (Kibam.delivered_charge kibam ~load:10.)
    (Kibam.delivered_charge kibam ~load:0.01)
    (Kibam.delivered_charge kibam ~load:10.
    /. Kibam.delivered_charge kibam ~load:0.01)
