(* Burst scheduling: should a wireless device send data as it arrives,
   or buffer it and send in bursts?

   The paper's Fig. 11 compares its "simple" model (send immediately)
   with a "burst" model (buffer while a flow is active, sleep when
   not), calibrated to the same steady-state send probability.  This
   example reproduces that comparison and adds the operational numbers
   a designer would ask for: median lifetime, the time by which 95 %
   of batteries have died, and the gain from buffering.

   Run with:  dune exec examples/burst_scheduling.exe *)

open Batlife_battery
open Batlife_workload
open Batlife_core
open Batlife_sim
open Batlife_output

let () =
  let battery = Kibam.params ~capacity:800. ~c:0.625 ~k:0.162 in
  let simple = Simple.model () in
  let burst = Burst.model () in

  Printf.printf "steady-state calibration (paper: both send 25%%):\n";
  Printf.printf "  simple: P(send) = %.4f  P(sleep) = %.4f  avg I = %.1f mA\n"
    (Simple.send_probability simple)
    (Simple.sleep_probability simple)
    (Model.average_current simple);
  Printf.printf "  burst : P(send) = %.4f  P(sleep) = %.4f  avg I = %.1f mA\n\n"
    (Simple.send_probability burst)
    (Simple.sleep_probability burst)
    (Model.average_current burst);

  let times = Array.init 60 (fun i -> 0.5 *. float_of_int (i + 1)) in
  let evaluate name workload =
    let model = Kibamrm.create ~workload ~battery in
    let curve = Lifetime.cdf ~delta:5. ~times model in
    let mean, (lo, hi) = Montecarlo.mean_lifetime ~runs:500 model in
    Printf.printf
      "%-8s median %5.2f h   95%% dead by %5.2f h   sim mean %5.2f h [%4.2f, %4.2f]\n"
      name
      (Lifetime.quantile curve 0.5)
      (Lifetime.quantile curve 0.95)
      mean lo hi;
    (curve, mean)
  in
  let simple_curve, simple_mean = evaluate "simple" simple in
  let burst_curve, burst_mean = evaluate "burst" burst in
  Printf.printf "\nbuffering gain: %+.1f%% mean lifetime\n\n"
    (100. *. (burst_mean -. simple_mean) /. simple_mean);

  Ascii_plot.print ~x_label:"t (hours)" ~y_label:"Pr[empty]"
    [
      Series.create ~name:"simple (send immediately)" ~xs:times
        ~ys:simple_curve.Lifetime.probabilities;
      Series.create ~name:"burst (buffer + sleep)" ~xs:times
        ~ys:burst_curve.Lifetime.probabilities;
    ]
