(* Quickstart: compute a battery lifetime distribution in ~20 lines.

   A cell-phone-like device (idle/send/sleep CTMC, the paper's "simple
   model") drains an 800 mAh KiBaM battery.  We expand the model with
   the Markovian approximation, sweep once, and read off the lifetime
   CDF; a Monte-Carlo run of the same model confirms the curve.

   Run with:  dune exec examples/quickstart.exe *)

open Batlife_battery
open Batlife_workload
open Batlife_core
open Batlife_sim
open Batlife_output

let () =
  (* 1. The workload: a 3-state CTMC with per-state current draws
        (rates per hour, currents in mA). *)
  let workload = Simple.model () in

  (* 2. The battery: 800 mAh, 62.5 % directly available, diffusion
        constant 0.162 per hour (= 4.5e-5 per second). *)
  let battery = Kibam.params ~capacity:800. ~c:0.625 ~k:0.162 in

  (* 3. The KiBaMRM and its lifetime distribution with charge step
        Delta = 5 mAh, on a grid of hours. *)
  let model = Kibamrm.create ~workload ~battery in
  let times = Array.init 60 (fun i -> 0.5 *. float_of_int (i + 1)) in
  let curve = Lifetime.cdf ~delta:5. ~times model in

  Printf.printf "expanded CTMC: %d states, %d transitions\n"
    curve.Lifetime.states curve.Lifetime.nnz;
  Printf.printf "median lifetime : %.1f h\n" (Lifetime.quantile curve 0.5);
  Printf.printf "99%% depleted at : %.1f h\n" (Lifetime.quantile curve 0.99);
  Printf.printf "mean lifetime   : %.1f h\n" (Lifetime.mean curve);

  (* 4. Cross-check by simulation (500 replications). *)
  let sim = Montecarlo.lifetime_cdf ~runs:500 model ~times in
  let mean, (lo, hi) = Montecarlo.mean_lifetime ~runs:500 model in
  Printf.printf "simulated mean  : %.1f h  (95%% CI [%.1f, %.1f])\n" mean lo hi;

  Ascii_plot.print ~x_label:"t (hours)" ~y_label:"Pr[battery empty]"
    [
      Series.create ~name:"KiBaMRM (Delta=5 mAh)" ~xs:times
        ~ys:curve.Lifetime.probabilities;
      Series.create ~name:"simulation (500 runs)" ~xs:times
        ~ys:sim.Montecarlo.cdf;
    ]
