(* Multi-battery scheduling: when a device carries several batteries,
   the order in which they serve the load changes the system lifetime.

   While one cell discharges, the idle cells' bound charge diffuses
   into their available wells — so policies that rotate the load
   harvest recovery in every cell, while draining cells one-by-one
   wastes the recovery headroom of the cell currently dying.  This is
   the direct system-design payoff of the paper's recovery analysis
   (and the subject of the authors' follow-up work on battery
   scheduling).

   Run with:  dune exec examples/battery_pack.exe *)

open Batlife_battery
open Batlife_scheduling
open Batlife_output

let battery = Kibam.params ~capacity:7200. ~c:0.625 ~k:4.5e-5

let load = 0.96

let () =
  let profile = Load_profile.constant load in
  let single = Kibam.lifetime_constant battery ~load in
  Printf.printf "One cell alone lasts %.0f s under a continuous %.2f A load.\n"
    single load;
  Printf.printf "Two-cell pack, decision slot 30 s:\n\n";
  let results =
    Scheduler.compare_policies ~slot:30.
      ~policies:
        [
          Policy.Sequential; Policy.Random 2024; Policy.Round_robin;
          Policy.Best_available;
        ]
      ~battery ~n:2 profile
  in
  let sequential_lifetime =
    match results with
    | (_, first) :: _ -> Option.value ~default:0. first.Scheduler.lifetime
    | [] -> 0.
  in
  Table.print
    ~header:[ "policy"; "lifetime (s)"; "delivered (As)"; "switches"; "gain" ]
    (List.map
       (fun ((policy : Policy.t), (o : Scheduler.outcome)) ->
         let lifetime = Option.value ~default:Float.nan o.Scheduler.lifetime in
         [
           Policy.name policy;
           Table.float_cell ~decimals:0 lifetime;
           Table.float_cell ~decimals:0 o.Scheduler.delivered;
           string_of_int o.Scheduler.switches;
           Printf.sprintf "%+.1f%%"
             (100. *. ((lifetime /. sequential_lifetime) -. 1.));
         ])
       results);

  (* How the pack drains under the two extreme policies. *)
  let series policy name =
    let tr = Scheduler.trace ~slot:30. ~policy ~battery ~n:2 ~t_end:13000. profile in
    let times = Array.map fst tr in
    [
      Series.create ~name:(name ^ " cell 1") ~xs:times
        ~ys:(Array.map (fun (_, a) -> a.(0)) tr);
      Series.create ~name:(name ^ " cell 2") ~xs:times
        ~ys:(Array.map (fun (_, a) -> a.(1)) tr);
    ]
  in
  print_newline ();
  Ascii_plot.print ~height:16 ~x_label:"t (s)" ~y_label:"available charge (As)"
    (series Policy.Sequential "seq" @ series Policy.Round_robin "rr");
  print_endline
    "\nSequential lets cell 2 idle at full charge (no recovery headroom\n\
     gained) while cell 1 dies; round robin keeps both wells working.";

  (* Scaling with pack size. *)
  Printf.printf "\npack size scaling (round robin):\n";
  List.iter
    (fun n ->
      match
        (Scheduler.run ~slot:30. ~policy:Policy.Round_robin ~battery ~n profile)
          .Scheduler.lifetime
      with
      | Some t ->
          Printf.printf "  n=%d  lifetime %6.0f s  (%.2fx one cell)\n" n t
            (t /. single)
      | None -> Printf.printf "  n=%d survives the horizon\n" n)
    [ 1; 2; 3; 4 ]
