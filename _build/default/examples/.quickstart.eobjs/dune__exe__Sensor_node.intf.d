examples/sensor_node.mli:
