examples/quickstart.ml: Array Ascii_plot Batlife_battery Batlife_core Batlife_output Batlife_sim Batlife_workload Kibam Kibamrm Lifetime Montecarlo Printf Series Simple
