examples/model_comparison.ml: Batlife_battery Batlife_output Fit Ideal Kibam List Load_profile Modified_kibam Peukert Printf Table
