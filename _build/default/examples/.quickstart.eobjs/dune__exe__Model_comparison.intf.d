examples/model_comparison.mli:
