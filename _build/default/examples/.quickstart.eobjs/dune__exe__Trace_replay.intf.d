examples/trace_replay.mli:
