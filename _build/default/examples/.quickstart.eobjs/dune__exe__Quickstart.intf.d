examples/quickstart.mli:
