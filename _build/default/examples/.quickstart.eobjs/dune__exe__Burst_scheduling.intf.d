examples/burst_scheduling.mli:
