examples/battery_pack.ml: Array Ascii_plot Batlife_battery Batlife_output Batlife_scheduling Float Kibam List Load_profile Option Policy Printf Scheduler Series Table
