examples/sensor_node.ml: Array Ascii_plot Batlife_battery Batlife_core Batlife_output Batlife_sim Batlife_workload Ideal Kibam Kibamrm Lifetime List Load_profile Montecarlo Onoff Printf Series
