examples/battery_pack.mli:
