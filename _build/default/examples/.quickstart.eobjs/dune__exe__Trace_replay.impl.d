examples/trace_replay.ml: Array Ascii_plot Batlife_battery Batlife_core Batlife_output Batlife_sim Batlife_workload Kibam Kibamrm Lifetime List Montecarlo Printf Series Simple String Trace
