examples/burst_scheduling.ml: Array Ascii_plot Batlife_battery Batlife_core Batlife_output Batlife_sim Batlife_workload Burst Kibam Kibamrm Lifetime Model Montecarlo Printf Series Simple
