open Batlife_numerics
let () =
  Random.self_init ();
  for trial = 1 to 20000 do
    let entries = Array.init 16 (fun _ -> Random.float 200. -. 100.) in
    let b = Array.init 4 (fun _ -> Random.float 6. -. 3.) in
    let a = Dense.init ~rows:4 ~cols:4 (fun i j ->
      let v = entries.((4*i)+j) /. 10. in
      if i = j then 5. +. Float.abs v else v) in
    let sp = Sparse.of_dense a in
    (try
      let x = (Iterative.gauss_seidel sp ~b).Iterative.solution in
      let r = Dense.matvec a x in
      if not (Array.for_all2 (fun ri bi -> Float.abs (ri -. bi) < 1e-8) r b)
      then Printf.printf "residual failure at trial %d\n" trial
    with e -> Printf.printf "trial %d: %s\n" trial (Printexc.to_string e))
  done;
  print_endline "done"
