let mah_to_as x = x *. 3.6

let as_to_mah x = x /. 3.6

let ma_to_a x = x /. 1000.

let a_to_ma x = x *. 1000.

let hours_to_seconds x = x *. 3600.

let seconds_to_hours x = x /. 3600.

let seconds_to_minutes x = x /. 60.

let minutes_to_seconds x = x *. 60.

let per_second_to_per_hour x = x *. 3600.

let per_hour_to_per_second x = x /. 3600.
