open Batlife_numerics

let c_from_capacities ~large_load_capacity ~small_load_capacity =
  if large_load_capacity <= 0. then
    invalid_arg "Fit.c_from_capacities: non-positive large-load capacity";
  if small_load_capacity < large_load_capacity then
    invalid_arg "Fit.c_from_capacities: small-load capacity is smaller";
  large_load_capacity /. small_load_capacity

(* The constant-load lifetime is strictly increasing in k: more
   diffusion means more of the bound charge arrives before the
   available well empties.  Solve on a log grid bracket. *)
let k_for_lifetime ~capacity ~c ~load ~target_lifetime =
  if target_lifetime <= 0. then
    invalid_arg "Fit.k_for_lifetime: non-positive target";
  if c >= 1. then
    invalid_arg "Fit.k_for_lifetime: c = 1 leaves no k dependence";
  let lifetime_of k =
    Kibam.lifetime_constant (Kibam.params ~capacity ~c ~k) ~load
  in
  let objective log_k = lifetime_of (exp log_k) -. target_lifetime in
  let lo = ref (log 1e-12) and hi = ref (log 1e3) in
  let f_lo = objective !lo and f_hi = objective !hi in
  if f_lo > 0. then
    failwith
      (Printf.sprintf
         "Fit.k_for_lifetime: target %g below attainable minimum %g"
         target_lifetime (lifetime_of (exp !lo)));
  if f_hi < 0. then
    failwith
      (Printf.sprintf
         "Fit.k_for_lifetime: target %g above attainable maximum %g"
         target_lifetime (lifetime_of (exp !hi)));
  let log_k = Roots.brent ~tol:1e-12 objective !lo !hi in
  Kibam.params ~capacity ~c ~k:(exp log_k)

let k_for_lifetime_modified ?ode_step ~capacity ~c ~load ~target_lifetime
    gamma =
  if target_lifetime <= 0. then
    invalid_arg "Fit.k_for_lifetime_modified: non-positive target";
  if c >= 1. then
    invalid_arg "Fit.k_for_lifetime_modified: c = 1 leaves no k dependence";
  let model k =
    Modified_kibam.params ~base:(Kibam.params ~capacity ~c ~k) ~gamma
  in
  let lifetime_of k =
    Modified_kibam.lifetime_constant ?ode_step (model k) ~load
  in
  let objective log_k = lifetime_of (exp log_k) -. target_lifetime in
  let lo = log 1e-12 and hi = log 1e3 in
  if objective lo > 0. || objective hi < 0. then
    failwith "Fit.k_for_lifetime_modified: target outside attainable range";
  let log_k = Roots.brent ~tol:1e-10 objective lo hi in
  model (exp log_k)

let gamma_for_lifetime ?ode_step ~capacity ~c ~continuous_load
    ~continuous_lifetime ~target_lifetime profile =
  let model_for gamma =
    k_for_lifetime_modified ?ode_step ~capacity ~c ~load:continuous_load
      ~target_lifetime:continuous_lifetime gamma
  in
  let profile_lifetime gamma =
    match Modified_kibam.lifetime ?ode_step (model_for gamma) profile with
    | Some t -> t
    | None -> failwith "Fit.gamma_for_lifetime: battery does not empty"
  in
  let objective gamma = profile_lifetime gamma -. target_lifetime in
  (* gamma = 0 is the plain KiBaM (longest profile lifetime); larger
     gamma suppresses recovery and shortens it. *)
  let f0 = objective 0. in
  if f0 <= 0. then model_for 0.
  else begin
    let hi = ref 1. in
    while objective !hi > 0. && !hi < 512. do
      hi := !hi *. 2.
    done;
    if objective !hi > 0. then
      failwith "Fit.gamma_for_lifetime: target below attainable range";
    let gamma = Roots.brent ~tol:1e-6 objective 0. !hi in
    model_for gamma
  end
