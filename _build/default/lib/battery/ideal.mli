(** The ideal linear battery: every unit of charge is available and the
    delivered capacity does not depend on the load. *)

val lifetime : capacity:float -> load:float -> float
(** [lifetime ~capacity ~load] is [capacity / load].  Raises
    [Invalid_argument] for non-positive load or negative capacity. *)

val delivered_charge : load:float -> duration:float -> float
(** Charge drawn by a constant load over a duration. *)

val lifetime_duty_cycle : capacity:float -> load:float -> duty:float -> float
(** Lifetime under an on/off load with duty cycle [duty] in (0, 1]:
    the ideal battery only sees the average current. *)
