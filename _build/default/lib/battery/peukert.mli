(** Peukert's law: [L = a / I^b] with battery constants [a > 0] and
    [b > 1] (Section 2 of the paper).  A purely empirical constant-load
    model, kept as the simplest baseline; it predicts identical
    lifetimes for all load profiles with the same average, which the
    paper's experiments contradict. *)

type t = private { a : float; b : float }

val create : a:float -> b:float -> t
(** Raises [Invalid_argument] unless [a > 0] and [b >= 1]. *)

val lifetime : t -> load:float -> float

val effective_capacity : t -> load:float -> float
(** [lifetime * load]: the capacity actually delivered at this load;
    decreases with the load when [b > 1]. *)

val fit : (float * float) -> (float * float) -> t
(** [fit (i1, l1) (i2, l2)] recovers [(a, b)] from two measured
    (load, lifetime) points with [i1 <> i2], both loads and lifetimes
    positive. *)
