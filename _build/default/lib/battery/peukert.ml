type t = { a : float; b : float }

let create ~a ~b =
  if a <= 0. then invalid_arg "Peukert.create: need a > 0";
  if b < 1. then invalid_arg "Peukert.create: need b >= 1";
  { a; b }

let lifetime t ~load =
  if load <= 0. then invalid_arg "Peukert.lifetime: non-positive load";
  t.a /. Float.pow load t.b

let effective_capacity t ~load = lifetime t ~load *. load

let fit (i1, l1) (i2, l2) =
  if i1 <= 0. || i2 <= 0. || l1 <= 0. || l2 <= 0. then
    invalid_arg "Peukert.fit: loads and lifetimes must be positive";
  if i1 = i2 then invalid_arg "Peukert.fit: identical loads";
  let b = log (l1 /. l2) /. log (i2 /. i1) in
  let a = l1 *. Float.pow i1 b in
  create ~a ~b
