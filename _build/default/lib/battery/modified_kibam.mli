(** The modified Kinetic Battery Model of Rao et al. (cited as [9] in
    the paper).

    The modification makes the recovery rate additionally dependent on
    the bound-charge level, slowing recovery as the battery drains.
    The exact functional form is not given in the reproduced paper
    (see DESIGN.md, substitutions); we use an exponential attenuation

    {v  dy1/dt = -I + k e^{-gamma (1 - h2/C)} (h2 - h1)  v}

    (and the negated flow for [y2]), which is 1 at full charge and
    decays as the bound well empties — matching the qualitative
    description.  With [gamma = 0] the model coincides with the plain
    KiBaM.

    There is no global closed form; trajectories are advanced by a
    frozen-factor scheme: over short substeps the attenuation is held
    constant and the {e exact} linear-KiBaM solution is used with
    [k_eff = k * factor], so the integration is unconditionally stable
    for any [k] and coincides with the analytic KiBaM when
    [gamma = 0].  A slot-based {e stochastic} variant
    gates the recovery flow by a Bernoulli trial with the same
    attenuation as success probability, reproducing the structure of
    Rao et al.'s stochastic evaluation; its deterministic expectation
    is the model above.  The paper's finding — that the {e
    deterministic} modified model is still frequency independent — is
    exercised by the Table 1 bench. *)

type params = private {
  base : Kibam.params;
  gamma : float;  (** recovery attenuation strength, [>= 0] *)
}

val params : base:Kibam.params -> gamma:float -> params

val recovery_factor : params -> Kibam.state -> float
(** The attenuation [e^{-gamma (1 - h2/C)}] in [0, 1]. *)

val derivatives : params -> load:float -> Kibam.state -> float * float

val step :
  ?ode_step:float -> params -> load:float -> dt:float -> Kibam.state ->
  Kibam.state
(** State advance over a constant-load interval (frozen-factor
    substeps; [ode_step] overrides the adaptive substep length). *)

val empty_within :
  ?ode_step:float -> params -> load:float -> dt:float -> Kibam.state ->
  float option
(** First zero crossing of the available charge within [dt], located
    exactly within each frozen-factor substep. *)

val lifetime :
  ?max_time:float -> ?ode_step:float -> params -> Load_profile.t ->
  float option

val lifetime_constant : ?ode_step:float -> params -> load:float -> float
(** Lifetime under constant load; raises [Failure] if the battery does
    not empty within the internal horizon. *)
