(** The Rakhmatov–Vrudhula diffusion battery model (the paper's
    ref. [2], "An analytical high-level battery model for use in energy
    management of portable electronic systems", ICCAD'01).

    Cited in Section 2 of the paper as the archetypal analytical model
    beyond Peukert's law.  The electro-active species diffuses in a
    one-dimensional region; solving the diffusion equation gives the
    {e apparent} charge drawn by a load profile [i]:

    {v
      sigma(t) = integral i  +  2 * sum_{m>=1} u_m(t)
      u_m(t)   = integral_0^t i(tau) e^{-beta^2 m^2 (t - tau)} dtau
    v}

    and the battery is empty when [sigma(t)] first reaches the charge
    capacity [alpha].  The second term is charge {e temporarily
    unavailable} due to the concentration gradient; it relaxes during
    idle periods — the same recovery phenomenon the KiBaM captures with
    its two wells.

    Each harmonic [u_m] obeys [u_m' = i - beta^2 m^2 u_m], so
    piecewise-constant loads are stepped in closed form; the infinite
    sum is truncated at a configurable number of harmonics (the terms
    decay like [1/m^2] under load and [e^{-beta^2 m^2 t}] in time). *)

type params = private {
  alpha : float;  (** charge capacity (same charge units as the load) *)
  beta_sq : float;  (** diffusion rate [beta^2] (per unit time) *)
  harmonics : int;  (** series truncation (default 40) *)
}

type state = private {
  consumed : float;  (** total charge actually drawn *)
  gradient : float array;  (** the harmonic states [u_m] *)
}

val params : ?harmonics:int -> alpha:float -> float -> params
(** [params ~alpha beta_sq] *)

val initial : params -> state
(** Fully rested battery: no charge drawn, no gradient. *)

val apparent_charge : params -> state -> float
(** [sigma = consumed + 2 sum u_m]; the battery is empty when this
    reaches [alpha]. *)

val unavailable_charge : params -> state -> float
(** The gradient part [2 sum u_m] — charge that would become available
    again if the battery rested. *)

val step : params -> load:float -> dt:float -> state -> state
(** Closed-form advance under a constant load. *)

val empty_within : params -> load:float -> dt:float -> state -> float option
(** First time within [dt] at which the apparent charge reaches
    [alpha], if any.  Under a constant positive load [sigma] is
    strictly increasing, so the crossing is unique. *)

val lifetime : ?max_time:float -> params -> Load_profile.t -> float option

val lifetime_constant : params -> load:float -> float

val delivered_charge : params -> load:float -> float
(** [load * lifetime_constant]: tends to [alpha] for vanishing loads
    and drops below it as the load grows — the same qualitative
    load-capacity behaviour as the KiBaM. *)

val fit_beta :
  alpha:float -> load:float -> target_lifetime:float -> params
(** Calibrate [beta^2] so the constant-load lifetime matches a
    measurement (larger [beta^2] means faster diffusion and a lifetime
    closer to the ideal [alpha / load]). *)
