(** Unit conversions.

    The paper mixes two unit systems: the on/off experiments use
    Ampere/Ampere-seconds/seconds, the simple & burst models use
    milliAmpere/milliAmpere-hours/hours.  All library code is
    unit-agnostic (any consistent system works); these helpers convert
    at the boundaries. *)

val mah_to_as : float -> float
(** milliAmpere-hours to Ampere-seconds (x 3.6). *)

val as_to_mah : float -> float

val ma_to_a : float -> float

val a_to_ma : float -> float

val hours_to_seconds : float -> float

val seconds_to_hours : float -> float

val seconds_to_minutes : float -> float

val minutes_to_seconds : float -> float

val per_second_to_per_hour : float -> float
(** Rate conversion: [x /s] = [3600 x /h]. *)

val per_hour_to_per_second : float -> float
