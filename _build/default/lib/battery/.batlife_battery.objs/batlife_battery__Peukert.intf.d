lib/battery/peukert.mli:
