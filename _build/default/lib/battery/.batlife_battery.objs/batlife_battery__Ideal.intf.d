lib/battery/ideal.mli:
