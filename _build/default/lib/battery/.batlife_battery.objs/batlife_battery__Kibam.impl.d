lib/battery/kibam.ml: Array Batlife_numerics Float List Load_profile Roots Seq
