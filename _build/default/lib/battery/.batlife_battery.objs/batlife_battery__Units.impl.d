lib/battery/units.ml:
