lib/battery/modified_kibam.mli: Kibam Load_profile
