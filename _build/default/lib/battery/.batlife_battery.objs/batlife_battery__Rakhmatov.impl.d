lib/battery/rakhmatov.ml: Array Batlife_numerics Float Load_profile Roots Seq
