lib/battery/fit.mli: Kibam Load_profile Modified_kibam
