lib/battery/ideal.ml:
