lib/battery/load_profile.mli: Seq
