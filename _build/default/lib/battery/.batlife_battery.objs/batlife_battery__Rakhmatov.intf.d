lib/battery/rakhmatov.mli: Load_profile
