lib/battery/peukert.ml: Float
