lib/battery/kibam.mli: Load_profile
