lib/battery/modified_kibam.ml: Float Kibam Load_profile Seq
