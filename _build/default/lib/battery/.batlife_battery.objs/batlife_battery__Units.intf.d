lib/battery/units.mli:
