lib/battery/load_profile.ml: Float List Option Seq
