lib/battery/fit.ml: Batlife_numerics Kibam Modified_kibam Printf Roots
