type segment = { duration : float; load : float }

type body = Constant of float | Finite of segment list | Periodic of segment list

type t = body

let check_segments name segs =
  if segs = [] then invalid_arg (name ^ ": empty segment list");
  List.iter
    (fun s ->
      if s.duration <= 0. then invalid_arg (name ^ ": non-positive duration");
      if s.load < 0. then invalid_arg (name ^ ": negative load"))
    segs

let constant load =
  if load < 0. then invalid_arg "Load_profile.constant: negative load";
  Constant load

let finite segs =
  check_segments "Load_profile.finite" segs;
  Finite segs

let periodic segs =
  check_segments "Load_profile.periodic" segs;
  Periodic segs

let square_wave ~frequency ~on_load =
  if frequency <= 0. then
    invalid_arg "Load_profile.square_wave: non-positive frequency";
  let half = 1. /. (2. *. frequency) in
  periodic [ { duration = half; load = on_load }; { duration = half; load = 0. } ]

let duty_cycle_wave ~period ~duty ~on_load =
  if period <= 0. then
    invalid_arg "Load_profile.duty_cycle_wave: non-positive period";
  if duty <= 0. || duty >= 1. then
    invalid_arg "Load_profile.duty_cycle_wave: duty must be in (0,1)";
  periodic
    [
      { duration = duty *. period; load = on_load };
      { duration = (1. -. duty) *. period; load = 0. };
    ]

let total_duration segs =
  List.fold_left (fun acc s -> acc +. s.duration) 0. segs

let load_in_list segs t =
  let rec go t = function
    | [] -> None
    | s :: rest -> if t < s.duration then Some s.load else go (t -. s.duration) rest
  in
  go t segs

let load_at p t =
  if t < 0. then invalid_arg "Load_profile.load_at: negative time";
  match p with
  | Constant load -> load
  | Finite segs -> Option.value ~default:0. (load_in_list segs t)
  | Periodic segs ->
      let period = total_duration segs in
      let t = Float.rem t period in
      (* Float.rem may return exactly [period] after rounding. *)
      let t = if t >= period then 0. else t in
      Option.value ~default:0. (load_in_list segs t)

let average_load p =
  match p with
  | Constant load -> load
  | Finite segs | Periodic segs ->
      let charge =
        List.fold_left (fun acc s -> acc +. (s.duration *. s.load)) 0. segs
      in
      charge /. total_duration segs

let segments_from p t0 =
  if t0 < 0. then invalid_arg "Load_profile.segments_from: negative time";
  match p with
  | Constant load ->
      let rec forever () = Seq.Cons ((infinity, load), forever) in
      forever
  | Finite segs ->
      let rec skip t = function
        | [] -> []
        | s :: rest ->
            if t >= s.duration then skip (t -. s.duration) rest
            else { s with duration = s.duration -. t } :: rest
      in
      let remaining = skip t0 segs in
      (* After a finite profile ends the load is 0 forever, mirroring
         [load_at]. *)
      Seq.append
        (List.to_seq (List.map (fun s -> (s.duration, s.load)) remaining))
        (Seq.return (infinity, 0.))
  | Periodic segs ->
      let period = total_duration segs in
      let offset = Float.rem t0 period in
      let offset = if offset >= period then 0. else offset in
      let rec skip t = function
        | [] -> []
        | s :: rest ->
            if t >= s.duration then skip (t -. s.duration) rest
            else { s with duration = s.duration -. t } :: rest
      in
      let first = skip offset segs in
      let rec cycle pieces () =
        match pieces with
        | [] -> cycle segs ()
        | s :: rest -> Seq.Cons ((s.duration, s.load), cycle rest)
      in
      cycle first
