let lifetime ~capacity ~load =
  if load <= 0. then invalid_arg "Ideal.lifetime: non-positive load";
  if capacity < 0. then invalid_arg "Ideal.lifetime: negative capacity";
  capacity /. load

let delivered_charge ~load ~duration = load *. duration

let lifetime_duty_cycle ~capacity ~load ~duty =
  if duty <= 0. || duty > 1. then
    invalid_arg "Ideal.lifetime_duty_cycle: duty must be in (0,1]";
  lifetime ~capacity ~load:(load *. duty)
