type params = { base : Kibam.params; gamma : float }

let params ~base ~gamma =
  if gamma < 0. then invalid_arg "Modified_kibam.params: negative gamma";
  { base; gamma }

let recovery_factor p (s : Kibam.state) =
  let _, h2 = Kibam.heights p.base s in
  let full_height = p.base.Kibam.capacity in
  exp (-.p.gamma *. (1. -. (h2 /. full_height)))

let derivatives p ~load (s : Kibam.state) =
  if p.base.Kibam.c >= 1. then (-.load, 0.)
  else
    let delta = Kibam.height_difference p.base s in
    let flow = p.base.Kibam.k *. recovery_factor p s *. delta in
    (-.load +. flow, -.flow)

(* The modified dynamics are the plain KiBaM with an effective
   diffusion constant k * factor(y2); the factor drifts on the slow
   bound-well time scale, so we advance with the *exact* linear KiBaM
   solution over substeps during which the factor is frozen.  This is
   unconditionally stable (no stiffness for large k) and degenerates to
   the exact analytic KiBaM at gamma = 0. *)
let frozen p (s : Kibam.state) =
  let factor = recovery_factor p s in
  let k_eff = p.base.Kibam.k *. factor in
  Kibam.params ~capacity:p.base.Kibam.capacity ~c:p.base.Kibam.c ~k:k_eff

(* Substep bound: the factor must not drift much, i.e. the wells must
   not move by more than a small quantum within a substep. *)
let substep_length ?ode_step p ~load ~remaining (s : Kibam.state) =
  match ode_step with
  | Some h -> Float.min h remaining
  | None ->
      let dy1, dy2 = derivatives p ~load s in
      let rate = Float.max (Float.abs dy1) (Float.abs dy2) in
      if rate <= 0. then remaining
      else
        let quantum = p.base.Kibam.capacity /. 500. in
        Float.min remaining (quantum /. rate)

let step ?ode_step p ~load ~dt (s : Kibam.state) =
  if dt < 0. then invalid_arg "Modified_kibam.step: negative duration";
  let rec go t s =
    if t >= dt *. (1. -. 1e-15) then s
    else
      let h = substep_length ?ode_step p ~load ~remaining:(dt -. t) s in
      go (t +. h) (Kibam.step (frozen p s) ~load ~dt:h s)
  in
  go 0. s

let empty_within ?ode_step p ~load ~dt (s : Kibam.state) =
  if dt < 0. then invalid_arg "Modified_kibam.empty_within: negative duration";
  if s.Kibam.available <= 0. then Some 0.
  else begin
    let rec go t s =
      if t >= dt then None
      else begin
        let h = substep_length ?ode_step p ~load ~remaining:(dt -. t) s in
        let h = if Float.is_finite h then h else dt -. t in
        let fp = frozen p s in
        match Kibam.empty_within fp ~load ~dt:h s with
        | Some tau -> Some (t +. tau)
        | None ->
            let s' = Kibam.step fp ~load ~dt:h s in
            if h <= 0. then None else go (t +. h) s'
      end
    in
    go 0. s
  end

let lifetime ?(max_time = 1e9) ?ode_step p profile =
  let rec walk elapsed s segs =
    if elapsed >= max_time then None
    else
      match segs () with
      | Seq.Nil -> None
      | Seq.Cons ((duration, load), rest) ->
          let duration = Float.min duration (max_time -. elapsed) in
          if not (Float.is_finite duration) then
            (* Constant tail: either the load empties the battery or it
               never will. *)
            if load <= 0. then None
            else begin
              let total = s.Kibam.available +. s.Kibam.bound in
              let horizon = 4. *. total /. load in
              match empty_within ?ode_step p ~load ~dt:horizon s with
              | Some tau -> Some (elapsed +. tau)
              | None -> None
            end
          else (
            match empty_within ?ode_step p ~load ~dt:duration s with
            | Some tau -> Some (elapsed +. tau)
            | None ->
                walk (elapsed +. duration)
                  (step ?ode_step p ~load ~dt:duration s)
                  rest)
  in
  walk 0. (Kibam.initial p.base) (Load_profile.segments_from profile 0.)

let lifetime_constant ?ode_step p ~load =
  if load <= 0. then
    invalid_arg "Modified_kibam.lifetime_constant: need load > 0";
  match lifetime ?ode_step p (Load_profile.constant load) with
  | Some t -> t
  | None -> failwith "Modified_kibam.lifetime_constant: battery did not empty"
