open Batlife_numerics

type params = { capacity : float; c : float; k : float }

type state = { available : float; bound : float }

let params ~capacity ~c ~k =
  if capacity <= 0. then invalid_arg "Kibam.params: capacity must be positive";
  if c <= 0. || c > 1. then invalid_arg "Kibam.params: c must be in (0,1]";
  if k < 0. then invalid_arg "Kibam.params: k must be non-negative";
  { capacity; c; k }

let degenerate p = p.c >= 1. || p.k = 0.

let initial p =
  { available = p.c *. p.capacity; bound = (1. -. p.c) *. p.capacity }

let state p ~available ~bound =
  if available < 0. || bound < 0. then
    invalid_arg "Kibam.state: negative charge";
  if available +. bound > p.capacity *. (1. +. 1e-9) then
    invalid_arg "Kibam.state: charge exceeds capacity";
  if p.c >= 1. && bound > 0. then
    invalid_arg "Kibam.state: bound charge with c = 1";
  { available; bound }

let heights p s =
  let h1 = s.available /. p.c in
  if p.c >= 1. then (h1, h1) else (h1, s.bound /. (1. -. p.c))

let height_difference p s =
  let h1, h2 = heights p s in
  h2 -. h1

let derivatives p ~load s =
  if p.c >= 1. then (-.load, 0.)
  else
    let delta = height_difference p s in
    (-.load +. (p.k *. delta), -.(p.k *. delta))

(* Closed-form constant-load solution.  delta' = I/c - k' delta with
   k' = k/(c(1-c)), so delta relaxes exponentially to
   delta_ss = I(1-c)/k, and y1, y2 follow by integrating
   k * delta(t). *)
let kprime p = p.k /. (p.c *. (1. -. p.c))

let delta_ss p ~load = load *. (1. -. p.c) /. p.k

let step p ~load ~dt s =
  if dt < 0. then invalid_arg "Kibam.step: negative duration";
  if dt = 0. then s
  else if degenerate p then
    { available = s.available -. (load *. dt); bound = s.bound }
  else begin
    let k' = kprime p in
    let d0 = height_difference p s in
    let dss = delta_ss p ~load in
    let e = exp (-.k' *. dt) in
    (* integral of delta over [0, dt] *)
    let integral = (dss *. dt) +. ((d0 -. dss) *. (1. -. e) /. k') in
    {
      available = s.available -. (load *. dt) +. (p.k *. integral);
      bound = s.bound -. (p.k *. integral);
    }
  end

(* Available charge as a function of elapsed time within a
   constant-load interval. *)
let available_at p ~load s tau = (step p ~load ~dt:tau s).available

let empty_within p ~load ~dt s =
  if dt < 0. then invalid_arg "Kibam.empty_within: negative duration";
  if s.available <= 0. then Some 0.
  else if degenerate p then begin
    if load <= 0. then None
    else
      let t_empty = s.available /. load in
      if t_empty <= dt then Some t_empty else None
  end
  else if load <= 0. then
    (* Pure recovery: y1 is non-decreasing towards equilibrium (or
       constant), it cannot cross zero from above. *)
    None
  else begin
    (* y1 is unimodal under constant positive load: y1' = -I + k delta
       with delta(t) monotone, and the asymptotic slope is -Ic < 0, so
       there is at most one downward crossing of zero starting from
       y1 > 0. *)
    let f tau = available_at p ~load s tau in
    let upper =
      if Float.is_finite dt then
        if f dt > 0. then None else Some dt
      else begin
        (* Expand a bracket: the slope tends to -Ic, so f eventually
           goes negative.  Start from the linear-battery estimate. *)
        let guess = Float.max ((s.available +. s.bound) /. load) 1e-9 in
        match Roots.expand_bracket f 0. guess with
        | _, b -> Some b
        | exception Roots.No_root _ -> None
      end
    in
    match upper with
    | None -> None
    | Some b ->
        (* The crossing is the unique root in (0, b]. *)
        Some (Roots.brent ~tol:1e-13 f 0. b)
  end

let lifetime ?(max_time = 1e9) p profile =
  let rec walk elapsed s segs =
    if elapsed >= max_time then None
    else
      match segs () with
      | Seq.Nil -> None
      | Seq.Cons ((duration, load), rest) ->
          let duration = Float.min duration (max_time -. elapsed) in
          (match empty_within p ~load ~dt:duration s with
          | Some tau -> Some (elapsed +. tau)
          | None ->
              if Float.is_finite duration then
                walk (elapsed +. duration)
                  (step p ~load ~dt:duration s)
                  rest
              else None)
  in
  walk 0. (initial p) (Load_profile.segments_from profile 0.)

let lifetime_constant p ~load =
  if load <= 0. then invalid_arg "Kibam.lifetime_constant: need load > 0";
  let s = initial p in
  match empty_within p ~load ~dt:infinity s with
  | Some t -> t
  | None ->
      (* Unreachable for positive load, by the asymptotic-slope
         argument above. *)
      assert false

let delivered_charge p ~load = load *. lifetime_constant p ~load

let trace p profile ~t_end ~sample_step =
  if t_end <= 0. then invalid_arg "Kibam.trace: non-positive horizon";
  if sample_step <= 0. then invalid_arg "Kibam.trace: non-positive step";
  let out = ref [ (0., (initial p).available, (initial p).bound) ] in
  let emit t s = out := (t, s.available, s.bound) :: !out in
  (* Walk segments, emitting samples at global multiples of
     sample_step, advancing the state analytically between emissions. *)
  let next_sample t =
    let n = Float.floor ((t /. sample_step) +. 1e-9) +. 1. in
    n *. sample_step
  in
  let rec walk t s segs =
    if t < t_end && s.available > 0. then
      match segs () with
      | Seq.Nil -> ()
      | Seq.Cons ((duration, load), rest) ->
          let seg_end = Float.min (t +. duration) t_end in
          let rec through t s =
            if s.available <= 0. then emit t s
            else begin
              let t' = Float.min (next_sample t) seg_end in
              match empty_within p ~load ~dt:(t' -. t) s with
              | Some tau ->
                  let s' = step p ~load ~dt:tau s in
                  emit (t +. tau) { s' with available = 0. }
              | None ->
                  let s' = step p ~load ~dt:(t' -. t) s in
                  if t' < seg_end then begin
                    emit t' s';
                    through t' s'
                  end
                  else begin
                    if t' = seg_end && Float.rem t' sample_step < 1e-9 then
                      emit t' s';
                    walk seg_end s' rest
                  end
            end
          in
          through t s
  in
  walk 0. (initial p) (Load_profile.segments_from profile 0.);
  Array.of_list (List.rev !out)
