(** Calibration of battery-model parameters from measurements, as done
    in Section 3 of the paper.

    The paper calibrates the KiBaM for the battery of Rao et al. [9]:
    [c = 0.625] is the quotient of the capacities delivered under a
    very large and a very small load, and [k] is set so that the
    computed lifetime under the continuous 0.96 A load matches the
    measured 90 minutes. *)

val c_from_capacities :
  large_load_capacity:float -> small_load_capacity:float -> float
(** [c = large / small]; under an extreme load only the available well
    is delivered, under a vanishing load everything is.  Raises
    [Invalid_argument] unless [0 < large <= small]. *)

val k_for_lifetime :
  capacity:float ->
  c:float ->
  load:float ->
  target_lifetime:float ->
  Kibam.params
(** Find [k] such that the KiBaM constant-load lifetime equals
    [target_lifetime] (Brent search over [k]; the lifetime is strictly
    increasing in [k]).  Raises [Failure] when the target is outside
    the attainable range [(cC/I-ish, C/I)]. *)

val gamma_for_lifetime :
  ?ode_step:float ->
  capacity:float ->
  c:float ->
  continuous_load:float ->
  continuous_lifetime:float ->
  target_lifetime:float ->
  Load_profile.t ->
  Modified_kibam.params
(** [gamma_for_lifetime ... profile] jointly calibrates the modified
    KiBaM: for each candidate attenuation [gamma], [k] is re-fitted to
    the continuous-load lifetime; [gamma] is then chosen so the
    lifetime under [profile] matches [target_lifetime].  Mirrors how
    Rao et al. calibrate their modified model against pulsed-discharge
    measurements. *)

val k_for_lifetime_modified :
  ?ode_step:float ->
  capacity:float ->
  c:float ->
  load:float ->
  target_lifetime:float ->
  float ->
  Modified_kibam.params
(** [k_for_lifetime_modified ... gamma] fits [k] of the modified model
    (at fixed attenuation [gamma]) to a continuous-load lifetime. *)
