(** The Kinetic Battery Model (KiBaM) of Manwell & McGowan, Section 3
    of the paper.

    Charge is split over an available-charge well [y1] (fraction [c] of
    the capacity) and a bound-charge well [y2]; with heights
    [h1 = y1/c] and [h2 = y2/(1-c)], a load [I] drives

    {v
      dy1/dt = -I + k (h2 - h1)
      dy2/dt =    - k (h2 - h1)
    v}

    For constant [I] the system is linear and solved in closed form
    (with [k' = k/(c(1-c))] the height difference [delta = h2 - h1]
    relaxes exponentially to [I(1-c)/k]); piecewise-constant workloads
    are handled by stepping the closed form, which is what makes the
    Monte-Carlo engine exact.  The special cases [c = 1] and [k = 0]
    degenerate to the linear battery. *)

type params = private { capacity : float; c : float; k : float }
(** Total capacity [C > 0], available-charge fraction [c] in (0, 1],
    diffusion constant [k >= 0] (per unit of time). *)

type state = { available : float; bound : float }
(** Well contents [(y1, y2)]. *)

val params : capacity:float -> c:float -> k:float -> params
(** Validates the parameter ranges; if [c = 1] the model is forced to
    the degenerate single-well form. *)

val initial : params -> state
(** Fully charged battery: [y1 = cC], [y2 = (1-c)C]. *)

val state : params -> available:float -> bound:float -> state
(** A custom (non-negative, within-capacity) fill level. *)

val heights : params -> state -> float * float
(** [(h1, h2)]; for [c = 1], [h2] is reported as equal to [h1] (no
    bound well). *)

val height_difference : params -> state -> float
(** [h2 - h1], the recovery driving force; 0 when [c = 1]. *)

val derivatives : params -> load:float -> state -> float * float
(** [(dy1/dt, dy2/dt)] of the (unclamped) linear KiBaM dynamics. *)

val step : params -> load:float -> dt:float -> state -> state
(** Closed-form state after drawing the constant [load] for [dt] time
    units.  No clamping is applied: with a positive load, [available]
    may come out negative, which callers interpret as "the battery died
    during this interval" (use {!empty_within} to locate the
    instant). *)

val empty_within : params -> load:float -> dt:float -> state -> float option
(** First instant in [\[0, dt\]] (which may be [infinity]) at which the
    available charge hits zero, if any.  Exact up to root-finding
    tolerance; relies on the unimodality of [y1] under constant
    load. *)

val lifetime : ?max_time:float -> params -> Load_profile.t -> float option
(** Lifetime under a piecewise-constant profile: the first time the
    available-charge well empties.  [None] if the battery survives
    beyond [max_time] (default [1e9] time units). *)

val lifetime_constant : params -> load:float -> float
(** Lifetime under a constant load (always finite for positive
    load). *)

val delivered_charge : params -> load:float -> float
(** [load * lifetime_constant]: the effectively delivered capacity.
    Tends to [c*C] for very large loads and to [C] for very small
    ones — the property used to calibrate [c] (Section 3). *)

val trace :
  params ->
  Load_profile.t ->
  t_end:float ->
  sample_step:float ->
  (float * float * float) array
(** Sampled trajectory [(t, y1, y2)] from a full battery, honouring
    segment boundaries exactly (analytic within each segment), stopping
    early when the battery empties.  Reproduces the paper's Fig. 2. *)
