(** Piecewise-constant load profiles.

    Deterministic workloads for the battery models: a profile is a
    sequence of (duration, load) segments, either finite or repeated
    periodically forever (the square waves of the paper's Table 1 and
    Fig. 2). *)

type segment = { duration : float; load : float }

type t

val constant : float -> t
(** Infinite constant load. *)

val finite : segment list -> t
(** Runs the segments once; the load is 0 afterwards.  Durations must
    be positive. *)

val periodic : segment list -> t
(** Repeats the segment list forever.  Durations must be positive and
    the list non-empty. *)

val square_wave : frequency:float -> on_load:float -> t
(** The paper's on/off square wave: one period lasts [1/frequency],
    spending the first half at [on_load] and the second half idle. *)

val duty_cycle_wave : period:float -> duty:float -> on_load:float -> t
(** Generalised square wave with on-fraction [duty] in (0, 1). *)

val load_at : t -> float -> float
(** Load at absolute time [t >= 0] (left-continuous within segments). *)

val average_load : t -> float
(** Mean load over one period (periodic), over the whole profile
    (finite, relative to its total duration), or the constant. *)

val segments_from : t -> float -> (float * float) Seq.t
(** [segments_from p t0] is the (possibly infinite) sequence of
    remaining [(duration, load)] pieces starting at absolute time
    [t0], splitting the segment containing [t0] if needed. *)
