open Batlife_numerics

type params = { alpha : float; beta_sq : float; harmonics : int }

type state = { consumed : float; gradient : float array }

let params ?(harmonics = 40) ~alpha beta_sq =
  if alpha <= 0. then invalid_arg "Rakhmatov.params: alpha must be positive";
  if beta_sq <= 0. then
    invalid_arg "Rakhmatov.params: beta^2 must be positive";
  if harmonics < 1 then invalid_arg "Rakhmatov.params: need harmonics >= 1";
  { alpha; beta_sq; harmonics }

let initial p = { consumed = 0.; gradient = Array.make p.harmonics 0. }

let sum_gradient s = Array.fold_left ( +. ) 0. s.gradient

let apparent_charge _p s = s.consumed +. (2. *. sum_gradient s)

let unavailable_charge _p s = 2. *. sum_gradient s

(* u_m' = i - beta^2 m^2 u_m: exact step under constant load. *)
let step p ~load ~dt s =
  if dt < 0. then invalid_arg "Rakhmatov.step: negative duration";
  if dt = 0. then s
  else begin
    let gradient =
      Array.mapi
        (fun idx u ->
          let m = float_of_int (idx + 1) in
          let rate = p.beta_sq *. m *. m in
          let decay = exp (-.rate *. dt) in
          (u *. decay) +. (load *. (1. -. decay) /. rate))
        s.gradient
    in
    { consumed = s.consumed +. (load *. dt); gradient }
  end

let empty_within p ~load ~dt s =
  if dt < 0. then invalid_arg "Rakhmatov.empty_within: negative duration";
  if apparent_charge p s >= p.alpha then Some 0.
  else if load <= 0. then
    (* sigma is non-increasing while resting: no crossing. *)
    None
  else begin
    (* sigma is not globally monotone after load changes (relaxing
       harmonics can briefly outweigh the draw), so we scan in fixed
       substeps and bisect inside the first substep whose endpoint is
       past alpha.  Since consumed(t) >= load * t, any crossing
       happens before t_max = (alpha - consumed) / load, so the scan
       is bounded. *)
    let t_max = (p.alpha -. s.consumed) /. load in
    let horizon = Float.min dt t_max in
    let h = Float.max (horizon /. 400.) 1e-12 in
    let rec scan tau state =
      if tau >= horizon then None
      else begin
        let h = Float.min h (horizon -. tau) in
        let state' = step p ~load ~dt:h state in
        if apparent_charge p state' >= p.alpha then begin
          let f u = apparent_charge p (step p ~load ~dt:u state) -. p.alpha in
          Some (tau +. Roots.brent ~tol:1e-13 f 0. h)
        end
        else scan (tau +. h) state'
      end
    in
    scan 0. s
  end

let lifetime ?(max_time = 1e9) p profile =
  let rec walk elapsed s segs =
    if elapsed >= max_time then None
    else
      match segs () with
      | Seq.Nil -> None
      | Seq.Cons ((duration, load), rest) ->
          let duration = Float.min duration (max_time -. elapsed) in
          (match empty_within p ~load ~dt:duration s with
          | Some tau -> Some (elapsed +. tau)
          | None ->
              if Float.is_finite duration then
                walk (elapsed +. duration) (step p ~load ~dt:duration s) rest
              else None)
  in
  walk 0. (initial p) (Load_profile.segments_from profile 0.)

let lifetime_constant p ~load =
  if load <= 0. then invalid_arg "Rakhmatov.lifetime_constant: need load > 0";
  match empty_within p ~load ~dt:infinity (initial p) with
  | Some t -> t
  | None ->
      (* Unreachable: sigma grows at least linearly under load. *)
      assert false

let delivered_charge p ~load = load *. lifetime_constant p ~load

let fit_beta ~alpha ~load ~target_lifetime =
  if target_lifetime <= 0. then
    invalid_arg "Rakhmatov.fit_beta: non-positive target";
  let ideal = alpha /. load in
  if target_lifetime >= ideal then
    failwith "Rakhmatov.fit_beta: target above the ideal-battery lifetime";
  (* The lifetime is increasing in beta^2 (faster diffusion, less
     unavailable charge), approaching alpha/load from below. *)
  let lifetime_of log_b =
    lifetime_constant (params ~alpha (exp log_b)) ~load
  in
  let objective log_b = lifetime_of log_b -. target_lifetime in
  let lo = log 1e-9 and hi = log 1e6 in
  if objective lo > 0. || objective hi < 0. then
    failwith "Rakhmatov.fit_beta: target outside attainable range";
  params ~alpha (exp (Roots.brent ~tol:1e-10 objective lo hi))
