lib/ctmc/phase_type.ml: Array Batlife_numerics Dense Float Generator Hashtbl List Special Transient Vector
