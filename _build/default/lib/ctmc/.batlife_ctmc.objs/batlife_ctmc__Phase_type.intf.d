lib/ctmc/phase_type.mli: Generator
