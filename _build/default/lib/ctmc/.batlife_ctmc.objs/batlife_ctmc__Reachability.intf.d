lib/ctmc/reachability.mli: Generator
