lib/ctmc/steady.mli: Generator
