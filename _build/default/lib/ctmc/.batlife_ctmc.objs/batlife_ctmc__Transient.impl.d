lib/ctmc/transient.ml: Array Batlife_numerics Generator List Logs Option Poisson Printf Sparse Vector
