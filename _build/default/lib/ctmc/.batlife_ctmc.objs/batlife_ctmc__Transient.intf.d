lib/ctmc/transient.mli: Generator
