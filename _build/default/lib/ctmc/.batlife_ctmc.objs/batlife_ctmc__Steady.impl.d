lib/ctmc/steady.ml: Array Batlife_numerics Dense Generator Option Sparse Vector
