lib/ctmc/reachability.ml: Array Batlife_numerics Generator Iterative Sparse Transient Vector
