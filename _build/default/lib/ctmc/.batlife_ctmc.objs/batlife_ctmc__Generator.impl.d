lib/ctmc/generator.ml: Array Batlife_numerics Float Format List Printf Sparse
