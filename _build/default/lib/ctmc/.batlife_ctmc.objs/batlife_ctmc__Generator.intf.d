lib/ctmc/generator.mli: Batlife_numerics Format Sparse
