open Batlife_numerics

(* GTH elimination: censoring states one by one, using only additions
   of non-negative numbers (no subtraction), then back-substitution.
   Standard formulation on the rate matrix. *)
let gth g =
  let n = Generator.n_states g in
  let a = Sparse.to_dense (Generator.matrix g) in
  (* Work on off-diagonal rates; a.(i).(j), i<>j, >= 0. *)
  let get = Dense.get a and set = Dense.set a in
  for k = n - 1 downto 1 do
    (* Total outflow of state k towards states 0..k-1. *)
    let s = ref 0. in
    for j = 0 to k - 1 do
      s := !s +. get k j
    done;
    if !s <= 0. then
      failwith "Steady.gth: reducible chain (state cannot reach lower states)";
    for i = 0 to k - 1 do
      let gik = get i k in
      if gik > 0. then
        for j = 0 to k - 1 do
          if i <> j then set i j (get i j +. (gik *. get k j /. !s))
        done
    done
  done;
  let pi = Array.make n 0. in
  pi.(0) <- 1.;
  for k = 1 to n - 1 do
    let s = ref 0. in
    for j = 0 to k - 1 do
      s := !s +. Dense.get a k j
    done;
    let acc = ref 0. in
    for i = 0 to k - 1 do
      acc := !acc +. (pi.(i) *. Dense.get a i k)
    done;
    pi.(k) <- !acc /. !s
  done;
  Vector.normalize1 pi

let power_iteration ?(tol = 1e-12) ?(max_iter = 1_000_000) g =
  let n = Generator.n_states g in
  let q = Generator.uniformisation_rate g in
  let qm = Generator.matrix g in
  let v = Vector.make n (1. /. float_of_int n) in
  let v' = Vector.create n in
  let current = ref v and scratch = ref v' in
  let result = ref None in
  let i = ref 0 in
  while Option.is_none !result && !i < max_iter do
    incr i;
    Vector.blit ~src:!current ~dst:!scratch;
    Sparse.vecmat_acc ~src:!current qm ~scale:(1. /. q) ~dst:!scratch;
    let drift = Vector.dist_inf !current !scratch in
    let t = !current in
    current := !scratch;
    scratch := t;
    if drift <= tol then result := Some (Vector.normalize1 !current)
  done;
  match !result with
  | Some pi -> pi
  | None -> failwith "Steady.power_iteration: no convergence"

let expected_reward g ~rewards =
  if Array.length rewards <> Generator.n_states g then
    invalid_arg "Steady.expected_reward: reward vector length";
  Vector.dot (gth g) rewards
