open Batlife_numerics

let log_src = Logs.Src.create "batlife.transient" ~doc:"Uniformisation sweeps"

module Log = (val Logs.src_log log_src : Logs.LOG)

type stats = {
  iterations : int;
  converged_at : int option;
  uniformisation_rate : float;
}

let check_alpha g alpha =
  if Array.length alpha <> Generator.n_states g then
    invalid_arg "Transient: initial distribution has wrong length";
  Array.iter
    (fun p ->
      if p < -1e-12 then invalid_arg "Transient: negative initial probability")
    alpha

(* One uniformised step: v' = v P = v + (v Q) / q, computed without
   materialising P. *)
let step q_matrix ~q ~src ~dst =
  Vector.blit ~src ~dst;
  Sparse.vecmat_acc ~src q_matrix ~scale:(1. /. q) ~dst

let solve ?(accuracy = 1e-12) ?q g ~alpha ~t =
  check_alpha g alpha;
  if t < 0. then invalid_arg "Transient.solve: negative time";
  let n = Generator.n_states g in
  let q = match q with Some q -> q | None -> Generator.uniformisation_rate g in
  let weights = Poisson.weights ~accuracy (q *. t) in
  let qm = Generator.matrix g in
  let v = Vector.copy alpha and v' = Vector.create n in
  let out = Vector.create n in
  let add_weighted w src = Vector.axpy ~alpha:w ~x:src ~y:out in
  let current = ref v and scratch = ref v' in
  for m = 0 to weights.Poisson.right do
    if m > 0 then begin
      step qm ~q ~src:!current ~dst:!scratch;
      let t = !current in
      current := !scratch;
      scratch := t
    end;
    let w = Poisson.prob weights m in
    if w > 0. then add_weighted w !current
  done;
  out

let measure_sweep ?(accuracy = 1e-12) ?q ?(convergence_tol = 1e-14) g ~alpha
    ~times ~measure =
  check_alpha g alpha;
  Array.iter
    (fun t -> if t < 0. then invalid_arg "Transient.measure_sweep: t < 0")
    times;
  let n = Generator.n_states g in
  let q = match q with Some q -> q | None -> Generator.uniformisation_rate g in
  let qm = Generator.matrix g in
  (* Poisson windows per time point; the sweep must reach the largest
     right truncation point (unless stationarity is detected first). *)
  let windows = Array.map (fun t -> Poisson.weights ~accuracy (q *. t)) times in
  let n_max =
    Array.fold_left (fun acc w -> max acc w.Poisson.right) 0 windows
  in
  let measures = Array.make (n_max + 1) 0. in
  let v = Vector.copy alpha and v' = Vector.create n in
  let current = ref v and scratch = ref v' in
  measures.(0) <- measure !current;
  let converged_at = ref None in
  let m = ref 1 in
  while !m <= n_max && Option.is_none !converged_at do
    step qm ~q ~src:!current ~dst:!scratch;
    let drift = Vector.dist_inf !current !scratch in
    let t = !current in
    current := !scratch;
    scratch := t;
    measures.(!m) <- measure !current;
    if drift <= convergence_tol then converged_at := Some !m;
    incr m
  done;
  (* If the chain became stationary, later measures are constant. *)
  (match !converged_at with
  | Some at ->
      for i = at + 1 to n_max do
        measures.(i) <- measures.(at)
      done
  | None -> ());
  let iterations = match !converged_at with Some at -> at | None -> n_max in
  Log.debug (fun m ->
      m "measure sweep: %d states, q=%g, %d iterations%s" n q iterations
        (match !converged_at with
        | Some at -> Printf.sprintf " (stationary after %d)" at
        | None -> ""));
  let results =
    Array.map
      (fun w ->
        Poisson.fold w ~init:0. ~f:(fun acc m weight ->
            acc +. (weight *. measures.(m))))
      windows
  in
  (results, { iterations; converged_at = !converged_at; uniformisation_rate = q })

let distribution_sweep ?(accuracy = 1e-12) ?q g ~alpha ~times =
  check_alpha g alpha;
  let n = Generator.n_states g in
  let q = match q with Some q -> q | None -> Generator.uniformisation_rate g in
  let qm = Generator.matrix g in
  let windows = Array.map (fun t -> Poisson.weights ~accuracy (q *. t)) times in
  let n_max =
    Array.fold_left (fun acc w -> max acc w.Poisson.right) 0 windows
  in
  let outs = Array.map (fun _ -> Vector.create n) times in
  let v = Vector.copy alpha and v' = Vector.create n in
  let current = ref v and scratch = ref v' in
  for m = 0 to n_max do
    if m > 0 then begin
      step qm ~q ~src:!current ~dst:!scratch;
      let t = !current in
      current := !scratch;
      scratch := t
    end;
    Array.iteri
      (fun idx w ->
        let weight = Poisson.prob w m in
        if weight > 0. then Vector.axpy ~alpha:weight ~x:!current ~y:outs.(idx))
      windows
  done;
  ( outs,
    { iterations = n_max; converged_at = None; uniformisation_rate = q } )

let expected_hitting_mass ?accuracy g ~alpha ~states ~t =
  let pi = solve ?accuracy g ~alpha ~t in
  List.fold_left (fun acc i -> acc +. pi.(i)) 0. states
