(** Phase-type distributions.

    The paper's Markovian approximation replaces the battery lifetime
    by the absorption time of the expanded CTMC — i.e. by a phase-type
    distribution.  This module gives PH distributions a first-class
    API: CDF by uniformisation, moments by linear solves, and the
    Erlang special case used by the on/off workload model. *)

type t
(** A PH distribution [(alpha, A)] where [A] is the sub-generator over
    the transient states.  The absorption rate of state [i] is
    [-sum_j a_ij >= 0]. *)

val create : alpha:float array -> sub_generator:float array array -> t
(** Build from an initial distribution over transient states (may sum
    to less than 1 — the deficit is an atom at 0) and a sub-generator
    matrix.  Raises [Invalid_argument] if [A] has negative off-diagonal
    entries, positive row sums (beyond rounding), or mismatched
    sizes. *)

val of_absorbing_ctmc : Generator.t -> alpha:float array -> t
(** View an absorbing CTMC as a PH distribution of the time to reach
    {e any} absorbing state.  Transient states with no path to an
    absorbing state yield a defective distribution. *)

val erlang : k:int -> rate:float -> t
(** Erlang-[k] with phase rate [rate]. *)

val exponential : rate:float -> t

val hypoexponential : rates:float array -> t
(** Generalised Erlang: sequence of exponential phases with the given
    rates. *)

val n_phases : t -> int

val cdf : ?accuracy:float -> t -> float -> float
(** [cdf d t] is [P(T <= t)]. *)

val cdf_many : ?accuracy:float -> t -> float array -> float array
(** Batched CDF evaluation using a single uniformisation sweep. *)

val survival : ?accuracy:float -> t -> float -> float

val mean : t -> float
(** First moment via [-alpha A^{-1} 1]. *)

val moment : t -> int -> float
(** [moment d m] is [E T^m = (-1)^m m! alpha A^{-m} 1].  Raises
    [Invalid_argument] for [m < 1]. *)

val variance : t -> float

val erlang_cdf : k:int -> rate:float -> float -> float
(** Closed-form Erlang CDF (regularised lower incomplete gamma via the
    finite Poisson sum); used as a test oracle. *)
