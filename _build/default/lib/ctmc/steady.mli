(** Steady-state distributions of CTMCs.

    Used by the workload models (e.g. to verify that the burst model's
    send probability matches the simple model's, the calibration the
    paper performs with [lambda_burst = 182/h]). *)

val gth : Generator.t -> float array
(** Grassmann–Taksar–Heyman elimination on a dense copy; numerically
    stable, O(n^3) — intended for the small workload chains.  The chain
    must be irreducible; raises [Failure] otherwise. *)

val power_iteration :
  ?tol:float -> ?max_iter:int -> Generator.t -> float array
(** Power iteration on the uniformised chain for larger generators.
    Raises [Failure] if the iteration does not converge. *)

val expected_reward : Generator.t -> rewards:float array -> float
(** Steady-state expectation [sum_i pi_i r_i] using {!gth}. *)
