(** Convergence diagnostics for the Markovian approximation.

    The paper observes empirically that the computed CDF approaches
    the true distribution as [Delta] shrinks (Figs. 7, 8, 10) but has
    no error bound.  These helpers quantify the refinement: pairwise
    distances along a [Delta] sequence, empirical convergence order,
    and Richardson extrapolation of two curves to a reference one. *)

val max_pointwise_distance : Lifetime.curve -> Lifetime.curve -> float
(** Largest |F_a(t) - F_b(t)| over the (shared) time grid.  Raises
    [Invalid_argument] if the grids differ. *)

val refinement_distances : Lifetime.curve list -> float list
(** Distances between consecutive curves of a refinement sequence. *)

val empirical_order : Lifetime.curve list -> float option
(** Estimated convergence order [p] from three curves computed at
    [Delta, Delta/r, Delta/r^2] (any fixed ratio [r]):
    [p = log(d1/d2) / log r] where [d_i] are consecutive distances.
    [None] if fewer than three curves or degenerate distances. *)

val richardson :
  ?order:float -> coarse:Lifetime.curve -> Lifetime.curve -> Lifetime.curve
(** [richardson ~coarse fine]: pointwise Richardson extrapolation of a
    coarse/fine pair computed
    at [Delta] and [Delta/2] assuming error [O(Delta^order)] (default
    1): [(2^p F_fine - F_coarse) / (2^p - 1)], clamped back to a valid
    CDF.  The result reuses the fine curve's metadata. *)
