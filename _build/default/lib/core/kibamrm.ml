open Batlife_battery
open Batlife_workload

type t = { workload : Model.t; battery : Kibam.params }

let create ~workload ~battery = { workload; battery }

let upper_bounds m =
  let c = m.battery.Kibam.c and cap = m.battery.Kibam.capacity in
  (c *. cap, (1. -. c) *. cap)

let is_degenerate m = m.battery.Kibam.c >= 1.

let reward_rates m ~state ~y1 ~y2 =
  let i = Model.current m.workload state in
  let p = m.battery in
  if y1 <= 0. then (0., 0.)
  else if is_degenerate m then (-.i, 0.)
  else
    let s = { Kibam.available = y1; bound = y2 } in
    let h1, h2 = Kibam.heights p s in
    if h2 > h1 then
      let flow = p.Kibam.k *. (h2 -. h1) in
      (-.i +. flow, -.flow)
    else (-.i, 0.)
