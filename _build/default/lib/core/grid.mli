(** Discretisation of the two-dimensional reward space (Section 5.1).

    The rewards [y1 in [0, u1]] and [y2 in [0, u2]] are split into
    intervals of width [delta]; level [j] stands for the interval
    [(j delta, (j+1) delta]] (left-closed for [j = 0]).  A state of the
    expanded CTMC is a triple [(workload state, j1, j2)], flattened to
    a single index in the block layout of the paper's Fig. 6: the
    workload state varies fastest, then [j2], then [j1], so the
    absorbing states [j1 = 0] form the leading contiguous block. *)

type t = private {
  delta : float;
  levels1 : int;  (** number of [j1] levels, [u1/delta + 1] *)
  levels2 : int;  (** number of [j2] levels, [u2/delta + 1]; 1 if the
                      second reward is degenerate *)
  n_workload : int;
}

val create : delta:float -> u1:float -> u2:float -> n_workload:int -> t
(** Raises [Invalid_argument] for non-positive [delta], negative
    bounds, or a non-positive workload size.  [u2 = 0] yields a
    one-dimensional grid. *)

val total_states : t -> int

val index : t -> state:int -> j1:int -> j2:int -> int
(** Flat index; bounds-checked. *)

val decompose : t -> int -> int * int * int
(** Inverse of {!index}: [(state, j1, j2)]. *)

val level_of1 : t -> float -> int
(** Level of the first reward containing value [a >= 0]:
    [ceil(a/delta) - 1] (0 for [a = 0]), clamped to the grid. *)

val level_of2 : t -> float -> int
(** Same for the second reward. *)

val level_value : t -> int -> float
(** Upper end [ (j+1) delta ] of the level's interval — the
    representative used by the paper's transition rates is the lower
    end [j delta]; this accessor returns the upper end for reporting
    purposes. *)

val absorbing_block_size : t -> int
(** Number of flat states with [j1 = 0] (all absorbing). *)
