(** The KiBaMRM (Section 4.2): a CTMC workload model combined with the
    Kinetic Battery Model, i.e. a reward-inhomogeneous Markov reward
    model with two accumulated rewards — the available-charge well
    [Y1(t)] and the bound-charge well [Y2(t)].

    The reward rates in workload state [i] with consumption [I_i] are

    {v
      r_i1(y1, y2) = -I_i + k (h2 - h1)     (available well)
      r_i2(y1, y2) =      - k (h2 - h1)     (bound well)
    v}

    (clamped to 0 once the battery is empty).  The battery is empty at
    the first time [Y1(t) = 0]; this module only fixes the model — the
    lifetime distribution is computed by {!Discretized} /
    {!Lifetime}. *)

open Batlife_battery
open Batlife_workload

type t = private { workload : Model.t; battery : Kibam.params }

val create : workload:Model.t -> battery:Kibam.params -> t

val reward_rates : t -> state:int -> y1:float -> y2:float -> float * float
(** The two reward rates of workload state [state] at fill level
    [(y1, y2)], with the paper's clamping: both are 0 unless
    [h2 > h1 > 0]; the consumption part [-I_i] applies whenever
    [y1 > 0]. *)

val upper_bounds : t -> float * float
(** [(u1, u2) = (cC, (1-c)C)]: the reachable reward rectangle. *)

val is_degenerate : t -> bool
(** [true] when [c = 1] (or [k = 0] with all bound charge absent):
    only one reward needs to be discretised (the paper's Fig. 7
    case). *)
