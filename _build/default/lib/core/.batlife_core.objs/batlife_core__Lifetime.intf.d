lib/core/lifetime.mli: Kibamrm
